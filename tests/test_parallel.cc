/**
 * @file
 * Tests for the work-stealing parallel runner: thread-count helpers,
 * pool semantics (empty ranges, inline execution, nested-submission
 * rejection, exception propagation), tile decomposition properties,
 * and the determinism suite asserting bitwise-identical BM3D output
 * and identical profile step counts for every thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bm3d/bm3d.h"
#include "image/noise.h"
#include "image/synthetic.h"
#include "obs/trace.h"
#include "parallel/pool.h"
#include "parallel/tiles.h"
#include "simd/simd.h"

using namespace ideal;
using parallel::ThreadPool;
using parallel::Tile;

// ---------------------------------------------------------------------
// Thread-count helpers (the shared clamped fallback).
// ---------------------------------------------------------------------

TEST(Threads, HardwareThreadsAtLeastOne)
{
    // Even when hardware_concurrency() reports 0 the helper must
    // return a usable count.
    EXPECT_GE(parallel::hardwareThreads(), 1);
    EXPECT_LE(parallel::hardwareThreads(), parallel::kMaxThreads);
}

TEST(Threads, ClampThreadsAutoSelectsHardware)
{
    EXPECT_EQ(parallel::clampThreads(0), parallel::hardwareThreads());
    EXPECT_EQ(parallel::clampThreads(-7), parallel::hardwareThreads());
}

TEST(Threads, ClampThreadsPassesThroughAndCaps)
{
    EXPECT_EQ(parallel::clampThreads(1), 1);
    EXPECT_EQ(parallel::clampThreads(7), 7);
    EXPECT_EQ(parallel::clampThreads(1 << 20), parallel::kMaxThreads);
}

// ---------------------------------------------------------------------
// Pool semantics.
// ---------------------------------------------------------------------

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    std::atomic<int> calls{0};
    ThreadPool::global().run(0, 4, [&](int, int) { ++calls; });
    ThreadPool::global().run(-3, 4, [&](int, int) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    const int count = 1000;
    std::vector<std::atomic<int>> hits(count);
    ThreadPool::global().run(count, 7, [&](int index, int slot) {
        ASSERT_GE(index, 0);
        ASSERT_LT(index, count);
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, 7);
        ++hits[index];
    });
    for (int i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleParallelismRunsInline)
{
    const std::thread::id caller = std::this_thread::get_id();
    int calls = 0;
    ThreadPool::global().run(16, 1, [&](int, int slot) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(slot, 0);
        ++calls;
    });
    EXPECT_EQ(calls, 16);
}

TEST(ThreadPool, ParallelismClampedToCount)
{
    // More executors than tasks must not deadlock or duplicate work.
    std::vector<std::atomic<int>> hits(3);
    ThreadPool::global().run(3, 64, [&](int index, int) { ++hits[index]; });
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, NestedSubmitRejected)
{
    // Tasks cannot spawn tasks: the deques of a batch only drain, so a
    // nested run() would deadlock. It must throw instead, and the
    // exception must propagate out of the outer run().
    EXPECT_THROW(
        ThreadPool::global().run(4, 2,
                                 [&](int, int) {
                                     ThreadPool::global().run(
                                         2, 2, [](int, int) {});
                                 }),
        std::logic_error);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    EXPECT_THROW(ThreadPool::global().run(64, 4,
                                          [&](int index, int) {
                                              if (index == 13)
                                                  throw std::runtime_error(
                                                      "boom");
                                          }),
                 std::runtime_error);

    // The pool must stay usable after an aborted batch.
    std::atomic<int> calls{0};
    ThreadPool::global().run(8, 4, [&](int, int) { ++calls; });
    EXPECT_EQ(calls.load(), 8);
}

// ---------------------------------------------------------------------
// Tile decomposition properties.
// ---------------------------------------------------------------------

TEST(Tiles, RejectsNonPositiveGrain)
{
    EXPECT_THROW(parallel::makeTiles(8, 8, 0), std::invalid_argument);
    EXPECT_THROW(parallel::makeTiles(8, 8, -1), std::invalid_argument);
}

TEST(Tiles, EmptyExtentsGiveNoTiles)
{
    EXPECT_TRUE(parallel::makeTiles(0, 8, 4).empty());
    EXPECT_TRUE(parallel::makeTiles(8, 0, 4).empty());
    EXPECT_TRUE(parallel::makeTiles(-1, 8, 4).empty());
}

TEST(Tiles, GrainLargerThanRangeGivesSingleTile)
{
    auto tiles = parallel::makeTiles(5, 3, 100);
    ASSERT_EQ(tiles.size(), 1u);
    EXPECT_EQ(tiles[0].x0, 0);
    EXPECT_EQ(tiles[0].y0, 0);
    EXPECT_EQ(tiles[0].x1, 5);
    EXPECT_EQ(tiles[0].y1, 3);
}

TEST(Tiles, GridPartitionsIndexSpaceInRowMajorOrder)
{
    const int nx = 23, ny = 17, grain = 5;
    auto tiles = parallel::makeTiles(nx, ny, grain);

    // Every index covered exactly once.
    std::set<std::pair<int, int>> seen;
    for (const Tile &t : tiles) {
        EXPECT_GT(t.width(), 0);
        EXPECT_GT(t.height(), 0);
        EXPECT_LE(t.width(), grain);
        EXPECT_LE(t.height(), grain);
        for (int y = t.y0; y < t.y1; ++y)
            for (int x = t.x0; x < t.x1; ++x)
                EXPECT_TRUE(seen.emplace(x, y).second)
                    << "duplicate (" << x << "," << y << ")";
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(nx) * ny);

    // Row-major: y0 non-decreasing, x0 increasing within a row.
    for (size_t i = 1; i < tiles.size(); ++i) {
        EXPECT_GE(tiles[i].y0, tiles[i - 1].y0);
        if (tiles[i].y0 == tiles[i - 1].y0) {
            EXPECT_GT(tiles[i].x0, tiles[i - 1].x0);
        }
    }
}

TEST(Tiles, GridDependsOnlyOnExtentsAndGrain)
{
    // The determinism contract: the same extents and grain produce the
    // same grid no matter how often or where it is computed.
    auto a = parallel::makeTiles(37, 41, 8);
    auto b = parallel::makeTiles(37, 41, 8);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].x0, b[i].x0);
        EXPECT_EQ(a[i].y0, b[i].y0);
        EXPECT_EQ(a[i].x1, b[i].x1);
        EXPECT_EQ(a[i].y1, b[i].y1);
    }
}

TEST(TileBands, PartitionTilesIntoContiguousRanges)
{
    // Bands must cover [0, tiles.size()) in ascending, non-overlapping
    // tile-index ranges — the property that makes sequential band runs
    // merge partial sums in exactly the stage-major tile order.
    const int nx = 23, ny = 17, grain = 5;
    const auto tiles = parallel::makeTiles(nx, ny, grain);
    const auto bands = parallel::makeTileBands(nx, ny, grain, 7);
    ASSERT_FALSE(bands.empty());
    EXPECT_EQ(bands.front().firstTile, 0);
    EXPECT_EQ(bands.back().lastTile, static_cast<int>(tiles.size()));
    int cursor = 0;
    int y_cursor = 0;
    for (const parallel::TileBand &b : bands) {
        EXPECT_EQ(b.firstTile, cursor);
        EXPECT_GT(b.lastTile, b.firstTile);
        cursor = b.lastTile;
        EXPECT_EQ(b.y0, y_cursor);
        EXPECT_GT(b.y1, b.y0);
        y_cursor = b.y1;
        // Every tile of the band lies inside the band's y range.
        for (int ti = b.firstTile; ti < b.lastTile; ++ti) {
            EXPECT_GE(tiles[ti].y0, b.y0);
            EXPECT_LE(tiles[ti].y1, b.y1);
        }
    }
    EXPECT_EQ(y_cursor, ny);
}

TEST(TileBands, RowsRoundUpToWholeTileRows)
{
    // rows_per_band is rounded up to whole tile rows so a band never
    // splits a tile; a band request smaller than the grain still
    // yields one tile row per band.
    const auto bands = parallel::makeTileBands(20, 20, 8, 3);
    ASSERT_EQ(bands.size(), 3u); // ceil(20/8) = 3 tile rows
    EXPECT_EQ(bands[0].y1 - bands[0].y0, 8);
    EXPECT_EQ(bands[2].y1 - bands[2].y0, 4); // odd trailing band
}

TEST(TileBands, BandLargerThanGridGivesSingleBand)
{
    const auto bands = parallel::makeTileBands(10, 10, 4, 100);
    ASSERT_EQ(bands.size(), 1u);
    EXPECT_EQ(bands[0].firstTile, 0);
    EXPECT_EQ(bands[0].y0, 0);
    EXPECT_EQ(bands[0].y1, 10);
}

TEST(TileBands, EmptyGridAndBadGrain)
{
    EXPECT_TRUE(parallel::makeTileBands(0, 8, 4, 2).empty());
    EXPECT_TRUE(parallel::makeTileBands(8, 0, 4, 2).empty());
    EXPECT_THROW(parallel::makeTileBands(8, 8, 0, 2),
                 std::invalid_argument);
    // Non-positive rows_per_band clamps to one tile row per band.
    const auto bands = parallel::makeTileBands(8, 8, 4, 0);
    EXPECT_EQ(bands.size(), 2u);
}

TEST(Tiles, ParallelForTilesVisitsEveryTileOnce)
{
    const int nx = 13, ny = 9, grain = 4;
    const auto tiles = parallel::makeTiles(nx, ny, grain);
    std::vector<std::atomic<int>> hits(tiles.size());
    std::atomic<size_t> calls{0};
    parallel::parallelForTiles(
        ThreadPool::global(), nx, ny, grain, 7, [&](const Tile &t, int) {
            for (size_t i = 0; i < tiles.size(); ++i) {
                if (tiles[i].x0 == t.x0 && tiles[i].y0 == t.y0 &&
                    tiles[i].x1 == t.x1 && tiles[i].y1 == t.y1)
                    ++hits[i];
            }
            ++calls;
        });
    EXPECT_EQ(calls.load(), tiles.size());
    for (size_t i = 0; i < tiles.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

// ---------------------------------------------------------------------
// Determinism suite: bitwise-identical output and identical profile
// step counts for threads in {1, 2, 7, hw} on BM3D, BM3D-MR (plain
// and across-rows), covering both the hard-threshold and the Wiener
// stage of each run.
// ---------------------------------------------------------------------

namespace {

void
expectBitwiseEqual(const image::ImageF &a, const image::ImageF &b,
                   const char *what)
{
    ASSERT_TRUE(a.sameShape(b)) << what;
    ASSERT_EQ(a.raw().size(), b.raw().size()) << what;
    // memcmp, not float compare: the contract is bit-identity (it also
    // distinguishes -0.0f from 0.0f and would catch NaN drift).
    EXPECT_EQ(std::memcmp(a.raw().data(), b.raw().data(),
                          a.raw().size() * sizeof(float)),
              0)
        << what;
}

void
expectSameOps(const bm3d::Profile &a, const bm3d::Profile &b)
{
    for (int i = 0; i < bm3d::kNumSteps; ++i) {
        const auto step = static_cast<bm3d::Step>(i);
        const auto &oa = a.ops(step);
        const auto &ob = b.ops(step);
        EXPECT_EQ(oa.multiplies, ob.multiplies) << bm3d::toString(step);
        EXPECT_EQ(oa.additions, ob.additions) << bm3d::toString(step);
        EXPECT_EQ(oa.comparisons, ob.comparisons) << bm3d::toString(step);
        EXPECT_EQ(oa.memoryReads, ob.memoryReads) << bm3d::toString(step);
        EXPECT_EQ(oa.memoryWrites, ob.memoryWrites) << bm3d::toString(step);
    }
    EXPECT_EQ(a.mr().bm1Hits, b.mr().bm1Hits);
    EXPECT_EQ(a.mr().bm1Refs, b.mr().bm1Refs);
    EXPECT_EQ(a.mr().bm2Hits, b.mr().bm2Hits);
    EXPECT_EQ(a.mr().bm2Refs, b.mr().bm2Refs);
    EXPECT_EQ(a.mr().bm1Candidates, b.mr().bm1Candidates);
    EXPECT_EQ(a.mr().bm2Candidates, b.mr().bm2Candidates);
    EXPECT_EQ(a.mr().bm1VertHits, b.mr().bm1VertHits);
    EXPECT_EQ(a.mr().bm2VertHits, b.mr().bm2VertHits);
}

bm3d::Bm3dConfig
determinismConfig()
{
    bm3d::Bm3dConfig cfg;
    cfg.sigma = 25.0f;
    cfg.searchWindow1 = 13;
    cfg.searchWindow2 = 11;
    // Small grain so a 40x40 scene decomposes into a real multi-tile
    // grid (the default grain would make determinism trivially hold).
    cfg.tileGrain = 7;
    return cfg;
}

/** Restores the startup dispatch level when a scope ends. */
class ScopedSimdLevel
{
  public:
    ScopedSimdLevel() : saved_(simd::activeLevel()) {}
    ~ScopedSimdLevel() { simd::setLevel(saved_); }

  private:
    simd::Level saved_;
};

void
checkDeterministicAcrossThreadCounts(bm3d::Bm3dConfig cfg,
                                     int channels = 1)
{
    image::ImageF clean =
        image::makeScene(image::SceneKind::Street, 40, 40, channels, 77);
    image::ImageF noisy = image::addGaussianNoise(clean, cfg.sigma, 78);

    cfg.numThreads = 1;
    auto reference = bm3d::Bm3d(cfg).denoise(noisy);

    // The determinism contract is two-dimensional since the SIMD layer
    // landed: output must be bitwise identical across thread counts AND
    // across dispatch levels (scalar / SSE / AVX2 keep the exact scalar
    // reduction order). Sweep every level the CPU supports at every
    // thread count against the one reference run.
    ScopedSimdLevel restore;
    const int counts[] = {1, 2, 7, parallel::hardwareThreads()};
    for (int l = 0; l <= static_cast<int>(simd::bestSupported()); ++l) {
        simd::setLevel(static_cast<simd::Level>(l));
        for (int threads : counts) {
            cfg.numThreads = threads;
            auto run = bm3d::Bm3d(cfg).denoise(noisy);
            SCOPED_TRACE(testing::Message()
                         << "simd=" << simd::toString(simd::activeLevel())
                         << " threads=" << threads);
            // basic = hard-threshold stage, output = Wiener stage.
            expectBitwiseEqual(reference.basic, run.basic,
                               "basic estimate");
            expectBitwiseEqual(reference.output, run.output,
                               "final output");
            expectSameOps(reference.profile, run.profile);
        }
    }
}

} // namespace

TEST(Determinism, PlainBm3dBitwiseIdenticalAcrossThreadCounts)
{
    checkDeterministicAcrossThreadCounts(determinismConfig());
}

TEST(Determinism, ColorBm3dBitwiseIdenticalAcrossThreadCounts)
{
    checkDeterministicAcrossThreadCounts(determinismConfig(), 3);
}

TEST(Determinism, MrBitwiseIdenticalAcrossThreadCounts)
{
    bm3d::Bm3dConfig cfg = determinismConfig();
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;
    checkDeterministicAcrossThreadCounts(cfg);
}

TEST(Determinism, MrAcrossRowsBitwiseIdenticalAcrossThreadCounts)
{
    bm3d::Bm3dConfig cfg = determinismConfig();
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;
    cfg.mr.acrossRows = true;
    checkDeterministicAcrossThreadCounts(cfg);
}

TEST(Determinism, TracingDoesNotChangeOutput)
{
    // Observability must be pure observation: the same run with the
    // span tracer recording (including the fine-grained per-step
    // category) must produce bitwise-identical output to an untraced
    // run. A tracer that perturbed scheduling into different merge
    // orders, or touched image state, would show up here.
    bm3d::Bm3dConfig cfg = determinismConfig();
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;
    cfg.numThreads = 2;
    image::ImageF clean =
        image::makeScene(image::SceneKind::Street, 128, 128, 1, 90);
    image::ImageF noisy = image::addGaussianNoise(clean, cfg.sigma, 91);

    ASSERT_FALSE(obs::Tracer::globalEnabled());
    auto untraced = bm3d::Bm3d(cfg).denoise(noisy);

    const std::string trace_path =
        testing::TempDir() + "parallel_trace_determinism.json";
    obs::Tracer::global().start(trace_path);
    obs::Tracer::global().setStepTracing(true);
    auto traced = bm3d::Bm3d(cfg).denoise(noisy);
    obs::Tracer::global().setStepTracing(false);
    const size_t traced_events = obs::Tracer::global().eventCount();
    obs::Tracer::global().stop();
    ASSERT_FALSE(obs::Tracer::globalEnabled());

    // The traced run must actually have recorded something (stage +
    // tile + step spans), or this test checks nothing.
    EXPECT_GT(traced_events, 0u);
    expectBitwiseEqual(untraced.basic, traced.basic, "basic estimate");
    expectBitwiseEqual(untraced.output, traced.output, "final output");
    expectSameOps(untraced.profile, traced.profile);

    std::remove(trace_path.c_str());
}

TEST(Determinism, AutoThreadCountMatchesSingleThread)
{
    bm3d::Bm3dConfig cfg = determinismConfig();
    image::ImageF clean =
        image::makeScene(image::SceneKind::Nature, 40, 40, 1, 80);
    image::ImageF noisy = image::addGaussianNoise(clean, cfg.sigma, 81);

    cfg.numThreads = 1;
    auto single = bm3d::Bm3d(cfg).denoise(noisy);
    cfg.numThreads = 0; // auto: hardware thread count
    auto autodetect = bm3d::Bm3d(cfg).denoise(noisy);
    expectBitwiseEqual(single.output, autodetect.output, "auto threads");
}
