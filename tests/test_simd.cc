/**
 * @file
 * Bitwise parity suite for the runtime-dispatched SIMD kernel layer:
 * every kernel, at every level the CPU supports, must reproduce the
 * scalar reference bit for bit — on random inputs, on adversarial
 * saturating/overflow inputs, and on sign-of-zero / NaN / infinity
 * edge cases. Also covers the dispatch mechanics (setLevel clamping,
 * kernelsFor addressing) and cross-checks the integrated transforms
 * (Dct2D, Haar1D) across levels.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "simd/simd.h"
#include "transforms/dct.h"
#include "transforms/distance.h"
#include "transforms/haar.h"

using namespace ideal;

namespace {

/** Deterministic xorshift64* generator (seeds fixed per test). */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}

    uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    float
    uniform(float lo, float hi)
    {
        const double u =
            static_cast<double>(next() >> 11) / 9007199254740992.0;
        return lo + static_cast<float>(u * (hi - lo));
    }

  private:
    uint64_t state_;
};

std::vector<simd::Level>
availableLevels()
{
    std::vector<simd::Level> levels;
    for (int l = 0; l <= static_cast<int>(simd::bestSupported()); ++l)
        levels.push_back(static_cast<simd::Level>(l));
    return levels;
}

/** EXPECT bit equality of two floats (distinguishes -0.0, NaN bits). */
void
expectBitEqual(float a, float b, const char *what, int index)
{
    uint32_t ba, bb;
    std::memcpy(&ba, &a, 4);
    std::memcpy(&bb, &b, 4);
    EXPECT_EQ(ba, bb) << what << " [" << index << "]: " << a << " vs "
                      << b;
}

void
expectBitEqual(const float *a, const float *b, int count, const char *what)
{
    for (int i = 0; i < count; ++i)
        expectBitEqual(a[i], b[i], what, i);
}

/**
 * Input families for the parity sweeps. "Saturating" stresses the
 * reduction order: values large enough that partial sums round
 * differently under any reassociation, plus cancellation pairs.
 */
std::vector<std::vector<float>>
inputFamilies(Rng &rng, int len)
{
    std::vector<std::vector<float>> families;

    std::vector<float> plain(len);
    for (float &v : plain)
        v = rng.uniform(-255.0f, 255.0f);
    families.push_back(plain);

    std::vector<float> tiny(len);
    for (float &v : tiny)
        v = rng.uniform(-1e-5f, 1e-5f);
    families.push_back(tiny);

    std::vector<float> huge(len);
    for (float &v : huge)
        v = rng.uniform(-1e18f, 1e18f); // squares near FLT_MAX
    families.push_back(huge);

    std::vector<float> mixed(len);
    for (int i = 0; i < len; ++i)
        mixed[i] = (i % 2 == 0) ? rng.uniform(1e15f, 1e18f)
                                : rng.uniform(-1e-3f, 1e-3f);
    families.push_back(mixed);

    std::vector<float> zeros(len, 0.0f);
    for (int i = 0; i < len; i += 3)
        zeros[i] = -0.0f;
    families.push_back(zeros);

    return families;
}

class SimdParity : public ::testing::Test
{
  protected:
    void TearDown() override { simd::setLevel(simd::bestSupported()); }
};

} // namespace

// ---------------------------------------------------------------------
// Dispatch mechanics.
// ---------------------------------------------------------------------

TEST_F(SimdParity, LevelNamesAreStable)
{
    EXPECT_STREQ(simd::toString(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::toString(simd::Level::Sse), "sse");
    EXPECT_STREQ(simd::toString(simd::Level::Avx2), "avx2");
}

TEST_F(SimdParity, SetLevelRoundTripsAndClamps)
{
    for (simd::Level level : availableLevels()) {
        simd::setLevel(level);
        EXPECT_EQ(simd::activeLevel(), level);
    }
    // A request above what the CPU supports clamps down.
    simd::setLevel(simd::Level::Avx2);
    EXPECT_LE(simd::activeLevel(), simd::bestSupported());
}

TEST_F(SimdParity, KernelsForMatchesActiveTable)
{
    for (simd::Level level : availableLevels()) {
        simd::setLevel(level);
        EXPECT_EQ(&simd::kernels(), &simd::kernelsFor(level));
    }
}

TEST_F(SimdParity, KernelTablesAreFullyPopulated)
{
    for (simd::Level level : availableLevels()) {
        const simd::KernelTable &k = simd::kernelsFor(level);
        EXPECT_NE(k.ssd, nullptr);
        EXPECT_NE(k.ssdBounded, nullptr);
        EXPECT_NE(k.ssdFull, nullptr);
        EXPECT_NE(k.ssdBatch16, nullptr);
        EXPECT_NE(k.dct4Forward, nullptr);
        EXPECT_NE(k.dct4Inverse, nullptr);
        EXPECT_NE(k.haarForwardPair, nullptr);
        EXPECT_NE(k.haarInversePair, nullptr);
        EXPECT_NE(k.hardThreshold, nullptr);
        EXPECT_NE(k.wienerApply, nullptr);
        EXPECT_NE(k.aggregateAdd, nullptr);
        EXPECT_NE(k.ssdSoa, nullptr);
        EXPECT_NE(k.ssdSoaBatch, nullptr);
        EXPECT_NE(k.mergeAdd, nullptr);
        EXPECT_NE(k.ssdI16, nullptr);
        EXPECT_NE(k.ssdBoundedI16, nullptr);
        EXPECT_NE(k.ssdSoaI16, nullptr);
        EXPECT_NE(k.ssdSoaBatchI16, nullptr);
        EXPECT_NE(k.ssdPairBatchI16, nullptr);
        EXPECT_NE(k.dct4ForwardI16, nullptr);
        EXPECT_NE(k.haarForwardPairI16, nullptr);
        EXPECT_NE(k.haarInversePairI16, nullptr);
        EXPECT_NE(k.hardThresholdI16, nullptr);
    }
}

// ---------------------------------------------------------------------
// SSD kernels.
// ---------------------------------------------------------------------

TEST_F(SimdParity, SsdMatchesScalarBitwise)
{
    Rng rng(101);
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int len : {1, 3, 7, 8, 9, 15, 16, 17, 24, 33, 64, 100}) {
        for (const auto &a : inputFamilies(rng, len)) {
            std::vector<float> b(len);
            for (float &v : b)
                v = rng.uniform(-255.0f, 255.0f);
            const float expected = ref.ssd(a.data(), b.data(), len);
            for (simd::Level level : availableLevels()) {
                const float got = simd::kernelsFor(level).ssd(
                    a.data(), b.data(), len);
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " len=" << len);
                expectBitEqual(expected, got, "ssd", 0);
            }
        }
    }
}

TEST_F(SimdParity, SsdBoundedMatchesScalarBitwiseIncludingEarlyExit)
{
    Rng rng(202);
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int len : {8, 16, 32, 48, 100}) {
        for (const auto &a : inputFamilies(rng, len)) {
            std::vector<float> b(len);
            for (float &v : b)
                v = rng.uniform(-255.0f, 255.0f);
            const float full = ref.ssdFull(a.data(), b.data(), len);
            // Bounds that never trigger, always trigger, and trigger
            // mid-way exercise each early-exit position.
            for (float bound : {std::numeric_limits<float>::infinity(),
                                full * 2.0f, full, full * 0.5f,
                                full * 0.1f, 0.0f}) {
                const float expected = ref.ssdBounded(a.data(), b.data(),
                                                      len, bound);
                for (simd::Level level : availableLevels()) {
                    const float got = simd::kernelsFor(level).ssdBounded(
                        a.data(), b.data(), len, bound);
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " len=" << len << " bound=" << bound);
                    expectBitEqual(expected, got, "ssdBounded", 0);
                }
            }
        }
    }
}

TEST_F(SimdParity, SsdVariantsAgreeBitwiseAtPatchLength16)
{
    // The contract the batched block-matching path relies on: at 16
    // elements, ssd, ssdFull and ssdBounded (any bound) are the same
    // reduction tree, at every level.
    Rng rng(303);
    for (int trial = 0; trial < 50; ++trial) {
        float a[16], b[16];
        for (int i = 0; i < 16; ++i) {
            a[i] = rng.uniform(-1e4f, 1e4f);
            b[i] = rng.uniform(-1e4f, 1e4f);
        }
        for (simd::Level level : availableLevels()) {
            const simd::KernelTable &k = simd::kernelsFor(level);
            const float plain = k.ssd(a, b, 16);
            const float full = k.ssdFull(a, b, 16);
            const float bounded = k.ssdBounded(a, b, 16, plain * 0.5f);
            SCOPED_TRACE(simd::toString(level));
            expectBitEqual(plain, full, "ssd vs ssdFull", trial);
            expectBitEqual(plain, bounded, "ssd vs ssdBounded", trial);
        }
    }
}

TEST_F(SimdParity, SsdBatch16MatchesSsdFullPerCandidate)
{
    Rng rng(404);
    float ref_patch[16];
    std::vector<float> cands(16 * 8);
    for (float &v : ref_patch)
        v = rng.uniform(-255.0f, 255.0f);
    for (float &v : cands)
        v = rng.uniform(-255.0f, 255.0f);

    for (simd::Level level : availableLevels()) {
        const simd::KernelTable &k = simd::kernelsFor(level);
        for (int count = 1; count <= 8; ++count) {
            float out[8];
            k.ssdBatch16(ref_patch, cands.data(), count, out);
            for (int i = 0; i < count; ++i) {
                const float expected =
                    k.ssdFull(ref_patch, cands.data() + 16 * i, 16);
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " count=" << count);
                expectBitEqual(expected, out[i], "ssdBatch16", i);
            }
        }
    }
}

namespace {

/**
 * Coefficient-major (SoA) fixture: @p len planes of @p positions
 * candidates each, plus the pointer array the kernels take. slot(k, i)
 * is coefficient k of candidate i.
 */
struct SoaPlanes
{
    SoaPlanes(int len, int positions)
        : positions(positions),
          store(static_cast<size_t>(len) * positions), planes(len)
    {
        for (int k = 0; k < len; ++k)
            planes[k] = store.data() + static_cast<size_t>(k) * positions;
    }

    float &
    slot(int k, int i)
    {
        return store[static_cast<size_t>(k) * positions + i];
    }

    int positions;
    std::vector<float> store;
    std::vector<const float *> planes;
};

} // namespace

TEST_F(SimdParity, SsdSoaMatchesScalarBitwiseIncludingEarlyExit)
{
    Rng rng(1414);
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int len : {1, 7, 9, 16, 25, 33, 64}) {
        for (const auto &a : inputFamilies(rng, len)) {
            SoaPlanes pa(len, 3), pb(len, 3);
            const size_t off_a = 1, off_b = 2;
            for (int k = 0; k < len; ++k) {
                for (int i = 0; i < 3; ++i) {
                    pa.slot(k, i) = rng.uniform(-255.0f, 255.0f);
                    pb.slot(k, i) = rng.uniform(-255.0f, 255.0f);
                }
                pa.slot(k, static_cast<int>(off_a)) = a[k];
            }
            const float full = ref.ssdSoa(
                pa.planes.data(), off_a, pb.planes.data(), off_b, len,
                std::numeric_limits<float>::infinity());
            for (float bound : {std::numeric_limits<float>::infinity(),
                                full * 2.0f, full, full * 0.5f, 0.0f}) {
                const float expected =
                    ref.ssdSoa(pa.planes.data(), off_a, pb.planes.data(),
                               off_b, len, bound);
                for (simd::Level level : availableLevels()) {
                    const float got = simd::kernelsFor(level).ssdSoa(
                        pa.planes.data(), off_a, pb.planes.data(), off_b,
                        len, bound);
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " len=" << len << " bound=" << bound);
                    expectBitEqual(expected, got, "ssdSoa", 0);
                }
            }
        }
    }
}

TEST_F(SimdParity, SsdSoaAgreesWithSsdFullOnGatheredDescriptors)
{
    // The layout-independence contract: the SoA distance equals the
    // position-major ssdFull of the gathered descriptors bit for bit,
    // at every level (same per-16-block reduction tree).
    Rng rng(1515);
    for (int len : {4, 9, 16, 32, 48}) {
        SoaPlanes pa(len, 4), pb(len, 4);
        std::vector<float> a(len), b(len);
        for (int k = 0; k < len; ++k) {
            for (int i = 0; i < 4; ++i) {
                pa.slot(k, i) = rng.uniform(-1e4f, 1e4f);
                pb.slot(k, i) = rng.uniform(-1e4f, 1e4f);
            }
            a[k] = pa.slot(k, 3);
            b[k] = pb.slot(k, 0);
        }
        for (simd::Level level : availableLevels()) {
            const simd::KernelTable &k = simd::kernelsFor(level);
            const float soa =
                k.ssdSoa(pa.planes.data(), 3, pb.planes.data(), 0, len,
                         std::numeric_limits<float>::infinity());
            const float aos = k.ssdFull(a.data(), b.data(), len);
            SCOPED_TRACE(testing::Message()
                         << "level=" << simd::toString(level)
                         << " len=" << len);
            expectBitEqual(aos, soa, "ssdSoa vs ssdFull", 0);
        }
    }
}

TEST_F(SimdParity, SsdSoaBatchMatchesSsdSoaPerCandidate)
{
    Rng rng(1616);
    const float nan = std::numeric_limits<float>::quiet_NaN();
    for (int len : {9, 16, 33}) {
        for (int count : {1, 3, 7, 8, 9, 16, 20, 49}) {
            SoaPlanes planes(len, count);
            std::vector<float> ref_desc(len);
            for (int k = 0; k < len; ++k) {
                ref_desc[k] = rng.uniform(-255.0f, 255.0f);
                for (int i = 0; i < count; ++i)
                    planes.slot(k, i) = rng.uniform(-255.0f, 255.0f);
            }
            // Edge-case candidates: signed zeros and NaN lanes must
            // propagate identically through the vector and the scalar
            // tail paths.
            planes.slot(0, 0) = -0.0f;
            if (count > 1)
                planes.slot(len - 1, 1) = nan;
            const simd::KernelTable &ref =
                simd::kernelsFor(simd::Level::Scalar);
            std::vector<float> expected(count);
            ref.ssdSoaBatch(ref_desc.data(), planes.planes.data(), 0, len,
                            count, expected.data());
            for (simd::Level level : availableLevels()) {
                const simd::KernelTable &k = simd::kernelsFor(level);
                std::vector<float> out(count, -1.0f);
                k.ssdSoaBatch(ref_desc.data(), planes.planes.data(), 0,
                              len, count, out.data());
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " len=" << len << " count=" << count);
                expectBitEqual(expected.data(), out.data(), count,
                               "ssdSoaBatch vs scalar");
            }
        }
    }
}

TEST_F(SimdParity, SsdSoaBatchEqualsSingleCandidateSsdSoa)
{
    // batch[i] must be bitwise the single-pair ssdSoa of candidate i:
    // build a reference that itself lives in a plane set so both
    // kernels see identical operands.
    Rng rng(1717);
    const float inf = std::numeric_limits<float>::infinity();
    for (int len : {16, 25}) {
        const int count = 13;
        SoaPlanes planes(len, count);
        SoaPlanes refp(len, 1);
        std::vector<float> ref_desc(len);
        for (int k = 0; k < len; ++k) {
            for (int i = 0; i < count; ++i)
                planes.slot(k, i) = rng.uniform(-1e3f, 1e3f);
            ref_desc[k] = rng.uniform(-1e3f, 1e3f);
            refp.slot(k, 0) = ref_desc[k];
        }
        for (simd::Level level : availableLevels()) {
            const simd::KernelTable &k = simd::kernelsFor(level);
            float out[16];
            k.ssdSoaBatch(ref_desc.data(), planes.planes.data(), 0, len,
                          count, out);
            for (int i = 0; i < count; ++i) {
                const float single =
                    k.ssdSoa(refp.planes.data(), 0, planes.planes.data(),
                             static_cast<size_t>(i), len, inf);
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " len=" << len << " i=" << i);
                expectBitEqual(single, out[i], "batch vs single", i);
            }
        }
    }
}

TEST_F(SimdParity, MergeAddMatchesScalarBitwise)
{
    Rng rng(1818);
    for (int count : {1, 3, 4, 7, 8, 16, 21, 64}) {
        std::vector<float> num0(count), den0(count), onum(count),
            oden(count);
        for (int i = 0; i < count; ++i) {
            num0[i] = rng.uniform(-1e4f, 1e4f);
            den0[i] = rng.uniform(0.0f, 1e4f);
            onum[i] = rng.uniform(-1e4f, 1e4f);
            oden[i] = rng.uniform(0.0f, 1e4f);
        }
        num0[0] = -0.0f;
        onum[0] = 0.0f;

        std::vector<float> num_ref = num0, den_ref = den0;
        simd::kernelsFor(simd::Level::Scalar)
            .mergeAdd(num_ref.data(), den_ref.data(), onum.data(),
                      oden.data(), count);
        for (simd::Level level : availableLevels()) {
            std::vector<float> num = num0, den = den0;
            simd::kernelsFor(level).mergeAdd(num.data(), den.data(),
                                             onum.data(), oden.data(),
                                             count);
            SCOPED_TRACE(testing::Message()
                         << "level=" << simd::toString(level)
                         << " count=" << count);
            expectBitEqual(num_ref.data(), num.data(), count, "num");
            expectBitEqual(den_ref.data(), den.data(), count, "den");
        }
    }
}

// ---------------------------------------------------------------------
// DCT kernels.
// ---------------------------------------------------------------------

TEST_F(SimdParity, Dct4KernelsMatchScalarBitwise)
{
    Rng rng(505);
    // The real folded half-matrices for n = 4 (values only matter for
    // realism; parity must hold for any coefficients).
    const float even[4] = {0.5f, 0.5f, 0.65328148f, -0.27059805f};
    const float odd[4] = {0.65328148f, 0.27059805f, 0.27059805f,
                          -0.65328148f};
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<std::vector<float>> families = inputFamilies(rng, 16);
        for (const auto &in : families) {
            float expected[16], got[16];
            ref.dct4Forward(in.data(), expected, even, odd);
            for (simd::Level level : availableLevels()) {
                simd::kernelsFor(level).dct4Forward(in.data(), got, even,
                                                    odd);
                SCOPED_TRACE(simd::toString(level));
                expectBitEqual(expected, got, 16, "dct4Forward");
            }
            ref.dct4Inverse(in.data(), expected, even, odd);
            for (simd::Level level : availableLevels()) {
                simd::kernelsFor(level).dct4Inverse(in.data(), got, even,
                                                    odd);
                SCOPED_TRACE(simd::toString(level));
                expectBitEqual(expected, got, 16, "dct4Inverse");
            }
        }
    }
}

TEST_F(SimdParity, Dct2DTransformIdenticalAcrossLevels)
{
    // Integration: the real Dct2D(4) must produce identical bits at
    // every dispatch level (forward and inverse).
    Rng rng(606);
    transforms::Dct2D dct(4);
    float in[16];
    for (float &v : in)
        v = rng.uniform(-255.0f, 255.0f);

    simd::setLevel(simd::Level::Scalar);
    float fwd_ref[16], inv_ref[16];
    dct.forward(in, fwd_ref);
    dct.inverse(fwd_ref, inv_ref);

    for (simd::Level level : availableLevels()) {
        simd::setLevel(level);
        float fwd[16], inv[16];
        dct.forward(in, fwd);
        dct.inverse(fwd, inv);
        SCOPED_TRACE(simd::toString(level));
        expectBitEqual(fwd_ref, fwd, 16, "Dct2D::forward");
        expectBitEqual(inv_ref, inv, 16, "Dct2D::inverse");
    }
}

// ---------------------------------------------------------------------
// Haar kernels.
// ---------------------------------------------------------------------

TEST_F(SimdParity, HaarPairKernelsMatchScalarBitwise)
{
    Rng rng(707);
    const float factor = 1.0f / std::sqrt(2.0f);
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int width : {1, 3, 4, 7, 8, 15, 16, 31, 64}) {
        for (const auto &even : inputFamilies(rng, width)) {
            std::vector<float> odd(width);
            for (float &v : odd)
                v = rng.uniform(-255.0f, 255.0f);
            std::vector<float> a_ref(width), d_ref(width);
            ref.haarForwardPair(even.data(), odd.data(), a_ref.data(),
                                d_ref.data(), factor, width);
            for (simd::Level level : availableLevels()) {
                std::vector<float> a(width), d(width);
                simd::kernelsFor(level).haarForwardPair(
                    even.data(), odd.data(), a.data(), d.data(), factor,
                    width);
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " width=" << width);
                expectBitEqual(a_ref.data(), a.data(), width, "approx");
                expectBitEqual(d_ref.data(), d.data(), width, "detail");
            }

            std::vector<float> e_ref(width), o_ref(width);
            ref.haarInversePair(even.data(), odd.data(), e_ref.data(),
                                o_ref.data(), factor, width);
            for (simd::Level level : availableLevels()) {
                std::vector<float> e(width), o(width);
                simd::kernelsFor(level).haarInversePair(
                    even.data(), odd.data(), e.data(), o.data(), factor,
                    width);
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " width=" << width);
                expectBitEqual(e_ref.data(), e.data(), width, "out_even");
                expectBitEqual(o_ref.data(), o.data(), width, "out_odd");
            }
        }
    }
}

TEST_F(SimdParity, HaarForwardPairSupportsApproxAliasingEven)
{
    // forwardRows writes the approximation row in place over its even
    // input; the kernel contract allows approx == even.
    Rng rng(808);
    const float factor = 1.0f / std::sqrt(2.0f);
    for (int width : {4, 8, 16, 33}) {
        std::vector<float> even(width), odd(width);
        for (int i = 0; i < width; ++i) {
            even[i] = rng.uniform(-255.0f, 255.0f);
            odd[i] = rng.uniform(-255.0f, 255.0f);
        }
        for (simd::Level level : availableLevels()) {
            std::vector<float> sep_a(width), sep_d(width);
            const simd::KernelTable &k = simd::kernelsFor(level);
            k.haarForwardPair(even.data(), odd.data(), sep_a.data(),
                              sep_d.data(), factor, width);
            std::vector<float> aliased = even;
            std::vector<float> d(width);
            k.haarForwardPair(aliased.data(), odd.data(), aliased.data(),
                              d.data(), factor, width);
            SCOPED_TRACE(testing::Message()
                         << "level=" << simd::toString(level)
                         << " width=" << width);
            expectBitEqual(sep_a.data(), aliased.data(), width,
                           "aliased approx");
            expectBitEqual(sep_d.data(), d.data(), width, "detail");
        }
    }
}

TEST_F(SimdParity, Haar1DRowsIdenticalAcrossLevels)
{
    // Integration: the 16-point row-wise Haar used by the denoising
    // engine must produce identical bits at every dispatch level.
    Rng rng(909);
    transforms::Haar1D haar(16);
    const int width = 16;
    std::vector<float> in(16 * width);
    for (float &v : in)
        v = rng.uniform(-255.0f, 255.0f);

    simd::setLevel(simd::Level::Scalar);
    std::vector<float> fwd_ref(in.size()), inv_ref(in.size());
    haar.forwardRows(in.data(), fwd_ref.data(), width, width);
    haar.inverseRows(fwd_ref.data(), inv_ref.data(), width, width);

    for (simd::Level level : availableLevels()) {
        simd::setLevel(level);
        std::vector<float> fwd(in.size()), inv(in.size());
        haar.forwardRows(in.data(), fwd.data(), width, width);
        haar.inverseRows(fwd.data(), inv.data(), width, width);
        SCOPED_TRACE(simd::toString(level));
        expectBitEqual(fwd_ref.data(), fwd.data(),
                       static_cast<int>(fwd.size()), "forwardRows");
        expectBitEqual(inv_ref.data(), inv.data(),
                       static_cast<int>(inv.size()), "inverseRows");
    }
}

// ---------------------------------------------------------------------
// Shrinkage and aggregation kernels.
// ---------------------------------------------------------------------

TEST_F(SimdParity, HardThresholdMatchesScalarBitwiseAndByCount)
{
    const float thr = 10.0f;
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    // Straddle the threshold, include exact ties (kept: < is strict),
    // signed zeros, NaN (kept: the comparison is false) and infinities.
    const std::vector<float> base = {0.0f,   -0.0f, 5.0f,  -5.0f, 10.0f,
                                     -10.0f, 9.99f, 10.01f, 1e30f, -1e30f,
                                     inf,    -inf,  nan,    -2.5f, 64.0f,
                                     -11.0f, 3.0f};
    for (int count : {1, 4, 8, 16, 17}) {
        std::vector<float> ref_v(base.begin(), base.begin() + count);
        const int ref_kept = simd::kernelsFor(simd::Level::Scalar)
                                 .hardThreshold(ref_v.data(), count, thr);
        for (simd::Level level : availableLevels()) {
            std::vector<float> v(base.begin(), base.begin() + count);
            const int kept = simd::kernelsFor(level).hardThreshold(
                v.data(), count, thr);
            SCOPED_TRACE(testing::Message()
                         << "level=" << simd::toString(level)
                         << " count=" << count);
            EXPECT_EQ(ref_kept, kept);
            expectBitEqual(ref_v.data(), v.data(), count, "thresholded");
        }
    }
}

TEST_F(SimdParity, HardThresholdZeroesToPositiveZero)
{
    // The zeroed coefficients must be +0.0f (their bit pattern feeds
    // the bitwise determinism contract downstream).
    for (simd::Level level : availableLevels()) {
        float v[8] = {-0.5f, 0.5f, -0.0f, 0.0f, -3.0f, 3.0f, -7.9f, 7.9f};
        simd::kernelsFor(level).hardThreshold(v, 8, 8.0f);
        for (int i = 0; i < 8; ++i) {
            uint32_t bits;
            std::memcpy(&bits, &v[i], 4);
            EXPECT_EQ(bits, 0u)
                << simd::toString(level) << " [" << i << "]";
        }
    }
}

TEST_F(SimdParity, WienerApplyMatchesScalarBitwise)
{
    Rng rng(1111);
    const float s2 = 625.0f; // sigma 25
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int count : {1, 4, 8, 16, 19}) {
        for (const auto &b : inputFamilies(rng, count)) {
            std::vector<float> v0(count);
            for (float &v : v0)
                v = rng.uniform(-255.0f, 255.0f);

            std::vector<float> v_ref = v0, w_ref(count);
            const int strong_ref = ref.wienerApply(
                v_ref.data(), b.data(), w_ref.data(), count, s2);
            for (simd::Level level : availableLevels()) {
                std::vector<float> v = v0, w(count);
                const int strong = simd::kernelsFor(level).wienerApply(
                    v.data(), b.data(), w.data(), count, s2);
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " count=" << count);
                EXPECT_EQ(strong_ref, strong);
                expectBitEqual(v_ref.data(), v.data(), count, "v");
                expectBitEqual(w_ref.data(), w.data(), count, "w");
            }
        }
    }
}

TEST_F(SimdParity, AggregateAddMatchesScalarBitwise)
{
    Rng rng(1212);
    for (int count : {1, 3, 4, 8, 16, 21}) {
        std::vector<float> num0(count), den0(count), pix(count);
        for (int i = 0; i < count; ++i) {
            num0[i] = rng.uniform(-1e4f, 1e4f);
            den0[i] = rng.uniform(0.0f, 1e4f);
            pix[i] = rng.uniform(-255.0f, 255.0f);
        }
        const float weight = rng.uniform(0.01f, 1.0f);

        std::vector<float> num_ref = num0, den_ref = den0;
        simd::kernelsFor(simd::Level::Scalar)
            .aggregateAdd(num_ref.data(), den_ref.data(), pix.data(),
                          weight, count);
        for (simd::Level level : availableLevels()) {
            std::vector<float> num = num0, den = den0;
            simd::kernelsFor(level).aggregateAdd(
                num.data(), den.data(), pix.data(), weight, count);
            SCOPED_TRACE(testing::Message()
                         << "level=" << simd::toString(level)
                         << " count=" << count);
            expectBitEqual(num_ref.data(), num.data(), count, "num");
            expectBitEqual(den_ref.data(), den.data(), count, "den");
        }
    }
}

// ---------------------------------------------------------------------
// distance.h wrappers follow the active level.
// ---------------------------------------------------------------------

TEST_F(SimdParity, DistanceWrappersDispatchOnActiveLevel)
{
    Rng rng(1313);
    float a[33], b[33];
    for (int i = 0; i < 33; ++i) {
        a[i] = rng.uniform(-255.0f, 255.0f);
        b[i] = rng.uniform(-255.0f, 255.0f);
    }
    simd::setLevel(simd::Level::Scalar);
    const float d_ref = transforms::squaredDistance(a, b, 33);
    const float f_ref = transforms::squaredDistanceFull(a, b, 33);
    const float bd_ref = transforms::squaredDistanceBounded(
        a, b, 33, f_ref * 0.25f);
    for (simd::Level level : availableLevels()) {
        simd::setLevel(level);
        SCOPED_TRACE(simd::toString(level));
        expectBitEqual(d_ref, transforms::squaredDistance(a, b, 33),
                       "squaredDistance", 0);
        expectBitEqual(f_ref, transforms::squaredDistanceFull(a, b, 33),
                       "squaredDistanceFull", 0);
        expectBitEqual(
            bd_ref,
            transforms::squaredDistanceBounded(a, b, 33, f_ref * 0.25f),
            "squaredDistanceBounded", 0);
    }
}

// ---------------------------------------------------------------------
// Fused group-major denoise kernels (DESIGN §12): bitwise parity
// across levels AND bitwise equality with the discrete composition
// they replace (Haar1D rows + hardThreshold/wienerApply + dct4Inverse
// + aggregateAdd).
// ---------------------------------------------------------------------

namespace {

/** Discrete reference for haarShrinkFused: Haar1D::forwardRows across
    the stack, scalar hardThreshold over the tile, inverseRows back. */
int
haarShrinkDiscrete(float *g, int stack, int width, float threshold)
{
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    if (stack == 1)
        return ref.hardThreshold(g, width, threshold);
    transforms::Haar1D haar(stack);
    std::vector<float> fwd(static_cast<size_t>(stack) * width);
    haar.forwardRows(g, fwd.data(), width, width);
    const int kept = ref.hardThreshold(fwd.data(), stack * width, threshold);
    haar.inverseRows(fwd.data(), g, width, width);
    return kept;
}

/** Discrete reference for wienerShrinkFused; like the fused kernel it
    leaves bg in the transform domain and fills the weight tile. */
int
wienerShrinkDiscrete(float *g, float *bg, float *w, int stack, int width,
                     float sigma2)
{
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    if (stack == 1)
        return ref.wienerApply(g, bg, w, width, sigma2);
    transforms::Haar1D haar(stack);
    const size_t n = static_cast<size_t>(stack) * width;
    std::vector<float> gfwd(n), bfwd(n);
    haar.forwardRows(g, gfwd.data(), width, width);
    haar.forwardRows(bg, bfwd.data(), width, width);
    const int strong =
        ref.wienerApply(gfwd.data(), bfwd.data(), w, stack * width, sigma2);
    haar.inverseRows(gfwd.data(), g, width, width);
    // The fused kernel leaves bg in the transform domain.
    std::memcpy(bg, bfwd.data(), n * sizeof(float));
    return strong;
}

} // namespace

TEST_F(SimdParity, HaarShrinkFusedMatchesScalarBitwise)
{
    Rng rng(1414);
    const float thr = 100.0f;
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int stack : {1, 2, 4, 8, 16}) {
        for (int width : {1, 4, 7, 13, 16}) {
            for (const auto &tile : inputFamilies(rng, stack * width)) {
                std::vector<float> g_ref = tile;
                const int kept_ref = ref.haarShrinkFused(
                    g_ref.data(), stack, width, thr);
                for (simd::Level level : availableLevels()) {
                    std::vector<float> g = tile;
                    const int kept = simd::kernelsFor(level).haarShrinkFused(
                        g.data(), stack, width, thr);
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " stack=" << stack
                                 << " width=" << width);
                    EXPECT_EQ(kept_ref, kept);
                    expectBitEqual(g_ref.data(), g.data(), stack * width,
                                   "haarShrinkFused tile");
                }
            }
        }
    }
}

TEST_F(SimdParity, HaarShrinkFusedMatchesDiscreteComposition)
{
    // The fused kernel replays Haar1D's exact butterfly schedule with
    // hardThreshold's element semantics in between, so it must equal
    // the three-step discrete sequence bit for bit — at every level.
    Rng rng(1515);
    const float thr = 100.0f;
    for (int stack : {1, 2, 4, 8, 16}) {
        for (int width : {7, 16}) {
            for (const auto &tile : inputFamilies(rng, stack * width)) {
                // Haar1D rows dispatch on the active level; pin the
                // discrete reference to scalar.
                simd::setLevel(simd::Level::Scalar);
                std::vector<float> g_ref = tile;
                const int kept_ref = haarShrinkDiscrete(
                    g_ref.data(), stack, width, thr);
                for (simd::Level level : availableLevels()) {
                    simd::setLevel(level); // Haar1D-independent: fused
                                           // kernel addressed directly
                    std::vector<float> g = tile;
                    const int kept = simd::kernelsFor(level).haarShrinkFused(
                        g.data(), stack, width, thr);
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " stack=" << stack
                                 << " width=" << width);
                    EXPECT_EQ(kept_ref, kept);
                    expectBitEqual(g_ref.data(), g.data(), stack * width,
                                   "fused vs discrete");
                }
            }
        }
    }
}

TEST_F(SimdParity, WienerShrinkFusedMatchesScalarBitwise)
{
    Rng rng(1616);
    const float s2 = 625.0f;
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int stack : {1, 2, 4, 8, 16}) {
        for (int width : {1, 5, 8, 16}) {
            const int n = stack * width;
            for (const auto &tile : inputFamilies(rng, n)) {
                std::vector<float> basic(n);
                for (float &v : basic)
                    v = rng.uniform(-255.0f, 255.0f);

                std::vector<float> g_ref = tile, bg_ref = basic, w_ref(n);
                const int strong_ref = ref.wienerShrinkFused(
                    g_ref.data(), bg_ref.data(), w_ref.data(), stack,
                    width, s2);
                for (simd::Level level : availableLevels()) {
                    std::vector<float> g = tile, bg = basic, w(n);
                    const int strong =
                        simd::kernelsFor(level).wienerShrinkFused(
                            g.data(), bg.data(), w.data(), stack, width,
                            s2);
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " stack=" << stack
                                 << " width=" << width);
                    EXPECT_EQ(strong_ref, strong);
                    expectBitEqual(g_ref.data(), g.data(), n, "g");
                    expectBitEqual(bg_ref.data(), bg.data(), n, "bg");
                    expectBitEqual(w_ref.data(), w.data(), n, "w");
                }
            }
        }
    }
}

TEST_F(SimdParity, WienerShrinkFusedMatchesDiscreteComposition)
{
    Rng rng(1717);
    const float s2 = 625.0f;
    for (int stack : {1, 2, 4, 8, 16}) {
        const int width = 16;
        const int n = stack * width;
        for (const auto &tile : inputFamilies(rng, n)) {
            std::vector<float> basic(n);
            for (float &v : basic)
                v = rng.uniform(-255.0f, 255.0f);

            simd::setLevel(simd::Level::Scalar);
            std::vector<float> g_ref = tile, bg_ref = basic, w_ref(n);
            const int strong_ref = wienerShrinkDiscrete(
                g_ref.data(), bg_ref.data(), w_ref.data(), stack, width,
                s2);
            for (simd::Level level : availableLevels()) {
                std::vector<float> g = tile, bg = basic, w(n);
                const int strong = simd::kernelsFor(level).wienerShrinkFused(
                    g.data(), bg.data(), w.data(), stack, width, s2);
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " stack=" << stack);
                EXPECT_EQ(strong_ref, strong);
                expectBitEqual(g_ref.data(), g.data(), n, "g");
                expectBitEqual(bg_ref.data(), bg.data(), n,
                               "bg (transform domain)");
                expectBitEqual(w_ref.data(), w.data(), n, "w");
            }
        }
    }
}

TEST_F(SimdParity, AggregateGroupMatchesDiscreteSequence)
{
    // aggregateGroup == for each patch i ascending: dct4Inverse, then
    // four 4-wide aggregateAdd rows — bitwise, including overlapping
    // patches (the in-order contract is what makes tile merges and the
    // fused path deterministic).
    Rng rng(1818);
    transforms::Dct2D dct(4);
    const int plane_w = 16, plane_h = 16;
    const int n = plane_w * plane_h;
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int stack : {1, 2, 4, 8, 16}) {
        std::vector<float> coefs(static_cast<size_t>(stack) * 16);
        for (float &v : coefs)
            v = rng.uniform(-255.0f, 255.0f);
        std::vector<int> lx(stack), ly(stack);
        for (int i = 0; i < stack; ++i) {
            // Deliberately overlapping corners (range keeps 4x4 inside).
            lx[i] = static_cast<int>(rng.next() % (plane_w - 3));
            ly[i] = static_cast<int>(rng.next() % (plane_h - 3));
        }
        const float weight = rng.uniform(0.01f, 1.0f);

        std::vector<float> num0(n), den0(n);
        for (int i = 0; i < n; ++i) {
            num0[i] = rng.uniform(-1e3f, 1e3f);
            den0[i] = rng.uniform(0.0f, 1e3f);
        }

        // Discrete reference, scalar kernels throughout.
        std::vector<float> num_ref = num0, den_ref = den0;
        for (int i = 0; i < stack; ++i) {
            float px[16];
            ref.dct4Inverse(&coefs[16 * i], px, dct.invEvenHalf(),
                            dct.invOddHalf());
            for (int r = 0; r < 4; ++r) {
                const int off = (ly[i] + r) * plane_w + lx[i];
                ref.aggregateAdd(&num_ref[off], &den_ref[off], px + 4 * r,
                                 weight, 4);
            }
        }

        for (simd::Level level : availableLevels()) {
            std::vector<float> num = num0, den = den0;
            simd::kernelsFor(level).aggregateGroup(
                num.data(), den.data(), plane_w, coefs.data(), lx.data(),
                ly.data(), stack, weight, dct.invEvenHalf(),
                dct.invOddHalf());
            SCOPED_TRACE(testing::Message()
                         << "level=" << simd::toString(level)
                         << " stack=" << stack);
            expectBitEqual(num_ref.data(), num.data(), n, "num");
            expectBitEqual(den_ref.data(), den.data(), n, "den");
        }
    }
}
