/**
 * @file
 * Deterministic concurrency tests for the multi-tenant denoise service
 * (src/service): per-tenant bitwise-vs-solo equality across SIMD
 * levels, thread counts and precisions; weighted-fair dispatch-order
 * and admission determinism under the paused pre-fill harness;
 * priority-tiered throttling (low rejected before high misses its
 * queue bound); fault-injection isolation (stalled / dead collectors);
 * BufferArena cross-tenant isolation; and lifecycle errors. The binary
 * carries the sanitize label, so the submit/collect stress runs under
 * TSan in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "image/noise.h"
#include "image/synthetic.h"
#include "obs/metrics.h"
#include "runtime/arena.h"
#include "runtime/stream.h"
#include "service/service.h"
#include "simd/simd.h"

using namespace ideal;
using runtime::StreamConfig;
using runtime::StreamDenoiser;
using service::AdmissionPolicy;
using service::DenoiseService;
using service::FaultInjection;
using service::Priority;
using service::ServiceConfig;
using service::ServiceStats;
using service::SessionConfig;
using service::SessionId;
using service::TenantStats;

namespace {

/** A static scene observed over several frames with fresh noise. */
std::vector<image::ImageF>
staticClip(int frames, int w, int h, float sigma, uint64_t seed)
{
    image::ImageF clean =
        image::makeScene(image::SceneKind::Nature, w, h, 1, seed);
    std::vector<image::ImageF> clip;
    for (int f = 0; f < frames; ++f)
        clip.push_back(image::addGaussianNoise(clean, sigma, seed + 7 + f));
    return clip;
}

StreamConfig
smallStreamConfig(int threads = 1, bool wiener = false)
{
    StreamConfig cfg;
    cfg.frame.sigma = 25.0f;
    cfg.frame.searchWindow1 = 13;
    cfg.frame.searchWindow2 = 13;
    cfg.frame.refStride = 2;
    cfg.frame.enableWiener = wiener;
    cfg.frame.numThreads = threads;
    return cfg;
}

/** Solo StreamDenoiser outputs — the service's bitwise reference. */
std::vector<image::ImageF>
soloOutputs(const StreamConfig &cfg,
            const std::vector<image::ImageF> &clip,
            runtime::StreamStats *stats_out = nullptr)
{
    StreamDenoiser stream(cfg);
    for (const image::ImageF &frame : clip)
        stream.submit(image::ImageF(frame));
    stream.finish();
    std::vector<image::ImageF> outs;
    for (size_t f = 0; f < clip.size(); ++f)
        outs.push_back(stream.collect());
    if (stats_out)
        *stats_out = stream.stats();
    return outs;
}

/**
 * Seeded tenant arrival order: each tenant's frames stay in their own
 * order (the per-session contract), but the cross-tenant interleaving
 * is shuffled — randomized-but-reproducible submission.
 */
std::vector<size_t>
interleaveOrder(const std::vector<size_t> &frame_counts, uint64_t seed)
{
    std::vector<size_t> order;
    for (size_t t = 0; t < frame_counts.size(); ++t)
        order.insert(order.end(), frame_counts[t], t);
    std::mt19937 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);
    return order;
}

/** Submit clips in the given tenant interleaving (per-tenant in order). */
void
submitInterleaved(DenoiseService &svc, const std::vector<SessionId> &ids,
                  const std::vector<std::vector<image::ImageF>> &clips,
                  const std::vector<size_t> &order)
{
    std::vector<size_t> next(clips.size(), 0);
    for (size_t t : order)
        svc.submit(ids[t], image::ImageF(clips[t][next[t]++]));
}

class ServiceTest : public ::testing::Test
{
  protected:
    void TearDown() override { simd::setLevel(simd::bestSupported()); }
};

} // namespace

// The tentpole contract: every tenant's output is bitwise identical to
// a solo StreamDenoiser run of the same config — across SIMD dispatch
// levels, per-session thread counts, and both precisions, under a
// seeded-shuffled arrival order. The service may reorder scheduling,
// never arithmetic.
TEST_F(ServiceTest, ServiceMatchesSoloBitwiseMatrix)
{
    const int frames = 3;
    const std::vector<std::vector<image::ImageF>> clips = {
        staticClip(frames, 64, 48, 25.0f, 41),
        staticClip(frames, 48, 48, 25.0f, 43),
        staticClip(frames, 56, 40, 25.0f, 47),
    };
    const simd::Level levels[] = {simd::Level::Scalar, simd::Level::Avx2};
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        for (simd::Level level : levels) {
            simd::setLevel(level); // clamped to bestSupported()
            for (int threads : {1, 8}) {
                std::vector<SessionConfig> tenants(3);
                for (size_t t = 0; t < tenants.size(); ++t) {
                    // Heterogeneous mix: one Wiener tenant, one coarse
                    // refStride tenant, spread priorities and weights.
                    tenants[t].name = "t" + std::to_string(t);
                    tenants[t].stream =
                        smallStreamConfig(threads, /*wiener=*/t == 1);
                    tenants[t].stream.frame.precision = precision;
                    tenants[t].stream.queueDepth = frames;
                    tenants[t].priority = static_cast<Priority>(t % 3);
                    tenants[t].weight = 1.0 + static_cast<double>(t);
                }
                tenants[2].stream.frame.refStride = 3;

                std::vector<std::vector<image::ImageF>> solo;
                for (size_t t = 0; t < tenants.size(); ++t)
                    solo.push_back(
                        soloOutputs(tenants[t].stream, clips[t]));

                ServiceConfig svc_cfg;
                svc_cfg.startPaused = true;
                DenoiseService svc(svc_cfg);
                std::vector<SessionId> ids;
                for (const SessionConfig &t : tenants)
                    ids.push_back(svc.openSession(t));
                submitInterleaved(
                    svc, ids, clips,
                    interleaveOrder({frames, frames, frames},
                                    1000 + static_cast<uint64_t>(threads)));
                svc.resume();
                svc.finish();

                for (size_t t = 0; t < tenants.size(); ++t) {
                    for (int f = 0; f < frames; ++f) {
                        const image::ImageF out = svc.collect(ids[t]);
                        EXPECT_TRUE(out.raw() == solo[t][f].raw())
                            << "precision="
                            << static_cast<int>(precision) << " level="
                            << static_cast<int>(simd::activeLevel())
                            << " threads=" << threads << " tenant=" << t
                            << " frame=" << f;
                    }
                }
                const ServiceStats stats = svc.stats();
                EXPECT_EQ(stats.frames,
                          static_cast<uint64_t>(3 * frames));
                EXPECT_EQ(stats.rejects, 0u);
            }
        }
    }
}

// A temporally-seeded tenant must replay the solo seeded stream
// exactly: same outputs, same seed engagement counters — the seeding
// state is per-session and frames stay in session order.
TEST_F(ServiceTest, SeededTenantMatchesSeededSolo)
{
    const int frames = 4;
    const auto seeded_clip = staticClip(frames, 64, 64, 25.0f, 53);
    const auto plain_clip = staticClip(frames, 48, 48, 25.0f, 59);

    StreamConfig seeded_cfg = smallStreamConfig(1);
    seeded_cfg.temporalSeed = true;
    seeded_cfg.queueDepth = frames;
    StreamConfig plain_cfg = smallStreamConfig(1);
    plain_cfg.queueDepth = frames;

    runtime::StreamStats solo_stats;
    const auto solo_seeded = soloOutputs(seeded_cfg, seeded_clip, &solo_stats);
    const auto solo_plain = soloOutputs(plain_cfg, plain_clip);
    ASSERT_GT(solo_stats.seedRefs, 0u);
    ASSERT_GT(solo_stats.seedHits, 0u);

    ServiceConfig svc_cfg;
    svc_cfg.startPaused = true;
    DenoiseService svc(svc_cfg);
    SessionConfig seeded_tenant;
    seeded_tenant.name = "seeded";
    seeded_tenant.stream = seeded_cfg;
    SessionConfig plain_tenant;
    plain_tenant.name = "plain";
    plain_tenant.stream = plain_cfg;
    const SessionId a = svc.openSession(seeded_tenant);
    const SessionId b = svc.openSession(plain_tenant);
    submitInterleaved(svc, {a, b}, {seeded_clip, plain_clip},
                      interleaveOrder({frames, frames}, 77));
    svc.resume();
    svc.finish();

    for (int f = 0; f < frames; ++f) {
        EXPECT_TRUE(svc.collect(a).raw() == solo_seeded[f].raw())
            << "seeded frame " << f;
        EXPECT_TRUE(svc.collect(b).raw() == solo_plain[f].raw())
            << "plain frame " << f;
    }
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.tenants[0].seedRefs, solo_stats.seedRefs);
    EXPECT_EQ(stats.tenants[0].seedHits, solo_stats.seedHits);
    EXPECT_EQ(stats.tenants[1].seedRefs, 0u);
}

// Frame sharding overrides only the worker count, and the tile grid is
// thread-count invariant — a fully sharded run must stay bitwise equal
// to a single-threaded solo run of the session config.
TEST_F(ServiceTest, ShardedLargeFrameMatchesSolo)
{
    const int frames = 3;
    const auto clip = staticClip(frames, 72, 56, 25.0f, 71);
    StreamConfig cfg = smallStreamConfig(1);
    cfg.queueDepth = frames;
    const auto solo = soloOutputs(cfg, clip);

    ServiceConfig svc_cfg;
    svc_cfg.shardPixels = 1; // shard every frame
    svc_cfg.shardThreads = 5;
    svc_cfg.startPaused = true;
    DenoiseService svc(svc_cfg);
    SessionConfig tenant;
    tenant.name = "sharded";
    tenant.stream = cfg;
    const SessionId id = svc.openSession(tenant);
    for (const image::ImageF &frame : clip)
        svc.submit(id, image::ImageF(frame));
    svc.resume();
    svc.finish();
    for (int f = 0; f < frames; ++f)
        EXPECT_TRUE(svc.collect(id).raw() == solo[f].raw())
            << "frame " << f;
}

// Live-mode stress for the sanitizers: per-tenant producer and
// collector threads race submit/collect against the scheduler and
// dispatcher; every tenant's outputs must still come out in order and
// bitwise solo-identical.
TEST_F(ServiceTest, ConcurrentSubmitCollectStress)
{
    const int frames = 5;
    const std::vector<std::vector<image::ImageF>> clips = {
        staticClip(frames, 48, 48, 25.0f, 83),
        staticClip(frames, 56, 40, 25.0f, 89),
        staticClip(frames, 40, 40, 25.0f, 97),
    };
    std::vector<SessionConfig> tenants(clips.size());
    std::vector<std::vector<image::ImageF>> solo;
    for (size_t t = 0; t < tenants.size(); ++t) {
        tenants[t].name = "s" + std::to_string(t);
        tenants[t].stream = smallStreamConfig(2);
        tenants[t].stream.queueDepth = 2; // force live backpressure
        tenants[t].priority = static_cast<Priority>(t % 3);
        solo.push_back(soloOutputs(tenants[t].stream, clips[t]));
    }

    DenoiseService svc;
    std::vector<SessionId> ids;
    for (const SessionConfig &t : tenants)
        ids.push_back(svc.openSession(t));

    std::vector<std::vector<image::ImageF>> got(clips.size());
    std::vector<std::thread> workers;
    for (size_t t = 0; t < clips.size(); ++t) {
        workers.emplace_back([&, t] {
            for (const image::ImageF &frame : clips[t])
                svc.submit(ids[t], image::ImageF(frame));
        });
        workers.emplace_back([&, t] {
            for (int f = 0; f < frames; ++f)
                got[t].push_back(svc.collect(ids[t]));
        });
    }
    for (std::thread &w : workers)
        w.join();
    svc.finish();

    for (size_t t = 0; t < clips.size(); ++t) {
        ASSERT_EQ(got[t].size(), static_cast<size_t>(frames));
        for (int f = 0; f < frames; ++f)
            EXPECT_TRUE(got[t][f].raw() == solo[t][f].raw())
                << "tenant " << t << " frame " << f;
    }
    EXPECT_EQ(svc.stats().frames,
              static_cast<uint64_t>(clips.size() * frames));
}

// The deterministic harness contract: two paused pre-fills with the
// same seeded arrival order replay the identical dispatch order and
// the identical admission decisions.
TEST_F(ServiceTest, SeededArrivalOrderIsDeterministic)
{
    const int frames = 4;
    const std::vector<std::vector<image::ImageF>> clips = {
        staticClip(frames, 48, 48, 25.0f, 101),
        staticClip(frames, 64, 40, 25.0f, 103),
        staticClip(frames, 40, 56, 25.0f, 107),
    };

    auto run = [&](uint64_t seed) {
        ServiceConfig svc_cfg;
        svc_cfg.startPaused = true;
        svc_cfg.sharedBudgetFrames = 8; // tight: force real rejects
        DenoiseService svc(svc_cfg);
        std::vector<SessionId> ids;
        for (size_t t = 0; t < clips.size(); ++t) {
            SessionConfig tenant;
            tenant.name = "d" + std::to_string(t);
            tenant.stream = smallStreamConfig(1);
            tenant.stream.queueDepth = frames;
            tenant.priority = static_cast<Priority>(t % 3);
            tenant.weight = 1.0 + static_cast<double>(t);
            tenant.policy = AdmissionPolicy::Reject;
            ids.push_back(svc.openSession(tenant));
        }
        const auto order =
            interleaveOrder({frames, frames, frames}, seed);
        std::vector<size_t> next(clips.size(), 0);
        for (size_t t : order)
            (void)svc.submit(ids[t],
                             image::ImageF(clips[t][next[t]++]));
        svc.resume();
        svc.finish();
        return svc.stats();
    };

    const ServiceStats first = run(2026);
    const ServiceStats second = run(2026);
    EXPECT_GT(first.rejects, 0u); // the tight budget actually bit
    EXPECT_EQ(first.rejects, second.rejects);
    EXPECT_EQ(first.dispatchOrder, second.dispatchOrder);
    ASSERT_EQ(first.tenants.size(), second.tenants.size());
    for (size_t t = 0; t < first.tenants.size(); ++t) {
        EXPECT_EQ(first.tenants[t].admitted, second.tenants[t].admitted);
        EXPECT_EQ(first.tenants[t].rejects, second.tenants[t].rejects);
        EXPECT_EQ(first.tenants[t].queueHighWater,
                  second.tenants[t].queueHighWater);
    }

    // A different seed reorders arrivals but may not change any
    // tenant's admitted-frame count... with Block-free pre-fill the
    // interleaving *can* shift which submits hit the shared budget, so
    // only the schedule-replay property is asserted above. Determinism
    // is about replaying the same workload, not seed-invariance.
}

// The scheduler is textbook WFQ: smallest virtual time first, vtime
// advanced by pixels / (weight * 4^priority), ties to the higher
// priority then the lower session id. Replaying that arithmetic in
// the test must predict the service's dispatch order exactly.
TEST_F(ServiceTest, WeightedFairDispatchOrderMatchesModel)
{
    const int frames = 4;
    const int w = 48, h = 48;
    const std::vector<std::vector<image::ImageF>> clips = {
        staticClip(frames, w, h, 25.0f, 113),
        staticClip(frames, w, h, 25.0f, 127),
        staticClip(frames, w, h, 25.0f, 131),
    };
    struct Share
    {
        Priority priority;
        double weight;
    };
    const std::vector<Share> shares = {{Priority::Normal, 1.0},
                                       {Priority::Normal, 2.0},
                                       {Priority::High, 1.0}};

    ServiceConfig svc_cfg;
    svc_cfg.startPaused = true;
    DenoiseService svc(svc_cfg);
    std::vector<SessionId> ids;
    for (size_t t = 0; t < shares.size(); ++t) {
        SessionConfig tenant;
        tenant.name = "w" + std::to_string(t);
        tenant.stream = smallStreamConfig(1);
        tenant.stream.queueDepth = frames;
        tenant.priority = shares[t].priority;
        tenant.weight = shares[t].weight;
        ids.push_back(svc.openSession(tenant));
    }
    submitInterleaved(svc, ids, clips,
                      interleaveOrder({frames, frames, frames}, 55));
    svc.resume();
    svc.finish();

    // Reference model over the pre-filled queues.
    std::vector<double> vtime(shares.size(), 0.0);
    std::vector<int> queued(shares.size(), frames);
    std::vector<int> expected;
    for (size_t step = 0; step < shares.size() * frames; ++step) {
        int best = -1;
        for (size_t t = 0; t < shares.size(); ++t) {
            if (queued[t] == 0)
                continue;
            if (best < 0 || vtime[t] < vtime[best] ||
                (vtime[t] == vtime[best] &&
                 static_cast<int>(shares[t].priority) >
                     static_cast<int>(shares[best].priority)))
                best = static_cast<int>(t);
        }
        expected.push_back(best);
        --queued[best];
        const double ew =
            shares[best].weight *
            static_cast<double>(
                1 << (2 * static_cast<int>(shares[best].priority)));
        vtime[best] += static_cast<double>(w) * h / ew;
    }
    EXPECT_EQ(svc.stats().dispatchOrder, expected);

    for (size_t t = 0; t < shares.size(); ++t)
        for (int f = 0; f < frames; ++f)
            svc.recycle(ids[t], svc.collect(ids[t]));
}

// The overload contract: the priority tiers of the shared budget
// throttle a low-priority tenant (rejects) strictly before a
// high-priority tenant misses its queue bound.
TEST_F(ServiceTest, AdmissionThrottlesLowBeforeHigh)
{
    const int budget = 8;
    const auto low_clip = staticClip(8, 40, 40, 25.0f, 137);
    const auto high_clip = staticClip(4, 40, 40, 25.0f, 139);

    ServiceConfig svc_cfg;
    svc_cfg.startPaused = true;
    svc_cfg.sharedBudgetFrames = budget;
    DenoiseService svc(svc_cfg);

    SessionConfig low;
    low.name = "low";
    low.stream = smallStreamConfig(1);
    low.stream.queueDepth = 8; // larger than the Low tier: the shared
                               // budget, not the queue bound, throttles
    low.priority = Priority::Low;
    low.policy = AdmissionPolicy::Reject;
    SessionConfig high;
    high.name = "high";
    high.stream = smallStreamConfig(1);
    high.stream.queueDepth = 4;
    high.priority = Priority::High;
    high.policy = AdmissionPolicy::Reject;
    const SessionId low_id = svc.openSession(low);
    const SessionId high_id = svc.openSession(high);

    // Saturate with low-priority traffic first: the Low tier is
    // budget/2 = 4, so exactly 4 of 8 submits are admitted.
    int low_admitted = 0;
    for (const image::ImageF &frame : low_clip)
        low_admitted += svc.submit(low_id, image::ImageF(frame)) ? 1 : 0;
    EXPECT_EQ(low_admitted, budget / 2);

    // The high-priority tenant still fits every frame within its queue
    // bound: zero rejects while the low tenant was being shed.
    int high_admitted = 0;
    for (const image::ImageF &frame : high_clip)
        high_admitted += svc.submit(high_id, image::ImageF(frame)) ? 1 : 0;
    EXPECT_EQ(high_admitted, 4);

    svc.resume();
    svc.finish();
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.tenants[0].rejects, 4u);
    EXPECT_EQ(stats.tenants[1].rejects, 0u);
    EXPECT_EQ(stats.tenants[1].queueHighWater, 4u); // bound touched,
                                                    // never missed
    EXPECT_EQ(stats.rejects, 4u);
    for (int f = 0; f < low_admitted; ++f)
        (void)svc.collect(low_id);
    EXPECT_THROW(svc.collect(low_id), std::logic_error);
}

// Reject policy against the per-session queue bound: a paused pre-fill
// admits exactly queueDepth frames, rejects the rest, and the admitted
// prefix still denoises bitwise solo-identically.
TEST_F(ServiceTest, RejectPolicyQueueBoundDeterministic)
{
    const int frames = 5, depth = 2;
    const auto clip = staticClip(frames, 48, 48, 25.0f, 149);
    StreamConfig cfg = smallStreamConfig(1);
    cfg.queueDepth = depth;
    const std::vector<image::ImageF> prefix(clip.begin(),
                                            clip.begin() + depth);
    const auto solo = soloOutputs(cfg, prefix);

    ServiceConfig svc_cfg;
    svc_cfg.startPaused = true;
    DenoiseService svc(svc_cfg);
    SessionConfig tenant;
    tenant.name = "rej";
    tenant.stream = cfg;
    tenant.policy = AdmissionPolicy::Reject;
    const SessionId id = svc.openSession(tenant);

    int admitted = 0;
    for (const image::ImageF &frame : clip)
        admitted += svc.submit(id, image::ImageF(frame)) ? 1 : 0;
    EXPECT_EQ(admitted, depth);
    svc.resume();
    svc.finish();

    for (int f = 0; f < depth; ++f)
        EXPECT_TRUE(svc.collect(id).raw() == solo[f].raw())
            << "frame " << f;
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.tenants[0].rejects,
              static_cast<uint64_t>(frames - depth));
    EXPECT_EQ(stats.tenants[0].queueHighWater,
              static_cast<uint64_t>(depth));
}

// Fault injection, slow consumer: a stalled collector on one tenant
// must not affect any other tenant's outputs or pipeline latency (the
// output queue is unbounded, so a lazy collect never backpressures the
// dispatcher), and shutdown must not deadlock.
TEST_F(ServiceTest, StalledCollectorDoesNotStallOthers)
{
    const int frames = 3;
    const auto slow_clip = staticClip(frames, 48, 48, 25.0f, 151);
    const auto fast_clip = staticClip(frames, 48, 48, 25.0f, 157);
    StreamConfig cfg = smallStreamConfig(1);
    cfg.queueDepth = frames;
    const auto solo_slow = soloOutputs(cfg, slow_clip);
    const auto solo_fast = soloOutputs(cfg, fast_clip);

    ServiceConfig svc_cfg;
    svc_cfg.fault.kind = FaultInjection::Kind::StallCollect;
    svc_cfg.fault.tenant = "slow";
    svc_cfg.fault.stallMs = 25;
    DenoiseService svc(svc_cfg);
    SessionConfig slow;
    slow.name = "slow";
    slow.stream = cfg;
    SessionConfig fast;
    fast.name = "fast";
    fast.stream = cfg;
    const SessionId slow_id = svc.openSession(slow);
    const SessionId fast_id = svc.openSession(fast);
    for (int f = 0; f < frames; ++f) {
        svc.submit(slow_id, image::ImageF(slow_clip[f]));
        svc.submit(fast_id, image::ImageF(fast_clip[f]));
    }
    svc.finish();

    // The unfaulted tenant collects first and is fully unaffected.
    for (int f = 0; f < frames; ++f)
        EXPECT_TRUE(svc.collect(fast_id).raw() == solo_fast[f].raw())
            << "fast frame " << f;
    for (int f = 0; f < frames; ++f)
        EXPECT_TRUE(svc.collect(slow_id).raw() == solo_slow[f].raw())
            << "slow frame " << f;
    const ServiceStats stats = svc.stats();
    // Pipeline latency is measured admission -> output ready, so the
    // collector stall shows up in neither tenant's SLO rows.
    EXPECT_EQ(stats.tenants[0].latenciesMs.size(),
              static_cast<size_t>(frames));
    EXPECT_EQ(stats.tenants[1].latenciesMs.size(),
              static_cast<size_t>(frames));
    EXPECT_EQ(stats.tenants[0].dropped, 0u);
}

// Fault injection, dead consumer: dropping one tenant's outputs leaves
// every other tenant bitwise intact, keeps the dead tenant's arena
// recycling loop closed, and shutdown still terminates (no deadlock);
// collecting from the dead tenant reports the drained session.
TEST_F(ServiceTest, DroppedCollectorGracefulShutdown)
{
    const int frames = 3;
    const auto dead_clip = staticClip(frames, 48, 48, 25.0f, 163);
    const auto live_clip = staticClip(frames, 48, 48, 25.0f, 167);
    StreamConfig cfg = smallStreamConfig(1);
    cfg.queueDepth = frames;
    const auto solo_live = soloOutputs(cfg, live_clip);

    ServiceConfig svc_cfg;
    svc_cfg.fault.kind = FaultInjection::Kind::DropOutputs;
    svc_cfg.fault.tenant = "dead";
    DenoiseService svc(svc_cfg);
    SessionConfig dead;
    dead.name = "dead";
    dead.stream = cfg;
    SessionConfig live;
    live.name = "live";
    live.stream = cfg;
    const SessionId dead_id = svc.openSession(dead);
    const SessionId live_id = svc.openSession(live);
    for (int f = 0; f < frames; ++f) {
        svc.submit(dead_id, image::ImageF(dead_clip[f]));
        svc.submit(live_id, image::ImageF(live_clip[f]));
    }
    svc.finish(); // must return: a dead consumer cannot wedge shutdown

    for (int f = 0; f < frames; ++f)
        EXPECT_TRUE(svc.collect(live_id).raw() == solo_live[f].raw())
            << "live frame " << f;
    EXPECT_THROW(svc.collect(dead_id), std::logic_error);
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.tenants[0].frames, static_cast<uint64_t>(frames));
    EXPECT_EQ(stats.tenants[0].dropped, static_cast<uint64_t>(frames));
    EXPECT_EQ(stats.tenants[1].dropped, 0u);
}

// --- BufferArena cross-tenant isolation (direct unit tests) ---------

// Two arenas never exchange storage: a buffer released into tenant A's
// arena can only ever be handed back by A's arena.
TEST(ServiceArenaTest, CrossTenantIsolation)
{
    runtime::BufferArena a, b;
    std::vector<float> buf = a.acquire(4096);
    const float *p = buf.data();
    a.release(std::move(buf));

    // B cannot see A's free buffer: same-size acquire must allocate.
    std::vector<float> other = b.acquire(4096);
    EXPECT_NE(other.data(), p);
    EXPECT_EQ(b.stats().hits, 0u);
    EXPECT_EQ(b.stats().misses, 1u);

    // A hands its own storage back (pointer identity: true recycling).
    std::vector<float> again = a.acquire(4096);
    EXPECT_EQ(again.data(), p);
    EXPECT_EQ(a.stats().hits, 1u);
    EXPECT_EQ(a.stats().misses, 1u);
    EXPECT_EQ(a.stats().freeBuffers, 0u);

    // And the reverse direction: B's release stays invisible to A.
    const float *q = other.data();
    b.release(std::move(other));
    EXPECT_EQ(b.stats().freeBuffers, 1u);
    std::vector<float> third = a.acquire(4096);
    EXPECT_NE(third.data(), q);
    EXPECT_EQ(a.stats().misses, 2u);
    EXPECT_EQ(b.stats().freeBuffers, 1u);
}

// The ensure/acquire/release contract: capacity reuse is a hit that
// never touches the free list, the slack factor keeps size classes
// segregated, and bytesNew counts only fresh heap storage.
TEST(ServiceArenaTest, EnsureAcquireReleaseContract)
{
    runtime::BufferArena arena;
    std::vector<float> buf = arena.acquire(1000); // fresh: miss
    EXPECT_EQ(arena.stats().misses, 1u);
    EXPECT_GE(arena.stats().bytesNew, 1000 * sizeof(float));
    const uint64_t warm_bytes = arena.stats().bytesNew;

    arena.ensure(buf, 500); // capacity fits: pure hit, no free list
    EXPECT_EQ(arena.stats().hits, 1u);
    EXPECT_EQ(arena.stats().bytesNew, warm_bytes);
    EXPECT_EQ(arena.stats().freeBuffers, 0u);

    arena.release(std::move(buf));
    EXPECT_EQ(arena.stats().freeBuffers, 1u);

    // 1000-capacity free buffer vs a 100-element request: outside the
    // kSlackFactor=4 window, so the small class must not consume it.
    std::vector<float> small = arena.acquire(100);
    EXPECT_EQ(arena.stats().misses, 2u);
    EXPECT_EQ(arena.stats().freeBuffers, 1u);

    // A 250-element request fits the slack window and recycles it.
    std::vector<float> medium = arena.acquire(250);
    EXPECT_EQ(medium.size(), 250u);
    EXPECT_GE(medium.capacity(), 1000u);
    EXPECT_EQ(arena.stats().hits, 2u);
    EXPECT_EQ(arena.stats().freeBuffers, 0u);
    EXPECT_EQ(arena.stats().bytesNew, warm_bytes + 100 * sizeof(float));
}

// Per-tenant malloc-free steady state inside the service: every tenant
// draws zero fresh heap bytes through its arena from frame 3 on, and
// the per-tenant scope lands in the global metrics registry.
TEST_F(ServiceTest, ArenaPerTenantSteadyStateZero)
{
    const int frames = 6;
    const std::vector<std::vector<image::ImageF>> clips = {
        staticClip(frames, 48, 48, 25.0f, 173),
        staticClip(frames, 64, 40, 25.0f, 179),
    };
    DenoiseService svc;
    std::vector<SessionId> ids;
    for (size_t t = 0; t < clips.size(); ++t) {
        SessionConfig tenant;
        tenant.name = "steady" + std::to_string(t);
        tenant.stream = smallStreamConfig(2, /*wiener=*/t == 1);
        ids.push_back(svc.openSession(tenant));
    }
    for (int f = 0; f < frames; ++f)
        for (size_t t = 0; t < clips.size(); ++t)
            svc.submit(ids[t], image::ImageF(clips[t][f]));
    svc.finish();
    for (size_t t = 0; t < clips.size(); ++t)
        for (int f = 0; f < frames; ++f)
            svc.recycle(ids[t], svc.collect(ids[t]));

    const ServiceStats stats = svc.stats();
    for (size_t t = 0; t < clips.size(); ++t) {
        EXPECT_EQ(stats.tenants[t].frames, static_cast<uint64_t>(frames));
        EXPECT_EQ(stats.tenants[t].arenaBytesNewSteady, 0u)
            << "tenant " << t;
        EXPECT_GT(stats.tenants[t].arenaHits, 0u);
        EXPECT_GT(stats.tenants[t].arenaBytesNew, 0u); // warm-up did
        EXPECT_EQ(stats.tenants[t].latenciesMs.size(),
                  static_cast<size_t>(frames));
    }
    // The per-tenant registry scope was merged under "service.<name>.".
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snap.value("service.steady0.frames"),
              static_cast<double>(frames));
    EXPECT_EQ(snap.value("service.steady0.arena.bytesNewSteady"), 0.0);
    EXPECT_EQ(snap.value("service.steady1.arena.bytesNewSteady"), 0.0);
    EXPECT_EQ(snap.kind("service.steady0.queueHighWater"),
              obs::MetricKind::Max);
}

TEST_F(ServiceTest, LifecycleAndValidationErrors)
{
    {
        ServiceConfig bad;
        bad.sharedBudgetFrames = 0;
        EXPECT_THROW(DenoiseService s(bad), std::invalid_argument);
    }
    {
        ServiceConfig bad;
        bad.fault.kind = FaultInjection::Kind::StallCollect;
        EXPECT_THROW(DenoiseService s(bad), std::invalid_argument);
    }

    const auto clip = staticClip(1, 32, 32, 25.0f, 181);
    DenoiseService svc;
    SessionConfig tenant;
    tenant.name = "a";
    tenant.stream = smallStreamConfig(1);
    const SessionId id = svc.openSession(tenant);

    SessionConfig dup = tenant; // duplicate name
    EXPECT_THROW(svc.openSession(dup), std::invalid_argument);
    SessionConfig unnamed = tenant;
    unnamed.name.clear();
    EXPECT_THROW(svc.openSession(unnamed), std::invalid_argument);
    SessionConfig weightless = tenant;
    weightless.name = "b";
    weightless.weight = 0.0;
    EXPECT_THROW(svc.openSession(weightless), std::invalid_argument);
    SessionConfig shallow = tenant;
    shallow.name = "c";
    shallow.stream.queueDepth = 0;
    EXPECT_THROW(svc.openSession(shallow), std::invalid_argument);

    EXPECT_THROW(svc.submit(99, image::ImageF(clip[0])),
                 std::invalid_argument);
    EXPECT_THROW(svc.collect(-1), std::invalid_argument);

    svc.submit(id, image::ImageF(clip[0]));
    EXPECT_THROW(svc.submit(id, image::ImageF(16, 32, 1)),
                 std::invalid_argument); // shape mismatch
    EXPECT_THROW(svc.submit(id, image::ImageF(2, 2, 1)),
                 std::invalid_argument); // smaller than a patch

    svc.closeSession(id);
    EXPECT_THROW(svc.submit(id, image::ImageF(clip[0])),
                 std::logic_error);
    (void)svc.collect(id);
    EXPECT_THROW(svc.collect(id), std::logic_error);

    svc.finish();
    SessionConfig late = tenant;
    late.name = "late";
    EXPECT_THROW(svc.openSession(late), std::logic_error);
    EXPECT_THROW(svc.submit(id, image::ImageF(clip[0])),
                 std::logic_error);
    svc.finish(); // idempotent
}
