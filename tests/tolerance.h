#ifndef IDEAL_TESTS_TOLERANCE_H_
#define IDEAL_TESTS_TOLERANCE_H_

/**
 * @file
 * Quantization-tolerance harness for differential testing of the int16
 * kernel path against its float twins.
 *
 * Two layers of bounds:
 *
 *  - per-element: a quantized result may differ from the exact float
 *    result by a small number of quantization steps (ULPs of the
 *    Q format) — one step for a single round-to-nearest, more when a
 *    kernel chains several rounding stages. expectNearQuant() expresses
 *    a bound as "k steps of fixed::Format f".
 *
 *  - global: an end-to-end run through the quantized datapath must
 *    land within a small SNR delta of the float pipeline's output
 *    (the paper's Fig. 9 criterion: quality is preserved down to the
 *    chosen fraction width). snrDeltaDb() measures that delta against
 *    a shared clean reference.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "fixed/format.h"
#include "image/image.h"
#include "image/metrics.h"

namespace ideal {
namespace testing_tol {

/** Size of one quantization step (ULP) of @p f in real units. */
inline double
quantStep(const fixed::Format &f)
{
    return 1.0 / f.scale();
}

/**
 * EXPECT that @p got (a dequantized int16 result) is within @p steps
 * quantization steps of the exact value @p expected. Use steps = 1 for
 * a single round-to-nearest stage; chained rounding stages accumulate
 * (k stages of independent rounding stay within k/2 + margin steps —
 * callers derive the bound from the kernel's stage count).
 */
inline void
expectNearQuant(double expected, double got, const fixed::Format &f,
                double steps, const char *what, int index)
{
    const double bound = steps * quantStep(f);
    EXPECT_NEAR(expected, got, bound)
        << what << " [" << index << "]: |" << expected << " - " << got
        << "| > " << steps << " steps of " << f.str();
}

/** Raw-integer flavour: @p raw interpreted in @p f against @p expected. */
inline void
expectNearQuantRaw(double expected, int64_t raw, const fixed::Format &f,
                   double steps, const char *what, int index)
{
    expectNearQuant(expected, f.toDouble(raw), f, steps, what, index);
}

/**
 * SNR delta (dB) of @p test relative to @p baseline, both measured
 * against the same @p clean reference. Positive means @p test is
 * closer to clean than @p baseline. The fig09-style acceptance gate is
 * |snrDeltaDb| <= tolerance.
 */
inline double
snrDeltaDb(const image::ImageF &clean, const image::ImageF &baseline,
           const image::ImageF &test)
{
    return image::snrDb(clean, test) - image::snrDb(clean, baseline);
}

} // namespace testing_tol
} // namespace ideal

#endif // IDEAL_TESTS_TOLERANCE_H_
