/**
 * @file
 * Unit tests for the bounded sorted match list (the BM engine's
 * priority queue MQ) and for block matching with and without
 * Matches Reuse.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "bm3d/blockmatch.h"
#include "bm3d/matchlist.h"
#include "bm3d/patchfield.h"
#include "image/noise.h"
#include "image/synthetic.h"

using namespace ideal;
using bm3d::Match;
using bm3d::MatchList;

TEST(MatchList, InsertKeepsSorted)
{
    MatchList list(4);
    list.insert({0, 0, 5.0f});
    list.insert({1, 0, 1.0f});
    list.insert({2, 0, 3.0f});
    ASSERT_EQ(list.size(), 3);
    EXPECT_FLOAT_EQ(list[0].distance, 1.0f);
    EXPECT_FLOAT_EQ(list[1].distance, 3.0f);
    EXPECT_FLOAT_EQ(list[2].distance, 5.0f);
}

TEST(MatchList, EvictsWorstWhenFull)
{
    MatchList list(2);
    list.insert({0, 0, 5.0f});
    list.insert({1, 0, 1.0f});
    EXPECT_FALSE(list.insert({2, 0, 9.0f}));
    EXPECT_TRUE(list.insert({3, 0, 0.5f}));
    ASSERT_EQ(list.size(), 2);
    EXPECT_EQ(list[0].x, 3);
    EXPECT_EQ(list[1].x, 1);
}

TEST(MatchList, WorstDistanceInfiniteUntilFull)
{
    MatchList list(2);
    EXPECT_TRUE(std::isinf(list.worstDistance()));
    list.insert({0, 0, 1.0f});
    EXPECT_TRUE(std::isinf(list.worstDistance()));
    list.insert({0, 0, 2.0f});
    EXPECT_FLOAT_EQ(list.worstDistance(), 2.0f);
}

TEST(MatchList, StackSizeIsPowerOfTwo)
{
    MatchList list(16);
    EXPECT_EQ(list.stackSize(), 0);
    for (int i = 0; i < 3; ++i)
        list.insert({i, 0, static_cast<float>(i)});
    EXPECT_EQ(list.stackSize(), 2);
    for (int i = 3; i < 11; ++i)
        list.insert({i, 0, static_cast<float>(i)});
    EXPECT_EQ(list.stackSize(), 8);
    for (int i = 11; i < 16; ++i)
        list.insert({i, 0, static_cast<float>(i)});
    EXPECT_EQ(list.stackSize(), 16);
}

TEST(MatchList, ClearEmpties)
{
    MatchList list(4);
    list.insert({0, 0, 1.0f});
    list.clear();
    EXPECT_EQ(list.size(), 0);
    EXPECT_TRUE(list.empty());
}

namespace {

/** Fixture: a small image, its DCT field, and a color-domain plane. */
class BlockMatchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        plane_ = image::makeScene(image::SceneKind::Nature, 40, 40, 1, 21);
        dct_ = std::make_unique<transforms::Dct2D>(4);
        field_ = std::make_unique<bm3d::DctPatchField>(
            plane_, *dct_, 0.0f, std::nullopt, nullptr);
    }

    image::ImageF plane_;
    std::unique_ptr<transforms::Dct2D> dct_;
    std::unique_ptr<bm3d::DctPatchField> field_;
};

} // namespace

TEST_F(BlockMatchTest, ReferenceIsAlwaysFirstMatch)
{
    bm3d::DctMatchDomain domain(*field_);
    bm3d::BlockMatcher<bm3d::DctMatchDomain> matcher(domain, 13, 1, 1,
                                                     1e9f, 16);
    MatchList out;
    matcher.search(10, 10, out);
    ASSERT_GE(out.size(), 1);
    EXPECT_EQ(out[0].x, 10);
    EXPECT_EQ(out[0].y, 10);
    EXPECT_FLOAT_EQ(out[0].distance, 0.0f);
}

TEST_F(BlockMatchTest, FullSearchEvaluatesWholeWindow)
{
    bm3d::DctMatchDomain domain(*field_);
    bm3d::BlockMatcher<bm3d::DctMatchDomain> matcher(domain, 13, 1, 1,
                                                     1e9f, 16);
    MatchList out;
    // Interior reference: full 13x13 window minus the reference itself.
    uint64_t evaluated = matcher.search(18, 18, out);
    EXPECT_EQ(evaluated, 13u * 13u - 1u);
    // Corner reference: window clipped to 7x7.
    evaluated = matcher.search(0, 0, out);
    EXPECT_EQ(evaluated, 7u * 7u - 1u);
}

TEST_F(BlockMatchTest, MatchesSortedAndWithinWindow)
{
    bm3d::DctMatchDomain domain(*field_);
    bm3d::BlockMatcher<bm3d::DctMatchDomain> matcher(domain, 13, 1, 1,
                                                     1e9f, 16);
    MatchList out;
    matcher.search(18, 18, out);
    ASSERT_EQ(out.size(), 16);
    for (int i = 1; i < out.size(); ++i)
        EXPECT_LE(out[i - 1].distance, out[i].distance);
    for (const Match &m : out) {
        EXPECT_GE(m.x, 12);
        EXPECT_LE(m.x, 24);
        EXPECT_GE(m.y, 12);
        EXPECT_LE(m.y, 24);
    }
}

TEST_F(BlockMatchTest, TauMatchFiltersCandidates)
{
    image::ImageF noisy = image::addGaussianNoise(plane_, 40.0f, 5);
    bm3d::DctPatchField field(noisy, *dct_, 0.0f, std::nullopt, nullptr);
    bm3d::DctMatchDomain domain(field);
    bm3d::BlockMatcher<bm3d::DctMatchDomain> strict(domain, 13, 1, 1,
                                                    1.0f, 16);
    MatchList out;
    strict.search(18, 18, out);
    // With a tiny threshold on a noisy image only the reference stays.
    EXPECT_LT(out.size(), 16);
    EXPECT_GE(out.size(), 1);
}

TEST_F(BlockMatchTest, ReuseSearchEvaluatesFarFewerCandidates)
{
    bm3d::DctMatchDomain domain(*field_);
    bm3d::BlockMatcher<bm3d::DctMatchDomain> matcher(domain, 13, 1, 1,
                                                     1e9f, 16);
    MatchList prev, cur;
    uint64_t full = matcher.search(17, 18, prev);
    uint64_t reused = matcher.searchReuse(18, 18, prev, cur);
    EXPECT_LT(reused, full / 2);
    // Upper bound from the paper: Ns x Ps new column + 16 reused.
    EXPECT_LE(reused, 13u + 16u);
    ASSERT_GE(cur.size(), 1);
    EXPECT_EQ(cur[0].x, 18);
}

TEST_F(BlockMatchTest, ReuseNeverDuplicatesPositions)
{
    bm3d::DctMatchDomain domain(*field_);
    // Reference near the right edge so the new column overlaps the
    // previous window (the duplicate-risk case).
    bm3d::BlockMatcher<bm3d::DctMatchDomain> matcher(domain, 13, 1, 1,
                                                     1e9f, 16);
    MatchList prev, cur;
    matcher.search(35, 18, prev);
    matcher.searchReuse(36, 18, prev, cur);
    for (int i = 0; i < cur.size(); ++i)
        for (int j = i + 1; j < cur.size(); ++j)
            EXPECT_FALSE(cur[i].x == cur[j].x && cur[i].y == cur[j].y)
                << "duplicate at " << cur[i].x << "," << cur[i].y;
}

TEST_F(BlockMatchTest, ColorDomainMatchesDirectComputation)
{
    bm3d::ColorMatchDomain domain(plane_, 4);
    float expect = 0.0f;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c) {
            float d = plane_.at(5 + c, 6 + r) - plane_.at(9 + c, 11 + r);
            expect += d * d;
        }
    EXPECT_NEAR(domain.distance(5, 6, 9, 11), expect / 16.0f, 1e-3f);
}

TEST_F(BlockMatchTest, UniformImageAllDistancesZero)
{
    image::ImageF flat(32, 32, 1);
    flat.fill(99.0f);
    bm3d::ColorMatchDomain domain(flat, 4);
    bm3d::BlockMatcher<bm3d::ColorMatchDomain> matcher(domain, 9, 1, 1,
                                                       100.0f, 16);
    MatchList out;
    matcher.search(14, 14, out);
    EXPECT_EQ(out.size(), 16);
    for (const Match &m : out)
        EXPECT_FLOAT_EQ(m.distance, 0.0f);
}

TEST_F(BlockMatchTest, SoaFieldMatchesDirectDctAtEveryPosition)
{
    // The coefficient-major matching layout must hold exactly the same
    // values as a direct per-patch forward DCT (plus hard threshold),
    // at every position including the image edges where the halo of
    // valid top-lefts ends.
    const float threshold = 40.0f;
    bm3d::DctPatchField thresholded(plane_, *dct_, threshold, std::nullopt,
                                    nullptr);
    float pixels[16], direct[16], gathered[16];
    for (int y = 0; y < field_->positionsY(); ++y) {
        for (int x = 0; x < field_->positionsX(); ++x) {
            bm3d::extractPatch(plane_, x, y, 4, pixels);
            dct_->forward(pixels, direct);
            const float *raw = field_->patch(x, y);
            field_->gatherMatchPatch(x, y, gathered);
            for (int k = 0; k < 16; ++k) {
                ASSERT_EQ(raw[k], direct[k])
                    << "raw (" << x << "," << y << ") k=" << k;
                // threshold 0: the matching copy equals the raw DCT.
                ASSERT_EQ(gathered[k], direct[k])
                    << "match (" << x << "," << y << ") k=" << k;
            }
            thresholded.gatherMatchPatch(x, y, gathered);
            for (int k = 0; k < 16; ++k) {
                const float want =
                    std::abs(direct[k]) < threshold ? 0.0f : direct[k];
                ASSERT_EQ(gathered[k], want)
                    << "thresholded (" << x << "," << y << ") k=" << k;
            }
        }
    }
}

TEST_F(BlockMatchTest, SoaPlanesShareOneOffsetScheme)
{
    // matchPlanes()[k][matchOffset(x, y)] is the documented access
    // path the SSD kernels use; cross-check it against the gather.
    const float *const *planes = field_->matchPlanes();
    float gathered[16];
    const std::pair<int, int> positions[] = {
        {0, 0}, {36, 0}, {0, 36}, {36, 36}, {17, 23}};
    for (auto [x, y] : positions) {
        field_->gatherMatchPatch(x, y, gathered);
        const size_t off = field_->matchOffset(x, y);
        for (int k = 0; k < 16; ++k)
            ASSERT_EQ(planes[k][off], gathered[k])
                << "(" << x << "," << y << ") k=" << k;
    }
}

TEST_F(BlockMatchTest, DomainBatchDistancesMatchSingleBitwise)
{
    // The batched window-row path must pick the same matches as the
    // per-candidate path, which it does by producing bitwise-equal
    // distances.
    bm3d::DctMatchDomain dct_dom(*field_);
    bm3d::ColorMatchDomain color_dom(plane_, 4);
    auto check = [&](const auto &dom, const char *name) {
        float ref[64];
        float d[64];
        const int nx = dom.positionsX();
        const std::pair<int, int> refs[] = {
            {0, 0}, {nx - 1, dom.positionsY() - 1}, {11, 7}};
        for (auto [xr, yr] : refs) {
            dom.gatherRef(xr, yr, ref);
            for (int y : {0, yr, dom.positionsY() - 1}) {
                dom.distanceBatch(ref, 0, y, nx, d);
                for (int x = 0; x < nx; ++x)
                    ASSERT_EQ(d[x], dom.distance(xr, yr, x, y))
                        << name << " ref(" << xr << "," << yr << ") cand("
                        << x << "," << y << ")";
            }
        }
    };
    check(dct_dom, "dct");
    check(color_dom, "color");
}

TEST_F(BlockMatchTest, TileDctFieldMatchesDirectDctAndTracksCoverage)
{
    bm3d::TileDctField tile;
    // A range flush against the right image edge (positions run to 36
    // for a 40-wide plane and 4x4 patches).
    uint64_t dcts = tile.build(plane_, 0, *dct_, std::nullopt, 30, 0, 36, 5);
    EXPECT_EQ(dcts, 7u * 6u);
    EXPECT_TRUE(tile.covers(30, 0));
    EXPECT_TRUE(tile.covers(36, 5));
    EXPECT_FALSE(tile.covers(29, 0));
    EXPECT_FALSE(tile.covers(30, 6));
    EXPECT_FALSE(tile.covers(37, 5));

    float pixels[16], direct[16];
    for (int y = 0; y <= 5; ++y)
        for (int x = 30; x <= 36; ++x) {
            bm3d::extractPatch(plane_, x, y, 4, pixels);
            dct_->forward(pixels, direct);
            const float *cached = tile.patch(x, y);
            for (int k = 0; k < 16; ++k)
                ASSERT_EQ(cached[k], direct[k])
                    << "(" << x << "," << y << ") k=" << k;
        }

    // Arena reuse: rebuilding over a different (smaller) range must
    // forget the old coverage and serve the new one.
    dcts = tile.build(plane_, 0, *dct_, std::nullopt, 0, 10, 3, 12);
    EXPECT_EQ(dcts, 4u * 3u);
    EXPECT_FALSE(tile.covers(30, 2));
    EXPECT_TRUE(tile.covers(0, 10));
    for (int y = 10; y <= 12; ++y)
        for (int x = 0; x <= 3; ++x) {
            bm3d::extractPatch(plane_, x, y, 4, pixels);
            dct_->forward(pixels, direct);
            const float *cached = tile.patch(x, y);
            for (int k = 0; k < 16; ++k)
                ASSERT_EQ(cached[k], direct[k])
                    << "(" << x << "," << y << ") k=" << k;
        }
}
