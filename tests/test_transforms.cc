/**
 * @file
 * Unit and property tests for the transform substrate: DCT-II,
 * Haar, and the l2-norm distance block.
 */

#include <cmath>
#include <cstring>
#include <numeric>

#include <gtest/gtest.h>

#include "image/synthetic.h"
#include "transforms/dct.h"
#include "transforms/distance.h"
#include "transforms/haar.h"

using ideal::image::SplitMix64;
using ideal::transforms::Dct2D;
using ideal::transforms::Haar1D;

namespace {

std::vector<float>
randomVector(int n, uint64_t seed, float lo = -100.0f, float hi = 100.0f)
{
    SplitMix64 rng(seed);
    std::vector<float> v(n);
    for (float &x : v)
        x = rng.uniform(lo, hi);
    return v;
}

} // namespace

TEST(Dct, InvalidSizeThrows)
{
    EXPECT_THROW(Dct2D(1), std::invalid_argument);
    EXPECT_THROW(Dct2D(17), std::invalid_argument);
}

TEST(Dct, CoefficientMatrixIsOrthonormal)
{
    Dct2D dct(4);
    for (int r1 = 0; r1 < 4; ++r1)
        for (int r2 = 0; r2 < 4; ++r2) {
            double dot = 0.0;
            for (int c = 0; c < 4; ++c)
                dot += static_cast<double>(dct.coefficient(r1, c)) *
                       dct.coefficient(r2, c);
            EXPECT_NEAR(dot, r1 == r2 ? 1.0 : 0.0, 1e-6)
                << "rows " << r1 << "," << r2;
        }
}

TEST(Dct, ConstantPatchHasOnlyDc)
{
    Dct2D dct(4);
    float in[16], out[16];
    std::fill(std::begin(in), std::end(in), 3.0f);
    dct.forward(in, out);
    // Orthonormal DCT: DC = mean * N = 3 * 4 = 12.
    EXPECT_NEAR(out[0], 12.0f, 1e-5f);
    for (int i = 1; i < 16; ++i)
        EXPECT_NEAR(out[i], 0.0f, 1e-5f) << i;
}

class DctRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(DctRoundTrip, ForwardInverseIsIdentity)
{
    const int n = GetParam();
    Dct2D dct(n);
    auto in = randomVector(n * n, 100 + n, 0.0f, 255.0f);
    std::vector<float> freq(n * n), back(n * n);
    dct.forward(in.data(), freq.data());
    dct.inverse(freq.data(), back.data());
    for (int i = 0; i < n * n; ++i)
        EXPECT_NEAR(back[i], in[i], 1e-3f) << "n=" << n << " i=" << i;
}

TEST_P(DctRoundTrip, PreservesEnergy)
{
    const int n = GetParam();
    Dct2D dct(n);
    auto in = randomVector(n * n, 200 + n);
    std::vector<float> freq(n * n);
    dct.forward(in.data(), freq.data());
    auto energy = [](const std::vector<float> &v) {
        double acc = 0;
        for (float x : v)
            acc += static_cast<double>(x) * x;
        return acc;
    };
    EXPECT_NEAR(energy(freq) / energy(in), 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DctRoundTrip,
                         ::testing::Values(2, 3, 4, 5, 8, 16));

TEST(Dct, FixedPathApproximatesFloat)
{
    Dct2D dct(4);
    auto formats = ideal::fixed::PipelineFormats::forFraction(12);
    auto in = randomVector(16, 42, 0.0f, 255.0f);
    float f_out[16], q_out[16];
    dct.forward(in.data(), f_out);
    dct.forwardFixed(in.data(), q_out, formats);
    for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(q_out[i], f_out[i], 0.05f) << i;
}

TEST(Dct, FixedRoundTripErrorGrowsAtLowPrecision)
{
    Dct2D dct(4);
    auto in = randomVector(16, 43, 0.0f, 255.0f);
    auto round_trip_err = [&](int frac) {
        auto formats = ideal::fixed::PipelineFormats::forFraction(frac);
        float freq[16], back[16];
        dct.forwardFixed(in.data(), freq, formats);
        dct.inverseFixed(freq, back, formats);
        double err = 0;
        for (int i = 0; i < 16; ++i)
            err += std::abs(back[i] - in[i]);
        return err;
    };
    EXPECT_LT(round_trip_err(12), round_trip_err(5));
}

TEST(Haar, InvalidLengthThrows)
{
    EXPECT_THROW(Haar1D(3), std::invalid_argument);
    EXPECT_THROW(Haar1D(0), std::invalid_argument);
    EXPECT_THROW(Haar1D(128), std::invalid_argument);
}

TEST(Haar, MatrixIsOrthonormal)
{
    Haar1D haar(16);
    for (int r1 = 0; r1 < 16; ++r1)
        for (int r2 = 0; r2 < 16; ++r2) {
            double dot = 0.0;
            for (int c = 0; c < 16; ++c)
                dot += static_cast<double>(haar.coefficient(r1, c)) *
                       haar.coefficient(r2, c);
            EXPECT_NEAR(dot, r1 == r2 ? 1.0 : 0.0, 1e-6);
        }
}

TEST(Haar, ConstantVectorConcentratesInDc)
{
    Haar1D haar(16);
    float in[16], out[16];
    std::fill(std::begin(in), std::end(in), 2.0f);
    haar.forward(in, out);
    EXPECT_NEAR(out[0], 2.0f * 4.0f, 1e-5f); // mean * sqrt(16)
    for (int i = 1; i < 16; ++i)
        EXPECT_NEAR(out[i], 0.0f, 1e-5f);
}

class HaarRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(HaarRoundTrip, ButterflyMatchesMatrix)
{
    const int n = GetParam();
    Haar1D haar(n);
    auto in = randomVector(n, 300 + n);
    std::vector<float> fast(n), direct(n);
    haar.forward(in.data(), fast.data());
    haar.forwardMatrix(in.data(), direct.data());
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(fast[i], direct[i], 1e-3f) << "n=" << n << " i=" << i;
}

TEST_P(HaarRoundTrip, ForwardInverseIsIdentity)
{
    const int n = GetParam();
    Haar1D haar(n);
    auto in = randomVector(n, 400 + n);
    std::vector<float> freq(n), back(n);
    haar.forward(in.data(), freq.data());
    haar.inverse(freq.data(), back.data());
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(back[i], in[i], 1e-3f);
}

TEST_P(HaarRoundTrip, InverseMatrixMatchesButterfly)
{
    const int n = GetParam();
    Haar1D haar(n);
    auto in = randomVector(n, 500 + n);
    std::vector<float> a(n), b(n);
    haar.inverse(in.data(), a.data());
    haar.inverseMatrix(in.data(), b.data());
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(a[i], b[i], 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Lengths, HaarRoundTrip,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

class HaarRows : public ::testing::TestWithParam<int>
{
};

TEST_P(HaarRows, ForwardRowsBitwiseMatchesPerColumn)
{
    // The row-wise (SoA) form must produce the exact same bits as
    // running the scalar butterfly on each column independently:
    // the tiled BM3D runner's determinism guarantee relies on it.
    const int n = GetParam();
    const int width = 7; // not a multiple of any SIMD width
    Haar1D haar(n);
    auto in = randomVector(n * width, 600 + n);
    std::vector<float> rows(n * width), cols(n * width);
    haar.forwardRows(in.data(), rows.data(), width, width);
    std::vector<float> col_in(n), col_out(n);
    for (int c = 0; c < width; ++c) {
        for (int i = 0; i < n; ++i)
            col_in[i] = in[i * width + c];
        haar.forward(col_in.data(), col_out.data());
        for (int i = 0; i < n; ++i)
            cols[i * width + c] = col_out[i];
    }
    EXPECT_EQ(0,
              std::memcmp(rows.data(), cols.data(),
                          rows.size() * sizeof(float)))
        << "n=" << n;
}

TEST_P(HaarRows, InverseRowsBitwiseMatchesPerColumn)
{
    const int n = GetParam();
    const int width = 5;
    Haar1D haar(n);
    auto in = randomVector(n * width, 700 + n);
    std::vector<float> rows(n * width), cols(n * width);
    haar.inverseRows(in.data(), rows.data(), width, width);
    std::vector<float> col_in(n), col_out(n);
    for (int c = 0; c < width; ++c) {
        for (int i = 0; i < n; ++i)
            col_in[i] = in[i * width + c];
        haar.inverse(col_in.data(), col_out.data());
        for (int i = 0; i < n; ++i)
            cols[i * width + c] = col_out[i];
    }
    EXPECT_EQ(0,
              std::memcmp(rows.data(), cols.data(),
                          rows.size() * sizeof(float)))
        << "n=" << n;
}

TEST(HaarRows, RejectsBadWidth)
{
    Haar1D haar(8);
    float buf[8 * 65];
    EXPECT_THROW(haar.forwardRows(buf, buf, 65, 0),
                 std::invalid_argument);
    EXPECT_THROW(haar.inverseRows(buf, buf, 65, 65),
                 std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Lengths, HaarRows,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(Dct, FoldedPassMatchesMatrixProduct)
{
    // forward() uses the even/odd folded factorization; check it
    // against the plain C (C P)^T definition built from the exposed
    // coefficient matrix.
    const int n = 8;
    Dct2D dct(n);
    auto in = randomVector(n * n, 4242);
    std::vector<float> fast(n * n), t(n * n), direct(n * n);
    dct.forward(in.data(), fast.data());
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c) {
            double acc = 0.0;
            for (int k = 0; k < n; ++k)
                acc += dct.coefficient(r, k) * in[k * n + c];
            t[r * n + c] = static_cast<float>(acc);
        }
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c) {
            double acc = 0.0;
            for (int k = 0; k < n; ++k)
                acc += dct.coefficient(r, k) * t[c * n + k];
            direct[r * n + c] = static_cast<float>(acc);
        }
    for (int i = 0; i < n * n; ++i)
        EXPECT_NEAR(fast[i], direct[i], 1e-3f) << i;
}

TEST(Haar, FixedPathApproximatesFloat)
{
    Haar1D haar(16);
    auto formats = ideal::fixed::PipelineFormats::forFraction(12);
    auto in = randomVector(16, 77, -500.0f, 500.0f);
    float f_out[16], q_out[16];
    haar.forward(in.data(), f_out);
    haar.forwardFixed(in.data(), q_out, formats);
    for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(q_out[i], f_out[i], 0.1f);
}

TEST(Distance, MatchesDefinition)
{
    float a[4] = {1, 2, 3, 4};
    float b[4] = {2, 2, 1, 0};
    // (1)^2 + 0 + (2)^2 + (4)^2 = 21
    EXPECT_FLOAT_EQ(ideal::transforms::squaredDistance(a, b, 4), 21.0f);
}

TEST(Distance, ZeroForIdentical)
{
    auto v = randomVector(16, 88);
    EXPECT_FLOAT_EQ(
        ideal::transforms::squaredDistance(v.data(), v.data(), 16), 0.0f);
}

TEST(Distance, BoundedMatchesExactWhenUnderBound)
{
    auto a = randomVector(16, 89);
    auto b = randomVector(16, 90);
    float exact = ideal::transforms::squaredDistance(a.data(), b.data(), 16);
    float bounded = ideal::transforms::squaredDistanceBounded(
        a.data(), b.data(), 16, exact + 1.0f);
    EXPECT_FLOAT_EQ(bounded, exact);
}

TEST(Distance, BoundedEarlyExitsOverBound)
{
    auto a = randomVector(16, 91);
    auto b = randomVector(16, 92);
    float exact = ideal::transforms::squaredDistance(a.data(), b.data(), 16);
    float bounded = ideal::transforms::squaredDistanceBounded(
        a.data(), b.data(), 16, exact / 4.0f);
    EXPECT_GT(bounded, exact / 4.0f);
}
