#!/usr/bin/env python3
"""Unit tests for scripts/bench_diff.py (registered as a ctest).

Covers the comparison primitives directly (tolerance edges, keys
present in only one record, the deterministic op-count gate) and the
end-to-end exit code through main() on synthetic records.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "scripts"),
)
import bench_diff  # noqa: E402


def record(**overrides):
    """A minimal valid bench record; fields overridable per test."""
    base = {
        "name": "fig02_cpu_runtime",
        "git_sha": "abc123",
        "simd_level": "avx2",
        "threads": 8,
        "wall_time_s": 10.0,
        "metrics": {},
        "kernel_times_ms": {"DCT1": 100.0, "BM1": 200.0},
        "ops": {"DCT1_ops": 1000.0, "BM1_ops": 2000.0},
        "counters": {"bm3d.mr.bm1Refs": 64009.0},
    }
    base.update(overrides)
    return base


class TestLoad(unittest.TestCase):
    def test_load_valid_record(self):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as f:
            json.dump(record(), f)
            path = f.name
        try:
            self.assertEqual(bench_diff.load(path)["name"], "fig02_cpu_runtime")
        finally:
            os.unlink(path)

    def test_load_rejects_non_record(self):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as f:
            json.dump({"name": "x"}, f)  # missing wall_time_s etc.
            path = f.name
        try:
            with self.assertRaises(SystemExit):
                bench_diff.load(path)
        finally:
            os.unlink(path)


class TestCompareTimes(unittest.TestCase):
    def test_identical_records_pass(self):
        rows, regressions = bench_diff.compare_times(record(), record(), 0.10)
        self.assertEqual(regressions, [])
        self.assertTrue(all(status == "ok" for *_, status in rows))

    def test_slowdown_over_threshold_fails(self):
        cand = record(kernel_times_ms={"DCT1": 125.0, "BM1": 200.0})
        rows, regressions = bench_diff.compare_times(record(), cand, 0.10)
        self.assertEqual(regressions, ["DCT1"])

    def test_slowdown_within_threshold_passes(self):
        cand = record(kernel_times_ms={"DCT1": 109.0, "BM1": 200.0})
        _, regressions = bench_diff.compare_times(record(), cand, 0.10)
        self.assertEqual(regressions, [])

    def test_missing_kernels_reported_not_failed(self):
        # Kernels come and go across PRs: "new" and "gone" rows must
        # never fail the gate on their own.
        cand = record(kernel_times_ms={"DCT1": 100.0, "DE1": 50.0})
        rows, regressions = bench_diff.compare_times(record(), cand, 0.10)
        self.assertEqual(regressions, [])
        statuses = {key: status for key, _, _, status in rows}
        self.assertEqual(statuses["BM1"], "gone")
        self.assertEqual(statuses["DE1"], "new")

    def test_zero_baseline_time_is_regression_when_candidate_positive(self):
        base = record(kernel_times_ms={"DCT1": 0.0})
        cand = record(kernel_times_ms={"DCT1": 1.0})
        _, regressions = bench_diff.compare_times(base, cand, 0.10)
        self.assertEqual(regressions, ["DCT1"])

    def test_step_skipped_by_both_runs_passes(self):
        # Wiener-off records carry 0 ms for BM2/DCT2/DE2 on both
        # sides; a self-compare must not read 0/0 as infinitely slower.
        base = record(kernel_times_ms={"DCT1": 100.0, "BM2": 0.0})
        _, regressions = bench_diff.compare_times(base, dict(base), 0.10)
        self.assertEqual(regressions, [])


class TestCompareOps(unittest.TestCase):
    def test_exact_match_passes_at_zero_tolerance(self):
        _, drifted = bench_diff.compare_ops(record(), record(), 0.0)
        self.assertEqual(drifted, [])

    def test_any_drift_fails_at_zero_tolerance(self):
        cand = record(ops={"DCT1_ops": 1001.0, "BM1_ops": 2000.0})
        _, drifted = bench_diff.compare_ops(record(), cand, 0.0)
        self.assertEqual(drifted, ["DCT1_ops"])

    def test_counters_snapshot_is_gated_too(self):
        cand = record(counters={"bm3d.mr.bm1Refs": 64010.0})
        _, drifted = bench_diff.compare_ops(record(), cand, 0.0)
        self.assertEqual(drifted, ["bm3d.mr.bm1Refs"])

    def test_drift_within_tolerance_passes(self):
        cand = record(ops={"DCT1_ops": 1040.0, "BM1_ops": 2000.0})
        _, drifted = bench_diff.compare_ops(record(), cand, 0.05)
        self.assertEqual(drifted, [])

    def test_missing_keys_reported_not_failed(self):
        # Records from before the counters were embedded have no
        # "counters" map at all; the gate must not fail vacuously.
        base = record()
        del base["counters"]
        rows, drifted = bench_diff.compare_ops(base, record(), 0.0)
        self.assertEqual(drifted, [])
        statuses = {key: status for key, _, _, status in rows}
        self.assertEqual(statuses["bm3d.mr.bm1Refs"], "new")

    def test_excluded_keys_never_drift(self):
        # Arena hit/miss tallies depend on pipeline interleaving; the
        # exclude regex lets a zero-tolerance gate skip exactly those.
        base = record(
            counters={"arena.hit": 10.0, "service.hd0.arena.hits": 5.0,
                      "service.rejects": 2.0}
        )
        cand = record(
            counters={"arena.hit": 12.0, "service.hd0.arena.hits": 7.0,
                      "service.rejects": 2.0}
        )
        rows, drifted = bench_diff.compare_ops(
            base, cand, 0.0, exclude=r"(^|\.)arena\."
        )
        self.assertEqual(drifted, [])
        statuses = {key: status for key, _, _, status in rows}
        self.assertEqual(statuses["arena.hit"], "excluded")
        self.assertEqual(statuses["service.hd0.arena.hits"], "excluded")
        self.assertEqual(statuses["service.rejects"], "ok")

    def test_exclude_does_not_weaken_gate_on_other_keys(self):
        base = record(counters={"arena.hit": 10.0, "service.rejects": 2.0})
        cand = record(counters={"arena.hit": 10.0, "service.rejects": 3.0})
        _, drifted = bench_diff.compare_ops(
            base, cand, 0.0, exclude=r"(^|\.)arena\."
        )
        self.assertEqual(drifted, ["service.rejects"])


class TestCompareMem(unittest.TestCase):
    """The mem.peak* footprint-gauge gate (--mem-tolerance)."""

    GAUGES = {
        "mem.peakResidentBytes": 8.0e6,
        "mem.peakBandBytes": 1.0e6,
        "mem.peakFieldBytes": 6.0e6,
        "simd.level": 2.0,
    }

    def test_identical_gauges_pass(self):
        base = record(gauges=dict(self.GAUGES))
        rows, regressions = bench_diff.compare_mem(base, base, 0.10)
        self.assertEqual(regressions, [])
        # Only the mem.peak* family is gated; other gauges stay out.
        self.assertEqual(len(rows), 3)

    def test_footprint_growth_over_tolerance_fails(self):
        base = record(gauges=dict(self.GAUGES))
        cand = record(gauges=dict(self.GAUGES, **{
            "mem.peakBandBytes": 1.2e6}))
        _, regressions = bench_diff.compare_mem(base, cand, 0.10)
        self.assertEqual(regressions, ["mem.peakBandBytes"])

    def test_shrinking_footprint_never_fails(self):
        # The banded schedule's whole point: a candidate whose peak
        # drops (whole-image field replaced by the ring) must pass.
        base = record(gauges=dict(self.GAUGES))
        cand = record(gauges=dict(self.GAUGES, **{
            "mem.peakResidentBytes": 2.0e6}))
        rows, regressions = bench_diff.compare_mem(base, cand, 0.10)
        self.assertEqual(regressions, [])
        statuses = {key: status for key, _, _, status in rows}
        self.assertIn("improved", statuses["mem.peakResidentBytes"])

    def test_non_mem_gauges_never_gated(self):
        base = record(gauges={"simd.level": 2.0, "mem.peakBandBytes": 1.0})
        cand = record(gauges={"simd.level": 9.0, "mem.peakBandBytes": 1.0})
        _, regressions = bench_diff.compare_mem(base, cand, 0.10)
        self.assertEqual(regressions, [])

    def test_prefixed_names_are_gated_too(self):
        # Service rollups nest gauges as "<tenant>.mem.peak*".
        base = record(gauges={"hd0.mem.peakBandBytes": 1.0e6})
        cand = record(gauges={"hd0.mem.peakBandBytes": 2.0e6})
        _, regressions = bench_diff.compare_mem(base, cand, 0.10)
        self.assertEqual(regressions, ["hd0.mem.peakBandBytes"])

    def test_one_sided_gauges_reported_not_failed(self):
        # Records from before the footprint ledger have no mem.peak*
        # gauges at all; the gate must not fail vacuously.
        base = record()
        cand = record(gauges=dict(self.GAUGES))
        rows, regressions = bench_diff.compare_mem(base, cand, 0.10)
        self.assertEqual(regressions, [])
        statuses = {key: status for key, _, _, status in rows}
        self.assertEqual(statuses["mem.peakBandBytes"], "new")


class TestCompareLatency(unittest.TestCase):
    LAT = {"p50": 100.0, "p95": 150.0, "p99": 180.0, "mean": 110.0,
           "max": 200.0}

    def test_identical_latencies_pass(self):
        base = record(latency_ms=dict(self.LAT))
        rows, regressions = bench_diff.compare_latency(base, base, 0.10)
        self.assertEqual(regressions, [])
        self.assertEqual(len(rows), len(self.LAT))

    def test_percentile_regression_fails(self):
        base = record(latency_ms=dict(self.LAT))
        cand_lat = dict(self.LAT, p99=250.0)
        cand = record(latency_ms=cand_lat)
        _, regressions = bench_diff.compare_latency(base, cand, 0.10)
        self.assertEqual(regressions, ["p99"])

    def test_slowdown_within_tolerance_passes(self):
        base = record(latency_ms=dict(self.LAT))
        cand = record(latency_ms=dict(self.LAT, p50=105.0))
        _, regressions = bench_diff.compare_latency(base, cand, 0.10)
        self.assertEqual(regressions, [])

    def test_batch_records_have_nothing_to_gate(self):
        # Batch records carry an empty "latency_ms" (bench/common.cc
        # always emits the key); pre-PR-5 records lack it entirely.
        # Neither may fail.
        base = record(latency_ms={})
        old = record()
        for b, c in ((base, base), (old, record(latency_ms=self.LAT))):
            rows, regressions = bench_diff.compare_latency(b, c, 0.10)
            self.assertEqual(regressions, [])
        statuses = {key: status for key, _, _, status in rows}
        self.assertEqual(statuses["p50"], "new")


class TestTenantLatency(unittest.TestCase):
    """Per-tenant SLO rows: "tenant_latency_ms" flattening + gating."""

    SLO = {"p50": 40.0, "p95": 60.0, "p99": 75.0, "mean": 45.0,
           "max": 80.0}

    def service_record(self, **tenant_overrides):
        tenants = {"hd0": dict(self.SLO), "sd0": dict(self.SLO, p50=20.0)}
        for name, summary in tenant_overrides.items():
            tenants[name] = summary
        return record(
            latency_ms=dict(self.SLO), tenant_latency_ms=tenants
        )

    def test_flatten_merges_global_and_tenant_keys(self):
        flat = bench_diff.flatten_latency(self.service_record())
        self.assertEqual(flat["p50"], 40.0)
        self.assertEqual(flat["hd0.p95"], 60.0)
        self.assertEqual(flat["sd0.p50"], 20.0)
        self.assertEqual(len(flat), len(self.SLO) * 3)

    def test_flatten_of_solo_record_is_just_the_global_summary(self):
        self.assertEqual(
            bench_diff.flatten_latency(record(latency_ms=dict(self.SLO))),
            self.SLO,
        )

    def test_identical_service_records_pass(self):
        base = self.service_record()
        _, regressions = bench_diff.compare_latency(base, base, 0.10)
        self.assertEqual(regressions, [])

    def test_single_tenant_regression_fails_by_name(self):
        # One tenant's p99 blowing its SLO must fail even when the
        # aggregate "latency_ms" percentiles stay flat.
        base = self.service_record()
        cand = self.service_record(hd0=dict(self.SLO, p99=150.0))
        _, regressions = bench_diff.compare_latency(base, cand, 0.10)
        self.assertEqual(regressions, ["hd0.p99"])

    def test_tenant_in_only_one_record_reported_not_failed(self):
        # Sessions come and go across PRs — same shared-key rule as
        # kernels: "new"/"gone" rows never fail on their own.
        base = self.service_record()
        cand = record(
            latency_ms=dict(self.SLO),
            tenant_latency_ms={"hd0": dict(self.SLO)},
        )
        rows, regressions = bench_diff.compare_latency(base, cand, 0.10)
        self.assertEqual(regressions, [])
        statuses = {key: status for key, _, _, status in rows}
        self.assertEqual(statuses["sd0.p50"], "gone")

    def test_end_to_end_tenant_gate(self):
        runner = TestMain()
        base = self.service_record()
        cand = self.service_record(sd0=dict(self.SLO, p50=90.0))
        # Gate off by default; fails once --latency-tolerance is given.
        self.assertEqual(runner.run_main(base, cand), 0)
        self.assertEqual(
            runner.run_main(base, cand, "--latency-tolerance", "0.10"), 1
        )


class TestCheckSnr(unittest.TestCase):
    def test_delta_within_envelope_passes(self):
        cand = record(metrics={"snr_delta_db": -0.041})
        _, failures = bench_diff.check_snr(cand, 0.05)
        self.assertEqual(failures, [])

    def test_delta_outside_envelope_fails(self):
        cand = record(metrics={"snr_delta_db": 0.2})
        _, failures = bench_diff.check_snr(cand, 0.05)
        self.assertEqual(failures, ["snr_delta_db"])

    def test_envelope_is_two_sided(self):
        # A quantized path that somehow *gains* SNR is just as much a
        # behavioral change as one that loses it.
        cand = record(metrics={"snr_delta_db": -0.2})
        _, failures = bench_diff.check_snr(cand, 0.05)
        self.assertEqual(failures, ["snr_delta_db"])

    def test_records_without_snr_metrics_have_nothing_to_gate(self):
        rows, failures = bench_diff.check_snr(record(), 0.05)
        self.assertEqual(rows, [])
        self.assertEqual(failures, [])

    def test_ablation_rows_gate_only_the_loss_side(self):
        # Variant rows search a different candidate set by design, so
        # a quality *gain* (e.g. MR on coherent content) must pass;
        # only losses beyond the envelope fail.
        cand = record(
            metrics={
                "ablate_mr_snr_delta_db": 2.6,
                "ablate_preset_snr_delta_db": 0.15,
                "ablate_coarse_snr_delta_db": -0.26,
            }
        )
        _, failures = bench_diff.check_snr(cand, 0.1)
        self.assertEqual(failures, ["ablate_coarse_snr_delta_db"])

    def test_parity_keys_stay_two_sided(self):
        cand = record(metrics={"snr_delta_db": 0.2})
        _, failures = bench_diff.check_snr(cand, 0.1)
        self.assertEqual(failures, ["snr_delta_db"])


class TestCompareWall(unittest.TestCase):
    def test_within_tolerance(self):
        cand = record(wall_time_s=10.5)
        _, regressed = bench_diff.compare_wall(record(), cand, 0.10)
        self.assertFalse(regressed)

    def test_over_tolerance(self):
        cand = record(wall_time_s=11.5)
        _, regressed = bench_diff.compare_wall(record(), cand, 0.10)
        self.assertTrue(regressed)

    def test_speedup_passes(self):
        cand = record(wall_time_s=5.0)
        msg, regressed = bench_diff.compare_wall(record(), cand, 0.10)
        self.assertFalse(regressed)
        self.assertIn("speedup", msg)


class TestCompareStages(unittest.TestCase):
    """The summed-stage gate (--stage-tolerance / --stages)."""

    DE = {"DE1": 400.0, "DE2": 600.0}

    def test_identical_records_pass(self):
        base = record(kernel_times_ms=dict(self.DE))
        _, regressed = bench_diff.compare_stages(base, base, "DE1,DE2", 0.10)
        self.assertFalse(regressed)

    def test_sum_regression_over_tolerance_fails(self):
        base = record(kernel_times_ms=dict(self.DE))
        cand = record(kernel_times_ms={"DE1": 500.0, "DE2": 700.0})
        msg, regressed = bench_diff.compare_stages(
            base, cand, "DE1,DE2", 0.10
        )
        self.assertTrue(regressed)
        self.assertIn("REGRESSION", msg)

    def test_time_moving_between_stages_passes(self):
        # The whole point of gating the sum: a fused datapath may shift
        # time between DE1 and DE2 as long as the section holds.
        base = record(kernel_times_ms=dict(self.DE))
        cand = record(kernel_times_ms={"DE1": 900.0, "DE2": 100.0})
        _, regressed = bench_diff.compare_stages(
            base, cand, "DE1,DE2", 0.10
        )
        self.assertFalse(regressed)

    def test_speedup_passes(self):
        base = record(kernel_times_ms=dict(self.DE))
        cand = record(kernel_times_ms={"DE1": 200.0, "DE2": 300.0})
        msg, regressed = bench_diff.compare_stages(
            base, cand, "DE1,DE2", 0.10
        )
        self.assertFalse(regressed)
        self.assertIn("speedup 2.00x", msg)

    def test_missing_stage_fails_loudly(self):
        # Unlike compare_times' shared-key discovery, the caller named
        # these stages explicitly: one absent from either record is a
        # failure, not a silently weaker gate.
        base = record(kernel_times_ms=dict(self.DE))
        cand = record(kernel_times_ms={"DE1": 400.0})
        msg, regressed = bench_diff.compare_stages(
            base, cand, "DE1,DE2", 0.10
        )
        self.assertTrue(regressed)
        self.assertIn("DE2", msg)

    def test_empty_stage_list_is_skipped(self):
        base = record(kernel_times_ms=dict(self.DE))
        _, regressed = bench_diff.compare_stages(base, base, " , ", 0.10)
        self.assertFalse(regressed)

    def test_zero_baseline_is_skipped(self):
        base = record(kernel_times_ms={"DE1": 0.0, "DE2": 0.0})
        cand = record(kernel_times_ms=dict(self.DE))
        msg, regressed = bench_diff.compare_stages(
            base, cand, "DE1,DE2", 0.10
        )
        self.assertFalse(regressed)
        self.assertIn("skipped", msg)


class TestCompareContext(unittest.TestCase):
    def test_mismatched_context_warns(self):
        cand = record(simd_level="scalar", threads=1)
        warnings = bench_diff.compare_context(record(), cand)
        self.assertEqual(len(warnings), 2)

    def test_matching_context_is_silent(self):
        self.assertEqual(bench_diff.compare_context(record(), record()), [])

    def test_metric_threads_mismatch_warns(self):
        # fig02 mixes widths in one record (single-threaded probe next
        # to t8 rows); a shared metric tagged with different resolved
        # widths is not comparable and must be flagged.
        base = record(metric_threads={"psnr_db": 1, "int16_speedup": 8})
        cand = record(metric_threads={"psnr_db": 4, "int16_speedup": 8})
        warnings = bench_diff.compare_context(base, cand)
        self.assertEqual(len(warnings), 1)
        self.assertIn("metric_threads[psnr_db]", warnings[0])

    def test_metric_threads_one_sided_keys_are_silent(self):
        # A row tagged in only one record (new bench column, or a
        # pre-tagging baseline with no map at all) is not a mismatch.
        cand = record(metric_threads={"fused_de_speedup": 8})
        self.assertEqual(bench_diff.compare_context(record(), cand), [])


class TestMain(unittest.TestCase):
    def run_main(self, base, cand, *flags):
        paths = []
        for rec in (base, cand):
            f = tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False
            )
            json.dump(rec, f)
            f.close()
            paths.append(f.name)
        argv_saved = sys.argv
        sys.argv = ["bench_diff.py", *paths, *flags]
        try:
            return bench_diff.main()
        finally:
            sys.argv = argv_saved
            for p in paths:
                os.unlink(p)

    def test_identical_records_exit_zero(self):
        self.assertEqual(self.run_main(record(), record()), 0)

    def test_kernel_regression_exits_nonzero(self):
        cand = record(kernel_times_ms={"DCT1": 150.0, "BM1": 200.0})
        self.assertEqual(self.run_main(record(), cand), 1)

    def test_ops_gate_off_by_default(self):
        cand = record(ops={"DCT1_ops": 9999.0, "BM1_ops": 2000.0})
        self.assertEqual(self.run_main(record(), cand), 0)

    def test_ops_gate_fails_on_drift(self):
        cand = record(ops={"DCT1_ops": 9999.0, "BM1_ops": 2000.0})
        self.assertEqual(
            self.run_main(record(), cand, "--ops-tolerance", "0.0"), 1
        )

    def test_ops_exclude_exempts_matching_keys_end_to_end(self):
        base = record(counters={"arena.hit": 10.0})
        cand = record(counters={"arena.hit": 12.0})
        self.assertEqual(
            self.run_main(base, cand, "--ops-tolerance", "0.0"), 1
        )
        self.assertEqual(
            self.run_main(base, cand, "--ops-tolerance", "0.0",
                          "--ops-exclude", r"(^|\.)arena\."), 0
        )

    def test_mem_gate_off_by_default(self):
        base = record(gauges={"mem.peakBandBytes": 1.0e6})
        cand = record(gauges={"mem.peakBandBytes": 9.0e6})
        self.assertEqual(self.run_main(base, cand), 0)

    def test_mem_gate_fails_on_footprint_growth(self):
        base = record(gauges={"mem.peakBandBytes": 1.0e6})
        cand = record(gauges={"mem.peakBandBytes": 9.0e6})
        self.assertEqual(
            self.run_main(base, cand, "--mem-tolerance", "0.10"), 1
        )

    def test_mem_gate_passes_on_band_counters_with_zero_ops_tolerance(self):
        # The CI band-smoke invocation: band counters identical at
        # --ops-tolerance 0 while the footprint gauges hold at 10%.
        base = record(
            counters={"bm3d.band.bands": 24.0,
                      "bm3d.band.rowsFilled": 1077.0},
            gauges={"mem.peakBandBytes": 27.0e6},
        )
        cand = record(
            counters={"bm3d.band.bands": 24.0,
                      "bm3d.band.rowsFilled": 1077.0},
            gauges={"mem.peakBandBytes": 27.5e6},
        )
        self.assertEqual(
            self.run_main(base, cand, "--ops-tolerance", "0",
                          "--mem-tolerance", "0.10"), 0
        )
        drifted_cand = record(
            counters={"bm3d.band.bands": 25.0,
                      "bm3d.band.rowsFilled": 1077.0},
            gauges={"mem.peakBandBytes": 27.0e6},
        )
        self.assertEqual(
            self.run_main(base, drifted_cand, "--ops-tolerance", "0",
                          "--mem-tolerance", "0.10"), 1
        )

    def test_latency_gate_off_by_default(self):
        base = record(latency_ms={"p50": 100.0})
        cand = record(latency_ms={"p50": 900.0})
        self.assertEqual(self.run_main(base, cand), 0)

    def test_latency_gate_fails_on_regression(self):
        base = record(latency_ms={"p50": 100.0})
        cand = record(latency_ms={"p50": 150.0})
        self.assertEqual(
            self.run_main(base, cand, "--latency-tolerance", "0.10"), 1
        )

    def test_snr_gate_off_by_default(self):
        cand = record(metrics={"snr_delta_db": 0.2})
        self.assertEqual(self.run_main(record(), cand), 0)

    def test_snr_gate_fails_outside_envelope(self):
        cand = record(metrics={"snr_delta_db": 0.2})
        self.assertEqual(
            self.run_main(record(), cand, "--snr-tolerance", "0.05"), 1
        )

    def test_snr_gate_passes_within_envelope(self):
        cand = record(metrics={"snr_delta_db": -0.041})
        self.assertEqual(
            self.run_main(record(), cand, "--snr-tolerance", "0.05"), 0
        )

    def test_stage_gate_off_by_default(self):
        base = record(kernel_times_ms={"DE1": 400.0, "DE2": 600.0})
        cand = record(kernel_times_ms={"DE1": 900.0, "DE2": 1400.0})
        # Per-kernel gate would fire; keep the table quiet by matching
        # thresholds, so only the (absent) stage gate is under test.
        self.assertEqual(
            self.run_main(base, cand, "--threshold", "9.9",
                          "--tolerance", "0.1"), 0
        )

    def test_stage_gate_fails_on_summed_regression(self):
        base = record(kernel_times_ms={"DE1": 400.0, "DE2": 600.0})
        cand = record(kernel_times_ms={"DE1": 900.0, "DE2": 1400.0})
        self.assertEqual(
            self.run_main(base, cand, "--threshold", "9.9",
                          "--stage-tolerance", "0.10"), 1
        )

    def test_stage_gate_honors_stages_flag(self):
        # Regression lives in DE2; gating DCT1+DE1 alone must pass.
        base = record(
            kernel_times_ms={"DCT1": 100.0, "DE1": 400.0, "DE2": 600.0}
        )
        cand = record(
            kernel_times_ms={"DCT1": 100.0, "DE1": 400.0, "DE2": 1400.0}
        )
        self.assertEqual(
            self.run_main(base, cand, "--threshold", "9.9",
                          "--stage-tolerance", "0.10",
                          "--stages", "DCT1,DE1"), 0
        )

    def test_stage_gate_fails_when_stage_missing(self):
        base = record(kernel_times_ms={"DE1": 400.0})
        cand = record(kernel_times_ms={"DE1": 400.0})
        self.assertEqual(
            self.run_main(base, cand, "--stage-tolerance", "0.10"), 1
        )


ABLATION_METRICS = {
    "snr_delta_db": -0.02,
    "ablate_dense_wall_s": 4.0,
    "ablate_dense_bm1_ms": 900.0,
    "ablate_dense_bm2_ms": 600.0,
    "ablate_dense_de1_ms": 300.0,
    "ablate_dense_de2_ms": 200.0,
    "ablate_dense_snr_delta_db": 0.0,
    "ablate_coarse_wall_s": 2.5,
    "ablate_coarse_bm1_ms": 450.0,
    "ablate_coarse_bm2_ms": 300.0,
    "ablate_coarse_de1_ms": 600.0,
    "ablate_coarse_de2_ms": 400.0,
    "ablate_coarse_snr_delta_db": -0.03,
}


class TestAblationRows(unittest.TestCase):
    def test_groups_by_variant_in_insertion_order(self):
        order, variants = bench_diff.ablation_rows(
            record(metrics=dict(ABLATION_METRICS))
        )
        self.assertEqual(order, ["dense", "coarse"])
        self.assertEqual(variants["dense"]["bm1_ms"], 900.0)
        self.assertEqual(variants["coarse"]["snr_delta_db"], -0.03)

    def test_non_ablation_metrics_ignored(self):
        _, variants = bench_diff.ablation_rows(
            record(metrics={"snr_delta_db": 0.1})
        )
        self.assertEqual(variants, {})

    def test_unknown_field_suffix_ignored(self):
        order, variants = bench_diff.ablation_rows(
            record(
                metrics={
                    "ablate_dense_bm1_ms": 1.0,
                    "ablate_dense_novel_field": 7.0,
                }
            )
        )
        self.assertEqual(order, ["dense"])
        self.assertEqual(variants["dense"], {"bm1_ms": 1.0})

    def test_variant_names_with_underscores(self):
        # The field suffix is matched from the end, so variant names
        # may themselves contain underscores.
        order, variants = bench_diff.ablation_rows(
            record(metrics={"ablate_coarse_s3_bm1_ms": 5.0})
        )
        self.assertEqual(order, ["coarse_s3"])
        self.assertEqual(variants["coarse_s3"]["bm1_ms"], 5.0)


class TestAblationTable(unittest.TestCase):
    def test_empty_record_renders_nothing(self):
        self.assertEqual(bench_diff.ablation_table(record()), [])

    def test_table_shape_and_speedup(self):
        lines = bench_diff.ablation_table(
            record(metrics=dict(ABLATION_METRICS))
        )
        # Header + separator + one row per variant.
        self.assertEqual(len(lines), 4)
        self.assertTrue(lines[0].startswith("| variant |"))
        dense_row = lines[2]
        coarse_row = lines[3]
        # Dense is its own reference: exactly 1.00x.
        self.assertIn("| 1.00x |", dense_row)
        # BM: (900 + 600) / (450 + 300) = 2.00x, read off the table.
        self.assertIn("| 2.00x |", coarse_row)
        # DE: (300 + 200) / (600 + 400) = 0.50x — the fused-off row
        # pattern, where the variant's denoise section is *slower*.
        self.assertIn("| 0.50x |", coarse_row)
        self.assertIn("| -0.030 |", coarse_row)

    def test_missing_fields_render_as_dash(self):
        lines = bench_diff.ablation_table(
            record(metrics={"ablate_dense_bm1_ms": 10.0})
        )
        row = lines[2]
        # No wall, no bm2 (hence no BM sum and no speedup), no de1/de2
        # (hence no DE sum and no speedup), no dSNR: six dash cells.
        self.assertEqual(row.count("-"), 6)

    def test_no_dense_row_means_no_speedup_column(self):
        metrics = {
            k: v
            for k, v in ABLATION_METRICS.items()
            if not k.startswith("ablate_dense")
        }
        lines = bench_diff.ablation_table(record(metrics=metrics))
        self.assertEqual(len(lines), 3)
        # All fields present except the speedup, which has no reference.
        self.assertIn("| - |", lines[2])
        self.assertNotIn("x", lines[2])


class TestMainAblationMode(unittest.TestCase):
    def run_main_single(self, rec, *flags):
        f = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False)
        json.dump(rec, f)
        f.close()
        argv_saved = sys.argv
        sys.argv = ["bench_diff.py", f.name, *flags]
        try:
            return bench_diff.main()
        finally:
            sys.argv = argv_saved
            os.unlink(f.name)

    def test_ablation_table_exits_zero(self):
        rec = record(metrics=dict(ABLATION_METRICS))
        self.assertEqual(
            self.run_main_single(rec, "--ablation-table"), 0
        )

    def test_record_without_ablation_metrics_exits_nonzero(self):
        self.assertEqual(
            self.run_main_single(record(), "--ablation-table"), 1
        )

    def test_missing_candidate_without_flag_is_usage_error(self):
        with self.assertRaises(SystemExit) as ctx:
            self.run_main_single(record())
        self.assertEqual(ctx.exception.code, 2)


if __name__ == "__main__":
    unittest.main()
