/**
 * @file
 * Unit tests for the simulation kernel: cycle/time conversion,
 * bounded queues, and the stats registry.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/queue.h"
#include "sim/stats.h"
#include "sim/types.h"

using namespace ideal::sim;

TEST(SimTypes, CyclesToSeconds)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(1'000'000'000ULL, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToSeconds(500, 0.5), 1e-6);
}

TEST(SimTypes, NsToCyclesRoundsUp)
{
    EXPECT_EQ(nsToCycles(13.5, 1.0), 14u);
    EXPECT_EQ(nsToCycles(13.0, 1.0), 13u);
    EXPECT_EQ(nsToCycles(1.0, 0.5), 1u);
    EXPECT_EQ(nsToCycles(0.0, 1.0), 0u);
}

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(3);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, RejectsWhenFullAndCountsStalls)
{
    BoundedQueue<int> q(2);
    q.push(1);
    q.push(2);
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.pushStalls(), 1u);
    EXPECT_EQ(q.pushes(), 2u);
    q.pop();
    EXPECT_TRUE(q.push(3));
}

TEST(BoundedQueue, FrontPeeksWithoutRemoving)
{
    BoundedQueue<int> q(2);
    q.push(7);
    EXPECT_EQ(q.front(), 7);
    EXPECT_EQ(q.size(), 1u);
}

TEST(StatsRegistry, AddAndGet)
{
    StatsRegistry s;
    EXPECT_EQ(s.get("x"), 0.0);
    EXPECT_FALSE(s.has("x"));
    s.add("x", 2.0);
    s.add("x", 3.0);
    EXPECT_EQ(s.get("x"), 5.0);
    EXPECT_TRUE(s.has("x"));
    s.set("x", 1.0);
    EXPECT_EQ(s.get("x"), 1.0);
}

TEST(StatsRegistry, MergeSums)
{
    StatsRegistry a, b;
    a.add("x", 1.0);
    b.add("x", 2.0);
    b.add("y", 4.0);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3.0);
    EXPECT_EQ(a.get("y"), 4.0);
}

// Regression: merge() used to sum every entry regardless of how it
// was written, so a value stored with set() doubled each time two
// registries were combined (e.g. dram.avgLatency when aggregating
// SimResults). Merging is now kind-correct via obs::MetricsSnapshot.
TEST(StatsRegistry, MergeDoesNotDoubleSetValues)
{
    StatsRegistry total, run;
    run.set("dram.avgLatency", 42.0);
    run.add("dram.reads", 10.0);
    total.merge(run);
    total.merge(run);
    EXPECT_EQ(total.get("dram.avgLatency"), 42.0); // gauge: overwritten
    EXPECT_EQ(total.get("dram.reads"), 20.0);      // counter: summed
}

TEST(StatsRegistry, SetMaxKeepsPeakAcrossMerge)
{
    StatsRegistry a, b;
    a.setMax("dram.queue.peak", 5.0);
    a.setMax("dram.queue.peak", 2.0);
    EXPECT_EQ(a.get("dram.queue.peak"), 5.0);
    b.setMax("dram.queue.peak", 3.0);
    a.merge(b);
    EXPECT_EQ(a.get("dram.queue.peak"), 5.0); // peak, not 8.0
    b.setMax("dram.queue.peak", 9.0);
    a.merge(b);
    EXPECT_EQ(a.get("dram.queue.peak"), 9.0);
}

TEST(StatsRegistry, DumpIsSorted)
{
    StatsRegistry s;
    s.add("b", 2);
    s.add("a", 1);
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "a 1\nb 2\n");
}
