/**
 * @file
 * Tests for the energy/area/power model: the calibrated totals must
 * reproduce the paper's published numbers (Tables 7 and 9, Secs. 6.4
 * and 6.7) and the qualitative trends must hold.
 */

#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "energy/model.h"
#include "image/noise.h"
#include "image/synthetic.h"

using namespace ideal;
using core::AcceleratorConfig;
using energy::EnergyModel;
using energy::TechNode;

namespace {

core::SimResult
simulateSmall(const AcceleratorConfig &cfg)
{
    auto clean = image::makeScene(image::SceneKind::Nature, 128, 128, 3, 8);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 9);
    return core::simulateImage(cfg, noisy);
}

} // namespace

TEST(EnergyArea, IdealBMatchesPaper)
{
    // Sec. 6.4: IDEALB occupies 5.5 mm^2 at 65 nm.
    EnergyModel m(TechNode::Tsmc65);
    auto a = m.area(AcceleratorConfig::idealB());
    EXPECT_NEAR(a.total(), 5.5, 0.3);
}

TEST(EnergyArea, IdealMrMatchesPaper)
{
    // Sec. 6.4: IDEALMR needs 23.08 mm^2; the DEs total 79% of area.
    EnergyModel m(TechNode::Tsmc65);
    auto a = m.area(AcceleratorConfig::idealMr());
    EXPECT_NEAR(a.total(), 23.08, 1.0);
    EXPECT_NEAR(a.deEngines / a.total(), 0.79, 0.04);
}

TEST(EnergyArea, TwentyEightNmScaling)
{
    // Sec. 6.7: 1.44 mm^2 (IDEALB) and 7.9 mm^2 (IDEALMR) at 28 nm.
    EnergyModel m(TechNode::Stm28);
    EXPECT_NEAR(m.area(AcceleratorConfig::idealB()).total(), 1.44, 0.6);
    EXPECT_NEAR(m.area(AcceleratorConfig::idealMr()).total(), 7.9, 0.5);
}

TEST(EnergyArea, PrecisionScalingTable9)
{
    // Table 9: area falls from 23.08 to 15.4 mm^2 from 12 to 8
    // fractional bits.
    EnergyModel m(TechNode::Tsmc65);
    AcceleratorConfig cfg = AcceleratorConfig::idealMr();
    auto area_at = [&](int frac) {
        AcceleratorConfig c = cfg;
        c.algo.fixedPoint = fixed::PipelineFormats::forFraction(frac);
        return m.area(c).total();
    };
    double a12 = area_at(12);
    double a10 = area_at(10);
    double a8 = area_at(8);
    EXPECT_NEAR(a12, 23.08, 1.0);
    EXPECT_NEAR(a10, 19.97, 1.5);
    EXPECT_NEAR(a8, 15.4, 1.5);
    EXPECT_GT(a12, a10);
    EXPECT_GT(a10, a8);
}

TEST(EnergyArea, AreaScalesWithLanes)
{
    EnergyModel m(TechNode::Tsmc65);
    AcceleratorConfig c16 = AcceleratorConfig::idealMr();
    AcceleratorConfig c32 = c16;
    c32.lanes = 32;
    EXPECT_NEAR(m.area(c32).total() / m.area(c16).total(), 2.0, 0.05);
}

TEST(EnergyPower, IdealMrOnChipNearPaper)
{
    // Table 7: IDEALMR dissipates ~12 W on-chip, DRAM ~6 W, and the
    // DE-dominated core is the largest on-chip consumer.
    EnergyModel m(TechNode::Tsmc65);
    AcceleratorConfig cfg = AcceleratorConfig::idealMr(0.5);
    auto r = simulateSmall(cfg);
    auto p = m.power(cfg, r);
    EXPECT_NEAR(p.onChip(), 12.05, 5.0);
    EXPECT_NEAR(p.dram, 6.16, 3.0);
    EXPECT_GT(p.core, p.buffers);
}

TEST(EnergyPower, IdealBLowestPower)
{
    // Table 7: IDEALB is the lowest-power solution (~1.7 W on-chip).
    EnergyModel m(TechNode::Tsmc65);
    AcceleratorConfig b = AcceleratorConfig::idealB();
    AcceleratorConfig mr = AcceleratorConfig::idealMr(0.5);
    auto rb = simulateSmall(b);
    auto rmr = simulateSmall(mr);
    auto pb = m.power(b, rb);
    auto pmr = m.power(mr, rmr);
    EXPECT_LT(pb.onChip(), 4.0);
    EXPECT_LT(pb.onChip(), pmr.onChip());
}

TEST(EnergyPower, IdealMrMoreEnergyEfficientThanIdealB)
{
    // IDEALMR burns more power but finishes ~30x sooner: lower energy.
    EnergyModel m(TechNode::Tsmc65);
    AcceleratorConfig b = AcceleratorConfig::idealB();
    AcceleratorConfig mr = AcceleratorConfig::idealMr(0.5);
    auto rb = simulateSmall(b);
    auto rmr = simulateSmall(mr);
    EXPECT_LT(m.energyJoules(mr, rmr), m.energyJoules(b, rb));
}

TEST(EnergyPower, TwentyEightNmLowerPower)
{
    EnergyModel m65(TechNode::Tsmc65);
    EnergyModel m28(TechNode::Stm28);
    AcceleratorConfig cfg = AcceleratorConfig::idealMr(0.5);
    auto r = simulateSmall(cfg);
    EXPECT_LT(m28.power(cfg, r).onChip(), m65.power(cfg, r).onChip());
}

TEST(EnergyPower, SharpeningCostMatchesPaper)
{
    // Sec. 7: +0.09 mm^2 and +0.12 W at 65 nm.
    EnergyModel m(TechNode::Tsmc65);
    EXPECT_DOUBLE_EQ(m.sharpenAreaMm2(), 0.09);
    EXPECT_DOUBLE_EQ(m.sharpenPowerW(), 0.12);
    EnergyModel m28(TechNode::Stm28);
    EXPECT_LT(m28.sharpenAreaMm2(), 0.09);
}

TEST(EnergyPower, PrecisionReducesPower)
{
    // Table 9 trend: 8-bit fraction saves ~25% power vs 12-bit.
    EnergyModel m(TechNode::Tsmc65);
    AcceleratorConfig c12 = AcceleratorConfig::idealMr(0.5);
    c12.algo.fixedPoint = fixed::PipelineFormats::forFraction(12);
    AcceleratorConfig c8 = c12;
    c8.algo.fixedPoint = fixed::PipelineFormats::forFraction(8);
    auto r = simulateSmall(c12);
    double p12 = m.power(c12, r).onChip();
    double p8 = m.power(c8, r).onChip();
    EXPECT_LT(p8, p12);
    EXPECT_NEAR(p8 / p12, 9.07 / 12.05, 0.1);
}
