/**
 * @file
 * Tests for the whole-image DCT substrate and the regularized-inverse
 * + BM3D deblurring pipeline.
 */

#include <gtest/gtest.h>

#include "bm3d/deblur.h"
#include "image/metrics.h"
#include "image/noise.h"
#include "image/synthetic.h"
#include "transforms/dct1d.h"

using namespace ideal;

TEST(Dct1D, RoundTripArbitraryLength)
{
    for (int n : {2, 3, 17, 48, 100}) {
        transforms::Dct1D dct(n);
        image::SplitMix64 rng(700 + n);
        std::vector<float> in(n), freq(n), back(n);
        for (float &v : in)
            v = rng.uniform(-50.0f, 50.0f);
        dct.forward(in.data(), freq.data());
        dct.inverse(freq.data(), back.data());
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(back[i], in[i], 1e-3f) << "n=" << n;
    }
}

TEST(Dct1D, RejectsTinyLength)
{
    EXPECT_THROW(transforms::Dct1D(1), std::invalid_argument);
}

TEST(Dct1D, DeltaKernelHasUnitEigenvalues)
{
    transforms::Dct1D dct(32);
    auto lambda = dct.kernelEigenvalues({1.0f});
    for (float l : lambda)
        EXPECT_NEAR(l, 1.0f, 1e-6f);
}

TEST(Dct1D, SmoothingKernelAttenuatesHighFrequencies)
{
    transforms::Dct1D dct(32);
    auto half = bm3d::gaussianHalfKernel(1.5f);
    auto lambda = dct.kernelEigenvalues(half);
    EXPECT_NEAR(lambda[0], 1.0f, 1e-3f); // DC preserved
    EXPECT_LT(lambda[31], lambda[0]);    // high freq attenuated
    EXPECT_GT(lambda[31], -0.2f);
}

TEST(Dct2DPlane, RoundTrip)
{
    transforms::Dct2DPlane dct(24, 16);
    image::ImageF im = image::makeScene(image::SceneKind::Nature, 24, 16,
                                        1, 81);
    std::vector<float> spec(im.planeSize()), back(im.planeSize());
    dct.forward(im.plane(0), spec.data());
    dct.inverse(spec.data(), back.data());
    for (size_t i = 0; i < im.planeSize(); ++i)
        EXPECT_NEAR(back[i], im.plane(0)[i], 1e-2f);
}

TEST(Deblur, GaussianKernelNormalized)
{
    auto half = bm3d::gaussianHalfKernel(2.0f);
    double total = half[0];
    for (size_t j = 1; j < half.size(); ++j)
        total += 2.0 * half[j];
    EXPECT_NEAR(total, 1.0, 1e-6);
    // Monotone decay from the center.
    for (size_t j = 1; j < half.size(); ++j)
        EXPECT_LT(half[j], half[j - 1]);
}

TEST(Deblur, BlurReducesDetail)
{
    image::ImageF im = image::makeScene(image::SceneKind::Street, 48, 48,
                                        1, 82);
    image::ImageF blurred = bm3d::blurImage(im, 1.5f);
    EXPECT_LT(image::psnrDb(im, blurred), 40.0);
    // Mean preserved by the normalized kernel.
    double m0 = 0, m1 = 0;
    for (size_t i = 0; i < im.planeSize(); ++i) {
        m0 += im.raw()[i];
        m1 += blurred.raw()[i];
    }
    EXPECT_NEAR(m1 / m0, 1.0, 0.01);
}

TEST(Deblur, ConfigValidation)
{
    bm3d::DeblurConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    cfg.psfSigma = 0.0f;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = bm3d::DeblurConfig{};
    cfg.regLambda = -1.0f;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Deblur, RecoversSharpness)
{
    auto clean = image::makeScene(image::SceneKind::Street, 64, 64, 1, 83);
    auto degraded =
        image::addGaussianNoise(bm3d::blurImage(clean, 1.5f), 5.0f, 84);

    bm3d::DeblurConfig cfg;
    cfg.denoise.sigma = 5.0f;
    cfg.denoise.searchWindow1 = 13;
    cfg.denoise.searchWindow2 = 11;
    cfg.psfSigma = 1.5f;
    cfg.regLambda = 0.003f;
    auto result = bm3d::deblur(degraded, cfg);

    EXPECT_GT(image::psnrDb(clean, result.output),
              image::psnrDb(clean, degraded) + 1.0);
    // The regularized inverse amplifies noise - that is the point of
    // the subsequent collaborative filtering.
    EXPECT_GT(result.amplifiedSigma, cfg.denoise.sigma);
    EXPECT_GT(image::psnrDb(clean, result.output),
              image::psnrDb(clean, result.inverted));
}

TEST(Deblur, WorksOnColorImages)
{
    auto clean = image::makeScene(image::SceneKind::Texture, 48, 48, 3, 85);
    auto degraded =
        image::addGaussianNoise(bm3d::blurImage(clean, 1.2f), 5.0f, 86);
    bm3d::DeblurConfig cfg;
    cfg.denoise.sigma = 5.0f;
    cfg.denoise.searchWindow1 = 13;
    cfg.denoise.searchWindow2 = 11;
    cfg.psfSigma = 1.2f;
    cfg.regLambda = 0.005f;
    auto result = bm3d::deblur(degraded, cfg);
    EXPECT_EQ(result.output.channels(), 3);
    EXPECT_GT(image::psnrDb(clean, result.output),
              image::psnrDb(clean, degraded));
}
