/**
 * @file
 * Tests for the streaming frame-pipeline runtime (src/runtime):
 * stream-vs-batch bitwise equality across SIMD levels and thread
 * counts, concurrent submit/collect under the sanitizers, temporal
 * seeding quality and work reduction, arena steady-state accounting,
 * lifecycle errors, and the video DCT1 prepass banding determinism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "bm3d/bm3d.h"
#include "bm3d/video.h"
#include "image/metrics.h"
#include "image/noise.h"
#include "image/synthetic.h"
#include "runtime/stream.h"
#include "simd/simd.h"

using namespace ideal;
using runtime::StreamConfig;
using runtime::StreamDenoiser;
using runtime::StreamStats;

namespace {

/** A static scene observed over several frames with fresh noise. */
std::vector<image::ImageF>
staticClip(int frames, int w, int h, float sigma, uint64_t seed,
           image::ImageF *clean_out = nullptr)
{
    image::ImageF clean =
        image::makeScene(image::SceneKind::Nature, w, h, 1, seed);
    if (clean_out)
        *clean_out = clean;
    std::vector<image::ImageF> clip;
    for (int f = 0; f < frames; ++f)
        clip.push_back(image::addGaussianNoise(clean, sigma, seed + 7 + f));
    return clip;
}

StreamConfig
smallStreamConfig(int threads = 1, bool wiener = false)
{
    StreamConfig cfg;
    cfg.frame.sigma = 25.0f;
    cfg.frame.searchWindow1 = 13;
    cfg.frame.searchWindow2 = 13;
    cfg.frame.refStride = 2;
    cfg.frame.enableWiener = wiener;
    cfg.frame.numThreads = threads;
    return cfg;
}

/** Per-frame batch outputs via the plain Bm3d engine. */
std::vector<image::ImageF>
batchOutputs(const bm3d::Bm3dConfig &cfg,
             const std::vector<image::ImageF> &clip)
{
    bm3d::Bm3d engine(cfg);
    std::vector<image::ImageF> outs;
    for (const image::ImageF &frame : clip)
        outs.push_back(engine.denoise(frame).output);
    return outs;
}

/** Streamed outputs for the same clip (copies; clip stays intact). */
std::vector<image::ImageF>
streamOutputs(const StreamConfig &cfg,
              const std::vector<image::ImageF> &clip,
              StreamStats *stats_out = nullptr)
{
    StreamDenoiser stream(cfg);
    for (const image::ImageF &frame : clip)
        stream.submit(image::ImageF(frame));
    stream.finish();
    std::vector<image::ImageF> outs;
    for (size_t f = 0; f < clip.size(); ++f)
        outs.push_back(stream.collect());
    if (stats_out)
        *stats_out = stream.stats();
    return outs;
}

class RuntimeTest : public ::testing::Test
{
  protected:
    void TearDown() override { simd::setLevel(simd::bestSupported()); }
};

} // namespace

// With seeding off, a streamed clip must be bitwise identical to the
// per-frame batch path — for every SIMD dispatch level and thread
// count (the per-frame pipeline is unchanged; the arena only moves
// where buffers live).
TEST_F(RuntimeTest, StreamMatchesBatchBitwiseAcrossLevelsAndThreads)
{
    const auto clip = staticClip(3, 64, 48, 25.0f, 41);
    const simd::Level levels[] = {simd::Level::Scalar, simd::Level::Sse,
                                  simd::Level::Avx2};
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        // Int16 matching is bitwise deterministic across *levels* too
        // (integer accumulation has no reassociation sensitivity), so
        // its first combination's output doubles as the cross-matrix
        // reference. Float only promises equality within a level.
        std::vector<image::ImageF> int16_ref;
        for (simd::Level level : levels) {
            simd::setLevel(level); // clamped to bestSupported()
            for (int threads : {1, 8}) {
                StreamConfig cfg = smallStreamConfig(threads);
                cfg.frame.precision = precision;
                const auto batch = batchOutputs(cfg.frame, clip);
                const auto streamed = streamOutputs(cfg, clip);
                ASSERT_EQ(batch.size(), streamed.size());
                for (size_t f = 0; f < batch.size(); ++f)
                    EXPECT_TRUE(batch[f].raw() == streamed[f].raw())
                        << "precision=" << static_cast<int>(precision)
                        << " level="
                        << static_cast<int>(simd::activeLevel())
                        << " threads=" << threads << " frame=" << f;
                if (precision != bm3d::Precision::Int16)
                    continue;
                if (int16_ref.empty()) {
                    int16_ref = streamed;
                    continue;
                }
                for (size_t f = 0; f < streamed.size(); ++f)
                    EXPECT_TRUE(int16_ref[f].raw() == streamed[f].raw())
                        << "int16 output differs at level="
                        << static_cast<int>(simd::activeLevel())
                        << " threads=" << threads << " frame=" << f;
            }
        }
    }
}

// The Wiener stage runs through the same arena-backed plumbing.
TEST_F(RuntimeTest, StreamMatchesBatchWithWienerStage)
{
    const auto clip = staticClip(3, 48, 48, 25.0f, 43);
    StreamConfig cfg = smallStreamConfig(4, /*wiener=*/true);
    const auto batch = batchOutputs(cfg.frame, clip);
    const auto streamed = streamOutputs(cfg, clip);
    for (size_t f = 0; f < batch.size(); ++f)
        EXPECT_TRUE(batch[f].raw() == streamed[f].raw()) << "frame " << f;
}

// The row-band streaming schedule (DESIGN §15) composes with the
// frame pipeline: a banded streamed clip must be bitwise identical
// both to the banded batch path and to the stage-major stream.
TEST_F(RuntimeTest, BandScheduleComposesWithStreamBitwise)
{
    const auto clip = staticClip(3, 48, 48, 25.0f, 47);
    StreamConfig cfg = smallStreamConfig(4, /*wiener=*/true);
    cfg.frame.tileGrain = 8;
    const auto plain_stream = streamOutputs(cfg, clip);
    cfg.frame.band.enabled = true;
    cfg.frame.band.rows = 8;
    cfg.frame.prefetch = true;
    const auto banded_batch = batchOutputs(cfg.frame, clip);
    const auto banded_stream = streamOutputs(cfg, clip);
    ASSERT_EQ(plain_stream.size(), banded_stream.size());
    for (size_t f = 0; f < banded_stream.size(); ++f) {
        EXPECT_TRUE(plain_stream[f].raw() == banded_stream[f].raw())
            << "band vs stage-major stream, frame " << f;
        EXPECT_TRUE(banded_batch[f].raw() == banded_stream[f].raw())
            << "banded stream vs banded batch, frame " << f;
    }
}

// Outputs arrive in submit order even when a producer thread races
// the collector. Runs under TSan via the sanitize label.
TEST_F(RuntimeTest, ConcurrentSubmitCollectIsOrderedAndRaceFree)
{
    const int frames = 12;
    const auto clip = staticClip(frames, 32, 32, 25.0f, 47);
    StreamConfig cfg = smallStreamConfig(2);
    cfg.queueDepth = 2; // force backpressure on the producer

    const auto batch = batchOutputs(cfg.frame, clip);
    StreamDenoiser stream(cfg);
    std::thread producer([&] {
        for (const image::ImageF &frame : clip)
            stream.submit(image::ImageF(frame));
        stream.finish();
    });
    for (int f = 0; f < frames; ++f) {
        image::ImageF out = stream.collect();
        EXPECT_TRUE(out.raw() == batch[static_cast<size_t>(f)].raw())
            << "frame " << f;
        (void)stream.stats(); // exercise the stats lock concurrently
        stream.recycle(std::move(out));
    }
    producer.join();
    EXPECT_EQ(stream.stats().frames, static_cast<uint64_t>(frames));
}

// Temporal seeding trades exact equality for less matching work; on
// static content the quality cost must stay within 0.05 dB and the
// seeded search must actually engage and cut BM1 distance
// computations.
TEST_F(RuntimeTest, TemporalSeedingKeepsQualityAndCutsWork)
{
    image::ImageF clean;
    const auto clip = staticClip(4, 64, 64, 25.0f, 53, &clean);
    StreamConfig cfg = smallStreamConfig(1);

    StreamStats plain_stats;
    const auto plain = streamOutputs(cfg, clip, &plain_stats);

    cfg.temporalSeed = true;
    StreamStats seeded_stats;
    const auto seeded = streamOutputs(cfg, clip, &seeded_stats);

    double plain_snr = 0.0, seeded_snr = 0.0;
    for (size_t f = 0; f < clip.size(); ++f) {
        plain_snr += image::snrDb(clean, plain[f]);
        seeded_snr += image::snrDb(clean, seeded[f]);
    }
    const double delta =
        std::fabs(seeded_snr - plain_snr) / static_cast<double>(clip.size());
    EXPECT_LE(delta, 0.05);

    EXPECT_GT(seeded_stats.seedRefs, 0u);
    EXPECT_GT(seeded_stats.seedHits, 0u);
    EXPECT_LT(seeded_stats.profile.mr().bm1Candidates,
              plain_stats.profile.mr().bm1Candidates);
}

// The seeding decision (descriptor SSD in the thresholded-DCT domain)
// and the seeded search itself use exact arithmetic, so the seeded
// output is also identical across SIMD levels.
TEST_F(RuntimeTest, SeededStreamIsBitwiseIdenticalAcrossSimdLevels)
{
    const auto clip = staticClip(3, 64, 48, 25.0f, 59);
    StreamConfig cfg = smallStreamConfig(1);
    cfg.temporalSeed = true;

    simd::setLevel(simd::Level::Scalar);
    const auto scalar = streamOutputs(cfg, clip);
    simd::setLevel(simd::bestSupported());
    const auto best = streamOutputs(cfg, clip);
    for (size_t f = 0; f < clip.size(); ++f)
        EXPECT_TRUE(scalar[f].raw() == best[f].raw()) << "frame " << f;
}

// The arena recycles every per-frame buffer: from the third frame on
// no fresh heap bytes may be drawn through it.
TEST_F(RuntimeTest, ArenaIsMallocFreeInSteadyState)
{
    const int frames = 6;
    const auto clip = staticClip(frames, 48, 48, 25.0f, 61);
    StreamConfig cfg = smallStreamConfig(2);

    StreamDenoiser stream(cfg);
    for (const image::ImageF &frame : clip)
        stream.submit(image::ImageF(frame));
    stream.finish();
    for (int f = 0; f < frames; ++f)
        stream.recycle(stream.collect());

    const StreamStats stats = stream.stats();
    EXPECT_EQ(stats.frames, static_cast<uint64_t>(frames));
    EXPECT_EQ(stats.arenaBytesNewSteady, 0u);
    EXPECT_GT(stats.arenaHits, 0u);
    EXPECT_GT(stats.arenaBytesNew, 0u); // warm-up did allocate
    EXPECT_EQ(stats.latenciesMs.size(), static_cast<size_t>(frames));
    EXPECT_GT(stats.wallSeconds, 0.0);
}

TEST_F(RuntimeTest, LifecycleErrors)
{
    const auto clip = staticClip(1, 32, 32, 25.0f, 67);
    StreamConfig cfg = smallStreamConfig(1);

    StreamDenoiser stream(cfg);
    stream.submit(image::ImageF(clip[0]));
    // Shape must match the first frame.
    EXPECT_THROW(stream.submit(image::ImageF(16, 32, 1)),
                 std::invalid_argument);
    // Frames smaller than a patch can never be processed.
    EXPECT_THROW(stream.submit(image::ImageF(2, 2, 1)),
                 std::invalid_argument);
    stream.finish();
    EXPECT_THROW(stream.submit(image::ImageF(clip[0])), std::logic_error);
    (void)stream.collect();
    EXPECT_THROW(stream.collect(), std::logic_error);
}

TEST_F(RuntimeTest, ConfigValidation)
{
    StreamConfig cfg = smallStreamConfig(1);
    cfg.queueDepth = 0;
    EXPECT_THROW(StreamDenoiser s(cfg), std::invalid_argument);

    cfg = smallStreamConfig(1);
    cfg.temporalSeed = true;
    cfg.seedK = 0.0;
    EXPECT_THROW(StreamDenoiser s(cfg), std::invalid_argument);

    cfg = smallStreamConfig(1);
    cfg.temporalSeed = true;
    cfg.seedWindow = 8; // must be odd
    EXPECT_THROW(StreamDenoiser s(cfg), std::invalid_argument);

    cfg = smallStreamConfig(1);
    cfg.temporalSeed = true;
    cfg.seedWindow = cfg.frame.searchWindow1 + 2;
    EXPECT_THROW(StreamDenoiser s(cfg), std::invalid_argument);
}

// Satellite of the same PR: the video denoiser's DCT1 prepass now
// decomposes into frame x row-band tasks, so its output must stay
// independent of the worker count.
TEST_F(RuntimeTest, VideoDct1BandingIsThreadCountInvariant)
{
    const auto seq = staticClip(3, 48, 48, 25.0f, 71);
    bm3d::VideoConfig vcfg;
    vcfg.frame.sigma = 25.0f;
    vcfg.frame.searchWindow1 = 13;
    vcfg.temporalRadius = 1;
    vcfg.predictiveWindow = 7;

    vcfg.frame.numThreads = 1;
    const auto serial = bm3d::VideoBm3d(vcfg).denoise(seq);
    vcfg.frame.numThreads = 4;
    const auto parallel = bm3d::VideoBm3d(vcfg).denoise(seq);
    ASSERT_EQ(serial.frames.size(), parallel.frames.size());
    for (size_t f = 0; f < serial.frames.size(); ++f)
        EXPECT_TRUE(serial.frames[f].raw() == parallel.frames[f].raw())
            << "frame " << f;
}

// The adaptive matching variants must compose with temporal seeding:
// the seeded search takes the same running cutoff, and the coarse
// grid's skipped references poison their seed slots so the next frame
// cannot false-hit on stale descriptors. Quality must hold and both
// reductions must be active at once.
TEST_F(RuntimeTest, VariantComposesWithTemporalSeeding)
{
    image::ImageF clean;
    const auto clip = staticClip(4, 64, 64, 25.0f, 83, &clean);
    StreamConfig cfg = smallStreamConfig(1);

    StreamStats plain_stats;
    const auto plain = streamOutputs(cfg, clip, &plain_stats);

    cfg.temporalSeed = true;
    cfg.frame.variant.adaptiveBound = true;
    cfg.frame.variant.boundMargin = 2.0f;
    cfg.frame.variant.coarseToFine = true;
    cfg.frame.variant.coarseStride = 2;
    cfg.frame.variant.densifyThreshold = 0.35f;
    StreamStats variant_stats;
    const auto variant = streamOutputs(cfg, clip, &variant_stats);

    double plain_snr = 0.0, variant_snr = 0.0;
    for (size_t f = 0; f < clip.size(); ++f) {
        plain_snr += image::snrDb(clean, plain[f]);
        variant_snr += image::snrDb(clean, variant[f]);
    }
    // On a 64x64 frame the skipped references are a much larger
    // fraction of the image than at bench scale, so the envelope here
    // is wider than the fig02 |dSNR| <= 0.1 dB gate; the point is that
    // composition degrades gracefully rather than corrupting state.
    const double delta = (plain_snr - variant_snr) /
                         static_cast<double>(clip.size());
    EXPECT_LE(delta, 0.75) << "variant SNR drifted too far from dense";

    EXPECT_GT(variant_stats.seedRefs, 0u);
    EXPECT_GT(variant_stats.seedHits, 0u);
    EXPECT_GT(variant_stats.profile.adaptive().refsSkipped, 0u);
    EXPECT_LT(variant_stats.profile.mr().bm1Candidates,
              plain_stats.profile.mr().bm1Candidates);
}

// PR satellite: the fused group-major denoise path (DESIGN §12)
// composes with the streaming runtime — temporal seeding decides the
// same matches, the group tiles recycle through the frame arena (no
// steady-state heap growth), and the streamed fused output stays
// bitwise equal to the discrete per-group path frame for frame.
TEST_F(RuntimeTest, FusedDenoiseComposesWithSeededStream)
{
    const int frames = 6;
    const auto clip = staticClip(frames, 48, 48, 25.0f, 89);
    StreamConfig cfg = smallStreamConfig(2, /*wiener=*/true);
    cfg.temporalSeed = true;

    StreamDenoiser stream(cfg);
    for (const image::ImageF &frame : clip)
        stream.submit(image::ImageF(frame));
    stream.finish();
    std::vector<image::ImageF> fused;
    for (int f = 0; f < frames; ++f) {
        fused.push_back(stream.collect());
        stream.recycle(image::ImageF(fused.back()));
    }
    const StreamStats fused_stats = stream.stats();
    EXPECT_EQ(fused_stats.arenaBytesNewSteady, 0u)
        << "fused group tiles must recycle through the arena";
    EXPECT_GT(fused_stats.seedHits, 0u);

    cfg.frame.fusedDenoise = false;
    StreamStats discrete_stats;
    const auto discrete = streamOutputs(cfg, clip, &discrete_stats);
    ASSERT_EQ(fused.size(), discrete.size());
    for (size_t f = 0; f < fused.size(); ++f)
        EXPECT_TRUE(fused[f].raw() == discrete[f].raw()) << "frame " << f;
}
