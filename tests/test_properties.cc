/**
 * @file
 * Property-style parameterized sweeps across the library's
 * configuration space: invariants that must hold for *every*
 * combination, not just the paper's defaults.
 */

#include <cstring>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "bm3d/bm3d.h"
#include "core/accelerator.h"
#include "core/oracle.h"
#include "dram/dram.h"
#include "fixed/format.h"
#include "image/metrics.h"
#include "image/noise.h"
#include "image/synthetic.h"
#include "simd/simd.h"
#include "transforms/dct.h"
#include "transforms/haar.h"

using namespace ideal;

// ---------------------------------------------------------------------
// BM3D parameter grid: (patch size, ref stride, search window) - the
// denoiser must improve PSNR and cover every pixel for all of them.
// ---------------------------------------------------------------------

class Bm3dParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(Bm3dParamSweep, ImprovesPsnrAndCoversImage)
{
    const auto [patch, stride, window] = GetParam();
    bm3d::Bm3dConfig cfg;
    cfg.patchSize = patch;
    cfg.refStride = stride;
    cfg.searchWindow1 = window;
    cfg.searchWindow2 = window;
    cfg.sigma = 25.0f;
    cfg.validate();

    auto clean = image::makeScene(image::SceneKind::Nature, 40, 40, 1,
                                  300 + patch * 10 + stride);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 301);
    bm3d::Bm3d denoiser(cfg);
    auto result = denoiser.denoise(noisy);

    EXPECT_GT(image::psnrDb(clean, result.output),
              image::psnrDb(clean, noisy))
        << "patch=" << patch << " stride=" << stride << " Ns=" << window;
    // Output must stay in a sane dynamic range everywhere (every pixel
    // was covered by at least one reference patch or fell back).
    for (float v : result.output.raw()) {
        EXPECT_GE(v, -64.0f);
        EXPECT_LE(v, 320.0f);
    }
}

TEST_P(Bm3dParamSweep, FusedKnobNeverChangesOutput)
{
    // The fused group-major denoise path (DESIGN §12) replays the
    // discrete path's float expressions when eligible (4x4 patches)
    // and falls back to it otherwise — so for EVERY configuration,
    // flipping Config::fusedDenoise must be invisible bit for bit.
    const auto [patch, stride, window] = GetParam();
    bm3d::Bm3dConfig cfg;
    cfg.patchSize = patch;
    cfg.refStride = stride;
    cfg.searchWindow1 = window;
    cfg.searchWindow2 = window;
    cfg.sigma = 25.0f;
    cfg.validate();

    auto clean = image::makeScene(image::SceneKind::Street, 40, 40, 1,
                                  340 + patch * 10 + stride);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 341);

    auto fused = bm3d::Bm3d(cfg).denoise(noisy);
    cfg.fusedDenoise = false;
    auto discrete = bm3d::Bm3d(cfg).denoise(noisy);

    EXPECT_TRUE(fused.basic.raw() == discrete.basic.raw())
        << "patch=" << patch << " stride=" << stride << " Ns=" << window;
    EXPECT_TRUE(fused.output.raw() == discrete.output.raw())
        << "patch=" << patch << " stride=" << stride << " Ns=" << window;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Bm3dParamSweep,
    ::testing::Values(std::make_tuple(2, 1, 9), std::make_tuple(4, 1, 13),
                      std::make_tuple(4, 2, 13), std::make_tuple(4, 3, 21),
                      std::make_tuple(8, 1, 13), std::make_tuple(8, 4, 17)));

// ---------------------------------------------------------------------
// Precision matrix: {float32, int16} x {scalar, sse, avx2} x {1, 8}
// threads. Every combination must still denoise (PSNR improves); the
// int16 combinations must additionally produce ONE bit pattern across
// the whole matrix — integer matching has no reassociation
// sensitivity, so neither the dispatch level nor the thread count may
// leak into the output.
// ---------------------------------------------------------------------

class PrecisionMatrix : public ::testing::Test
{
  protected:
    void TearDown() override { simd::setLevel(simd::bestSupported()); }
};

TEST_F(PrecisionMatrix, DenoisesAndInt16IsBitwiseInvariant)
{
    auto clean = image::makeScene(image::SceneKind::Street, 48, 40, 1, 320);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 321);
    const double noisy_psnr = image::psnrDb(clean, noisy);

    const simd::Level levels[] = {simd::Level::Scalar, simd::Level::Sse,
                                  simd::Level::Avx2};
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        std::vector<float> int16_ref;
        for (simd::Level level : levels) {
            simd::setLevel(level); // clamped to bestSupported()
            for (int threads : {1, 8}) {
                bm3d::Bm3dConfig cfg;
                cfg.sigma = 25.0f;
                cfg.searchWindow1 = 13;
                cfg.searchWindow2 = 11;
                cfg.precision = precision;
                cfg.numThreads = threads;
                auto result = bm3d::Bm3d(cfg).denoise(noisy);
                EXPECT_GT(image::psnrDb(clean, result.output), noisy_psnr)
                    << "precision=" << static_cast<int>(precision)
                    << " level=" << static_cast<int>(level)
                    << " threads=" << threads;
                if (precision != bm3d::Precision::Int16)
                    continue;
                if (int16_ref.empty()) {
                    int16_ref = result.output.raw();
                    continue;
                }
                EXPECT_TRUE(int16_ref == result.output.raw())
                    << "int16 output differs at level="
                    << static_cast<int>(level) << " threads=" << threads;
            }
        }
    }
}

// ---------------------------------------------------------------------
// MR factor sweep: candidate count must be monotonically non-increasing
// in K, and quality must stay within the paper's envelope.
// ---------------------------------------------------------------------

class MrFactorSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(MrFactorSweep, HitsGrowAndQualityHolds)
{
    const double k = GetParam();
    auto clean = image::makeScene(image::SceneKind::Nature, 40, 40, 1, 310);
    auto noisy = image::addGaussianNoise(clean, 15.0f, 311);

    bm3d::Bm3dConfig cfg;
    cfg.sigma = 15.0f;
    cfg.searchWindow1 = 13;
    cfg.searchWindow2 = 11;
    bm3d::Bm3d plain(cfg);
    auto r_plain = plain.denoise(noisy);

    cfg.mr.enabled = true;
    cfg.mr.k = k;
    bm3d::Bm3d mr(cfg);
    auto r_mr = mr.denoise(noisy);

    EXPECT_LE(r_mr.profile.mr().bm1Candidates,
              r_plain.profile.mr().bm1Candidates);
    EXPECT_GT(image::psnrDb(clean, r_mr.output),
              image::psnrDb(clean, r_plain.output) - 1.5)
        << "K=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, MrFactorSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

// ---------------------------------------------------------------------
// Degenerate tiling inputs: the tiled runner must handle reference
// grids that collapse to a single row, a single column, or a single
// tile, and stay bitwise thread-count-invariant on all of them.
// ---------------------------------------------------------------------

namespace {

/** Denoise with the given extents, grain, and thread count. */
image::ImageF
denoiseTiled(int width, int height, int grain, int threads)
{
    bm3d::Bm3dConfig cfg;
    cfg.sigma = 25.0f;
    cfg.searchWindow1 = 13;
    cfg.searchWindow2 = 11;
    cfg.tileGrain = grain;
    cfg.numThreads = threads;
    auto clean =
        image::makeScene(image::SceneKind::Texture, width, height, 1, 330);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 331);
    return bm3d::Bm3d(cfg).denoise(noisy).output;
}

/** The degenerate shape must work and be thread-count-invariant. */
void
expectShapeThreadInvariant(int width, int height, int grain)
{
    image::ImageF single = denoiseTiled(width, height, grain, 1);
    EXPECT_EQ(single.width(), width);
    EXPECT_EQ(single.height(), height);
    image::ImageF multi = denoiseTiled(width, height, grain, 5);
    ASSERT_TRUE(single.sameShape(multi));
    EXPECT_EQ(std::memcmp(single.raw().data(), multi.raw().data(),
                          single.raw().size() * sizeof(float)),
              0)
        << width << "x" << height << " grain=" << grain;
}

} // namespace

TEST(TilingEdgeCases, ImageSmallerThanPatchRejected)
{
    bm3d::Bm3dConfig cfg;
    cfg.sigma = 25.0f;
    bm3d::Bm3d denoiser(cfg);
    image::ImageF tiny(cfg.patchSize - 1, cfg.patchSize - 1, 1);
    EXPECT_THROW(denoiser.denoise(tiny), std::invalid_argument);
}

TEST(TilingEdgeCases, SingleRowReferenceGrid)
{
    // height == patchSize: the reference grid is 1 x N.
    expectShapeThreadInvariant(40, 8, 4);
}

TEST(TilingEdgeCases, SingleColumnReferenceGrid)
{
    // width == patchSize: the reference grid is N x 1.
    expectShapeThreadInvariant(8, 40, 4);
}

TEST(TilingEdgeCases, ExactPatchSizedImageIsSingleReference)
{
    // Exactly one reference position: one tile, any thread count.
    expectShapeThreadInvariant(8, 8, 4);
}

TEST(TilingEdgeCases, GrainLargerThanImage)
{
    // Grain far beyond the grid extent collapses to a single tile.
    expectShapeThreadInvariant(32, 32, 10000);
}

TEST(TilingEdgeCases, UnitGrain)
{
    // One reference patch per tile: maximal tile count.
    expectShapeThreadInvariant(24, 24, 1);
}

// ---------------------------------------------------------------------
// Fixed-point format sweep: round-trips through every (int, frac)
// format must bound the error by half an ulp and saturate cleanly.
// ---------------------------------------------------------------------

class FormatSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FormatSweep, RoundTripAndSaturationInvariants)
{
    const auto [int_bits, frac_bits] = GetParam();
    fixed::Format q(int_bits, frac_bits);
    image::SplitMix64 rng(17);
    const double limit = std::ldexp(1.0, int_bits);
    for (int i = 0; i < 200; ++i) {
        double v = (rng.uniform() * 2.0 - 1.0) * limit * 1.5;
        double rt = q.roundTrip(v);
        if (std::abs(v) < limit - 1.0 / q.scale()) {
            EXPECT_LE(std::abs(rt - v), 0.5 / q.scale() + 1e-12)
                << q.str() << " v=" << v;
        } else {
            // Out of range: must saturate within the format bounds.
            EXPECT_LE(rt, q.toDouble(q.maxRaw()) + 1e-12);
            EXPECT_GE(rt, q.toDouble(q.minRaw()) - 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FormatSweep,
    ::testing::Combine(::testing::Values(4, 8, 11, 13, 15),
                       ::testing::Values(4, 7, 10, 12)));

// ---------------------------------------------------------------------
// Transform sweep: for every supported size, orthonormality implies
// energy preservation and perfect reconstruction.
// ---------------------------------------------------------------------

class HaarSizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(HaarSizeSweep, ParsevalHolds)
{
    const int n = GetParam();
    transforms::Haar1D haar(n);
    image::SplitMix64 rng(600 + n);
    std::vector<float> in(n), out(n);
    for (float &v : in)
        v = rng.uniform(-100.0f, 100.0f);
    haar.forward(in.data(), out.data());
    double e_in = 0, e_out = 0;
    for (int i = 0; i < n; ++i) {
        e_in += static_cast<double>(in[i]) * in[i];
        e_out += static_cast<double>(out[i]) * out[i];
    }
    EXPECT_NEAR(e_out / e_in, 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HaarSizeSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

// ---------------------------------------------------------------------
// DRAM configuration sweep: the timing model must stay causal (finish
// after enqueue), conserve requests, and respect the bandwidth peak
// under every topology.
// ---------------------------------------------------------------------

class DramConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{
};

TEST_P(DramConfigSweep, ConservationAndCausality)
{
    const auto [channels, banks, frfcfs] = GetParam();
    dram::DramConfig cfg;
    cfg.channels = channels;
    cfg.banksPerChannel = banks;
    cfg.frfcfs = frfcfs;
    cfg.validate();
    dram::DramSystem mem(cfg);

    image::SplitMix64 rng(42);
    const int total = 300;
    int issued = 0, completed = 0;
    sim::Cycle cycle = 0;
    while ((issued < total || !mem.idle()) && cycle < 1'000'000) {
        ++cycle;
        while (issued < total) {
            sim::Addr addr = (rng.next() % (1 << 22)) & ~63ULL;
            if (!mem.enqueue(dram::Request{
                    addr, (issued % 5) == 0,
                    static_cast<uint64_t>(issued)}, cycle))
                break;
            ++issued;
        }
        mem.tick(cycle);
        for (const auto &done : mem.collectCompletions(cycle)) {
            EXPECT_LE(done.finishedAt, cycle);
            ++completed;
        }
    }
    EXPECT_EQ(issued, total);
    EXPECT_EQ(completed, total);
    EXPECT_EQ(mem.bytesTransferred(), static_cast<uint64_t>(total) * 64);
    double gbps = static_cast<double>(mem.bytesTransferred()) /
                  static_cast<double>(cycle);
    EXPECT_LE(gbps, cfg.peakGBs() * 1.01);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, DramConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(4, 8),
                       ::testing::Bool()));

// ---------------------------------------------------------------------
// Accelerator sweep: for every (variant, lanes) combination the
// simulator must terminate, be deterministic, and never exceed the
// memory peak.
// ---------------------------------------------------------------------

class AcceleratorSweep
    : public ::testing::TestWithParam<std::tuple<bool, int>>
{
};

TEST_P(AcceleratorSweep, TerminatesDeterministically)
{
    const auto [is_mr, lanes] = GetParam();
    core::AcceleratorConfig cfg =
        is_mr ? core::AcceleratorConfig::idealMr(0.5)
              : core::AcceleratorConfig::idealB();
    cfg.lanes = lanes;

    auto clean = image::makeScene(image::SceneKind::Street, 96, 96, 3, 71);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 72);
    auto a = core::simulateImage(cfg, noisy);
    auto b = core::simulateImage(cfg, noisy);
    EXPECT_EQ(a.totalCycles(), b.totalCycles());
    EXPECT_GT(a.totalCycles(), 0u);
    EXPECT_LE(a.averageBandwidthGBs(), cfg.dram.peakGBs() * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Grid, AcceleratorSweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(4, 16, 32)));

// ---------------------------------------------------------------------
// Oracle sweep: the synthetic workload's realized hit rate must track
// the requested rate for any stride.
// ---------------------------------------------------------------------

class OracleRateSweep
    : public ::testing::TestWithParam<std::tuple<double, int>>
{
};

TEST_P(OracleRateSweep, RealizedRateTracksRequested)
{
    const auto [rate, stride] = GetParam();
    bm3d::Bm3dConfig cfg;
    cfg.mr.enabled = true;
    cfg.refStride = stride;
    auto w = core::makeSyntheticWorkload(256, 256, 1, cfg, rate, rate, 5);
    // The first reference of each row can never hit; tolerance covers
    // that structural loss plus sampling noise.
    EXPECT_NEAR(w.stage1.hitRate(), rate, 0.05 + 1.0 / (256.0 / stride));
}

INSTANTIATE_TEST_SUITE_P(
    Rates, OracleRateSweep,
    ::testing::Combine(::testing::Values(0.5, 0.9, 0.99),
                       ::testing::Values(1, 3)));

// ---------------------------------------------------------------------
// Variant matrix: the "all knobs off = dense" contract must hold not
// just at the default dispatch level but across {scalar, avx2} x
// {1, 8} threads x {float32, int16}. An infinite bound margin is the
// adaptive mechanism's identity element, so each cell must reproduce
// its dense twin bit-for-bit; likewise densifyThreshold = 0 for the
// coarse-to-fine grid.
// ---------------------------------------------------------------------

class VariantMatrix : public ::testing::Test
{
  protected:
    void TearDown() override { simd::setLevel(simd::bestSupported()); }
};

TEST_F(VariantMatrix, InfiniteMarginMatchesDenseBitwise)
{
    auto clean = image::makeScene(image::SceneKind::Street, 48, 40, 1, 330);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 331);

    const simd::Level levels[] = {simd::Level::Scalar, simd::Level::Avx2};
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        for (simd::Level level : levels) {
            simd::setLevel(level); // clamped to bestSupported()
            for (int threads : {1, 8}) {
                bm3d::Bm3dConfig cfg;
                cfg.sigma = 25.0f;
                cfg.searchWindow1 = 13;
                cfg.searchWindow2 = 11;
                cfg.precision = precision;
                cfg.numThreads = threads;
                auto dense = bm3d::Bm3d(cfg).denoise(noisy);

                cfg.variant.adaptiveBound = true;
                cfg.variant.boundMargin =
                    std::numeric_limits<float>::infinity();
                auto adaptive = bm3d::Bm3d(cfg).denoise(noisy);

                EXPECT_TRUE(dense.output.raw() == adaptive.output.raw())
                    << "precision=" << static_cast<int>(precision)
                    << " level=" << static_cast<int>(level)
                    << " threads=" << threads;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Band matrix: the row-band streaming schedule (DESIGN §15) reorders
// work but never arithmetic, so enabling it must reproduce the
// stage-major output bit for bit across {scalar, avx2} x {1, 8}
// threads x {float32, int16} x several band heights — including band
// heights that exceed the reference grid (single-band degenerate).
// ---------------------------------------------------------------------

class BandMatrix : public ::testing::Test
{
  protected:
    void TearDown() override { simd::setLevel(simd::bestSupported()); }
};

TEST_F(BandMatrix, BandScheduleMatchesStageMajorBitwise)
{
    auto clean = image::makeScene(image::SceneKind::Street, 48, 44, 1, 350);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 351);

    const simd::Level levels[] = {simd::Level::Scalar, simd::Level::Avx2};
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        for (simd::Level level : levels) {
            simd::setLevel(level); // clamped to bestSupported()
            for (int threads : {1, 8}) {
                bm3d::Bm3dConfig cfg;
                cfg.sigma = 25.0f;
                cfg.searchWindow1 = 13;
                cfg.searchWindow2 = 11;
                cfg.tileGrain = 8;
                cfg.precision = precision;
                cfg.numThreads = threads;
                auto stage_major = bm3d::Bm3d(cfg).denoise(noisy);

                for (int rows : {4, 16, 1000}) {
                    cfg.band.enabled = true;
                    cfg.band.rows = rows;
                    cfg.prefetch = true;
                    auto banded = bm3d::Bm3d(cfg).denoise(noisy);
                    EXPECT_TRUE(stage_major.basic.raw() == banded.basic.raw())
                        << "precision=" << static_cast<int>(precision)
                        << " level=" << static_cast<int>(level)
                        << " threads=" << threads << " rows=" << rows;
                    EXPECT_TRUE(stage_major.output.raw() ==
                                banded.output.raw())
                        << "precision=" << static_cast<int>(precision)
                        << " level=" << static_cast<int>(level)
                        << " threads=" << threads << " rows=" << rows;
                    cfg.band.enabled = false;
                    cfg.prefetch = false;
                }
            }
        }
    }
}

TEST_F(VariantMatrix, DensifyAlwaysMatchesDenseBitwise)
{
    auto clean = image::makeScene(image::SceneKind::Nature, 48, 40, 1, 340);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 341);

    const simd::Level levels[] = {simd::Level::Scalar, simd::Level::Avx2};
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        for (simd::Level level : levels) {
            simd::setLevel(level);
            for (int threads : {1, 8}) {
                bm3d::Bm3dConfig cfg;
                cfg.sigma = 25.0f;
                cfg.searchWindow1 = 13;
                cfg.searchWindow2 = 11;
                cfg.precision = precision;
                cfg.numThreads = threads;
                auto dense = bm3d::Bm3d(cfg).denoise(noisy);

                cfg.variant.coarseToFine = true;
                cfg.variant.coarseStride = 3;
                cfg.variant.densifyThreshold = 0.0f;
                auto coarse = bm3d::Bm3d(cfg).denoise(noisy);

                EXPECT_TRUE(dense.output.raw() == coarse.output.raw())
                    << "precision=" << static_cast<int>(precision)
                    << " level=" << static_cast<int>(level)
                    << " threads=" << threads;
            }
        }
    }
}
