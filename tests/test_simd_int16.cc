/**
 * @file
 * Differential suite for the int16 quantized kernel path.
 *
 * Two properties are enforced for every *I16 kernel:
 *
 *  - bitwise parity: every dispatch level (scalar, SSE4.2, AVX2) must
 *    reproduce the scalar reference bit for bit, on random inputs and
 *    on adversarial saturating inputs (±32767, -32768, alternating
 *    signs) that stress the wrap/saturation contract;
 *  - quantization tolerance: each int16 kernel must land within the
 *    tolerance.h bound of its float twin on in-range inputs (the bound
 *    derived from the Int16DctPlan's Q formats).
 *
 * Plus the end-to-end fig09-style gate: a full denoise run under
 * Config::precision = Int16 at 12 fractional bits must stay within
 * 0.05 dB SNR of the float pipeline.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "bm3d/bm3d.h"
#include "fixed/format.h"
#include "fixed/int16plan.h"
#include "image/image.h"
#include "image/metrics.h"
#include "image/noise.h"
#include "image/synthetic.h"
#include "simd/simd.h"
#include "tolerance.h"
#include "transforms/dct.h"

using namespace ideal;
using testing_tol::expectNearQuant;
using testing_tol::snrDeltaDb;

namespace {

/** Deterministic xorshift64* generator (seeds fixed per test). */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 1) {}

    uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /** Uniform int in [lo, hi]. */
    int
    uniform(int lo, int hi)
    {
        return lo + static_cast<int>(next() %
                                     (static_cast<uint64_t>(hi - lo) + 1));
    }

    int16_t
    i16(int lo, int hi)
    {
        return static_cast<int16_t>(uniform(lo, hi));
    }

    float
    uniformF(float lo, float hi)
    {
        const double u =
            static_cast<double>(next() >> 11) / 9007199254740992.0;
        return lo + static_cast<float>(u * (hi - lo));
    }

  private:
    uint64_t state_;
};

std::vector<simd::Level>
availableLevels()
{
    std::vector<simd::Level> levels;
    for (int l = 0; l <= static_cast<int>(simd::bestSupported()); ++l)
        levels.push_back(static_cast<simd::Level>(l));
    return levels;
}

/**
 * Int16 input families for the parity sweeps: random in-range raws,
 * full-scale saturating raws (including INT16_MIN, whose square wraps
 * under _mm256_madd_epi16 when paired with itself), all-zero, and
 * alternating-sign full-scale.
 */
std::vector<std::vector<int16_t>>
int16Families(Rng &rng, int len)
{
    std::vector<std::vector<int16_t>> families;

    std::vector<int16_t> plain(len);
    for (int16_t &v : plain)
        v = rng.i16(-4096, 4096);
    families.push_back(plain);

    std::vector<int16_t> sat(len);
    for (int i = 0; i < len; ++i) {
        const int pick = rng.uniform(0, 3);
        sat[i] = pick == 0   ? INT16_MAX
                 : pick == 1 ? INT16_MIN
                 : pick == 2 ? static_cast<int16_t>(INT16_MIN + 1)
                             : static_cast<int16_t>(INT16_MAX - 1);
    }
    families.push_back(sat);

    families.emplace_back(len, static_cast<int16_t>(0));

    std::vector<int16_t> alt(len);
    for (int i = 0; i < len; ++i)
        alt[i] = (i % 2 == 0) ? INT16_MAX : INT16_MIN;
    families.push_back(alt);

    return families;
}

const int kLens[] = {1, 3, 7, 8, 15, 16, 17, 24, 33, 64, 100};

class SimdInt16 : public ::testing::Test
{
  protected:
    void TearDown() override { simd::setLevel(simd::bestSupported()); }
};

/** SoA plane set: coefs planes of n positions each. */
struct SoaPlanes
{
    std::vector<std::vector<int16_t>> store;
    std::vector<const int16_t *> ptrs;

    SoaPlanes(Rng &rng, int coefs, size_t n, int lo, int hi)
    {
        store.resize(coefs);
        ptrs.resize(coefs);
        for (int k = 0; k < coefs; ++k) {
            store[k].resize(n);
            for (int16_t &v : store[k])
                v = rng.i16(lo, hi);
            ptrs[k] = store[k].data();
        }
    }

    void
    gather(size_t off, int coefs, int16_t *out) const
    {
        for (int k = 0; k < coefs; ++k)
            out[k] = store[k][off];
    }
};

} // namespace

// ---------------------------------------------------------------------
// SSD kernels: bitwise parity across levels, wrap semantics included.
// ---------------------------------------------------------------------

TEST_F(SimdInt16, SsdI16MatchesScalarBitwise)
{
    Rng rng(601);
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int len : kLens) {
        for (const auto &a : int16Families(rng, len)) {
            std::vector<int16_t> b(len);
            for (int16_t &v : b)
                v = rng.i16(-32768, 32767);
            const int32_t expected = ref.ssdI16(a.data(), b.data(), len);
            for (simd::Level level : availableLevels()) {
                SCOPED_TRACE(testing::Message()
                             << "level=" << simd::toString(level)
                             << " len=" << len);
                EXPECT_EQ(expected, simd::kernelsFor(level).ssdI16(
                                        a.data(), b.data(), len));
            }
        }
    }
}

TEST_F(SimdInt16, SsdI16MatchesWideReference)
{
    // In-range inputs: the int32 result must equal an exact int64
    // reference (no wrap below the ssdSafeMagnitudeBits bound).
    Rng rng(602);
    const int m = fixed::ssdSafeMagnitudeBits(16);
    const int lim = (1 << m) - 1;
    for (int len : {8, 16}) {
        std::vector<int16_t> a(len), b(len);
        for (int i = 0; i < len; ++i) {
            a[i] = rng.i16(-lim, lim);
            b[i] = 0;
        }
        int64_t wide = 0;
        for (int i = 0; i < len; ++i) {
            const int64_t d = a[i] - b[i];
            wide += d * d;
        }
        for (simd::Level level : availableLevels()) {
            EXPECT_EQ(wide, simd::kernelsFor(level).ssdI16(a.data(),
                                                           b.data(), len));
        }
    }
}

TEST_F(SimdInt16, SsdBoundedI16MatchesScalarBitwiseAcrossBounds)
{
    Rng rng(603);
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int len : kLens) {
        for (const auto &a : int16Families(rng, len)) {
            std::vector<int16_t> b(len);
            for (int16_t &v : b)
                v = rng.i16(-8192, 8192);
            const int32_t full = ref.ssdI16(a.data(), b.data(), len);
            const int32_t bounds[] = {0,          1,         full / 2,
                                      full - 1,   full,      full + 1,
                                      INT32_MAX};
            for (int32_t bound : bounds) {
                const int32_t expected =
                    ref.ssdBoundedI16(a.data(), b.data(), len, bound);
                // Exit points are part of the contract: partial sums
                // are bitwise identical at every level too.
                for (simd::Level level : availableLevels()) {
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " len=" << len << " bound=" << bound);
                    EXPECT_EQ(expected,
                              simd::kernelsFor(level).ssdBoundedI16(
                                  a.data(), b.data(), len, bound));
                }
                // A partial result may only occur above the bound;
                // otherwise it must be the exact full distance.
                if (expected <= bound) {
                    EXPECT_EQ(expected, full);
                }
            }
        }
    }
}

TEST_F(SimdInt16, SsdSoaI16MatchesGatheredSsd)
{
    Rng rng(604);
    const int coefs = 16;
    const size_t n = 64;
    SoaPlanes planes(rng, coefs, n, -8192, 8192);
    int16_t pa[16], pb[16];
    for (size_t off_a : {size_t{0}, size_t{17}, size_t{63}}) {
        for (size_t off_b : {size_t{5}, size_t{40}}) {
            planes.gather(off_a, coefs, pa);
            planes.gather(off_b, coefs, pb);
            const int32_t expected =
                simd::kernelsFor(simd::Level::Scalar)
                    .ssdI16(pa, pb, coefs);
            for (simd::Level level : availableLevels()) {
                EXPECT_EQ(expected, simd::kernelsFor(level).ssdSoaI16(
                                        planes.ptrs.data(), off_a,
                                        planes.ptrs.data(), off_b, coefs,
                                        INT32_MAX));
            }
        }
    }
}

TEST_F(SimdInt16, SsdSoaBatchI16MatchesSingleCandidateCalls)
{
    Rng rng(605);
    const int coefs = 16;
    const size_t n = 256;
    SoaPlanes planes(rng, coefs, n, -32768, 32767);
    int16_t ref[16], cand[16];
    for (const auto &ref_family : int16Families(rng, coefs)) {
        std::memcpy(ref, ref_family.data(), sizeof(ref));
        for (int count : {1, 3, 7, 8, 15, 16, 17, 33, 100}) {
            const size_t off = 11;
            std::vector<int32_t> scalar_out(count);
            simd::kernelsFor(simd::Level::Scalar)
                .ssdSoaBatchI16(ref, planes.ptrs.data(), off, coefs, count,
                                scalar_out.data());
            // Single-candidate reference: batch position i is the
            // plain SSD against the gathered candidate at off + i.
            for (int i = 0; i < count; ++i) {
                planes.gather(off + i, coefs, cand);
                EXPECT_EQ(scalar_out[i],
                          simd::kernelsFor(simd::Level::Scalar)
                              .ssdI16(ref, cand, coefs))
                    << "candidate " << i;
            }
            for (simd::Level level : availableLevels()) {
                std::vector<int32_t> out(count, -1);
                simd::kernelsFor(level).ssdSoaBatchI16(
                    ref, planes.ptrs.data(), off, coefs, count,
                    out.data());
                for (int i = 0; i < count; ++i) {
                    EXPECT_EQ(scalar_out[i], out[i])
                        << "level=" << simd::toString(level)
                        << " count=" << count << " candidate=" << i;
                }
            }
        }
    }
}

TEST_F(SimdInt16, SsdPairBatchI16MatchesSoaBatchAcrossLevels)
{
    Rng rng(606);
    const int coefs = 16;
    const size_t n = 256;
    SoaPlanes planes(rng, coefs, n, -32768, 32767);
    // Pair-interleaved twin of the SoA planes: plane p holds
    // coefficients (2p, 2p+1) adjacent per position.
    std::vector<std::vector<int16_t>> pair_store(coefs / 2);
    std::vector<const int16_t *> pair_ptrs(coefs / 2);
    for (int p = 0; p < coefs / 2; ++p) {
        pair_store[p].resize(2 * n);
        for (size_t i = 0; i < n; ++i) {
            pair_store[p][2 * i] = planes.store[2 * p][i];
            pair_store[p][2 * i + 1] = planes.store[2 * p + 1][i];
        }
        pair_ptrs[p] = pair_store[p].data();
    }
    int16_t ref[16];
    for (const auto &ref_family : int16Families(rng, coefs)) {
        std::memcpy(ref, ref_family.data(), sizeof(ref));
        for (int count : {1, 3, 7, 8, 15, 16, 17, 33, 100}) {
            const size_t off = 11;
            // The plain SoA batch kernel is the semantic reference:
            // both layouts must produce identical raw SSDs.
            std::vector<int32_t> expected(count);
            simd::kernelsFor(simd::Level::Scalar)
                .ssdSoaBatchI16(ref, planes.ptrs.data(), off, coefs,
                                count, expected.data());
            for (simd::Level level : availableLevels()) {
                std::vector<int32_t> out(count, -1);
                simd::kernelsFor(level).ssdPairBatchI16(
                    ref, pair_ptrs.data(), off, coefs, count, out.data());
                for (int i = 0; i < count; ++i) {
                    EXPECT_EQ(expected[i], out[i])
                        << "level=" << simd::toString(level)
                        << " count=" << count << " candidate=" << i;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Int16 folded DCT: bitwise parity + tolerance against the float twin.
// ---------------------------------------------------------------------

namespace {

void
quantizedBasis(const transforms::Dct2D &dct, const fixed::Int16DctPlan &plan,
               int16_t *even_q, int16_t *odd_q)
{
    const float even_f[4] = {dct.coefficient(0, 0), dct.coefficient(0, 1),
                             dct.coefficient(2, 0), dct.coefficient(2, 1)};
    const float odd_f[4] = {dct.coefficient(1, 0), dct.coefficient(1, 1),
                            dct.coefficient(3, 0), dct.coefficient(3, 1)};
    fixed::quantizeBasisQ(even_f, 4, plan.coefFracBits, even_q);
    fixed::quantizeBasisQ(odd_f, 4, plan.coefFracBits, odd_q);
}

} // namespace

TEST_F(SimdInt16, Dct4ForwardI16MatchesScalarBitwise)
{
    Rng rng(606);
    const fixed::Int16DctPlan plan;
    transforms::Dct2D dct(4);
    int16_t even_q[4], odd_q[4];
    quantizedBasis(dct, plan, even_q, odd_q);

    for (const auto &in : int16Families(rng, 16)) {
        int16_t expected[16];
        simd::kernelsFor(simd::Level::Scalar)
            .dct4ForwardI16(in.data(), expected, even_q, odd_q, plan.shift1,
                            plan.shift2);
        for (simd::Level level : availableLevels()) {
            int16_t out[16];
            simd::kernelsFor(level).dct4ForwardI16(
                in.data(), out, even_q, odd_q, plan.shift1, plan.shift2);
            for (int i = 0; i < 16; ++i) {
                EXPECT_EQ(expected[i], out[i])
                    << "level=" << simd::toString(level) << " coef " << i;
            }
        }
    }
}

TEST_F(SimdInt16, Dct4ForwardI16WithinToleranceOfFloat)
{
    Rng rng(607);
    const fixed::Int16DctPlan plan;
    transforms::Dct2D dct(4);
    int16_t even_q[4], odd_q[4];
    quantizedBasis(dct, plan, even_q, odd_q);

    for (int trial = 0; trial < 64; ++trial) {
        float pixels[16];
        for (float &p : pixels)
            p = rng.uniformF(-255.0f, 255.0f);

        int16_t pixq[16], coefq[16];
        fixed::quantizeToI16(pixels, 16, plan.pixel, pixq);
        simd::kernels().dct4ForwardI16(pixq, coefq, even_q, odd_q,
                                       plan.shift1, plan.shift2);

        // Float reference on the *roundtripped* pixels: the tolerance
        // covers the transform's own rounding stages, not the input
        // quantization (which is exact by construction here).
        float rtrip[16], ref[16];
        for (int i = 0; i < 16; ++i)
            rtrip[i] =
                static_cast<float>(plan.pixel.toDouble(pixq[i]));
        dct.forward(rtrip, ref);

        // Two renormalizing shifts plus the Q13 basis error across a
        // 4-term fold: comfortably inside one Q11.1 step.
        for (int i = 0; i < 16; ++i) {
            expectNearQuant(ref[i], plan.match.toDouble(coefq[i]),
                            plan.match, 1.0, "dct4 coef", i);
        }
    }
}

// ---------------------------------------------------------------------
// Int16 Haar butterflies.
// ---------------------------------------------------------------------

TEST_F(SimdInt16, HaarPairI16MatchesScalarBitwise)
{
    Rng rng(608);
    const int16_t factor = 23170; // round(2^15 / sqrt(2))
    for (int width : {1, 3, 7, 8, 15, 16, 31, 64}) {
        for (const auto &even : int16Families(rng, width)) {
            std::vector<int16_t> odd(width);
            for (int16_t &v : odd)
                v = rng.i16(-32768, 32767);
            std::vector<int16_t> ea(width), ed(width), eo(width), ee(width);
            const simd::KernelTable &ref =
                simd::kernelsFor(simd::Level::Scalar);
            ref.haarForwardPairI16(even.data(), odd.data(), ea.data(),
                                   ed.data(), factor, width);
            ref.haarInversePairI16(ea.data(), ed.data(), ee.data(),
                                   eo.data(), factor, width);
            for (simd::Level level : availableLevels()) {
                std::vector<int16_t> a(width), d(width), oe(width),
                    oo(width);
                const simd::KernelTable &k = simd::kernelsFor(level);
                k.haarForwardPairI16(even.data(), odd.data(), a.data(),
                                     d.data(), factor, width);
                k.haarInversePairI16(a.data(), d.data(), oe.data(),
                                     oo.data(), factor, width);
                for (int i = 0; i < width; ++i) {
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " width=" << width << " lane " << i);
                    EXPECT_EQ(ea[i], a[i]);
                    EXPECT_EQ(ed[i], d[i]);
                    EXPECT_EQ(ee[i], oe[i]);
                    EXPECT_EQ(eo[i], oo[i]);
                }
            }
        }
    }
}

TEST_F(SimdInt16, HaarForwardPairI16WithinToleranceOfFloat)
{
    Rng rng(609);
    const int16_t factor = 23170;
    const double factor_real = factor / 32768.0;
    const int width = 16;
    // In-range raws: |even + odd| stays below the saturation point.
    std::vector<int16_t> even(width), odd(width);
    for (int i = 0; i < width; ++i) {
        even[i] = rng.i16(-16000, 16000);
        odd[i] = rng.i16(-16000, 16000);
    }
    std::vector<int16_t> approx(width), detail(width);
    simd::kernels().haarForwardPairI16(even.data(), odd.data(),
                                       approx.data(), detail.data(), factor,
                                       width);
    for (int i = 0; i < width; ++i) {
        // One Q15 rounded multiply: half a raw step, plus the factor's
        // own quantization error (|f - 1/sqrt 2| * |sum| < 0.3 raw).
        const double ea = (even[i] + odd[i]) * factor_real;
        const double ed = (even[i] - odd[i]) * factor_real;
        EXPECT_NEAR(ea, approx[i], 1.0) << "approx lane " << i;
        EXPECT_NEAR(ed, detail[i], 1.0) << "detail lane " << i;
    }
}

// ---------------------------------------------------------------------
// Int16 hard threshold.
// ---------------------------------------------------------------------

TEST_F(SimdInt16, HardThresholdI16MatchesScalarBitwise)
{
    Rng rng(610);
    for (int len : kLens) {
        for (const auto &base : int16Families(rng, len)) {
            for (int16_t thr : {int16_t{1}, int16_t{100}, int16_t{5000},
                                int16_t{INT16_MAX}}) {
                std::vector<int16_t> expected(base);
                const int expected_kept =
                    simd::kernelsFor(simd::Level::Scalar)
                        .hardThresholdI16(expected.data(), len, thr);
                for (simd::Level level : availableLevels()) {
                    std::vector<int16_t> v(base);
                    const int kept =
                        simd::kernelsFor(level).hardThresholdI16(
                            v.data(), len, thr);
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " len=" << len << " thr=" << thr);
                    EXPECT_EQ(expected_kept, kept);
                    EXPECT_EQ(expected, v);
                }
            }
        }
    }
}

TEST_F(SimdInt16, HardThresholdI16AlwaysZeroesInt16Min)
{
    // abs_epi16(-32768) == -32768, which compares below any positive
    // threshold: INT16_MIN never survives. The scalar reference must
    // reproduce the intrinsic's quirk exactly.
    for (simd::Level level : availableLevels()) {
        int16_t v[4] = {INT16_MIN, 100, -100, INT16_MAX};
        const int kept =
            simd::kernelsFor(level).hardThresholdI16(v, 4, 50);
        EXPECT_EQ(v[0], 0) << simd::toString(level);
        EXPECT_EQ(kept, 3) << simd::toString(level);
        EXPECT_EQ(v[1], 100);
        EXPECT_EQ(v[2], -100);
        EXPECT_EQ(v[3], INT16_MAX);
    }
}

// ---------------------------------------------------------------------
// End-to-end fig09-style gate: |delta SNR| <= 0.05 dB at 12 fractional
// bits, int16 matching vs float matching.
// ---------------------------------------------------------------------

TEST_F(SimdInt16, DenoiseInt16WithinSnrToleranceOfFloat)
{
    const image::ImageF clean =
        image::makeScene(image::SceneKind::Street, 96, 96, 1, 77);
    const image::ImageF noisy = image::addGaussianNoise(clean, 25.0f, 78);

    bm3d::Bm3dConfig cfg;
    cfg.sigma = 25.0f;
    cfg.fixedPoint = fixed::PipelineFormats::forFraction(12);

    cfg.precision = bm3d::Precision::Float32;
    const image::ImageF base = bm3d::Bm3d(cfg).denoise(noisy).output;

    cfg.precision = bm3d::Precision::Int16;
    const image::ImageF quant = bm3d::Bm3d(cfg).denoise(noisy).output;

    const double delta = snrDeltaDb(clean, base, quant);
    EXPECT_LE(std::abs(delta), 0.05)
        << "int16 matching moved SNR by " << delta << " dB";
}

// ---------------------------------------------------------------------
// Fused int16 DE1 spectrum kernel (DESIGN §12): parity across levels
// and bitwise equality with the discrete butterfly + threshold
// composition, on the same saturating / all-zero / alternating-sign
// differential families as the element kernels.
// ---------------------------------------------------------------------

namespace {

/**
 * Discrete reference for haarShrinkFusedI16: replay the Haar1D
 * forwardRows/inverseRows schedule with the scalar haarForwardPairI16 /
 * haarInversePairI16 row kernels, hardThresholdI16 over the
 * transform-domain tile in between.
 */
int
haarShrinkDiscreteI16(int16_t *g, int stack, int width, int16_t threshold,
                      int16_t factor)
{
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    if (stack == 1)
        return ref.hardThresholdI16(g, width, threshold);

    const size_t n = static_cast<size_t>(stack) * width;
    std::vector<int16_t> buf(g, g + n), dom(n);
    int len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i)
            ref.haarForwardPairI16(&buf[2 * i * width],
                                   &buf[(2 * i + 1) * width],
                                   &buf[static_cast<size_t>(i) * width],
                                   &dom[static_cast<size_t>(half + i) *
                                        width],
                                   factor, width);
        len = half;
    }
    std::memcpy(dom.data(), buf.data(), sizeof(int16_t) * width);

    const int kept =
        ref.hardThresholdI16(dom.data(), stack * width, threshold);

    std::memcpy(buf.data(), dom.data(), sizeof(int16_t) * width);
    len = 1;
    std::vector<int16_t> tmp(n);
    while (len < stack) {
        for (int i = 0; i < len; ++i)
            ref.haarInversePairI16(&buf[static_cast<size_t>(i) * width],
                                   &dom[static_cast<size_t>(len + i) *
                                        width],
                                   &tmp[2 * i * width],
                                   &tmp[(2 * i + 1) * width], factor,
                                   width);
        len *= 2;
        std::memcpy(buf.data(), tmp.data(),
                    sizeof(int16_t) * static_cast<size_t>(len) * width);
    }
    std::memcpy(g, buf.data(), sizeof(int16_t) * n);
    return kept;
}

} // namespace

TEST_F(SimdInt16, HaarShrinkFusedI16MatchesScalarBitwise)
{
    Rng rng(612);
    const int16_t factor = 23170;
    const simd::KernelTable &ref = simd::kernelsFor(simd::Level::Scalar);
    for (int stack : {1, 2, 4, 8, 16}) {
        for (int width : {1, 7, 8, 15, 16, 20}) {
            for (const auto &tile : int16Families(rng, stack * width)) {
                for (int16_t thr : {int16_t{135}, int16_t{5000}}) {
                    std::vector<int16_t> g_ref = tile;
                    const int kept_ref = ref.haarShrinkFusedI16(
                        g_ref.data(), stack, width, thr, factor);
                    for (simd::Level level : availableLevels()) {
                        std::vector<int16_t> g = tile;
                        const int kept =
                            simd::kernelsFor(level).haarShrinkFusedI16(
                                g.data(), stack, width, thr, factor);
                        SCOPED_TRACE(testing::Message()
                                     << "level=" << simd::toString(level)
                                     << " stack=" << stack
                                     << " width=" << width
                                     << " thr=" << thr);
                        EXPECT_EQ(kept_ref, kept);
                        EXPECT_EQ(g_ref, g);
                    }
                }
            }
        }
    }
}

TEST_F(SimdInt16, HaarShrinkFusedI16MatchesDiscreteComposition)
{
    // The fused kernel must equal the pair-kernel butterfly schedule
    // plus hardThresholdI16, including the saturating-add and
    // mulhrs rounding at every level of the transform — verified on
    // the saturating and alternating-sign families where adds/subs
    // clamp and abs(-32768) stays negative.
    Rng rng(613);
    const int16_t factor = 23170;
    const int16_t thr = 135; // the production Q11.1 DE1 threshold
    for (int stack : {1, 2, 4, 8, 16}) {
        for (int width : {7, 16}) {
            for (const auto &tile : int16Families(rng, stack * width)) {
                std::vector<int16_t> g_ref = tile;
                const int kept_ref = haarShrinkDiscreteI16(
                    g_ref.data(), stack, width, thr, factor);
                for (simd::Level level : availableLevels()) {
                    std::vector<int16_t> g = tile;
                    const int kept =
                        simd::kernelsFor(level).haarShrinkFusedI16(
                            g.data(), stack, width, thr, factor);
                    SCOPED_TRACE(testing::Message()
                                 << "level=" << simd::toString(level)
                                 << " stack=" << stack
                                 << " width=" << width);
                    EXPECT_EQ(kept_ref, kept);
                    EXPECT_EQ(g_ref, g);
                }
            }
        }
    }
}

TEST_F(SimdInt16, HaarShrinkFusedI16DifferentialEdgeCases)
{
    const int16_t factor = 23170;
    for (simd::Level level : availableLevels()) {
        const simd::KernelTable &k = simd::kernelsFor(level);
        SCOPED_TRACE(simd::toString(level));

        // All-zero tile: the transform is exactly zero, nothing
        // survives, and the tile comes back all zero.
        std::vector<int16_t> zeros(16 * 16, 0);
        EXPECT_EQ(k.haarShrinkFusedI16(zeros.data(), 16, 16, 135, factor),
                  0);
        for (int16_t v : zeros)
            EXPECT_EQ(v, 0);

        // Full-scale same-sign tile: every butterfly's saturating add
        // clamps to INT16_MAX before the mulhrs scales it back down,
        // details cancel to zero; with a full-scale threshold
        // everything is zeroed, so the inverse maps the tile to zero.
        std::vector<int16_t> sat(16 * 16, INT16_MAX);
        EXPECT_EQ(k.haarShrinkFusedI16(sat.data(), 16, 16, INT16_MAX,
                                       factor),
                  0);
        for (int16_t v : sat)
            EXPECT_EQ(v, 0);

        // Alternating-sign full-scale rows: the first butterfly's
        // detail is (32767 - (-32768)) saturated to 32767; parity with
        // scalar pins the clamp behaviour.
        std::vector<int16_t> alt(16 * 16);
        for (int i = 0; i < 16 * 16; ++i)
            alt[i] = (i / 16) % 2 == 0 ? INT16_MAX : INT16_MIN;
        std::vector<int16_t> alt_ref = alt;
        const int kept_ref = simd::kernelsFor(simd::Level::Scalar)
                                 .haarShrinkFusedI16(alt_ref.data(), 16,
                                                     16, 135, factor);
        const int kept =
            k.haarShrinkFusedI16(alt.data(), 16, 16, 135, factor);
        EXPECT_EQ(kept_ref, kept);
        EXPECT_EQ(alt_ref, alt);
    }
}
