/**
 * @file
 * Tests for the Bayer mosaic/demosaic substrate.
 */

#include <gtest/gtest.h>

#include "image/bayer.h"
#include "image/metrics.h"
#include "image/synthetic.h"

using namespace ideal::image;

TEST(Bayer, SitePattern)
{
    EXPECT_EQ(bayerSiteAt(0, 0), BayerSite::R);
    EXPECT_EQ(bayerSiteAt(1, 0), BayerSite::Gr);
    EXPECT_EQ(bayerSiteAt(0, 1), BayerSite::Gb);
    EXPECT_EQ(bayerSiteAt(1, 1), BayerSite::B);
    EXPECT_EQ(bayerSiteAt(2, 2), BayerSite::R);
}

TEST(Bayer, MosaicSamplesCorrectChannel)
{
    ImageF rgb(4, 4, 3);
    rgb.fill(0.0f);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x) {
            rgb.at(x, y, 0) = 10.0f;
            rgb.at(x, y, 1) = 20.0f;
            rgb.at(x, y, 2) = 30.0f;
        }
    ImageF raw = mosaic(rgb);
    EXPECT_EQ(raw.at(0, 0), 10.0f); // R
    EXPECT_EQ(raw.at(1, 0), 20.0f); // Gr
    EXPECT_EQ(raw.at(0, 1), 20.0f); // Gb
    EXPECT_EQ(raw.at(1, 1), 30.0f); // B
}

TEST(Bayer, MosaicRequiresRgb)
{
    EXPECT_THROW(mosaic(ImageF(4, 4, 1)), std::invalid_argument);
    EXPECT_THROW(demosaicBilinear(ImageF(4, 4, 3)),
                 std::invalid_argument);
}

TEST(Bayer, DemosaicReconstructsFlatField)
{
    ImageF rgb(8, 8, 3);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x) {
            rgb.at(x, y, 0) = 100.0f;
            rgb.at(x, y, 1) = 150.0f;
            rgb.at(x, y, 2) = 50.0f;
        }
    ImageF back = demosaicBilinear(mosaic(rgb));
    // A flat field reconstructs exactly (all neighbors equal).
    EXPECT_LT(maxAbsDiff(rgb, back), 1e-4);
}

TEST(Bayer, DemosaicRoundTripQuality)
{
    ImageF rgb = makeScene(SceneKind::Nature, 48, 48, 3, 91);
    ImageF bil = demosaicBilinear(mosaic(rgb));
    EXPECT_GT(psnrDb(rgb, bil), 28.0);
}

TEST(Bayer, MalvarBeatsBilinearOnDetail)
{
    ImageF rgb = makeScene(SceneKind::Street, 64, 64, 3, 92);
    ImageF raw = mosaic(rgb);
    double psnr_bil = psnrDb(rgb, demosaicBilinear(raw));
    double psnr_mal = psnrDb(rgb, demosaicMalvar(raw));
    EXPECT_GT(psnr_mal, psnr_bil - 0.5);
}

TEST(Bayer, PackedPlanesLayout)
{
    ImageF raw(4, 4, 1);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            raw.at(x, y) = static_cast<float>(10 * y + x);
    ImageF packed = packBayerPlanes(raw);
    EXPECT_EQ(packed.width(), 2);
    EXPECT_EQ(packed.channels(), 4);
    EXPECT_EQ(packed.at(0, 0, 0), 0.0f);  // R at (0,0)
    EXPECT_EQ(packed.at(0, 0, 1), 1.0f);  // Gr at (1,0)
    EXPECT_EQ(packed.at(0, 0, 2), 10.0f); // Gb at (0,1)
    EXPECT_EQ(packed.at(0, 0, 3), 11.0f); // B at (1,1)
    EXPECT_EQ(packed.at(1, 1, 0), 22.0f); // R at (2,2)
}

TEST(Bayer, PackRequiresEvenDims)
{
    EXPECT_THROW(packBayerPlanes(ImageF(5, 4, 1)), std::invalid_argument);
    EXPECT_THROW(packBayerPlanes(ImageF(4, 4, 3)), std::invalid_argument);
}
