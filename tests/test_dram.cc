/**
 * @file
 * Unit tests for the DDR3 timing model: configuration invariants,
 * latency components, row-buffer behaviour, bandwidth ceiling, and
 * in-flight limits.
 */

#include <gtest/gtest.h>

#include "dram/dram.h"

using namespace ideal;
using dram::DramConfig;
using dram::DramSystem;
using dram::Request;

namespace {

/** Drain the system, returning total cycles until idle. */
sim::Cycle
drain(DramSystem &mem, sim::Cycle start = 0)
{
    sim::Cycle cycle = start;
    while (!mem.idle() && cycle < 10'000'000) {
        ++cycle;
        mem.tick(cycle);
        mem.collectCompletions(cycle);
    }
    return cycle;
}

} // namespace

TEST(DramConfig, Defaults)
{
    DramConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_NEAR(cfg.peakGBs(), 21.3, 0.2); // dual-channel DDR3-1333
    EXPECT_EQ(cfg.tRcd(), 14u);
    EXPECT_GE(cfg.tBurst(), 6u);
}

TEST(DramConfig, RejectsBadValues)
{
    DramConfig cfg;
    cfg.channels = 3;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = DramConfig{};
    cfg.rowBytes = 32;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = DramConfig{};
    cfg.maxInFlight = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Dram, SingleReadLatency)
{
    DramConfig cfg;
    DramSystem mem(cfg);
    ASSERT_TRUE(mem.enqueue(Request{0, false, 1}, 0));
    sim::Cycle cycle = 0;
    std::vector<dram::Completion> done;
    while (done.empty() && cycle < 1000) {
        ++cycle;
        mem.tick(cycle);
        done = mem.collectCompletions(cycle);
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].id, 1u);
    // Closed-bank read: tRCD + tCL + tBURST = 14 + 14 + 7 (+1 issue).
    sim::Cycle expected = cfg.tRcd() + cfg.tCl() + cfg.tBurst();
    EXPECT_GE(done[0].finishedAt, expected);
    EXPECT_LE(done[0].finishedAt, expected + 2);
}

TEST(Dram, RowHitFasterThanConflict)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.frfcfs = false;
    DramSystem mem(cfg);
    // Same row twice, then a different row in the same bank.
    mem.enqueue(Request{0, false, 1}, 0);
    drain(mem);
    mem.enqueue(Request{64 * cfg.channels, false, 2}, 0); // same row
    drain(mem);
    EXPECT_EQ(mem.stats().get("dram.rowHits"), 1.0);
    // A different row of the same bank forces a conflict.
    sim::Addr far = static_cast<sim::Addr>(cfg.rowBytes) *
                    cfg.banksPerChannel * cfg.channels * 2;
    mem.enqueue(Request{far, false, 3}, 0);
    drain(mem);
    EXPECT_EQ(mem.stats().get("dram.rowConflicts") +
                  mem.stats().get("dram.rowClosed"),
              2.0);
}

TEST(Dram, InFlightLimitEnforced)
{
    DramConfig cfg;
    cfg.maxInFlight = 4;
    cfg.queueDepth = 16;
    DramSystem mem(cfg);
    int accepted = 0;
    for (int i = 0; i < 10; ++i)
        if (mem.enqueue(Request{static_cast<sim::Addr>(i) * 64, false,
                                static_cast<uint64_t>(i)},
                        0))
            ++accepted;
    EXPECT_EQ(accepted, 4);
    EXPECT_FALSE(mem.canAccept(0));
    drain(mem);
    EXPECT_TRUE(mem.canAccept(0));
}

TEST(Dram, StreamingBandwidthNearPeak)
{
    DramConfig cfg;
    DramSystem mem(cfg);
    // Stream 4096 sequential blocks (256 KB), refilling as accepted.
    const int blocks = 4096;
    int issued = 0;
    sim::Cycle cycle = 0;
    while ((issued < blocks || !mem.idle()) && cycle < 1'000'000) {
        ++cycle;
        while (issued < blocks &&
               mem.enqueue(Request{static_cast<sim::Addr>(issued) * 64,
                                   false,
                                   static_cast<uint64_t>(issued)},
                           cycle)) {
            ++issued;
        }
        mem.tick(cycle);
        mem.collectCompletions(cycle);
    }
    double gbps = static_cast<double>(mem.bytesTransferred()) /
                  (static_cast<double>(cycle) * 1e-9) / 1e9;
    // Sequential streams should achieve a large fraction of the
    // 21.3 GB/s dual-channel peak.
    EXPECT_GT(gbps, 0.6 * cfg.peakGBs());
    EXPECT_LE(gbps, cfg.peakGBs() * 1.01);
    // Mostly row hits.
    EXPECT_GT(mem.stats().get("dram.rowHits"),
              0.9 * static_cast<double>(blocks));
}

TEST(Dram, IdealModeSingleCycle)
{
    DramConfig cfg;
    cfg.idealSingleCycle = true;
    DramSystem mem(cfg);
    mem.enqueue(Request{0, false, 1}, 0);
    mem.tick(1);
    auto done = mem.collectCompletions(2);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_LE(done[0].finishedAt, 2u);
}

TEST(Dram, WritesCounted)
{
    DramConfig cfg;
    DramSystem mem(cfg);
    mem.enqueue(Request{0, true, 1}, 0);
    drain(mem);
    EXPECT_EQ(mem.stats().get("dram.writes"), 1.0);
    EXPECT_EQ(mem.stats().get("dram.reads"), 0.0);
    EXPECT_EQ(mem.bytesTransferred(), 64u);
}

TEST(Dram, AverageLatencyPositive)
{
    DramConfig cfg;
    DramSystem mem(cfg);
    for (int i = 0; i < 8; ++i)
        mem.enqueue(Request{static_cast<sim::Addr>(i) * 4096, false,
                            static_cast<uint64_t>(i)},
                    0);
    drain(mem);
    EXPECT_GT(mem.averageLatency(), cfg.tCl());
}

TEST(Dram, ChannelsBalanceSequentialStream)
{
    DramConfig cfg;
    cfg.channels = 2;
    DramSystem mem(cfg);
    // Blocks alternate channels; both should accept without filling
    // one queue first.
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(mem.enqueue(Request{static_cast<sim::Addr>(i) * 64,
                                        false,
                                        static_cast<uint64_t>(i)},
                                0));
    drain(mem);
    EXPECT_EQ(mem.stats().get("dram.reads"), 8.0);
}
