/**
 * @file
 * Tests for the NN substrate (tensors, layers, the ML1/ML2 networks)
 * and the DaDianNao timing/energy model.
 */

#include <gtest/gtest.h>

#include "nn/dadiannao.h"
#include "nn/layers.h"
#include "nn/networks.h"
#include "nn/tensor.h"

using namespace ideal::nn;

TEST(Tensor, ShapeAndIndexing)
{
    Tensor t(2, 3, 4);
    EXPECT_EQ(t.size(), 24u);
    t.at(1, 2, 3) = 5.0f;
    EXPECT_EQ(t.raw()[1 * 12 + 2 * 4 + 3], 5.0f);
    EXPECT_THROW(Tensor(0, 1, 1), std::invalid_argument);
}

TEST(DenseLayer, ForwardComputesAffineMap)
{
    DenseLayer layer(3, 2, false, 1);
    Tensor in(1, 1, 3);
    in.raw() = {1.0f, 2.0f, 3.0f};
    Tensor out = layer.forward(in);
    EXPECT_EQ(out.size(), 2u);
    // Deterministic seed: forward twice gives identical results.
    Tensor out2 = layer.forward(in);
    EXPECT_EQ(out.raw(), out2.raw());
}

TEST(DenseLayer, ReluClampsNegatives)
{
    DenseLayer layer(8, 16, true, 2);
    Tensor in(1, 1, 8);
    for (size_t i = 0; i < 8; ++i)
        in.raw()[i] = -10.0f + static_cast<float>(i);
    Tensor out = layer.forward(in);
    for (float v : out.raw())
        EXPECT_GE(v, 0.0f);
}

TEST(DenseLayer, MacAndWeightCounts)
{
    DenseLayer layer(10, 4, false, 3);
    EXPECT_EQ(layer.macs(), 40u);
    EXPECT_EQ(layer.weights(), 44u);
    EXPECT_EQ(layer.name(), "fc10x4");
}

TEST(DenseLayer, InputLengthMismatchThrows)
{
    DenseLayer layer(4, 2, false, 4);
    Tensor wrong(1, 1, 5);
    EXPECT_THROW(layer.forward(wrong), std::invalid_argument);
}

TEST(Conv2dLayer, PreservesSpatialShape)
{
    Conv2dLayer layer(3, 8, 3, true, 16, 5);
    Tensor in(3, 10, 12);
    Tensor out = layer.forward(in);
    EXPECT_EQ(out.channels(), 8);
    EXPECT_EQ(out.height(), 10);
    EXPECT_EQ(out.width(), 12);
}

TEST(Conv2dLayer, MacCountUsesSpatial)
{
    Conv2dLayer layer(4, 8, 3, false, 16, 6);
    EXPECT_EQ(layer.macs(), 16u * 16u * 4u * 8u * 9u);
    EXPECT_EQ(layer.weights(), 4u * 8u * 9u + 8u);
}

TEST(Conv2dLayer, IdentityOnZeroInput)
{
    Conv2dLayer layer(2, 2, 3, false, 8, 7);
    Tensor in(2, 8, 8);
    Tensor out = layer.forward(in);
    for (float v : out.raw())
        EXPECT_EQ(v, 0.0f); // zero biases + zero input
}

TEST(Networks, Ml1MatchesTable5)
{
    auto d = makeMl1();
    EXPECT_EQ(d.net->depth(), 5u);
    // Table 5: 27.8 M weights.
    EXPECT_NEAR(static_cast<double>(d.net->totalWeights()) / 1e6, 27.8,
                0.5);
    EXPECT_EQ(d.inputTile, 39);
    EXPECT_EQ(d.outputTile, 17);
}

TEST(Networks, Ml2MatchesTable5)
{
    auto d = makeMl2();
    EXPECT_EQ(d.net->depth(), 15u);
    // Table 5: 560 K weights.
    EXPECT_NEAR(static_cast<double>(d.net->totalWeights()) / 1e3, 560.0,
                80.0);
    EXPECT_EQ(d.inputTile, 320);
    EXPECT_EQ(d.outputTile, 256);
}

TEST(Networks, Ml1ForwardPassShape)
{
    auto d = makeMl1();
    Tensor in(1, 1, 1522);
    Tensor out = d.net->forward(in);
    EXPECT_EQ(out.size(), 289u); // 17 x 17 output patch
}

TEST(Networks, PassCountCoversImage)
{
    auto d = makeMl1();
    EXPECT_EQ(d.passesForImage(17, 17), 1u);
    EXPECT_EQ(d.passesForImage(18, 17), 2u);
    EXPECT_EQ(d.passesForImage(170, 170), 100u);
}

TEST(DaDianNaoModel, Ml1IsWeightStreamingBound)
{
    DaDianNao node;
    auto d = makeMl1();
    auto r = node.run(d, 1024, 1024);
    EXPECT_FALSE(r.weightsResident);
    EXPECT_GT(r.weightBytesStreamed, 0u);
    // Streaming 56 MB per pass through a 256 B/cycle port dominates:
    // per-pass cycles ~= weights * 2 / 256.
    uint64_t stream_cycles = d.net->totalWeights() * 2 / 256;
    uint64_t passes = d.passesForImage(1024, 1024);
    EXPECT_NEAR(static_cast<double>(r.cycles) /
                    static_cast<double>(passes * stream_cycles),
                1.0, 0.1);
}

TEST(DaDianNaoModel, Ml2IsComputeBound)
{
    DaDianNao node;
    auto d = makeMl2();
    auto r = node.run(d, 1024, 1024);
    EXPECT_TRUE(r.weightsResident);
    EXPECT_EQ(r.weightBytesStreamed, 0u);
}

TEST(DaDianNaoModel, Ml2MuchFasterThanMl1)
{
    // Fig. 13b: ML2 on DaDianNao is ~17x faster than ML1.
    DaDianNao node;
    auto r1 = node.run(makeMl1(), 2048, 2048);
    auto r2 = node.run(makeMl2(), 2048, 2048);
    double ratio = r1.seconds / r2.seconds;
    EXPECT_GT(ratio, 8.0);
    EXPECT_LT(ratio, 40.0);
}

TEST(DaDianNaoModel, PowerNearPaperTable7)
{
    DaDianNao node;
    // Table 7: ML1 ~41 W on-chip; ML2 ~13 W total (9 core + 4 buffer).
    auto r1 = node.run(makeMl1(), 4096, 4096);
    EXPECT_NEAR(r1.corePowerW + r1.bufferPowerW, 41.0, 8.0);
    auto r2 = node.run(makeMl2(), 4096, 4096);
    EXPECT_NEAR(r2.totalPowerW(), 13.45, 4.0);
    EXPECT_GT(r2.corePowerW, r2.bufferPowerW);
}

TEST(DaDianNaoModel, RuntimeLinearInResolution)
{
    DaDianNao node;
    auto d = makeMl2();
    auto r1 = node.run(d, 1024, 1024);
    auto r4 = node.run(d, 2048, 2048);
    EXPECT_NEAR(r4.seconds / r1.seconds, 4.0, 0.5);
}
