/**
 * @file
 * Unit tests for the fixed-point substrate: format quantization,
 * saturation, scalar arithmetic, and bulk quantization helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fixed/fixed.h"
#include "fixed/format.h"
#include "fixed/quantize.h"
#include "image/metrics.h"
#include "image/synthetic.h"

using ideal::fixed::Fixed;
using ideal::fixed::Format;
using ideal::fixed::PipelineFormats;

TEST(Format, ScaleAndRange)
{
    Format q(8, 12);
    EXPECT_EQ(q.magnitudeBits(), 20);
    EXPECT_DOUBLE_EQ(q.scale(), 4096.0);
    EXPECT_EQ(q.maxRaw(), (1 << 20) - 1);
    EXPECT_EQ(q.minRaw(), -(1 << 20));
}

TEST(Format, QuantizeRoundsToNearest)
{
    Format q(8, 4); // grid of 1/16
    EXPECT_EQ(q.quantize(1.0), 16);
    EXPECT_EQ(q.quantize(1.03), 16);   // 16.48 -> 16
    EXPECT_EQ(q.quantize(1.035), 17);  // 16.56 -> 17
    EXPECT_EQ(q.quantize(-1.035), -17);
}

TEST(Format, QuantizeSaturates)
{
    Format q(4, 4);
    EXPECT_EQ(q.quantize(1000.0), q.maxRaw());
    EXPECT_EQ(q.quantize(-1000.0), q.minRaw());
    EXPECT_DOUBLE_EQ(q.toDouble(q.maxRaw()), 16.0 - 1.0 / 16.0);
}

TEST(Format, QuantizeSaturatesExtremeMagnitudes)
{
    // Regression: quantize() used to call llround on the scaled value
    // before saturating. For inputs whose scaled value exceeds int64's
    // range, llround is undefined — on x86 it yields LLONG_MIN for
    // *both* signs, so +1e300 came back as minRaw(). The clamp must
    // happen before the rounding.
    Format q(8, 12);
    EXPECT_EQ(q.quantize(1e300), q.maxRaw());
    EXPECT_EQ(q.quantize(-1e300), q.minRaw());
    EXPECT_EQ(q.quantize(std::numeric_limits<double>::infinity()),
              q.maxRaw());
    EXPECT_EQ(q.quantize(-std::numeric_limits<double>::infinity()),
              q.minRaw());
}

TEST(Format, QuantizeRoundUpAtPositiveBoundarySaturates)
{
    // A value just below the positive limit that rounds *up* across it
    // must land exactly on maxRaw(), not overflow past it.
    Format q(4, 4); // maxRaw 255, max value 15.9375
    const double just_above = (q.maxRaw() + 0.6) / q.scale();
    EXPECT_EQ(q.quantize(just_above), q.maxRaw());
    const double just_below = (q.minRaw() - 0.6) / q.scale();
    EXPECT_EQ(q.quantize(just_below), q.minRaw());
}

TEST(Format, RoundTripErrorBounded)
{
    Format q(8, 10);
    for (double v : {0.0, 0.37, -12.5, 200.123, -255.9}) {
        double rt = q.roundTrip(v);
        EXPECT_LE(std::abs(rt - v), 0.5 / q.scale() + 1e-12) << v;
    }
}

TEST(Format, StrFormatsQNotation)
{
    EXPECT_EQ(Format(11, 12).str(), "Q11.12");
}

TEST(PipelineFormatsTest, PaperWidths)
{
    PipelineFormats f = PipelineFormats::forFraction(12);
    EXPECT_EQ(f.input.intBits, 8);
    EXPECT_EQ(f.dct.intBits, 11);
    EXPECT_EQ(f.haar.intBits, 13);
    EXPECT_EQ(f.invHaar.intBits, 15);
    EXPECT_EQ(f.dct.fracBits, 12);
    EXPECT_THROW(PipelineFormats::forFraction(0), std::invalid_argument);
    EXPECT_THROW(PipelineFormats::forFraction(40), std::invalid_argument);
}

TEST(FixedScalar, AddSubExact)
{
    Format q(8, 8);
    Fixed a = Fixed::fromDouble(1.5, q);
    Fixed b = Fixed::fromDouble(2.25, q);
    EXPECT_DOUBLE_EQ(a.add(b, q).toDouble(), 3.75);
    EXPECT_DOUBLE_EQ(a.sub(b, q).toDouble(), -0.75);
}

TEST(FixedScalar, MulRoundsProduct)
{
    Format q(8, 8);
    Fixed a = Fixed::fromDouble(1.5, q);
    Fixed b = Fixed::fromDouble(2.5, q);
    EXPECT_DOUBLE_EQ(a.mul(b, q).toDouble(), 3.75);
    // 0.00390625 * 0.00390625 = 1.5e-5 rounds to 0 at 8 frac bits.
    Fixed eps = Fixed(1, q);
    EXPECT_DOUBLE_EQ(eps.mul(eps, q).toDouble(), 0.0);
}

TEST(FixedScalar, AddSaturatesAtFormatLimit)
{
    Format q(4, 4);
    Fixed big = Fixed::fromDouble(15.9, q);
    Fixed sum = big.add(big, q);
    EXPECT_DOUBLE_EQ(sum.toDouble(), q.toDouble(q.maxRaw()));
}

TEST(FixedScalar, WiderOutputFormatAvoidsSaturation)
{
    Format narrow(4, 4), wide(8, 4);
    Fixed big = Fixed::fromDouble(15.0, narrow);
    Fixed sum = big.add(big, wide);
    EXPECT_DOUBLE_EQ(sum.toDouble(), 30.0);
}

TEST(FixedScalar, MixedFractionThrows)
{
    Fixed a = Fixed::fromDouble(1.0, Format(8, 8));
    Fixed b = Fixed::fromDouble(1.0, Format(8, 10));
    EXPECT_THROW(a.add(b, Format(8, 8)), std::invalid_argument);
    EXPECT_THROW(a.mul(b, Format(8, 8)), std::invalid_argument);
}

TEST(FixedScalar, MulZeroFraction)
{
    Format q(12, 0);
    Fixed a = Fixed::fromDouble(7, q);
    Fixed b = Fixed::fromDouble(6, q);
    EXPECT_DOUBLE_EQ(a.mul(b, q).toDouble(), 42.0);
}

TEST(Quantize, InPlaceMatchesScalar)
{
    Format q(8, 6);
    std::vector<float> v = {0.117f, -3.864f, 100.49f, -200.51f};
    std::vector<float> expected;
    for (float x : v)
        expected.push_back(static_cast<float>(q.roundTrip(x)));
    ideal::fixed::quantizeInPlace(std::span<float>(v), q);
    EXPECT_EQ(v, expected);
}

TEST(Quantize, ImageQuantizationErrorShrinksWithPrecision)
{
    ideal::image::ImageF im(16, 16, 1);
    ideal::image::SplitMix64 rng(3);
    for (float &v : im.raw())
        v = rng.uniform(0.0f, 255.0f);
    auto err = [&](int frac) {
        auto q = ideal::fixed::quantizeImage(im, Format(8, frac));
        return ideal::image::mse(im, q);
    };
    EXPECT_GT(err(4), err(8));
    EXPECT_GT(err(8), err(12));
}

TEST(Quantize, MseMatchesDefinition)
{
    Format q(8, 2);
    std::vector<float> v = {0.1f, 0.4f};
    // grid 0.25: 0.1 -> 0 (err 0.1); 0.4 -> 0.5 (err 0.1)
    double mse = ideal::fixed::quantizationMse(
        std::span<const float>(v.data(), v.size()), q);
    EXPECT_NEAR(mse, (0.01 + 0.01) / 2.0, 1e-9);
}
