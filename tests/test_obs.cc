/**
 * @file
 * Unit tests for the observability layer (DESIGN.md §8): kind-correct
 * metric merging, exact multi-threaded counter accumulation in the
 * sharded registry, and Chrome-trace emission that parses back with
 * balanced, properly nested B/E span pairs per thread.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

using namespace ideal::obs;

// ---------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------

TEST(MetricsSnapshot, CounterAccumulates)
{
    MetricsSnapshot s;
    EXPECT_FALSE(s.has("x"));
    EXPECT_EQ(s.value("x"), 0.0);
    s.add("x", 2.0);
    s.add("x", 3.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_EQ(s.value("x"), 5.0);
    EXPECT_EQ(s.kind("x"), MetricKind::Counter);
}

TEST(MetricsSnapshot, GaugeLastWriteWins)
{
    MetricsSnapshot s;
    s.set("level", 7.0);
    s.set("level", 3.0);
    EXPECT_EQ(s.value("level"), 3.0);
    EXPECT_EQ(s.kind("level"), MetricKind::Gauge);
}

TEST(MetricsSnapshot, MaxKeepsHighWaterMark)
{
    MetricsSnapshot s;
    s.setMax("peak", 5.0);
    s.setMax("peak", 2.0);
    EXPECT_EQ(s.value("peak"), 5.0);
    s.setMax("peak", 9.0);
    EXPECT_EQ(s.value("peak"), 9.0);
    EXPECT_EQ(s.kind("peak"), MetricKind::Max);
}

TEST(MetricsSnapshot, MergeIsKindCorrect)
{
    MetricsSnapshot a;
    a.add("events", 10.0);
    a.set("level", 1.0);
    a.setMax("peak", 4.0);

    MetricsSnapshot b;
    b.add("events", 5.0);
    b.set("level", 2.0);
    b.setMax("peak", 3.0);

    a.merge(b);
    EXPECT_EQ(a.value("events"), 15.0); // counters sum
    EXPECT_EQ(a.value("level"), 2.0);   // gauges overwrite
    EXPECT_EQ(a.value("peak"), 4.0);    // max keeps the maximum
}

// Regression for the bug this layer replaces: sim::StatsRegistry::merge
// summed every entry, so a gauge written with set() doubled each time
// two results were combined (e.g. dram.avgLatency).
TEST(MetricsSnapshot, RepeatedMergeDoesNotDoubleGauges)
{
    MetricsSnapshot total;
    MetricsSnapshot run;
    run.set("avgLatency", 42.0);
    total.merge(run);
    total.merge(run);
    total.merge(run);
    EXPECT_EQ(total.value("avgLatency"), 42.0);
}

TEST(MetricsSnapshot, MergePrefixNestsNames)
{
    MetricsSnapshot inner;
    inner.add("ticks", 100.0);
    MetricsSnapshot outer;
    outer.merge(inner, "sim.");
    EXPECT_TRUE(outer.has("sim.ticks"));
    EXPECT_EQ(outer.value("sim.ticks"), 100.0);
}

TEST(MetricsSnapshot, DumpIsSortedWithKinds)
{
    MetricsSnapshot s;
    s.set("b", 2.0);
    s.add("a", 1.0);
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "a 1 counter\nb 2 gauge\n");
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, ExactTotalsUnderEightThreads)
{
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            for (int i = 0; i < kIters; ++i)
                reg.add("events", 1.0);
            reg.setMax("peak", static_cast<double>(t));
        });
    }
    for (auto &th : threads)
        th.join();

    const MetricsSnapshot snap = reg.snapshot();
    // Integer-valued doubles accumulate exactly in this range, so the
    // total must be exact — not approximately — correct.
    EXPECT_EQ(snap.value("events"), static_cast<double>(kThreads * kIters));
    EXPECT_EQ(snap.kind("events"), MetricKind::Counter);
    EXPECT_EQ(snap.value("peak"), static_cast<double>(kThreads - 1));
}

TEST(MetricsRegistry, MergeSnapshotIsKindCorrect)
{
    MetricsRegistry reg;
    MetricsSnapshot run;
    run.add("reads", 8.0);
    run.set("avgLatency", 12.0);
    reg.merge(run, "sim.");
    reg.merge(run, "sim.");
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("sim.reads"), 16.0);      // counter summed
    EXPECT_EQ(snap.value("sim.avgLatency"), 12.0); // gauge not doubled
}

TEST(MetricsRegistry, ResetClears)
{
    MetricsRegistry reg;
    reg.add("x", 1.0);
    reg.reset();
    EXPECT_TRUE(reg.snapshot().empty());
}

// ---------------------------------------------------------------------
// Resident-bytes ledger (DESIGN §15): large allocators charge the
// process-wide ledger, whose high-water mark surfaces as the
// `mem.peakResidentBytes` Max gauge.
// ---------------------------------------------------------------------

TEST(ResidentLedger, PeakIsMonotoneUnderChargeAndRelease)
{
    const int64_t base = residentBytes();
    MetricsRegistry::global().reset();
    chargeResidentBytes(1000);
    chargeResidentBytes(500);
    EXPECT_EQ(residentBytes(), base + 1500);
    chargeResidentBytes(-1200); // release: resident drops, peak holds
    EXPECT_EQ(residentBytes(), base + 300);
    const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
    EXPECT_GE(snap.value("mem.peakResidentBytes"),
              static_cast<double>(base + 1500));
    EXPECT_EQ(snap.kind("mem.peakResidentBytes"), MetricKind::Max);
    chargeResidentBytes(-300); // restore the ledger for other tests
    EXPECT_EQ(residentBytes(), base);
    MetricsRegistry::global().reset();
}

TEST(ResidentLedger, PeakGaugesMergeKindCorrectly)
{
    // mem.peak* names must merge as Max, not sum — a service-level
    // rollup across runs keeps the largest footprint, and repeated
    // merges of the same snapshot must not inflate it.
    MetricsSnapshot total;
    MetricsSnapshot run;
    run.setMax("mem.peakResidentBytes", 4096.0);
    run.setMax("mem.peakBandBytes", 1024.0);
    total.merge(run);
    total.merge(run);
    MetricsSnapshot bigger;
    bigger.setMax("mem.peakBandBytes", 2048.0);
    total.merge(bigger);
    EXPECT_EQ(total.value("mem.peakResidentBytes"), 4096.0);
    EXPECT_EQ(total.value("mem.peakBandBytes"), 2048.0);
    EXPECT_EQ(total.kind("mem.peakBandBytes"), MetricKind::Max);
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

namespace {

/** One parsed-back trace event (subset of fields the tests check). */
struct ParsedEvent
{
    std::string name;
    std::string cat;
    char phase = '?';
    int tid = -1;
    double ts = -1.0;
    bool hasArgs = false;
};

/** Extract "key":"value" from one JSON object line. */
std::string
jsonStringField(const std::string &line, const std::string &key)
{
    const std::string marker = "\"" + key + "\":\"";
    const size_t at = line.find(marker);
    if (at == std::string::npos)
        return "";
    const size_t begin = at + marker.size();
    const size_t end = line.find('"', begin);
    return line.substr(begin, end - begin);
}

/** Extract "key":<number> from one JSON object line. */
double
jsonNumberField(const std::string &line, const std::string &key)
{
    const std::string marker = "\"" + key + "\":";
    const size_t at = line.find(marker);
    if (at == std::string::npos)
        return -1.0;
    return std::stod(line.substr(at + marker.size()));
}

/**
 * Minimal parse-back of the tracer's output: the writer emits exactly
 * one event object per line between the traceEvents brackets, so a
 * line-oriented field extractor is a faithful reader of this format
 * (scripts/check_trace.py does the full-JSON version).
 */
std::vector<ParsedEvent>
parseTrace(const std::string &path, std::string *header,
           std::string *footer)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::vector<ParsedEvent> events;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("{\"traceEvents\":[", 0) == 0) {
            *header = line;
            continue;
        }
        if (line.rfind("],", 0) == 0) {
            *footer = line;
            continue;
        }
        if (line.rfind("{\"name\"", 0) != 0)
            continue;
        ParsedEvent e;
        e.name = jsonStringField(line, "name");
        e.cat = jsonStringField(line, "cat");
        const std::string ph = jsonStringField(line, "ph");
        e.phase = ph.empty() ? '?' : ph[0];
        e.tid = static_cast<int>(jsonNumberField(line, "tid"));
        e.ts = jsonNumberField(line, "ts");
        e.hasArgs = line.find("\"args\":{") != std::string::npos;
        events.push_back(e);
    }
    return events;
}

std::string
tempTracePath(const char *name)
{
    return testing::TempDir() + name;
}

} // namespace

TEST(Tracer, DisabledTracerRecordsNothing)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    {
        Span span(tracer, "work", "test");
        tracer.counter("gauge", 1.0);
        tracer.instant("mark", "test");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Tracer, NullNameSpanIsInert)
{
    Tracer tracer;
    tracer.start(tempTracePath("obs_inert.json"));
    {
        Span span(tracer, nullptr, "test");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    tracer.stop();
    std::remove(tempTracePath("obs_inert.json").c_str());
}

TEST(Tracer, EmitsBalancedNestedSpansAcrossThreads)
{
    const std::string path = tempTracePath("obs_trace.json");
    Tracer tracer;
    tracer.start(path);
    EXPECT_TRUE(tracer.enabled());
    EXPECT_EQ(tracer.path(), path);

    {
        Span outer(tracer, "outer", "test");
        Span inner(tracer, "inner", "test");
        tracer.counter("occupancy", 3.0);
        tracer.instant("mark", "test");
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&tracer] {
            for (int i = 0; i < 8; ++i) {
                Span a(tracer, "worker", "test");
                Span b(tracer, "nested", "test");
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // 2 B/E pairs on the main thread + 4 threads * 8 iterations * 2
    // pairs, plus one counter and one instant.
    EXPECT_EQ(tracer.eventCount(), 2u * 2 + 4 * 8 * 2 * 2 + 2);
    tracer.stop();
    EXPECT_FALSE(tracer.enabled());
    EXPECT_TRUE(tracer.path().empty());

    std::string header;
    std::string footer;
    const std::vector<ParsedEvent> events =
        parseTrace(path, &header, &footer);
    EXPECT_EQ(header, "{\"traceEvents\":[");
    EXPECT_EQ(footer, "],\"displayTimeUnit\":\"ms\"}");
    ASSERT_EQ(events.size(), 2u * 2 + 4 * 8 * 2 * 2 + 2);

    // Per-tid B/E events must nest like parentheses with matching
    // names; RAII spans cannot legally interleave on one thread.
    std::map<int, std::vector<std::string>> stacks;
    for (const ParsedEvent &e : events) {
        EXPECT_GE(e.ts, 0.0);
        EXPECT_FALSE(e.name.empty());
        switch (e.phase) {
          case 'B':
            stacks[e.tid].push_back(e.name);
            break;
          case 'E': {
            auto &stack = stacks[e.tid];
            ASSERT_FALSE(stack.empty())
                << "'E' " << e.name << " with no open span on tid "
                << e.tid;
            EXPECT_EQ(stack.back(), e.name);
            stack.pop_back();
            break;
          }
          case 'C':
            EXPECT_TRUE(e.hasArgs)
                << "counter event without args value";
            break;
          case 'I':
            break;
          default:
            FAIL() << "unexpected phase " << e.phase;
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;

    std::remove(path.c_str());
}

TEST(Tracer, StopFlushesAndSecondStartReplacesSink)
{
    const std::string first = tempTracePath("obs_first.json");
    const std::string second = tempTracePath("obs_second.json");
    Tracer tracer;
    tracer.start(first);
    {
        Span span(tracer, "one", "test");
    }
    tracer.start(second); // flushes "one" into first, resets epoch
    {
        Span span(tracer, "two", "test");
    }
    tracer.stop();

    std::string header;
    std::string footer;
    const auto events_first = parseTrace(first, &header, &footer);
    ASSERT_EQ(events_first.size(), 2u);
    EXPECT_EQ(events_first[0].name, "one");
    const auto events_second = parseTrace(second, &header, &footer);
    ASSERT_EQ(events_second.size(), 2u);
    EXPECT_EQ(events_second[0].name, "two");

    std::remove(first.c_str());
    std::remove(second.c_str());
}
