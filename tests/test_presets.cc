/**
 * @file
 * Tests for the scene-adaptive presets (src/bm3d/presets.*): the
 * block-mean statistic, the classifier's calibration against the
 * synthetic scene generators, preset application rules, and the
 * end-to-end pickPreset -> applyPreset -> denoise path.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "bm3d/bm3d.h"
#include "bm3d/presets.h"
#include "image/metrics.h"
#include "image/noise.h"
#include "image/synthetic.h"

using namespace ideal;
using bm3d::Bm3dConfig;
using bm3d::ScenePreset;

namespace {

image::ImageF
noisyScene(image::SceneKind kind, uint64_t seed, int size = 256)
{
    auto clean = image::makeScene(kind, size, size, 1, seed);
    return image::addGaussianNoise(clean, 25.0f, seed + 1);
}

} // namespace

TEST(Presets, NameRoundTrip)
{
    for (ScenePreset p :
         {ScenePreset::Nature, ScenePreset::Street, ScenePreset::Texture})
        EXPECT_EQ(bm3d::presetFromString(bm3d::toString(p)), p);
    EXPECT_THROW(bm3d::presetFromString("swamp"), std::invalid_argument);
}

TEST(Presets, StatsSeparateContentFromNoise)
{
    // Block averaging must push the sigma=25 noise floor below the
    // edge-level threshold: a noisy uniform field reads as edge-free.
    auto uniform = noisyScene(image::SceneKind::Uniform, 100);
    auto stats = bm3d::measureSceneStats(uniform);
    EXPECT_LT(stats.edgeFraction, 0.1f);
    EXPECT_LT(stats.blockVariance, 200.0f);

    auto texture = noisyScene(image::SceneKind::Texture, 101);
    EXPECT_GT(bm3d::measureSceneStats(texture).edgeFraction,
              stats.edgeFraction);
}

TEST(Presets, ClassifierMatchesSceneGenerators)
{
    // The classifier is calibrated on the generators at 256^2 /
    // sigma=25: each content class must land in its own preset across
    // seeds. Uniform deliberately lands in Nature (the aggressive
    // preset is exactly right for flat content).
    const struct
    {
        image::SceneKind kind;
        ScenePreset expected;
    } cases[] = {
        {image::SceneKind::Nature, ScenePreset::Nature},
        {image::SceneKind::Street, ScenePreset::Street},
        {image::SceneKind::Texture, ScenePreset::Texture},
        {image::SceneKind::Uniform, ScenePreset::Nature},
    };
    for (const auto &c : cases) {
        for (uint64_t seed : {1u, 2u, 3u}) {
            auto noisy = noisyScene(c.kind, 110 + seed * 7);
            EXPECT_EQ(bm3d::pickPreset(noisy), c.expected)
                << image::toString(c.kind) << " seed=" << seed;
        }
    }

    // Detail's block variance straddles the Nature/Street boundary
    // across seeds; either bucket is a sound operating point for it,
    // but it must never read as Texture (its edge field is broadband,
    // not structured).
    for (uint64_t seed : {1u, 2u, 3u}) {
        auto noisy = noisyScene(image::SceneKind::Detail, 110 + seed * 7);
        EXPECT_NE(bm3d::pickPreset(noisy), ScenePreset::Texture)
            << "detail seed=" << seed;
    }
}

TEST(Presets, ClassifierIsNoiseRobust)
{
    // Same decision on clean and noisy versions of the same scene.
    for (image::SceneKind kind :
         {image::SceneKind::Nature, image::SceneKind::Street,
          image::SceneKind::Texture}) {
        auto clean = image::makeScene(kind, 256, 256, 1, 130);
        auto noisy = image::addGaussianNoise(clean, 25.0f, 131);
        EXPECT_EQ(bm3d::pickPreset(clean), bm3d::pickPreset(noisy))
            << image::toString(kind);
    }
}

TEST(Presets, AppliedConfigsValidate)
{
    Bm3dConfig base;
    base.sigma = 25.0f;
    for (ScenePreset p :
         {ScenePreset::Nature, ScenePreset::Street, ScenePreset::Texture}) {
        Bm3dConfig cfg = bm3d::applyPreset(base, p);
        EXPECT_NO_THROW(cfg.validate()) << bm3d::toString(p);
    }
}

TEST(Presets, ApplyKeepsBaseParameters)
{
    Bm3dConfig base;
    base.sigma = 17.0f;
    base.numThreads = 3;
    base.refStride = 2;
    Bm3dConfig cfg = bm3d::applyPreset(base, ScenePreset::Street);
    EXPECT_EQ(cfg.sigma, 17.0f);
    EXPECT_EQ(cfg.numThreads, 3);
    EXPECT_EQ(cfg.refStride, 2);
    // ...while the preset's operating point is installed.
    EXPECT_EQ(cfg.searchWindow1, 41);
    EXPECT_TRUE(cfg.variant.coarseToFine);
    EXPECT_FALSE(cfg.mr.enabled);
}

TEST(Presets, Int16OnlyOnSupportedPatchSize)
{
    Bm3dConfig base;
    base.sigma = 25.0f;
    EXPECT_EQ(bm3d::applyPreset(base, ScenePreset::Nature).precision,
              bm3d::Precision::Int16);
    base.patchSize = 8;
    EXPECT_EQ(bm3d::applyPreset(base, ScenePreset::Nature).precision,
              bm3d::Precision::Float32);
    // Texture is quality-first: float even on the 4x4 datapath.
    base.patchSize = 4;
    EXPECT_EQ(bm3d::applyPreset(base, ScenePreset::Texture).precision,
              bm3d::Precision::Float32);
}

TEST(Presets, EndToEndDenoisesWithPickedPreset)
{
    auto clean = image::makeScene(image::SceneKind::Nature, 64, 64, 1, 140);
    auto noisy = image::addGaussianNoise(clean, 25.0f, 141);

    Bm3dConfig base;
    base.sigma = 25.0f;
    const ScenePreset preset = bm3d::pickPreset(noisy);
    EXPECT_EQ(preset, ScenePreset::Nature);
    Bm3dConfig cfg = bm3d::applyPreset(base, preset);
    cfg.validate();

    auto result = bm3d::Bm3d(cfg).denoise(noisy);
    EXPECT_GT(image::psnrDb(clean, result.output),
              image::psnrDb(clean, noisy) + 3.0);
    // The nature preset's coarse grid must actually skip work.
    EXPECT_GT(result.profile.adaptive().refsSkipped, 0u);
}
