/**
 * @file
 * Tests for the spatio-temporal (V-BM3D-style) video denoiser:
 * configuration validation, temporal stacking behaviour, quality
 * gains from temporal matches, and MR interaction.
 */

#include <gtest/gtest.h>

#include "bm3d/video.h"
#include "image/metrics.h"
#include "image/noise.h"
#include "image/synthetic.h"

using namespace ideal;
using bm3d::VideoBm3d;
using bm3d::VideoConfig;

namespace {

/** A static scene observed over several frames with fresh noise. */
std::vector<image::ImageF>
staticSequence(int frames, int size, float sigma, uint64_t seed,
               image::ImageF *clean_out = nullptr)
{
    image::ImageF clean =
        image::makeScene(image::SceneKind::Nature, size, size, 1, seed);
    if (clean_out)
        *clean_out = clean;
    std::vector<image::ImageF> seq;
    for (int f = 0; f < frames; ++f)
        seq.push_back(image::addGaussianNoise(clean, sigma, seed + 7 + f));
    return seq;
}

/** A horizontally panning scene (global motion of `step` px/frame). */
std::vector<image::ImageF>
panningSequence(int frames, int size, int step, float sigma,
                uint64_t seed)
{
    image::ImageF wide = image::makeScene(
        image::SceneKind::Street, size + frames * step, size, 1, seed);
    std::vector<image::ImageF> seq;
    for (int f = 0; f < frames; ++f) {
        image::ImageF frame = wide.crop(f * step, 0, size, size);
        seq.push_back(image::addGaussianNoise(frame, sigma, seed + f));
    }
    return seq;
}

VideoConfig
smallVideoConfig(float sigma = 25.0f)
{
    VideoConfig cfg;
    cfg.frame.sigma = sigma;
    cfg.frame.searchWindow1 = 13;
    cfg.temporalRadius = 1;
    cfg.predictiveWindow = 7;
    return cfg;
}

} // namespace

TEST(VideoConfig, Validation)
{
    VideoConfig cfg = smallVideoConfig();
    EXPECT_NO_THROW(cfg.validate());
    cfg.temporalRadius = 5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = smallVideoConfig();
    cfg.predictiveWindow = 8; // even
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = smallVideoConfig();
    cfg.frame.sigma = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Video, RejectsBadSequences)
{
    VideoBm3d denoiser(smallVideoConfig());
    EXPECT_THROW(denoiser.denoise({}), std::invalid_argument);
    std::vector<image::ImageF> mixed = {image::ImageF(32, 32, 1),
                                        image::ImageF(16, 32, 1)};
    EXPECT_THROW(denoiser.denoise(mixed), std::invalid_argument);
}

TEST(Video, DenoisesEveryFrame)
{
    image::ImageF clean;
    auto seq = staticSequence(3, 40, 25.0f, 51, &clean);
    VideoBm3d denoiser(smallVideoConfig());
    auto result = denoiser.denoise(seq);
    ASSERT_EQ(result.frames.size(), 3u);
    for (const auto &frame : result.frames)
        EXPECT_GT(image::psnrDb(clean, frame),
                  image::psnrDb(clean, seq[0]) + 3.0);
}

TEST(Video, TemporalMatchesUsed)
{
    auto seq = staticSequence(3, 40, 25.0f, 52);
    VideoBm3d denoiser(smallVideoConfig());
    auto result = denoiser.denoise(seq);
    // On a static scene, temporal candidates are as good as spatial
    // ones and should take a visible share of the stacks.
    EXPECT_GT(result.temporalShare, 0.1);
}

TEST(Video, TemporalRadiusZeroMatchesSpatialOnly)
{
    auto seq = staticSequence(2, 32, 25.0f, 53);
    VideoConfig cfg = smallVideoConfig();
    cfg.temporalRadius = 0;
    VideoBm3d denoiser(cfg);
    auto result = denoiser.denoise(seq);
    EXPECT_EQ(result.temporalShare, 0.0);
}

TEST(Video, TemporalHelpsOnStaticScene)
{
    image::ImageF clean;
    auto seq = staticSequence(3, 48, 25.0f, 54, &clean);

    VideoConfig spatial_only = smallVideoConfig();
    spatial_only.temporalRadius = 0;
    auto r_spatial = VideoBm3d(spatial_only).denoise(seq);

    auto r_temporal = VideoBm3d(smallVideoConfig()).denoise(seq);

    // Independent noise across frames: temporal stacking averages it.
    double psnr_s = image::psnrDb(clean, r_spatial.frames[1]);
    double psnr_t = image::psnrDb(clean, r_temporal.frames[1]);
    EXPECT_GT(psnr_t, psnr_s - 0.1);
}

TEST(Video, HandlesGlobalMotion)
{
    auto seq = panningSequence(3, 48, 2, 20.0f, 55);
    VideoConfig cfg = smallVideoConfig(20.0f);
    VideoBm3d denoiser(cfg);
    auto result = denoiser.denoise(seq);
    // Predictive search should still find temporal matches under a
    // 2 px/frame pan (within the 7 px predictive window).
    EXPECT_GT(result.temporalShare, 0.05);
}

TEST(Video, MrReducesSearchInVideoToo)
{
    auto seq = staticSequence(2, 40, 10.0f, 56);
    VideoConfig cfg = smallVideoConfig(10.0f);
    cfg.frame.mr.enabled = true;
    cfg.frame.mr.k = 0.5;
    auto with_mr = VideoBm3d(cfg).denoise(seq);
    EXPECT_GT(with_mr.profile.mr().hitRate1(), 0.3);

    cfg.frame.mr.enabled = false;
    auto without = VideoBm3d(cfg).denoise(seq);
    EXPECT_LT(with_mr.profile.mr().bm1Candidates,
              without.profile.mr().bm1Candidates);
}

TEST(Video, MultiChannelSequences)
{
    image::ImageF clean =
        image::makeScene(image::SceneKind::Texture, 32, 32, 3, 57);
    std::vector<image::ImageF> seq;
    for (int f = 0; f < 2; ++f)
        seq.push_back(image::addGaussianNoise(clean, 25.0f, 58 + f));
    VideoBm3d denoiser(smallVideoConfig());
    auto result = denoiser.denoise(seq);
    EXPECT_EQ(result.frames[0].channels(), 3);
    EXPECT_GT(image::psnrDb(clean, result.frames[0]),
              image::psnrDb(clean, seq[0]) + 2.0);
}

TEST(Video, ProfileAccountsMatchingAndDenoising)
{
    auto seq = staticSequence(2, 32, 25.0f, 59);
    VideoBm3d denoiser(smallVideoConfig());
    auto result = denoiser.denoise(seq);
    EXPECT_GT(result.profile.seconds(bm3d::Step::Dct1), 0.0);
    EXPECT_GT(result.profile.seconds(bm3d::Step::Bm1), 0.0);
    EXPECT_GT(result.profile.seconds(bm3d::Step::Bm2), 0.0); // temporal
    EXPECT_GT(result.profile.seconds(bm3d::Step::De1), 0.0);
}
