/**
 * @file
 * Unit tests for the image substrate: container semantics, I/O
 * round-trips, color transforms, synthetic scenes, noise, and metrics.
 */

#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "image/image.h"
#include "image/io.h"
#include "image/metrics.h"
#include "image/noise.h"
#include "image/synthetic.h"

namespace img = ideal::image;

namespace {

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

} // namespace

TEST(Image, ConstructZeroInitialized)
{
    img::ImageF im(7, 5, 3);
    EXPECT_EQ(im.width(), 7);
    EXPECT_EQ(im.height(), 5);
    EXPECT_EQ(im.channels(), 3);
    EXPECT_EQ(im.size(), 7u * 5u * 3u);
    for (float v : im.raw())
        EXPECT_EQ(v, 0.0f);
}

TEST(Image, InvalidDimensionsThrow)
{
    EXPECT_THROW(img::ImageF(0, 5, 1), std::invalid_argument);
    EXPECT_THROW(img::ImageF(5, -1, 1), std::invalid_argument);
    EXPECT_THROW(img::ImageF(5, 5, 0), std::invalid_argument);
}

TEST(Image, PlanarLayout)
{
    img::ImageF im(4, 3, 2);
    im.at(2, 1, 1) = 42.0f;
    // Plane 1 starts after plane 0's 12 samples.
    EXPECT_EQ(im.raw()[12 + 1 * 4 + 2], 42.0f);
    EXPECT_EQ(im.plane(1)[1 * 4 + 2], 42.0f);
}

TEST(Image, AtClampedEdges)
{
    img::ImageF im(3, 3, 1);
    im.at(0, 0) = 1.0f;
    im.at(2, 2) = 9.0f;
    EXPECT_EQ(im.atClamped(-5, -5), 1.0f);
    EXPECT_EQ(im.atClamped(10, 10), 9.0f);
}

TEST(Image, CropExtractsWindow)
{
    img::ImageF im(6, 6, 1);
    for (int y = 0; y < 6; ++y)
        for (int x = 0; x < 6; ++x)
            im.at(x, y) = static_cast<float>(10 * y + x);
    img::ImageF c = im.crop(2, 3, 3, 2);
    EXPECT_EQ(c.width(), 3);
    EXPECT_EQ(c.height(), 2);
    EXPECT_EQ(c.at(0, 0), 32.0f);
    EXPECT_EQ(c.at(2, 1), 44.0f);
}

TEST(Image, CropOutOfRangeThrows)
{
    img::ImageF im(6, 6, 1);
    EXPECT_THROW(im.crop(4, 4, 3, 3), std::out_of_range);
    EXPECT_THROW(im.crop(-1, 0, 2, 2), std::out_of_range);
}

TEST(Image, ExtractInsertPlaneRoundTrip)
{
    img::ImageF im(4, 4, 3);
    im.at(1, 2, 2) = 7.0f;
    img::ImageF p = im.extractPlane(2);
    EXPECT_EQ(p.channels(), 1);
    EXPECT_EQ(p.at(1, 2), 7.0f);
    p.at(0, 0) = 3.0f;
    im.insertPlane(2, p);
    EXPECT_EQ(im.at(0, 0, 2), 3.0f);
}

TEST(Image, InsertPlaneShapeMismatchThrows)
{
    img::ImageF im(4, 4, 3);
    img::ImageF wrong(5, 4, 1);
    EXPECT_THROW(im.insertPlane(0, wrong), std::invalid_argument);
}

TEST(Image, U8FloatConversionClampsAndRounds)
{
    img::ImageF f(2, 1, 1);
    f.at(0, 0) = -3.2f;
    f.at(1, 0) = 270.0f;
    img::ImageU8 u = img::toU8(f);
    EXPECT_EQ(u.at(0, 0), 0);
    EXPECT_EQ(u.at(1, 0), 255);
    f.at(0, 0) = 99.6f;
    EXPECT_EQ(img::toU8(f).at(0, 0), 100);
}

TEST(Image, OpponentColorRoundTrip)
{
    img::ImageF rgb = img::makeScene(img::SceneKind::Nature, 16, 16, 3, 7);
    img::ImageF opp = img::rgbToOpponent(rgb);
    img::ImageF back = img::opponentToRgb(opp);
    EXPECT_LT(img::maxAbsDiff(rgb, back), 1e-3);
}

TEST(ImageIo, PgmRoundTrip)
{
    img::ImageU8 im(5, 4, 1);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 5; ++x)
            im.at(x, y) = static_cast<uint8_t>(13 * y + x);
    const std::string path = tempPath("ideal_test.pgm");
    img::writePgm(path, im);
    img::ImageU8 rt = img::readNetpbm(path);
    ASSERT_EQ(rt.width(), 5);
    ASSERT_EQ(rt.height(), 4);
    EXPECT_EQ(rt.raw(), im.raw());
    std::remove(path.c_str());
}

TEST(ImageIo, PpmRoundTrip)
{
    img::ImageU8 im = img::toU8(
        img::makeScene(img::SceneKind::Street, 8, 6, 3, 11));
    const std::string path = tempPath("ideal_test.ppm");
    img::writeNetpbm(path, im);
    img::ImageU8 rt = img::readNetpbm(path);
    EXPECT_EQ(rt.channels(), 3);
    EXPECT_EQ(rt.raw(), im.raw());
    std::remove(path.c_str());
}

TEST(ImageIo, RawFloatRoundTrip)
{
    img::ImageF im = img::makeScene(img::SceneKind::Texture, 9, 7, 3, 3);
    const std::string path = tempPath("ideal_test.iraw");
    img::writeRawFloat(path, im);
    img::ImageF rt = img::readRawFloat(path);
    EXPECT_EQ(rt.width(), 9);
    EXPECT_EQ(rt.channels(), 3);
    EXPECT_EQ(rt.raw(), im.raw());
    std::remove(path.c_str());
}

TEST(ImageIo, ReadMissingFileThrows)
{
    EXPECT_THROW(img::readNetpbm("/nonexistent/x.pgm"),
                 std::runtime_error);
    EXPECT_THROW(img::readRawFloat("/nonexistent/x.iraw"),
                 std::runtime_error);
}

TEST(Synthetic, Deterministic)
{
    img::ImageF a = img::makeScene(img::SceneKind::Nature, 32, 32, 1, 42);
    img::ImageF b = img::makeScene(img::SceneKind::Nature, 32, 32, 1, 42);
    EXPECT_EQ(a.raw(), b.raw());
    img::ImageF c = img::makeScene(img::SceneKind::Nature, 32, 32, 1, 43);
    EXPECT_NE(a.raw(), c.raw());
}

TEST(Synthetic, AllKindsInRange)
{
    for (auto kind : {img::SceneKind::Nature, img::SceneKind::Street,
                      img::SceneKind::Texture, img::SceneKind::Uniform,
                      img::SceneKind::Detail}) {
        img::ImageF im = img::makeScene(kind, 24, 24, 3, 5);
        for (float v : im.raw()) {
            EXPECT_GE(v, 0.0f) << img::toString(kind);
            EXPECT_LE(v, 255.0f) << img::toString(kind);
        }
    }
}

TEST(Synthetic, UniformIsFlat)
{
    img::ImageF im = img::makeScene(img::SceneKind::Uniform, 16, 16, 1, 9);
    for (float v : im.raw())
        EXPECT_EQ(v, im.raw()[0]);
}

TEST(Synthetic, KindNameRoundTrip)
{
    EXPECT_EQ(img::sceneKindFromString("street"), img::SceneKind::Street);
    EXPECT_STREQ(img::toString(img::SceneKind::Detail), "detail");
    EXPECT_THROW(img::sceneKindFromString("bogus"), std::invalid_argument);
}

TEST(Synthetic, EvaluationSetShape)
{
    auto set = img::makeEvaluationSet(16, 12, 3, 2);
    EXPECT_EQ(set.size(), 8u);
    for (const auto &im : set) {
        EXPECT_EQ(im.width(), 16);
        EXPECT_EQ(im.height(), 12);
    }
}

TEST(Noise, GaussianSigmaApproximatelyCorrect)
{
    img::ImageF clean(64, 64, 1);
    clean.fill(128.0f);
    img::ImageF noisy = img::addGaussianNoise(clean, 10.0f, 123);
    double sum = 0, sum2 = 0;
    for (float v : noisy.raw()) {
        sum += v - 128.0;
        sum2 += (v - 128.0) * (v - 128.0);
    }
    double n = static_cast<double>(noisy.size());
    double mean = sum / n;
    double stddev = std::sqrt(sum2 / n - mean * mean);
    EXPECT_NEAR(mean, 0.0, 0.5);
    EXPECT_NEAR(stddev, 10.0, 0.5);
}

TEST(Noise, Deterministic)
{
    img::ImageF clean = img::makeScene(img::SceneKind::Nature, 16, 16, 1, 1);
    img::ImageF a = img::addGaussianNoise(clean, 25.0f, 77);
    img::ImageF b = img::addGaussianNoise(clean, 25.0f, 77);
    EXPECT_EQ(a.raw(), b.raw());
}

TEST(Noise, SensorNoiseSignalDependent)
{
    img::ImageF dark(64, 64, 1), bright(64, 64, 1);
    dark.fill(20.0f);
    bright.fill(200.0f);
    auto spread = [](const img::ImageF &im, float mean) {
        double acc = 0;
        for (float v : im.raw())
            acc += (v - mean) * (v - mean);
        return std::sqrt(acc / static_cast<double>(im.size()));
    };
    img::ImageF nd = img::addSensorNoise(dark, 0.5f, 2.0f, 5);
    img::ImageF nb = img::addSensorNoise(bright, 0.5f, 2.0f, 5);
    EXPECT_GT(spread(nb, 200.0f), spread(nd, 20.0f));
}

TEST(Metrics, IdenticalImages)
{
    img::ImageF im = img::makeScene(img::SceneKind::Texture, 16, 16, 1, 2);
    EXPECT_EQ(img::mse(im, im), 0.0);
    EXPECT_EQ(img::snrDb(im, im), 300.0);
    EXPECT_EQ(img::psnrDb(im, im), 300.0);
    EXPECT_NEAR(img::ssim(im, im), 1.0, 1e-9);
}

TEST(Metrics, KnownMse)
{
    img::ImageF a(2, 2, 1), b(2, 2, 1);
    b.fill(2.0f);
    EXPECT_DOUBLE_EQ(img::mse(a, b), 4.0);
    // PSNR = 10 log10(255^2 / 4)
    EXPECT_NEAR(img::psnrDb(a, b), 10.0 * std::log10(255.0 * 255.0 / 4.0),
                1e-9);
}

TEST(Metrics, SnrDecreasesWithNoise)
{
    img::ImageF clean = img::makeScene(img::SceneKind::Nature, 32, 32, 1, 3);
    img::ImageF n1 = img::addGaussianNoise(clean, 5.0f, 1);
    img::ImageF n2 = img::addGaussianNoise(clean, 25.0f, 1);
    EXPECT_GT(img::snrDb(clean, n1), img::snrDb(clean, n2));
}

TEST(Metrics, ShapeMismatchThrows)
{
    img::ImageF a(4, 4, 1), b(5, 4, 1);
    EXPECT_THROW(img::mse(a, b), std::invalid_argument);
    EXPECT_THROW(img::snrDb(a, b), std::invalid_argument);
}

TEST(Metrics, SsimPenalizesStructureLoss)
{
    img::ImageF clean = img::makeScene(img::SceneKind::Street, 32, 32, 1, 4);
    img::ImageF noisy = img::addGaussianNoise(clean, 30.0f, 9);
    EXPECT_LT(img::ssim(clean, noisy), 0.95);
}
