/**
 * @file
 * Unit and integration tests for the BM3D denoiser: configuration
 * validation, denoising quality, Matches Reuse behaviour, fixed-point
 * mode, multithreading determinism, and the sharpening extension.
 *
 * Test images are small (the full-parameter algorithm is O(Ns^2) per
 * pixel by design); search windows are reduced where the full 49x49
 * window would dominate runtime without adding coverage.
 */

#include <limits>

#include <gtest/gtest.h>

#include "bm3d/bm3d.h"
#include "bm3d/patchfield.h"
#include "image/metrics.h"
#include "image/noise.h"
#include "image/synthetic.h"
#include "obs/metrics.h"
#include "simd/simd.h"
#include "transforms/dct.h"

using namespace ideal;
using bm3d::Bm3d;
using bm3d::Bm3dConfig;
using bm3d::Stage;
using bm3d::Step;

namespace {

Bm3dConfig
smallConfig(float sigma = 25.0f)
{
    Bm3dConfig cfg;
    cfg.sigma = sigma;
    cfg.searchWindow1 = 13;
    cfg.searchWindow2 = 11;
    return cfg;
}

struct TestScene
{
    image::ImageF clean;
    image::ImageF noisy;
};

TestScene
makeTestScene(image::SceneKind kind, int size, float sigma, uint64_t seed,
              int channels = 1)
{
    TestScene s;
    s.clean = image::makeScene(kind, size, size, channels, seed);
    s.noisy = image::addGaussianNoise(s.clean, sigma, seed + 1);
    return s;
}

} // namespace

TEST(Bm3dConfig, DefaultsAreValid)
{
    EXPECT_NO_THROW(Bm3dConfig{}.validate());
}

TEST(Bm3dConfig, RejectsBadParameters)
{
    auto check = [](auto mutate) {
        Bm3dConfig cfg;
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    check([](Bm3dConfig &c) { c.patchSize = 1; });
    check([](Bm3dConfig &c) { c.patchSize = 9; });
    check([](Bm3dConfig &c) { c.refStride = 0; });
    check([](Bm3dConfig &c) { c.searchWindow1 = 48; }); // even
    check([](Bm3dConfig &c) { c.searchWindow2 = 2; });  // < patch
    check([](Bm3dConfig &c) { c.maxMatches = 12; });    // not pow2
    check([](Bm3dConfig &c) { c.sigma = 0.0f; });
    check([](Bm3dConfig &c) { c.mr.enabled = true; c.mr.k = 0.0; });
    check([](Bm3dConfig &c) { c.mr.enabled = true; c.mr.k = 1.5; });
    check([](Bm3dConfig &c) { c.sharpenAlpha = 0.5f; });
    check([](Bm3dConfig &c) { c.tileGrain = 0; });
}

TEST(Bm3dConfig, NonPositiveThreadsMeansAuto)
{
    // 0 and negative thread counts select the hardware thread count
    // via the shared clamped helper instead of being rejected.
    Bm3dConfig cfg;
    cfg.numThreads = 0;
    EXPECT_NO_THROW(cfg.validate());
    cfg.numThreads = -3;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Bm3d, RejectsTooSmallImage)
{
    Bm3d denoiser(smallConfig());
    image::ImageF tiny(3, 3, 1);
    bm3d::Profile p;
    EXPECT_THROW(denoiser.runStage(Stage::HardThreshold, tiny, nullptr, p),
                 std::invalid_argument);
}

TEST(Bm3d, WienerStageRequiresBasic)
{
    Bm3d denoiser(smallConfig());
    image::ImageF im(16, 16, 1);
    bm3d::Profile p;
    EXPECT_THROW(denoiser.runStage(Stage::Wiener, im, nullptr, p),
                 std::invalid_argument);
}

TEST(Bm3d, ImprovesPsnrOnNoisyNature)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 48, 25.0f, 10);
    Bm3d denoiser(smallConfig());
    auto result = denoiser.denoise(scene.noisy);
    double noisy_psnr = image::psnrDb(scene.clean, scene.noisy);
    double basic_psnr = image::psnrDb(scene.clean, result.basic);
    double final_psnr = image::psnrDb(scene.clean, result.output);
    EXPECT_GT(basic_psnr, noisy_psnr + 3.0);
    EXPECT_GT(final_psnr, noisy_psnr + 3.0);
}

TEST(Bm3d, WienerStageRefinesBasicEstimate)
{
    auto scene = makeTestScene(image::SceneKind::Street, 48, 25.0f, 11);
    Bm3d denoiser(smallConfig());
    auto result = denoiser.denoise(scene.noisy);
    // The Wiener stage should stay within a small margin of the basic
    // estimate (on large images it typically improves it).
    EXPECT_GT(image::psnrDb(scene.clean, result.output),
              image::psnrDb(scene.clean, result.basic) - 0.5);
}

TEST(Bm3d, UniformImageDenoisesAlmostPerfectly)
{
    auto scene = makeTestScene(image::SceneKind::Uniform, 40, 25.0f, 12);
    Bm3d denoiser(smallConfig());
    auto result = denoiser.denoise(scene.noisy);
    // All patches match; the stack averaging should crush the noise.
    EXPECT_GT(image::psnrDb(scene.clean, result.output), 33.0);
}

TEST(Bm3d, ThreeChannelDenoising)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 25.0f, 13, 3);
    Bm3d denoiser(smallConfig());
    auto result = denoiser.denoise(scene.noisy);
    EXPECT_EQ(result.output.channels(), 3);
    EXPECT_GT(image::psnrDb(scene.clean, result.output),
              image::psnrDb(scene.clean, scene.noisy) + 2.0);
}

TEST(Bm3d, ProfileCoversAllSteps)
{
    auto scene = makeTestScene(image::SceneKind::Texture, 32, 25.0f, 14);
    Bm3d denoiser(smallConfig());
    auto result = denoiser.denoise(scene.noisy);
    EXPECT_GT(result.profile.seconds(Step::Dct1), 0.0);
    EXPECT_GT(result.profile.seconds(Step::Bm1), 0.0);
    EXPECT_GT(result.profile.seconds(Step::De1), 0.0);
    EXPECT_GT(result.profile.seconds(Step::Bm2), 0.0);
    EXPECT_GT(result.profile.seconds(Step::De2), 0.0);
    EXPECT_GT(result.profile.totalOps().multiplies, 0u);
    EXPECT_EQ(result.profile.mr().bm1Hits, 0u); // MR disabled
    EXPECT_GT(result.profile.mr().bm1Refs, 0u);
}

TEST(Bm3d, BlockMatchingDominatesOps)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 25.0f, 15);
    Bm3dConfig cfg; // full 49x49 windows: the paper's configuration
    Bm3d denoiser(cfg);
    auto result = denoiser.denoise(scene.noisy);
    uint64_t bm_ops = result.profile.ops(Step::Bm1).total() +
                      result.profile.ops(Step::Bm2).total();
    EXPECT_GT(bm_ops, result.profile.totalOps().total() / 2)
        << "block matching should dominate computation (paper Fig. 4)";
}

TEST(Bm3dMr, HitRateHighOnSmoothContent)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 10.0f, 16);
    Bm3dConfig cfg = smallConfig(10.0f);
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;
    Bm3d denoiser(cfg);
    auto result = denoiser.denoise(scene.noisy);
    EXPECT_GT(result.profile.mr().hitRate1(), 0.5);
}

TEST(Bm3dMr, ReducesSearchEffort)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 10.0f, 17);
    Bm3dConfig base = smallConfig(10.0f);
    Bm3d plain(base);
    auto r_plain = plain.denoise(scene.noisy);

    Bm3dConfig mr_cfg = base;
    mr_cfg.mr.enabled = true;
    mr_cfg.mr.k = 0.5;
    Bm3d with_mr(mr_cfg);
    auto r_mr = with_mr.denoise(scene.noisy);

    EXPECT_LT(r_mr.profile.mr().bm1Candidates,
              r_plain.profile.mr().bm1Candidates / 2);
}

TEST(Bm3dMr, QualityCloseToFullSearch)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 48, 25.0f, 18);
    Bm3dConfig base = smallConfig();
    Bm3d plain(base);
    double psnr_plain =
        image::psnrDb(scene.clean, plain.denoise(scene.noisy).output);

    Bm3dConfig mr_cfg = base;
    mr_cfg.mr.enabled = true;
    mr_cfg.mr.k = 0.25;
    Bm3d with_mr(mr_cfg);
    double psnr_mr =
        image::psnrDb(scene.clean, with_mr.denoise(scene.noisy).output);

    // Paper Sec. 5.2: MR quality is within a few percent of BM3D and
    // sometimes better.
    EXPECT_GT(psnr_mr, psnr_plain - 1.0);
}

TEST(Bm3dMr, UniformImageAlwaysHits)
{
    auto scene = makeTestScene(image::SceneKind::Uniform, 32, 5.0f, 19);
    Bm3dConfig cfg = smallConfig(5.0f);
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;
    Bm3d denoiser(cfg);
    auto result = denoiser.denoise(scene.noisy);
    EXPECT_GT(result.profile.mr().hitRate1(), 0.9);
}

TEST(Bm3d, MultithreadedMatchesSingleThread)
{
    auto scene = makeTestScene(image::SceneKind::Street, 40, 25.0f, 20);
    Bm3dConfig cfg = smallConfig();
    Bm3d single(cfg);
    auto r1 = single.denoise(scene.noisy);

    cfg.numThreads = 4;
    Bm3d multi(cfg);
    auto r4 = multi.denoise(scene.noisy);

    // The tiled runner merges per-tile partial sums in tile order, so
    // the floating-point addition tree does not depend on the thread
    // count: outputs are bitwise identical, not merely close.
    EXPECT_EQ(image::maxAbsDiff(r1.basic, r4.basic), 0.0);
    EXPECT_EQ(image::maxAbsDiff(r1.output, r4.output), 0.0);
}

TEST(Bm3d, FixedPointCloseToFloat)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 25.0f, 21);
    Bm3dConfig cfg = smallConfig();
    Bm3d fp(cfg);
    auto r_float = fp.denoise(scene.noisy);

    cfg.fixedPoint = fixed::PipelineFormats::forFraction(12);
    Bm3d fx(cfg);
    auto r_fixed = fx.denoise(scene.noisy);

    double snr_float = image::snrDb(scene.clean, r_float.output);
    double snr_fixed = image::snrDb(scene.clean, r_fixed.output);
    // Paper Fig. 9: relative SNR >= 98.9% even at 10 fractional bits.
    EXPECT_GT(snr_fixed / snr_float, 0.97);
}

TEST(Bm3d, FixedPointPrecisionMonotonicTrend)
{
    auto scene = makeTestScene(image::SceneKind::Texture, 32, 25.0f, 22);
    Bm3dConfig cfg = smallConfig();
    auto run = [&](int frac) {
        Bm3dConfig c = cfg;
        c.fixedPoint = fixed::PipelineFormats::forFraction(frac);
        return image::snrDb(scene.clean, Bm3d(c).denoise(scene.noisy).output);
    };
    // 12-bit should be no worse than a severely truncated 4-bit path.
    EXPECT_GT(run(12), run(4) - 0.1);
}

TEST(Bm3d, SharpeningIncreasesHighFrequencyEnergy)
{
    auto scene = makeTestScene(image::SceneKind::Street, 40, 10.0f, 23);
    Bm3dConfig cfg = smallConfig(10.0f);
    Bm3d plain(cfg);
    auto r_plain = plain.denoise(scene.noisy);

    cfg.sharpenAlpha = 1.5f;
    Bm3d sharp(cfg);
    auto r_sharp = sharp.denoise(scene.noisy);

    // Laplacian energy as a sharpness proxy.
    auto sharpness = [](const image::ImageF &im) {
        double acc = 0;
        for (int y = 1; y < im.height() - 1; ++y)
            for (int x = 1; x < im.width() - 1; ++x) {
                float lap = 4.0f * im.at(x, y) - im.at(x - 1, y) -
                            im.at(x + 1, y) - im.at(x, y - 1) -
                            im.at(x, y + 1);
                acc += static_cast<double>(lap) * lap;
            }
        return acc;
    };
    EXPECT_GT(sharpness(r_sharp.output), sharpness(r_plain.output) * 1.02);
}

TEST(Bm3d, DisableWienerSkipsStageTwo)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 32, 25.0f, 24);
    Bm3dConfig cfg = smallConfig();
    cfg.enableWiener = false;
    Bm3d denoiser(cfg);
    auto result = denoiser.denoise(scene.noisy);
    EXPECT_EQ(result.profile.seconds(Step::Bm2), 0.0);
    EXPECT_LT(image::maxAbsDiff(result.output, result.basic), 1e-6);
}

TEST(Bm3d, RefPositionsCoverEdges)
{
    auto xs = bm3d::makeRefPositions(10, 3);
    EXPECT_EQ(xs.front(), 0);
    EXPECT_EQ(xs.back(), 10);
    auto xs2 = bm3d::makeRefPositions(9, 3);
    EXPECT_EQ(xs2.back(), 9);
    auto xs1 = bm3d::makeRefPositions(5, 1);
    EXPECT_EQ(xs1.size(), 6u);
}

TEST(Bm3d, StrideTwoStillCoversImage)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 25.0f, 25);
    Bm3dConfig cfg = smallConfig();
    cfg.refStride = 2;
    Bm3d denoiser(cfg);
    auto result = denoiser.denoise(scene.noisy);
    EXPECT_GT(image::psnrDb(scene.clean, result.output),
              image::psnrDb(scene.clean, scene.noisy) + 2.0);
}

TEST(Bm3dMr, AcrossRowsIncreasesHits)
{
    // The Sec. 5.3 future-work extension: when the left-neighbor check
    // misses, the reference above may still be similar (e.g. vertical
    // structure).
    auto scene = makeTestScene(image::SceneKind::Street, 48, 15.0f, 26);
    Bm3dConfig cfg = smallConfig(15.0f);
    cfg.mr.enabled = true;
    cfg.mr.k = 0.3;

    Bm3d horiz(cfg);
    auto r_h = horiz.denoise(scene.noisy);

    cfg.mr.acrossRows = true;
    Bm3d both(cfg);
    auto r_b = both.denoise(scene.noisy);

    EXPECT_GE(r_b.profile.mr().bm1Hits, r_h.profile.mr().bm1Hits);
    EXPECT_GT(r_b.profile.mr().bm1VertHits, 0u);
    EXPECT_LE(r_b.profile.mr().bm1Candidates,
              r_h.profile.mr().bm1Candidates);
}

TEST(Bm3dMr, AcrossRowsQualityComparable)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 48, 25.0f, 27);
    Bm3dConfig cfg = smallConfig();
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;
    double base = image::psnrDb(scene.clean,
                                Bm3d(cfg).denoise(scene.noisy).output);
    cfg.mr.acrossRows = true;
    double ext = image::psnrDb(scene.clean,
                               Bm3d(cfg).denoise(scene.noisy).output);
    EXPECT_GT(ext, base - 1.0);
}

TEST(Bm3dMr, AcrossRowsDisabledHasNoVertHits)
{
    auto scene = makeTestScene(image::SceneKind::Street, 32, 25.0f, 28);
    Bm3dConfig cfg = smallConfig();
    cfg.mr.enabled = true;
    Bm3d denoiser(cfg);
    auto r = denoiser.denoise(scene.noisy);
    EXPECT_EQ(r.profile.mr().bm1VertHits, 0u);
    EXPECT_EQ(r.profile.mr().bm2VertHits, 0u);
}

TEST(Bm3d, TransformOnceBitwiseIdenticalToOnTheFly)
{
    // The tile DCT caches hold the very same dct.forward outputs the
    // on-the-fly gathers would compute, so enabling them must not
    // change a single bit of either stage's output.
    auto scene = makeTestScene(image::SceneKind::Street, 40, 25.0f, 24);
    Bm3dConfig cfg = smallConfig();
    cfg.tileGrain = 8; // several tiles, so halos and edges are hit
    Bm3d cached(cfg);
    auto r_cached = cached.denoise(scene.noisy);

    cfg.transformOnce = false;
    Bm3d direct(cfg);
    auto r_direct = direct.denoise(scene.noisy);

    EXPECT_EQ(image::maxAbsDiff(r_cached.basic, r_direct.basic), 0.0);
    EXPECT_EQ(image::maxAbsDiff(r_cached.output, r_direct.output), 0.0);
}

TEST(Bm3d, TransformOnceBitwiseIdenticalColorMrMultithreaded)
{
    // Same contract under the full feature mix: three channels (the
    // stage-1 color-channel caches are exercised), Matches Reuse with
    // the across-rows extension, and a multi-threaded tiled run.
    auto scene =
        makeTestScene(image::SceneKind::Nature, 40, 25.0f, 25, 3);
    Bm3dConfig cfg = smallConfig();
    cfg.tileGrain = 8;
    cfg.numThreads = 4;
    cfg.mr.enabled = true;
    cfg.mr.acrossRows = true;
    Bm3d cached(cfg);
    auto r_cached = cached.denoise(scene.noisy);

    cfg.transformOnce = false;
    Bm3d direct(cfg);
    auto r_direct = direct.denoise(scene.noisy);

    EXPECT_EQ(image::maxAbsDiff(r_cached.basic, r_direct.basic), 0.0);
    EXPECT_EQ(image::maxAbsDiff(r_cached.output, r_direct.output), 0.0);
}

TEST(Bm3d, TransformOnceDoesNotInflateDctOpCount)
{
    // Satellite check on the op accounting: with the caches on, the
    // forward-DCT ops charged per stack must drop (each position is
    // transformed once per tile instead of once per stack
    // membership), never rise.
    auto scene = makeTestScene(image::SceneKind::Street, 40, 25.0f, 26);
    Bm3dConfig cfg = smallConfig();
    Bm3d cached(cfg);
    auto r_cached = cached.denoise(scene.noisy);

    cfg.transformOnce = false;
    Bm3d direct(cfg);
    auto r_direct = direct.denoise(scene.noisy);

    const uint64_t ops_cached = r_cached.profile.ops(Step::Dct2).total();
    const uint64_t ops_direct = r_direct.profile.ops(Step::Dct2).total();
    EXPECT_LT(ops_cached, ops_direct);
}

// ---------------------------------------------------------------------
// Config::variant — the adaptive matching layer (DESIGN §11).
// ---------------------------------------------------------------------

TEST(Bm3dConfig, RejectsBadVariantKnobs)
{
    auto check = [](auto mutate) {
        Bm3dConfig cfg;
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    check([](Bm3dConfig &c) {
        c.variant.adaptiveBound = true;
        c.variant.boundMargin = 0.5f; // must be >= 1
    });
    check([](Bm3dConfig &c) {
        c.variant.adaptiveBound = true;
        c.variant.boundMargin = std::numeric_limits<float>::quiet_NaN();
    });
    check([](Bm3dConfig &c) {
        c.variant.coarseToFine = true;
        c.variant.coarseStride = 1; // stride 1 = dense, use the flag off
    });
    check([](Bm3dConfig &c) {
        c.variant.coarseToFine = true;
        c.variant.coarseStride = 5;
    });
    // MR chains reuse state across consecutive references, which a
    // subsampled reference grid breaks; the combination is rejected
    // rather than silently degraded.
    check([](Bm3dConfig &c) {
        c.variant.coarseToFine = true;
        c.mr.enabled = true;
    });
}

TEST(Bm3dVariant, InfiniteMarginIsBitwiseDense)
{
    // The adaptive bound only ever *tightens* the running cutoff; with
    // an infinite margin the propagated bound is +inf and every scan
    // path must accept exactly the candidates the dense scan keeps —
    // bitwise, in both matching precisions.
    auto scene = makeTestScene(image::SceneKind::Street, 48, 25.0f, 40);
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        Bm3dConfig cfg = smallConfig();
        cfg.precision = precision;
        auto dense = Bm3d(cfg).denoise(scene.noisy);

        cfg.variant.adaptiveBound = true;
        cfg.variant.boundMargin = std::numeric_limits<float>::infinity();
        auto adaptive = Bm3d(cfg).denoise(scene.noisy);

        EXPECT_EQ(image::maxAbsDiff(dense.basic, adaptive.basic), 0.0)
            << "precision=" << static_cast<int>(precision);
        EXPECT_EQ(image::maxAbsDiff(dense.output, adaptive.output), 0.0)
            << "precision=" << static_cast<int>(precision);
    }
}

TEST(Bm3dVariant, AdaptiveBoundPrunesWithBoundedQualityLoss)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 48, 25.0f, 41);
    Bm3dConfig cfg = smallConfig();
    double psnr_dense =
        image::psnrDb(scene.clean, Bm3d(cfg).denoise(scene.noisy).output);

    cfg.variant.adaptiveBound = true;
    cfg.variant.boundMargin = 2.0f;
    auto r = Bm3d(cfg).denoise(scene.noisy);

    EXPECT_GT(r.profile.adaptive().prunedInserts, 0u);
    EXPECT_GT(image::psnrDb(scene.clean, r.output), psnr_dense - 0.3);
}

TEST(Bm3dVariant, CoarseDensifyAlwaysIsBitwiseDense)
{
    // densifyThreshold <= 0 forces every tile through the fine pass;
    // the two-pass replay aggregates in the same row-major order the
    // dense scan uses, so the output must be bit-identical, and no
    // reference may be skipped.
    auto scene = makeTestScene(image::SceneKind::Street, 48, 25.0f, 42);
    Bm3dConfig cfg = smallConfig();
    auto dense = Bm3d(cfg).denoise(scene.noisy);

    cfg.variant.coarseToFine = true;
    cfg.variant.coarseStride = 2;
    cfg.variant.densifyThreshold = 0.0f;
    auto coarse = Bm3d(cfg).denoise(scene.noisy);

    EXPECT_EQ(image::maxAbsDiff(dense.basic, coarse.basic), 0.0);
    EXPECT_EQ(image::maxAbsDiff(dense.output, coarse.output), 0.0);
    // Every tile densified, none stayed coarse, no reference skipped.
    EXPECT_GT(coarse.profile.adaptive().tilesDensified, 0u);
    EXPECT_EQ(coarse.profile.adaptive().tilesCoarse, 0u);
    EXPECT_EQ(coarse.profile.adaptive().refsSkipped, 0u);
}

TEST(Bm3dVariant, CoarseSkipsRefsAndHoldsQuality)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 48, 25.0f, 43);
    Bm3dConfig cfg = smallConfig();
    double psnr_dense =
        image::psnrDb(scene.clean, Bm3d(cfg).denoise(scene.noisy).output);
    const uint64_t dense_cand = Bm3d(cfg)
                                    .denoise(scene.noisy)
                                    .profile.mr()
                                    .bm1Candidates;

    cfg.variant.coarseToFine = true;
    cfg.variant.coarseStride = 2;
    cfg.variant.densifyThreshold = 0.9f; // low-residual tiles stay coarse
    auto r = Bm3d(cfg).denoise(scene.noisy);

    EXPECT_GT(r.profile.adaptive().tilesCoarse, 0u);
    EXPECT_GT(r.profile.adaptive().refsSkipped, 0u);
    EXPECT_LT(r.profile.mr().bm1Candidates, dense_cand);
    EXPECT_GT(image::psnrDb(scene.clean, r.output), psnr_dense - 0.5);
}

TEST(Bm3dVariant, CountersAreThreadCountInvariant)
{
    // The tiled runner makes the outputs bitwise thread-invariant; the
    // pruning decisions depend only on tile-local scan order, so the
    // variant counters must agree exactly too — this is what lets CI
    // gate them with --ops-tolerance 0.
    auto scene = makeTestScene(image::SceneKind::Street, 48, 25.0f, 44);
    Bm3dConfig cfg = smallConfig();
    cfg.variant.adaptiveBound = true;
    cfg.variant.boundMargin = 2.0f;
    cfg.variant.coarseToFine = true;
    cfg.variant.coarseStride = 2;
    cfg.variant.densifyThreshold = 0.5f;

    auto r1 = Bm3d(cfg).denoise(scene.noisy);
    cfg.numThreads = 4;
    auto r4 = Bm3d(cfg).denoise(scene.noisy);

    EXPECT_EQ(image::maxAbsDiff(r1.output, r4.output), 0.0);
    EXPECT_EQ(r1.profile.adaptive().prunedInserts,
              r4.profile.adaptive().prunedInserts);
    EXPECT_EQ(r1.profile.adaptive().tilesCoarse,
              r4.profile.adaptive().tilesCoarse);
    EXPECT_EQ(r1.profile.adaptive().tilesDensified,
              r4.profile.adaptive().tilesDensified);
    EXPECT_EQ(r1.profile.adaptive().refsSkipped,
              r4.profile.adaptive().refsSkipped);
}

// Regression for the fig02 bench record showing bm3d.mr.bm1Hits == 0:
// the bench probe simply never enabled MR (hits are *defined* as 0 with
// the feature off — see Bm3d.ProfileCoversAllSteps above). This pins
// the positive half: with MR on, both the profile and the process-wide
// metrics registry must report nonzero hits.
TEST(Bm3dMr, RegistryReportsNonzeroHitsWhenEnabled)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.reset();

    auto scene = makeTestScene(image::SceneKind::Nature, 40, 10.0f, 45);
    Bm3dConfig cfg = smallConfig(10.0f);
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;
    auto result = Bm3d(cfg).denoise(scene.noisy);

    EXPECT_GT(result.profile.mr().bm1Hits, 0u);
    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_GT(snap.value("bm3d.mr.bm1Hits"), 0.0);
    EXPECT_GT(snap.value("bm3d.mr.bm2Hits"), 0.0);
    reg.reset();
}

// ---------------------------------------------------------------------
// Fused group-major denoise datapath (DESIGN §12).
// ---------------------------------------------------------------------

TEST(Bm3dFused, BitwiseIdenticalToDiscretePath)
{
    // The fused kernels replay the discrete path's exact float
    // expressions, so flipping the knob must not change a single bit —
    // under the full feature mix (color, Matches Reuse, transform-once
    // tiles, multithreaded tiled run).
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 25.0f, 50, 3);
    Bm3dConfig cfg = smallConfig();
    cfg.tileGrain = 8;
    cfg.numThreads = 4;
    cfg.mr.enabled = true;
    auto r_fused = Bm3d(cfg).denoise(scene.noisy);

    cfg.fusedDenoise = false;
    auto r_discrete = Bm3d(cfg).denoise(scene.noisy);

    EXPECT_EQ(image::maxAbsDiff(r_fused.basic, r_discrete.basic), 0.0);
    EXPECT_EQ(image::maxAbsDiff(r_fused.output, r_discrete.output), 0.0);
}

TEST(Bm3dFused, BitwiseMatrixAcrossLevelsThreadsPrecisions)
{
    // The PR's acceptance matrix: for each matching precision, the
    // fused pipeline's output is one bit pattern across every SIMD
    // dispatch level and thread count. (Float32 vs Int16 differ — the
    // int16 DE1 spectrum is tolerance-gated, not bit-matched.)
    auto scene = makeTestScene(image::SceneKind::Street, 40, 25.0f, 51);
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        simd::setLevel(simd::Level::Scalar);
        Bm3dConfig cfg = smallConfig();
        cfg.precision = precision;
        auto ref = Bm3d(cfg).denoise(scene.noisy);

        for (int l = 0; l <= static_cast<int>(simd::bestSupported());
             ++l) {
            simd::setLevel(static_cast<simd::Level>(l));
            for (int threads : {1, 8}) {
                cfg.numThreads = threads;
                auto r = Bm3d(cfg).denoise(scene.noisy);
                SCOPED_TRACE(testing::Message()
                             << "precision="
                             << static_cast<int>(precision) << " level="
                             << simd::toString(
                                    static_cast<simd::Level>(l))
                             << " threads=" << threads);
                EXPECT_EQ(image::maxAbsDiff(ref.basic, r.basic), 0.0);
                EXPECT_EQ(image::maxAbsDiff(ref.output, r.output), 0.0);
            }
        }
        simd::setLevel(simd::bestSupported());
    }
}

TEST(Bm3dFused, GroupCountersReportFusedTraffic)
{
    // With the fused path on (default), every stack goes group-major
    // and the registry says so; with it off, the same stacks are
    // charged to the legacy counter. Totals are thread-count invariant
    // by the same argument as the variant counters above.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    auto scene = makeTestScene(image::SceneKind::Street, 40, 25.0f, 52);
    Bm3dConfig cfg = smallConfig();

    reg.reset();
    Bm3d(cfg).denoise(scene.noisy);
    const obs::MetricsSnapshot fused = reg.snapshot();
    EXPECT_GT(fused.value("bm3d.group.fusedStacks"), 0.0);
    EXPECT_GT(fused.value("bm3d.group.fusedPatches"), 0.0);
    EXPECT_EQ(fused.value("bm3d.group.legacyStacks"), 0.0);

    reg.reset();
    cfg.numThreads = 4;
    Bm3d(cfg).denoise(scene.noisy);
    const obs::MetricsSnapshot fused_mt = reg.snapshot();
    EXPECT_EQ(fused.value("bm3d.group.fusedStacks"),
              fused_mt.value("bm3d.group.fusedStacks"));
    EXPECT_EQ(fused.value("bm3d.group.fusedPatches"),
              fused_mt.value("bm3d.group.fusedPatches"));

    reg.reset();
    cfg.numThreads = 0;
    cfg.fusedDenoise = false;
    Bm3d(cfg).denoise(scene.noisy);
    const obs::MetricsSnapshot legacy = reg.snapshot();
    EXPECT_EQ(legacy.value("bm3d.group.fusedStacks"), 0.0);
    EXPECT_GT(legacy.value("bm3d.group.legacyStacks"), 0.0);
    EXPECT_EQ(legacy.value("bm3d.group.legacyStacks"),
              fused.value("bm3d.group.fusedStacks"));
    reg.reset();
}

TEST(Bm3dFused, OpChargesIdenticalAcrossFusedKnob)
{
    // chargeStackOps is shared by both paths, so every per-step op
    // counter must agree exactly — the invariant CI's
    // --ops-tolerance 0 gate rests on.
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 25.0f, 53);
    Bm3dConfig cfg = smallConfig();
    auto r_fused = Bm3d(cfg).denoise(scene.noisy);
    cfg.fusedDenoise = false;
    auto r_discrete = Bm3d(cfg).denoise(scene.noisy);

    for (Step step : {Step::Dct2, Step::De1, Step::De2}) {
        SCOPED_TRACE(static_cast<int>(step));
        EXPECT_EQ(r_fused.profile.ops(step).total(),
                  r_discrete.profile.ops(step).total());
    }
}

// ---------------------------------------------------------------------
// Row-band streaming schedule (DESIGN §15).
// ---------------------------------------------------------------------

namespace {

/** smallConfig with a multi-band grid: small tiles + small bands so a
    48x48 scene splits into several row bands with real halo overlap. */
Bm3dConfig
bandConfig(float sigma = 25.0f)
{
    Bm3dConfig cfg = smallConfig(sigma);
    cfg.tileGrain = 8;
    cfg.band.enabled = true;
    cfg.band.rows = 8;
    return cfg;
}

} // namespace

TEST(Bm3dConfig, RejectsBadBandRows)
{
    Bm3dConfig cfg;
    cfg.band.enabled = true;
    cfg.band.rows = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.band.enabled = false; // knob only checked when the schedule is on
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Bm3dBand, BitwiseMatrixAcrossLevelsThreadsPrecisions)
{
    // The PR's acceptance matrix: band scheduling reorders work, never
    // arithmetic — for each matching precision the banded pipeline's
    // output equals the stage-major reference bit for bit, at every
    // SIMD dispatch level and thread count, with prefetch both off and
    // on (prefetches are pure hints).
    auto scene = makeTestScene(image::SceneKind::Street, 48, 25.0f, 60);
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        simd::setLevel(simd::Level::Scalar);
        Bm3dConfig cfg = smallConfig();
        cfg.tileGrain = 8;
        cfg.precision = precision;
        auto ref = Bm3d(cfg).denoise(scene.noisy);

        Bm3dConfig banded = bandConfig();
        banded.precision = precision;
        for (int l = 0; l <= static_cast<int>(simd::bestSupported());
             ++l) {
            simd::setLevel(static_cast<simd::Level>(l));
            for (int threads : {1, 8}) {
                for (bool prefetch : {false, true}) {
                    banded.numThreads = threads;
                    banded.prefetch = prefetch;
                    auto r = Bm3d(banded).denoise(scene.noisy);
                    SCOPED_TRACE(testing::Message()
                                 << "precision="
                                 << static_cast<int>(precision)
                                 << " level="
                                 << simd::toString(
                                        static_cast<simd::Level>(l))
                                 << " threads=" << threads
                                 << " prefetch=" << prefetch);
                    EXPECT_EQ(image::maxAbsDiff(ref.basic, r.basic),
                              0.0);
                    EXPECT_EQ(image::maxAbsDiff(ref.output, r.output),
                              0.0);
                }
            }
        }
        simd::setLevel(simd::bestSupported());
    }
}

TEST(Bm3dBand, BitwiseUnderFeatureMix)
{
    // Banding must compose with the rest of the matching/denoise
    // feature set without changing a bit: color channels, Matches
    // Reuse with the across-rows extension, the fused-DE knob both
    // ways, and a multithreaded run.
    auto scene =
        makeTestScene(image::SceneKind::Nature, 48, 25.0f, 61, 3);
    for (bool fused : {true, false}) {
        Bm3dConfig cfg = smallConfig();
        cfg.tileGrain = 8;
        cfg.numThreads = 4;
        cfg.mr.enabled = true;
        cfg.mr.acrossRows = true;
        cfg.fusedDenoise = fused;
        auto ref = Bm3d(cfg).denoise(scene.noisy);

        cfg.band.enabled = true;
        cfg.band.rows = 8;
        auto r = Bm3d(cfg).denoise(scene.noisy);
        SCOPED_TRACE(testing::Message() << "fused=" << fused);
        EXPECT_EQ(image::maxAbsDiff(ref.basic, r.basic), 0.0);
        EXPECT_EQ(image::maxAbsDiff(ref.output, r.output), 0.0);
    }
}

TEST(Bm3dBand, BitwiseUnderAdaptiveVariants)
{
    // The adaptive early-termination bound and the coarse-to-fine grid
    // keep their per-tile scan state, which banding leaves intact
    // (bands are whole tile rows).
    auto scene = makeTestScene(image::SceneKind::Street, 48, 25.0f, 62);
    Bm3dConfig cfg = smallConfig();
    cfg.tileGrain = 8;
    cfg.variant.adaptiveBound = true;
    cfg.variant.boundMargin = 2.0f;
    cfg.variant.coarseToFine = true;
    cfg.variant.coarseStride = 2;
    cfg.variant.densifyThreshold = 0.5f;
    auto ref = Bm3d(cfg).denoise(scene.noisy);

    cfg.band.enabled = true;
    cfg.band.rows = 8;
    auto r = Bm3d(cfg).denoise(scene.noisy);
    EXPECT_EQ(image::maxAbsDiff(ref.basic, r.basic), 0.0);
    EXPECT_EQ(image::maxAbsDiff(ref.output, r.output), 0.0);
    EXPECT_EQ(ref.profile.adaptive().prunedInserts,
              r.profile.adaptive().prunedInserts);
    EXPECT_EQ(ref.profile.adaptive().refsSkipped,
              r.profile.adaptive().refsSkipped);
}

TEST(Bm3dBand, EdgeGeometries)
{
    // Degenerate band geometries must still be bitwise clean:
    //  - an image shorter than one band plus its halo (single band,
    //    ring degenerates to whole-image mode),
    //  - bands smaller than the BM2 window (several stage-1 bands must
    //    complete before the first stage-2 band releases),
    //  - an odd-sized trailing band.
    struct Case
    {
        int w, h, rows;
    };
    const Case cases[] = {
        {16, 16, 8}, // shorter than band + halo
        {48, 44, 4}, // band rows < searchWindow2 = 11
        {40, 23, 8}, // odd trailing band (23 - 4 + 1 = 20 ref rows)
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(testing::Message() << c.w << "x" << c.h
                                        << " rows=" << c.rows);
        image::ImageF clean = image::makeScene(image::SceneKind::Street,
                                               c.w, c.h, 1, 63);
        image::ImageF noisy = image::addGaussianNoise(clean, 25.0f, 64);
        Bm3dConfig cfg = smallConfig();
        cfg.tileGrain = 4;
        auto ref = Bm3d(cfg).denoise(noisy);
        cfg.band.enabled = true;
        cfg.band.rows = c.rows;
        auto r = Bm3d(cfg).denoise(noisy);
        EXPECT_EQ(image::maxAbsDiff(ref.basic, r.basic), 0.0);
        EXPECT_EQ(image::maxAbsDiff(ref.output, r.output), 0.0);
    }
}

TEST(Bm3dBand, WienerDisabledStillBands)
{
    auto scene = makeTestScene(image::SceneKind::Nature, 40, 25.0f, 65);
    Bm3dConfig cfg = smallConfig();
    cfg.tileGrain = 8;
    cfg.enableWiener = false;
    auto ref = Bm3d(cfg).denoise(scene.noisy);
    cfg.band.enabled = true;
    cfg.band.rows = 8;
    auto r = Bm3d(cfg).denoise(scene.noisy);
    EXPECT_EQ(image::maxAbsDiff(ref.output, r.output), 0.0);
}

TEST(Bm3dBand, PrefetchAloneIsBitwiseNoOp)
{
    // The prefetch knob without banding: same stage-major schedule,
    // hints only — outputs and candidate counts identical.
    auto scene = makeTestScene(image::SceneKind::Street, 48, 25.0f, 66);
    for (bm3d::Precision precision :
         {bm3d::Precision::Float32, bm3d::Precision::Int16}) {
        Bm3dConfig cfg = smallConfig();
        cfg.precision = precision;
        auto ref = Bm3d(cfg).denoise(scene.noisy);
        cfg.prefetch = true;
        auto r = Bm3d(cfg).denoise(scene.noisy);
        SCOPED_TRACE(static_cast<int>(precision));
        EXPECT_EQ(image::maxAbsDiff(ref.basic, r.basic), 0.0);
        EXPECT_EQ(image::maxAbsDiff(ref.output, r.output), 0.0);
        EXPECT_EQ(ref.profile.mr().bm1Candidates,
                  r.profile.mr().bm1Candidates);
        EXPECT_EQ(ref.profile.mr().bm2Candidates,
                  r.profile.mr().bm2Candidates);
    }
}

TEST(Bm3dBand, CountersAndFootprintGauges)
{
    // The deterministic band counters CI gates with --ops-tolerance 0,
    // and the working-set gauge: a banded run must report its bands,
    // fill every field position row exactly once, and record a ring
    // footprint strictly below the whole-image field footprint.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.reset();

    auto scene = makeTestScene(image::SceneKind::Street, 96, 25.0f, 67);
    Bm3dConfig cfg = bandConfig();
    auto r1 = Bm3d(cfg).denoise(scene.noisy);
    const obs::MetricsSnapshot snap1 = reg.snapshot();

    const int pos = 96 - cfg.patchSize + 1; // 93 position rows
    // Two stages' bands: ceil(93/8 tile rows) per stage.
    EXPECT_GT(snap1.value("bm3d.band.bands"), 0.0);
    EXPECT_EQ(snap1.value("bm3d.band.rowsFilled"),
              static_cast<double>(pos));
    const double band_bytes = snap1.value("mem.peakBandBytes");
    EXPECT_GT(band_bytes, 0.0);
    // Whole-image field: raw + match SoA planes, coefs floats each.
    const double whole_bytes = static_cast<double>(pos) * pos * 16 * 2 *
                               sizeof(float);
    EXPECT_LT(band_bytes, whole_bytes);

    // Band counters are schedule-deterministic: an identical second
    // run adds exactly the same counts (thread count does not matter).
    reg.reset();
    cfg.numThreads = 4;
    auto r4 = Bm3d(cfg).denoise(scene.noisy);
    const obs::MetricsSnapshot snap4 = reg.snapshot();
    EXPECT_EQ(snap1.value("bm3d.band.bands"),
              snap4.value("bm3d.band.bands"));
    EXPECT_EQ(snap1.value("bm3d.band.rowsFilled"),
              snap4.value("bm3d.band.rowsFilled"));
    EXPECT_EQ(image::maxAbsDiff(r1.output, r4.output), 0.0);
    reg.reset();
}

TEST(Bm3dBand, RingFootprintAt1080pBelowWholeField)
{
    // The acceptance bound at HD geometry, on the storage layer alone
    // (no denoise run): a ring-prepared field at 1920x1080 with the
    // default band height must stay far below the whole-image field.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.reset();

    const int w = 1920, h = 1080;
    transforms::Dct2D dct(4);
    Bm3dConfig cfg; // defaults: searchWindow1 = 49, band.rows = 64
    const int half1 = (cfg.searchWindow1 - 1) / 2;
    const int ring = cfg.band.rows - 1 + 2 * half1 + 1; // 112 rows

    bm3d::DctPatchField field;
    field.prepare(w, h, dct, nullptr, ring);
    EXPECT_TRUE(field.banded());
    EXPECT_EQ(field.ringRows(), ring);

    const size_t posx = static_cast<size_t>(w - 3);
    const size_t posy = static_cast<size_t>(h - 3);
    const size_t whole_bytes = posx * posy * 16 * 2 * sizeof(float);
    EXPECT_LT(field.footprintBytes(), whole_bytes / 5);

    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("mem.peakBandBytes"),
              static_cast<double>(field.footprintBytes()));
    EXPECT_EQ(snap.value("mem.peakFieldBytes"), 0.0);
    reg.reset();
}

TEST(Bm3dFused, Int16SpectrumStaysWithinSnrEnvelope)
{
    // DE1's int16 Haar+shrink is the one tolerance-gated divergence:
    // the fused int16 pipeline must stay within 0.1 dB of the float
    // fused pipeline end to end.
    auto scene = makeTestScene(image::SceneKind::Nature, 48, 25.0f, 54);
    Bm3dConfig cfg = smallConfig();
    auto r_float = Bm3d(cfg).denoise(scene.noisy);
    cfg.precision = bm3d::Precision::Int16;
    auto r_i16 = Bm3d(cfg).denoise(scene.noisy);

    const double psnr_float =
        image::psnrDb(scene.clean, r_float.output);
    const double psnr_i16 = image::psnrDb(scene.clean, r_i16.output);
    EXPECT_GT(psnr_i16, psnr_float - 0.1);
}
