/**
 * @file
 * Tests for the accelerator cycle-level simulators and the workload
 * oracle: configuration invariants, MR decision consistency against
 * the functional bm3d library, cycle-count behaviour (IDEALB vs
 * IDEALMR, K sensitivity, prefetch/buffering ablations, lane scaling)
 * and memory-system integration.
 */

#include <gtest/gtest.h>

#include "bm3d/bm3d.h"
#include "core/accelerator.h"
#include "core/config.h"
#include "core/oracle.h"
#include "image/noise.h"
#include "image/synthetic.h"

using namespace ideal;
using core::AcceleratorConfig;
using core::Variant;

namespace {

image::ImageF
testImage(int size = 128, image::SceneKind kind = image::SceneKind::Nature,
          float sigma = 25.0f, uint64_t seed = 31)
{
    auto clean = image::makeScene(kind, size, size, 3, seed);
    return image::addGaussianNoise(clean, sigma, seed + 1);
}

} // namespace

TEST(AcceleratorConfig, FactoryDefaultsValid)
{
    EXPECT_NO_THROW(AcceleratorConfig::idealB().validate());
    EXPECT_NO_THROW(AcceleratorConfig::idealMr(0.25).validate());
    EXPECT_NO_THROW(AcceleratorConfig::idealMr(0.5, 3).validate());
}

TEST(AcceleratorConfig, RejectsInvalid)
{
    AcceleratorConfig cfg = AcceleratorConfig::idealMr();
    cfg.lanes = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = AcceleratorConfig::idealMr();
    cfg.algo.mr.enabled = false;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = AcceleratorConfig::idealB();
    cfg.freqGhz = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(AcceleratorConfig, BufferSizesMatchPaper)
{
    // Table 2: IDEALB 126.75 KB shared PB; IDEALMR 16 x 6.5 KB SWBs.
    AcceleratorConfig b = AcceleratorConfig::idealB();
    EXPECT_NEAR(b.bufferBytes() / 1024.0, 126.75, 10.0);
    AcceleratorConfig mr = AcceleratorConfig::idealMr();
    EXPECT_NEAR(mr.bufferBytes() / 1024.0, 16 * 6.5, 1.0);
}

TEST(Oracle, HitRatesMatchFunctionalRun)
{
    image::ImageF noisy = testImage(96);
    bm3d::Bm3dConfig cfg;
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;

    core::Workload w = core::buildWorkload(noisy, cfg);

    bm3d::Bm3d denoiser(cfg);
    auto functional = denoiser.denoise(noisy);

    // The oracle's stage-1 decision rule is exactly the functional
    // implementation's; hit counts must match.
    uint64_t oracle_hits1 = 0;
    for (uint8_t h : w.stage1.hit)
        oracle_hits1 += h;
    EXPECT_EQ(oracle_hits1, functional.profile.mr().bm1Hits);
    EXPECT_EQ(w.stage1.hit.size(), functional.profile.mr().bm1Refs);

    // Stage 2 uses a box-filter proxy for the basic estimate; the hit
    // rate should be close but need not be identical.
    EXPECT_NEAR(w.stage2.hitRate(), functional.profile.mr().hitRate2(),
                0.15);
}

TEST(Oracle, MrDisabledMeansNoHits)
{
    image::ImageF noisy = testImage(64);
    bm3d::Bm3dConfig cfg; // mr disabled
    core::Workload w = core::buildWorkload(noisy, cfg);
    EXPECT_EQ(w.stage1.hitRate(), 0.0);
    EXPECT_EQ(w.stage2.hitRate(), 0.0);
}

TEST(Oracle, HigherKMoreHits)
{
    image::ImageF noisy = testImage(96);
    bm3d::Bm3dConfig lo, hi;
    lo.mr.enabled = hi.mr.enabled = true;
    lo.mr.k = 0.1;
    hi.mr.k = 0.9;
    auto wl = core::buildWorkload(noisy, lo);
    auto wh = core::buildWorkload(noisy, hi);
    EXPECT_GE(wh.stage1.hitRate(), wl.stage1.hitRate());
    EXPECT_GE(wh.stage2.hitRate(), wl.stage2.hitRate());
}

TEST(Oracle, UniformSceneHitsAlmostAlways)
{
    auto clean = image::makeScene(image::SceneKind::Uniform, 96, 96, 1, 3);
    auto noisy = image::addGaussianNoise(clean, 10.0f, 4);
    bm3d::Bm3dConfig cfg;
    cfg.sigma = 10.0f;
    cfg.mr.enabled = true;
    cfg.mr.k = 0.5;
    auto w = core::buildWorkload(noisy, cfg);
    EXPECT_GT(w.stage1.hitRate(), 0.95);
}

TEST(Oracle, SyntheticWorkloadHitRate)
{
    bm3d::Bm3dConfig cfg;
    cfg.mr.enabled = true;
    auto w = core::makeSyntheticWorkload(256, 256, 3, cfg, 0.9, 0.95, 7);
    EXPECT_NEAR(w.stage1.hitRate(), 0.9, 0.03);
    EXPECT_NEAR(w.stage2.hitRate(), 0.95, 0.03);
}

TEST(Accelerator, IdealMrFasterThanIdealB)
{
    image::ImageF noisy = testImage(128);
    auto rb = core::simulateImage(AcceleratorConfig::idealB(), noisy);
    auto rmr = core::simulateImage(AcceleratorConfig::idealMr(0.5), noisy);
    // Paper Sec. 6.2: IDEALMR is 27-31x faster than IDEALB; window
    // clipping on small test images reduces the gap, but it must be
    // large.
    EXPECT_GT(static_cast<double>(rb.totalCycles()) /
                  static_cast<double>(rmr.totalCycles()),
              5.0);
}

TEST(Accelerator, HigherKFasterOrEqual)
{
    image::ImageF noisy = testImage(128);
    auto r25 = core::simulateImage(AcceleratorConfig::idealMr(0.25), noisy);
    auto r50 = core::simulateImage(AcceleratorConfig::idealMr(0.5), noisy);
    EXPECT_LE(r50.totalCycles(), r25.totalCycles());
    EXPECT_GE(r50.mrHitRate1, r25.mrHitRate1);
}

TEST(Accelerator, PrefetchingHelps)
{
    image::ImageF noisy = testImage(128);
    AcceleratorConfig with = AcceleratorConfig::idealMr(0.5);
    AcceleratorConfig without = with;
    without.prefetch = false;
    auto rw = core::simulateImage(with, noisy);
    auto rwo = core::simulateImage(without, noisy);
    EXPECT_LT(rw.totalCycles(), rwo.totalCycles());
}

TEST(Accelerator, BufferingMattersMost)
{
    // Table 8: disabling buffering entirely costs far more than
    // disabling prefetching.
    image::ImageF noisy = testImage(128);
    AcceleratorConfig base = AcceleratorConfig::idealMr(0.5);
    AcceleratorConfig none = base;
    none.prefetch = false;
    none.buffering = false;
    none.coalescing = false;
    auto rb = core::simulateImage(base, noisy);
    auto rn = core::simulateImage(none, noisy);
    EXPECT_GT(static_cast<double>(rn.totalCycles()) /
                  static_cast<double>(rb.totalCycles()),
              4.0);
}

TEST(Accelerator, LaneScalingSublinearAtHighCount)
{
    bm3d::Bm3dConfig algo;
    algo.mr.enabled = true;
    algo.mr.k = 0.5;
    auto w = core::makeSyntheticWorkload(512, 512, 3, algo, 0.99, 0.99, 9);
    auto run = [&](int lanes) {
        AcceleratorConfig cfg = AcceleratorConfig::idealMr(0.5);
        cfg.lanes = lanes;
        return core::simulate(cfg, w).totalCycles();
    };
    double c16 = static_cast<double>(run(16));
    double c32 = static_cast<double>(run(32));
    double c128 = static_cast<double>(run(128));
    double s32 = c16 / c32;   // ideal: 2
    double s128 = c16 / c128; // ideal: 8
    EXPECT_GT(s32, 1.6); // near-linear at 32 lanes (Fig. 16)
    EXPECT_LT(s128, 8.0); // sublinear by 128 lanes (bandwidth ceiling)
}

TEST(Accelerator, RuntimeScalesWithResolution)
{
    bm3d::Bm3dConfig algo;
    algo.mr.enabled = true;
    algo.mr.k = 0.5;
    auto w1 = core::makeSyntheticWorkload(256, 256, 3, algo, 0.97, 0.99, 3);
    auto w4 = core::makeSyntheticWorkload(512, 512, 3, algo, 0.97, 0.99, 3);
    AcceleratorConfig cfg = AcceleratorConfig::idealMr(0.5);
    auto r1 = core::simulate(cfg, w1);
    auto r4 = core::simulate(cfg, w4);
    double ratio = static_cast<double>(r4.totalCycles()) /
                   static_cast<double>(r1.totalCycles());
    EXPECT_NEAR(ratio, 4.0, 1.2); // linear in pixel count
}

TEST(Accelerator, BandwidthBelowPeak)
{
    image::ImageF noisy = testImage(128);
    auto r = core::simulateImage(AcceleratorConfig::idealMr(0.5), noisy);
    EXPECT_LE(r.averageBandwidthGBs(),
              AcceleratorConfig::idealMr().dram.peakGBs() * 1.001);
    EXPECT_GT(r.activity.dramBlocks, 0u);
}

TEST(Accelerator, ActivityCountsPopulated)
{
    image::ImageF noisy = testImage(96);
    auto r = core::simulateImage(AcceleratorConfig::idealMr(0.5), noisy);
    EXPECT_GT(r.activity.bmDistances, 0u);
    EXPECT_GT(r.activity.dctTransforms, 0u);
    EXPECT_GT(r.activity.deStackPatches, 0u);
    EXPECT_GT(r.activity.bufferReads, 0u);
    // Both stages ran.
    EXPECT_GT(r.stage1Cycles, 0u);
    EXPECT_GT(r.stage2Cycles, 0u);
}

TEST(Accelerator, Stage2CheaperThanStage1ForIdealB)
{
    // BM2's window is 39x39 vs BM1's 49x49; with no MR the stage
    // cycle ratio should track the window-area ratio.
    image::ImageF noisy = testImage(128);
    auto r = core::simulateImage(AcceleratorConfig::idealB(), noisy);
    double ratio = static_cast<double>(r.stage2Cycles) /
                   static_cast<double>(r.stage1Cycles);
    EXPECT_LT(ratio, 1.0);
    EXPECT_GT(ratio, 0.3);
}

TEST(Accelerator, CoalescingReducesTraffic)
{
    image::ImageF noisy = testImage(128);
    AcceleratorConfig with = AcceleratorConfig::idealMr(0.5);
    AcceleratorConfig without = with;
    without.coalescing = false;
    auto rw = core::simulateImage(with, noisy);
    auto rwo = core::simulateImage(without, noisy);
    EXPECT_LT(rw.activity.dramBlocks, rwo.activity.dramBlocks);
}

TEST(Accelerator, DeterministicCycles)
{
    image::ImageF noisy = testImage(96);
    auto a = core::simulateImage(AcceleratorConfig::idealMr(0.25), noisy);
    auto b = core::simulateImage(AcceleratorConfig::idealMr(0.25), noisy);
    EXPECT_EQ(a.totalCycles(), b.totalCycles());
    EXPECT_EQ(a.activity.dramBlocks, b.activity.dramBlocks);
}

TEST(Accelerator, StrideThreeReducesWork)
{
    image::ImageF noisy = testImage(128);
    // Fig. 15's relaxed configurations pair the larger stride with a
    // larger K: Ps = 3 processes ~1/9 the reference patches but its
    // references are 3 px apart, so the MR hit rate drops and each
    // reuse search scans a 3x wider new column; the net win is modest
    // - Fig. 15 shows IDEAL_1_3 at ~90 FPS vs ~65 FPS for IDEAL_1_1,
    // i.e. ~1.4x, not 9x.
    image::ImageF big = testImage(256);
    auto r1 = core::simulateImage(AcceleratorConfig::idealMr(1.0, 1), big);
    auto r3 = core::simulateImage(AcceleratorConfig::idealMr(1.0, 3), big);
    EXPECT_LT(static_cast<double>(r3.totalCycles()),
              static_cast<double>(r1.totalCycles()) / 1.25);
}

TEST(Accelerator, IdealBSingleEdctSuffices)
{
    // Sec. 4: "a single EDCT and a single EDE are sufficient to
    // sustain the 16 EBMs" - the shared EDCT's occupancy must stay
    // below the BM broadcast time.
    image::ImageF noisy = testImage(128);
    auto r = core::simulateImage(AcceleratorConfig::idealB(), noisy);
    double edct = r.stats.get("idealb.edctWork");
    double bm = r.stats.get("idealb.bmWork");
    ASSERT_GT(bm, 0.0);
    EXPECT_LT(edct / bm, 1.0);
    EXPECT_GT(edct / bm, 0.3); // but not trivially idle either
}

TEST(Accelerator, IdealBMultiPortBounded)
{
    // Sec. 4.3: the single-port PB costs ~12.5% vs multi-ported.
    image::ImageF noisy = testImage(128);
    AcceleratorConfig multi = AcceleratorConfig::idealB();
    multi.pbPorts = 16;
    auto r1 = core::simulateImage(AcceleratorConfig::idealB(), noisy);
    auto rm = core::simulateImage(multi, noisy);
    double penalty = static_cast<double>(r1.totalCycles()) /
                         static_cast<double>(rm.totalCycles()) - 1.0;
    EXPECT_GT(penalty, 0.02);
    EXPECT_LT(penalty, 0.40);
}
