/**
 * @file
 * Tests for the commodity-baseline suite: measured CPU rates,
 * modelled GPU/ARM rates, and the expected orderings from the
 * paper's Sec. 3 analysis.
 */

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "parallel/pool.h"

using namespace ideal;
using baseline::BaselineSuite;
using baseline::Platform;

namespace {

/** Shared suite with a small probe (measuring is expensive). */
BaselineSuite &
suite()
{
    static BaselineSuite s(96, 25.0f);
    return s;
}

} // namespace

TEST(Baseline, CpuRateMeasuredPositive)
{
    const auto &r = suite().rate(Platform::CpuVect);
    EXPECT_GT(r.secondsPerMp, 0.0);
    EXPECT_FALSE(r.modelled);
    double total = 0.0;
    for (double f : r.stepFraction)
        total += f;
    EXPECT_NEAR(total, 1.0, 0.15);
}

TEST(Baseline, BlockMatchingDominatesCpuTime)
{
    // Fig. 4: BM1 + BM2 take ~67% of CPU runtime.
    const auto &r = suite().rate(Platform::CpuVect);
    double bm = r.stepFraction[static_cast<int>(bm3d::Step::Bm1)] +
                r.stepFraction[static_cast<int>(bm3d::Step::Bm2)];
    EXPECT_GT(bm, 0.4);
}

TEST(Baseline, MrCpuFasterThanPlain)
{
    // Fig. 13a: MR gives ~3x on a single thread.
    double plain = suite().rate(Platform::CpuVect).secondsPerMp;
    double mr = suite().rate(Platform::CpuMr05).secondsPerMp;
    EXPECT_LT(mr, plain);
}

TEST(Baseline, ThreadsFasterThanSingle)
{
    if (parallel::hardwareThreads() < 2)
        GTEST_SKIP() << "needs >= 2 hardware threads to speed up";
    double single = suite().rate(Platform::CpuVect).secondsPerMp;
    double threads = suite().rate(Platform::CpuThreads).secondsPerMp;
    EXPECT_LT(threads, single);
}

TEST(Baseline, ArmModelledSlower)
{
    const auto &arm = suite().rate(Platform::ArmVect);
    EXPECT_TRUE(arm.modelled);
    EXPECT_NEAR(arm.secondsPerMp /
                    suite().rate(Platform::CpuVect).secondsPerMp,
                baseline::paper::kArmSlowdown, 1e-9);
}

TEST(Baseline, GpuModelledFasterWithBmHeavyBreakdown)
{
    const auto &gpu = suite().rate(Platform::Gpu);
    EXPECT_TRUE(gpu.modelled);
    EXPECT_LT(gpu.secondsPerMp,
              suite().rate(Platform::CpuVect).secondsPerMp);
    double bm = gpu.stepFraction[static_cast<int>(bm3d::Step::Bm1)] +
                gpu.stepFraction[static_cast<int>(bm3d::Step::Bm2)];
    EXPECT_NEAR(bm, baseline::paper::kGpuBmFraction, 1e-6);
}

TEST(Baseline, SecondsLinearInMegapixels)
{
    double one = suite().seconds(Platform::Gpu, 1.0);
    double sixteen = suite().seconds(Platform::Gpu, 16.0);
    EXPECT_NEAR(sixteen / one, 16.0, 1e-9);
}

TEST(Baseline, PlatformNames)
{
    EXPECT_STREQ(baseline::toString(Platform::Gpu), "GPU");
    EXPECT_STREQ(baseline::toString(Platform::CpuMr025), "MR (0.25)");
}

TEST(Baseline, ConfigsDifferPerPlatform)
{
    BaselineSuite s(48, 25.0f);
    EXPECT_FALSE(s.configFor(Platform::CpuBasic).boundedDistance);
    EXPECT_TRUE(s.configFor(Platform::CpuVect).boundedDistance);
    EXPECT_GT(s.configFor(Platform::CpuThreads).numThreads, 1);
    EXPECT_TRUE(s.configFor(Platform::CpuMr025).mr.enabled);
    EXPECT_DOUBLE_EQ(s.configFor(Platform::CpuMr05).mr.k, 0.5);
}
