#include "energy/model.h"

#include <cmath>

namespace ideal {
namespace energy {

const char *
toString(TechNode node)
{
    switch (node) {
      case TechNode::Tsmc65: return "TSMC 65nm";
      case TechNode::Stm28: return "STM 28nm";
    }
    return "?";
}

EnergyModel::EnergyModel(TechNode node) : node_(node)
{
    // Per-component areas at 65 nm / 12-bit fraction, solved from the
    // paper's totals (see header): 16*bm + de + dct + PB = 5.5 mm^2
    // (IDEALB) and 16*bm + 16*de + 48*dct + 16 SWB = 23.08 mm^2 with
    // the DEs at 79% of IDEALMR.
    bmAreaMm2_ = 0.2406;
    deAreaMm2_ = 1.139;
    dctAreaMm2_ = 0.0108;
    sramMm2PerKb_ = 0.00395;

    // Dynamic energy constants (65 nm), calibrated so a simulated
    // IDEALMR run lands at ~12 W on-chip with the DEs at ~62% of power
    // and IDEALB lands at ~1.7 W on-chip (Table 7).
    pjPerDistance_ = 100.0;     // 16 sub + 16 mul + adder tree
    pjPerDePatch_ = 512.0;      // Haar + shrink + inverse Haar slice
    pjPerDct_ = 100.0;          // 64 mul + 48 add matrix product
    pjPerBufferAccess_ = 60.0;  // 48 B patch read from PB/SWB
    pjPerDramByte_ = 750.0; // 0.75 nJ per byte transferred
    dramStaticW_ = 3.8;         // 4 GB DDR3 background + refresh
    staticWPerMm2_ = 0.05;

    // Sec. 6.7: measured 65 nm -> 28 nm scaling of the full designs.
    areaScale_ = node == TechNode::Stm28 ? 7.9 / 23.08 : 1.0;
    powerScale_ = node == TechNode::Stm28 ? 5.1 / 12.05 : 1.0;
}

double
EnergyModel::widthScaleLinear(const core::AcceleratorConfig &cfg) const
{
    // Datapath operand width relative to the 12-bit-fraction design;
    // the integer part averages ~12 bits across pipeline stages.
    int frac = cfg.algo.fixedPoint ? cfg.algo.fixedPoint->dct.fracBits : 12;
    return (static_cast<double>(frac) + 12.0) / 24.0;
}

double
EnergyModel::widthScaleQuadratic(const core::AcceleratorConfig &cfg) const
{
    // Table 9 fit: area tracks operand width with exponent ~2.2
    // (multiplier-array dominated).
    return std::pow(widthScaleLinear(cfg), 2.2);
}

AreaBreakdown
EnergyModel::area(const core::AcceleratorConfig &cfg) const
{
    AreaBreakdown a;
    const double wq = widthScaleQuadratic(cfg);
    const double wl = widthScaleLinear(cfg);
    const int lanes = cfg.lanes;
    if (cfg.variant == core::Variant::IdealB) {
        a.bmEngines = lanes * bmAreaMm2_ * wq;
        a.deEngines = deAreaMm2_ * wq;
        a.dctEngines = dctAreaMm2_ * wq;
        a.buffers = cfg.bufferBytes() / 1024.0 * sramMm2PerKb_ * wl;
    } else {
        a.bmEngines = lanes * bmAreaMm2_ * wq;
        a.deEngines = lanes * deAreaMm2_ * wq;
        a.dctEngines = 3.0 * lanes * dctAreaMm2_ * wq;
        a.buffers = cfg.bufferBytes() / 1024.0 * sramMm2PerKb_ * wl;
    }
    a.bmEngines *= areaScale_;
    a.deEngines *= areaScale_;
    a.dctEngines *= areaScale_;
    a.buffers *= areaScale_;
    return a;
}

PowerBreakdown
EnergyModel::power(const core::AcceleratorConfig &cfg,
                   const core::SimResult &result) const
{
    PowerBreakdown p;
    const double seconds = result.seconds();
    if (seconds <= 0.0)
        return p;
    // Power tracks operand width with exponent ~1.6 (Table 9 fit).
    const double wp = std::pow(widthScaleLinear(cfg), 1.6);

    const core::Activity &act = result.activity;
    double core_pj = act.bmDistances * pjPerDistance_ +
                     act.deStackPatches * pjPerDePatch_ +
                     act.dctTransforms * pjPerDct_;
    double buffer_pj =
        (act.bufferReads + act.bufferWrites) * pjPerBufferAccess_;
    double dram_pj =
        static_cast<double>(act.dramBlocks) * 64.0 * pjPerDramByte_;

    AreaBreakdown a = area(cfg);
    double engines_mm2 = a.bmEngines + a.deEngines + a.dctEngines;

    p.core = (core_pj * 1e-12 / seconds * wp +
              engines_mm2 * staticWPerMm2_) * powerScale_;
    p.buffers = (buffer_pj * 1e-12 / seconds * wp +
                 a.buffers * staticWPerMm2_) * powerScale_;
    p.dram = dram_pj * 1e-12 / seconds + dramStaticW_;
    return p;
}

double
EnergyModel::energyJoules(const core::AcceleratorConfig &cfg,
                          const core::SimResult &result) const
{
    return power(cfg, result).total() * result.seconds();
}

double
EnergyModel::sharpenAreaMm2() const
{
    return 0.09 * areaScale_;
}

double
EnergyModel::sharpenPowerW() const
{
    return 0.12 * powerScale_;
}

} // namespace energy
} // namespace ideal
