#ifndef IDEAL_ENERGY_MODEL_H_
#define IDEAL_ENERGY_MODEL_H_

/**
 * @file
 * Area, power and energy model for the IDEAL accelerators
 * (paper Secs. 6.3, 6.4, 6.7, 6.8).
 *
 * The paper derives these numbers from Synopsys DC synthesis on TSMC
 * 65 nm (STM 28 nm for the scaling study) plus CACTI for the buffers.
 * Neither flow is available offline, so this model uses per-component
 * constants *solved from the paper's published totals*:
 *
 *  - IDEALB  (16 EBM + 1 EDE + 1 EDCT + 126.75 KB PB) = 5.5 mm^2,
 *    1.68 W on-chip;
 *  - IDEALMR (16 EBM + 16 EDE + 48 EDCT + 16 x 6.5 KB SWB) =
 *    23.08 mm^2, 12.05 W on-chip, with the DEs contributing 79% of
 *    area and 62% of power;
 *  - 28 nm: 1.44 mm^2 / 0.65 W (IDEALB), 7.9 mm^2 / 5.1 W (IDEALMR);
 *  - Table 9 precision scaling: multiplier-dominated datapath area
 *    scales ~quadratically in operand width, adders/buffers linearly.
 *
 * Dynamic energy uses per-event constants (distance evaluations, DE
 * stack patches, DCT transforms, buffer accesses, DRAM blocks) so
 * that *relative* trends across configurations are generated from
 * simulated activity, not transcribed.
 */

#include <cstdint>
#include <string>

#include "core/config.h"
#include "core/result.h"

namespace ideal {
namespace energy {

/** Process technology of the synthesis target. */
enum class TechNode {
    Tsmc65, ///< TSMC 65 nm (the paper's primary target)
    Stm28,  ///< STM 28 nm (Sec. 6.7 scaling study)
};

/** Per-component area estimates in mm^2. */
struct AreaBreakdown
{
    double bmEngines = 0.0;
    double deEngines = 0.0;
    double dctEngines = 0.0;
    double buffers = 0.0;

    double
    total() const
    {
        return bmEngines + deEngines + dctEngines + buffers;
    }
};

/** Power breakdown in watts (Table 7's row format). */
struct PowerBreakdown
{
    double core = 0.0;     ///< compute engines
    double buffers = 0.0;  ///< on-chip SRAM
    double dram = 0.0;     ///< off-chip DRAM

    double onChip() const { return core + buffers; }
    double total() const { return core + buffers + dram; }
};

/** Energy/area model instance for one tech node. */
class EnergyModel
{
  public:
    explicit EnergyModel(TechNode node);

    TechNode node() const { return node_; }

    /**
     * Chip area of @p cfg at this node, honoring the fixed-point
     * fractional width (Table 9) and lane count (Fig. 16 contexts).
     */
    AreaBreakdown area(const core::AcceleratorConfig &cfg) const;

    /**
     * Average power of a simulated run: dynamic energy from activity
     * counters divided by runtime, plus static power proportional to
     * area.
     */
    PowerBreakdown power(const core::AcceleratorConfig &cfg,
                         const core::SimResult &result) const;

    /** Total energy in joules of a simulated run. */
    double energyJoules(const core::AcceleratorConfig &cfg,
                        const core::SimResult &result) const;

    /**
     * Area/power cost of the Sec. 7 sharpening extension: alpha-root
     * units appended to the 16 DE pipelines (paper: +0.09 mm^2,
     * +0.12 W at 65 nm).
     */
    double sharpenAreaMm2() const;
    double sharpenPowerW() const;

  private:
    /** Datapath width scaling relative to the 12-bit-fraction design. */
    double widthScaleLinear(const core::AcceleratorConfig &cfg) const;
    double widthScaleQuadratic(const core::AcceleratorConfig &cfg) const;

    TechNode node_;

    // Per-component areas at 65 nm, 12-bit fraction (solved from the
    // paper's totals; see file header).
    double bmAreaMm2_;
    double deAreaMm2_;
    double dctAreaMm2_;
    double sramMm2PerKb_;

    // Dynamic energy per event in picojoules.
    double pjPerDistance_;
    double pjPerDePatch_;
    double pjPerDct_;
    double pjPerBufferAccess_;
    double pjPerDramByte_;
    double dramStaticW_;

    // Static power density (W per mm^2).
    double staticWPerMm2_;

    // Tech scaling factors relative to 65 nm (from Sec. 6.7).
    double areaScale_;
    double powerScale_;
};

/** Printable tech-node name. */
const char *toString(TechNode node);

} // namespace energy
} // namespace ideal

#endif // IDEAL_ENERGY_MODEL_H_
