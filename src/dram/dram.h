#ifndef IDEAL_DRAM_DRAM_H_
#define IDEAL_DRAM_DRAM_H_

/**
 * @file
 * Bank-level DDR3 timing model with a dual-channel memory controller
 * (our DRAMSim2 stand-in). Transaction interface: the accelerator
 * enqueues 64 B block requests tagged with an id; tick() advances the
 * channel schedulers; completed ids are returned to the caller.
 *
 * The model captures the effects that matter for the paper's
 * experiments: per-channel data-bus occupancy (the bandwidth ceiling
 * of Fig. 16), row-buffer locality (streaming search windows are
 * row-hit friendly), bank parallelism, and bounded in-flight requests
 * (Table 2: 32).
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "dram/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace ideal {
namespace dram {

/** One block request. */
struct Request
{
    sim::Addr addr = 0;
    bool write = false;
    uint64_t id = 0;
};

/** A completed request id with its completion cycle. */
struct Completion
{
    uint64_t id = 0;
    sim::Cycle finishedAt = 0;
};

/** The memory system: N channels, each with banks and a data bus. */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &config);

    const DramConfig &config() const { return config_; }

    /** Can another request be accepted this cycle? */
    bool canAccept(sim::Addr addr) const;

    /**
     * Enqueue a block request. @return false if the target channel
     * queue or the global in-flight limit is full.
     */
    bool enqueue(const Request &request, sim::Cycle now);

    /** Advance the schedulers to cycle @p now (call once per cycle). */
    void tick(sim::Cycle now);

    /** Drain requests that completed at or before @p now. */
    std::vector<Completion> collectCompletions(sim::Cycle now);

    /** Number of requests in queues or in flight. */
    int inFlight() const { return inFlight_; }

    /** True when no request is queued or in flight. */
    bool idle() const { return inFlight_ == 0; }

    /** Accumulated statistics (reads, writes, row hits, ...). */
    const sim::StatsRegistry &stats() const { return stats_; }

    /** Total bytes transferred. */
    uint64_t bytesTransferred() const { return bytes_; }

    /** Average read latency in cycles (enqueue to completion). */
    double averageLatency() const;

  private:
    struct Bank
    {
        int64_t openRow = -1;      ///< -1: closed
        sim::Cycle readyAt = 0;    ///< earliest next column command
        sim::Cycle activatedAt = 0;
    };

    struct Pending
    {
        Request request;
        sim::Cycle enqueuedAt = 0;
    };

    struct Channel
    {
        std::deque<Pending> queue;
        std::vector<Bank> banks;
        sim::Cycle busFreeAt = 0;
    };

    int channelOf(sim::Addr addr) const;
    int bankOf(sim::Addr addr) const;
    int64_t rowOf(sim::Addr addr) const;

    /** Pick the next request index in @p ch to service (FR-FCFS). */
    int pickNext(const Channel &ch) const;

    DramConfig config_;
    std::vector<Channel> channels_;
    std::vector<Completion> completions_;
    int inFlight_ = 0;
    uint64_t bytes_ = 0;
    uint64_t latencySum_ = 0;
    uint64_t reads_ = 0;
    sim::StatsRegistry stats_;
};

} // namespace dram
} // namespace ideal

#endif // IDEAL_DRAM_DRAM_H_
