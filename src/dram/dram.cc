#include "dram/dram.h"

#include <algorithm>

namespace ideal {
namespace dram {

DramSystem::DramSystem(const DramConfig &config) : config_(config)
{
    config_.validate();
    channels_.resize(config_.channels);
    for (auto &ch : channels_)
        ch.banks.resize(config_.banksPerChannel);
}

int
DramSystem::channelOf(sim::Addr addr) const
{
    // Consecutive 64 B blocks interleave across channels so streaming
    // accesses use both channels.
    return static_cast<int>((addr / config_.blockBytes) %
                            config_.channels);
}

int
DramSystem::bankOf(sim::Addr addr) const
{
    // Row-size chunks interleave across banks within a channel.
    sim::Addr chan_local = addr / (config_.blockBytes * config_.channels);
    sim::Addr blocks_per_row =
        static_cast<sim::Addr>(config_.rowBytes / config_.blockBytes);
    return static_cast<int>((chan_local / blocks_per_row) %
                            config_.banksPerChannel);
}

int64_t
DramSystem::rowOf(sim::Addr addr) const
{
    sim::Addr chan_local = addr / (config_.blockBytes * config_.channels);
    sim::Addr blocks_per_row =
        static_cast<sim::Addr>(config_.rowBytes / config_.blockBytes);
    return static_cast<int64_t>(chan_local / blocks_per_row /
                                config_.banksPerChannel);
}

bool
DramSystem::canAccept(sim::Addr addr) const
{
    if (inFlight_ >= config_.maxInFlight)
        return false;
    const Channel &ch = channels_[channelOf(addr)];
    return ch.queue.size() <
           static_cast<size_t>(config_.queueDepth);
}

bool
DramSystem::enqueue(const Request &request, sim::Cycle now)
{
    if (!canAccept(request.addr))
        return false;
    Channel &ch = channels_[channelOf(request.addr)];
    ch.queue.push_back(Pending{request, now});
    ++inFlight_;
    // Controller occupancy high-water marks. Max-stats: merging the
    // stats of several runs keeps the peak instead of summing it.
    stats_.setMax("dram.queue.peakInFlight",
                  static_cast<double>(inFlight_));
    stats_.setMax("dram.queue.peakChannelDepth",
                  static_cast<double>(ch.queue.size()));
    return true;
}

int
DramSystem::pickNext(const Channel &ch) const
{
    if (!config_.frfcfs || ch.queue.size() <= 1)
        return ch.queue.empty() ? -1 : 0;
    // FR-FCFS: oldest row-hit first, falling back to the oldest.
    for (size_t i = 0; i < ch.queue.size(); ++i) {
        const Pending &p = ch.queue[i];
        const Bank &bank = ch.banks[bankOf(p.request.addr)];
        if (bank.openRow == rowOf(p.request.addr))
            return static_cast<int>(i);
    }
    return 0;
}

void
DramSystem::tick(sim::Cycle now)
{
    for (Channel &ch : channels_) {
        if (ch.queue.empty())
            continue;
        int idx = pickNext(ch);
        if (idx < 0)
            continue;
        Pending pending = ch.queue[idx];
        ch.queue.erase(ch.queue.begin() + idx);

        const Request &req = pending.request;
        sim::Cycle finish;
        if (config_.idealSingleCycle) {
            finish = now + 1;
        } else {
            Bank &bank = ch.banks[bankOf(req.addr)];
            const int64_t row = rowOf(req.addr);
            // Column commands pipeline: bank.readyAt tracks when the
            // next column command may issue (tCCD ~ tBURST), so CAS
            // latency overlaps across back-to-back row hits.
            sim::Cycle cmd;
            if (bank.openRow == row) {
                stats_.add("dram.rowHits", 1);
                cmd = std::max(now, bank.readyAt);
            } else if (bank.openRow >= 0) {
                stats_.add("dram.rowConflicts", 1);
                sim::Cycle pre = std::max(std::max(now, bank.readyAt),
                                          bank.activatedAt +
                                              config_.tRas());
                sim::Cycle act = pre + config_.tRp();
                cmd = act + config_.tRcd();
                bank.activatedAt = act;
            } else {
                stats_.add("dram.rowClosed", 1);
                sim::Cycle act = std::max(now, bank.readyAt);
                cmd = act + config_.tRcd();
                bank.activatedAt = act;
            }
            bank.openRow = row;
            bank.readyAt = cmd + config_.tBurst();
            sim::Cycle data_ready = cmd + config_.tCl();
            sim::Cycle bus_start = std::max(data_ready, ch.busFreeAt);
            finish = bus_start + config_.tBurst();
            ch.busFreeAt = finish;
        }

        completions_.push_back(Completion{req.id, finish});
        bytes_ += config_.blockBytes;
        latencySum_ += finish - pending.enqueuedAt;
        if (req.write) {
            stats_.add("dram.writes", 1);
        } else {
            stats_.add("dram.reads", 1);
            ++reads_;
        }
    }
}

std::vector<Completion>
DramSystem::collectCompletions(sim::Cycle now)
{
    std::vector<Completion> done;
    auto it = completions_.begin();
    while (it != completions_.end()) {
        if (it->finishedAt <= now) {
            done.push_back(*it);
            it = completions_.erase(it);
            --inFlight_;
        } else {
            ++it;
        }
    }
    return done;
}

double
DramSystem::averageLatency() const
{
    uint64_t total = static_cast<uint64_t>(stats_.get("dram.reads")) +
                     static_cast<uint64_t>(stats_.get("dram.writes"));
    return total ? static_cast<double>(latencySum_) / total : 0.0;
}

} // namespace dram
} // namespace ideal
