#ifndef IDEAL_DRAM_CONFIG_H_
#define IDEAL_DRAM_CONFIG_H_

/**
 * @file
 * DDR3 memory-system configuration. The paper's accelerators use a
 * dual-channel DDR3-1333 controller with 32 in-flight requests and
 * 4 GB of DRAM (Table 2), modelled via DRAMSim2; this module is our
 * equivalent bank-level timing model.
 */

#include <cstdint>
#include <stdexcept>

#include "sim/types.h"

namespace ideal {
namespace dram {

/** Bank-level DDR timing and topology, in core-clock cycles. */
struct DramConfig
{
    /// Core (accelerator) clock the timings are expressed in.
    double coreFreqGhz = 1.0;

    int channels = 2;
    int banksPerChannel = 8;
    /// Open row ("page") size per bank in bytes.
    int rowBytes = 8192;
    /// Transfer granularity: one memory block per request.
    int blockBytes = 64;

    /// Peak data rate per channel in GB/s (DDR3-1333 x64: 10.667).
    double channelGBs = 10.667;

    // DDR3-1333H (CL9-9-9) timings in nanoseconds.
    double tRcdNs = 13.5;  ///< activate -> column command
    double tClNs = 13.5;   ///< column command -> first data
    double tRpNs = 13.5;   ///< precharge
    double tRasNs = 36.0;  ///< activate -> precharge minimum

    /// Total outstanding requests the controller tracks (Table 2: 32).
    int maxInFlight = 32;

    /// Per-channel request queue depth.
    int queueDepth = 16;

    /// Use first-ready (row-hit-first) scheduling instead of FCFS.
    bool frfcfs = true;

    /// Idealized memory: every request completes in one cycle. Used by
    /// the prefetch/buffering sensitivity study (Sec. 5.3 mentions
    /// IDEALMR is within 9.5% of a single-cycle-latency memory).
    bool idealSingleCycle = false;

    sim::Cycle tRcd() const { return sim::nsToCycles(tRcdNs, coreFreqGhz); }
    sim::Cycle tCl() const { return sim::nsToCycles(tClNs, coreFreqGhz); }
    sim::Cycle tRp() const { return sim::nsToCycles(tRpNs, coreFreqGhz); }
    sim::Cycle tRas() const { return sim::nsToCycles(tRasNs, coreFreqGhz); }

    /** Cycles the data bus is busy transferring one block. */
    sim::Cycle
    tBurst() const
    {
        double ns = static_cast<double>(blockBytes) / channelGBs;
        sim::Cycle c = sim::nsToCycles(ns, coreFreqGhz);
        return c == 0 ? 1 : c;
    }

    /** Aggregate peak bandwidth in GB/s. */
    double peakGBs() const { return channelGBs * channels; }

    void
    validate() const
    {
        if (channels < 1 || (channels & (channels - 1)) != 0)
            throw std::invalid_argument("channels must be a power of two");
        if (banksPerChannel < 1 ||
            (banksPerChannel & (banksPerChannel - 1)) != 0)
            throw std::invalid_argument("banks must be a power of two");
        if (blockBytes < 1 || rowBytes < blockBytes)
            throw std::invalid_argument("bad block/row sizes");
        if (maxInFlight < 1 || queueDepth < 1)
            throw std::invalid_argument("bad queue limits");
        if (coreFreqGhz <= 0 || channelGBs <= 0)
            throw std::invalid_argument("bad rates");
    }
};

} // namespace dram
} // namespace ideal

#endif // IDEAL_DRAM_CONFIG_H_
