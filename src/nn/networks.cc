#include "nn/networks.h"

namespace ideal {
namespace nn {

NetworkDescriptor
makeMl1(uint64_t seed)
{
    NetworkDescriptor d;
    d.net = std::make_unique<Network>("ML1");
    // Table 5: L1 1522x3072, L2 3073x3072, L3 3073x2559, L4 2560x2047,
    // L5 2048x289. The odd input sizes are the previous layer's output
    // plus a bias input.
    d.net->add(std::make_unique<DenseLayer>(1522, 3072, true, seed + 1));
    d.net->add(std::make_unique<DenseLayer>(3073, 3072, true, seed + 2));
    d.net->add(std::make_unique<DenseLayer>(3073, 2559, true, seed + 3));
    d.net->add(std::make_unique<DenseLayer>(2560, 2047, true, seed + 4));
    d.net->add(std::make_unique<DenseLayer>(2048, 289, false, seed + 5));
    d.inputTile = 39;
    d.outputTile = 17;
    d.trunkDownsample = 1;
    return d;
}

NetworkDescriptor
makeMl2(uint64_t seed)
{
    NetworkDescriptor d;
    d.net = std::make_unique<Network>("ML2");
    // Table 5: 15 layers, 64x64 channels, 3x3 kernels, 320x320 input
    // tiles producing 256x256 outputs. The conv trunk runs on the
    // packed Bayer mosaic at half resolution (160x160 activations).
    const int trunk_spatial = 160;
    d.net->add(std::make_unique<Conv2dLayer>(4, 64, 3, true, trunk_spatial,
                                             seed + 1));
    for (int l = 0; l < 13; ++l)
        d.net->add(std::make_unique<Conv2dLayer>(64, 64, 3, true,
                                                 trunk_spatial,
                                                 seed + 2 + l));
    d.net->add(std::make_unique<Conv2dLayer>(64, 12, 3, false,
                                             trunk_spatial, seed + 20));
    d.inputTile = 320;
    d.outputTile = 256;
    d.trunkDownsample = 2;
    return d;
}

} // namespace nn
} // namespace ideal
