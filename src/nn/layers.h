#ifndef IDEAL_NN_LAYERS_H_
#define IDEAL_NN_LAYERS_H_

/**
 * @file
 * Inference-only layer implementations for the two NN approximations
 * of BM3D the paper evaluates (Table 5): fully-connected layers (the
 * Burger et al. MLP, "ML1") and 3x3 same-padding convolutions (the
 * Gharbi et al. CNN, "ML2"), with ReLU activations.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace ideal {
namespace nn {

/** Abstract inference layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Forward pass. */
    virtual Tensor forward(const Tensor &in) const = 0;

    /** Multiply-accumulate count of one forward pass. */
    virtual uint64_t macs() const = 0;

    /** Number of weight parameters (incl. biases). */
    virtual uint64_t weights() const = 0;

    virtual std::string name() const = 0;
};

/** Fully connected layer: out = relu?(W x + b). */
class DenseLayer : public Layer
{
  public:
    /**
     * @param inputs   input vector length
     * @param outputs  output vector length
     * @param relu     apply ReLU after the affine map
     * @param seed     deterministic weight initialization
     */
    DenseLayer(int inputs, int outputs, bool relu, uint64_t seed);

    Tensor forward(const Tensor &in) const override;
    uint64_t macs() const override;
    uint64_t weights() const override;
    std::string name() const override;

  private:
    int inputs_;
    int outputs_;
    bool relu_;
    std::vector<float> w_; ///< outputs x inputs, row-major
    std::vector<float> b_;
};

/** 3x3 same-padding convolution over CHW tensors. */
class Conv2dLayer : public Layer
{
  public:
    Conv2dLayer(int in_channels, int out_channels, int kernel, bool relu,
                int spatial, uint64_t seed);

    Tensor forward(const Tensor &in) const override;
    uint64_t macs() const override;
    uint64_t weights() const override;
    std::string name() const override;

  private:
    int inC_;
    int outC_;
    int k_;
    bool relu_;
    int spatial_; ///< assumed H = W of the input, for MAC accounting
    std::vector<float> w_; ///< outC x inC x k x k
    std::vector<float> b_;
};

/** A feed-forward network: an ordered list of layers. */
class Network
{
  public:
    explicit Network(std::string network_name)
        : name_(std::move(network_name))
    {
    }

    void
    add(std::unique_ptr<Layer> layer)
    {
        layers_.push_back(std::move(layer));
    }

    const std::string &name() const { return name_; }
    size_t depth() const { return layers_.size(); }
    const Layer &layer(size_t i) const { return *layers_[i]; }

    Tensor forward(const Tensor &in) const;

    uint64_t totalMacs() const;
    uint64_t totalWeights() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace nn
} // namespace ideal

#endif // IDEAL_NN_LAYERS_H_
