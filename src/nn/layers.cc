#include "nn/layers.h"

#include <cmath>

#include "image/synthetic.h"

namespace ideal {
namespace nn {

namespace {

/** He-style random init: the networks are used for timing/energy, so
 * the specific values only need to be deterministic and well-scaled. */
void
initWeights(std::vector<float> &w, int fan_in, uint64_t seed)
{
    image::SplitMix64 rng(seed);
    const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
    for (float &v : w)
        v = (rng.uniform() * 2.0f - 1.0f) * scale;
}

} // namespace

DenseLayer::DenseLayer(int inputs, int outputs, bool relu, uint64_t seed)
    : inputs_(inputs), outputs_(outputs), relu_(relu),
      w_(static_cast<size_t>(inputs) * outputs), b_(outputs, 0.0f)
{
    if (inputs <= 0 || outputs <= 0)
        throw std::invalid_argument("DenseLayer: bad dimensions");
    initWeights(w_, inputs, seed);
}

Tensor
DenseLayer::forward(const Tensor &in) const
{
    // The ML1 layer dimensions (Table 5) include an implicit bias
    // input: a layer declared AxB accepts either A inputs or A-1
    // inputs plus a constant-1 bias neuron.
    const int n = static_cast<int>(in.size());
    if (n != inputs_ && n != inputs_ - 1)
        throw std::invalid_argument("DenseLayer: input length mismatch");
    Tensor out(1, 1, outputs_);
    for (int o = 0; o < outputs_; ++o) {
        const float *row = w_.data() + static_cast<size_t>(o) * inputs_;
        float acc = b_[o];
        for (int i = 0; i < n; ++i)
            acc += row[i] * in.raw()[i];
        if (n == inputs_ - 1)
            acc += row[inputs_ - 1]; // bias neuron fixed at 1.0
        out.raw()[o] = relu_ ? std::max(0.0f, acc) : acc;
    }
    return out;
}

uint64_t
DenseLayer::macs() const
{
    return static_cast<uint64_t>(inputs_) * outputs_;
}

uint64_t
DenseLayer::weights() const
{
    return static_cast<uint64_t>(inputs_) * outputs_ + outputs_;
}

std::string
DenseLayer::name() const
{
    return "fc" + std::to_string(inputs_) + "x" + std::to_string(outputs_);
}

Conv2dLayer::Conv2dLayer(int in_channels, int out_channels, int kernel,
                         bool relu, int spatial, uint64_t seed)
    : inC_(in_channels), outC_(out_channels), k_(kernel), relu_(relu),
      spatial_(spatial),
      w_(static_cast<size_t>(out_channels) * in_channels * kernel * kernel),
      b_(out_channels, 0.0f)
{
    if (in_channels <= 0 || out_channels <= 0 || kernel % 2 == 0)
        throw std::invalid_argument("Conv2dLayer: bad dimensions");
    initWeights(w_, in_channels * kernel * kernel, seed);
}

Tensor
Conv2dLayer::forward(const Tensor &in) const
{
    if (in.channels() != inC_)
        throw std::invalid_argument("Conv2dLayer: channel mismatch");
    Tensor out(outC_, in.height(), in.width());
    const int r = k_ / 2;
    for (int oc = 0; oc < outC_; ++oc) {
        for (int y = 0; y < in.height(); ++y) {
            for (int x = 0; x < in.width(); ++x) {
                float acc = b_[oc];
                for (int ic = 0; ic < inC_; ++ic)
                    for (int ky = -r; ky <= r; ++ky)
                        for (int kx = -r; kx <= r; ++kx) {
                            int yy = y + ky, xx = x + kx;
                            if (yy < 0 || yy >= in.height() || xx < 0 ||
                                xx >= in.width())
                                continue;
                            float wv = w_[((static_cast<size_t>(oc) * inC_ +
                                            ic) * k_ + (ky + r)) * k_ +
                                          (kx + r)];
                            acc += wv * in.at(ic, yy, xx);
                        }
                out.at(oc, y, x) = relu_ ? std::max(0.0f, acc) : acc;
            }
        }
    }
    return out;
}

uint64_t
Conv2dLayer::macs() const
{
    return static_cast<uint64_t>(spatial_) * spatial_ * inC_ * outC_ * k_ *
           k_;
}

uint64_t
Conv2dLayer::weights() const
{
    return static_cast<uint64_t>(outC_) * inC_ * k_ * k_ + outC_;
}

std::string
Conv2dLayer::name() const
{
    return "conv" + std::to_string(inC_) + "x" + std::to_string(outC_) +
           "k" + std::to_string(k_);
}

Tensor
Network::forward(const Tensor &in) const
{
    Tensor t = in;
    for (const auto &layer : layers_)
        t = layer->forward(t);
    return t;
}

uint64_t
Network::totalMacs() const
{
    uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer->macs();
    return total;
}

uint64_t
Network::totalWeights() const
{
    uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer->weights();
    return total;
}

} // namespace nn
} // namespace ideal
