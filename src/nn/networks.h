#ifndef IDEAL_NN_NETWORKS_H_
#define IDEAL_NN_NETWORKS_H_

/**
 * @file
 * The two NN denoisers the paper evaluates on DaDianNao (Table 5):
 *
 *  ML1 - Burger et al.: a 5-layer fully-connected network mapping a
 *        39x39 noisy patch (+bias input: 1522) to a denoised 17x17
 *        patch (289 outputs); 27.8 M weights. The image is processed
 *        in 17x17 output tiles.
 *
 *  ML2 - Gharbi et al.: a 15-layer 64-channel 3x3 CNN that jointly
 *        demosaics and denoises; processes 320x320 input tiles into
 *        256x256 outputs; 560 K weights. The convolutional trunk runs
 *        at half resolution on the packed Bayer mosaic.
 */

#include <memory>

#include "nn/layers.h"

namespace ideal {
namespace nn {

/** Tiling/descriptor of a patch- or tile-based image-to-image net. */
struct NetworkDescriptor
{
    std::unique_ptr<Network> net;
    int inputTile = 0;   ///< input tile edge in image pixels
    int outputTile = 0;  ///< output tile edge in image pixels
    /// Spatial scale the conv trunk runs at (1 = full res; 2 = the
    /// half-resolution packed-mosaic trunk of ML2).
    int trunkDownsample = 1;

    /** Forward passes needed to cover a width x height image. */
    uint64_t
    passesForImage(int width, int height) const
    {
        uint64_t tx = (static_cast<uint64_t>(width) + outputTile - 1) /
                      outputTile;
        uint64_t ty = (static_cast<uint64_t>(height) + outputTile - 1) /
                      outputTile;
        return tx * ty;
    }

    /** Total MACs to process a width x height image. */
    uint64_t
    macsForImage(int width, int height) const
    {
        return passesForImage(width, height) * net->totalMacs();
    }
};

/** Build ML1 (Table 5 left column). */
NetworkDescriptor makeMl1(uint64_t seed = 1);

/** Build ML2 (Table 5 right column). */
NetworkDescriptor makeMl2(uint64_t seed = 2);

} // namespace nn
} // namespace ideal

#endif // IDEAL_NN_NETWORKS_H_
