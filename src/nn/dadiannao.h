#ifndef IDEAL_NN_DADIANNAO_H_
#define IDEAL_NN_DADIANNAO_H_

/**
 * @file
 * Timing and energy model of a DaDianNao-class NN accelerator node
 * (Chen et al., MICRO 2014) configured as in the paper's Sec. 6.1:
 * synthesized at 65 nm alongside IDEAL; ML1 keeps its 27.8 M weights
 * (56 MB) in the on-chip eDRAM ("we assume it fits"), ML2 replaces the
 * 32 MB eDRAM synapse buffer with a 1.125 MB SRAM that holds all of
 * its weights.
 *
 * The model captures the first-order behaviour that separates the two
 * networks:
 *  - compute: `tiles x macsPerTile` MACs per cycle, with per-layer
 *    lane-alignment efficiency;
 *  - weight delivery: resident weights (ML2) feed the NFUs at full
 *    rate; streamed weights (ML1's fully-connected layers have no
 *    reuse within a pass) are limited by the synapse-buffer port
 *    width, which is what makes ML1 bandwidth-bound.
 */

#include <cstdint>

#include "nn/networks.h"
#include "sim/types.h"

namespace ideal {
namespace nn {

/** DaDianNao node configuration. */
struct DaDianNaoConfig
{
    int tiles = 16;
    int macsPerTile = 256;   ///< 16x16 multiplier array per NFU
    double freqGhz = 1.0;    ///< 65 nm synthesis target, as for IDEAL
    int laneWidth = 16;      ///< input/output neuron lanes per tile

    /// Central synapse-buffer port width for streamed weights (B/cycle).
    int weightPortBytes = 256;
    /// 2 B weights are resident (no streaming) if the model fits here.
    uint64_t residentWeightBytes = 2ull << 20;

    // Energy constants.
    double pjPerMac = 2.0;
    double pjPerWeightByte = 150.0; ///< eDRAM synapse read, per byte
    double pjPerActByte = 4.0;      ///< NBin/NBout + NoC, per byte
    /// Static/leakage power of the 56 MB-eDRAM node vs the SRAM node.
    double staticWEdram = 4.0;
    double staticWSram = 2.0;
    /// Off-chip DRAM for inputs/outputs.
    double dramStaticW = 0.4;
};

/** Result of running a network over an image on the model. */
struct NnRunResult
{
    uint64_t cycles = 0;
    double seconds = 0.0;
    uint64_t macs = 0;
    uint64_t weightBytesStreamed = 0;
    bool weightsResident = false;

    double corePowerW = 0.0;
    double bufferPowerW = 0.0;
    double dramPowerW = 0.0;

    double totalPowerW() const
    {
        return corePowerW + bufferPowerW + dramPowerW;
    }

    double energyJ() const { return totalPowerW() * seconds; }
};

/** Estimate one network pass / whole image on the node. */
class DaDianNao
{
  public:
    explicit DaDianNao(DaDianNaoConfig config = {});

    const DaDianNaoConfig &config() const { return config_; }

    /** Cycles for a single forward pass of @p desc. */
    uint64_t passCycles(const NetworkDescriptor &desc) const;

    /** Full run over a width x height image. */
    NnRunResult run(const NetworkDescriptor &desc, int width,
                    int height) const;

  private:
    /** MAC-lane utilization of a layer given lane alignment. */
    double laneEfficiency(const Layer &layer) const;

    DaDianNaoConfig config_;
};

} // namespace nn
} // namespace ideal

#endif // IDEAL_NN_DADIANNAO_H_
