#ifndef IDEAL_NN_TENSOR_H_
#define IDEAL_NN_TENSOR_H_

/**
 * @file
 * Minimal CHW float tensor for the neural-network substrate. Only
 * what inference of the paper's two denoising networks needs.
 */

#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace ideal {
namespace nn {

/** A channels x height x width float tensor (channel-major). */
class Tensor
{
  public:
    Tensor() = default;

    Tensor(int channels, int height, int width)
        : c_(channels), h_(height), w_(width),
          data_(checkedSize(channels, height, width), 0.0f)
    {
    }

    int channels() const { return c_; }
    int height() const { return h_; }
    int width() const { return w_; }
    size_t size() const { return data_.size(); }

    float &
    at(int c, int y, int x)
    {
        assert(c >= 0 && c < c_ && y >= 0 && y < h_ && x >= 0 && x < w_);
        return data_[(static_cast<size_t>(c) * h_ + y) * w_ + x];
    }

    float
    at(int c, int y, int x) const
    {
        assert(c >= 0 && c < c_ && y >= 0 && y < h_ && x >= 0 && x < w_);
        return data_[(static_cast<size_t>(c) * h_ + y) * w_ + x];
    }

    std::vector<float> &raw() { return data_; }
    const std::vector<float> &raw() const { return data_; }

  private:
    static size_t
    checkedSize(int c, int h, int w)
    {
        if (c <= 0 || h <= 0 || w <= 0)
            throw std::invalid_argument("Tensor dims must be positive");
        return static_cast<size_t>(c) * h * w;
    }

    int c_ = 0;
    int h_ = 0;
    int w_ = 0;
    std::vector<float> data_;
};

} // namespace nn
} // namespace ideal

#endif // IDEAL_NN_TENSOR_H_
