#include "nn/dadiannao.h"

#include <algorithm>
#include <cmath>

namespace ideal {
namespace nn {

namespace {

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

DaDianNao::DaDianNao(DaDianNaoConfig config) : config_(config) {}

double
DaDianNao::laneEfficiency(const Layer &layer) const
{
    // Neuron lanes come in groups of `laneWidth`; dimensions that are
    // not multiples leave multiplier lanes idle.
    const uint64_t lw = config_.laneWidth;
    // Infer in/out widths from the layer's MAC/weight structure via
    // its name prefix; both layer types expose enough through macs()
    // and weights(), so approximate with the weight matrix shape.
    // For conv layers the channel counts dominate alignment.
    const std::string n = layer.name();
    auto aligned = [&](uint64_t v) {
        return static_cast<double>(v) /
               static_cast<double>(ceilDiv(v, lw) * lw);
    };
    // Parse "fcAxB" / "convAxBkK".
    size_t x = n.find('x');
    if (x == std::string::npos)
        return 1.0;
    size_t start = n.find_first_of("0123456789");
    uint64_t a = std::stoull(n.substr(start, x - start));
    uint64_t b = std::stoull(n.substr(x + 1));
    return aligned(a) * aligned(b);
}

uint64_t
DaDianNao::passCycles(const NetworkDescriptor &desc) const
{
    const bool resident =
        desc.net->totalWeights() * 2 <= config_.residentWeightBytes;
    const uint64_t peak_macs =
        static_cast<uint64_t>(config_.tiles) * config_.macsPerTile;
    uint64_t total = 0;
    for (size_t i = 0; i < desc.net->depth(); ++i) {
        const Layer &layer = desc.net->layer(i);
        double eff = std::max(0.05, laneEfficiency(layer));
        uint64_t compute = ceilDiv(
            layer.macs(),
            static_cast<uint64_t>(static_cast<double>(peak_macs) * eff));
        uint64_t cycles = compute;
        if (!resident) {
            // Fully-connected weights have no reuse within a pass: the
            // synapse buffer port bounds throughput.
            uint64_t stream =
                ceilDiv(layer.weights() * 2, config_.weightPortBytes);
            cycles = std::max(cycles, stream);
        }
        total += cycles + 64; // per-layer pipeline drain / NoC sync
    }
    return total;
}

NnRunResult
DaDianNao::run(const NetworkDescriptor &desc, int width, int height) const
{
    NnRunResult r;
    r.weightsResident =
        desc.net->totalWeights() * 2 <= config_.residentWeightBytes;
    const uint64_t passes = desc.passesForImage(width, height);
    r.cycles = passes * passCycles(desc);
    r.seconds =
        static_cast<double>(r.cycles) / (config_.freqGhz * 1e9);
    r.macs = passes * desc.net->totalMacs();
    r.weightBytesStreamed =
        r.weightsResident ? 0 : passes * desc.net->totalWeights() * 2;

    // Power: dynamic from activity, static from the node variant.
    const double sec = std::max(r.seconds, 1e-12);
    r.corePowerW =
        static_cast<double>(r.macs) * config_.pjPerMac * 1e-12 / sec;
    // Activation traffic: each MAC lane consumes one 2 B input shared
    // across laneWidth output lanes, and writes outputs once.
    double act_bytes = static_cast<double>(r.macs) /
                       config_.laneWidth * 2.0;
    r.bufferPowerW =
        (static_cast<double>(r.weightBytesStreamed) *
             config_.pjPerWeightByte +
         act_bytes * config_.pjPerActByte) * 1e-12 / sec +
        (r.weightsResident ? config_.staticWSram : config_.staticWEdram);
    // Off-chip: noisy input tiles in, denoised image out (2 B/sample).
    double io_bytes =
        static_cast<double>(passes) * desc.inputTile * desc.inputTile *
            2.0 +
        static_cast<double>(width) * height * 3 * 2.0;
    r.dramPowerW = io_bytes * 20.0 * 1e-12 / sec + config_.dramStaticW;
    return r;
}

} // namespace nn
} // namespace ideal
