#include "core/oracle.h"

#include <cmath>

#include "bm3d/bm3d.h"
#include "image/synthetic.h"
#include "transforms/dct.h"
#include "transforms/distance.h"

namespace ideal {
namespace core {

namespace {

/** 3x3 box filter of a single plane (basic-estimate proxy for BM2). */
image::ImageF
boxFilter3(const image::ImageF &plane)
{
    image::ImageF out(plane.width(), plane.height(), 1);
    for (int y = 0; y < plane.height(); ++y)
        for (int x = 0; x < plane.width(); ++x) {
            float acc = 0.0f;
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    acc += plane.atClamped(x + dx, y + dy);
            out.at(x, y) = acc / 9.0f;
        }
    return out;
}

/**
 * Stream MR decisions for one stage. Memory use is O(patch), not
 * O(image): only the previous reference patch's descriptor is kept.
 */
StageWorkload
streamStage(const image::ImageF &plane, const bm3d::Bm3dConfig &cfg,
            bm3d::Stage stage)
{
    const int p = cfg.patchSize;
    const auto xs = bm3d::makeRefPositions(plane.width() - p,
                                           cfg.refStride);
    const auto ys = bm3d::makeRefPositions(plane.height() - p,
                                           cfg.refStride);
    StageWorkload out;
    out.refsX = static_cast<int>(xs.size());
    out.refsY = static_cast<int>(ys.size());
    out.hit.assign(static_cast<size_t>(out.refsX) * out.refsY, 0);
    if (!cfg.mr.enabled)
        return out;

    const float tau = cfg.tauMatch(stage);
    const float bound = static_cast<float>(cfg.mr.k) * tau;
    const float norm = 1.0f / static_cast<float>(p * p);
    const bool dct_domain = stage == bm3d::Stage::HardThreshold;
    const float tht = cfg.lambda2d * cfg.sigma;

    transforms::Dct2D dct(p);
    std::vector<float> prev(static_cast<size_t>(p) * p);
    std::vector<float> cur(static_cast<size_t>(p) * p);
    std::vector<float> pixels(static_cast<size_t>(p) * p);

    for (int yi = 0; yi < out.refsY; ++yi) {
        bool have_prev = false;
        for (int xi = 0; xi < out.refsX; ++xi) {
            // The tiled runner restarts the reuse chain at every tile's
            // left edge (tile columns start at multiples of tileGrain);
            // mirror that so hit counts match the functional run.
            if (xi % cfg.tileGrain == 0)
                have_prev = false;
            // Build this reference patch's matching-domain descriptor.
            for (int r = 0; r < p; ++r)
                for (int c = 0; c < p; ++c)
                    pixels[static_cast<size_t>(r) * p + c] =
                        plane.at(xs[xi] + c, ys[yi] + r);
            if (dct_domain) {
                dct.forward(pixels.data(), cur.data());
                if (tht > 0.0f)
                    for (float &v : cur)
                        v = std::abs(v) < tht ? 0.0f : v;
            } else {
                cur = pixels;
            }
            if (have_prev) {
                float d = transforms::squaredDistance(cur.data(),
                                                      prev.data(),
                                                      p * p) * norm;
                if (d < bound)
                    out.hit[static_cast<size_t>(yi) * out.refsX + xi] = 1;
            }
            std::swap(prev, cur);
            have_prev = true;
        }
    }
    return out;
}

} // namespace

Workload
buildWorkload(const image::ImageF &noisy, const bm3d::Bm3dConfig &cfg)
{
    cfg.validate();
    Workload w;
    w.width = noisy.width();
    w.height = noisy.height();
    w.channels = noisy.channels();
    image::ImageF plane0 = noisy.extractPlane(0);
    w.stage1 = streamStage(plane0, cfg, bm3d::Stage::HardThreshold);
    image::ImageF basic_proxy = boxFilter3(plane0);
    w.stage2 = streamStage(basic_proxy, cfg, bm3d::Stage::Wiener);
    return w;
}

Workload
makeSyntheticWorkload(int width, int height, int channels,
                      const bm3d::Bm3dConfig &cfg, double hit_rate1,
                      double hit_rate2, uint64_t seed)
{
    cfg.validate();
    Workload w;
    w.width = width;
    w.height = height;
    w.channels = channels;
    const int p = cfg.patchSize;
    auto fill = [&](StageWorkload &st, double rate, uint64_t salt) {
        const auto xs = bm3d::makeRefPositions(width - p, cfg.refStride);
        const auto ys = bm3d::makeRefPositions(height - p, cfg.refStride);
        st.refsX = static_cast<int>(xs.size());
        st.refsY = static_cast<int>(ys.size());
        st.hit.assign(static_cast<size_t>(st.refsX) * st.refsY, 0);
        if (!cfg.mr.enabled)
            return;
        image::SplitMix64 rng(seed ^ salt);
        for (size_t yi = 0; yi < static_cast<size_t>(st.refsY); ++yi) {
            for (size_t xi = 0; xi < static_cast<size_t>(st.refsX); ++xi) {
                // The first reference of each tile row never has a
                // predecessor, hence never hits.
                if (xi % static_cast<size_t>(cfg.tileGrain) == 0)
                    continue;
                st.hit[yi * st.refsX + xi] = rng.uniform() < rate ? 1 : 0;
            }
        }
    };
    fill(w.stage1, hit_rate1, 0x51A6E1ULL);
    fill(w.stage2, hit_rate2, 0x51A6E2ULL);
    return w;
}

} // namespace core
} // namespace ideal
