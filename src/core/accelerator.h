#ifndef IDEAL_CORE_ACCELERATOR_H_
#define IDEAL_CORE_ACCELERATOR_H_

/**
 * @file
 * Cycle-level simulators for the IDEALB and IDEALMR accelerators
 * (paper Secs. 4 and 5). The simulators are *timing* models driven by
 * a Workload (the per-reference-patch MR decisions, which are the only
 * content-dependence of the cycle count); functional output quality is
 * obtained from the bm3d library configured identically (fixed-point,
 * MR), and the two are cross-checked in the test suite.
 *
 * Modeled effects:
 *  - per-cycle engine occupancy: EBM (1 candidate distance/cycle),
 *    EDCT (1 patch/cycle, pipelined), EDE (1 stack patch/cycle plus
 *    pipeline fill);
 *  - IDEALB lock-step EBMs fed by a single-port patch buffer that
 *    broadcasts one patch per cycle over the collective search area;
 *  - IDEALMR independent lanes with per-lane SWBs, dynamic row
 *    assignment, cold-fill stalls, block-granular prefetching, and
 *    back-pressure from the per-lane denoising queue;
 *  - the DDR3 memory system (dram::DramSystem) with cross-lane
 *    request coalescing;
 *  - off-chip traffic for the matching plane plus the color channels
 *    consumed by the denoiser, and aggregated output writeback.
 */

#include "core/config.h"
#include "core/oracle.h"
#include "core/result.h"

namespace ideal {
namespace core {

/**
 * Simulate both BM3D stages of @p workload on the accelerator
 * described by @p cfg.
 */
SimResult simulate(const AcceleratorConfig &cfg, const Workload &workload);

/**
 * Convenience wrapper: build the workload from an image and simulate.
 */
SimResult simulateImage(const AcceleratorConfig &cfg,
                        const image::ImageF &noisy);

} // namespace core
} // namespace ideal

#endif // IDEAL_CORE_ACCELERATOR_H_
