#ifndef IDEAL_CORE_CONFIG_H_
#define IDEAL_CORE_CONFIG_H_

/**
 * @file
 * Configuration of the IDEAL accelerators (paper Table 2).
 *
 * IDEALB: 16 block-matching engines in lock step, one shared DCT
 * engine, one shared denoising engine, a shared 126.75 KB single-port
 * patch buffer.
 *
 * IDEALMR: 16 independent lanes, each with one BM engine, one DE
 * engine, three DCT engines and a 6.5 KB search-window buffer;
 * row-granularity scheduling, prefetching, and the Matches-Reuse
 * optimization.
 */

#include <stdexcept>

#include "bm3d/config.h"
#include "dram/config.h"

namespace ideal {
namespace core {

/** Which accelerator organization to simulate. */
enum class Variant {
    IdealB,  ///< basic accelerator (Sec. 4)
    IdealMr, ///< MR-optimized accelerator (Sec. 5)
};

/** Cycle-level engine timing parameters (1 GHz defaults). */
struct EngineTiming
{
    /// EDCT: pipelined, one patch transform accepted per cycle.
    int dctPatchesPerCycle = 1;
    /// EBM: one full 4x4 patch distance per cycle (16 subtractors,
    /// 16 multipliers, adder tree - Fig. 6).
    int bmCandidatesPerCycle = 1;
    /// EDE: one stack patch per cycle through the denoising lanes
    /// (a job is 16 matches x 3 channels = 48 patches).
    int dePatchesPerCycle = 1;
    /// Pipeline fill latency of a DE job (Haar + shrink + inverse).
    int dePipelineDepth = 12;
};

/** Accelerator configuration. */
struct AcceleratorConfig
{
    Variant variant = Variant::IdealMr;

    /// Core clock (Table 2: 1 GHz at 65 nm).
    double freqGhz = 1.0;

    /// Number of BM engines (IDEALB) or full lanes (IDEALMR).
    int lanes = 16;

    /// Number of denoising-job queue entries per consumer.
    int jobQueueDepth = 16;

    /// IDEALB: number of patch-buffer read ports (1 in the paper; the
    /// multi-port alternative is the Sec. 4.3 comparison point).
    int pbPorts = 1;

    /// IDEALMR: search-window-buffer entries hold two 64 B blocks so
    /// the next window along the row can be prefetched (Sec. 5.3).
    bool prefetch = true;

    /// Enable on-chip buffering (PB / SWBs). Disabling both this and
    /// prefetch reproduces the Table 8 "None" configuration where
    /// every search reads off-chip.
    bool buffering = true;

    /// Model cross-lane request coalescing: lanes working on adjacent
    /// rows share fetched blocks (Sec. 6.6 notes lanes' requests
    /// "often coalesce" when they advance synchronously).
    bool coalescing = true;

    /// Capacity of the coalescing buffer in 64 B blocks.
    int coalesceBlocks = 2048;

    EngineTiming timing;

    /// The BM3D algorithm parameters the accelerator executes.
    bm3d::Bm3dConfig algo;

    /// Off-chip memory system.
    dram::DramConfig dram;

    /** Convenience: configured for MR with factor @p k, stride ps. */
    static AcceleratorConfig
    idealMr(double k = 0.5, int ps = 1)
    {
        AcceleratorConfig cfg;
        cfg.variant = Variant::IdealMr;
        cfg.algo.mr.enabled = true;
        cfg.algo.mr.k = k;
        cfg.algo.refStride = ps;
        return cfg;
    }

    static AcceleratorConfig
    idealB()
    {
        AcceleratorConfig cfg;
        cfg.variant = Variant::IdealB;
        cfg.algo.mr.enabled = false;
        return cfg;
    }

    void
    validate() const
    {
        if (lanes < 1 || lanes > 1024)
            throw std::invalid_argument("lanes out of range");
        if (freqGhz <= 0)
            throw std::invalid_argument("freqGhz must be positive");
        if (pbPorts < 1)
            throw std::invalid_argument("pbPorts must be >= 1");
        if (jobQueueDepth < 1)
            throw std::invalid_argument("jobQueueDepth must be >= 1");
        if (coalesceBlocks < 1)
            throw std::invalid_argument("coalesceBlocks must be >= 1");
        algo.validate();
        dram.validate();
        if (variant == Variant::IdealMr && !algo.mr.enabled)
            throw std::invalid_argument("IDEALMR requires algo.mr.enabled");
    }

    /** On-chip buffer bytes (Table 2). */
    uint64_t
    bufferBytes() const
    {
        if (variant == Variant::IdealB) {
            // Shared PB: the DCT patches of one search window's area,
            // patchSize^2 coefficients of 3 B each per position
            // (Sec. 4.3: 52 x 52 positions x 48 B = 126.75 KB).
            uint64_t span = algo.searchWindow1 + algo.patchSize - 1;
            uint64_t patch_bytes =
                static_cast<uint64_t>(algo.patchSize) * algo.patchSize * 3;
            return span * span * patch_bytes;
        }
        // Per-lane SWB: (Ns + P - 1) entries of two 64 B blocks
        // (Sec. 5.3: 6.5 KB per lane).
        int entries = algo.searchWindow1 + algo.patchSize - 1;
        return static_cast<uint64_t>(lanes) * entries * 128;
    }
};

} // namespace core
} // namespace ideal

#endif // IDEAL_CORE_CONFIG_H_
