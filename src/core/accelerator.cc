#include "core/accelerator.h"

#include <algorithm>
#include <list>
#include <unordered_map>
#include <vector>

#include "bm3d/bm3d.h"
#include "dram/dram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ideal {
namespace core {

namespace {

/**
 * LRU table of recently fetched 64 B blocks. Models the request
 * coalescing the paper relies on in Sec. 6.6: lanes working on
 * adjacent rows re-request mostly the same blocks, which the memory
 * controller (MSHRs + row buffers) serves without new DRAM traffic.
 */
class CoalesceBuffer
{
  public:
    explicit CoalesceBuffer(size_t capacity) : capacity_(capacity) {}

    /** Returns true (a hit) if @p addr was fetched recently. */
    bool
    lookup(sim::Addr addr)
    {
        auto it = map_.find(addr);
        if (it == map_.end())
            return false;
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }

    void
    insert(sim::Addr addr)
    {
        if (map_.count(addr))
            return;
        lru_.push_front(addr);
        map_[addr] = lru_.begin();
        if (map_.size() > capacity_) {
            map_.erase(lru_.back());
            lru_.pop_back();
        }
    }

  private:
    size_t capacity_;
    std::list<sim::Addr> lru_;
    std::unordered_map<sim::Addr, std::list<sim::Addr>::iterator> map_;
};

/** Geometry of one stage over the reference grid. */
struct StageGeometry
{
    int width = 0;
    int height = 0;
    int patch = 4;
    int ns = 49;
    int half = 24;
    int ps = 1;       ///< reference stride
    int ss = 1;       ///< search stride
    int bandRows = 0; ///< window height in pixels = ns + patch - 1
    int planes = 3;   ///< image planes streamed for this stage
    int refsX = 0;
    int refsY = 0;
    std::vector<int> xs;
    std::vector<int> ys;
    const std::vector<uint8_t> *hit = nullptr;

    int maxPosX() const { return width - patch; }
    int maxPosY() const { return height - patch; }

    /** Clipped candidate count of a full window search. */
    uint64_t
    fullCandidates(int x, int y) const
    {
        int xlo = std::max(0, x - half);
        int xhi = std::min(maxPosX(), x + half);
        int ylo = std::max(0, y - half);
        int yhi = std::min(maxPosY(), y + half);
        uint64_t cx = static_cast<uint64_t>(xhi - xlo) / ss + 1;
        uint64_t cy = static_cast<uint64_t>(yhi - ylo) / ss + 1;
        return cx * cy - 1;
    }

    /** Clipped candidate count of a Matches-Reuse search (+1 check). */
    uint64_t
    reuseCandidates(int x, int y, int max_matches) const
    {
        int xlo = std::max(0, x - half);
        int xhi = std::min(maxPosX(), x + half);
        int ylo = std::max(0, y - half);
        int yhi = std::min(maxPosY(), y + half);
        int new_lo = std::max(xlo, x + half - ps + 1);
        uint64_t cols = new_lo <= xhi ? (xhi - new_lo + 1) : 0;
        uint64_t rows = static_cast<uint64_t>(yhi - ylo) / ss + 1;
        return cols * rows + max_matches + 1;
    }
};

StageGeometry
makeGeometry(const AcceleratorConfig &cfg, const Workload &w,
             bm3d::Stage stage)
{
    const auto &st =
        stage == bm3d::Stage::HardThreshold ? w.stage1 : w.stage2;
    StageGeometry g;
    g.width = w.width;
    g.height = w.height;
    g.patch = cfg.algo.patchSize;
    g.ns = cfg.algo.searchWindow(stage);
    g.half = (g.ns - 1) / 2;
    g.ps = cfg.algo.refStride;
    g.ss = cfg.algo.searchStride;
    g.bandRows = g.ns + g.patch - 1;
    // Stage 1 streams the noisy channels (matching plane + the color
    // channels the denoiser consumes). Stage 2 additionally streams
    // the basic estimate's channels (matching plane + Wiener
    // references).
    g.planes = stage == bm3d::Stage::HardThreshold ? w.channels
                                                   : 2 * w.channels;
    g.refsX = st.refsX;
    g.refsY = st.refsY;
    g.xs = bm3d::makeRefPositions(g.maxPosX(), g.ps);
    g.ys = bm3d::makeRefPositions(g.maxPosY(), g.ps);
    g.hit = &st.hit;
    return g;
}

/** Request-id encoding: lane and blocking/prefetch class. */
enum class FetchClass : uint64_t {
    Blocking = 0, ///< lane cannot proceed until it arrives
    Column = 1,   ///< column prefetch; bumps readyCols when complete
    Output = 2,   ///< writeback, fire-and-forget
};

uint64_t
encodeId(int lane, FetchClass cls, uint64_t seq)
{
    return (seq << 12) | (static_cast<uint64_t>(lane) << 2) |
           static_cast<uint64_t>(cls);
}

int laneOf(uint64_t id) { return static_cast<int>((id >> 2) & 0x3ff); }

FetchClass classOf(uint64_t id)
{
    return static_cast<FetchClass>(id & 0x3);
}

/** One IDEALMR lane's execution state within a stage. */
struct Lane
{
    int rowIdx = -1;     ///< assigned reference row (-1: none/done)
    int xi = 0;          ///< next reference index in the row
    bool filling = false;
    int blockingOutstanding = 0;

    // Column prefetch state, in 64-pixel block columns.
    int readyCols = 0;   ///< columns fully resident in the SWB
    int issuedCols = 0;  ///< columns requested so far
    int columnOutstanding = 0; ///< blocks pending for column issuedCols-1

    // Pending block requests not yet accepted by the controller.
    std::vector<sim::Addr> issueQueue;
    FetchClass issueClass = FetchClass::Blocking;

    uint64_t bmRemaining = 0;
    bool jobReady = false; ///< BM finished, job waiting for queue space
    int deQueue = 0;
    uint64_t deRemaining = 0;

    int writeAccum = 0; ///< output bytes accumulated toward one block

    // Per-lane counters.
    uint64_t busyBm = 0;
    uint64_t busyDe = 0;
    uint64_t stallMem = 0;
    uint64_t stallColWait = 0;
    uint64_t stallFill = 0;
    uint64_t stallQueue = 0;
};

/** Shared bookkeeping for one stage's simulation. */
class StageSim
{
  public:
    StageSim(const AcceleratorConfig &cfg, const StageGeometry &geom,
             bm3d::Stage stage, dram::DramSystem &mem,
             CoalesceBuffer &coalesce, Activity &activity,
             sim::StatsRegistry &stats)
        : cfg_(cfg), g_(geom), stage_(stage), mem_(mem),
          coalesce_(coalesce), activity_(activity), stats_(stats),
          lanes_(cfg.variant == Variant::IdealB ? 1 : cfg.lanes)
    {
        // Pad rows to whole blocks so addresses are 64 B aligned.
        rowBlocks_ = (g_.width + 63) / 64;
        planeBlocks_ = static_cast<uint64_t>(rowBlocks_) * g_.height;
        // Stage 2's planes live after stage 1's in the address map.
        planeBase_ = stage_ == bm3d::Stage::Wiener
                         ? planeBlocks_ * 64 * 8
                         : 0;
        jobCycles_ = jobCycles(cfg_, g_);
    }

    /** Run the stage to completion; returns elapsed cycles. */
    sim::Cycle run(sim::Cycle start_cycle);

  private:
    static uint64_t
    jobCycles(const AcceleratorConfig &cfg, const StageGeometry &g)
    {
        // One denoising job: maxMatches patches per channel through
        // the DE lanes at dePatchesPerCycle, plus pipeline fill. The
        // Wiener stage's reference-stack transform runs in parallel
        // DE sublanes and does not add serial cycles.
        int channels = g.planes > 3 ? g.planes / 2 : g.planes;
        return static_cast<uint64_t>(channels) * cfg.algo.maxMatches /
                   cfg.timing.dePatchesPerCycle +
               cfg.timing.dePipelineDepth;
    }

    sim::Addr
    blockAddr(int plane, int row, int block_col) const
    {
        return planeBase_ +
               (static_cast<uint64_t>(plane) * planeBlocks_ +
                static_cast<uint64_t>(row) * rowBlocks_ + block_col) *
                   64;
    }

    /** Queue the block fetches of one 64-pixel column of the band. */
    void
    queueColumn(Lane &lane, int row_idx, int block_col, FetchClass cls)
    {
        const int y = g_.ys[row_idx];
        const int top = std::clamp(y - g_.half, 0, g_.height - 1);
        const int bottom =
            std::min(g_.height - 1, top + g_.bandRows - 1);
        for (int plane = 0; plane < g_.planes; ++plane)
            for (int r = top; r <= bottom; ++r)
                lane.issueQueue.push_back(blockAddr(plane, r, block_col));
        lane.issueClass = cls;
    }

    /** Number of block columns the window of reference @p x needs. */
    int
    requiredCols(int x) const
    {
        int edge = std::min(g_.width - 1, x + g_.half + g_.patch - 1);
        return edge / 64 + 1;
    }

    /** Try to issue one queued request from @p lane. */
    void
    issueOne(int lane_idx, Lane &lane, sim::Cycle now)
    {
        if (lane.issueQueue.empty())
            return;
        sim::Addr addr = lane.issueQueue.back();
        if (cfg_.coalescing && coalesce_.lookup(addr)) {
            // Another lane fetched this block recently: served without
            // DRAM traffic.
            lane.issueQueue.pop_back();
            stats_.add("mem.coalesced", 1);
            if (lane.issueClass == FetchClass::Column &&
                lane.issueQueue.empty() && lane.columnOutstanding == 0) {
                lane.readyCols = lane.issuedCols;
            }
            return;
        }
        if (!mem_.canAccept(addr))
            return;
        uint64_t id = encodeId(lane_idx, lane.issueClass, seq_++);
        mem_.enqueue(dram::Request{addr, false, id}, now);
        lane.issueQueue.pop_back();
        if (cfg_.coalescing)
            coalesce_.insert(addr);
        ++activity_.dramBlocks;
        activity_.bufferWrites += 1; // SWB/PB fill
        if (lane.issueClass == FetchClass::Blocking)
            ++lane.blockingOutstanding;
        else
            ++lane.columnOutstanding;
    }

    void handleCompletion(Lane &lane, FetchClass cls);

    /** Start the next reference patch's BM if possible. */
    void startNextRef(Lane &lane);

    /** Advance one lane by one cycle. */
    void tickLane(int lane_idx, Lane &lane, sim::Cycle now);

    const AcceleratorConfig &cfg_;
    const StageGeometry &g_;
    bm3d::Stage stage_;
    dram::DramSystem &mem_;
    CoalesceBuffer &coalesce_;
    Activity &activity_;
    sim::StatsRegistry &stats_;

    int lanes_;
    int rowBlocks_ = 0;
    uint64_t planeBlocks_ = 0;
    uint64_t planeBase_ = 0;
    uint64_t jobCycles_ = 0;
    uint64_t seq_ = 0;
    int nextRow_ = 0;
};

void
StageSim::handleCompletion(Lane &lane, FetchClass cls)
{
    if (cls == FetchClass::Blocking) {
        if (lane.blockingOutstanding > 0)
            --lane.blockingOutstanding;
    } else if (cls == FetchClass::Column) {
        if (lane.columnOutstanding > 0)
            --lane.columnOutstanding;
        if (lane.columnOutstanding == 0 && lane.issueQueue.empty())
            lane.readyCols = lane.issuedCols;
    }
}

void
StageSim::startNextRef(Lane &lane)
{
    const bool ideal_b = cfg_.variant == Variant::IdealB;
    const int group = ideal_b ? cfg_.lanes : 1;

    if (lane.rowIdx < 0 || lane.xi >= g_.refsX) {
        // Grab the next unprocessed row (dynamic row scheduling).
        if (nextRow_ >= g_.refsY) {
            lane.rowIdx = -1;
            return;
        }
        lane.rowIdx = nextRow_++;
        lane.xi = 0;
        lane.readyCols = 0;
        lane.issuedCols = 0;
        lane.columnOutstanding = 0;
        if (cfg_.buffering) {
            // Cold fill: all columns covering the first window(s).
            int first_x = g_.xs[0] + (group - 1) * g_.ps;
            int cols = requiredCols(std::min(first_x, g_.maxPosX()));
            for (int c = 0; c < cols; ++c)
                queueColumn(lane, lane.rowIdx, c, FetchClass::Blocking);
            lane.issuedCols = cols;
            lane.readyCols = 0;
            lane.filling = true;
            return;
        }
    }

    const int y = g_.ys[lane.rowIdx];
    const int xi = lane.xi;
    const int x = g_.xs[std::min(xi, g_.refsX - 1)];
    const size_t hit_idx =
        static_cast<size_t>(lane.rowIdx) * g_.refsX + xi;

    if (cfg_.buffering) {
        const int req = requiredCols(
            ideal_b ? std::min(g_.maxPosX(),
                               x + (group - 1) * g_.ps)
                    : x);
        if (lane.readyCols < req) {
            // Window data not resident: issue missing columns and
            // stall (this is the no-prefetch path, or a burst the
            // prefetcher has not covered yet).
            if (lane.issuedCols < req) {
                queueColumn(lane, lane.rowIdx, lane.issuedCols,
                            FetchClass::Column);
                ++lane.issuedCols;
            }
            ++lane.stallMem;
            ++lane.stallColWait;
            return;
        }
        if (cfg_.prefetch && lane.issuedCols <= req &&
            lane.issuedCols * 64 < g_.width) {
            // Look one block column ahead (the SWB holds two blocks
            // per entry, Sec. 5.3).
            queueColumn(lane, lane.rowIdx, lane.issuedCols,
                        FetchClass::Column);
            ++lane.issuedCols;
        }
    } else {
        // No on-chip buffering: fetch the candidate data off-chip for
        // every reference patch before matching can begin.
        bool hit = (*g_.hit)[hit_idx] != 0;
        int cols = hit ? 1 : (g_.ns + 63) / 64 + 1;
        for (int c = 0; c < cols; ++c) {
            // Only the matching plane is streamed in this mode.
            const int top = std::clamp(y - g_.half, 0, g_.height - 1);
            const int bottom =
                std::min(g_.height - 1, top + g_.bandRows - 1);
            int bc = std::min(rowBlocks_ - 1, std::max(0, x - g_.half) / 64
                                                  + c);
            for (int r = top; r <= bottom; ++r)
                lane.issueQueue.push_back(blockAddr(0, r, bc));
        }
        lane.issueClass = FetchClass::Blocking;
        lane.filling = true;
        // BM work will start when the fill completes.
    }

    // Compute this reference patch's (or group's, for IDEALB) BM
    // occupancy in cycles.
    uint64_t cycles = 0;
    uint64_t distances = 0;
    if (ideal_b) {
        // Lock-step group of `lanes` adjacent reference patches served
        // by the single-port PB: one broadcast per cycle over the
        // union of the group's windows.
        int x_first = x;
        int x_last = std::min(g_.maxPosX(),
                              x + (cfg_.lanes - 1) * g_.ps);
        int xlo = std::max(0, x_first - g_.half);
        int xhi = std::min(g_.maxPosX(), x_last + g_.half);
        int ylo = std::max(0, y - g_.half);
        int yhi = std::min(g_.maxPosY(), y + g_.half);
        uint64_t union_pos = static_cast<uint64_t>(xhi - xlo + 1) *
                             (yhi - ylo + 1);
        uint64_t per_ebm = g_.fullCandidates(x_first, y);
        cycles = std::max(union_pos / cfg_.pbPorts, per_ebm);
        for (int k = 0; k < cfg_.lanes && xi + k < g_.refsX; ++k)
            distances += g_.fullCandidates(
                g_.xs[std::min(xi + k, g_.refsX - 1)], y);
        // The single shared EDCT must keep up with the group: it
        // transforms the patches newly entering the PB (BM1 only; BM2
        // buffers color-domain patches) plus all of the group's
        // denoising-job DCT work through QBMP/QD/QiD (Fig. 5). If its
        // occupancy exceeds the BM broadcast time it becomes the
        // group's critical path.
        const uint64_t channels =
            g_.planes > 3 ? g_.planes / 2 : g_.planes;
        uint64_t new_patches =
            stage_ == bm3d::Stage::HardThreshold
                ? static_cast<uint64_t>(cfg_.lanes) * g_.ps *
                      (yhi - ylo + 1)
                : 0;
        uint64_t de_dcts = static_cast<uint64_t>(cfg_.lanes) *
                           cfg_.algo.maxMatches *
                           (g_.planes - 1 + channels);
        uint64_t edct = (new_patches + de_dcts) /
                        cfg_.timing.dctPatchesPerCycle;
        stats_.add("idealb.edctWork", static_cast<double>(edct));
        stats_.add("idealb.bmWork", static_cast<double>(cycles));
        cycles = std::max(cycles, edct);
        activity_.dctTransforms += new_patches + de_dcts;
        lane.xi += cfg_.lanes;
    } else {
        bool hit = (*g_.hit)[hit_idx] != 0;
        if (hit) {
            cycles = g_.reuseCandidates(x, y, cfg_.algo.maxMatches);
            stats_.add(stage_ == bm3d::Stage::HardThreshold
                           ? "mr.hits1"
                           : "mr.hits2",
                       1);
        } else {
            cycles = g_.fullCandidates(x, y) + (cfg_.algo.mr.enabled ? 1 : 0);
        }
        distances = cycles;
        lane.xi += 1;
    }
    cycles = std::max<uint64_t>(
        1, cycles / cfg_.timing.bmCandidatesPerCycle);
    lane.bmRemaining = cycles;
    activity_.bmDistances += distances;
    activity_.bufferReads += distances;
    // BM1 candidates pass through the per-lane EDCT first (the SWB
    // holds color-domain pixels in IDEALMR).
    if (stage_ == bm3d::Stage::HardThreshold && !ideal_b)
        activity_.dctTransforms += distances;
}

void
StageSim::tickLane(int lane_idx, Lane &lane, sim::Cycle now)
{
    const bool ideal_b = cfg_.variant == Variant::IdealB;
    const int group = ideal_b ? cfg_.lanes : 1;

    // Denoising engine(s) drain one job at a time.
    if (lane.deRemaining > 0) {
        --lane.deRemaining;
        ++lane.busyDe;
        if (lane.deRemaining == 0) {
            // Output writeback accumulates into whole blocks.
            int bytes = g_.ps * g_.patch *
                        (g_.planes > 3 ? g_.planes / 2 : g_.planes);
            lane.writeAccum += bytes;
            while (lane.writeAccum >= 64) {
                lane.writeAccum -= 64;
                uint64_t id =
                    encodeId(lane_idx, FetchClass::Output, seq_++);
                // Writes are fire-and-forget; drop them if the
                // controller is saturated this cycle (they retry via
                // accumulation next job).
                if (mem_.enqueue(
                        dram::Request{blockAddr(0, 0, 0) + 0x40000000ULL +
                                          (seq_ % 4096) * 64,
                                      true, id},
                        now)) {
                    ++activity_.dramBlocks;
                } else {
                    lane.writeAccum += 64;
                    break;
                }
            }
        }
    } else if (lane.deQueue > 0) {
        --lane.deQueue;
        lane.deRemaining = jobCycles_;
        const uint64_t channels =
            g_.planes > 3 ? g_.planes / 2 : g_.planes;
        activity_.deStackPatches +=
            static_cast<uint64_t>(cfg_.algo.maxMatches) * channels;
        // Forward DCT of every streamed plane's stack patches plus the
        // inverse DCT of the restored channels (Paths D, E, F). IDEALB
        // accounts its shared-EDCT work at group granularity instead.
        if (cfg_.variant != Variant::IdealB)
            activity_.dctTransforms +=
                static_cast<uint64_t>(cfg_.algo.maxMatches) *
                (g_.planes + channels);
    }

    // Issue at most one memory request per cycle per lane.
    issueOne(lane_idx, lane, now);

    if (lane.filling) {
        if (lane.blockingOutstanding == 0 && lane.issueQueue.empty()) {
            lane.filling = false;
            lane.readyCols = lane.issuedCols;
        } else {
            ++lane.stallMem;
            ++lane.stallColWait;
            return;
        }
    }

    if (lane.bmRemaining > 0) {
        --lane.bmRemaining;
        ++lane.busyBm;
        if (lane.bmRemaining == 0)
            lane.jobReady = true;
        return;
    }

    if (lane.jobReady) {
        // Enqueue the finished search's denoising job(s): one per
        // reference patch (a lock-step IDEALB group finishes `lanes`
        // searches at once, all feeding the shared QDJ).
        const int jobs = group;
        const int depth = std::max(cfg_.jobQueueDepth, jobs);
        if (lane.deQueue + jobs <= depth) {
            lane.deQueue += jobs;
            lane.jobReady = false;
        } else {
            ++lane.stallQueue;
            return;
        }
    }

    if (lane.rowIdx < 0 && nextRow_ >= g_.refsY)
        return; // finished

    startNextRef(lane);
}

sim::Cycle
StageSim::run(sim::Cycle start_cycle)
{
    obs::Span span(stage_ == bm3d::Stage::HardThreshold ? "sim.stage1"
                                                        : "sim.stage2",
                   "sim");
    std::vector<Lane> lanes(lanes_);
    nextRow_ = 0;
    sim::Cycle cycle = start_cycle;
    const sim::Cycle limit =
        start_cycle + 50'000'000'000ULL; // runaway guard

    auto all_done = [&]() {
        if (nextRow_ < g_.refsY)
            return false;
        for (const Lane &l : lanes)
            if (l.rowIdx >= 0 || l.bmRemaining > 0 || l.jobReady ||
                l.deQueue > 0 || l.deRemaining > 0 ||
                !l.issueQueue.empty() || l.blockingOutstanding > 0)
                return false;
        return mem_.idle();
    };

    // DRAM queue occupancy: peak tracked every cycle (a max-stat, so
    // merging results never sums it); occupancy sampled into the trace
    // as a Perfetto counter track, decimated to keep traces bounded.
    constexpr sim::Cycle kTraceSampleCycles = 4096;
    int queue_peak = 0;
    const bool tracing = obs::Tracer::globalEnabled();

    while (!all_done() && cycle < limit) {
        ++cycle;
        mem_.tick(cycle);
        for (const auto &done : mem_.collectCompletions(cycle)) {
            FetchClass cls = classOf(done.id);
            if (cls == FetchClass::Output)
                continue;
            int li = laneOf(done.id);
            if (li < lanes_)
                handleCompletion(lanes[li], cls);
        }
        for (int i = 0; i < lanes_; ++i)
            tickLane(i, lanes[i], cycle);
        queue_peak = std::max(queue_peak, mem_.inFlight());
        if (tracing && cycle % kTraceSampleCycles == 0)
            obs::Tracer::global().counter(
                "dram.inFlight", static_cast<double>(mem_.inFlight()));
    }

    // Fold lane counters into the stats registry.
    uint64_t busy_bm = 0, busy_de = 0, stall_mem = 0, stall_q = 0;
    uint64_t stall_fill = 0, stall_col = 0;
    for (const Lane &l : lanes) {
        busy_bm += l.busyBm;
        busy_de += l.busyDe;
        stall_mem += l.stallMem;
        stall_q += l.stallQueue;
        stall_fill += l.stallFill;
        stall_col += l.stallColWait;
    }
    const char *prefix =
        stage_ == bm3d::Stage::HardThreshold ? "stage1" : "stage2";
    stats_.add(std::string(prefix) + ".cycles",
               static_cast<double>(cycle - start_cycle));
    stats_.add(std::string(prefix) + ".bmBusy",
               static_cast<double>(busy_bm));
    stats_.add(std::string(prefix) + ".deBusy",
               static_cast<double>(busy_de));
    stats_.add(std::string(prefix) + ".memStall",
               static_cast<double>(stall_mem));
    stats_.add(std::string(prefix) + ".fillStall",
               static_cast<double>(stall_fill));
    stats_.add(std::string(prefix) + ".colStall",
               static_cast<double>(stall_col));
    stats_.add(std::string(prefix) + ".queueStall",
               static_cast<double>(stall_q));
    stats_.add(std::string(prefix) + ".ticks",
               static_cast<double>(cycle - start_cycle));
    stats_.setMax("dram.queue.peak", static_cast<double>(queue_peak));
    return cycle;
}

} // namespace

SimResult
simulate(const AcceleratorConfig &cfg, const Workload &workload)
{
    cfg.validate();
    SimResult result;
    result.freqGhz = cfg.freqGhz;
    result.mrHitRate1 = workload.stage1.hitRate();
    result.mrHitRate2 = workload.stage2.hitRate();

    dram::DramConfig dcfg = cfg.dram;
    dcfg.coreFreqGhz = cfg.freqGhz;
    dram::DramSystem mem(dcfg);
    CoalesceBuffer coalesce(static_cast<size_t>(cfg.coalesceBlocks));

    StageGeometry g1 =
        makeGeometry(cfg, workload, bm3d::Stage::HardThreshold);
    StageSim s1(cfg, g1, bm3d::Stage::HardThreshold, mem, coalesce,
                result.activity, result.stats);
    sim::Cycle end1 = s1.run(0);
    result.stage1Cycles = end1;

    StageGeometry g2 = makeGeometry(cfg, workload, bm3d::Stage::Wiener);
    StageSim s2(cfg, g2, bm3d::Stage::Wiener, mem, coalesce,
                result.activity, result.stats);
    sim::Cycle end2 = s2.run(end1);
    result.stage2Cycles = end2 - end1;

    result.stats.merge(mem.stats());
    result.stats.set("dram.avgLatency", mem.averageLatency());
    result.stats.set("dram.bytes",
                     static_cast<double>(mem.bytesTransferred()));

    // Mirror the run's stats into the process-wide registry so the
    // bench harness embeds them in BENCH_*.json without each bench
    // threading its SimResult through (counters accumulate across
    // simulate() calls; gauges keep the latest run's value).
    obs::MetricsRegistry::global().merge(result.stats.snapshot(), "sim.");
    return result;
}

SimResult
simulateImage(const AcceleratorConfig &cfg, const image::ImageF &noisy)
{
    Workload w = buildWorkload(noisy, cfg.algo);
    return simulate(cfg, w);
}

} // namespace core
} // namespace ideal
