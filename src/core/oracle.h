#ifndef IDEAL_CORE_ORACLE_H_
#define IDEAL_CORE_ORACLE_H_

/**
 * @file
 * Workload oracle for the timing simulators.
 *
 * The cycle count of the accelerator depends on image content only
 * through the Matches-Reuse hit/miss decision per reference patch
 * (a hit reduces the BM search from Ns x Ns to Ns x Ps + 16
 * candidates, Sec. 5.1). The oracle streams over the image computing
 * exactly those decisions - the distance between each reference patch
 * and its predecessor in the matching domain - without running the
 * full denoiser. This is what makes 42 MP timing simulations cheap
 * (Fig. 14) while functional validation runs the full algorithm on
 * small images.
 */

#include <cstdint>
#include <vector>

#include "bm3d/config.h"
#include "image/image.h"

namespace ideal {
namespace core {

/** Per-stage MR decision map over the reference-patch grid. */
struct StageWorkload
{
    int refsX = 0; ///< reference positions per row
    int refsY = 0; ///< reference rows
    /// hit[y * refsX + x]: MR reuses matches for this reference patch.
    std::vector<uint8_t> hit;

    double
    hitRate() const
    {
        if (hit.empty())
            return 0.0;
        uint64_t h = 0;
        for (uint8_t v : hit)
            h += v;
        return static_cast<double>(h) / static_cast<double>(hit.size());
    }
};

/** Workload for both stages of one image. */
struct Workload
{
    int width = 0;
    int height = 0;
    int channels = 0;
    StageWorkload stage1;
    StageWorkload stage2;
};

/**
 * Build the workload of @p noisy under @p cfg by streaming the MR
 * decision rule:
 *  - BM1: distance between consecutive reference patches in the
 *    hard-thresholded DCT domain vs K * Tmatch1.
 *  - BM2: distance in the color domain of the basic estimate vs
 *    K * Tmatch2. The timing oracle stands in a 3x3 box-filtered
 *    noisy plane for the basic estimate (the true estimate is only
 *    available from a functional run; the filtered plane has the same
 *    reduced-noise distance statistics).
 *
 * When cfg.mr.enabled is false every decision is a miss (full search),
 * which is also the IDEALB workload.
 */
Workload buildWorkload(const image::ImageF &noisy,
                       const bm3d::Bm3dConfig &cfg);

/**
 * Build a synthetic workload with the given MR hit rates; used by
 * parameter sweeps (e.g. the Fig. 16 lane-scaling study) where image
 * content is held constant by design.
 */
Workload makeSyntheticWorkload(int width, int height, int channels,
                               const bm3d::Bm3dConfig &cfg,
                               double hit_rate1, double hit_rate2,
                               uint64_t seed);

} // namespace core
} // namespace ideal

#endif // IDEAL_CORE_ORACLE_H_
