#ifndef IDEAL_CORE_RESULT_H_
#define IDEAL_CORE_RESULT_H_

/**
 * @file
 * Output of a cycle-level accelerator simulation: cycle counts, engine
 * utilization, memory traffic, and the activity counters consumed by
 * the energy model.
 */

#include <cstdint>

#include "sim/stats.h"
#include "sim/types.h"

namespace ideal {
namespace core {

/** Activity counters used by the energy model (Sec. 6.3). */
struct Activity
{
    uint64_t bmDistances = 0;   ///< candidate distances evaluated
    uint64_t dctTransforms = 0; ///< forward + inverse DCTs
    uint64_t deStackPatches = 0;///< patches through the DE lanes
    uint64_t bufferReads = 0;   ///< PB/SWB patch reads
    uint64_t bufferWrites = 0;  ///< PB/SWB fills
    uint64_t dramBlocks = 0;    ///< 64 B off-chip transfers

    Activity &
    operator+=(const Activity &o)
    {
        bmDistances += o.bmDistances;
        dctTransforms += o.dctTransforms;
        deStackPatches += o.deStackPatches;
        bufferReads += o.bufferReads;
        bufferWrites += o.bufferWrites;
        dramBlocks += o.dramBlocks;
        return *this;
    }
};

/** Result of simulating one image through both BM3D stages. */
struct SimResult
{
    sim::Cycle stage1Cycles = 0;
    sim::Cycle stage2Cycles = 0;
    double freqGhz = 1.0;

    Activity activity;

    double mrHitRate1 = 0.0;
    double mrHitRate2 = 0.0;

    /// Engine-occupancy and memory statistics.
    sim::StatsRegistry stats;

    sim::Cycle totalCycles() const { return stage1Cycles + stage2Cycles; }

    double
    seconds() const
    {
        return sim::cyclesToSeconds(totalCycles(), freqGhz);
    }

    /** Average off-chip bandwidth in GB/s over the run. */
    double
    averageBandwidthGBs() const
    {
        double s = seconds();
        return s > 0.0
                   ? static_cast<double>(activity.dramBlocks) * 64.0 / s /
                         1e9
                   : 0.0;
    }
};

} // namespace core
} // namespace ideal

#endif // IDEAL_CORE_RESULT_H_
