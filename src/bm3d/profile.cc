#include "bm3d/profile.h"

namespace ideal {
namespace bm3d {

const char *
toString(Step step)
{
    switch (step) {
      case Step::Dct1: return "DCT1";
      case Step::Bm1: return "BM1";
      case Step::De1: return "DE1";
      case Step::Bm2: return "BM2";
      case Step::Dct2: return "DCT2";
      case Step::De2: return "DE2";
      case Step::Count: break;
    }
    return "?";
}

obs::MetricsSnapshot
Profile::snapshot(const std::string &prefix) const
{
    obs::MetricsSnapshot snap;
    for (int i = 0; i < kNumSteps; ++i) {
        const auto step = static_cast<Step>(i);
        const std::string base = prefix + "." + toString(step);
        snap.add(base + ".seconds", seconds(step));
        const OpCounters &o = ops(step);
        snap.add(base + ".ops.multiplies",
                 static_cast<double>(o.multiplies));
        snap.add(base + ".ops.additions", static_cast<double>(o.additions));
        snap.add(base + ".ops.comparisons",
                 static_cast<double>(o.comparisons));
        snap.add(base + ".ops.memoryReads",
                 static_cast<double>(o.memoryReads));
        snap.add(base + ".ops.memoryWrites",
                 static_cast<double>(o.memoryWrites));
    }
    const std::string mr_base = prefix + ".mr";
    snap.add(mr_base + ".bm1Hits", static_cast<double>(mr_.bm1Hits));
    snap.add(mr_base + ".bm1Refs", static_cast<double>(mr_.bm1Refs));
    snap.add(mr_base + ".bm2Hits", static_cast<double>(mr_.bm2Hits));
    snap.add(mr_base + ".bm2Refs", static_cast<double>(mr_.bm2Refs));
    snap.add(mr_base + ".bm1Candidates",
             static_cast<double>(mr_.bm1Candidates));
    snap.add(mr_base + ".bm2Candidates",
             static_cast<double>(mr_.bm2Candidates));
    snap.add(mr_base + ".bm1VertHits",
             static_cast<double>(mr_.bm1VertHits));
    snap.add(mr_base + ".bm2VertHits",
             static_cast<double>(mr_.bm2VertHits));
    const std::string av_base = prefix + ".adaptive";
    snap.add(av_base + ".prunedInserts",
             static_cast<double>(adaptive_.prunedInserts));
    snap.add(av_base + ".tilesCoarse",
             static_cast<double>(adaptive_.tilesCoarse));
    snap.add(av_base + ".tilesDensified",
             static_cast<double>(adaptive_.tilesDensified));
    snap.add(av_base + ".refsSkipped",
             static_cast<double>(adaptive_.refsSkipped));
    return snap;
}

} // namespace bm3d
} // namespace ideal
