#include "bm3d/profile.h"

namespace ideal {
namespace bm3d {

const char *
toString(Step step)
{
    switch (step) {
      case Step::Dct1: return "DCT1";
      case Step::Bm1: return "BM1";
      case Step::De1: return "DE1";
      case Step::Bm2: return "BM2";
      case Step::Dct2: return "DCT2";
      case Step::De2: return "DE2";
      case Step::Count: break;
    }
    return "?";
}

} // namespace bm3d
} // namespace ideal
