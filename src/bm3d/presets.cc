#include "bm3d/presets.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ideal {
namespace bm3d {

namespace {

/// Block edge of the statistic's mean pyramid, in pixels.
constexpr int kStatBlock = 4;

/// An adjacent-block mean difference above this many gray levels
/// counts as a genuine edge for edgeFraction (the sigma=25 noise
/// floor on 4x4 block-mean differences is ~9 at the 1-sigma level).
constexpr float kEdgeLevel = 20.0f;

} // namespace

const char *
toString(ScenePreset preset)
{
    switch (preset) {
      case ScenePreset::Nature: return "nature";
      case ScenePreset::Street: return "street";
      case ScenePreset::Texture: return "texture";
    }
    return "?";
}

ScenePreset
presetFromString(const std::string &name)
{
    if (name == "nature")
        return ScenePreset::Nature;
    if (name == "street")
        return ScenePreset::Street;
    if (name == "texture")
        return ScenePreset::Texture;
    throw std::invalid_argument("unknown preset: " + name);
}

SceneStats
measureSceneStats(const image::ImageF &img)
{
    SceneStats stats;
    const int bw = img.width() / kStatBlock;
    const int bh = img.height() / kStatBlock;
    if (bw < 2 || bh < 2)
        return stats;

    // 4x4 block means of plane 0.
    std::vector<float> means(static_cast<size_t>(bw) * bh);
    const float *p = img.plane(0);
    const int w = img.width();
    for (int by = 0; by < bh; ++by) {
        for (int bx = 0; bx < bw; ++bx) {
            float sum = 0.0f;
            for (int dy = 0; dy < kStatBlock; ++dy) {
                const float *row =
                    p + static_cast<size_t>(by * kStatBlock + dy) * w +
                    static_cast<size_t>(bx) * kStatBlock;
                for (int dx = 0; dx < kStatBlock; ++dx)
                    sum += row[dx];
            }
            means[static_cast<size_t>(by) * bw + bx] =
                sum / static_cast<float>(kStatBlock * kStatBlock);
        }
    }

    double total = 0.0;
    for (float m : means)
        total += m;
    const double mean = total / static_cast<double>(means.size());
    double var = 0.0;
    for (float m : means)
        var += (m - mean) * (m - mean);
    stats.blockVariance =
        static_cast<float>(var / static_cast<double>(means.size()));

    double edge_sum = 0.0;
    uint64_t edge_count = 0;
    uint64_t diffs = 0;
    for (int by = 0; by < bh; ++by) {
        for (int bx = 0; bx < bw; ++bx) {
            const float m = means[static_cast<size_t>(by) * bw + bx];
            if (bx + 1 < bw) {
                const float d = std::fabs(
                    means[static_cast<size_t>(by) * bw + bx + 1] - m);
                edge_sum += d;
                edge_count += d > kEdgeLevel ? 1 : 0;
                ++diffs;
            }
            if (by + 1 < bh) {
                const float d = std::fabs(
                    means[static_cast<size_t>(by + 1) * bw + bx] - m);
                edge_sum += d;
                edge_count += d > kEdgeLevel ? 1 : 0;
                ++diffs;
            }
        }
    }
    if (diffs > 0) {
        stats.edgeStrength =
            static_cast<float>(edge_sum / static_cast<double>(diffs));
        stats.edgeFraction = static_cast<float>(
            static_cast<double>(edge_count) / static_cast<double>(diffs));
    }
    return stats;
}

ScenePreset
classifyScene(const SceneStats &stats)
{
    // Thresholds sit between the clusters the synthetic generators
    // produce at 256^2 / sigma=25 (measured on noisy and clean input):
    // texture scenes show a dense edge field (edgeFraction ~0.65-0.78,
    // edgeStrength ~31-35) where nature/street stay below 0.3 / 20;
    // street's piecewise-flat facades then separate from nature's soft
    // gradients by block variance (~1350-1750 vs ~310-380). Uniform
    // content (variance ~40 under noise) lands in Nature — the
    // aggressive preset is exactly right for it — and broadband Detail
    // straddles the variance split (~500-900 across seeds), landing in
    // Nature or Street but never in quality-first Texture.
    if (stats.edgeFraction >= 0.45f || stats.edgeStrength >= 25.0f)
        return ScenePreset::Texture;
    if (stats.blockVariance >= 600.0f)
        return ScenePreset::Street;
    return ScenePreset::Nature;
}

ScenePreset
pickPreset(const image::ImageF &img)
{
    return classifyScene(measureSceneStats(img));
}

Bm3dConfig
applyPreset(Bm3dConfig base, ScenePreset preset)
{
    // Int16 matching needs the 4x4 patch datapath; leave precision
    // alone for other patch sizes.
    const bool can_i16 = base.patchSize == 4;
    switch (preset) {
      case ScenePreset::Nature:
        // Smooth self-similar content: good matches everywhere, so
        // shrink the windows, subsample the reference grid hard, and
        // let the adaptive bound prune the rest.
        base.searchWindow1 = 35;
        base.searchWindow2 = 27;
        base.maxMatches = 16;
        if (can_i16)
            base.precision = Precision::Int16;
        base.variant.adaptiveBound = true;
        base.variant.boundMargin = 2.0f;
        base.variant.coarseToFine = true;
        base.variant.coarseStride = 3;
        base.variant.densifyThreshold = 0.35f;
        base.mr.enabled = false; // coarseToFine excludes MR
        break;
      case ScenePreset::Street:
        // Piecewise-flat with sharp transitions: moderate window
        // shrink, stride-2 grid with the default densify threshold so
        // edge tiles fall back to the dense scan.
        base.searchWindow1 = 41;
        base.searchWindow2 = 31;
        base.maxMatches = 16;
        if (can_i16)
            base.precision = Precision::Int16;
        base.variant.adaptiveBound = true;
        base.variant.boundMargin = 2.0f;
        base.variant.coarseToFine = true;
        base.variant.coarseStride = 2;
        base.variant.densifyThreshold = 0.25f;
        base.mr.enabled = false; // coarseToFine excludes MR
        break;
      case ScenePreset::Texture:
        // Busy content: keep the full windows, dense grid, and float
        // matching; the only reduction is a conservative adaptive
        // bound. Stacks rarely collect 16 below-threshold matches on
        // quasi-periodic detail, so capping at 8 trims 3-D transform
        // work on stacks that would be padded with marginal matches.
        base.searchWindow1 = 49;
        base.searchWindow2 = 39;
        base.maxMatches = 8;
        base.precision = Precision::Float32;
        base.variant.adaptiveBound = true;
        base.variant.boundMargin = 3.0f;
        base.variant.coarseToFine = false;
        break;
    }
    return base;
}

} // namespace bm3d
} // namespace ideal
