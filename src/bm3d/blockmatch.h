#ifndef IDEAL_BM3D_BLOCKMATCH_H_
#define IDEAL_BM3D_BLOCKMATCH_H_

/**
 * @file
 * Block matching (paper Fig. 1b) with optional Matches Reuse
 * (Sec. 5.1). The matcher is parameterized by a *matching domain*:
 * BM1 measures distances between hard-thresholded DCT patches while
 * BM2 measures them between color-domain patches of the intermediate
 * image (Paths A and B).
 *
 * Both domains expose their descriptors coefficient-major (SoA): the
 * distance of 8 adjacent candidates against a reference loads one
 * contiguous 8-float lane per coefficient (src/simd ssdSoaBatch)
 * instead of eight position-major descriptors. The matcher gathers
 * the reference descriptor once per search and streams the window
 * rows through the batch kernel.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bm3d/config.h"
#include "bm3d/matchlist.h"
#include "bm3d/patchfield.h"
#include "bm3d/seeding.h"
#include "image/image.h"
#include "transforms/distance.h"

namespace ideal {
namespace bm3d {

/** Matching domain over a DCT patch field (BM1, Path A). */
class DctMatchDomain
{
  public:
    explicit DctMatchDomain(const DctPatchField &field)
        : field_(field), coefs_(field.coefs()),
          norm_(1.0f / static_cast<float>(field.coefs()))
    {
    }

    int positionsX() const { return field_.positionsX(); }
    int positionsY() const { return field_.positionsY(); }
    int patchCoefs() const { return coefs_; }

    /** Normalized squared distance between patches at two top-lefts. */
    float
    distance(int ax, int ay, int bx, int by) const
    {
        return transforms::squaredDistanceSoa(
                   field_.matchPlanes(), field_.matchOffset(ax, ay),
                   field_.matchPlanes(), field_.matchOffset(bx, by),
                   coefs_) *
               norm_;
    }

    /** Distance with early exit once it exceeds @p bound. */
    float
    distanceBounded(int ax, int ay, int bx, int by, float bound) const
    {
        return transforms::squaredDistanceSoaBounded(
                   field_.matchPlanes(), field_.matchOffset(ax, ay),
                   field_.matchPlanes(), field_.matchOffset(bx, by),
                   coefs_, bound / norm_) *
               norm_;
    }

    /** The SoA batch kernel handles every patch size. */
    bool supportsBatch() const { return true; }

    /** Gather the reference descriptor at (x, y) (patchCoefs floats). */
    void
    gatherRef(int x, int y, float *out) const
    {
        field_.gatherMatchPatch(x, y, out);
    }

    /**
     * Normalized distances of the contiguous x-run [x0, x0 + count)
     * at row @p y against the gathered reference descriptor @p ref.
     * Exact values — bitwise equal to distance(), and below the bound
     * also to distanceBounded() (partial early-exit sums only ever
     * compare greater), so batched and per-candidate selection pick
     * identical matches.
     */
    void
    distanceBatch(const float *ref, int x0, int y, int count,
                  float *out) const
    {
        transforms::squaredDistanceSoaBatch(ref, field_.matchPlanes(),
                                            field_.matchOffset(x0, y),
                                            coefs_, count, out);
        for (int i = 0; i < count; ++i)
            out[i] *= norm_;
    }

  private:
    const DctPatchField &field_;
    int coefs_;
    float norm_;
};

/**
 * Matching domain over color-domain pixels (BM2, Path B).
 *
 * Coefficient plane (r, c) of the color domain at position (x, y) is
 * just pixel (x + c, y + r), so the pp "planes" are pp shifted
 * zero-copy views of the image plane: plane k = r * PD + c starts at
 * base + r * W + c and uses the pixel row stride. No descriptor array
 * is materialized (the previous eager copy was a PD^2 x memory
 * blow-up); the domain is a view and @p plane must outlive it.
 */
class ColorMatchDomain
{
  public:
    ColorMatchDomain(const image::ImageF &plane, int patch_size)
        : patchSize_(patch_size), coefs_(patch_size * patch_size),
          positionsX_(plane.width() - patch_size + 1),
          positionsY_(plane.height() - patch_size + 1),
          rowStride_(plane.width()),
          norm_(1.0f / static_cast<float>(patch_size * patch_size))
    {
        const float *base = plane.plane(0);
        planes_.resize(coefs_);
        for (int r = 0; r < patch_size; ++r)
            for (int c = 0; c < patch_size; ++c)
                planes_[r * patch_size + c] =
                    base + static_cast<size_t>(r) * rowStride_ + c;
    }

    int positionsX() const { return positionsX_; }
    int positionsY() const { return positionsY_; }
    int patchCoefs() const { return coefs_; }

    float
    distance(int ax, int ay, int bx, int by) const
    {
        return transforms::squaredDistanceSoa(planes_.data(),
                                              offset(ax, ay),
                                              planes_.data(),
                                              offset(bx, by), coefs_) *
               norm_;
    }

    float
    distanceBounded(int ax, int ay, int bx, int by, float bound) const
    {
        return transforms::squaredDistanceSoaBounded(
                   planes_.data(), offset(ax, ay), planes_.data(),
                   offset(bx, by), coefs_, bound / norm_) *
               norm_;
    }

    /** The SoA batch kernel handles every patch size. */
    bool supportsBatch() const { return true; }

    /** Gather the reference descriptor at (x, y) (patchCoefs floats). */
    void
    gatherRef(int x, int y, float *out) const
    {
        const size_t off = offset(x, y);
        for (int k = 0; k < coefs_; ++k)
            out[k] = planes_[k][off];
    }

    /**
     * Normalized distances of the contiguous x-run [x0, x0 + count)
     * at row @p y against the gathered reference @p ref. Same
     * exactness contract as DctMatchDomain::distanceBatch.
     */
    void
    distanceBatch(const float *ref, int x0, int y, int count,
                  float *out) const
    {
        transforms::squaredDistanceSoaBatch(ref, planes_.data(),
                                            offset(x0, y), coefs_, count,
                                            out);
        for (int i = 0; i < count; ++i)
            out[i] *= norm_;
    }

  private:
    size_t
    offset(int x, int y) const
    {
        return static_cast<size_t>(y) * rowStride_ + x;
    }

    int patchSize_;
    int coefs_;
    int positionsX_;
    int positionsY_;
    size_t rowStride_;
    float norm_;
    std::vector<const float *> planes_; ///< zero-copy shifted views
};

/**
 * Block-matching engine over a matching domain.
 *
 * search() performs the full Ns x Ns window scan; searchReuse()
 * performs the Matches-Reuse reduced scan: the previous reference
 * patch's best matches (clipped to the current window) plus the
 * rightmost Ns x Ps column of positions that are new to the current
 * window (paper Sec. 5.1).
 */
template <typename Domain>
class BlockMatcher
{
  public:
    /**
     * @param domain        matching domain (must outlive the matcher)
     * @param window        search window dimension Ns (odd)
     * @param search_stride search stride Ss
     * @param ref_stride    reference patch stride Ps
     * @param tau_match     match-distance threshold Tmatch
     * @param max_matches   best-match list capacity (16)
     * @param bounded       use early-exit distances (software opt.)
     */
    BlockMatcher(const Domain &domain, int window, int search_stride,
                 int ref_stride, float tau_match, int max_matches,
                 bool bounded = true)
        : domain_(domain), half_((window - 1) / 2),
          searchStride_(search_stride), refStride_(ref_stride),
          tauMatch_(tau_match), maxMatches_(max_matches), bounded_(bounded)
    {
    }

    /**
     * Full window search around reference (xr, yr). The reference
     * itself is always the first (distance 0) entry.
     * @return number of candidate distances evaluated
     */
    uint64_t
    search(int xr, int yr, MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;
        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);
        if (searchStride_ == 1 && domain_.supportsBatch()) {
            // Batched scan: the reference descriptor is gathered once,
            // then each window row is a contiguous run of candidates
            // scored 8 per kernel call. The reference row splits into
            // the runs before and after the reference patch. Selection
            // is identical to the bounded scalar path: the batch
            // kernel returns exact distances, and any bounded early
            // exit only happens above the acceptance bound.
            float ref[64];
            domain_.gatherRef(xr, yr, ref);
            for (int y = y_lo; y <= y_hi; ++y) {
                if (y == yr) {
                    considerRun(ref, x_lo, xr - 1, y, out, evaluated);
                    considerRun(ref, xr + 1, x_hi, y, out, evaluated);
                } else {
                    considerRun(ref, x_lo, x_hi, y, out, evaluated);
                }
            }
            return evaluated;
        }
        for (int y = y_lo; y <= y_hi; y += searchStride_) {
            for (int x = x_lo; x <= x_hi; x += searchStride_) {
                if (x == xr && y == yr)
                    continue;
                consider(xr, yr, x, y, out);
                ++evaluated;
            }
        }
        return evaluated;
    }

    /**
     * Matches-Reuse search: test the previous reference patch's
     * matches that fall inside the current window, plus the rightmost
     * column of positions new to this window.
     * @return number of candidate distances evaluated
     */
    uint64_t
    searchReuse(int xr, int yr, const MatchList &previous,
                MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;

        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);

        // Leftmost x of the column scan in step 2; previous matches in
        // that range are skipped so no position is considered twice
        // (the ranges only overlap when the window clips at the image
        // right edge).
        const int new_lo = std::max(x_lo, xr + half_ - refStride_ + 1);

        // 1) Previous best matches, clipped to the current window.
        for (const Match &m : previous) {
            if (m.x == xr && m.y == yr)
                continue;
            if (m.x < x_lo || m.x >= new_lo || m.y < y_lo || m.y > y_hi)
                continue;
            consider(xr, yr, m.x, m.y, out);
            ++evaluated;
        }

        // 2) The Ns x Ps column that the previous window did not cover.
        for (int x = new_lo; x <= x_hi; ++x) {
            for (int y = y_lo; y <= y_hi; y += searchStride_) {
                if (x == xr && y == yr)
                    continue;
                consider(xr, yr, x, y, out);
                ++evaluated;
            }
        }
        return evaluated;
    }

    /**
     * Matches-Reuse across rows (the Sec. 5.3 future-work extension):
     * reuse the matches of the reference patch directly *above*,
     * plus the bottom Ns x Ps band of positions new to this window.
     * @return number of candidate distances evaluated
     */
    uint64_t
    searchReuseDown(int xr, int yr, const MatchList &above,
                    MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;

        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);
        const int new_lo = std::max(y_lo, yr + half_ - refStride_ + 1);

        for (const Match &m : above) {
            if (m.x == xr && m.y == yr)
                continue;
            if (m.x < x_lo || m.x > x_hi || m.y < y_lo || m.y >= new_lo)
                continue;
            consider(xr, yr, m.x, m.y, out);
            ++evaluated;
        }
        for (int y = new_lo; y <= y_hi; ++y) {
            for (int x = x_lo; x <= x_hi; x += searchStride_) {
                if (x == xr && y == yr)
                    continue;
                consider(xr, yr, x, y, out);
                ++evaluated;
            }
        }
        return evaluated;
    }

    /**
     * Temporally seeded search (streaming runtime): scan only the
     * small odd @p seed_window around the reference, then re-score the
     * previous frame's @p seeds at their old positions (clipped to the
     * full Ns window, skipping positions the verification window
     * already covered). Static content keeps its stack through the
     * seeds; small motion is caught by the window. Candidate order is
     * deterministic (window rows top-down, then seeds in stored
     * order), so output is reproducible across thread counts and —
     * the batch kernel returning exact distances — SIMD levels.
     * @return number of candidate distances evaluated
     */
    uint64_t
    searchSeeded(int xr, int yr, const SeedPos *seeds, int num_seeds,
                 int seed_window, MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;

        const int sh = std::min(half_, (seed_window - 1) / 2);
        const int wx_lo = std::max(0, xr - sh);
        const int wx_hi = std::min(domain_.positionsX() - 1, xr + sh);
        const int wy_lo = std::max(0, yr - sh);
        const int wy_hi = std::min(domain_.positionsY() - 1, yr + sh);

        if (searchStride_ == 1 && domain_.supportsBatch()) {
            float ref[64];
            domain_.gatherRef(xr, yr, ref);
            for (int y = wy_lo; y <= wy_hi; ++y) {
                if (y == yr) {
                    considerRun(ref, wx_lo, xr - 1, y, out, evaluated);
                    considerRun(ref, xr + 1, wx_hi, y, out, evaluated);
                } else {
                    considerRun(ref, wx_lo, wx_hi, y, out, evaluated);
                }
            }
        } else {
            for (int y = wy_lo; y <= wy_hi; y += searchStride_) {
                for (int x = wx_lo; x <= wx_hi; x += searchStride_) {
                    if (x == xr && y == yr)
                        continue;
                    consider(xr, yr, x, y, out);
                    ++evaluated;
                }
            }
        }

        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);
        for (int i = 0; i < num_seeds; ++i) {
            const int sx = seeds[i].x;
            const int sy = seeds[i].y;
            if (sx == xr && sy == yr)
                continue;
            if (sx >= wx_lo && sx <= wx_hi && sy >= wy_lo && sy <= wy_hi)
                continue; // already scored by the verification window
            if (sx < x_lo || sx > x_hi || sy < y_lo || sy > y_hi)
                continue; // drifted outside the full search window
            consider(xr, yr, sx, sy, out);
            ++evaluated;
        }
        return evaluated;
    }

    /** Distance between two reference positions (for the MR check). */
    float
    referenceDistance(int xa, int ya, int xb, int yb) const
    {
        return domain_.distance(xa, ya, xb, yb);
    }

    float tauMatch() const { return tauMatch_; }

  private:
    /**
     * Batched consideration of the run [x0, x1] at row @p y (empty
     * when x0 > x1) against the gathered reference @p ref: one
     * distanceBatch dispatch per kChunk candidates (whole window rows
     * in practice). Requires domain_.supportsBatch().
     */
    void
    considerRun(const float *ref, int x0, int x1, int y, MatchList &out,
                uint64_t &evaluated) const
    {
        constexpr int kChunk = 128; // multiple of 8; > any usual window
        float d[kChunk];
        for (int x = x0; x <= x1; x += kChunk) {
            const int count = std::min(kChunk, x1 - x + 1);
            domain_.distanceBatch(ref, x, y, count, d);
            for (int i = 0; i < count; ++i) {
                if (d[i] < tauMatch_)
                    out.insert(Match{x + i, y, d[i]});
            }
            evaluated += count;
        }
    }

    void
    consider(int xr, int yr, int x, int y, MatchList &out) const
    {
        float bound = std::min(tauMatch_, out.worstDistance());
        float d = bounded_
                      ? domain_.distanceBounded(xr, yr, x, y, bound)
                      : domain_.distance(xr, yr, x, y);
        if (d < tauMatch_)
            out.insert(Match{x, y, d});
    }

    const Domain &domain_;
    int half_;
    int searchStride_;
    int refStride_;
    float tauMatch_;
    int maxMatches_;
    bool bounded_;
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_BLOCKMATCH_H_
