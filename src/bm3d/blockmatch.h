#ifndef IDEAL_BM3D_BLOCKMATCH_H_
#define IDEAL_BM3D_BLOCKMATCH_H_

/**
 * @file
 * Block matching (paper Fig. 1b) with optional Matches Reuse
 * (Sec. 5.1). The matcher is parameterized by a *matching domain*:
 * BM1 measures distances between hard-thresholded DCT patches while
 * BM2 measures them between color-domain patches of the intermediate
 * image (Paths A and B).
 *
 * Both domains expose their descriptors coefficient-major (SoA): the
 * distance of 8 adjacent candidates against a reference loads one
 * contiguous 8-float lane per coefficient (src/simd ssdSoaBatch)
 * instead of eight position-major descriptors. The matcher gathers
 * the reference descriptor once per search and streams the window
 * rows through the batch kernel.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "bm3d/config.h"
#include "bm3d/matchlist.h"
#include "bm3d/patchfield.h"
#include "bm3d/seeding.h"
#include "fixed/int16plan.h"
#include "image/image.h"
#include "simd/simd.h"
#include "transforms/distance.h"

namespace ideal {
namespace bm3d {

/**
 * Largest candidate run a single distanceBatch dispatch covers: the
 * matcher chunks window rows to this, and int16 domains size their
 * raw-distance stack buffer with it.
 */
inline constexpr int kMaxBatchCandidates = 128;

namespace detail {

/**
 * Issue read-prefetches for every cache line of [begin, begin+bytes).
 * Pure hint (see simd::prefetchRead): dropping or reordering the
 * requests never changes an architectural bit.
 */
inline void
prefetchSpan(const void *begin, size_t bytes)
{
    const char *p = static_cast<const char *>(begin);
    const char *end = p + bytes;
    for (; p < end; p += 64)
        simd::prefetchRead(p);
}

} // namespace detail

/** Matching domain over a DCT patch field (BM1, Path A). */
class DctMatchDomain
{
  public:
    /** Element type of a gathered reference descriptor. */
    using DescType = float;

    /** Float domains score in normalized units; no raw int path. */
    static constexpr bool kRawBatch = false;

    explicit DctMatchDomain(const DctPatchField &field)
        : field_(field), coefs_(field.coefs()),
          norm_(1.0f / static_cast<float>(field.coefs()))
    {
    }

    int positionsX() const { return field_.positionsX(); }
    int positionsY() const { return field_.positionsY(); }
    int patchCoefs() const { return coefs_; }

    /** Normalized squared distance between patches at two top-lefts. */
    float
    distance(int ax, int ay, int bx, int by) const
    {
        return transforms::squaredDistanceSoa(
                   field_.matchPlanes(), field_.matchOffset(ax, ay),
                   field_.matchPlanes(), field_.matchOffset(bx, by),
                   coefs_) *
               norm_;
    }

    /** Distance with early exit once it exceeds @p bound. */
    float
    distanceBounded(int ax, int ay, int bx, int by, float bound) const
    {
        return transforms::squaredDistanceSoaBounded(
                   field_.matchPlanes(), field_.matchOffset(ax, ay),
                   field_.matchPlanes(), field_.matchOffset(bx, by),
                   coefs_, bound / norm_) *
               norm_;
    }

    /** The SoA batch kernel handles every patch size. */
    bool supportsBatch() const { return true; }

    /** Gather the reference descriptor at (x, y) (patchCoefs floats). */
    void
    gatherRef(int x, int y, float *out) const
    {
        field_.gatherMatchPatch(x, y, out);
    }

    /**
     * Normalized distances of the contiguous x-run [x0, x0 + count)
     * at row @p y against the gathered reference descriptor @p ref.
     * Exact values — bitwise equal to distance(), and below the bound
     * also to distanceBounded() (partial early-exit sums only ever
     * compare greater), so batched and per-candidate selection pick
     * identical matches.
     */
    void
    distanceBatch(const float *ref, int x0, int y, int count,
                  float *out) const
    {
        transforms::squaredDistanceSoaBatch(ref, field_.matchPlanes(),
                                            field_.matchOffset(x0, y),
                                            coefs_, count, out);
        for (int i = 0; i < count; ++i)
            out[i] *= norm_;
    }

    /**
     * Prefetch the candidate run [x0, x1] of row @p y — every
     * coefficient plane's row segment. Candidates are row-major, so
     * issuing this while the previous row's SSDs execute (thousands of
     * cycles for a 49-candidate run) hides the DRAM latency of the
     * next row's 16 plane segments.
     */
    void
    prefetchRows(int x0, int x1, int y) const
    {
        if (x1 < x0)
            return;
        const size_t off = field_.matchOffset(x0, y);
        const size_t bytes =
            static_cast<size_t>(x1 - x0 + 1) * sizeof(float);
        const float *const *planes = field_.matchPlanes();
        for (int k = 0; k < coefs_; ++k)
            detail::prefetchSpan(planes[k] + off, bytes);
    }

  private:
    const DctPatchField &field_;
    int coefs_;
    float norm_;
};

/**
 * Matching domain over color-domain pixels (BM2, Path B).
 *
 * Coefficient plane (r, c) of the color domain at position (x, y) is
 * just pixel (x + c, y + r), so the pp "planes" are pp shifted
 * zero-copy views of the image plane: plane k = r * PD + c starts at
 * base + r * W + c and uses the pixel row stride. No descriptor array
 * is materialized (the previous eager copy was a PD^2 x memory
 * blow-up); the domain is a view and @p plane must outlive it.
 */
class ColorMatchDomain
{
  public:
    /** Element type of a gathered reference descriptor. */
    using DescType = float;

    /** Float domains score in normalized units; no raw int path. */
    static constexpr bool kRawBatch = false;

    ColorMatchDomain(const image::ImageF &plane, int patch_size)
        : patchSize_(patch_size), coefs_(patch_size * patch_size),
          positionsX_(plane.width() - patch_size + 1),
          positionsY_(plane.height() - patch_size + 1),
          rowStride_(plane.width()),
          norm_(1.0f / static_cast<float>(patch_size * patch_size))
    {
        const float *base = plane.plane(0);
        planes_.resize(coefs_);
        for (int r = 0; r < patch_size; ++r)
            for (int c = 0; c < patch_size; ++c)
                planes_[r * patch_size + c] =
                    base + static_cast<size_t>(r) * rowStride_ + c;
    }

    int positionsX() const { return positionsX_; }
    int positionsY() const { return positionsY_; }
    int patchCoefs() const { return coefs_; }

    float
    distance(int ax, int ay, int bx, int by) const
    {
        return transforms::squaredDistanceSoa(planes_.data(),
                                              offset(ax, ay),
                                              planes_.data(),
                                              offset(bx, by), coefs_) *
               norm_;
    }

    float
    distanceBounded(int ax, int ay, int bx, int by, float bound) const
    {
        return transforms::squaredDistanceSoaBounded(
                   planes_.data(), offset(ax, ay), planes_.data(),
                   offset(bx, by), coefs_, bound / norm_) *
               norm_;
    }

    /** The SoA batch kernel handles every patch size. */
    bool supportsBatch() const { return true; }

    /** Gather the reference descriptor at (x, y) (patchCoefs floats). */
    void
    gatherRef(int x, int y, float *out) const
    {
        const size_t off = offset(x, y);
        for (int k = 0; k < coefs_; ++k)
            out[k] = planes_[k][off];
    }

    /**
     * Normalized distances of the contiguous x-run [x0, x0 + count)
     * at row @p y against the gathered reference @p ref. Same
     * exactness contract as DctMatchDomain::distanceBatch.
     */
    void
    distanceBatch(const float *ref, int x0, int y, int count,
                  float *out) const
    {
        transforms::squaredDistanceSoaBatch(ref, planes_.data(),
                                            offset(x0, y), coefs_, count,
                                            out);
        for (int i = 0; i < count; ++i)
            out[i] *= norm_;
    }

    /**
     * Prefetch the candidate run [x0, x1] of row @p y. The planes all
     * alias one pixel plane: moving the scan from row y-1 to row y
     * adds exactly one new pixel row (y + patchSize - 1), so a single
     * span over that row — widened by the patch's column shifts —
     * covers every plane's new data.
     */
    void
    prefetchRows(int x0, int x1, int y) const
    {
        if (x1 < x0)
            return;
        const float *row =
            planes_[(patchSize_ - 1) * patchSize_] + offset(x0, y);
        detail::prefetchSpan(
            row, static_cast<size_t>(x1 - x0 + patchSize_) *
                     sizeof(float));
    }

  private:
    size_t
    offset(int x, int y) const
    {
        return static_cast<size_t>(y) * rowStride_ + x;
    }

    int patchSize_;
    int coefs_;
    int positionsX_;
    int positionsY_;
    size_t rowStride_;
    float norm_;
    std::vector<const float *> planes_; ///< zero-copy shifted views
};

/**
 * Int16 matching domain over a DCT patch field's quantized planes
 * (Config::precision == Int16, BM1). Distances are computed as exact
 * int32 raw SSDs over the Q11.1 coefficient planes — identical bits
 * at every SIMD level and thread count (integer adds commute) — and
 * converted to the float matcher's normalized units only at the
 * boundary. The field must have been built with prepareI16() +
 * fillRowsI16().
 */
class DctMatchDomainI16
{
  public:
    using DescType = int16_t;

    /**
     * The matcher keeps window-scan distances as raw int32 SSDs and
     * thresholds them against a precomputed raw tau, deferring the
     * int32 -> float conversion to the (rare) accepted candidates.
     */
    static constexpr bool kRawBatch = true;

    explicit DctMatchDomainI16(const DctPatchField &field)
        : field_(field), coefs_(field.coefs()),
          factor_(static_cast<float>(fixed::ssdFactor(
              field.int16Plan().match, field.coefs())))
    {
        if (!field.hasInt16())
            throw std::logic_error(
                "DctMatchDomainI16: field has no int16 planes");
    }

    int positionsX() const { return field_.positionsX(); }
    int positionsY() const { return field_.positionsY(); }
    int patchCoefs() const { return coefs_; }

    float
    distance(int ax, int ay, int bx, int by) const
    {
        return static_cast<float>(simd::kernels().ssdSoaI16(
                   field_.matchPlanesI16(), field_.matchOffset(ax, ay),
                   field_.matchPlanesI16(), field_.matchOffset(bx, by),
                   coefs_, INT32_MAX)) *
               factor_;
    }

    float
    distanceBounded(int ax, int ay, int bx, int by, float bound) const
    {
        return static_cast<float>(simd::kernels().ssdSoaI16(
                   field_.matchPlanesI16(), field_.matchOffset(ax, ay),
                   field_.matchPlanesI16(), field_.matchOffset(bx, by),
                   coefs_, rawBound(bound, factor_))) *
               factor_;
    }

    bool supportsBatch() const { return true; }

    void
    gatherRef(int x, int y, int16_t *out) const
    {
        field_.gatherMatchPatchI16(x, y, out);
    }

    void
    distanceBatch(const int16_t *ref, int x0, int y, int count,
                  float *out) const
    {
        int32_t tmp[kMaxBatchCandidates];
        distanceBatchRaw(ref, x0, y, count, tmp);
        for (int i = 0; i < count; ++i)
            out[i] = fromRaw(tmp[i]);
    }

    /** Raw int32 SSDs of the run — no normalization, no conversion. */
    void
    distanceBatchRaw(const int16_t *ref, int x0, int y, int count,
                     int32_t *out) const
    {
        simd::kernels().ssdPairBatchI16(ref, field_.matchPairPlanesI16(),
                                        field_.matchOffset(x0, y), coefs_,
                                        count, out);
    }

    /**
     * Prefetch the candidate run [x0, x1] of row @p y: the pair-
     * interleaved planes' row segments (the layout the window scan
     * actually reads — two raws per candidate per pair plane).
     */
    void
    prefetchRows(int x0, int x1, int y) const
    {
        if (x1 < x0)
            return;
        const size_t off = 2 * field_.matchOffset(x0, y);
        const size_t bytes =
            static_cast<size_t>(x1 - x0 + 1) * 2 * sizeof(int16_t);
        const int16_t *const *planes = field_.matchPairPlanesI16();
        for (int p = 0; p < coefs_ / 2; ++p)
            detail::prefetchSpan(planes[p] + off, bytes);
    }

    /** Raw SSD -> the normalized units distanceBatch reports. */
    float
    fromRaw(int32_t raw) const
    {
        return static_cast<float>(raw) * factor_;
    }

    /**
     * Smallest raw SSD whose normalized distance fails `d < tau`:
     * `raw < rawThreshold(tau)` is exactly equivalent to
     * `fromRaw(raw) < tau`, so raw-side selection picks the identical
     * match set.
     */
    int32_t
    rawThreshold(float tau) const
    {
        return exactRawThreshold(tau, factor_);
    }

    /**
     * Float bound -> raw int32 bound. Truncation is the safe
     * direction: raw > floor(bound/factor) implies raw * factor >
     * bound, so early-exited partials still compare above the bound.
     */
    static int32_t
    rawBound(float bound, float factor)
    {
        const double scaled = static_cast<double>(bound) / factor;
        return scaled >= 2147483647.0 ? INT32_MAX
                                      : static_cast<int32_t>(scaled);
    }

    /**
     * min { r : float(r) * factor >= tau }, clamped to INT32_MAX.
     * float(r) * factor is monotonic in r, so starting from the
     * truncated estimate and nudging across the rounding boundary
     * converges in a couple of steps.
     */
    static int32_t
    exactRawThreshold(float tau, float factor)
    {
        int64_t t = rawBound(tau, factor);
        while (t < INT32_MAX &&
               static_cast<float>(t) * factor < tau)
            ++t;
        while (t > 0 && static_cast<float>(t - 1) * factor >= tau)
            --t;
        return static_cast<int32_t>(t);
    }

  private:
    const DctPatchField &field_;
    int coefs_;
    float factor_;
};

/**
 * Int16 color-domain matching (Config::precision == Int16, BM2): the
 * basic-estimate plane is quantized once to Q8.4 raws and the pp
 * coefficient planes are shifted views of that copy (same offset
 * scheme as ColorMatchDomain). One quantization pass per stage-2
 * plane buys int16 SSD lanes for the whole BM2 window scan.
 */
class ColorMatchDomainI16
{
  public:
    using DescType = int16_t;

    /** Same raw-int32 window-scan contract as DctMatchDomainI16. */
    static constexpr bool kRawBatch = true;

    /**
     * @param deferred skip the eager whole-plane quantization; the
     *                 caller then feeds pixel rows via quantizeRows()
     *                 before any search reads them. The band pipeline
     *                 (DESIGN §15) uses this to quantize the basic
     *                 estimate as its rows are finalized — per-sample
     *                 quantization makes any row banding produce the
     *                 same raws as the eager constructor.
     */
    ColorMatchDomainI16(const image::ImageF &plane, int patch_size,
                        bool deferred = false)
        : patchSize_(patch_size), coefs_(patch_size * patch_size),
          positionsX_(plane.width() - patch_size + 1),
          positionsY_(plane.height() - patch_size + 1),
          rowStride_(plane.width()), fmt_(fixed::colorMatchFormat()),
          factor_(static_cast<float>(fixed::ssdFactor(
              fixed::colorMatchFormat(), patch_size * patch_size)))
    {
        const size_t n =
            static_cast<size_t>(plane.width()) * plane.height();
        pixelsQ_.resize(n);
        if (!deferred)
            fixed::quantizeToI16(plane.plane(0), n, fmt_, pixelsQ_.data());
        planes_.resize(coefs_);
        for (int r = 0; r < patch_size; ++r)
            for (int c = 0; c < patch_size; ++c)
                planes_[r * patch_size + c] =
                    pixelsQ_.data() + static_cast<size_t>(r) * rowStride_ +
                    c;
    }

    /**
     * Quantize pixel rows [y0, y1) of @p plane (channel 0, same shape
     * as the construction plane) into the copy — the incremental twin
     * of the eager constructor's one-shot pass.
     */
    void
    quantizeRows(const image::ImageF &plane, int y0, int y1)
    {
        if (y1 <= y0)
            return;
        const size_t off = static_cast<size_t>(y0) * rowStride_;
        const size_t n = static_cast<size_t>(y1 - y0) * rowStride_;
        fixed::quantizeToI16(plane.plane(0) + off, n, fmt_,
                             pixelsQ_.data() + off);
    }

    int positionsX() const { return positionsX_; }
    int positionsY() const { return positionsY_; }
    int patchCoefs() const { return coefs_; }

    float
    distance(int ax, int ay, int bx, int by) const
    {
        return static_cast<float>(simd::kernels().ssdSoaI16(
                   planes_.data(), offset(ax, ay), planes_.data(),
                   offset(bx, by), coefs_, INT32_MAX)) *
               factor_;
    }

    float
    distanceBounded(int ax, int ay, int bx, int by, float bound) const
    {
        return static_cast<float>(simd::kernels().ssdSoaI16(
                   planes_.data(), offset(ax, ay), planes_.data(),
                   offset(bx, by), coefs_,
                   DctMatchDomainI16::rawBound(bound, factor_))) *
               factor_;
    }

    bool supportsBatch() const { return true; }

    void
    gatherRef(int x, int y, int16_t *out) const
    {
        const size_t off = offset(x, y);
        for (int k = 0; k < coefs_; ++k)
            out[k] = planes_[k][off];
    }

    void
    distanceBatch(const int16_t *ref, int x0, int y, int count,
                  float *out) const
    {
        int32_t tmp[kMaxBatchCandidates];
        distanceBatchRaw(ref, x0, y, count, tmp);
        for (int i = 0; i < count; ++i)
            out[i] = fromRaw(tmp[i]);
    }

    /**
     * Raw int32 SSDs of the run — no normalization, no conversion.
     * This domain deliberately keeps the plain shifted-view layout
     * rather than materializing pair-interleaved planes: the views
     * all alias one half-megabyte quantized copy that stays L2-
     * resident across the whole stage-2 scan, and in the full
     * pipeline (searches interleaved with denoising work) that
     * footprint win beats the pair kernel's shuffle-free inner loop,
     * which needs a 16x larger array.
     */
    void
    distanceBatchRaw(const int16_t *ref, int x0, int y, int count,
                     int32_t *out) const
    {
        simd::kernels().ssdSoaBatchI16(ref, planes_.data(),
                                       offset(x0, y), coefs_, count, out);
    }

    /**
     * Prefetch the candidate run [x0, x1] of row @p y. Like
     * ColorMatchDomain, every plane aliases the one quantized copy, so
     * the single new pixel row (y + patchSize - 1) covers all of them.
     */
    void
    prefetchRows(int x0, int x1, int y) const
    {
        if (x1 < x0)
            return;
        const int16_t *row =
            planes_[(patchSize_ - 1) * patchSize_] + offset(x0, y);
        detail::prefetchSpan(
            row, static_cast<size_t>(x1 - x0 + patchSize_) *
                     sizeof(int16_t));
    }

    /** Raw SSD -> the normalized units distanceBatch reports. */
    float
    fromRaw(int32_t raw) const
    {
        return static_cast<float>(raw) * factor_;
    }

    /** See DctMatchDomainI16::rawThreshold. */
    int32_t
    rawThreshold(float tau) const
    {
        return DctMatchDomainI16::exactRawThreshold(tau, factor_);
    }

  private:
    size_t
    offset(int x, int y) const
    {
        return static_cast<size_t>(y) * rowStride_ + x;
    }

    int patchSize_;
    int coefs_;
    int positionsX_;
    int positionsY_;
    size_t rowStride_;
    fixed::Format fmt_;
    float factor_;
    std::vector<int16_t> pixelsQ_;        ///< quantized plane copy
    std::vector<const int16_t *> planes_; ///< shifted views of the copy
};

/**
 * Block-matching engine over a matching domain.
 *
 * search() performs the full Ns x Ns window scan; searchReuse()
 * performs the Matches-Reuse reduced scan: the previous reference
 * patch's best matches (clipped to the current window) plus the
 * rightmost Ns x Ps column of positions that are new to the current
 * window (paper Sec. 5.1).
 */
template <typename Domain>
class BlockMatcher
{
  public:
    /**
     * @param domain        matching domain (must outlive the matcher)
     * @param window        search window dimension Ns (odd)
     * @param search_stride search stride Ss
     * @param ref_stride    reference patch stride Ps
     * @param tau_match     match-distance threshold Tmatch
     * @param max_matches   best-match list capacity (16)
     * @param bounded       use early-exit distances (software opt.)
     * @param prefetch      issue software read-prefetches one window
     *                      row ahead of the batched SSD scan
     *                      (Bm3dConfig::prefetch; bitwise no-op)
     */
    BlockMatcher(const Domain &domain, int window, int search_stride,
                 int ref_stride, float tau_match, int max_matches,
                 bool bounded = true, bool prefetch = false)
        : domain_(domain), half_((window - 1) / 2),
          searchStride_(search_stride), refStride_(ref_stride),
          tauMatch_(tau_match), maxMatches_(max_matches), bounded_(bounded),
          prefetch_(prefetch)
    {
        if constexpr (Domain::kRawBatch)
            rawTau_ = domain.rawThreshold(tau_match);
    }

    /**
     * Full window search around reference (xr, yr). The reference
     * itself is always the first (distance 0) entry.
     * @return number of candidate distances evaluated
     */
    uint64_t
    search(int xr, int yr, MatchList &out) const
    {
        return search(xr, yr, out,
                      std::numeric_limits<float>::infinity(), nullptr);
    }

    /**
     * Full window search with an externally seeded acceptance cutoff
     * (the adaptive early-termination bound of Config::variant):
     * candidates are accepted only while their distance is below
     * min(Tmatch, @p initial_bound, worst kept distance), the last
     * term tightening as the list fills. @p initial_bound = +inf is
     * bitwise identical to the plain search — the worst-distance term
     * reproduces exactly the insertions the dense scan would accept.
     * Candidates below Tmatch that the cutoff rejected are counted
     * into @p pruned (may be null): the insertion attempts (and, on
     * the raw int16 path, int->float conversions) the cutoff saved.
     * @return number of candidate distances evaluated
     */
    uint64_t
    search(int xr, int yr, MatchList &out, float initial_bound,
           uint64_t *pruned) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;
        uint64_t pruned_local = 0;
        ScanState scan = makeScan(initial_bound);
        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);
        if (searchStride_ == 1 && domain_.supportsBatch()) {
            // Batched scan: the reference descriptor is gathered once,
            // then each window row is a contiguous run of candidates
            // scored 8 per kernel call. The reference row splits into
            // the runs before and after the reference patch. Selection
            // is identical to the bounded scalar path: the batch
            // kernel returns exact distances, and any bounded early
            // exit only happens above the acceptance bound.
            typename Domain::DescType ref[64];
            domain_.gatherRef(xr, yr, ref);
            for (int y = y_lo; y <= y_hi; ++y) {
                // One row of lookahead: the next row's plane segments
                // start their DRAM trip while this row's ~window x
                // coefs SSD lanes execute (DESIGN §15). Pure hint —
                // the scan's arithmetic is untouched.
                if (prefetch_ && y < y_hi)
                    domain_.prefetchRows(x_lo, x_hi, y + 1);
                if (y == yr) {
                    considerRun(ref, x_lo, xr - 1, y, out, scan,
                                evaluated, pruned_local);
                    considerRun(ref, xr + 1, x_hi, y, out, scan,
                                evaluated, pruned_local);
                } else {
                    considerRun(ref, x_lo, x_hi, y, out, scan,
                                evaluated, pruned_local);
                }
            }
        } else {
            for (int y = y_lo; y <= y_hi; y += searchStride_) {
                for (int x = x_lo; x <= x_hi; x += searchStride_) {
                    if (x == xr && y == yr)
                        continue;
                    considerCut(xr, yr, x, y, out, scan, pruned_local);
                    ++evaluated;
                }
            }
        }
        if (pruned != nullptr)
            *pruned += pruned_local;
        return evaluated;
    }

    /**
     * Matches-Reuse search: test the previous reference patch's
     * matches that fall inside the current window, plus the rightmost
     * column of positions new to this window.
     * @return number of candidate distances evaluated
     */
    uint64_t
    searchReuse(int xr, int yr, const MatchList &previous,
                MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;

        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);

        // Leftmost x of the column scan in step 2; previous matches in
        // that range are skipped so no position is considered twice
        // (the ranges only overlap when the window clips at the image
        // right edge).
        const int new_lo = std::max(x_lo, xr + half_ - refStride_ + 1);

        // 1) Previous best matches, clipped to the current window.
        for (const Match &m : previous) {
            if (m.x == xr && m.y == yr)
                continue;
            if (m.x < x_lo || m.x >= new_lo || m.y < y_lo || m.y > y_hi)
                continue;
            consider(xr, yr, m.x, m.y, out);
            ++evaluated;
        }

        // 2) The Ns x Ps column that the previous window did not cover.
        for (int x = new_lo; x <= x_hi; ++x) {
            for (int y = y_lo; y <= y_hi; y += searchStride_) {
                if (x == xr && y == yr)
                    continue;
                consider(xr, yr, x, y, out);
                ++evaluated;
            }
        }
        return evaluated;
    }

    /**
     * Matches-Reuse across rows (the Sec. 5.3 future-work extension):
     * reuse the matches of the reference patch directly *above*,
     * plus the bottom Ns x Ps band of positions new to this window.
     * @return number of candidate distances evaluated
     */
    uint64_t
    searchReuseDown(int xr, int yr, const MatchList &above,
                    MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;

        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);
        const int new_lo = std::max(y_lo, yr + half_ - refStride_ + 1);

        for (const Match &m : above) {
            if (m.x == xr && m.y == yr)
                continue;
            if (m.x < x_lo || m.x > x_hi || m.y < y_lo || m.y >= new_lo)
                continue;
            consider(xr, yr, m.x, m.y, out);
            ++evaluated;
        }
        for (int y = new_lo; y <= y_hi; ++y) {
            for (int x = x_lo; x <= x_hi; x += searchStride_) {
                if (x == xr && y == yr)
                    continue;
                consider(xr, yr, x, y, out);
                ++evaluated;
            }
        }
        return evaluated;
    }

    /**
     * Temporally seeded search (streaming runtime): scan only the
     * small odd @p seed_window around the reference, then re-score the
     * previous frame's @p seeds at their old positions (clipped to the
     * full Ns window, skipping positions the verification window
     * already covered). Static content keeps its stack through the
     * seeds; small motion is caught by the window. Candidate order is
     * deterministic (window rows top-down, then seeds in stored
     * order), so output is reproducible across thread counts and —
     * the batch kernel returning exact distances — SIMD levels.
     * @return number of candidate distances evaluated
     */
    uint64_t
    searchSeeded(int xr, int yr, const SeedPos *seeds, int num_seeds,
                 int seed_window, MatchList &out) const
    {
        return searchSeeded(xr, yr, seeds, num_seeds, seed_window, out,
                            std::numeric_limits<float>::infinity(),
                            nullptr);
    }

    /**
     * Seeded search with an externally seeded acceptance cutoff; same
     * bound semantics (and bitwise-at-infinity contract) as the
     * bounded search() overload. This is how temporal seeding and the
     * adaptive bound compose in the streaming runtime.
     */
    uint64_t
    searchSeeded(int xr, int yr, const SeedPos *seeds, int num_seeds,
                 int seed_window, MatchList &out, float initial_bound,
                 uint64_t *pruned) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;
        uint64_t pruned_local = 0;
        ScanState scan = makeScan(initial_bound);

        const int sh = std::min(half_, (seed_window - 1) / 2);
        const int wx_lo = std::max(0, xr - sh);
        const int wx_hi = std::min(domain_.positionsX() - 1, xr + sh);
        const int wy_lo = std::max(0, yr - sh);
        const int wy_hi = std::min(domain_.positionsY() - 1, yr + sh);

        if (searchStride_ == 1 && domain_.supportsBatch()) {
            typename Domain::DescType ref[64];
            domain_.gatherRef(xr, yr, ref);
            for (int y = wy_lo; y <= wy_hi; ++y) {
                if (prefetch_ && y < wy_hi)
                    domain_.prefetchRows(wx_lo, wx_hi, y + 1);
                if (y == yr) {
                    considerRun(ref, wx_lo, xr - 1, y, out, scan,
                                evaluated, pruned_local);
                    considerRun(ref, xr + 1, wx_hi, y, out, scan,
                                evaluated, pruned_local);
                } else {
                    considerRun(ref, wx_lo, wx_hi, y, out, scan,
                                evaluated, pruned_local);
                }
            }
        } else {
            for (int y = wy_lo; y <= wy_hi; y += searchStride_) {
                for (int x = wx_lo; x <= wx_hi; x += searchStride_) {
                    if (x == xr && y == yr)
                        continue;
                    considerCut(xr, yr, x, y, out, scan, pruned_local);
                    ++evaluated;
                }
            }
        }

        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);
        for (int i = 0; i < num_seeds; ++i) {
            const int sx = seeds[i].x;
            const int sy = seeds[i].y;
            if (sx == xr && sy == yr)
                continue;
            if (sx >= wx_lo && sx <= wx_hi && sy >= wy_lo && sy <= wy_hi)
                continue; // already scored by the verification window
            if (sx < x_lo || sx > x_hi || sy < y_lo || sy > y_hi)
                continue; // drifted outside the full search window
            considerCut(xr, yr, sx, sy, out, scan, pruned_local);
            ++evaluated;
        }
        if (pruned != nullptr)
            *pruned += pruned_local;
        return evaluated;
    }

    /** Distance between two reference positions (for the MR check). */
    float
    referenceDistance(int xa, int ya, int xb, int yb) const
    {
        return domain_.distance(xa, ya, xb, yb);
    }

    float tauMatch() const { return tauMatch_; }

  private:
    /**
     * Running acceptance cutoff of one search. `cut` starts at
     * min(Tmatch, the caller's initial bound) and tightens to the
     * worst kept distance as the list fills; `rawCut` is its exact
     * raw-int32 image on kRawBatch domains (maintained incrementally —
     * rawThreshold() is monotone, so min-chaining per insert equals
     * recomputing from the current worst).
     */
    struct ScanState
    {
        float cut;
        int32_t rawCut;
    };

    ScanState
    makeScan(float initial_bound) const
    {
        ScanState s;
        s.cut = std::min(tauMatch_, initial_bound);
        s.rawCut = 0;
        if constexpr (Domain::kRawBatch)
            s.rawCut = std::min(rawTau_, domain_.rawThreshold(s.cut));
        return s;
    }

    /**
     * Batched consideration of the run [x0, x1] at row @p y (empty
     * when x0 > x1) against the gathered reference @p ref: one
     * distanceBatch dispatch per kChunk candidates (whole window rows
     * in practice). Requires domain_.supportsBatch(). Candidates below
     * Tmatch that the running cutoff rejected are counted into
     * @p pruned.
     */
    void
    considerRun(const typename Domain::DescType *ref, int x0, int x1,
                int y, MatchList &out, ScanState &scan,
                uint64_t &evaluated, uint64_t &pruned) const
    {
        // multiple of 8; > any usual window
        constexpr int kChunk = kMaxBatchCandidates;
        if constexpr (Domain::kRawBatch) {
            // Raw-side thresholding: the window scan stays in int32
            // (no per-candidate int->float conversion) and candidates
            // die on one integer compare. The cutoff is the exact raw
            // image of min(tau, initial bound, current 16th-best
            // distance) — in the DCT domain ~75% of candidates sit
            // below tau, so gating on tau alone would convert and
            // attempt an insert for nearly every candidate. d < cutoff
            // implies the insert accepts, and (at infinite initial
            // bound) every candidate the insert would accept satisfies
            // d < cutoff (rawThreshold() is the exact boundary), so
            // the selected set is bitwise identical to the dense scan.
            int32_t d[kChunk];
            for (int x = x0; x <= x1; x += kChunk) {
                const int count = std::min(kChunk, x1 - x + 1);
                domain_.distanceBatchRaw(ref, x, y, count, d);
                for (int i = 0; i < count; ++i) {
                    if (d[i] < scan.rawCut) {
                        out.insert(
                            Match{x + i, y, domain_.fromRaw(d[i])});
                        scan.rawCut = std::min(
                            scan.rawCut,
                            domain_.rawThreshold(out.worstDistance()));
                    } else if (d[i] < rawTau_) {
                        ++pruned;
                    }
                }
                evaluated += count;
            }
        } else {
            float d[kChunk];
            for (int x = x0; x <= x1; x += kChunk) {
                const int count = std::min(kChunk, x1 - x + 1);
                domain_.distanceBatch(ref, x, y, count, d);
                for (int i = 0; i < count; ++i) {
                    if (d[i] < scan.cut) {
                        out.insert(Match{x + i, y, d[i]});
                        scan.cut = std::min(scan.cut,
                                            out.worstDistance());
                    } else if (d[i] < tauMatch_) {
                        ++pruned;
                    }
                }
                evaluated += count;
            }
        }
    }

    void
    consider(int xr, int yr, int x, int y, MatchList &out) const
    {
        float bound = std::min(tauMatch_, out.worstDistance());
        float d = bounded_
                      ? domain_.distanceBounded(xr, yr, x, y, bound)
                      : domain_.distance(xr, yr, x, y);
        if (d < tauMatch_)
            out.insert(Match{x, y, d});
    }

    /**
     * Scalar consideration under a running cutoff (the non-batch
     * fallback of the bounded search paths). At infinite initial bound
     * this accepts exactly the candidates consider() would keep: the
     * early-exit bound min(cut, worst) equals consider()'s
     * min(Tmatch, worst), a partial early-exit sum only ever compares
     * greater than the bound, and an accepted d < bound is exact.
     * The pruned count on this path may include early-exited partial
     * sums below Tmatch whose exact distance is above it — still
     * deterministic, which is what the --ops-tolerance gate needs.
     */
    void
    considerCut(int xr, int yr, int x, int y, MatchList &out,
                ScanState &scan, uint64_t &pruned) const
    {
        const float bound = std::min(scan.cut, out.worstDistance());
        float d = bounded_
                      ? domain_.distanceBounded(xr, yr, x, y, bound)
                      : domain_.distance(xr, yr, x, y);
        if (d < bound) {
            out.insert(Match{x, y, d});
            scan.cut = std::min(scan.cut, out.worstDistance());
        } else if (d < tauMatch_) {
            ++pruned;
        }
    }

    const Domain &domain_;
    int half_;
    int searchStride_;
    int refStride_;
    float tauMatch_;
    int32_t rawTau_ = 0; ///< exact raw tau (kRawBatch domains only)
    int maxMatches_;
    bool bounded_;
    bool prefetch_;
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_BLOCKMATCH_H_
