#ifndef IDEAL_BM3D_BLOCKMATCH_H_
#define IDEAL_BM3D_BLOCKMATCH_H_

/**
 * @file
 * Block matching (paper Fig. 1b) with optional Matches Reuse
 * (Sec. 5.1). The matcher is parameterized by a *matching domain*:
 * BM1 measures distances between hard-thresholded DCT patches while
 * BM2 measures them between color-domain patches of the intermediate
 * image (Paths A and B).
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bm3d/config.h"
#include "bm3d/matchlist.h"
#include "bm3d/patchfield.h"
#include "image/image.h"
#include "transforms/distance.h"

namespace ideal {
namespace bm3d {

/** Matching domain over a DCT patch field (BM1, Path A). */
class DctMatchDomain
{
  public:
    explicit DctMatchDomain(const DctPatchField &field)
        : field_(field),
          norm_(1.0f / static_cast<float>(field.patchSize() *
                                          field.patchSize()))
    {
    }

    int positionsX() const { return field_.positionsX(); }
    int positionsY() const { return field_.positionsY(); }

    /** Normalized squared distance between patches at two top-lefts. */
    float
    distance(int ax, int ay, int bx, int by) const
    {
        int len = field_.patchSize() * field_.patchSize();
        return transforms::squaredDistance(field_.matchPatch(ax, ay),
                                           field_.matchPatch(bx, by),
                                           len) * norm_;
    }

    /** Distance with early exit once it exceeds @p bound. */
    float
    distanceBounded(int ax, int ay, int bx, int by, float bound) const
    {
        int len = field_.patchSize() * field_.patchSize();
        return transforms::squaredDistanceBounded(
                   field_.matchPatch(ax, ay), field_.matchPatch(bx, by),
                   len, bound / norm_) * norm_;
    }

    /** True when patches are the 16-float descriptors ssdBatch16 wants. */
    bool
    supportsBatch() const
    {
        return field_.patchSize() * field_.patchSize() == 16;
    }

    /**
     * Normalized distances of the contiguous x-run
     * [x0, x0 + count) at row @p y against the reference patch at
     * (xr, yr); count <= 8. Requires supportsBatch(). Values agree
     * bitwise with distance()/distanceBounded() — at 16 elements all
     * three SSD kernels share one accumulation order.
     */
    void
    distanceBatch(int xr, int yr, int x0, int y, int count,
                  float *out) const
    {
        transforms::squaredDistanceBatch16(field_.matchPatch(xr, yr),
                                           field_.matchPatch(x0, y),
                                           count, out);
        for (int i = 0; i < count; ++i)
            out[i] *= norm_;
    }

  private:
    const DctPatchField &field_;
    float norm_;
};

/** Matching domain over color-domain pixels (BM2, Path B). */
class ColorMatchDomain
{
  public:
    /**
     * Copies every patch of @p plane into a contiguous descriptor
     * array once (PD^2 floats per position, the same layout the DCT
     * domain gets from its patch field). Matching then runs the same
     * contiguous vectorized distance kernel in both stages instead of
     * a strided row walk; the copy is a single pass over the plane and
     * is immutable afterwards, so the domain can be shared read-only
     * across worker threads.
     */
    ColorMatchDomain(const image::ImageF &plane, int patch_size)
        : patchSize_(patch_size),
          positionsX_(plane.width() - patch_size + 1),
          positionsY_(plane.height() - patch_size + 1),
          norm_(1.0f / static_cast<float>(patch_size * patch_size))
    {
        const int pp = patch_size * patch_size;
        const float *base = plane.plane(0);
        const int w = plane.width();
        patches_.resize(static_cast<size_t>(positionsX_) * positionsY_ *
                        pp);
        for (int y = 0; y < positionsY_; ++y)
            for (int x = 0; x < positionsX_; ++x) {
                float *dst = patches_.data() +
                             (static_cast<size_t>(y) * positionsX_ + x) *
                                 pp;
                for (int r = 0; r < patch_size; ++r) {
                    const float *src =
                        base + static_cast<size_t>(y + r) * w + x;
                    std::copy(src, src + patch_size,
                              dst + static_cast<size_t>(r) * patch_size);
                }
            }
    }

    int positionsX() const { return positionsX_; }
    int positionsY() const { return positionsY_; }

    float
    distance(int ax, int ay, int bx, int by) const
    {
        return transforms::squaredDistance(patch(ax, ay), patch(bx, by),
                                           patchSize_ * patchSize_) *
               norm_;
    }

    float
    distanceBounded(int ax, int ay, int bx, int by, float bound) const
    {
        return transforms::squaredDistanceBounded(
                   patch(ax, ay), patch(bx, by), patchSize_ * patchSize_,
                   bound / norm_) *
               norm_;
    }

    /** True when patches are the 16-float descriptors ssdBatch16 wants. */
    bool
    supportsBatch() const
    {
        return patchSize_ * patchSize_ == 16;
    }

    /**
     * Normalized distances of the contiguous x-run
     * [x0, x0 + count) at row @p y against the reference patch at
     * (xr, yr); count <= 8. Requires supportsBatch(). Values agree
     * bitwise with distance()/distanceBounded().
     */
    void
    distanceBatch(int xr, int yr, int x0, int y, int count,
                  float *out) const
    {
        transforms::squaredDistanceBatch16(patch(xr, yr), patch(x0, y),
                                           count, out);
        for (int i = 0; i < count; ++i)
            out[i] *= norm_;
    }

  private:
    const float *
    patch(int x, int y) const
    {
        return patches_.data() +
               (static_cast<size_t>(y) * positionsX_ + x) * patchSize_ *
                   patchSize_;
    }

    int patchSize_;
    int positionsX_;
    int positionsY_;
    float norm_;
    std::vector<float> patches_;
};

/**
 * Block-matching engine over a matching domain.
 *
 * search() performs the full Ns x Ns window scan; searchReuse()
 * performs the Matches-Reuse reduced scan: the previous reference
 * patch's best matches (clipped to the current window) plus the
 * rightmost Ns x Ps column of positions that are new to the current
 * window (paper Sec. 5.1).
 */
template <typename Domain>
class BlockMatcher
{
  public:
    /**
     * @param domain        matching domain (must outlive the matcher)
     * @param window        search window dimension Ns (odd)
     * @param search_stride search stride Ss
     * @param ref_stride    reference patch stride Ps
     * @param tau_match     match-distance threshold Tmatch
     * @param max_matches   best-match list capacity (16)
     * @param bounded       use early-exit distances (software opt.)
     */
    BlockMatcher(const Domain &domain, int window, int search_stride,
                 int ref_stride, float tau_match, int max_matches,
                 bool bounded = true)
        : domain_(domain), half_((window - 1) / 2),
          searchStride_(search_stride), refStride_(ref_stride),
          tauMatch_(tau_match), maxMatches_(max_matches), bounded_(bounded)
    {
    }

    /**
     * Full window search around reference (xr, yr). The reference
     * itself is always the first (distance 0) entry.
     * @return number of candidate distances evaluated
     */
    uint64_t
    search(int xr, int yr, MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;
        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);
        if (searchStride_ == 1 && domain_.supportsBatch()) {
            // Batched scan: each window row is a contiguous run of
            // candidate descriptors, scored 8 per kernel call. The
            // reference row splits into the runs before and after the
            // reference patch. Selection is identical to the bounded
            // scalar path: at 16 elements the bounded kernel cannot
            // exit early, so both paths compare the exact distance
            // against tauMatch.
            for (int y = y_lo; y <= y_hi; ++y) {
                if (y == yr) {
                    considerRun(xr, yr, x_lo, xr - 1, y, out, evaluated);
                    considerRun(xr, yr, xr + 1, x_hi, y, out, evaluated);
                } else {
                    considerRun(xr, yr, x_lo, x_hi, y, out, evaluated);
                }
            }
            return evaluated;
        }
        for (int y = y_lo; y <= y_hi; y += searchStride_) {
            for (int x = x_lo; x <= x_hi; x += searchStride_) {
                if (x == xr && y == yr)
                    continue;
                consider(xr, yr, x, y, out);
                ++evaluated;
            }
        }
        return evaluated;
    }

    /**
     * Matches-Reuse search: test the previous reference patch's
     * matches that fall inside the current window, plus the rightmost
     * column of positions new to this window.
     * @return number of candidate distances evaluated
     */
    uint64_t
    searchReuse(int xr, int yr, const MatchList &previous,
                MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;

        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);

        // Leftmost x of the column scan in step 2; previous matches in
        // that range are skipped so no position is considered twice
        // (the ranges only overlap when the window clips at the image
        // right edge).
        const int new_lo = std::max(x_lo, xr + half_ - refStride_ + 1);

        // 1) Previous best matches, clipped to the current window.
        for (const Match &m : previous) {
            if (m.x == xr && m.y == yr)
                continue;
            if (m.x < x_lo || m.x >= new_lo || m.y < y_lo || m.y > y_hi)
                continue;
            consider(xr, yr, m.x, m.y, out);
            ++evaluated;
        }

        // 2) The Ns x Ps column that the previous window did not cover.
        for (int x = new_lo; x <= x_hi; ++x) {
            for (int y = y_lo; y <= y_hi; y += searchStride_) {
                if (x == xr && y == yr)
                    continue;
                consider(xr, yr, x, y, out);
                ++evaluated;
            }
        }
        return evaluated;
    }

    /**
     * Matches-Reuse across rows (the Sec. 5.3 future-work extension):
     * reuse the matches of the reference patch directly *above*,
     * plus the bottom Ns x Ps band of positions new to this window.
     * @return number of candidate distances evaluated
     */
    uint64_t
    searchReuseDown(int xr, int yr, const MatchList &above,
                    MatchList &out) const
    {
        out = MatchList(maxMatches_);
        out.insert(Match{xr, yr, 0.0f});
        uint64_t evaluated = 0;

        const int x_lo = std::max(0, xr - half_);
        const int x_hi = std::min(domain_.positionsX() - 1, xr + half_);
        const int y_lo = std::max(0, yr - half_);
        const int y_hi = std::min(domain_.positionsY() - 1, yr + half_);
        const int new_lo = std::max(y_lo, yr + half_ - refStride_ + 1);

        for (const Match &m : above) {
            if (m.x == xr && m.y == yr)
                continue;
            if (m.x < x_lo || m.x > x_hi || m.y < y_lo || m.y >= new_lo)
                continue;
            consider(xr, yr, m.x, m.y, out);
            ++evaluated;
        }
        for (int y = new_lo; y <= y_hi; ++y) {
            for (int x = x_lo; x <= x_hi; x += searchStride_) {
                if (x == xr && y == yr)
                    continue;
                consider(xr, yr, x, y, out);
                ++evaluated;
            }
        }
        return evaluated;
    }

    /** Distance between two reference positions (for the MR check). */
    float
    referenceDistance(int xa, int ya, int xb, int yb) const
    {
        return domain_.distance(xa, ya, xb, yb);
    }

    float tauMatch() const { return tauMatch_; }

  private:
    /**
     * Batched consideration of the run [x0, x1] at row @p y (empty
     * when x0 > x1). Requires domain_.supportsBatch().
     */
    void
    considerRun(int xr, int yr, int x0, int x1, int y, MatchList &out,
                uint64_t &evaluated) const
    {
        float d[8];
        for (int x = x0; x <= x1; x += 8) {
            const int count = std::min(8, x1 - x + 1);
            domain_.distanceBatch(xr, yr, x, y, count, d);
            for (int i = 0; i < count; ++i) {
                if (d[i] < tauMatch_)
                    out.insert(Match{x + i, y, d[i]});
            }
            evaluated += count;
        }
    }

    void
    consider(int xr, int yr, int x, int y, MatchList &out) const
    {
        float bound = std::min(tauMatch_, out.worstDistance());
        float d = bounded_
                      ? domain_.distanceBounded(xr, yr, x, y, bound)
                      : domain_.distance(xr, yr, x, y);
        if (d < tauMatch_)
            out.insert(Match{x, y, d});
    }

    const Domain &domain_;
    int half_;
    int searchStride_;
    int refStride_;
    float tauMatch_;
    int maxMatches_;
    bool bounded_;
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_BLOCKMATCH_H_
