#include "bm3d/patchfield.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ideal {
namespace bm3d {

void
extractPatch(const image::ImageF &plane, int x, int y, int patch_size,
             float *out)
{
    const float *base = plane.plane(0);
    const int w = plane.width();
    for (int r = 0; r < patch_size; ++r) {
        const float *row = base + static_cast<size_t>(y + r) * w + x;
        for (int c = 0; c < patch_size; ++c)
            out[r * patch_size + c] = row[c];
    }
}

DctPatchField::DctPatchField(
    const image::ImageF &plane, const transforms::Dct2D &dct,
    float threshold,
    const std::optional<fixed::PipelineFormats> &fixed_point,
    OpCounters *ops)
    : patchSize_(dct.size()), coefs_(patchSize_ * patchSize_),
      posX_(plane.width() - patchSize_ + 1),
      posY_(plane.height() - patchSize_ + 1)
{
    if (plane.channels() != 1)
        throw std::invalid_argument("DctPatchField: expected 1 channel");
    if (posX_ <= 0 || posY_ <= 0)
        throw std::invalid_argument("DctPatchField: image < patch size");

    const size_t plane_stride = static_cast<size_t>(posX_) * posY_;
    raw_.resize(plane_stride * coefs_);
    match_.resize(plane_stride * coefs_);
    matchPlanes_.resize(coefs_);
    for (int k = 0; k < coefs_; ++k)
        matchPlanes_[k] = match_.data() + static_cast<size_t>(k) *
                                              plane_stride;

    // The SoA scatter is blocked over x: transform up to kBlock
    // consecutive positions first, then write each coefficient plane's
    // kBlock values as one contiguous run. A per-position scatter
    // touches coefs_ distinct cache lines (the planes sit ~posX*posY
    // floats apart); blocking turns that into coefs_ short sequential
    // bursts, which the store buffer handles far better. The values
    // are identical either way, so the field is bitwise unchanged.
    constexpr int kBlock = 8;
    float pixels[64];
    float tbuf[64][kBlock];
    for (int y = 0; y < posY_; ++y) {
        for (int x0 = 0; x0 < posX_; x0 += kBlock) {
            const int nb = std::min(kBlock, posX_ - x0);
            for (int j = 0; j < nb; ++j) {
                const int x = x0 + j;
                extractPatch(plane, x, y, patchSize_, pixels);
                float *dst = raw_.data() + index(x, y);
                if (fixed_point)
                    dct.forwardFixed(pixels, dst, *fixed_point);
                else
                    dct.forward(pixels, dst);
                for (int k = 0; k < coefs_; ++k) {
                    const float c = dst[k];
                    tbuf[k][j] =
                        (threshold > 0.0f && std::abs(c) < threshold)
                            ? 0.0f
                            : c;
                }
            }
            const size_t off = matchOffset(x0, y);
            for (int k = 0; k < coefs_; ++k) {
                float *out =
                    match_.data() + static_cast<size_t>(k) * plane_stride +
                    off;
                for (int j = 0; j < nb; ++j)
                    out[j] = tbuf[k][j];
            }
        }
    }

    if (ops) {
        // Each 2-D DCT is two n x n matrix products: 2 * n^3 multiplies
        // and adds (paper Sec. 2.1: 64 + 64 for n = 4 per 1-D pass).
        const uint64_t patches =
            static_cast<uint64_t>(posX_) * posY_;
        const uint64_t n = patchSize_;
        ops->multiplies += patches * 2 * n * n * n;
        ops->additions += patches * 2 * n * n * (n - 1);
        ops->memoryReads += patches * n * n;
        // Raw store plus the matching-plane scatter.
        ops->memoryWrites += patches * n * n * 2;
        if (threshold > 0.0f)
            ops->comparisons += patches * n * n;
    }
}

uint64_t
TileDctField::build(const image::ImageF &src, int c,
                    const transforms::Dct2D &dct,
                    const std::optional<fixed::PipelineFormats> &fixed_point,
                    int x0, int y0, int x1, int y1)
{
    const int p = dct.size();
    coefs_ = p * p;
    x0_ = x0;
    y0_ = y0;
    width_ = x1 - x0 + 1;
    height_ = y1 - y0 + 1;
    if (width_ <= 0 || height_ <= 0)
        throw std::invalid_argument("TileDctField: empty range");
    store_.resize(static_cast<size_t>(width_) * height_ * coefs_);

    const float *base = src.plane(c);
    const int w = src.width();
    float pixels[64];
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
            for (int r = 0; r < p; ++r) {
                const float *row =
                    base + static_cast<size_t>(y + r) * w + x;
                for (int cc = 0; cc < p; ++cc)
                    pixels[r * p + cc] = row[cc];
            }
            float *dst = store_.data() +
                         (static_cast<size_t>(y - y0_) * width_ +
                          (x - x0_)) *
                             coefs_;
            if (fixed_point)
                dct.forwardFixed(pixels, dst, *fixed_point);
            else
                dct.forward(pixels, dst);
        }
    }
    return static_cast<uint64_t>(width_) * height_;
}

} // namespace bm3d
} // namespace ideal
