#include "bm3d/patchfield.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "runtime/arena.h"
#include "simd/simd.h"

namespace ideal {
namespace bm3d {

void
extractPatch(const image::ImageF &plane, int x, int y, int patch_size,
             float *out)
{
    const float *base = plane.plane(0);
    const int w = plane.width();
    for (int r = 0; r < patch_size; ++r) {
        const float *row = base + static_cast<size_t>(y + r) * w + x;
        for (int c = 0; c < patch_size; ++c)
            out[r * patch_size + c] = row[c];
    }
}

DctPatchField::DctPatchField(
    const image::ImageF &plane, const transforms::Dct2D &dct,
    float threshold,
    const std::optional<fixed::PipelineFormats> &fixed_point,
    OpCounters *ops)
{
    build(plane, dct, threshold, fixed_point, ops, nullptr);
}

DctPatchField::~DctPatchField()
{
    if (arena_ != nullptr) {
        arena_->release(std::move(raw_));
        arena_->release(std::move(match_));
    }
    if (chargedBytes_ > 0)
        obs::chargeResidentBytes(-chargedBytes_);
}

size_t
DctPatchField::footprintBytes() const
{
    return (raw_.size() + match_.size()) * sizeof(float) +
           (matchI16_.size() + matchPairsI16_.size()) * sizeof(int16_t);
}

void
DctPatchField::publishFootprint()
{
    obs::MetricsRegistry::global().setMax(
        banded() ? "mem.peakBandBytes" : "mem.peakFieldBytes",
        static_cast<double>(footprintBytes()));
    // Ledger charge for the plain-vector storage this field owns (the
    // int16 planes always; raw_/match_ only when not arena-backed —
    // the arena charges its own fresh allocations).
    int64_t owned = static_cast<int64_t>(
        (matchI16_.capacity() + matchPairsI16_.capacity()) *
        sizeof(int16_t));
    if (arena_ == nullptr)
        owned += static_cast<int64_t>(
            (raw_.capacity() + match_.capacity()) * sizeof(float));
    if (owned != chargedBytes_) {
        obs::chargeResidentBytes(owned - chargedBytes_);
        chargedBytes_ = owned;
    }
}

void
DctPatchField::prepare(int plane_width, int plane_height,
                       const transforms::Dct2D &dct,
                       runtime::BufferArena *arena, int ring_rows)
{
    patchSize_ = dct.size();
    coefs_ = patchSize_ * patchSize_;
    posX_ = plane_width - patchSize_ + 1;
    posY_ = plane_height - patchSize_ + 1;
    if (posX_ <= 0 || posY_ <= 0)
        throw std::invalid_argument("DctPatchField: image < patch size");
    ringRows_ = (ring_rows > 0 && ring_rows < posY_) ? ring_rows : posY_;

    if (arena_ != nullptr && arena != arena_) {
        // Rebinding to a different arena: surrender the old storage to
        // the previous owner first.
        arena_->release(std::move(raw_));
        arena_->release(std::move(match_));
    }
    arena_ = arena;

    planeStride_ = static_cast<size_t>(posX_) * ringRows_;
    const size_t n = planeStride_ * coefs_;
    if (arena_ != nullptr) {
        arena_->ensure(raw_, n);
        arena_->ensure(match_, n);
    } else {
        raw_.resize(n);
        match_.resize(n);
    }
    matchPlanes_.resize(coefs_);
    for (int k = 0; k < coefs_; ++k)
        matchPlanes_[k] = match_.data() + static_cast<size_t>(k) *
                                              planeStride_;
    // Stale int16 planes from a previous geometry would misreport the
    // footprint; prepareI16() rebuilds them against the new stride.
    // resize(0) keeps the capacity, so steady-state re-preparation
    // still allocates nothing.
    matchI16_.resize(0);
    matchPairsI16_.resize(0);
    matchPlanesI16_.clear();
    matchPairPlanesI16_.clear();
    publishFootprint();
}

uint64_t
DctPatchField::fillRows(
    const image::ImageF &plane, const transforms::Dct2D &dct,
    float threshold,
    const std::optional<fixed::PipelineFormats> &fixed_point, int y0,
    int y1)
{
    if (plane.channels() != 1)
        throw std::invalid_argument("DctPatchField: expected 1 channel");
    if (plane.width() - patchSize_ + 1 != posX_ ||
        plane.height() - patchSize_ + 1 != posY_) {
        throw std::invalid_argument("DctPatchField: plane/prepare mismatch");
    }
    y0 = std::max(y0, 0);
    y1 = std::min(y1, posY_);
    if (y0 >= y1)
        return 0;

    // The SoA scatter is blocked over x: transform up to kBlock
    // consecutive positions first, then write each coefficient plane's
    // kBlock values as one contiguous run. A per-position scatter
    // touches coefs_ distinct cache lines (the planes sit ~posX*posY
    // floats apart); blocking turns that into coefs_ short sequential
    // bursts, which the store buffer handles far better. The values
    // are identical either way, so the field is bitwise unchanged.
    constexpr int kBlock = 8;
    float pixels[64];
    float tbuf[64][kBlock];
    for (int y = y0; y < y1; ++y) {
        for (int x0 = 0; x0 < posX_; x0 += kBlock) {
            const int nb = std::min(kBlock, posX_ - x0);
            for (int j = 0; j < nb; ++j) {
                const int x = x0 + j;
                extractPatch(plane, x, y, patchSize_, pixels);
                float *dst = raw_.data() + index(x, y);
                if (fixed_point)
                    dct.forwardFixed(pixels, dst, *fixed_point);
                else
                    dct.forward(pixels, dst);
                for (int k = 0; k < coefs_; ++k) {
                    const float c = dst[k];
                    tbuf[k][j] =
                        (threshold > 0.0f && std::abs(c) < threshold)
                            ? 0.0f
                            : c;
                }
            }
            const size_t off = matchOffset(x0, y);
            for (int k = 0; k < coefs_; ++k) {
                float *out =
                    match_.data() + static_cast<size_t>(k) * planeStride_ +
                    off;
                for (int j = 0; j < nb; ++j)
                    out[j] = tbuf[k][j];
            }
        }
    }
    return static_cast<uint64_t>(y1 - y0) * posX_;
}

void
DctPatchField::prepareI16()
{
    if (patchSize_ != 4)
        throw std::invalid_argument(
            "DctPatchField: int16 planes require a 4x4 patch");
    matchI16_.resize(planeStride_ * coefs_);
    matchPlanesI16_.resize(coefs_);
    for (int k = 0; k < coefs_; ++k)
        matchPlanesI16_[k] =
            matchI16_.data() + static_cast<size_t>(k) * planeStride_;
    // Pair-interleaved twin for the window-scan batch kernel: coefs/2
    // planes of 2 * planeStride_ raws each (same total footprint).
    matchPairsI16_.resize(planeStride_ * coefs_);
    matchPairPlanesI16_.resize(coefs_ / 2);
    for (int p = 0; p < coefs_ / 2; ++p)
        matchPairPlanesI16_[p] =
            matchPairsI16_.data() +
            static_cast<size_t>(p) * 2 * planeStride_;
    publishFootprint();
}

uint64_t
DctPatchField::fillRowsI16(const image::ImageF &plane,
                           const transforms::Dct2D &dct, float threshold,
                           int y0, int y1)
{
    if (plane.channels() != 1)
        throw std::invalid_argument("DctPatchField: expected 1 channel");
    if (plane.width() - patchSize_ + 1 != posX_ ||
        plane.height() - patchSize_ + 1 != posY_)
        throw std::invalid_argument("DctPatchField: plane/prepare mismatch");
    if (matchPlanesI16_.empty())
        throw std::logic_error("DctPatchField: prepareI16() not called");
    y0 = std::max(y0, 0);
    y1 = std::min(y1, posY_);
    if (y0 >= y1)
        return 0;

    // The folded half matrices in Q13 raws: even[m*2+i] = C[2m][i],
    // odd[m*2+i] = C[2m+1][i] (the float kernels' fwdEven_/fwdOdd_
    // layout). Locals, recomputed per band: quantization is pure, so
    // bands stay freely parallel with no shared mutable state.
    const float even_f[4] = {dct.coefficient(0, 0), dct.coefficient(0, 1),
                             dct.coefficient(2, 0), dct.coefficient(2, 1)};
    const float odd_f[4] = {dct.coefficient(1, 0), dct.coefficient(1, 1),
                            dct.coefficient(3, 0), dct.coefficient(3, 1)};
    int16_t evenQ[4], oddQ[4];
    fixed::quantizeBasisQ(even_f, 4, planI16_.coefFracBits, evenQ);
    fixed::quantizeBasisQ(odd_f, 4, planI16_.coefFracBits, oddQ);

    const int16_t thr_raw = static_cast<int16_t>(
        planI16_.match.quantize(static_cast<double>(threshold)));

    const simd::KernelTable &k = simd::kernels();

    // Same blocked SoA scatter as fillRows(); the per-patch pipeline
    // is quantize pixels -> int16 folded DCT -> saturating hard
    // threshold, all in pure integer ops, so any banding and any
    // dispatch level produce identical planes.
    constexpr int kBlock = 8;
    float pixels[16];
    int16_t pixq[16], coefq[16];
    int16_t tbuf[16][kBlock];
    for (int y = y0; y < y1; ++y) {
        for (int x0 = 0; x0 < posX_; x0 += kBlock) {
            const int nb = std::min(kBlock, posX_ - x0);
            for (int j = 0; j < nb; ++j) {
                const int x = x0 + j;
                extractPatch(plane, x, y, patchSize_, pixels);
                fixed::quantizeToI16(pixels, 16, planI16_.pixel, pixq);
                k.dct4ForwardI16(pixq, coefq, evenQ, oddQ,
                                 planI16_.shift1, planI16_.shift2);
                if (threshold > 0.0f)
                    k.hardThresholdI16(coefq, coefs_, thr_raw);
                for (int c = 0; c < coefs_; ++c)
                    tbuf[c][j] = coefq[c];
            }
            const size_t off = matchOffset(x0, y);
            for (int c = 0; c < coefs_; ++c) {
                int16_t *out = matchI16_.data() +
                               static_cast<size_t>(c) * planeStride_ + off;
                for (int j = 0; j < nb; ++j)
                    out[j] = tbuf[c][j];
                // Pair-interleaved scatter: coefficient c lands at
                // slot (c & 1) of pair plane c / 2.
                int16_t *pout = matchPairsI16_.data() +
                                static_cast<size_t>(c / 2) * 2 *
                                    planeStride_ +
                                2 * off + (c & 1);
                for (int j = 0; j < nb; ++j)
                    pout[2 * j] = tbuf[c][j];
            }
        }
    }
    return static_cast<uint64_t>(y1 - y0) * posX_;
}

void
DctPatchField::build(const image::ImageF &plane,
                     const transforms::Dct2D &dct, float threshold,
                     const std::optional<fixed::PipelineFormats> &fixed_point,
                     OpCounters *ops, runtime::BufferArena *arena)
{
    prepare(plane.width(), plane.height(), dct, arena);
    const uint64_t patches =
        fillRows(plane, dct, threshold, fixed_point, 0, posY_);
    if (ops)
        countOps(patches, patchSize_, threshold > 0.0f, ops);
}

void
DctPatchField::countOps(uint64_t patches, int patch_size, bool thresholded,
                        OpCounters *ops)
{
    // Each 2-D DCT is two n x n matrix products: 2 * n^3 multiplies
    // and adds (paper Sec. 2.1: 64 + 64 for n = 4 per 1-D pass).
    const uint64_t n = static_cast<uint64_t>(patch_size);
    ops->multiplies += patches * 2 * n * n * n;
    ops->additions += patches * 2 * n * n * (n - 1);
    ops->memoryReads += patches * n * n;
    // Raw store plus the matching-plane scatter.
    ops->memoryWrites += patches * n * n * 2;
    if (thresholded)
        ops->comparisons += patches * n * n;
}

TileDctField::TileDctField(TileDctField &&other) noexcept
    : x0_(other.x0_), y0_(other.y0_), width_(other.width_),
      height_(other.height_), coefs_(other.coefs_),
      store_(std::move(other.store_)), arena_(other.arena_)
{
    other.arena_ = nullptr;
}

TileDctField &
TileDctField::operator=(TileDctField &&other) noexcept
{
    if (this == &other)
        return *this;
    if (arena_ != nullptr)
        arena_->release(std::move(store_));
    x0_ = other.x0_;
    y0_ = other.y0_;
    width_ = other.width_;
    height_ = other.height_;
    coefs_ = other.coefs_;
    store_ = std::move(other.store_);
    arena_ = other.arena_;
    other.arena_ = nullptr;
    return *this;
}

TileDctField::~TileDctField()
{
    if (arena_ != nullptr)
        arena_->release(std::move(store_));
}

uint64_t
TileDctField::build(const image::ImageF &src, int c,
                    const transforms::Dct2D &dct,
                    const std::optional<fixed::PipelineFormats> &fixed_point,
                    int x0, int y0, int x1, int y1,
                    runtime::BufferArena *arena)
{
    const int p = dct.size();
    coefs_ = p * p;
    x0_ = x0;
    y0_ = y0;
    width_ = x1 - x0 + 1;
    height_ = y1 - y0 + 1;
    if (width_ <= 0 || height_ <= 0)
        throw std::invalid_argument("TileDctField: empty range");
    if (arena_ != nullptr && arena != arena_)
        arena_->release(std::move(store_));
    arena_ = arena;
    const size_t n = static_cast<size_t>(width_) * height_ * coefs_;
    if (arena_ != nullptr)
        arena_->ensure(store_, n);
    else
        store_.resize(n);

    const float *base = src.plane(c);
    const int w = src.width();
    float pixels[64];
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
            for (int r = 0; r < p; ++r) {
                const float *row =
                    base + static_cast<size_t>(y + r) * w + x;
                for (int cc = 0; cc < p; ++cc)
                    pixels[r * p + cc] = row[cc];
            }
            float *dst = store_.data() +
                         (static_cast<size_t>(y - y0_) * width_ +
                          (x - x0_)) *
                             coefs_;
            if (fixed_point)
                dct.forwardFixed(pixels, dst, *fixed_point);
            else
                dct.forward(pixels, dst);
        }
    }
    return static_cast<uint64_t>(width_) * height_;
}

} // namespace bm3d
} // namespace ideal
