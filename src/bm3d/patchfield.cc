#include "bm3d/patchfield.h"

#include <cmath>
#include <stdexcept>

namespace ideal {
namespace bm3d {

void
extractPatch(const image::ImageF &plane, int x, int y, int patch_size,
             float *out)
{
    const float *base = plane.plane(0);
    const int w = plane.width();
    for (int r = 0; r < patch_size; ++r) {
        const float *row = base + static_cast<size_t>(y + r) * w + x;
        for (int c = 0; c < patch_size; ++c)
            out[r * patch_size + c] = row[c];
    }
}

DctPatchField::DctPatchField(
    const image::ImageF &plane, const transforms::Dct2D &dct,
    float threshold,
    const std::optional<fixed::PipelineFormats> &fixed_point,
    OpCounters *ops)
    : patchSize_(dct.size()), coefs_(patchSize_ * patchSize_),
      posX_(plane.width() - patchSize_ + 1),
      posY_(plane.height() - patchSize_ + 1)
{
    if (plane.channels() != 1)
        throw std::invalid_argument("DctPatchField: expected 1 channel");
    if (posX_ <= 0 || posY_ <= 0)
        throw std::invalid_argument("DctPatchField: image < patch size");

    raw_.resize(static_cast<size_t>(posX_) * posY_ * coefs_);
    if (threshold > 0.0f)
        thresholded_.resize(raw_.size());

    float pixels[64];
    for (int y = 0; y < posY_; ++y) {
        for (int x = 0; x < posX_; ++x) {
            extractPatch(plane, x, y, patchSize_, pixels);
            float *dst = raw_.data() + index(x, y);
            if (fixed_point)
                dct.forwardFixed(pixels, dst, *fixed_point);
            else
                dct.forward(pixels, dst);
            if (threshold > 0.0f) {
                float *m = thresholded_.data() + index(x, y);
                for (int i = 0; i < coefs_; ++i)
                    m[i] = std::abs(dst[i]) < threshold ? 0.0f : dst[i];
            }
        }
    }

    if (ops) {
        // Each 2-D DCT is two n x n matrix products: 2 * n^3 multiplies
        // and adds (paper Sec. 2.1: 64 + 64 for n = 4 per 1-D pass).
        const uint64_t patches =
            static_cast<uint64_t>(posX_) * posY_;
        const uint64_t n = patchSize_;
        ops->multiplies += patches * 2 * n * n * n;
        ops->additions += patches * 2 * n * n * (n - 1);
        ops->memoryReads += patches * n * n;
        ops->memoryWrites += patches * n * n;
        if (threshold > 0.0f) {
            ops->comparisons += patches * n * n;
            ops->memoryWrites += patches * n * n;
        }
    }
}

} // namespace bm3d
} // namespace ideal
