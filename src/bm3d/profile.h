#ifndef IDEAL_BM3D_PROFILE_H_
#define IDEAL_BM3D_PROFILE_H_

/**
 * @file
 * Per-step time and operation accounting for the software BM3D
 * implementation. The step taxonomy matches the paper's breakdown
 * (Fig. 4): DCT1, BM1, DE1, BM2, DCT2, DE2. Operation counts feed the
 * CPU microarchitectural proxy (Table 1) and the energy model.
 */

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ideal {
namespace bm3d {

/** Algorithm steps in pipeline order. */
enum class Step : int {
    Dct1 = 0, ///< DCT of all patches for stage 1
    Bm1,      ///< block matching, hard-thresholding stage
    De1,      ///< denoising (hard threshold filter)
    Bm2,      ///< block matching, Wiener stage
    Dct2,     ///< DCT work for stage 2
    De2,      ///< denoising (Wiener filter)
    Count,
};

constexpr int kNumSteps = static_cast<int>(Step::Count);

/** Printable step name matching the paper's figure labels. */
const char *toString(Step step);

/** Arithmetic / memory operation counters (for Table 1 and energy). */
struct OpCounters
{
    uint64_t multiplies = 0;
    uint64_t additions = 0;
    uint64_t comparisons = 0;
    uint64_t memoryReads = 0;  ///< sample loads
    uint64_t memoryWrites = 0; ///< sample stores

    OpCounters &
    operator+=(const OpCounters &other)
    {
        multiplies += other.multiplies;
        additions += other.additions;
        comparisons += other.comparisons;
        memoryReads += other.memoryReads;
        memoryWrites += other.memoryWrites;
        return *this;
    }

    uint64_t
    total() const
    {
        return multiplies + additions + comparisons + memoryReads +
               memoryWrites;
    }
};

/** Matches-Reuse statistics (Fig. 10). */
struct MrStats
{
    uint64_t bm1Hits = 0;       ///< reference patches that reused matches
    uint64_t bm1Refs = 0;       ///< reference patches processed in BM1
    uint64_t bm2Hits = 0;
    uint64_t bm2Refs = 0;
    uint64_t bm1Candidates = 0; ///< distance computations in BM1
    uint64_t bm2Candidates = 0;
    /// Subset of hits that reused the row above (the across-rows
    /// extension; 0 when it is disabled).
    uint64_t bm1VertHits = 0;
    uint64_t bm2VertHits = 0;

    double
    hitRate1() const
    {
        return bm1Refs ? static_cast<double>(bm1Hits) / bm1Refs : 0.0;
    }

    double
    hitRate2() const
    {
        return bm2Refs ? static_cast<double>(bm2Hits) / bm2Refs : 0.0;
    }

    MrStats &
    operator+=(const MrStats &other)
    {
        bm1Hits += other.bm1Hits;
        bm1Refs += other.bm1Refs;
        bm2Hits += other.bm2Hits;
        bm2Refs += other.bm2Refs;
        bm1Candidates += other.bm1Candidates;
        bm2Candidates += other.bm2Candidates;
        bm1VertHits += other.bm1VertHits;
        bm2VertHits += other.bm2VertHits;
        return *this;
    }
};

/**
 * Adaptive fast-matching statistics (Config::variant, DESIGN §11).
 * All counts are deterministic for a given configuration, SIMD level
 * and image — selection is bitwise-reproducible — so the bench
 * harness gates them with --ops-tolerance 0 like op counts.
 */
struct AdaptiveStats
{
    /// Candidates below Tmatch that the running/propagated cutoff
    /// rejected without an insertion attempt (both stages).
    uint64_t prunedInserts = 0;
    /// Tiles processed on the subsampled reference grid and left
    /// coarse (residual below the densify threshold).
    uint64_t tilesCoarse = 0;
    /// Coarse tiles whose residual reached the threshold and were
    /// densified back to the full reference grid.
    uint64_t tilesDensified = 0;
    /// Reference positions skipped by coarse tiles (never searched).
    uint64_t refsSkipped = 0;

    AdaptiveStats &
    operator+=(const AdaptiveStats &other)
    {
        prunedInserts += other.prunedInserts;
        tilesCoarse += other.tilesCoarse;
        tilesDensified += other.tilesDensified;
        refsSkipped += other.refsSkipped;
        return *this;
    }
};

/** Accumulated profile of one denoising run. */
class Profile
{
  public:
    /** Add @p seconds of wall time to @p step. */
    void
    addTime(Step step, double seconds)
    {
        seconds_[static_cast<int>(step)] += seconds;
    }

    /** Add operation counts to @p step. */
    void
    addOps(Step step, const OpCounters &ops)
    {
        ops_[static_cast<int>(step)] += ops;
    }

    double seconds(Step step) const
    {
        return seconds_[static_cast<int>(step)];
    }

    const OpCounters &ops(Step step) const
    {
        return ops_[static_cast<int>(step)];
    }

    double
    totalSeconds() const
    {
        double total = 0.0;
        for (double s : seconds_)
            total += s;
        return total;
    }

    OpCounters
    totalOps() const
    {
        OpCounters total;
        for (const auto &o : ops_)
            total += o;
        return total;
    }

    MrStats &mr() { return mr_; }
    const MrStats &mr() const { return mr_; }

    AdaptiveStats &adaptive() { return adaptive_; }
    const AdaptiveStats &adaptive() const { return adaptive_; }

    Profile &
    operator+=(const Profile &other)
    {
        for (int i = 0; i < kNumSteps; ++i) {
            seconds_[i] += other.seconds_[i];
            ops_[i] += other.ops_[i];
        }
        mr_ += other.mr_;
        adaptive_ += other.adaptive_;
        return *this;
    }

    /**
     * Export to the observability interchange format under
     * hierarchical dotted names: <prefix>.<STEP>.seconds,
     * <prefix>.<STEP>.ops.<class>, <prefix>.mr.<counter> — everything
     * a counter (profiles sum when workers merge). Profile itself
     * stays array-backed: it is per-worker hot-path state, updated
     * once per reference patch; the adapter boundary to the registry
     * is this snapshot.
     */
    obs::MetricsSnapshot snapshot(const std::string &prefix = "bm3d") const;

  private:
    std::array<double, kNumSteps> seconds_{};
    std::array<OpCounters, kNumSteps> ops_{};
    MrStats mr_;
    AdaptiveStats adaptive_;
};

/**
 * RAII wall-clock timer adding its lifetime to a profile step.
 *
 * Doubles as the six paper steps' trace instrumentation: under
 * IDEAL_TRACE + IDEAL_TRACE_STEPS=1 each timer also emits a "step"
 * category span named after the step (DCT1..DE2). The timers fire per
 * reference patch, so step spans multiply trace size by the
 * reference count — that is why the category is opt-in; when tracing
 * is off the span member costs one relaxed load.
 */
class ScopedTimer
{
  public:
    ScopedTimer(Profile &profile, Step step)
        : profile_(profile), step_(step),
          start_(std::chrono::steady_clock::now()), span_(toString(step))
    {
    }

    ~ScopedTimer()
    {
        auto end = std::chrono::steady_clock::now();
        profile_.addTime(
            step_, std::chrono::duration<double>(end - start_).count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Profile &profile_;
    Step step_;
    std::chrono::steady_clock::time_point start_;
    obs::StepSpan span_;
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_PROFILE_H_
