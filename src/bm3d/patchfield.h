#ifndef IDEAL_BM3D_PATCHFIELD_H_
#define IDEAL_BM3D_PATCHFIELD_H_

/**
 * @file
 * Precomputed per-position DCT patch field — the software analogue of
 * the DCT1 step ("computing the DCT transformation of all possible
 * patches") plus the hard-threshold applied before matching distances
 * in BM1 (paper Fig. 1b, Path A).
 */

#include <optional>
#include <vector>

#include "bm3d/profile.h"
#include "fixed/format.h"
#include "image/image.h"
#include "transforms/dct.h"

namespace ideal {
namespace bm3d {

/**
 * DCT coefficients of every patch position of a single plane.
 *
 * Position (x, y) is a patch top-left corner; valid positions are
 * 0 <= x <= width - patchSize (same for y). Two coefficient sets are
 * kept: the raw DCT (used by the denoising engine, Path C) and the
 * hard-thresholded DCT (used for matching distances).
 */
class DctPatchField
{
  public:
    /**
     * Compute the field.
     *
     * @param plane       single-channel image
     * @param dct         transform for the configured patch size
     * @param threshold   Tht; coefficients with |c| < Tht are zeroed in
     *                    the matching copy. 0 disables thresholding (the
     *                    matching copy then aliases the raw copy).
     * @param fixed_point when set, the DCT uses the fixed-point datapath
     * @param ops         optional operation counters to accumulate into
     */
    DctPatchField(const image::ImageF &plane, const transforms::Dct2D &dct,
                  float threshold,
                  const std::optional<fixed::PipelineFormats> &fixed_point,
                  OpCounters *ops);

    int positionsX() const { return posX_; }
    int positionsY() const { return posY_; }
    int patchSize() const { return patchSize_; }

    /** Raw DCT coefficients of the patch at top-left (x, y). */
    const float *
    patch(int x, int y) const
    {
        return raw_.data() + index(x, y);
    }

    /** Hard-thresholded coefficients used for matching. */
    const float *
    matchPatch(int x, int y) const
    {
        const auto &store = thresholded_.empty() ? raw_ : thresholded_;
        return store.data() + index(x, y);
    }

  private:
    size_t
    index(int x, int y) const
    {
        return (static_cast<size_t>(y) * posX_ + x) * coefs_;
    }

    int patchSize_;
    int coefs_;
    int posX_;
    int posY_;
    std::vector<float> raw_;
    std::vector<float> thresholded_;
};

/** Copy the patch at top-left (x, y) of @p plane into @p out (row-major). */
void extractPatch(const image::ImageF &plane, int x, int y, int patch_size,
                  float *out);

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_PATCHFIELD_H_
