#ifndef IDEAL_BM3D_PATCHFIELD_H_
#define IDEAL_BM3D_PATCHFIELD_H_

/**
 * @file
 * Precomputed per-position DCT patch fields — the software analogue of
 * the DCT1 step ("computing the DCT transformation of all possible
 * patches") plus the hard-threshold applied before matching distances
 * in BM1 (paper Fig. 1b, Path A), and the per-tile transform-once
 * cache that extends the same idea to the Wiener stage and the color
 * channels.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "bm3d/profile.h"
#include "fixed/format.h"
#include "fixed/int16plan.h"
#include "image/image.h"
#include "transforms/dct.h"

namespace ideal {
namespace runtime {
class BufferArena;
} // namespace runtime

namespace bm3d {

/**
 * DCT coefficients of every patch position of a single plane.
 *
 * Position (x, y) is a patch top-left corner; valid positions are
 * 0 <= x <= width - patchSize (same for y). Two coefficient sets are
 * kept in two layouts:
 *
 *  - the raw DCT, position-major (AoS: the 16 coefficients of one
 *    patch are contiguous), consumed patch-at-a-time by the denoising
 *    engine (Path C);
 *  - the hard-thresholded matching copy, coefficient-major (SoA: one
 *    posX x posY plane per coefficient), so the block matcher's
 *    8-candidate SSD batch loads one contiguous 8-float lane per
 *    coefficient instead of eight strided descriptors.
 */
class DctPatchField
{
  public:
    /**
     * Compute the field.
     *
     * @param plane       single-channel image
     * @param dct         transform for the configured patch size
     * @param threshold   Tht; coefficients with |c| < Tht are zeroed in
     *                    the matching copy. 0 disables thresholding (the
     *                    matching copy then equals the raw coefficients).
     * @param fixed_point when set, the DCT uses the fixed-point datapath
     * @param ops         optional operation counters to accumulate into
     */
    DctPatchField(const image::ImageF &plane, const transforms::Dct2D &dct,
                  float threshold,
                  const std::optional<fixed::PipelineFormats> &fixed_point,
                  OpCounters *ops);

    /** Empty field; prepare() + fillRows() or build() before use. */
    DctPatchField() = default;

    DctPatchField(const DctPatchField &) = delete;
    DctPatchField &operator=(const DctPatchField &) = delete;

    /** Releases the coefficient storage back to the arena, if any. */
    ~DctPatchField();

    /**
     * Size the field for a plane_width x plane_height plane (patch
     * size taken from @p dct) without computing coefficients. When
     * @p arena is given, the coefficient storage is drawn from it —
     * and returned to it on destruction or the next prepare() — so a
     * persistent field re-prepared every frame allocates only once.
     *
     * @p ring_rows selects the banded/ring storage mode (DESIGN §15):
     * when positive and smaller than the position-row count, only
     * ring_rows position rows are resident at once and row y lives in
     * slot y % ring_rows, so storage is O(posX * ring_rows * coefs)
     * instead of O(posX * posY * coefs). fillRows() then overwrites
     * the slot of row y - ring_rows; the caller (the band scheduler)
     * must only read rows within the trailing ring_rows-row window of
     * its fill cursor. 0 (the default) keeps every row resident.
     * Whole-image preparations report their footprint to the
     * `mem.peakFieldBytes` Max gauge, ring preparations to
     * `mem.peakBandBytes` — two gauges, so a process that runs both
     * schedules still records the banded working set.
     */
    void prepare(int plane_width, int plane_height,
                 const transforms::Dct2D &dct,
                 runtime::BufferArena *arena = nullptr,
                 int ring_rows = 0);

    /**
     * Compute the coefficients of position rows [y0, y1) of a prepared
     * field. Disjoint row bands are independent, so callers may fill
     * them from parallel tasks; the result is bitwise identical to any
     * other banding (each position's values depend only on the plane).
     * @return the number of patches transformed (for op accounting)
     */
    uint64_t fillRows(const image::ImageF &plane,
                      const transforms::Dct2D &dct, float threshold,
                      const std::optional<fixed::PipelineFormats> &fixed_point,
                      int y0, int y1);

    /** prepare() + fillRows() over every row: the ctor, reusable. */
    void build(const image::ImageF &plane, const transforms::Dct2D &dct,
               float threshold,
               const std::optional<fixed::PipelineFormats> &fixed_point,
               OpCounters *ops, runtime::BufferArena *arena = nullptr);

    /** Accumulate the op cost of @p patches forward DCTs + scatter. */
    static void countOps(uint64_t patches, int patch_size,
                         bool thresholded, OpCounters *ops);

    int positionsX() const { return posX_; }
    int positionsY() const { return posY_; }
    int patchSize() const { return patchSize_; }
    int coefs() const { return coefs_; }

    /** Resident position rows (== positionsY() unless ring mode). */
    int ringRows() const { return ringRows_; }

    /** True when prepared in banded/ring storage mode. */
    bool banded() const { return ringRows_ < posY_; }

    /**
     * Current coefficient-storage footprint in bytes (raw + matching
     * planes, float and int16), i.e. what a whole-image preparation
     * spends versus a ring preparation — the number behind the
     * mem.peakFieldBytes / mem.peakBandBytes gauges.
     */
    size_t footprintBytes() const;

    /** Raw DCT coefficients of the patch at top-left (x, y) (AoS). */
    const float *
    patch(int x, int y) const
    {
        return raw_.data() + index(x, y);
    }

    /**
     * The pp hard-thresholded coefficient planes used for matching:
     * matchPlanes()[k][matchOffset(x, y)] is coefficient k of the
     * patch at (x, y). All planes share one offset scheme, so a run of
     * adjacent candidates is contiguous in every plane.
     */
    const float *const *matchPlanes() const { return matchPlanes_.data(); }

    /** Offset of position (x, y) inside every matching plane. */
    size_t
    matchOffset(int x, int y) const
    {
        return static_cast<size_t>(rowSlot(y)) * posX_ + x;
    }

    /**
     * Gather the thresholded descriptor of (x, y) into @p out
     * (coefs() floats, AoS) — for batched matching references and for
     * parity tests against the plane layout.
     */
    void
    gatherMatchPatch(int x, int y, float *out) const
    {
        const size_t off = matchOffset(x, y);
        for (int k = 0; k < coefs_; ++k)
            out[k] = matchPlanes_[k][off];
    }

    /**
     * Size the quantized int16 matching planes (Config::precision ==
     * Int16). Call after prepare(); storage is plain vectors (the
     * arena is float-only) whose capacity persists across frames, so
     * steady-state re-preparation allocates nothing. Requires a 4x4
     * patch (the int16 DCT is the folded 4x4 kernel).
     */
    void prepareI16();

    /**
     * Quantized twin of fillRows() over position rows [y0, y1): pixel
     * rows are quantized to the plan's Q8.6 and transformed with the
     * int16 folded DCT + saturating hard threshold, scattered into
     * int16 SoA planes. Runs in addition to fillRows() (the float
     * raw_ coefficients still feed the denoising engine). Disjoint
     * row bands compose bitwise-identically, like fillRows().
     * @return the number of patches transformed
     */
    uint64_t fillRowsI16(const image::ImageF &plane,
                         const transforms::Dct2D &dct, float threshold,
                         int y0, int y1);

    /** True once prepareI16()/fillRowsI16() built the int16 planes. */
    bool hasInt16() const { return !matchPlanesI16_.empty(); }

    /** Int16 twin of matchPlanes(); same offset scheme. */
    const int16_t *const *
    matchPlanesI16() const
    {
        return matchPlanesI16_.data();
    }

    /**
     * Pair-interleaved int16 planes for the window-scan batch kernel
     * (simd ssdPairBatchI16): plane p holds coefficients (2p, 2p+1)
     * of position idx at indices (2 idx, 2 idx + 1). Built alongside
     * the plain planes by fillRowsI16().
     */
    const int16_t *const *
    matchPairPlanesI16() const
    {
        return matchPairPlanesI16_.data();
    }

    /** Int16 twin of gatherMatchPatch(). */
    void
    gatherMatchPatchI16(int x, int y, int16_t *out) const
    {
        const size_t off = matchOffset(x, y);
        for (int k = 0; k < coefs_; ++k)
            out[k] = matchPlanesI16_[k][off];
    }

    /** Q-format plan of the int16 planes. */
    const fixed::Int16DctPlan &int16Plan() const { return planI16_; }

  private:
    /**
     * Resident slot of position row @p y. Whole-image mode is the
     * identity; ring mode wraps modulo ringRows_. Rows within one
     * resident window keep their relative order, so x-runs stay
     * contiguous and the blocked SoA scatter is layout-identical.
     */
    int
    rowSlot(int y) const
    {
        return y < ringRows_ ? y : y % ringRows_;
    }

    size_t
    index(int x, int y) const
    {
        return (static_cast<size_t>(rowSlot(y)) * posX_ + x) * coefs_;
    }

    /// Report footprintBytes() to the mode's mem.peak* gauge and the
    /// resident-bytes ledger (plain-vector storage only; arena-backed
    /// buffers are charged by the arena itself).
    void publishFootprint();

    int patchSize_ = 0;
    int coefs_ = 0;
    int posX_ = 0;
    int posY_ = 0;
    int ringRows_ = 0;       ///< resident rows (== posY_ outside ring mode)
    size_t planeStride_ = 0; ///< floats per matching plane
    int64_t chargedBytes_ = 0; ///< plain-vector bytes in the obs ledger
    std::vector<float> raw_;
    std::vector<float> match_;               ///< SoA coefficient planes
    std::vector<const float *> matchPlanes_; ///< plane base pointers
    runtime::BufferArena *arena_ = nullptr;  ///< owns raw_/match_ storage

    // Int16 matching path (built on demand; plain vectors — the arena
    // only pools float buffers — reusing capacity across frames).
    fixed::Int16DctPlan planI16_;
    std::vector<int16_t> matchI16_; ///< int16 SoA coefficient planes
    std::vector<const int16_t *> matchPlanesI16_;
    std::vector<int16_t> matchPairsI16_; ///< pair-interleaved planes
    std::vector<const int16_t *> matchPairPlanesI16_;
};

/**
 * Tile-local raw-DCT coefficient cache (AoS), the stage-2 /
 * color-channel "transform once" path: a worker rebuilds it per tile
 * over the halo-extended position range its matches can reach, and
 * the denoising engine then copies cached coefficients instead of
 * re-running a forward DCT for every stack membership (each position
 * participates in up to (window/step)^2 stacks). The backing storage
 * is an arena — build() reuses the previous tile's capacity, so
 * steady-state tiles allocate nothing.
 */
class TileDctField
{
  public:
    TileDctField() = default;
    TileDctField(const TileDctField &) = delete;
    TileDctField &operator=(const TileDctField &) = delete;
    TileDctField(TileDctField &&other) noexcept;
    TileDctField &operator=(TileDctField &&other) noexcept;

    /** Releases the cache storage back to the arena, if any. */
    ~TileDctField();

    /**
     * (Re)build the cache for channel @p c of @p src over the
     * inclusive position range [x0, x1] x [y0, y1]. When @p arena is
     * given, storage is drawn from (and on destruction returned to)
     * it, so a streaming run recycles worker caches across frames.
     * @return the number of forward DCTs executed (for op accounting)
     */
    uint64_t build(const image::ImageF &src, int c,
                   const transforms::Dct2D &dct,
                   const std::optional<fixed::PipelineFormats> &fixed_point,
                   int x0, int y0, int x1, int y1,
                   runtime::BufferArena *arena = nullptr);

    /** True when (x, y) lies inside the built range. */
    bool
    covers(int x, int y) const
    {
        return x >= x0_ && x < x0_ + width_ && y >= y0_ &&
               y < y0_ + height_;
    }

    /** Cached raw DCT coefficients of the patch at (x, y) (AoS). */
    const float *
    patch(int x, int y) const
    {
        return store_.data() +
               (static_cast<size_t>(y - y0_) * width_ + (x - x0_)) *
                   coefs_;
    }

  private:
    int x0_ = 0;
    int y0_ = 0;
    int width_ = 0;
    int height_ = 0;
    int coefs_ = 0;
    std::vector<float> store_;
    runtime::BufferArena *arena_ = nullptr; ///< owns store_'s storage
};

/** Copy the patch at top-left (x, y) of @p plane into @p out (row-major). */
void extractPatch(const image::ImageF &plane, int x, int y, int patch_size,
                  float *out);

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_PATCHFIELD_H_
