#include "bm3d/video.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "bm3d/bm3d.h"
#include "bm3d/blockmatch.h"
#include "bm3d/denoise.h"
#include "bm3d/matchlist.h"
#include "bm3d/patchfield.h"
#include "parallel/pool.h"
#include "transforms/dct.h"
#include "transforms/haar.h"

namespace ideal {
namespace bm3d {

namespace {

/** A spatio-temporal match: patch position plus frame index. */
struct TMatch
{
    int x = 0;
    int y = 0;
    int t = 0;
    float distance = 0.0f;
};

/** Bounded sorted list of spatio-temporal matches. */
class TMatchList
{
  public:
    explicit TMatchList(int capacity) : capacity_(capacity) {}

    int size() const { return size_; }

    const TMatch &operator[](int i) const { return entries_[i]; }

    void
    insert(const TMatch &m)
    {
        if (size_ == capacity_ && m.distance >= entries_[size_ - 1].distance)
            return;
        int pos = size_ < capacity_ ? size_ : capacity_ - 1;
        while (pos > 0 && entries_[pos - 1].distance > m.distance) {
            entries_[pos] = entries_[pos - 1];
            --pos;
        }
        entries_[pos] = m;
        if (size_ < capacity_)
            ++size_;
    }

    int
    stackSize() const
    {
        int s = 1;
        while (2 * s <= size_)
            s *= 2;
        return size_ == 0 ? 0 : s;
    }

  private:
    int capacity_;
    int size_ = 0;
    TMatch entries_[MatchList::kCapacity];
};

int
log2OfPow2(int v)
{
    int l = 0;
    while ((1 << l) < v)
        ++l;
    return l;
}

} // namespace

VideoBm3d::VideoBm3d(VideoConfig config) : config_(std::move(config))
{
    config_.validate();
}

VideoResult
VideoBm3d::denoise(const std::vector<image::ImageF> &noisy) const
{
    if (noisy.empty())
        throw std::invalid_argument("VideoBm3d: empty sequence");
    for (const auto &f : noisy)
        if (!f.sameShape(noisy[0]))
            throw std::invalid_argument("VideoBm3d: frame shape mismatch");

    const Bm3dConfig &cfg = config_.frame;
    const int frames = static_cast<int>(noisy.size());
    const int p = cfg.patchSize;
    const int pp = p * p;
    const int channels = noisy[0].channels();
    const float tht = cfg.lambda2d * cfg.sigma;
    const float thr3d = cfg.lambda3d * cfg.sigma;

    VideoResult result;
    transforms::Dct2D dct(p);
    std::vector<transforms::Haar1D> haars;
    for (int s = 2; s <= cfg.maxMatches; s *= 2)
        haars.emplace_back(s);

    parallel::ThreadPool &pool = parallel::ThreadPool::global();
    const int threads =
        std::min(parallel::clampThreads(cfg.numThreads), frames);

    // Per-frame channel-0 DCT fields (the DCT1 step). Tasks are
    // frame x row-band, not one per frame: a short clip (or a single
    // frame) no longer caps the prepass at `frames` executors, and
    // bands give the work stealer something to balance. Disjoint
    // bands of a prepared field are independent, so any banding is
    // bitwise identical to the single-task build.
    std::vector<std::unique_ptr<DctPatchField>> fields(frames);
    {
        const int prepass_threads = parallel::clampThreads(cfg.numThreads);
        std::vector<image::ImageF> planes;
        planes.reserve(frames);
        {
            ScopedTimer setup_timer(result.profile, Step::Dct1);
            for (int t = 0; t < frames; ++t) {
                planes.push_back(noisy[t].extractPlane(0));
                fields[t] = std::make_unique<DctPatchField>();
                fields[t]->prepare(planes[t].width(), planes[t].height(),
                                   dct);
            }
        }
        const int pos_y = fields[0]->positionsY();
        // ~4 bands per executor across the whole clip, at least 16
        // position rows each so tiny bands don't drown in scheduling.
        const int band_rows = std::max(
            16,
            pos_y * frames / (std::max(1, prepass_threads) * 4) + 1);
        const int bands_per_frame = (pos_y + band_rows - 1) / band_rows;
        const int total_bands = frames * bands_per_frame;
        std::vector<Profile> band_profiles(total_bands);
        pool.run(total_bands, std::min(prepass_threads, total_bands),
                 [&](int b, int) {
                     const int t = b / bands_per_frame;
                     const int band = b % bands_per_frame;
                     const int y0 = band * band_rows;
                     const int y1 = std::min(pos_y, y0 + band_rows);
                     ScopedTimer timer(band_profiles[b], Step::Dct1);
                     OpCounters ops;
                     const uint64_t patches = fields[t]->fillRows(
                         planes[t], dct, tht, cfg.fixedPoint, y0, y1);
                     DctPatchField::countOps(patches, p, tht > 0.0f,
                                             &ops);
                     band_profiles[b].addOps(Step::Dct1, ops);
                 });
        for (const Profile &bp : band_profiles)
            result.profile += bp;
    }

    const auto xs =
        makeRefPositions(fields[0]->positionsX() - 1, cfg.refStride);
    const auto ys =
        makeRefPositions(fields[0]->positionsY() - 1, cfg.refStride);
    const int pred_half = (config_.predictiveWindow - 1) / 2;
    const float norm = 1.0f / static_cast<float>(pp);

    /**
     * Per-frame task state. Each reference frame accumulates restored
     * patches into its own aggregators for the frames its stacks can
     * touch ([t - radius, t + radius]); the partial sums are merged in
     * frame order afterwards so the output is bit-identical for any
     * thread count, exactly like the image path's tile merge.
     */
    struct FrameTask
    {
        Profile profile;
        MrStats mr;
        uint64_t stackEntries = 0;
        uint64_t temporalEntries = 0;
        int aggLo = 0;
        std::vector<Aggregator> aggs;
    };
    std::vector<FrameTask> tasks(frames);

    pool.run(frames, threads, [&](int t, int) {
        FrameTask &task = tasks[t];
        task.aggLo = std::max(0, t - config_.temporalRadius);
        const int agg_hi = std::min(frames - 1, t + config_.temporalRadius);
        task.aggs.reserve(agg_hi - task.aggLo + 1);
        for (int f = task.aggLo; f <= agg_hi; ++f)
            task.aggs.emplace_back(noisy[0].width(), noisy[0].height(),
                                   channels);
        MrStats mr;
        DctMatchDomain domain(*fields[t]);
        BlockMatcher<DctMatchDomain> matcher(
            domain, cfg.searchWindow1, cfg.searchStride, cfg.refStride,
            cfg.tauMatch1, cfg.maxMatches, cfg.boundedDistance);
        const float reuse_bound =
            static_cast<float>(cfg.mr.k) * cfg.tauMatch1;

        for (int y : ys) {
            MatchList spatial;
            MatchList previous;
            bool have_previous = false;
            int prev_x = 0;
            for (int x : xs) {
                // --- spatial matching in frame t (with MR) ---
                bool hit = false;
                {
                    ScopedTimer timer(task.profile, Step::Bm1);
                    if (cfg.mr.enabled && have_previous) {
                        float d =
                            matcher.referenceDistance(x, y, prev_x, y);
                        ++mr.bm1Candidates;
                        if (d < reuse_bound) {
                            hit = true;
                            mr.bm1Candidates += matcher.searchReuse(
                                x, y, previous, spatial);
                        } else {
                            mr.bm1Candidates +=
                                matcher.search(x, y, spatial);
                        }
                    } else {
                        mr.bm1Candidates += matcher.search(x, y, spatial);
                    }
                }
                ++mr.bm1Refs;
                mr.bm1Hits += hit ? 1 : 0;
                previous = spatial;
                have_previous = true;
                prev_x = x;

                // --- predictive temporal matching ---
                TMatchList stack(cfg.maxMatches);
                for (const Match &m : spatial)
                    stack.insert(TMatch{m.x, m.y, t, m.distance});

                {
                    ScopedTimer timer(task.profile, Step::Bm2);
                    float ref[64];
                    fields[t]->gatherMatchPatch(x, y, ref);
                    // Track the best position from frame to frame.
                    int track_x = x, track_y = y;
                    for (int dt = 1; dt <= config_.temporalRadius; ++dt) {
                        for (int dir : {-1, +1}) {
                            int tn = t + dir * dt;
                            if (tn < 0 || tn >= frames)
                                continue;
                            const DctPatchField &f = *fields[tn];
                            int x_lo = std::max(0, track_x - pred_half);
                            int x_hi = std::min(f.positionsX() - 1,
                                                track_x + pred_half);
                            int y_lo = std::max(0, track_y - pred_half);
                            int y_hi = std::min(f.positionsY() - 1,
                                                track_y + pred_half);
                            float best = 1e30f;
                            int bx = track_x, by = track_y;
                            float dist[8];
                            for (int yy = y_lo; yy <= y_hi; ++yy) {
                                for (int xx = x_lo; xx <= x_hi;
                                     xx += 8) {
                                    const int cnt =
                                        std::min(8, x_hi - xx + 1);
                                    transforms::squaredDistanceSoaBatch(
                                        ref, f.matchPlanes(),
                                        f.matchOffset(xx, yy), pp, cnt,
                                        dist);
                                    mr.bm2Candidates += cnt;
                                    for (int i = 0; i < cnt; ++i) {
                                        const float d = dist[i] * norm;
                                        if (d < cfg.tauMatch1)
                                            stack.insert(TMatch{
                                                xx + i, yy, tn, d});
                                        if (d < best) {
                                            best = d;
                                            bx = xx + i;
                                            by = yy;
                                        }
                                    }
                                }
                            }
                            if (dir > 0) {
                                track_x = bx;
                                track_y = by;
                            }
                        }
                    }
                }

                // --- collaborative filtering of the 3-D stack ---
                const int s = stack.stackSize();
                if (s == 0)
                    continue;
                ScopedTimer timer(task.profile, Step::De1);
                const transforms::Haar1D *haar =
                    s >= 2 ? &haars[log2OfPow2(s) - 1] : nullptr;

                float coefs[MatchList::kCapacity][64];
                float pixels[64];
                for (int c = 0; c < channels; ++c) {
                    // Channel 0 reuses the per-frame DCT fields
                    // (Path C); other channels transform on the fly.
                    for (int i = 0; i < s; ++i) {
                        const TMatch &m = stack[i];
                        if (c == 0) {
                            const float *src =
                                fields[m.t]->patch(m.x, m.y);
                            std::copy(src, src + pp, coefs[i]);
                            continue;
                        }
                        const float *base = noisy[m.t].plane(c);
                        const int w = noisy[m.t].width();
                        for (int r = 0; r < p; ++r)
                            for (int cc = 0; cc < p; ++cc)
                                pixels[r * p + cc] =
                                    base[static_cast<size_t>(m.y + r) * w +
                                         m.x + cc];
                        if (cfg.fixedPoint)
                            dct.forwardFixed(pixels, coefs[i],
                                             *cfg.fixedPoint);
                        else
                            dct.forward(pixels, coefs[i]);
                    }

                    int non_zero = 0;
                    for (int pos = 0; pos < pp; ++pos) {
                        float zvec[MatchList::kCapacity];
                        float tvec[MatchList::kCapacity];
                        for (int i = 0; i < s; ++i)
                            zvec[i] = coefs[i][pos];
                        if (haar)
                            haar->forward(zvec, tvec);
                        else
                            tvec[0] = zvec[0];
                        for (int i = 0; i < s; ++i) {
                            if (std::abs(tvec[i]) < thr3d)
                                tvec[i] = 0.0f;
                            else
                                ++non_zero;
                        }
                        if (haar)
                            haar->inverse(tvec, zvec);
                        else
                            zvec[0] = tvec[0];
                        for (int i = 0; i < s; ++i)
                            coefs[i][pos] = zvec[i];
                    }

                    float weight =
                        1.0f / static_cast<float>(std::max(non_zero, 1));
                    for (int i = 0; i < s; ++i) {
                        const TMatch &m = stack[i];
                        if (cfg.fixedPoint)
                            dct.inverseFixed(coefs[i], pixels,
                                             *cfg.fixedPoint);
                        else
                            dct.inverse(coefs[i], pixels);
                        task.aggs[m.t - task.aggLo].addPatch(
                            m.x, m.y, c, p, pixels, weight);
                    }
                }
                for (int i = 0; i < s; ++i) {
                    ++task.stackEntries;
                    if (stack[i].t != t)
                        ++task.temporalEntries;
                }
            }
        }
        task.mr = mr;
    });

    // Deterministic reduction: merge every task's partial aggregates,
    // profile, and counters in frame order.
    std::vector<Aggregator> agg;
    agg.reserve(frames);
    for (int t = 0; t < frames; ++t)
        agg.emplace_back(noisy[0].width(), noisy[0].height(), channels);
    uint64_t stack_entries = 0;
    uint64_t temporal_entries = 0;
    MrStats mr;
    for (int t = 0; t < frames; ++t) {
        FrameTask &task = tasks[t];
        result.profile += task.profile;
        mr += task.mr;
        stack_entries += task.stackEntries;
        temporal_entries += task.temporalEntries;
        for (size_t i = 0; i < task.aggs.size(); ++i)
            agg[task.aggLo + static_cast<int>(i)].merge(task.aggs[i]);
    }

    result.profile.mr() += mr;
    result.frames.reserve(frames);
    for (int t = 0; t < frames; ++t)
        result.frames.push_back(agg[t].finalize(noisy[t]));
    result.temporalShare =
        stack_entries
            ? static_cast<double>(temporal_entries) / stack_entries
            : 0.0;
    return result;
}

} // namespace bm3d
} // namespace ideal
