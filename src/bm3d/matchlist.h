#ifndef IDEAL_BM3D_MATCHLIST_H_
#define IDEAL_BM3D_MATCHLIST_H_

/**
 * @file
 * The bounded, distance-sorted list of best matches kept per reference
 * patch — the software analogue of the BM engine's priority queue MQ
 * (paper Fig. 6). Capacity is the 16-best-matches limit.
 */

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>

namespace ideal {
namespace bm3d {

/** One candidate match: patch top-left coordinates and distance. */
struct Match
{
    int32_t x = 0;
    int32_t y = 0;
    float distance = 0.0f;

    bool operator==(const Match &other) const = default;
};

/**
 * Fixed-capacity insertion-sorted match list (ascending distance).
 * Insertion is O(capacity), mirroring the hardware shift-register
 * priority queue.
 */
class MatchList
{
  public:
    static constexpr int kCapacity = 16;

    explicit MatchList(int capacity = kCapacity)
        // Clamping (rather than just asserting) keeps the compiler's
        // value-range analysis aware that capacity_ is in [1, 16], so
        // entries_[size_ - 1] in inlined callers is provably in
        // bounds.
        : capacity_(capacity < 1          ? 1
                    : capacity > kCapacity ? kCapacity
                                           : capacity)
    {
        assert(capacity >= 1 && capacity <= kCapacity);
    }

    int capacity() const { return capacity_; }
    int size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const Match &operator[](int i) const
    {
        assert(i >= 0 && i < size_);
        return entries_[i];
    }

    /** Largest (worst) distance currently held, or +inf when not full. */
    float
    worstDistance() const
    {
        if (size_ < capacity_)
            return std::numeric_limits<float>::infinity();
        return entries_[size_ - 1].distance;
    }

    /**
     * Insert a candidate, keeping the list sorted and bounded. Returns
     * true if the candidate was kept.
     */
    bool
    insert(const Match &candidate)
    {
        if (size_ == capacity_ &&
            candidate.distance >= entries_[size_ - 1].distance) {
            return false;
        }
        int pos = size_ < capacity_ ? size_ : capacity_ - 1;
        while (pos > 0 && entries_[pos - 1].distance > candidate.distance) {
            entries_[pos] = entries_[pos - 1];
            --pos;
        }
        entries_[pos] = candidate;
        if (size_ < capacity_)
            ++size_;
        return true;
    }

    void clear() { size_ = 0; }

    /**
     * Largest power of two <= size(): the stack depth actually used by
     * the 3-D transform (the Haar length must be a power of two).
     */
    int
    stackSize() const
    {
        int s = 1;
        while (2 * s <= size_)
            s *= 2;
        return size_ == 0 ? 0 : s;
    }

    const Match *begin() const { return entries_.data(); }
    const Match *end() const { return entries_.data() + size_; }

  private:
    int capacity_;
    int size_ = 0;
    std::array<Match, kCapacity> entries_{};
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_MATCHLIST_H_
