#ifndef IDEAL_BM3D_BM3D_H_
#define IDEAL_BM3D_BM3D_H_

/**
 * @file
 * Top-level BM3D denoiser (paper Sec. 2): the two-stage pipeline of
 * Hard-Thresholding (BM1 + DE1) followed by Wiener Filtering
 * (BM2 + DE2), with optional Matches Reuse, fixed-point datapath, and
 * joint sharpening. This is both the reference software implementation
 * (the "CPU" baselines of Sec. 3) and the functional model the
 * accelerator simulator validates against.
 */

#include "bm3d/config.h"
#include "bm3d/profile.h"
#include "image/image.h"

namespace ideal {
namespace runtime {
class BufferArena;
} // namespace runtime

namespace bm3d {

class DctPatchField;
struct TemporalSeed;

/**
 * Optional plumbing of a runStage() call, used by the streaming
 * runtime (src/runtime). All members default to "off"; the plain
 * runStage overload forwards an empty StageOptions, and every
 * combination produces bitwise-identical output except an active
 * `seed` (which changes which candidates BM1 scores).
 */
struct StageOptions
{
    /**
     * Prebuilt channel-0 DCT field for the hard-threshold stage (the
     * streaming prepass computes it on a different thread, overlapping
     * the previous frame's stage-2/aggregation). When set, runStage
     * skips its own DCT1 pass; the caller keeps the field alive and
     * accounts its Dct1 time/ops.
     */
    const DctPatchField *field = nullptr;

    /// Recycle the large per-call buffers (aggregator planes, tile
    /// caches, output image, Wiener matching plane) through this arena.
    runtime::BufferArena *arena = nullptr;

    /// Temporal match seeding I/O (stage 1 only; see bm3d/seeding.h).
    TemporalSeed *seed = nullptr;
};

/** Output of a denoising run. */
struct Bm3dResult
{
    image::ImageF output; ///< final (Wiener-stage) estimate
    image::ImageF basic;  ///< intermediate hard-thresholding estimate
    Profile profile;      ///< per-step time/op accounting + MR stats
};

/**
 * BM3D denoiser. Construct once per configuration; denoise() is
 * reentrant and const (thread-safe for concurrent calls on different
 * images).
 */
class Bm3d
{
  public:
    /** @throws std::invalid_argument when the config is inconsistent */
    explicit Bm3d(Bm3dConfig config);

    const Bm3dConfig &config() const { return config_; }

    /**
     * Denoise @p noisy (1 or 3 channels, samples in [0, 255]).
     * Block matching uses channel 0, as in the paper.
     */
    Bm3dResult denoise(const image::ImageF &noisy) const;

    /**
     * Run a single stage. For Stage::Wiener, @p basic must be the
     * stage-1 estimate. Exposed for tests and for the accelerator
     * simulator's functional cross-checks.
     */
    image::ImageF runStage(Stage stage, const image::ImageF &noisy,
                           const image::ImageF *basic,
                           Profile &profile) const;

    /** runStage with streaming-runtime plumbing (see StageOptions). */
    image::ImageF runStage(Stage stage, const image::ImageF &noisy,
                           const image::ImageF *basic, Profile &profile,
                           const StageOptions &opts) const;

  private:
    Bm3dConfig config_;
};

/**
 * Reference-patch top-left positions along one axis: 0, Ps, 2*Ps, ...
 * with the final position clamped so the last patch touches the image
 * edge (every pixel is covered by at least one reference patch).
 */
std::vector<int> makeRefPositions(int last_valid, int stride);

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_BM3D_H_
