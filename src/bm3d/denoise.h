#ifndef IDEAL_BM3D_DENOISE_H_
#define IDEAL_BM3D_DENOISE_H_

/**
 * @file
 * The denoising step DE (paper Fig. 1c): stack the 16 best-matching
 * patches in the DCT domain, Haar-transform along the z dimension,
 * shrink the spectrum (hard threshold in DE1, empirical Wiener filter
 * in DE2, optional alpha-rooting for sharpening), inverse transform,
 * weight each restored patch by 1/M and accumulate into the output.
 */

#include <array>
#include <optional>
#include <vector>

#include "bm3d/config.h"
#include "bm3d/matchlist.h"
#include "bm3d/patchfield.h"
#include "bm3d/profile.h"
#include "image/image.h"
#include "transforms/dct.h"
#include "transforms/haar.h"

namespace ideal {
namespace runtime {
class BufferArena;
} // namespace runtime

namespace bm3d {

/**
 * Weighted-aggregation accumulators: per channel, a numerator image of
 * weighted pixel sums and a denominator image of weights. finalize()
 * produces the estimate, falling back to @p fallback where no patch
 * contributed (cannot happen for full-coverage strides, but guards
 * degenerate configurations).
 *
 * An aggregator may cover a sub-region of the image (the tiled
 * parallel runner gives each tile one sized to the tile's contribution
 * footprint). Patch coordinates are always full-image coordinates;
 * region aggregators are merged into the full-image one in tile order,
 * which is what makes multi-threaded aggregation deterministic.
 *
 * When constructed with a BufferArena, the accumulator planes are
 * drawn from (and on destruction returned to) the arena, so streamed
 * frames recycle them; the planes are zero-filled either way and the
 * arithmetic is unchanged, keeping output bitwise identical.
 */
class Aggregator
{
  public:
    /** Full-image accumulator with origin (0, 0). */
    Aggregator(int width, int height, int channels,
               runtime::BufferArena *arena = nullptr);

    /** Sub-region accumulator with origin (x0, y0) in image coords. */
    Aggregator(int x0, int y0, int width, int height, int channels,
               runtime::BufferArena *arena = nullptr);

    Aggregator(const Aggregator &) = delete;
    Aggregator &operator=(const Aggregator &) = delete;
    Aggregator(Aggregator &&other) noexcept;
    Aggregator &operator=(Aggregator &&other) noexcept;

    /** Releases the accumulator planes back to the arena, if any. */
    ~Aggregator();

    int originX() const { return x0_; }
    int originY() const { return y0_; }
    int width() const { return num_.width(); }
    int height() const { return num_.height(); }

    /** Accumulate a restored patch with weight @p w. The patch must
        lie fully inside this aggregator's region. */
    void addPatch(int x, int y, int c, int patch_size, const float *pixels,
                  float w);

    /**
     * Produce the estimate image (full-image aggregators only). With
     * @p out_arena, the output image's storage is drawn from it (the
     * caller recycles it via Image::takeStorage or
     * StreamDenoiser::recycle).
     */
    image::ImageF finalize(const image::ImageF &fallback,
                           runtime::BufferArena *out_arena = nullptr) const;

    /**
     * Merge another aggregator whose region is contained in this one
     * (same-shape full merges and tile-into-image merges alike).
     */
    void merge(const Aggregator &other);

  private:
    int x0_ = 0;
    int y0_ = 0;
    image::ImageF num_;
    image::ImageF den_;
    runtime::BufferArena *arena_ = nullptr; ///< owns the plane storage
};

/**
 * Denoising engine for one stage. Processes one 3-D stack at a time;
 * the caller supplies the match list produced by block matching.
 */
class DenoiseEngine
{
  public:
    /**
     * @param config   algorithm configuration
     * @param stage    which stage's shrinkage to apply
     * @param noisy    the noisy input image (all channels)
     * @param basic    stage-1 estimate; required for the Wiener stage
     * @param dctField stage-1 channel-0 DCT field (Path C); may be
     *                 null for the Wiener stage
     * @param profile  optional profile for DCT2/DE timing + op counts
     * @param arena    optional buffer arena the transform-once tile
     *                 caches recycle their storage through
     */
    DenoiseEngine(const Bm3dConfig &config, Stage stage,
                  const image::ImageF &noisy, const image::ImageF *basic,
                  const DctPatchField *dctField, Profile *profile,
                  runtime::BufferArena *arena = nullptr);

    /**
     * Denoise the stack described by @p matches and accumulate the
     * restored patches into @p agg.
     */
    void processStack(const MatchList &matches, Aggregator &agg);

    /**
     * Transform-once: (re)build the per-tile DCT caches over the
     * inclusive patch-position range [x0, x1] x [y0, y1] — the tile
     * plus the matching halo its stacks can reach. The Wiener stage
     * caches every channel of both the noisy and the basic image
     * (charged to DCT2); stage 1 caches the color channels of the
     * noisy image (channel 0 stays on the global Path-C field).
     * gatherStack then copies cached coefficients instead of running
     * a forward DCT per stack membership. Positions outside the built
     * range fall back to on-the-fly transforms, so correctness never
     * depends on the halo; output is bitwise identical with the
     * caches disabled (config.transformOnce = false), which clears
     * them. The caches are worker-local arenas: call once per tile,
     * steady-state rebuilds allocate nothing.
     */
    void prepareTile(int x0, int y0, int x1, int y1);

  private:
    static constexpr int kMaxStack = MatchList::kCapacity;
    static constexpr int kMaxCoefs = 64; // up to 8x8 patches

    /**
     * Gather the DCT-domain stack of channel @p c from image @p src,
     * resolving each member from the global Path-C field (when
     * @p reuse_field), then the tile cache @p tile (when it covers the
     * position), then an on-the-fly forward DCT.
     * @return the number of forward DCTs actually executed
     */
    uint64_t gatherStack(const image::ImageF &src, const MatchList &matches,
                         int stack_size, int c, bool reuse_field,
                         const TileDctField *tile,
                         float coefs[][kMaxCoefs]);

    /** Shrink one z-vector in place; returns per-vector stats. */
    struct ShrinkStats
    {
        int nonZero = 0;
        double sumWeightSq = 0.0;
    };
    ShrinkStats shrinkVector(float *vec, const float *wiener_ref,
                             int stack_size);

    const Bm3dConfig &config_;
    Stage stage_;
    const image::ImageF &noisy_;
    const image::ImageF *basic_;
    const DctPatchField *dctField_;
    Profile *profile_;
    runtime::BufferArena *arena_;

    transforms::Dct2D dct_;
    std::vector<transforms::Haar1D> haars_; ///< sizes 2, 4, 8, 16
    float threshold3d_;

    /// Transform-once tile caches, one per channel (unbuilt entries
    /// cover no positions and are simply skipped).
    std::vector<TileDctField> noisyTiles_;
    std::vector<TileDctField> basicTiles_;
    bool tilesValid_ = false;
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_DENOISE_H_
