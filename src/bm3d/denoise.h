#ifndef IDEAL_BM3D_DENOISE_H_
#define IDEAL_BM3D_DENOISE_H_

/**
 * @file
 * The denoising step DE (paper Fig. 1c): stack the 16 best-matching
 * patches in the DCT domain, Haar-transform along the z dimension,
 * shrink the spectrum (hard threshold in DE1, empirical Wiener filter
 * in DE2, optional alpha-rooting for sharpening), inverse transform,
 * weight each restored patch by 1/M and accumulate into the output.
 */

#include <array>
#include <optional>
#include <vector>

#include "bm3d/config.h"
#include "bm3d/matchlist.h"
#include "bm3d/patchfield.h"
#include "bm3d/profile.h"
#include "image/image.h"
#include "transforms/dct.h"
#include "transforms/haar.h"

namespace ideal {
namespace runtime {
class BufferArena;
} // namespace runtime

namespace bm3d {

/**
 * Weighted-aggregation accumulators: per channel, a numerator image of
 * weighted pixel sums and a denominator image of weights. finalize()
 * produces the estimate, falling back to @p fallback where no patch
 * contributed (cannot happen for full-coverage strides, but guards
 * degenerate configurations).
 *
 * An aggregator may cover a sub-region of the image (the tiled
 * parallel runner gives each tile one sized to the tile's contribution
 * footprint). Patch coordinates are always full-image coordinates;
 * region aggregators are merged into the full-image one in tile order,
 * which is what makes multi-threaded aggregation deterministic.
 *
 * When constructed with a BufferArena, the accumulator planes are
 * drawn from (and on destruction returned to) the arena, so streamed
 * frames recycle them; the planes are zero-filled either way and the
 * arithmetic is unchanged, keeping output bitwise identical.
 */
class Aggregator
{
  public:
    /** Full-image accumulator with origin (0, 0). */
    Aggregator(int width, int height, int channels,
               runtime::BufferArena *arena = nullptr);

    /** Sub-region accumulator with origin (x0, y0) in image coords. */
    Aggregator(int x0, int y0, int width, int height, int channels,
               runtime::BufferArena *arena = nullptr);

    Aggregator(const Aggregator &) = delete;
    Aggregator &operator=(const Aggregator &) = delete;
    Aggregator(Aggregator &&other) noexcept;
    Aggregator &operator=(Aggregator &&other) noexcept;

    /** Releases the accumulator planes back to the arena, if any. */
    ~Aggregator();

    int originX() const { return x0_; }
    int originY() const { return y0_; }
    int width() const { return num_.width(); }
    int height() const { return num_.height(); }

    /** Accumulate a restored patch with weight @p w. The patch must
        lie fully inside this aggregator's region. */
    void addPatch(int x, int y, int c, int patch_size, const float *pixels,
                  float w);

    /**
     * Fused group aggregation (DESIGN §12): inverse-DCT and accumulate
     * @p stack 4x4 patches whose shrunk coefficients sit contiguously
     * in @p coefs (16 floats per patch), top-left corners at
     * (@p xs[i], @p ys[i]) in image coordinates, all with weight @p w.
     * Patches are added in ascending i with the same per-element
     * arithmetic as inverse-DCT + addPatch, so the result is bitwise
     * identical to the discrete sequence. 4x4 patches only;
     * @p inv_even / @p inv_odd are Dct2D::invEvenHalf()/invOddHalf().
     */
    void addGroup(const int *xs, const int *ys, int c, int stack,
                  const float *coefs, float w, const float *inv_even,
                  const float *inv_odd);

    /**
     * Produce the estimate image (full-image aggregators only). With
     * @p out_arena, the output image's storage is drawn from it (the
     * caller recycles it via Image::takeStorage or
     * StreamDenoiser::recycle).
     */
    image::ImageF finalize(const image::ImageF &fallback,
                           runtime::BufferArena *out_arena = nullptr) const;

    /**
     * Finalize pixel rows [y0, y1) of every channel into the
     * preallocated same-shape image @p out (full-image aggregators
     * only). Each sample computes the exact finalize() expression —
     * num/den with @p fallback where no patch contributed — and
     * samples are independent, so finalizing an image in row bands
     * (the band pipeline normalizes a band as soon as its halo is
     * complete, DESIGN §15) is bitwise identical to one finalize()
     * over the whole image.
     */
    void finalizeRowsInto(int y0, int y1, const image::ImageF &fallback,
                          image::ImageF &out) const;

    /**
     * Merge another aggregator whose region is contained in this one
     * (same-shape full merges and tile-into-image merges alike).
     */
    void merge(const Aggregator &other);

  private:
    int x0_ = 0;
    int y0_ = 0;
    image::ImageF num_;
    image::ImageF den_;
    runtime::BufferArena *arena_ = nullptr; ///< owns the plane storage
};

/**
 * Denoising engine for one stage. Processes one 3-D stack at a time;
 * the caller supplies the match list produced by block matching.
 */
class DenoiseEngine
{
  public:
    /**
     * @param config   algorithm configuration
     * @param stage    which stage's shrinkage to apply
     * @param noisy    the noisy input image (all channels)
     * @param basic    stage-1 estimate; required for the Wiener stage
     * @param dctField stage-1 channel-0 DCT field (Path C); may be
     *                 null for the Wiener stage
     * @param profile  optional profile for DCT2/DE timing + op counts
     * @param arena    optional buffer arena the transform-once tile
     *                 caches recycle their storage through
     */
    DenoiseEngine(const Bm3dConfig &config, Stage stage,
                  const image::ImageF &noisy, const image::ImageF *basic,
                  const DctPatchField *dctField, Profile *profile,
                  runtime::BufferArena *arena = nullptr);

    DenoiseEngine(const DenoiseEngine &) = delete;
    DenoiseEngine &operator=(const DenoiseEngine &) = delete;

    /** Releases the fused group tile back to the arena, if any. */
    ~DenoiseEngine();

    /**
     * Denoise the stack described by @p matches and accumulate the
     * restored patches into @p agg.
     */
    void processStack(const MatchList &matches, Aggregator &agg);

    /**
     * Group-major fused datapath traffic (DESIGN §12), accumulated
     * across processStack calls. The stage runner flushes these into
     * obs::MetricsRegistry as the bm3d.group.* counters; totals are
     * thread-count invariant.
     */
    struct GroupStats
    {
        uint64_t fusedStacks = 0;    ///< stacks through the fused path
        uint64_t fusedPatches = 0;   ///< patch-channel aggregations
        uint64_t fusedStacksI16 = 0; ///< subset shrunk in int16
        uint64_t legacyStacks = 0;   ///< stacks through the discrete path
    };
    const GroupStats &groupStats() const { return groupStats_; }

    /**
     * Transform-once: (re)build the per-tile DCT caches over the
     * inclusive patch-position range [x0, x1] x [y0, y1] — the tile
     * plus the matching halo its stacks can reach. The Wiener stage
     * caches every channel of both the noisy and the basic image
     * (charged to DCT2); stage 1 caches the color channels of the
     * noisy image (channel 0 stays on the global Path-C field).
     * gatherStack then copies cached coefficients instead of running
     * a forward DCT per stack membership. Positions outside the built
     * range fall back to on-the-fly transforms, so correctness never
     * depends on the halo; output is bitwise identical with the
     * caches disabled (config.transformOnce = false), which clears
     * them. The caches are worker-local arenas: call once per tile,
     * steady-state rebuilds allocate nothing.
     */
    void prepareTile(int x0, int y0, int x1, int y1);

  private:
    static constexpr int kMaxStack = MatchList::kCapacity;
    static constexpr int kMaxCoefs = 64; // up to 8x8 patches

    /**
     * Gather the DCT-domain stack of channel @p c from image @p src,
     * resolving each member from the global Path-C field (when
     * @p reuse_field), then the tile cache @p tile (when it covers the
     * position), then an on-the-fly forward DCT. Member i's
     * coefficients are written at @p coefs + i * @p stride (the legacy
     * path passes kMaxCoefs, the fused path its packed tile width pp).
     * @return the number of forward DCTs actually executed
     */
    uint64_t gatherStack(const image::ImageF &src, const MatchList &matches,
                         int stack_size, int c, bool reuse_field,
                         const TileDctField *tile, float *coefs,
                         int stride);

    /**
     * Group-major fused datapath (DESIGN §12): gather the matched
     * patches' DCT coefficients into the contiguous group tile, run
     * Haar-across-patches + shrinkage + inverse Haar as one fused
     * kernel call, and inverse-DCT + aggregate straight out of the
     * tile. Float output is bitwise identical to the discrete path;
     * under Precision::Int16, DE1's Haar+shrink runs on quantized
     * Q11.1 raws instead (tolerance-gated, still bitwise deterministic
     * across SIMD levels and thread counts).
     */
    void processStackFused(const MatchList &matches, Aggregator &agg);

    /** Op accounting shared by the fused and discrete paths — the
        charges are formula-based and identical by construction, which
        is what keeps bench_diff --ops-tolerance 0 meaningful across
        the fusedDenoise knob. */
    void chargeStackOps(Step de_step, uint64_t forward_dcts,
                        int stack_size);

    /** Shrink one z-vector in place; returns per-vector stats. */
    struct ShrinkStats
    {
        int nonZero = 0;
        double sumWeightSq = 0.0;
    };
    ShrinkStats shrinkVector(float *vec, const float *wiener_ref,
                             int stack_size);

    const Bm3dConfig &config_;
    Stage stage_;
    const image::ImageF &noisy_;
    const image::ImageF *basic_;
    const DctPatchField *dctField_;
    Profile *profile_;
    runtime::BufferArena *arena_;

    transforms::Dct2D dct_;
    std::vector<transforms::Haar1D> haars_; ///< sizes 2, 4, 8, 16
    float threshold3d_;

    /// Transform-once tile caches, one per channel (unbuilt entries
    /// cover no positions and are simply skipped).
    std::vector<TileDctField> noisyTiles_;
    std::vector<TileDctField> basicTiles_;
    bool tilesValid_ = false;

    /// Fused datapath state. The group tile holds three kMaxStack x 16
    /// slices (noisy coefficients, Wiener reference, Wiener weights),
    /// arena-recycled so streamed frames stay malloc-free.
    bool fusedEligible_ = false;
    std::vector<float> groupTile_;
    float *gNoisy_ = nullptr;
    float *gBasic_ = nullptr;
    float *wTile_ = nullptr;
    std::array<int16_t, kMaxStack * 16> gi16_{}; ///< int16 DE1 tile
    int16_t thresholdI16_ = 0; ///< threshold3d_ as a Q11.1 raw
    GroupStats groupStats_;
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_DENOISE_H_
