#include "bm3d/denoise.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fixed/int16plan.h"
#include "obs/trace.h"
#include "runtime/arena.h"
#include "simd/simd.h"

namespace ideal {
namespace bm3d {

namespace {

int
log2OfPow2(int v)
{
    int l = 0;
    while ((1 << l) < v)
        ++l;
    return l;
}

} // namespace

Aggregator::Aggregator(int width, int height, int channels,
                       runtime::BufferArena *arena)
    : Aggregator(0, 0, width, height, channels, arena)
{
}

Aggregator::Aggregator(int x0, int y0, int width, int height, int channels,
                       runtime::BufferArena *arena)
    : x0_(x0), y0_(y0), arena_(arena)
{
    if (arena_ != nullptr) {
        const size_t n =
            static_cast<size_t>(width) * height * channels;
        num_.adopt(width, height, channels, arena_->acquire(n));
        den_.adopt(width, height, channels, arena_->acquire(n));
        num_.fill(0.0f);
        den_.fill(0.0f);
    } else {
        num_ = image::ImageF(width, height, channels);
        den_ = image::ImageF(width, height, channels);
    }
}

Aggregator::Aggregator(Aggregator &&other) noexcept
    : x0_(other.x0_), y0_(other.y0_), num_(std::move(other.num_)),
      den_(std::move(other.den_)), arena_(other.arena_)
{
    other.arena_ = nullptr;
}

Aggregator &
Aggregator::operator=(Aggregator &&other) noexcept
{
    if (this == &other)
        return *this;
    if (arena_ != nullptr) {
        arena_->release(num_.takeStorage());
        arena_->release(den_.takeStorage());
    }
    x0_ = other.x0_;
    y0_ = other.y0_;
    num_ = std::move(other.num_);
    den_ = std::move(other.den_);
    arena_ = other.arena_;
    other.arena_ = nullptr;
    return *this;
}

Aggregator::~Aggregator()
{
    if (arena_ != nullptr) {
        arena_->release(num_.takeStorage());
        arena_->release(den_.takeStorage());
    }
}

void
Aggregator::addPatch(int x, int y, int c, int patch_size,
                     const float *pixels, float w)
{
    const int lx = x - x0_;
    const int ly = y - y0_;
    const simd::KernelTable &k = simd::kernels();
    for (int r = 0; r < patch_size; ++r) {
        float *nrow = num_.plane(c) +
                      static_cast<size_t>(ly + r) * num_.width() + lx;
        float *drow = den_.plane(c) +
                      static_cast<size_t>(ly + r) * den_.width() + lx;
        k.aggregateAdd(nrow, drow, pixels + r * patch_size, w,
                       patch_size);
    }
}

void
Aggregator::addGroup(const int *xs, const int *ys, int c, int stack,
                     const float *coefs, float w, const float *inv_even,
                     const float *inv_odd)
{
    int lx[MatchList::kCapacity];
    int ly[MatchList::kCapacity];
    for (int i = 0; i < stack; ++i) {
        lx[i] = xs[i] - x0_;
        ly[i] = ys[i] - y0_;
    }
    simd::kernels().aggregateGroup(num_.plane(c), den_.plane(c),
                                   num_.width(), coefs, lx, ly, stack, w,
                                   inv_even, inv_odd);
}

image::ImageF
Aggregator::finalize(const image::ImageF &fallback,
                     runtime::BufferArena *out_arena) const
{
    if (x0_ != 0 || y0_ != 0)
        throw std::logic_error(
            "Aggregator::finalize: region aggregators cannot finalize");
    image::ImageF out;
    if (out_arena != nullptr) {
        out.adopt(num_.width(), num_.height(), num_.channels(),
                  out_arena->acquire(num_.size()));
    } else {
        out = image::ImageF(num_.width(), num_.height(), num_.channels());
    }
    // Every sample is written, so the arena buffer's unspecified
    // contents never leak through.
    for (size_t i = 0; i < out.size(); ++i) {
        float d = den_.raw()[i];
        out.raw()[i] = d > 0.0f ? num_.raw()[i] / d : fallback.raw()[i];
    }
    return out;
}

void
Aggregator::finalizeRowsInto(int y0, int y1, const image::ImageF &fallback,
                             image::ImageF &out) const
{
    if (x0_ != 0 || y0_ != 0)
        throw std::logic_error(
            "Aggregator::finalizeRowsInto: region aggregators cannot "
            "finalize");
    if (out.width() != num_.width() || out.height() != num_.height() ||
        out.channels() != num_.channels())
        throw std::invalid_argument(
            "Aggregator::finalizeRowsInto: shape mismatch");
    y0 = std::max(y0, 0);
    y1 = std::min(y1, num_.height());
    if (y0 >= y1)
        return;
    const int w = num_.width();
    for (int c = 0; c < num_.channels(); ++c) {
        const size_t base = static_cast<size_t>(y0) * w;
        const size_t end = static_cast<size_t>(y1) * w;
        const float *nplane = num_.plane(c);
        const float *dplane = den_.plane(c);
        const float *fplane = fallback.plane(c);
        float *oplane = out.plane(c);
        for (size_t i = base; i < end; ++i) {
            const float d = dplane[i];
            oplane[i] = d > 0.0f ? nplane[i] / d : fplane[i];
        }
    }
}

void
Aggregator::merge(const Aggregator &other)
{
    if (num_.channels() != other.num_.channels())
        throw std::invalid_argument("Aggregator::merge: channel mismatch");
    const int off_x = other.x0_ - x0_;
    const int off_y = other.y0_ - y0_;
    const int ow = other.num_.width();
    const int oh = other.num_.height();
    if (off_x < 0 || off_y < 0 || off_x + ow > num_.width() ||
        off_y + oh > num_.height()) {
        throw std::invalid_argument(
            "Aggregator::merge: region not contained");
    }
    const simd::KernelTable &k = simd::kernels();
    for (int c = 0; c < num_.channels(); ++c) {
        for (int r = 0; r < oh; ++r) {
            float *nrow = num_.plane(c) +
                          static_cast<size_t>(off_y + r) * num_.width() +
                          off_x;
            float *drow = den_.plane(c) +
                          static_cast<size_t>(off_y + r) * den_.width() +
                          off_x;
            const float *onrow =
                other.num_.plane(c) + static_cast<size_t>(r) * ow;
            const float *odrow =
                other.den_.plane(c) + static_cast<size_t>(r) * ow;
            k.mergeAdd(nrow, drow, onrow, odrow, ow);
        }
    }
}

DenoiseEngine::DenoiseEngine(const Bm3dConfig &config, Stage stage,
                             const image::ImageF &noisy,
                             const image::ImageF *basic,
                             const DctPatchField *dctField, Profile *profile,
                             runtime::BufferArena *arena)
    : config_(config), stage_(stage), noisy_(noisy), basic_(basic),
      dctField_(dctField), profile_(profile), arena_(arena),
      dct_(config.patchSize),
      threshold3d_(config.lambda3d * config.sigma)
{
    if (stage == Stage::Wiener && basic_ == nullptr)
        throw std::invalid_argument("Wiener stage requires basic estimate");
    for (int s = 2; s <= config.maxMatches; s *= 2)
        haars_.emplace_back(s);

    // Fused group-major datapath (DESIGN §12): 4x4 float patches with
    // no sharpening only — everything else falls back to the discrete
    // per-row path, whose output the fused one reproduces bitwise.
    fusedEligible_ = config_.fusedDenoise && config_.patchSize == 4 &&
                     !config_.fixedPoint && config_.sharpenAlpha <= 1.0f;
    if (fusedEligible_) {
        const size_t slice = static_cast<size_t>(kMaxStack) * 16;
        if (arena_ != nullptr)
            groupTile_ = arena_->acquire(slice * 3);
        else
            groupTile_.resize(slice * 3);
        gNoisy_ = groupTile_.data();
        gBasic_ = gNoisy_ + slice;
        wTile_ = gBasic_ + slice;
        const fixed::Int16DctPlan plan;
        thresholdI16_ =
            static_cast<int16_t>(plan.haar3d.quantize(threshold3d_));
    }
}

DenoiseEngine::~DenoiseEngine()
{
    if (arena_ != nullptr && !groupTile_.empty())
        arena_->release(std::move(groupTile_));
}

uint64_t
DenoiseEngine::gatherStack(const image::ImageF &src,
                           const MatchList &matches, int stack_size, int c,
                           bool reuse_field, const TileDctField *tile,
                           float *coefs, int stride)
{
    const int pp = config_.patchSize * config_.patchSize;
    float pixels[kMaxCoefs];
    uint64_t executed = 0;
    for (int i = 0; i < stack_size; ++i) {
        const Match &m = matches[i];
        float *dst = coefs + static_cast<size_t>(i) * stride;
        if (reuse_field && dctField_ != nullptr) {
            const float *p = dctField_->patch(m.x, m.y);
            std::copy(p, p + pp, dst);
            continue;
        }
        if (tile != nullptr && tile->covers(m.x, m.y)) {
            const float *p = tile->patch(m.x, m.y);
            std::copy(p, p + pp, dst);
            continue;
        }
        const float *base = src.plane(c);
        for (int r = 0; r < config_.patchSize; ++r) {
            const float *row =
                base + static_cast<size_t>(m.y + r) * src.width() + m.x;
            for (int col = 0; col < config_.patchSize; ++col)
                pixels[r * config_.patchSize + col] = row[col];
        }
        if (config_.fixedPoint)
            dct_.forwardFixed(pixels, dst, *config_.fixedPoint);
        else
            dct_.forward(pixels, dst);
        ++executed;
    }
    return executed;
}

void
DenoiseEngine::prepareTile(int x0, int y0, int x1, int y1)
{
    tilesValid_ = false;
    if (!config_.transformOnce)
        return;
    const int chans = noisy_.channels();
    const bool wiener = stage_ == Stage::Wiener;
    // Stage 1 keeps channel 0 on the global Path-C field; only the
    // color channels profit from a tile cache there.
    const int c0 = (!wiener && dctField_ != nullptr) ? 1 : 0;
    if (!wiener && c0 >= chans)
        return;

    const Step step = wiener ? Step::Dct2 : Step::De1;
    std::optional<ScopedTimer> timer;
    if (profile_)
        timer.emplace(*profile_, step);

    noisyTiles_.resize(chans);
    if (wiener)
        basicTiles_.resize(chans);
    uint64_t dcts = 0;
    for (int c = c0; c < chans; ++c)
        dcts += noisyTiles_[c].build(noisy_, c, dct_, config_.fixedPoint,
                                     x0, y0, x1, y1, arena_);
    if (wiener) {
        for (int c = 0; c < chans; ++c)
            dcts += basicTiles_[c].build(*basic_, c, dct_,
                                         config_.fixedPoint, x0, y0, x1,
                                         y1, arena_);
    }
    tilesValid_ = true;

    if (profile_) {
        OpCounters ops;
        const uint64_t n = config_.patchSize;
        ops.multiplies += dcts * 2 * n * n * n;
        ops.additions += dcts * 2 * n * n * (n - 1);
        ops.memoryReads += dcts * n * n;
        ops.memoryWrites += dcts * n * n;
        profile_->addOps(step, ops);
    }
}

DenoiseEngine::ShrinkStats
DenoiseEngine::shrinkVector(float *vec, const float *wiener_ref,
                            int stack_size)
{
    ShrinkStats stats;
    if (stage_ == Stage::HardThreshold) {
        for (int i = 0; i < stack_size; ++i) {
            if (std::abs(vec[i]) < threshold3d_) {
                vec[i] = 0.0f;
            } else {
                ++stats.nonZero;
            }
        }
    } else {
        const float s2 = config_.sigma * config_.sigma;
        for (int i = 0; i < stack_size; ++i) {
            float b = wiener_ref[i];
            float w = (b * b) / (b * b + s2);
            vec[i] *= w;
            stats.sumWeightSq += static_cast<double>(w) * w;
            // Hardware-countable analogue of "non-zero": the filter
            // passes more than half of the coefficient.
            if (w > 0.5f)
                ++stats.nonZero;
        }
    }
    return stats;
}

void
DenoiseEngine::chargeStackOps(Step de_step, uint64_t forward_dcts,
                              int stack_size)
{
    OpCounters ops;
    const uint64_t chans = noisy_.channels();
    const uint64_t n = config_.patchSize;
    const uint64_t pp = n * n;
    const uint64_t s = stack_size;
    // Forward-DCT gathers: only the transforms actually executed —
    // stack members served by the Path-C field or a transform-once
    // tile cache cost a coefficient copy, not a DCT. The Wiener
    // stage's gathers run (and are charged) under DCT2; stage 1's
    // belong to DE1.
    if (stage_ == Stage::Wiener) {
        OpCounters fwd;
        fwd.multiplies += forward_dcts * 2 * n * n * n;
        fwd.additions += forward_dcts * 2 * n * n * (n - 1);
        profile_->addOps(Step::Dct2, fwd);
    } else {
        ops.multiplies += forward_dcts * 2 * n * n * n;
        ops.additions += forward_dcts * 2 * n * n * (n - 1);
    }
    // Haar forward + inverse in matrix form (256 + 256 for s = 16).
    ops.multiplies += chans * pp * 2 * s * s;
    ops.additions += chans * pp * 2 * s * s;
    // Shrinkage.
    if (stage_ == Stage::HardThreshold)
        ops.comparisons += chans * pp * s;
    else
        ops.multiplies += chans * pp * s * 3;
    // Inverse DCT + aggregation.
    ops.multiplies += chans * s * 2 * n * n * n + chans * s * pp;
    ops.additions += chans * s * 2 * n * n * (n - 1) + chans * s * pp;
    ops.memoryReads += chans * s * pp * 2;
    ops.memoryWrites += chans * s * pp * 2;
    profile_->addOps(de_step, ops);
}

void
DenoiseEngine::processStack(const MatchList &matches, Aggregator &agg)
{
    const int stack_size = matches.stackSize();
    if (stack_size == 0)
        return;
    if (fusedEligible_) {
        processStackFused(matches, agg);
        return;
    }
    ++groupStats_.legacyStacks;
    const int p = config_.patchSize;
    const int pp = p * p;
    const Step de_step =
        stage_ == Stage::HardThreshold ? Step::De1 : Step::De2;
    std::optional<ScopedTimer> de_timer;
    if (profile_)
        de_timer.emplace(*profile_, de_step);

    const transforms::Haar1D *haar =
        stack_size >= 2 ? &haars_[log2OfPow2(stack_size) - 1] : nullptr;

    float noisy_coefs[kMaxStack][kMaxCoefs];
    float basic_coefs[kMaxStack][kMaxCoefs];
    float tdom[kMaxCoefs][kMaxStack];
    float bdom[kMaxStack];
    uint64_t forward_dcts = 0; // actually executed (not served by a cache)

    for (int c = 0; c < noisy_.channels(); ++c) {
        // Stage 1 reuses the channel-0 DCT field (Path C); everything
        // else resolves through the transform-once tile caches and
        // falls back to on-the-fly transforms.
        const bool reuse =
            stage_ == Stage::HardThreshold && c == 0 && dctField_;
        const TileDctField *ntile =
            tilesValid_ ? &noisyTiles_[c] : nullptr;
        const TileDctField *btile =
            tilesValid_ && stage_ == Stage::Wiener ? &basicTiles_[c]
                                                   : nullptr;
        if (stage_ == Stage::Wiener && profile_) {
            ScopedTimer dct_timer(*profile_, Step::Dct2);
            forward_dcts +=
                gatherStack(noisy_, matches, stack_size, c, false, ntile,
                            &noisy_coefs[0][0], kMaxCoefs);
            forward_dcts +=
                gatherStack(*basic_, matches, stack_size, c, false, btile,
                            &basic_coefs[0][0], kMaxCoefs);
        } else {
            forward_dcts +=
                gatherStack(noisy_, matches, stack_size, c, reuse, ntile,
                            &noisy_coefs[0][0], kMaxCoefs);
            if (stage_ == Stage::Wiener)
                forward_dcts +=
                    gatherStack(*basic_, matches, stack_size, c, false,
                                btile, &basic_coefs[0][0], kMaxCoefs);
        }

        ShrinkStats total;
        if (!config_.fixedPoint) {
            // Row-wise (SoA) float path: the Haar butterflies run
            // along the stack dimension with the pp coefficient
            // positions as contiguous vector lanes. Every lane sees
            // the exact per-position operation sequence, so results
            // are bit-identical to the transposed form below — minus
            // the gather/scatter transposes and with vectorizable
            // inner loops.
            float thaar[kMaxStack][kMaxCoefs];
            if (haar)
                haar->forwardRows(&noisy_coefs[0][0], &thaar[0][0],
                                  kMaxCoefs, pp);
            else
                std::copy(noisy_coefs[0], noisy_coefs[0] + pp, thaar[0]);

            const simd::KernelTable &kt = simd::kernels();
            if (stage_ == Stage::HardThreshold) {
                for (int i = 0; i < stack_size; ++i)
                    total.nonZero +=
                        kt.hardThreshold(thaar[i], pp, threshold3d_);
            } else {
                float bhaar[kMaxStack][kMaxCoefs];
                if (haar)
                    haar->forwardRows(&basic_coefs[0][0], &bhaar[0][0],
                                      kMaxCoefs, pp);
                else
                    std::copy(basic_coefs[0], basic_coefs[0] + pp,
                              bhaar[0]);
                const float s2 = config_.sigma * config_.sigma;
                float wbuf[kMaxCoefs];
                for (int i = 0; i < stack_size; ++i) {
                    total.nonZero +=
                        kt.wienerApply(thaar[i], bhaar[i], wbuf, pp, s2);
                    // The double-precision weight accumulation stays
                    // scalar and sequential, in the same i-major,
                    // pos-minor order as always.
                    for (int pos = 0; pos < pp; ++pos)
                        total.sumWeightSq +=
                            static_cast<double>(wbuf[pos]) * wbuf[pos];
                }
            }

            // Joint sharpening (paper Sec. 7): alpha-root the shrunk
            // 3-D spectrum magnitudes relative to the block's largest
            // coefficient, which is left unchanged.
            if (config_.sharpenAlpha > 1.0f) {
                float ref = 0.0f;
                for (int i = 0; i < stack_size; ++i)
                    for (int pos = 0; pos < pp; ++pos)
                        ref = std::max(ref, std::abs(thaar[i][pos]));
                if (ref > 0.0f) {
                    const float inv_alpha = 1.0f / config_.sharpenAlpha;
                    for (int i = 0; i < stack_size; ++i)
                        for (int pos = 0; pos < pp; ++pos) {
                            float v = thaar[i][pos];
                            // Boost only coefficients that survived
                            // shrinkage as significant: rooting the
                            // sub-threshold residue (present after the
                            // Wiener stage, which attenuates rather
                            // than zeroes) would amplify noise.
                            if (std::abs(v) < threshold3d_)
                                continue;
                            float mag = ref * std::pow(std::abs(v) / ref,
                                                       inv_alpha);
                            mag = std::min(mag, std::abs(v) *
                                                    config_.sharpenMaxBoost);
                            thaar[i][pos] = std::copysign(mag, v);
                        }
                }
            }

            if (haar)
                haar->inverseRows(&thaar[0][0], &noisy_coefs[0][0],
                                  kMaxCoefs, pp);
            else
                std::copy(thaar[0], thaar[0] + pp, noisy_coefs[0]);
        } else {
        for (int pos = 0; pos < pp; ++pos) {
            float zvec[kMaxStack];
            for (int i = 0; i < stack_size; ++i)
                zvec[i] = noisy_coefs[i][pos];
            if (haar) {
                if (config_.fixedPoint)
                    haar->forwardFixed(zvec, tdom[pos],
                                       *config_.fixedPoint);
                else
                    haar->forward(zvec, tdom[pos]);
            } else {
                tdom[pos][0] = zvec[0];
            }
            const float *wref = nullptr;
            if (stage_ == Stage::Wiener) {
                for (int i = 0; i < stack_size; ++i)
                    zvec[i] = basic_coefs[i][pos];
                if (haar)
                    haar->forward(zvec, bdom);
                else
                    bdom[0] = zvec[0];
                wref = bdom;
            }
            ShrinkStats s = shrinkVector(tdom[pos], wref, stack_size);
            total.nonZero += s.nonZero;
            total.sumWeightSq += s.sumWeightSq;
        }

        // Joint sharpening (paper Sec. 7): alpha-root the shrunk 3-D
        // spectrum magnitudes relative to the block's largest
        // coefficient, which is left unchanged.
        if (config_.sharpenAlpha > 1.0f) {
            float ref = 0.0f;
            for (int pos = 0; pos < pp; ++pos)
                for (int i = 0; i < stack_size; ++i)
                    ref = std::max(ref, std::abs(tdom[pos][i]));
            if (ref > 0.0f) {
                const float inv_alpha = 1.0f / config_.sharpenAlpha;
                for (int pos = 0; pos < pp; ++pos)
                    for (int i = 0; i < stack_size; ++i) {
                        float v = tdom[pos][i];
                        // Boost only coefficients that survived
                        // shrinkage as significant: rooting the
                        // sub-threshold residue (present after the
                        // Wiener stage, which attenuates rather than
                        // zeroes) would amplify noise.
                        if (std::abs(v) < threshold3d_)
                            continue;
                        float mag =
                            ref * std::pow(std::abs(v) / ref, inv_alpha);
                        mag = std::min(
                            mag, std::abs(v) * config_.sharpenMaxBoost);
                        tdom[pos][i] = std::copysign(mag, v);
                    }
            }
        }

        for (int pos = 0; pos < pp; ++pos) {
            float zvec[kMaxStack];
            if (haar) {
                if (config_.fixedPoint)
                    haar->inverseFixed(tdom[pos], zvec,
                                       *config_.fixedPoint);
                else
                    haar->inverse(tdom[pos], zvec);
            } else {
                zvec[0] = tdom[pos][0];
            }
            for (int i = 0; i < stack_size; ++i)
                noisy_coefs[i][pos] = zvec[i];
        }
        }

        float weight;
        if (stage_ == Stage::HardThreshold ||
            config_.weighting == WeightingMode::CountNonZero) {
            weight = 1.0f / static_cast<float>(std::max(total.nonZero, 1));
        } else {
            weight = 1.0f /
                     static_cast<float>(std::max(total.sumWeightSq, 1e-6));
        }

        float pixels[kMaxCoefs];
        for (int i = 0; i < stack_size; ++i) {
            if (config_.fixedPoint)
                dct_.inverseFixed(noisy_coefs[i], pixels,
                                  *config_.fixedPoint);
            else
                dct_.inverse(noisy_coefs[i], pixels);
            agg.addPatch(matches[i].x, matches[i].y, c, p, pixels, weight);
        }
    }

    if (profile_)
        chargeStackOps(de_step, forward_dcts, stack_size);
}

void
DenoiseEngine::processStackFused(const MatchList &matches, Aggregator &agg)
{
    const int stack_size = matches.stackSize();
    const int pp = 16; // fusedEligible_ implies patchSize == 4
    const Step de_step =
        stage_ == Stage::HardThreshold ? Step::De1 : Step::De2;
    std::optional<ScopedTimer> de_timer;
    if (profile_)
        de_timer.emplace(*profile_, de_step);
    obs::StepSpan span("de.fused");

    const simd::KernelTable &kt = simd::kernels();
    const float *inv_even = dct_.invEvenHalf();
    const float *inv_odd = dct_.invOddHalf();
    int mx[kMaxStack];
    int my[kMaxStack];
    for (int i = 0; i < stack_size; ++i) {
        mx[i] = matches[i].x;
        my[i] = matches[i].y;
    }
    // DE1 under Precision::Int16 shrinks quantized Q11.1 raws — the
    // paper's stage-3 datapath (Sec. 4.2). DE2's rational Wiener
    // attenuation stays float: its weights span the whole [0, 1)
    // range and the division has no int16 analogue of useful range.
    const bool i16 = stage_ == Stage::HardThreshold &&
                     config_.precision == Precision::Int16;
    const fixed::Int16DctPlan plan;
    uint64_t forward_dcts = 0;

    for (int c = 0; c < noisy_.channels(); ++c) {
        const bool reuse =
            stage_ == Stage::HardThreshold && c == 0 && dctField_;
        const TileDctField *ntile =
            tilesValid_ ? &noisyTiles_[c] : nullptr;
        float weight;
        if (stage_ == Stage::Wiener) {
            const TileDctField *btile =
                tilesValid_ ? &basicTiles_[c] : nullptr;
            {
                std::optional<ScopedTimer> dct_timer;
                if (profile_)
                    dct_timer.emplace(*profile_, Step::Dct2);
                forward_dcts +=
                    gatherStack(noisy_, matches, stack_size, c, false,
                                ntile, gNoisy_, pp);
                forward_dcts +=
                    gatherStack(*basic_, matches, stack_size, c, false,
                                btile, gBasic_, pp);
            }
            const float s2 = config_.sigma * config_.sigma;
            const int strong = kt.wienerShrinkFused(
                gNoisy_, gBasic_, wTile_, stack_size, pp, s2);
            if (config_.weighting == WeightingMode::CountNonZero) {
                weight = 1.0f / static_cast<float>(std::max(strong, 1));
            } else {
                // Same i-major, pos-minor double accumulation order as
                // the discrete path — bitwise-identical weight.
                double sum_w_sq = 0.0;
                for (int i = 0; i < stack_size; ++i)
                    for (int pos = 0; pos < pp; ++pos) {
                        const float w = wTile_[i * pp + pos];
                        sum_w_sq += static_cast<double>(w) * w;
                    }
                weight =
                    1.0f / static_cast<float>(std::max(sum_w_sq, 1e-6));
            }
        } else {
            forward_dcts += gatherStack(noisy_, matches, stack_size, c,
                                        reuse, ntile, gNoisy_, pp);
            int kept;
            if (i16) {
                const int count = stack_size * pp;
                fixed::quantizeToI16(gNoisy_, count, plan.haar3d,
                                     gi16_.data());
                kept = kt.haarShrinkFusedI16(gi16_.data(), stack_size, pp,
                                             thresholdI16_,
                                             fixed::haarFactorQ15());
                const float inv = fixed::invScale(plan.haar3d);
                for (int k = 0; k < count; ++k)
                    gNoisy_[k] = static_cast<float>(gi16_[k]) * inv;
            } else {
                kept = kt.haarShrinkFused(gNoisy_, stack_size, pp,
                                          threshold3d_);
            }
            weight = 1.0f / static_cast<float>(std::max(kept, 1));
        }
        agg.addGroup(mx, my, c, stack_size, gNoisy_, weight, inv_even,
                     inv_odd);
    }

    ++groupStats_.fusedStacks;
    groupStats_.fusedPatches +=
        static_cast<uint64_t>(stack_size) * noisy_.channels();
    if (i16)
        ++groupStats_.fusedStacksI16;
    if (profile_)
        chargeStackOps(de_step, forward_dcts, stack_size);
}

} // namespace bm3d
} // namespace ideal
