#ifndef IDEAL_BM3D_DEBLUR_H_
#define IDEAL_BM3D_DEBLUR_H_

/**
 * @file
 * Joint deblurring + denoising in the BM3D restoration family
 * (paper Sec. 2: BM3D variants implement "deblurring [20]" by
 * changing the DE-stage filter). The pipeline follows the
 * regularized-inverse scheme of Dabov et al. 2008:
 *
 *  1. RI: a Tikhonov-regularized inverse of the (symmetric, known)
 *     blur in the whole-image DCT domain - sharp but with amplified,
 *     colored noise;
 *  2. collaborative filtering: BM3D denoising of the RI output with
 *     the amplified noise level.
 *
 * On IDEAL hardware, step 1 is a per-pixel spectral multiply that the
 * EDCT datapath absorbs, and step 2 is the unmodified pipeline - the
 * same "surgical additions only to the DE" story as sharpening.
 */

#include "bm3d/config.h"
#include "bm3d/profile.h"
#include "image/image.h"

namespace ideal {
namespace bm3d {

/** Deblurring configuration. */
struct DeblurConfig
{
    /// The denoiser run on the regularized-inverse output.
    Bm3dConfig denoise;

    /// Gaussian PSF standard deviation in pixels (symmetric blur).
    float psfSigma = 1.5f;

    /// Tikhonov regularization weight of the inverse filter.
    float regLambda = 0.01f;

    void
    validate() const
    {
        denoise.validate();
        if (psfSigma <= 0.0f)
            throw std::invalid_argument("psfSigma must be positive");
        if (regLambda <= 0.0f)
            throw std::invalid_argument("regLambda must be positive");
    }
};

/** Result of a deblurring run. */
struct DeblurResult
{
    image::ImageF output;      ///< final estimate
    image::ImageF inverted;    ///< RI output before denoising
    float amplifiedSigma = 0;  ///< effective noise level after RI
    Profile profile;
};

/** Half-kernel (center first) of a normalized Gaussian PSF. */
std::vector<float> gaussianHalfKernel(float sigma);

/** Separable symmetric blur with clamped borders. */
image::ImageF blurImage(const image::ImageF &img, float psf_sigma);

/**
 * Restore an image degraded by Gaussian blur of @p cfg.psfSigma plus
 * AWGN of cfg.denoise.sigma.
 */
DeblurResult deblur(const image::ImageF &degraded,
                    const DeblurConfig &cfg);

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_DEBLUR_H_
