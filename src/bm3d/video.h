#ifndef IDEAL_BM3D_VIDEO_H_
#define IDEAL_BM3D_VIDEO_H_

/**
 * @file
 * Video denoising via spatio-temporal collaborative filtering
 * (V-BM3D-style; paper Sec. 2: "This class of algorithms has also
 * been extended beyond the imaging domain to video processing
 * including denoising [16]"). The paper's intro motivates real-time
 * raw-video denoising before encoding - denoised frames compress much
 * better.
 *
 * For each reference patch of frame t, matching searches the regular
 * Ns x Ns window in frame t plus *predictive* windows in the
 * temporally adjacent frames: a small window centered on the best
 * match found in the previous searched frame, which tracks motion
 * cheaply. The 3-D stack then mixes patches across frames, and the
 * usual Haar + shrinkage pipeline applies.
 */

#include <vector>

#include "bm3d/config.h"
#include "bm3d/profile.h"
#include "image/image.h"

namespace ideal {
namespace bm3d {

/** Video-specific configuration on top of the per-frame Bm3dConfig. */
struct VideoConfig
{
    /// Spatial/algorithm parameters (sigma, patch, windows, MR, ...).
    Bm3dConfig frame;

    /// Frames searched on each side of the reference frame.
    int temporalRadius = 1;

    /// Predictive search window dimension in neighbor frames (odd);
    /// V-BM3D uses a small window around the motion-tracked position.
    int predictiveWindow = 11;

    void
    validate() const
    {
        frame.validate();
        if (temporalRadius < 0 || temporalRadius > 4)
            throw std::invalid_argument("temporalRadius must be 0..4");
        if (predictiveWindow < frame.patchSize ||
            predictiveWindow % 2 == 0) {
            throw std::invalid_argument(
                "predictiveWindow must be odd and >= patch size");
        }
    }
};

/** Result of denoising a frame sequence. */
struct VideoResult
{
    std::vector<image::ImageF> frames; ///< denoised sequence
    Profile profile;
    /// Fraction of stack patches drawn from temporal neighbors.
    double temporalShare = 0.0;
};

/**
 * Spatio-temporal denoiser for a grayscale or multi-channel frame
 * sequence (all frames same shape, channel 0 used for matching).
 * Single (hard-thresholding) stage: video pipelines run it per frame
 * in real time; the Wiener refinement is an offline option the
 * per-frame Bm3d class already provides.
 */
class VideoBm3d
{
  public:
    explicit VideoBm3d(VideoConfig config);

    const VideoConfig &config() const { return config_; }

    /** Denoise the whole sequence. */
    VideoResult denoise(const std::vector<image::ImageF> &noisy) const;

  private:
    VideoConfig config_;
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_VIDEO_H_
