#ifndef IDEAL_BM3D_CONFIG_H_
#define IDEAL_BM3D_CONFIG_H_

/**
 * @file
 * Configuration of the BM3D denoiser (paper Sec. 2). The defaults are
 * the quality-optimal parameters reported by Heide et al. and used
 * throughout the paper: 4x4 patches, reference/search strides of 1,
 * 49x49 search windows in the hard-thresholding stage, 39x39 in the
 * Wiener stage, and 16 best matches.
 */

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "fixed/format.h"

namespace ideal {
namespace bm3d {

/** Which of the two BM3D stages a step belongs to. */
enum class Stage {
    HardThreshold, ///< stage 1: BM1 + DE1
    Wiener,        ///< stage 2: BM2 + DE2
};

/**
 * Arithmetic precision of the block-matching datapath.
 *
 * Int16 quantizes the matching planes (thresholded DCT coefficients
 * for BM1, basic-estimate pixels for BM2) to the int16 Q formats of
 * fixed/int16plan.h and runs the SSD kernels on int16 lanes — twice
 * the AVX2 throughput of float. On the fused denoise path (DESIGN
 * §12) DE1's Haar-across-patches + hard threshold also runs on Q11.1
 * int16 raws; DE2's Wiener shrinkage and all inverse transforms stay
 * float. Output is NOT bitwise equal to Float32 (tolerance-gated
 * instead) but is bitwise deterministic across SIMD levels and thread
 * counts within Int16. Requires patchSize == 4; temporal match
 * seeding is disabled under Int16.
 */
enum class Precision {
    Float32, ///< full float matching (the default)
    Int16,   ///< quantized int16 matching datapath
};

/** Spectrum-shrinkage weighting scheme for the aggregation step. */
enum class WeightingMode {
    /**
     * Weight each restored patch by 1/M where M is the number of
     * non-zero 3-D coefficients, exactly as the paper's DE pipeline
     * (Fig. 1c) describes. Used by the accelerator model.
     */
    CountNonZero,
    /**
     * Reference-BM3D weighting: 1/(sigma^2 * M) for stage 1 and
     * 1/(sigma^2 * sum W^2) for the Wiener stage. Same hardware cost,
     * slightly better quality; available for comparison.
     */
    Reference,
};

/**
 * Adaptive fast-matching configuration (DESIGN §11): algorithmic
 * BM1/BM2 work reduction in the spirit of the fast-BM3D survey of
 * Sanders & Larkin (arXiv 2103.10765), orthogonal to the SIMD and
 * int16 datapaths. Two composable mechanisms, each an ablation knob:
 *
 *  1. *Adaptive early-termination bound* (adaptiveBound): each window
 *     search seeds its acceptance cutoff from the previous reference
 *     cell's worst kept distance, scaled by a safety margin, instead
 *     of starting from Tmatch and re-learning the cutoff while the
 *     match list refills. Adjacent references see overlapping windows,
 *     so the previous cell's 16th-best distance is a tight prediction
 *     of the current one's. Candidates whose distance already exceeds
 *     the propagated bound die on one compare without an insertion
 *     attempt (or an int->float conversion on the int16 path). A
 *     candidate is only ever lost when its distance lands between the
 *     bound and what the dense scan would have kept, which the margin
 *     makes rare; boundMargin = infinity is *bitwise* identical to the
 *     dense scan.
 *
 *  2. *Coarse-to-fine reference grid* (coarseToFine): BM runs on a
 *     subsampled reference grid (every coarseStride-th grid position,
 *     tile edges always included), then measures a per-tile residual —
 *     mean normalized match distance with unfilled stack slots charged
 *     at Tmatch — and densifies only tiles whose residual reaches
 *     densifyThreshold back to the full grid. Smooth regions keep the
 *     stride-squared work reduction; structured regions fall back to
 *     the dense scan, so worst-case quality is preserved.
 *     densifyThreshold <= 0 densifies every tile, which is bitwise
 *     identical to the full-stride scan; >= 1 never densifies.
 *
 * Not composable with Matches Reuse (mr.enabled): MR chains state
 * across *consecutive* references, which the subsampled grid breaks;
 * validate() rejects the combination rather than silently changing
 * MR's meaning. Temporal seeding (streaming runtime) composes with
 * both mechanisms.
 */
struct MatchVariantConfig
{
    /// Mechanism 1: propagate each search's final worst-kept distance
    /// into the next search's starting cutoff.
    bool adaptiveBound = false;

    /**
     * Safety margin multiplier (>= 1) applied to the propagated bound.
     * Larger margins prune less and lose less quality; infinity turns
     * the mechanism into a no-op that is bitwise equal to dense.
     */
    float boundMargin = 2.0f;

    /// Mechanism 2: subsampled reference grid with per-tile dense
    /// fallback.
    bool coarseToFine = false;

    /// Reference-grid subsample factor (2 or 3), in grid-index units
    /// on top of refStride.
    int coarseStride = 2;

    /**
     * Per-tile residual at or above which the tile is densified to the
     * full reference grid. The residual is in [0, 1): 0 = every stack
     * full of perfect matches, ->1 = stacks empty or at Tmatch.
     */
    float densifyThreshold = 0.25f;

    /// True when any mechanism is active.
    bool
    any() const
    {
        return adaptiveBound || coarseToFine;
    }
};

/**
 * Row-band streaming schedule (DESIGN §15): partition the frame into
 * horizontal bands of consecutive tile rows and run each stage band by
 * band — and, in the full two-stage pipeline, interleave stage-2 bands
 * behind stage 1's aggregation frontier — so the live DctPatchField
 * working set is O(W * bandRows * 16) coefficients (a ring buffer)
 * instead of O(W * H * 16). The CPU analog of IDEALMR's 6.5 KB
 * sliding-window buffer (paper §5): same arithmetic, restructured for
 * locality. Band scheduling may reorder work but never arithmetic —
 * output is bitwise identical to the stage-major schedule for every
 * precision, SIMD level and thread count.
 */
struct BandConfig
{
    /// Enable the band-pipelined schedule.
    bool enabled = false;

    /**
     * Nominal band height in reference-grid rows. Bands are rounded to
     * whole tile rows (the merge-order unit), so the effective height
     * is a multiple of tileGrain covering at least this many rows; the
     * trailing band takes whatever is left. The field ring is sized to
     * one band plus the BM1 search halo.
     */
    int rows = 64;
};

/** Matches-Reuse (MR) configuration (paper Sec. 5.1). */
struct MrConfig
{
    bool enabled = false;
    /**
     * Aggressiveness factor K in (0, 1]: reuse is attempted when the
     * distance between consecutive reference patches is below
     * K * Tmatch. Larger K reuses more aggressively.
     */
    double k = 0.25;

    /**
     * Extension (paper Sec. 5.3 future work: "Exploiting MR across
     * rows could further reduce the processing time"): when the
     * left-neighbor check misses, also try reusing the matches of the
     * reference patch directly above. Applies within a worker's row
     * band, so the hardware implication is per-lane state only.
     */
    bool acrossRows = false;
};

/** Full algorithm configuration. */
struct Bm3dConfig
{
    /// Patch dimension PD (patches are patchSize x patchSize pixels).
    int patchSize = 4;
    /// Reference-patch stride Ps.
    int refStride = 1;
    /// Search stride Ss within the window.
    int searchStride = 1;
    /// Search window dimension Ns for the hard-thresholding stage.
    int searchWindow1 = 49;
    /// Search window dimension Ns for the Wiener stage.
    int searchWindow2 = 39;
    /// Maximum patches in a 3-D stack (16 best matches).
    int maxMatches = 16;

    /// Noise standard deviation the filter is tuned for.
    float sigma = 25.0f;

    /// 2-D DCT hard threshold Tht used before matching distances in
    /// BM1, as a multiple of sigma. The paper's pipeline always
    /// thresholds (Fig. 1b); suppressing sub-threshold noise in the
    /// matching domain is also what makes adjacent reference patches
    /// similar enough for the high MR hit rates of Fig. 10.
    float lambda2d = 2.0f;
    /// 3-D shrinkage threshold Thard as a multiple of sigma.
    float lambda3d = 2.7f;
    /// Match-distance threshold Tmatch for BM1 (normalized by PD^2).
    float tauMatch1 = 3000.0f;
    /// Match-distance threshold Tmatch for BM2 (normalized by PD^2).
    float tauMatch2 = 400.0f;

    WeightingMode weighting = WeightingMode::CountNonZero;

    /// Run the second (Wiener) stage. Disabling it is an ablation knob;
    /// the paper's pipeline always runs both stages.
    bool enableWiener = true;

    /// Software optimization: early-terminate distance computations
    /// once they exceed the current acceptance bound. The "Basic"
    /// CPU implementation of Fig. 2 disables this.
    bool boundedDistance = true;

    /// Software optimization mirroring the paper's "compute the DCT of
    /// all possible patches once" insight (Fig. 1b, DCT1): cache
    /// forward DCTs of every patch position a tile's stacks can reach
    /// (noisy + basic planes, all channels) and gather stacks from the
    /// cache instead of re-transforming per stack membership. Output
    /// is bitwise identical either way — the cache holds the very same
    /// dct.forward results; disabling is a memory/compute trade-off
    /// knob for ablations.
    bool transformOnce = true;

    /// Group-major fused denoise datapath (DESIGN §12): run the whole
    /// per-stack spectrum pipeline — Haar across patches, shrinkage,
    /// inverse Haar, inverse DCT, weighted aggregation — as fused
    /// kernel calls over a contiguous [stack][patch] group tile
    /// instead of discrete per-row kernel dispatches. Output is
    /// bitwise identical either way (the fused kernels replay the
    /// exact per-element operation sequence of the discrete path);
    /// disabling is a perf-ablation knob. The fused path requires
    /// patchSize == 4, no fixedPoint formats and sharpenAlpha == 1,
    /// and silently falls back to the discrete path otherwise.
    bool fusedDenoise = true;

    MrConfig mr;

    /// Adaptive fast-matching mechanisms (all off = the dense scan).
    MatchVariantConfig variant;

    /// Row-band streaming schedule (off = stage-major, DESIGN §15).
    BandConfig band;

    /**
     * Issue software read-prefetches one window row ahead of the SSD
     * scan in the block matcher (DESIGN §15). Semantically a no-op —
     * output is bitwise identical either way — so this is a pure perf
     * ablation knob, the CPU mirror of bench_tab08's prefetch rows.
     */
    bool prefetch = false;

    /**
     * Joint sharpening (paper Sec. 7): after shrinkage, coefficient
     * magnitudes are raised to the power 1/alpha (alpha-rooting) for
     * alpha > 1. 1.0 means no sharpening.
     */
    float sharpenAlpha = 1.0f;

    /**
     * Cap on the per-coefficient amplification alpha-rooting may
     * apply (spatially-adaptive rooting in the spirit of Makitalo &
     * Foi keeps the boost bounded; unbounded rooting over-amplifies
     * mid-band coefficients).
     */
    float sharpenMaxBoost = 2.0f;

    /**
     * When set, run the datapath in fixed point with these formats
     * (paper Sec. 4.2); otherwise use floating point.
     */
    std::optional<fixed::PipelineFormats> fixedPoint;

    /// Precision of the block-matching datapath (see Precision).
    Precision precision = Precision::Float32;

    /// Number of worker threads (1 = single-thread; 0 or negative
    /// selects the hardware thread count).
    int numThreads = 1;

    /**
     * Tile edge of the parallel runner's 2-D decomposition, in
     * reference-patch grid units. The tile grid depends only on the
     * image size and this grain — never on the thread count — which is
     * what makes denoised output bit-identical for any numThreads.
     * Smaller grains improve load balance and cache locality of the
     * search window; larger grains lengthen Matches-Reuse runs (MR
     * state resets at each tile's row starts).
     */
    int tileGrain = 64;

    /** Validate invariants; throws std::invalid_argument on error. */
    void
    validate() const
    {
        if (patchSize < 2 || patchSize > 8)
            throw std::invalid_argument("patchSize must be in [2, 8]");
        if (refStride < 1 || searchStride < 1)
            throw std::invalid_argument("strides must be >= 1");
        if (searchWindow1 < patchSize || searchWindow2 < patchSize)
            throw std::invalid_argument("search window smaller than patch");
        if (searchWindow1 % 2 == 0 || searchWindow2 % 2 == 0)
            throw std::invalid_argument("search windows must be odd");
        if (maxMatches < 1 || maxMatches > 16 ||
            (maxMatches & (maxMatches - 1)) != 0)
            throw std::invalid_argument("maxMatches must be pow2 <= 16");
        if (sigma <= 0.0f)
            throw std::invalid_argument("sigma must be positive");
        if (mr.enabled && (mr.k <= 0.0 || mr.k > 1.0))
            throw std::invalid_argument("MR factor K must be in (0, 1]");
        if (variant.adaptiveBound &&
            (std::isnan(variant.boundMargin) || variant.boundMargin < 1.0f))
            throw std::invalid_argument(
                "variant.boundMargin must be >= 1 (inf = dense)");
        if (variant.coarseToFine &&
            (variant.coarseStride < 2 || variant.coarseStride > 4))
            throw std::invalid_argument(
                "variant.coarseStride must be in [2, 4]");
        if (variant.coarseToFine && mr.enabled)
            throw std::invalid_argument(
                "variant.coarseToFine is not composable with Matches "
                "Reuse (MR chains state across consecutive references)");
        if (sharpenAlpha < 1.0f)
            throw std::invalid_argument("sharpenAlpha must be >= 1");
        if (tileGrain < 1)
            throw std::invalid_argument("tileGrain must be >= 1");
        if (band.enabled && band.rows < 1)
            throw std::invalid_argument("band.rows must be >= 1");
        if (precision == Precision::Int16 && patchSize != 4)
            throw std::invalid_argument(
                "int16 precision requires patchSize == 4");
    }

    /** Search window size of @p stage. */
    int
    searchWindow(Stage stage) const
    {
        return stage == Stage::HardThreshold ? searchWindow1
                                             : searchWindow2;
    }

    /** Match threshold of @p stage (normalized distance units). */
    float
    tauMatch(Stage stage) const
    {
        return stage == Stage::HardThreshold ? tauMatch1 : tauMatch2;
    }
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_CONFIG_H_
