#include "bm3d/deblur.h"

#include <cmath>

#include "bm3d/bm3d.h"
#include "transforms/dct1d.h"

namespace ideal {
namespace bm3d {

std::vector<float>
gaussianHalfKernel(float sigma)
{
    const int radius = std::max(1, static_cast<int>(std::ceil(3 * sigma)));
    std::vector<float> half(radius + 1);
    double total = 0.0;
    for (int j = 0; j <= radius; ++j) {
        half[j] = std::exp(-0.5 * (j / sigma) * (j / sigma));
        total += (j == 0 ? 1.0 : 2.0) * half[j];
    }
    for (float &v : half)
        v = static_cast<float>(v / total);
    return half;
}

image::ImageF
blurImage(const image::ImageF &img, float psf_sigma)
{
    const auto half = gaussianHalfKernel(psf_sigma);
    const int radius = static_cast<int>(half.size()) - 1;
    image::ImageF tmp(img.width(), img.height(), img.channels());
    image::ImageF out(img.width(), img.height(), img.channels());
    for (int c = 0; c < img.channels(); ++c) {
        // Horizontal pass.
        for (int y = 0; y < img.height(); ++y)
            for (int x = 0; x < img.width(); ++x) {
                float acc = half[0] * img.at(x, y, c);
                for (int j = 1; j <= radius; ++j)
                    acc += half[j] * (img.atClamped(x - j, y, c) +
                                      img.atClamped(x + j, y, c));
                tmp.at(x, y, c) = acc;
            }
        // Vertical pass.
        for (int y = 0; y < img.height(); ++y)
            for (int x = 0; x < img.width(); ++x) {
                float acc = half[0] * tmp.at(x, y, c);
                for (int j = 1; j <= radius; ++j)
                    acc += half[j] * (tmp.atClamped(x, y - j, c) +
                                      tmp.atClamped(x, y + j, c));
                out.at(x, y, c) = acc;
            }
    }
    return out;
}

DeblurResult
deblur(const image::ImageF &degraded, const DeblurConfig &cfg)
{
    cfg.validate();
    DeblurResult result;

    const auto half = gaussianHalfKernel(cfg.psfSigma);
    transforms::Dct2DPlane dct(degraded.width(), degraded.height());
    const auto hx = dct.rowTransform().kernelEigenvalues(half);
    const auto hy = dct.colTransform().kernelEigenvalues(half);

    // Regularized inverse per channel: X = H / (H^2 + lambda) * Y in
    // the whole-image DCT domain. Track the noise amplification to
    // retune the denoiser: AWGN of sigma becomes colored noise with
    // RMS gain sqrt(mean(g^2)).
    const size_t plane_size = degraded.planeSize();
    std::vector<float> spectrum(plane_size);
    image::ImageF inverted(degraded.width(), degraded.height(),
                           degraded.channels());
    double gain_sq_sum = 0.0;
    for (int ky = 0; ky < degraded.height(); ++ky)
        for (int kx = 0; kx < degraded.width(); ++kx) {
            float h = hx[kx] * hy[ky];
            float g = h / (h * h + cfg.regLambda);
            gain_sq_sum += static_cast<double>(g) * g;
        }
    const float rms_gain = static_cast<float>(
        std::sqrt(gain_sq_sum / static_cast<double>(plane_size)));

    for (int c = 0; c < degraded.channels(); ++c) {
        dct.forward(degraded.plane(c), spectrum.data());
        for (int ky = 0; ky < degraded.height(); ++ky)
            for (int kx = 0; kx < degraded.width(); ++kx) {
                float h = hx[kx] * hy[ky];
                float g = h / (h * h + cfg.regLambda);
                spectrum[static_cast<size_t>(ky) * degraded.width() +
                         kx] *= g;
            }
        dct.inverse(spectrum.data(), inverted.plane(c));
    }
    result.inverted = inverted;
    result.amplifiedSigma = cfg.denoise.sigma * rms_gain;

    // Collaborative filtering of the amplified noise.
    Bm3dConfig dn = cfg.denoise;
    dn.sigma = std::max(1.0f, result.amplifiedSigma);
    Bm3d denoiser(dn);
    auto r = denoiser.denoise(inverted);
    result.output = std::move(r.output);
    result.profile = r.profile;
    return result;
}

} // namespace bm3d
} // namespace ideal
