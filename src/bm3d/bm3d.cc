#include "bm3d/bm3d.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <type_traits>

#include "bm3d/blockmatch.h"
#include "bm3d/denoise.h"
#include "bm3d/seeding.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"
#include "parallel/tiles.h"
#include "runtime/arena.h"
#include "transforms/dct.h"

namespace ideal {
namespace bm3d {

namespace {

/**
 * Per-executor scratch of the tiled runner: one denoising engine (DCT
 * tables, Haar transforms), one profile, and the across-rows MR state
 * buffer, all reused across every tile the executor runs so the hot
 * path performs no per-tile heap allocation beyond its aggregator.
 */
struct WorkerScratch
{
    Profile profile;
    std::optional<DenoiseEngine> engine;
    std::vector<MatchList> rowAbove;
    /// Coarse-to-fine replay state (variant.coarseToFine): pass 1's
    /// match lists per tile cell, and which cells were searched.
    std::vector<MatchList> coarseLists;
    std::vector<uint8_t> coarseSearched;
};

/**
 * Floor of the propagated adaptive bound, as a fraction of Tmatch.
 * On flat content the worst kept distance approaches 0 (thresholded-
 * DCT descriptors of smooth patches are nearly identical), and 0 times
 * any margin would reject the next cell's equally-good candidates
 * outright. The floor only ever *loosens* the cutoff — the propagated
 * bound is max(prev_worst * margin, floor) — so it bounds the quality
 * risk of mechanism 1 without affecting its pruning on structured
 * content, where worst distances sit well above Tmatch / 8.
 */
constexpr float kAdaptiveBoundFloor = 0.125f;

/**
 * Starting cutoff of a search under Config::variant.adaptiveBound: the
 * previous reference cell's worst kept distance scaled by the safety
 * margin and floored, or +inf when the mechanism is off, the margin is
 * infinite (the documented bitwise-dense setting), or there is nothing
 * to propagate (row start, or the previous list stayed underfull —
 * worstDistance() = +inf — which makes the mechanism self-healing: one
 * over-tight bound cannot cascade down a row).
 */
inline float
adaptiveBoundFrom(const MatchVariantConfig &v, float prev_worst,
                  float bound_floor)
{
    if (!v.adaptiveBound || !std::isfinite(v.boundMargin) ||
        !std::isfinite(prev_worst))
        return std::numeric_limits<float>::infinity();
    return std::max(prev_worst * v.boundMargin, bound_floor);
}

/**
 * Normalized residual of one match stack in [0, 1): mean kept distance
 * with every unfilled slot charged at Tmatch. 0 = a full stack of
 * perfect matches; ->1 = an empty or at-threshold stack. The per-tile
 * mean of this decides coarse-to-fine densification.
 */
inline float
stackResidual(const MatchList &m, float tau, int max_matches)
{
    float sum = 0.0f;
    for (const Match &mm : m)
        sum += std::min(mm.distance, tau);
    sum += static_cast<float>(max_matches - m.size()) * tau;
    return sum / (static_cast<float>(max_matches) * tau);
}

/**
 * Next index of the subsampled coarse walk over [begin, end): step by
 * @p stride but always land on end - 1 before finishing, so tile-edge
 * references are searched on every tile and image-edge pixels keep
 * reference coverage regardless of the stride.
 */
inline int
nextCoarseIndex(int i, int end, int stride)
{
    return i >= end - 1 ? end : std::min(i + stride, end - 1);
}

/**
 * One reference patch's non-MR search: the temporal-seed check and
 * seeded scan (DctMatchDomain under a streaming run), or the full
 * window scan, both under the adaptive acceptance cutoff @p bound;
 * then the seed-store write for frame t+1. Shared by the dense tile
 * path's miss branch sibling logic in processTile (kept inline there,
 * interleaved with MR) and by both passes of processTileCoarse.
 * @return number of candidate distances evaluated
 */
template <typename Domain>
uint64_t
searchReference(const Domain &domain, const BlockMatcher<Domain> &matcher,
                TemporalSeed *seed, size_t ref_idx, int x, int y,
                float bound, MatchList &current, uint64_t &pruned,
                uint64_t &seed_refs, uint64_t &seed_hits, bool &seed_hit)
{
    constexpr bool kSeedableDomain =
        std::is_same_v<Domain, DctMatchDomain>;
    uint64_t candidates = 0;
    seed_hit = false;
    if constexpr (kSeedableDomain) {
        if (seed != nullptr) {
            const int coefs = domain.patchCoefs();
            float desc_tmp[64];
            float *desc = seed->current != nullptr
                              ? seed->current->refDesc.data() +
                                    ref_idx * coefs
                              : desc_tmp;
            domain.gatherRef(x, y, desc);
            if (seed->previous != nullptr) {
                ++seed_refs;
                const float *prev_desc =
                    seed->previous->refDesc.data() + ref_idx * coefs;
                float ssd = 0.0f;
                for (int k = 0; k < coefs; ++k) {
                    const float diff = desc[k] - prev_desc[k];
                    ssd += diff * diff;
                }
                ++candidates;
                const float d = ssd / static_cast<float>(coefs);
                if (d < seed->reuseBound) {
                    seed_hit = true;
                    ++seed_hits;
                    candidates += matcher.searchSeeded(
                        x, y, seed->previous->cell(ref_idx),
                        seed->previous->count[ref_idx], seed->window,
                        current, bound, &pruned);
                }
            }
        }
    }
    if (!seed_hit)
        candidates += matcher.search(x, y, current, bound, &pruned);
    if constexpr (kSeedableDomain) {
        if (seed != nullptr && seed->current != nullptr) {
            SeedStore &cs = *seed->current;
            SeedPos *slot = cs.pos.data() + ref_idx * cs.capacity();
            const int n = std::min(current.size(), cs.capacity());
            for (int i = 0; i < n; ++i) {
                slot[i] = SeedPos{static_cast<uint16_t>(current[i].x),
                                  static_cast<uint16_t>(current[i].y)};
            }
            cs.count[ref_idx] = static_cast<uint8_t>(n);
        }
    }
    return candidates;
}

/**
 * Process the reference patches of one 2-D tile with one matcher and
 * one denoising engine, applying Matches Reuse along each tile row.
 * This is the same work decomposition IDEALMR uses across its lanes
 * (Sec. 5.3: row granularity keeps MR locality within a worker), cut
 * into tiles so the work-stealing pool can balance load and the search
 * window's working set stays cache-resident.
 */
template <typename Domain>
void
processTile(const Bm3dConfig &cfg, Stage stage, const Domain &domain,
            const BlockMatcher<Domain> &matcher,
            const std::vector<int> &xs, const std::vector<int> &ys,
            const parallel::Tile &tile, DenoiseEngine &engine,
            Aggregator &agg, Profile &profile,
            std::vector<MatchList> &row_above, TemporalSeed *seed)
{
    const Step bm_step =
        stage == Stage::HardThreshold ? Step::Bm1 : Step::Bm2;
    const float reuse_bound =
        static_cast<float>(cfg.mr.k) * matcher.tauMatch();
    const float bound_floor = kAdaptiveBoundFloor * matcher.tauMatch();
    MatchList current;
    MatchList previous;

    // Across-rows extension state: last tile row's match list per
    // column of the tile.
    const bool across_rows = cfg.mr.enabled && cfg.mr.acrossRows;
    if (across_rows)
        row_above.assign(tile.width(), MatchList(cfg.maxMatches));
    bool have_row_above = false;

    // Temporal seeding only applies to BM1 over the DCT matching
    // domain (the streaming runtime never seeds the Wiener stage).
    constexpr bool kSeedableDomain =
        std::is_same_v<Domain, DctMatchDomain>;
    [[maybe_unused]] const size_t grid_x = xs.size();
    [[maybe_unused]] const int seed_coefs = domain.patchCoefs();
    [[maybe_unused]] uint64_t seed_refs = 0;
    [[maybe_unused]] uint64_t seed_hits = 0;

    MrStats mr;
    AdaptiveStats av;
    for (int yi = tile.y0; yi < tile.y1; ++yi) {
        const int y = ys[yi];
        const int y_above = yi > tile.y0 ? ys[yi - 1] : 0;
        bool have_previous = false;
        int prev_x = 0;
        // Adaptive early-termination state (variant.adaptiveBound):
        // the previous reference's worst kept distance, reset at each
        // row start like the MR chain.
        float carry = std::numeric_limits<float>::infinity();
        for (int xi = tile.x0; xi < tile.x1; ++xi) {
            const int x = xs[xi];
            const float bound =
                adaptiveBoundFrom(cfg.variant, carry, bound_floor);
            bool hit = false;
            bool vert_hit = false;
            bool seed_hit = false;
            uint64_t candidates = 0;
            [[maybe_unused]] const size_t ref_idx =
                static_cast<size_t>(yi) * grid_x + xi;
            {
                ScopedTimer timer(profile, bm_step);
                [[maybe_unused]] float desc_tmp[64];
                [[maybe_unused]] float *desc = nullptr;
                if constexpr (kSeedableDomain) {
                    if (seed != nullptr) {
                        // Gather this reference's descriptor once: it
                        // is both the value stored for frame t+1's
                        // closeness check and the left side of frame
                        // t's check against the stored t-1 descriptor.
                        desc = seed->current != nullptr
                                   ? seed->current->refDesc.data() +
                                         ref_idx * seed_coefs
                                   : desc_tmp;
                        domain.gatherRef(x, y, desc);
                    }
                }
                if (cfg.mr.enabled && have_previous) {
                    // The MR check: is the current reference patch
                    // close enough to the previous one to reuse its
                    // matches? (Sec. 5.1, strictness factor K.)
                    float d = matcher.referenceDistance(x, y, prev_x, y);
                    ++candidates;
                    if (d < reuse_bound) {
                        hit = true;
                        candidates +=
                            matcher.searchReuse(x, y, previous, current);
                    }
                }
                if (!hit && across_rows && have_row_above) {
                    // Across-rows fallback: try the reference patch
                    // directly above.
                    float d = matcher.referenceDistance(x, y, x, y_above);
                    ++candidates;
                    if (d < reuse_bound) {
                        hit = true;
                        vert_hit = true;
                        candidates += matcher.searchReuseDown(
                            x, y, row_above[xi - tile.x0], current);
                    }
                }
                if constexpr (kSeedableDomain) {
                    if (!hit && seed != nullptr &&
                        seed->previous != nullptr) {
                        // Temporal MR check: compare against the
                        // *previous frame's* descriptor at this grid
                        // cell. Scalar accumulation keeps the check —
                        // and therefore match selection — independent
                        // of the active SIMD level.
                        ++seed_refs;
                        const float *prev_desc =
                            seed->previous->refDesc.data() +
                            ref_idx * seed_coefs;
                        float ssd = 0.0f;
                        for (int k = 0; k < seed_coefs; ++k) {
                            const float diff = desc[k] - prev_desc[k];
                            ssd += diff * diff;
                        }
                        ++candidates;
                        const float d =
                            ssd / static_cast<float>(seed_coefs);
                        if (d < seed->reuseBound) {
                            hit = true;
                            seed_hit = true;
                            ++seed_hits;
                            candidates += matcher.searchSeeded(
                                x, y, seed->previous->cell(ref_idx),
                                seed->previous->count[ref_idx],
                                seed->window, current, bound,
                                &av.prunedInserts);
                        }
                    }
                }
                if (!hit)
                    candidates += matcher.search(x, y, current, bound,
                                                 &av.prunedInserts);
                if constexpr (kSeedableDomain) {
                    if (seed != nullptr && seed->current != nullptr) {
                        // Remember this frame's matches for frame t+1.
                        SeedStore &cs = *seed->current;
                        SeedPos *slot =
                            cs.pos.data() + ref_idx * cs.capacity();
                        const int n = std::min(
                            current.size(),
                            cs.capacity());
                        for (int i = 0; i < n; ++i) {
                            slot[i] = SeedPos{
                                static_cast<uint16_t>(current[i].x),
                                static_cast<uint16_t>(current[i].y)};
                        }
                        cs.count[ref_idx] = static_cast<uint8_t>(n);
                    }
                }
            }
            if (stage == Stage::HardThreshold) {
                ++mr.bm1Refs;
                // Seed hits are counted separately; MR stats keep
                // their single-frame (Fig. 10) meaning.
                mr.bm1Hits += (hit && !seed_hit) ? 1 : 0;
                mr.bm1VertHits += vert_hit ? 1 : 0;
                mr.bm1Candidates += candidates;
            } else {
                ++mr.bm2Refs;
                mr.bm2Hits += hit ? 1 : 0;
                mr.bm2VertHits += vert_hit ? 1 : 0;
                mr.bm2Candidates += candidates;
            }
            engine.processStack(current, agg);
            carry = current.worstDistance();
            previous = current;
            have_previous = true;
            prev_x = x;
            if (across_rows)
                row_above[xi - tile.x0] = current;
        }
        if (across_rows)
            have_row_above = true;
    }
    profile.mr() += mr;
    profile.adaptive() += av;

    // Per-worker MR counters into the process-wide registry: each
    // executor writes its own shard (no contention), one update per
    // tile. Fig. 10's hit rates are then readable from any embedding
    // harness without threading a Profile through it.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    if (stage == Stage::HardThreshold) {
        reg.add("bm3d.mr.bm1Refs", static_cast<double>(mr.bm1Refs));
        reg.add("bm3d.mr.bm1Hits", static_cast<double>(mr.bm1Hits));
        reg.add("bm3d.mr.bm1Candidates",
                static_cast<double>(mr.bm1Candidates));
    } else {
        reg.add("bm3d.mr.bm2Refs", static_cast<double>(mr.bm2Refs));
        reg.add("bm3d.mr.bm2Hits", static_cast<double>(mr.bm2Hits));
        reg.add("bm3d.mr.bm2Candidates",
                static_cast<double>(mr.bm2Candidates));
    }
    reg.add("bm3d.adaptive.prunedInserts",
            static_cast<double>(av.prunedInserts));
    if constexpr (kSeedableDomain) {
        if (seed != nullptr && seed->previous != nullptr) {
            seed->refs.fetch_add(seed_refs, std::memory_order_relaxed);
            seed->hits.fetch_add(seed_hits, std::memory_order_relaxed);
            reg.add("bm3d.seed.refs", static_cast<double>(seed_refs));
            reg.add("bm3d.seed.hits", static_cast<double>(seed_hits));
        }
    }

    // Block-matching op accounting: each candidate distance costs
    // PD^2 subtract + multiply + add (Eq. 2).
    OpCounters ops;
    const uint64_t pp =
        static_cast<uint64_t>(cfg.patchSize) * cfg.patchSize;
    const uint64_t cand = stage == Stage::HardThreshold
                              ? mr.bm1Candidates
                              : mr.bm2Candidates;
    ops.additions += cand * pp * 2;
    ops.multiplies += cand * pp;
    ops.memoryReads += cand * pp * 2;
    profile.addOps(bm_step, ops);
}

/**
 * Coarse-to-fine variant of processTile (variant.coarseToFine).
 *
 * Pass 1 searches the subsampled reference grid — every coarseStride-th
 * tile row and column, tile edges always included — and stores the
 * match lists without aggregating anything. The tile's mean stack
 * residual then picks between staying coarse and densifying. Pass 2
 * aggregates strictly in row-major full-grid order, replaying stored
 * lists and searching fine positions on demand, so a densified tile
 * reproduces the dense scan's floating-point aggregation tree bit for
 * bit: densifyThreshold <= 0 (densify everything) is bitwise equal to
 * the full-stride output. MR is rejected by validate() for this path;
 * temporal seeding composes — skipped references get their seed slot
 * invalidated (count 0, NaN descriptor) so frame t+1's closeness check
 * cannot hit on stale state.
 */
template <typename Domain>
void
processTileCoarse(const Bm3dConfig &cfg, Stage stage, const Domain &domain,
                  const BlockMatcher<Domain> &matcher,
                  const std::vector<int> &xs, const std::vector<int> &ys,
                  const parallel::Tile &tile, DenoiseEngine &engine,
                  Aggregator &agg, Profile &profile,
                  std::vector<MatchList> &lists,
                  std::vector<uint8_t> &searched, TemporalSeed *seed)
{
    const Step bm_step =
        stage == Stage::HardThreshold ? Step::Bm1 : Step::Bm2;
    const int w = tile.width();
    const int stride = cfg.variant.coarseStride;
    const float tau = matcher.tauMatch();
    const float bound_floor = kAdaptiveBoundFloor * tau;
    const size_t grid_x = xs.size();
    constexpr bool kSeedableDomain =
        std::is_same_v<Domain, DctMatchDomain>;

    lists.assign(static_cast<size_t>(w) * tile.height(),
                 MatchList(cfg.maxMatches));
    searched.assign(lists.size(), 0);

    AdaptiveStats av;
    uint64_t seed_refs = 0;
    uint64_t seed_hits = 0;
    uint64_t candidates = 0;
    uint64_t refs = 0;
    double residual_sum = 0.0;
    int coarse_count = 0;
    MatchList current;

    // Pass 1: subsampled searches, match lists stored, no aggregation.
    for (int yi = tile.y0; yi < tile.y1;
         yi = nextCoarseIndex(yi, tile.y1, stride)) {
        const int y = ys[yi];
        float carry = std::numeric_limits<float>::infinity();
        for (int xi = tile.x0; xi < tile.x1;
             xi = nextCoarseIndex(xi, tile.x1, stride)) {
            const int x = xs[xi];
            const size_t ref_idx = static_cast<size_t>(yi) * grid_x + xi;
            const float bound =
                adaptiveBoundFrom(cfg.variant, carry, bound_floor);
            bool seed_hit = false;
            {
                ScopedTimer timer(profile, bm_step);
                candidates += searchReference(
                    domain, matcher, seed, ref_idx, x, y, bound, current,
                    av.prunedInserts, seed_refs, seed_hits, seed_hit);
            }
            carry = current.worstDistance();
            const size_t li =
                static_cast<size_t>(yi - tile.y0) * w + (xi - tile.x0);
            lists[li] = current;
            searched[li] = 1;
            ++refs;
            ++coarse_count;
            residual_sum += stackResidual(current, tau, cfg.maxMatches);
        }
    }

    const float residual =
        coarse_count > 0
            ? static_cast<float>(residual_sum / coarse_count)
            : 0.0f;
    const bool densify = residual >= cfg.variant.densifyThreshold;
    if (densify)
        ++av.tilesDensified;
    else
        ++av.tilesCoarse;

    // Pass 2: row-major full-grid replay; fine searches only when the
    // residual asked for them.
    for (int yi = tile.y0; yi < tile.y1; ++yi) {
        const int y = ys[yi];
        float carry = std::numeric_limits<float>::infinity();
        for (int xi = tile.x0; xi < tile.x1; ++xi) {
            const int x = xs[xi];
            const size_t ref_idx = static_cast<size_t>(yi) * grid_x + xi;
            const size_t li =
                static_cast<size_t>(yi - tile.y0) * w + (xi - tile.x0);
            if (searched[li]) {
                current = lists[li];
            } else if (densify) {
                const float bound =
                    adaptiveBoundFrom(cfg.variant, carry, bound_floor);
                bool seed_hit = false;
                {
                    ScopedTimer timer(profile, bm_step);
                    candidates += searchReference(
                        domain, matcher, seed, ref_idx, x, y, bound,
                        current, av.prunedInserts, seed_refs, seed_hits,
                        seed_hit);
                }
                ++refs;
            } else {
                ++av.refsSkipped;
                if constexpr (kSeedableDomain) {
                    if (seed != nullptr && seed->current != nullptr) {
                        SeedStore &cs = *seed->current;
                        cs.count[ref_idx] = 0;
                        float *desc =
                            cs.refDesc.data() +
                            ref_idx * domain.patchCoefs();
                        std::fill(
                            desc, desc + domain.patchCoefs(),
                            std::numeric_limits<float>::quiet_NaN());
                    }
                }
                continue;
            }
            engine.processStack(current, agg);
            carry = current.worstDistance();
        }
    }

    MrStats mr;
    if (stage == Stage::HardThreshold) {
        mr.bm1Refs = refs;
        mr.bm1Candidates = candidates;
    } else {
        mr.bm2Refs = refs;
        mr.bm2Candidates = candidates;
    }
    profile.mr() += mr;
    profile.adaptive() += av;

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    if (stage == Stage::HardThreshold) {
        reg.add("bm3d.mr.bm1Refs", static_cast<double>(mr.bm1Refs));
        reg.add("bm3d.mr.bm1Hits", 0.0);
        reg.add("bm3d.mr.bm1Candidates",
                static_cast<double>(mr.bm1Candidates));
    } else {
        reg.add("bm3d.mr.bm2Refs", static_cast<double>(mr.bm2Refs));
        reg.add("bm3d.mr.bm2Hits", 0.0);
        reg.add("bm3d.mr.bm2Candidates",
                static_cast<double>(mr.bm2Candidates));
    }
    reg.add("bm3d.adaptive.prunedInserts",
            static_cast<double>(av.prunedInserts));
    reg.add("bm3d.adaptive.tilesCoarse",
            static_cast<double>(av.tilesCoarse));
    reg.add("bm3d.adaptive.tilesDensified",
            static_cast<double>(av.tilesDensified));
    reg.add("bm3d.adaptive.refsSkipped",
            static_cast<double>(av.refsSkipped));
    if constexpr (kSeedableDomain) {
        if (seed != nullptr && seed->previous != nullptr) {
            seed->refs.fetch_add(seed_refs, std::memory_order_relaxed);
            seed->hits.fetch_add(seed_hits, std::memory_order_relaxed);
            reg.add("bm3d.seed.refs", static_cast<double>(seed_refs));
            reg.add("bm3d.seed.hits", static_cast<double>(seed_hits));
        }
    }

    OpCounters ops;
    const uint64_t pp =
        static_cast<uint64_t>(cfg.patchSize) * cfg.patchSize;
    ops.additions += candidates * pp * 2;
    ops.multiplies += candidates * pp;
    ops.memoryReads += candidates * pp * 2;
    profile.addOps(bm_step, ops);
}

/**
 * Tiled work-stealing runner for one BM3D stage.
 *
 * The reference-patch grid is cut into 2-D tiles (a grid that depends
 * only on image size and cfg.tileGrain, never the thread count); the
 * shared pool distributes tiles across up to cfg.numThreads executors
 * with work stealing. Each tile accumulates into its own sub-region
 * aggregator sized to the tile's contribution footprint; the partial
 * sums are merged into the full image in tile order afterwards, so the
 * floating-point addition tree — and therefore the output image — is
 * identical for every thread count, including single-threaded runs.
 *
 * Tiles may be submitted all at once (the stage-major schedule) or as
 * consecutive tile-index ranges via runTileRange() — the row-band
 * streaming schedule of DESIGN §15, where a range is one horizontal
 * band of tile rows. Sequential in-order ranges execute the same
 * per-tile work and merge partial sums at the same global tile-order
 * cursor, so any banding is bitwise identical to one full-range run.
 */
template <typename Domain>
class StageRunner
{
  public:
    StageRunner(const Bm3dConfig &cfg, Stage stage, const Domain &domain,
                const image::ImageF &noisy, const image::ImageF *basic,
                const DctPatchField *field, const StageOptions &opts)
        : cfg_(cfg), stage_(stage), domain_(domain), noisy_(noisy),
          basic_(basic), field_(field), opts_(opts),
          matcher_(domain, cfg.searchWindow(stage), cfg.searchStride,
                   cfg.refStride, cfg.tauMatch(stage), cfg.maxMatches,
                   cfg.boundedDistance, cfg.prefetch),
          xs_(makeRefPositions(domain.positionsX() - 1, cfg.refStride)),
          ys_(makeRefPositions(domain.positionsY() - 1, cfg.refStride)),
          tiles_(parallel::makeTiles(static_cast<int>(xs_.size()),
                                     static_cast<int>(ys_.size()),
                                     cfg.tileGrain)),
          threads_(std::min<int>(parallel::clampThreads(cfg.numThreads),
                                 static_cast<int>(tiles_.size()))),
          // Contribution footprint of a tile: matches lie within the
          // search window of a reference, and each patch extends
          // patchSize pixels.
          half_((cfg.searchWindow(stage) - 1) / 2),
          workers_(std::max(1, threads_)),
          // The full-image accumulator and the final output recycle
          // through the caller's arena (streaming runtime); the
          // per-tile aggregators deliberately stay on the plain heap —
          // their acquire/release order depends on work stealing,
          // which would make the arena's steady-state miss count
          // nondeterministic.
          total_(noisy.width(), noisy.height(), noisy.channels(),
                 opts.arena),
          pending_(tiles_.size())
    {
    }

    const std::vector<int> &xs() const { return xs_; }
    const std::vector<int> &ys() const { return ys_; }
    size_t tileCount() const { return tiles_.size(); }

    /** The merged accumulator (the band pipeline normalizes finished
        rows out of it via Aggregator::finalizeRowsInto). */
    const Aggregator &aggregator() const { return total_; }

    /**
     * Run tiles [first, last) on the shared pool. Ranges must be
     * submitted in ascending, non-overlapping order; each completed
     * tile still merges at the global tile-order cursor. Completed
     * tiles are merged into the total eagerly but strictly in tile
     * order (the cursor advances over consecutive ready tiles), so
     * memory stays bounded by the out-of-order window while the
     * addition tree stays identical for every thread count and every
     * banding of the ranges.
     */
    void
    runTileRange(size_t first, size_t last)
    {
        const int count = static_cast<int>(last - first);
        if (count <= 0)
            return;
        parallel::ThreadPool::global().run(
            count, std::min(threads_, count), [&](int i, int slot) {
                const size_t ti = first + i;
                WorkerScratch &ws = workers_[slot];
                if (!ws.engine) {
                    ws.engine.emplace(cfg_, stage_, noisy_, basic_,
                                      field_, &ws.profile, opts_.arena);
                }
                const parallel::Tile &tile = tiles_[ti];
                // Halo-expanded patch positions this tile's stacks can
                // reach; the pixel footprint extends patchSize past
                // the last position.
                const parallel::Region r = parallel::expandTile(
                    tile, xs_, ys_, half_, domain_.positionsX() - 1,
                    domain_.positionsY() - 1);
                Aggregator agg(r.x0, r.y0, r.x1 + cfg_.patchSize - r.x0,
                               r.y1 + cfg_.patchSize - r.y0,
                               noisy_.channels());
                ws.engine->prepareTile(r.x0, r.y0, r.x1, r.y1);
                if (cfg_.variant.coarseToFine) {
                    processTileCoarse(cfg_, stage_, domain_, matcher_,
                                      xs_, ys_, tile, *ws.engine, agg,
                                      ws.profile, ws.coarseLists,
                                      ws.coarseSearched, opts_.seed);
                } else {
                    processTile(cfg_, stage_, domain_, matcher_, xs_,
                                ys_, tile, *ws.engine, agg, ws.profile,
                                ws.rowAbove, opts_.seed);
                }

                std::lock_guard<std::mutex> lock(mergeMutex_);
                pending_[ti].emplace(std::move(agg));
                while (mergeCursor_ < pending_.size() &&
                       pending_[mergeCursor_]) {
                    total_.merge(*pending_[mergeCursor_]);
                    pending_[mergeCursor_].reset();
                    ++mergeCursor_;
                }
            });
    }

    /**
     * Flush per-worker profiles and the fused-datapath counters into
     * the process-wide registry (summed over workers, so the totals
     * are thread-count and banding invariant). Call exactly once,
     * after the last runTileRange().
     */
    void
    finishStats(Profile &profile)
    {
        for (const WorkerScratch &ws : workers_)
            profile += ws.profile;

        DenoiseEngine::GroupStats group;
        for (const WorkerScratch &ws : workers_) {
            if (!ws.engine)
                continue;
            const DenoiseEngine::GroupStats &g = ws.engine->groupStats();
            group.fusedStacks += g.fusedStacks;
            group.fusedPatches += g.fusedPatches;
            group.fusedStacksI16 += g.fusedStacksI16;
            group.legacyStacks += g.legacyStacks;
        }
        obs::MetricsRegistry &greg = obs::MetricsRegistry::global();
        greg.add("bm3d.group.fusedStacks",
                 static_cast<double>(group.fusedStacks));
        greg.add("bm3d.group.fusedPatches",
                 static_cast<double>(group.fusedPatches));
        greg.add("bm3d.group.fusedStacksI16",
                 static_cast<double>(group.fusedStacksI16));
        greg.add("bm3d.group.legacyStacks",
                 static_cast<double>(group.legacyStacks));
    }

    /** total_.finalize over the stage's fallback image. */
    image::ImageF
    finalize()
    {
        const image::ImageF &fallback =
            stage_ == Stage::Wiener ? *basic_ : noisy_;
        return total_.finalize(fallback, opts_.arena);
    }

  private:
    const Bm3dConfig &cfg_;
    Stage stage_;
    const Domain &domain_;
    const image::ImageF &noisy_;
    const image::ImageF *basic_;
    const DctPatchField *field_;
    StageOptions opts_;
    BlockMatcher<Domain> matcher_;
    std::vector<int> xs_;
    std::vector<int> ys_;
    std::vector<parallel::Tile> tiles_;
    int threads_;
    int half_;
    std::vector<WorkerScratch> workers_;
    Aggregator total_;
    std::vector<std::optional<Aggregator>> pending_;
    std::mutex mergeMutex_;
    size_t mergeCursor_ = 0;
};

/**
 * One stage, stage-major or (cfg.band.enabled) in within-stage row
 * bands: consecutive tile-row ranges run to completion one after the
 * other — the order the streaming prepass fills the field in, keeping
 * each band's matching working set hot — with identical output either
 * way (see StageRunner::runTileRange).
 */
template <typename Domain>
image::ImageF
runStageWithDomain(const Bm3dConfig &cfg, Stage stage, const Domain &domain,
                   const image::ImageF &noisy, const image::ImageF *basic,
                   const DctPatchField *field, Profile &profile,
                   const StageOptions &opts)
{
    StageRunner<Domain> runner(cfg, stage, domain, noisy, basic, field,
                               opts);
    if (cfg.band.enabled) {
        const std::vector<parallel::TileBand> bands =
            parallel::makeTileBands(static_cast<int>(runner.xs().size()),
                                    static_cast<int>(runner.ys().size()),
                                    cfg.tileGrain, cfg.band.rows);
        for (const parallel::TileBand &b : bands) {
            obs::Span span("bm3d.band", "bm3d");
            runner.runTileRange(b.firstTile, b.lastTile);
        }
        obs::MetricsRegistry::global().add(
            "bm3d.band.bands", static_cast<double>(bands.size()));
    } else {
        runner.runTileRange(0, runner.tileCount());
    }
    runner.finishStats(profile);
    return runner.finalize();
}

/**
 * The cross-stage band pipeline behind Bm3d::denoise when
 * cfg.band.enabled (DESIGN §15). Per stage-1 band: fill the ring
 * field's newly needed position rows (DCT1), run the band's BM1+DE1
 * tiles, normalize the basic-estimate rows no later band can touch
 * (the frontier), then run every stage-2 band whose basic working set
 * — references plus search-window halo plus patch extent — is final.
 * The live DCT1 working set is the ring (band span + 2*half1 + 1 rows)
 * instead of the whole field, and BM2 reads basic rows while they are
 * still cache-hot.
 *
 * Work is reordered, arithmetic is not: tiles run in global tile order
 * within each stage, partial sums merge at each runner's tile-order
 * cursor, and finalizeRowsInto / the deferred int16 quantization are
 * per-sample — so the result is bitwise identical to the stage-major
 * schedule.
 */
template <typename Domain1, typename Domain2>
Bm3dResult
runBandedPipeline(const Bm3dConfig &cfg, const image::ImageF &noisy)
{
    constexpr bool kInt16 = std::is_same_v<Domain1, DctMatchDomainI16>;
    Bm3dResult result;
    Profile &profile = result.profile;
    obs::Span run_span("bm3d.banded", "bm3d");

    const int w = noisy.width();
    const int h = noisy.height();
    const int ps = cfg.patchSize;
    const int posY = h - ps + 1;
    transforms::Dct2D dct(ps);
    image::ImageF plane0 = noisy.extractPlane(0);

    // Both stages share one reference grid (the matching domains cover
    // the same position range), hence one band partition.
    const std::vector<int> xs = makeRefPositions(w - ps, cfg.refStride);
    const std::vector<int> ys = makeRefPositions(posY - 1, cfg.refStride);
    const std::vector<parallel::TileBand> bands =
        parallel::makeTileBands(static_cast<int>(xs.size()),
                                static_cast<int>(ys.size()),
                                cfg.tileGrain, cfg.band.rows);
    const int half1 = (cfg.searchWindow(Stage::HardThreshold) - 1) / 2;
    const int half2 = (cfg.searchWindow(Stage::Wiener) - 1) / 2;

    // Ring capacity: a band's tiles read position rows from
    // ys[first] - half1 through ys[last] + half1 (matching candidates
    // and Path-C raws alike), and fills ascend — so the widest band's
    // span plus both halos keeps every row a band needs resident at
    // the moment its fill cursor peaks. Clamped to the grid height:
    // images shorter than band + halo degenerate to whole-image mode.
    int ring = 0;
    for (const parallel::TileBand &b : bands)
        ring = std::max(ring, ys[b.y1 - 1] - ys[b.y0] + 2 * half1 + 1);
    ring = std::min(ring, posY);

    DctPatchField field;
    field.prepare(w, h, dct, nullptr, ring);
    if constexpr (kInt16)
        field.prepareI16();

    const float tht = cfg.lambda2d * cfg.sigma;
    StageOptions opts;
    Domain1 domain1(field);
    StageRunner<Domain1> s1(cfg, Stage::HardThreshold, domain1, noisy,
                            nullptr, &field, opts);

    // The basic estimate is written band by band via finalizeRowsInto;
    // the stage-2 domain is a view over its channel-0 plane (plus, for
    // int16, a quantized copy fed by the same frontier).
    result.basic = image::ImageF(w, h, noisy.channels());
    std::optional<Domain2> domain2;
    std::optional<StageRunner<Domain2>> s2;
    if (cfg.enableWiener) {
        if constexpr (kInt16)
            domain2.emplace(result.basic, ps, /*deferred=*/true);
        else
            domain2.emplace(result.basic, ps);
        s2.emplace(cfg, Stage::Wiener, *domain2, noisy, &result.basic,
                   nullptr, opts);
    }

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    int filled = 0; ///< field position rows computed
    int done = 0;   ///< basic pixel rows finalized
    size_t q2 = 0;  ///< next stage-2 band
    uint64_t rows_filled = 0;
    for (size_t bi = 0; bi < bands.size(); ++bi) {
        const parallel::TileBand &b = bands[bi];
        const int need = std::min(posY, ys[b.y1 - 1] + half1 + 1);
        if (need > filled) {
            ScopedTimer timer(profile, Step::Dct1);
            OpCounters ops;
            const uint64_t n = field.fillRows(plane0, dct, tht,
                                              cfg.fixedPoint, filled,
                                              need);
            DctPatchField::countOps(n, ps, tht > 0.0f, &ops);
            if constexpr (kInt16)
                field.fillRowsI16(plane0, dct, tht, filled, need);
            profile.addOps(Step::Dct1, ops);
            rows_filled += static_cast<uint64_t>(need - filled);
            filled = need;
        }
        {
            obs::Span span("bm3d.band", "bm3d");
            s1.runTileRange(b.firstTile, b.lastTile);
        }
        // Pixel rows no later band's stacks can reach: the next band's
        // earliest match position row minus nothing below it — its
        // references start at ys[next.y0], matches at - half1. After
        // the last band, everything.
        const int frontier =
            bi + 1 < bands.size()
                ? std::min(h, std::max(0, ys[bands[bi + 1].y0] - half1))
                : h;
        if (frontier > done) {
            s1.aggregator().finalizeRowsInto(done, frontier, noisy,
                                             result.basic);
            if constexpr (kInt16) {
                if (cfg.enableWiener)
                    domain2->quantizeRows(result.basic, done, frontier);
            }
            done = frontier;
        }
        if (cfg.enableWiener) {
            // Release every stage-2 band whose working set — matches
            // within half2 of its references, patches extending ps
            // pixels — lies inside the finalized rows.
            while (q2 < bands.size() &&
                   std::min(h, ys[bands[q2].y1 - 1] + half2 + ps) <=
                       done) {
                obs::Span span("bm3d.band", "bm3d");
                s2->runTileRange(bands[q2].firstTile,
                                 bands[q2].lastTile);
                ++q2;
            }
        }
    }
    s1.finishStats(profile);
    reg.add("bm3d.band.rowsFilled", static_cast<double>(rows_filled));
    reg.add("bm3d.band.bands",
            static_cast<double>(bands.size() *
                                (cfg.enableWiener ? 2 : 1)));
    if (cfg.enableWiener) {
        s2->finishStats(profile);
        result.output = s2->finalize();
    } else {
        result.output = result.basic;
    }
    return result;
}

} // namespace

std::vector<int>
makeRefPositions(int last_valid, int stride)
{
    std::vector<int> xs;
    for (int x = 0; x <= last_valid; x += stride)
        xs.push_back(x);
    if (xs.back() != last_valid)
        xs.push_back(last_valid);
    return xs;
}

Bm3d::Bm3d(Bm3dConfig config) : config_(std::move(config))
{
    config_.validate();
}

image::ImageF
Bm3d::runStage(Stage stage, const image::ImageF &noisy,
               const image::ImageF *basic, Profile &profile) const
{
    return runStage(stage, noisy, basic, profile, StageOptions{});
}

image::ImageF
Bm3d::runStage(Stage stage, const image::ImageF &noisy,
               const image::ImageF *basic, Profile &profile,
               const StageOptions &opts) const
{
    if (noisy.width() < config_.patchSize ||
        noisy.height() < config_.patchSize) {
        throw std::invalid_argument("Bm3d: image smaller than patch");
    }
    obs::Span stage_span(stage == Stage::HardThreshold ? "bm3d.stage1"
                                                       : "bm3d.stage2",
                         "bm3d");
    transforms::Dct2D dct(config_.patchSize);
    if (stage == Stage::HardThreshold) {
        if (opts.field != nullptr) {
            // Streaming runtime: the prepass already computed DCT1 on
            // another thread (overlapping the previous frame's
            // stage 2), and accounts its time/ops itself.
            if (config_.precision == Precision::Int16 &&
                opts.field->hasInt16()) {
                DctMatchDomainI16 domain(*opts.field);
                return runStageWithDomain(config_, stage, domain, noisy,
                                          basic, opts.field, profile,
                                          opts);
            }
            DctMatchDomain domain(*opts.field);
            return runStageWithDomain(config_, stage, domain, noisy,
                                      basic, opts.field, profile, opts);
        }
        // DCT1: transform every patch of the matching channel once
        // (Path A); the field also serves the denoiser via Path C.
        DctPatchField field;
        {
            ScopedTimer timer(profile, Step::Dct1);
            OpCounters ops;
            image::ImageF plane0 = noisy.extractPlane(0);
            field.build(plane0, dct, config_.lambda2d * config_.sigma,
                        config_.fixedPoint, &ops, opts.arena);
            if (config_.precision == Precision::Int16) {
                // Int16 matching planes in addition to the float field:
                // DE1 still reads the float raw coefficients (Path C),
                // only BM1's SSD datapath is quantized.
                field.prepareI16();
                field.fillRowsI16(plane0, dct,
                                  config_.lambda2d * config_.sigma, 0,
                                  field.positionsY());
            }
            profile.addOps(Step::Dct1, ops);
        }
        if (config_.precision == Precision::Int16) {
            DctMatchDomainI16 domain(field);
            return runStageWithDomain(config_, stage, domain, noisy,
                                      basic, &field, profile, opts);
        }
        DctMatchDomain domain(field);
        return runStageWithDomain(config_, stage, domain, noisy, basic,
                                  &field, profile, opts);
    }
    // Wiener stage: matching runs in the color domain of the basic
    // estimate (Path B); no patch field is needed.
    if (basic == nullptr)
        throw std::invalid_argument("Wiener stage requires basic estimate");
    image::ImageF basic_plane0;
    if (opts.arena != nullptr) {
        const size_t n =
            static_cast<size_t>(basic->width()) * basic->height();
        basic_plane0.adopt(basic->width(), basic->height(), 1,
                           opts.arena->acquire(n));
        const float *src = basic->plane(0);
        std::copy(src, src + n, basic_plane0.plane(0));
    } else {
        basic_plane0 = basic->extractPlane(0);
    }
    image::ImageF out;
    if (config_.precision == Precision::Int16) {
        // BM2 in int16: quantize the basic-estimate matching plane to
        // Q8.4 once; DE2 stays float on the original planes.
        ColorMatchDomainI16 domain(basic_plane0, config_.patchSize);
        out = runStageWithDomain(config_, stage, domain, noisy, basic,
                                 nullptr, profile, opts);
    } else {
        ColorMatchDomain domain(basic_plane0, config_.patchSize);
        out = runStageWithDomain(config_, stage, domain, noisy, basic,
                                 nullptr, profile, opts);
    }
    if (opts.arena != nullptr)
        opts.arena->release(basic_plane0.takeStorage());
    return out;
}

Bm3dResult
Bm3d::denoise(const image::ImageF &noisy) const
{
    if (config_.band.enabled) {
        // Row-band streaming schedule (DESIGN §15): ring-resident DCT1
        // field, frontier-driven cross-stage pipelining, bitwise
        // identical to the stage-major path below.
        if (noisy.width() < config_.patchSize ||
            noisy.height() < config_.patchSize) {
            throw std::invalid_argument("Bm3d: image smaller than patch");
        }
        if (config_.precision == Precision::Int16) {
            return runBandedPipeline<DctMatchDomainI16,
                                     ColorMatchDomainI16>(config_, noisy);
        }
        return runBandedPipeline<DctMatchDomain, ColorMatchDomain>(
            config_, noisy);
    }
    Bm3dResult result;
    result.basic =
        runStage(Stage::HardThreshold, noisy, nullptr, result.profile);
    if (config_.enableWiener) {
        result.output = runStage(Stage::Wiener, noisy, &result.basic,
                                 result.profile);
    } else {
        result.output = result.basic;
    }
    return result;
}

} // namespace bm3d
} // namespace ideal
