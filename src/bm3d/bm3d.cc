#include "bm3d/bm3d.h"

#include <memory>
#include <mutex>
#include <thread>

#include "bm3d/blockmatch.h"
#include "bm3d/denoise.h"
#include "transforms/dct.h"

namespace ideal {
namespace bm3d {

namespace {

/**
 * Process the reference patches of a band of rows with one matcher and
 * one denoising engine, applying Matches Reuse along each row. This is
 * the same work partitioning IDEALMR uses across its lanes (Sec. 5.3:
 * row granularity keeps MR locality within a worker).
 */
template <typename Domain>
void
processRows(const Bm3dConfig &cfg, Stage stage,
            const BlockMatcher<Domain> &matcher,
            const std::vector<int> &xs, const std::vector<int> &ys,
            size_t row_begin, size_t row_end, DenoiseEngine &engine,
            Aggregator &agg, Profile &profile)
{
    const Step bm_step =
        stage == Stage::HardThreshold ? Step::Bm1 : Step::Bm2;
    const float reuse_bound =
        static_cast<float>(cfg.mr.k) * matcher.tauMatch();
    MatchList current;
    MatchList previous;

    // Across-rows extension state: last row's match list per column.
    const bool across_rows = cfg.mr.enabled && cfg.mr.acrossRows;
    std::vector<MatchList> row_above;
    if (across_rows)
        row_above.assign(xs.size(), MatchList(cfg.maxMatches));
    bool have_row_above = false;

    MrStats mr;
    for (size_t yi = row_begin; yi < row_end; ++yi) {
        const int y = ys[yi];
        const int y_above = yi > row_begin ? ys[yi - 1] : 0;
        bool have_previous = false;
        int prev_x = 0;
        for (size_t xi = 0; xi < xs.size(); ++xi) {
            const int x = xs[xi];
            bool hit = false;
            bool vert_hit = false;
            uint64_t candidates = 0;
            {
                ScopedTimer timer(profile, bm_step);
                if (cfg.mr.enabled && have_previous) {
                    // The MR check: is the current reference patch
                    // close enough to the previous one to reuse its
                    // matches? (Sec. 5.1, strictness factor K.)
                    float d = matcher.referenceDistance(x, y, prev_x, y);
                    ++candidates;
                    if (d < reuse_bound) {
                        hit = true;
                        candidates +=
                            matcher.searchReuse(x, y, previous, current);
                    }
                }
                if (!hit && across_rows && have_row_above) {
                    // Across-rows fallback: try the reference patch
                    // directly above.
                    float d = matcher.referenceDistance(x, y, x, y_above);
                    ++candidates;
                    if (d < reuse_bound) {
                        hit = true;
                        vert_hit = true;
                        candidates += matcher.searchReuseDown(
                            x, y, row_above[xi], current);
                    }
                }
                if (!hit)
                    candidates += matcher.search(x, y, current);
            }
            if (stage == Stage::HardThreshold) {
                ++mr.bm1Refs;
                mr.bm1Hits += hit ? 1 : 0;
                mr.bm1VertHits += vert_hit ? 1 : 0;
                mr.bm1Candidates += candidates;
            } else {
                ++mr.bm2Refs;
                mr.bm2Hits += hit ? 1 : 0;
                mr.bm2VertHits += vert_hit ? 1 : 0;
                mr.bm2Candidates += candidates;
            }
            engine.processStack(current, agg);
            previous = current;
            have_previous = true;
            prev_x = x;
            if (across_rows)
                row_above[xi] = current;
        }
        if (across_rows)
            have_row_above = true;
    }
    profile.mr() += mr;

    // Block-matching op accounting: each candidate distance costs
    // PD^2 subtract + multiply + add (Eq. 2).
    OpCounters ops;
    const uint64_t pp =
        static_cast<uint64_t>(cfg.patchSize) * cfg.patchSize;
    const uint64_t cand = stage == Stage::HardThreshold
                              ? mr.bm1Candidates
                              : mr.bm2Candidates;
    ops.additions += cand * pp * 2;
    ops.multiplies += cand * pp;
    ops.memoryReads += cand * pp * 2;
    profile.addOps(bm_step, ops);
}

template <typename Domain>
image::ImageF
runStageWithDomain(const Bm3dConfig &cfg, Stage stage, const Domain &domain,
                   const image::ImageF &noisy, const image::ImageF *basic,
                   const DctPatchField *field, Profile &profile)
{
    BlockMatcher<Domain> matcher(
        domain, cfg.searchWindow(stage), cfg.searchStride, cfg.refStride,
        cfg.tauMatch(stage), cfg.maxMatches, cfg.boundedDistance);

    const std::vector<int> xs =
        makeRefPositions(domain.positionsX() - 1, cfg.refStride);
    const std::vector<int> ys =
        makeRefPositions(domain.positionsY() - 1, cfg.refStride);

    const int threads =
        std::min<int>(cfg.numThreads, static_cast<int>(ys.size()));

    Aggregator total(noisy.width(), noisy.height(), noisy.channels());
    if (threads <= 1) {
        DenoiseEngine engine(cfg, stage, noisy, basic, field, &profile);
        processRows(cfg, stage, matcher, xs, ys, 0, ys.size(), engine,
                    total, profile);
    } else {
        std::mutex merge_mutex;
        std::vector<std::thread> pool;
        const size_t rows = ys.size();
        for (int t = 0; t < threads; ++t) {
            const size_t begin = rows * t / threads;
            const size_t end = rows * (t + 1) / threads;
            pool.emplace_back([&, begin, end]() {
                Profile local_profile;
                Aggregator local_agg(noisy.width(), noisy.height(),
                                     noisy.channels());
                DenoiseEngine engine(cfg, stage, noisy, basic, field,
                                     &local_profile);
                processRows(cfg, stage, matcher, xs, ys, begin, end,
                            engine, local_agg, local_profile);
                std::lock_guard<std::mutex> lock(merge_mutex);
                total.merge(local_agg);
                profile += local_profile;
            });
        }
        for (auto &th : pool)
            th.join();
    }

    const image::ImageF &fallback = stage == Stage::Wiener ? *basic : noisy;
    return total.finalize(fallback);
}

} // namespace

std::vector<int>
makeRefPositions(int last_valid, int stride)
{
    std::vector<int> xs;
    for (int x = 0; x <= last_valid; x += stride)
        xs.push_back(x);
    if (xs.back() != last_valid)
        xs.push_back(last_valid);
    return xs;
}

Bm3d::Bm3d(Bm3dConfig config) : config_(std::move(config))
{
    config_.validate();
}

image::ImageF
Bm3d::runStage(Stage stage, const image::ImageF &noisy,
               const image::ImageF *basic, Profile &profile) const
{
    if (noisy.width() < config_.patchSize ||
        noisy.height() < config_.patchSize) {
        throw std::invalid_argument("Bm3d: image smaller than patch");
    }
    transforms::Dct2D dct(config_.patchSize);
    if (stage == Stage::HardThreshold) {
        // DCT1: transform every patch of the matching channel once
        // (Path A); the field also serves the denoiser via Path C.
        std::unique_ptr<DctPatchField> field;
        {
            ScopedTimer timer(profile, Step::Dct1);
            OpCounters ops;
            image::ImageF plane0 = noisy.extractPlane(0);
            field = std::make_unique<DctPatchField>(
                plane0, dct, config_.lambda2d * config_.sigma,
                config_.fixedPoint, &ops);
            profile.addOps(Step::Dct1, ops);
        }
        DctMatchDomain domain(*field);
        return runStageWithDomain(config_, stage, domain, noisy, basic,
                                  field.get(), profile);
    }
    // Wiener stage: matching runs in the color domain of the basic
    // estimate (Path B); no patch field is needed.
    if (basic == nullptr)
        throw std::invalid_argument("Wiener stage requires basic estimate");
    image::ImageF basic_plane0 = basic->extractPlane(0);
    ColorMatchDomain domain(basic_plane0, config_.patchSize);
    return runStageWithDomain(config_, stage, domain, noisy, basic, nullptr,
                              profile);
}

Bm3dResult
Bm3d::denoise(const image::ImageF &noisy) const
{
    Bm3dResult result;
    result.basic =
        runStage(Stage::HardThreshold, noisy, nullptr, result.profile);
    if (config_.enableWiener) {
        result.output = runStage(Stage::Wiener, noisy, &result.basic,
                                 result.profile);
    } else {
        result.output = result.basic;
    }
    return result;
}

} // namespace bm3d
} // namespace ideal
