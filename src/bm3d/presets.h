#ifndef IDEAL_BM3D_PRESETS_H_
#define IDEAL_BM3D_PRESETS_H_

/**
 * @file
 * Scene-adaptive speed/quality presets (DESIGN §11, mechanism 3).
 *
 * The paper's dataset splits into nature / street / texture content
 * classes whose matching behaviour differs enough to justify different
 * operating points: smooth self-similar content tolerates aggressive
 * search reduction (small windows, sparse reference grids) at no
 * visible cost, while busy texture needs the full dense scan to hold
 * quality. Each preset bundles the window sizes, match count,
 * precision, and Config::variant knobs calibrated against the
 * synthetic generators (src/image/synthetic.h) that stand in for the
 * paper's content classes.
 *
 * Preset selection is a cheap deterministic statistic over 4x4 block
 * means of the (noisy) input — block averaging pushes the sigma=25
 * noise floor well below the content signal, so the classifier reads
 * structure, not noise. classifyScene() is pure and unit-testable;
 * pickPreset() is the one-call convenience over an image.
 */

#include <string>

#include "bm3d/config.h"
#include "image/image.h"

namespace ideal {
namespace bm3d {

/** Content class a preset is tuned for (mirrors image::SceneKind). */
enum class ScenePreset {
    Nature,  ///< smooth, highly self-similar: aggressive reduction
    Street,  ///< piecewise-flat with sharp edges: moderate reduction
    Texture, ///< busy quasi-periodic detail: conservative, quality-first
};

/** Human-readable preset name ("nature", "street", "texture"). */
const char *toString(ScenePreset preset);

/** Parse a preset name; throws std::invalid_argument on unknown. */
ScenePreset presetFromString(const std::string &name);

/**
 * Noise-robust content statistics over 4x4 block means of plane 0.
 * Block averaging divides the per-pixel noise sigma by 4, so at the
 * calibrated sigma=25 the residual noise contributes < ~9 units to
 * edgeStrength while content edges contribute tens to hundreds.
 */
struct SceneStats
{
    /// Variance of the block means (flatness of the global layout).
    float blockVariance = 0.0f;
    /// Mean |difference| between horizontally/vertically adjacent
    /// block means (overall activity).
    float edgeStrength = 0.0f;
    /// Fraction of adjacent-block differences above 20 gray levels
    /// (density of genuine edges; noise alone stays near zero here).
    float edgeFraction = 0.0f;
};

/** Measure SceneStats on plane 0 of @p img (samples in [0, 255]). */
SceneStats measureSceneStats(const image::ImageF &img);

/** Map measured statistics to the preset tuned for that content. */
ScenePreset classifyScene(const SceneStats &stats);

/** measureSceneStats + classifyScene in one call. */
ScenePreset pickPreset(const image::ImageF &img);

/**
 * Apply @p preset's operating point on top of @p base: search windows,
 * match count, matching precision, and the Config::variant knobs.
 * Sigma, thresholds, threading, and the other base parameters are kept.
 * Presets that enable coarseToFine also disable MR (validate() rejects
 * the combination); Int16 is only selected when the base patch size
 * supports it.
 */
Bm3dConfig applyPreset(Bm3dConfig base, ScenePreset preset);

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_PRESETS_H_
