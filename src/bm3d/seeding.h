#ifndef IDEAL_BM3D_SEEDING_H_
#define IDEAL_BM3D_SEEDING_H_

/**
 * @file
 * Temporal match seeding for the streaming runtime: frame t's BM1
 * search is seeded with frame t-1's match lists, the per-frame
 * analogue of Matches Reuse (paper Sec. 5.1) extended along the time
 * axis the way the V-BM3D predictive matcher (src/bm3d/video.cc)
 * tracks patches across frames. The MR check carries over unchanged:
 * a reference reuses the previous *frame's* matches at the same grid
 * cell when its descriptor moved less than K * Tmatch between frames —
 * static content then pays a small re-verification window instead of
 * the full Ns x Ns scan.
 *
 * The stores are plain persistent vectors sized to the reference grid;
 * a streaming run ping-pongs two of them (read t-1 / write t), so the
 * steady state allocates nothing.
 */

#include <atomic>
#include <cstdint>
#include <vector>

namespace ideal {
namespace bm3d {

/** One remembered match position (patch top-left, grid-clamped). */
struct SeedPos
{
    uint16_t x = 0;
    uint16_t y = 0;
};

/**
 * Per-reference-cell match memory of one frame: for every reference
 * grid cell (xi, yi), up to @p capacity match positions, plus the
 * reference patch's own matching-domain descriptor (the thresholded
 * DCT coefficients) against which the next frame runs the MR-style
 * closeness check — keeping the previous frame's whole DctPatchField
 * alive just for that check would pin an extra ~pos*coefs buffer.
 */
class SeedStore
{
  public:
    /** (Re)size for an nx x ny reference grid; clears all counts. */
    void
    reset(int nx, int ny, int coefs, int capacity)
    {
        nx_ = nx;
        ny_ = ny;
        coefs_ = coefs;
        capacity_ = capacity;
        const size_t cells = static_cast<size_t>(nx) * ny;
        pos.resize(cells * capacity);
        count.assign(cells, 0);
        refDesc.resize(cells * coefs);
    }

    bool
    matches(int nx, int ny, int coefs, int capacity) const
    {
        return nx_ == nx && ny_ == ny && coefs_ == coefs &&
               capacity_ == capacity;
    }

    int nx() const { return nx_; }
    int ny() const { return ny_; }
    int coefs() const { return coefs_; }
    int capacity() const { return capacity_; }

    const SeedPos *
    cell(size_t idx) const
    {
        return pos.data() + idx * capacity_;
    }

    std::vector<SeedPos> pos;   ///< cells x capacity match positions
    std::vector<uint8_t> count; ///< valid entries per cell
    std::vector<float> refDesc; ///< cells x coefs reference descriptors

  private:
    int nx_ = 0;
    int ny_ = 0;
    int coefs_ = 0;
    int capacity_ = 0;
};

/**
 * Seeding I/O of one streamed frame, passed into the stage-1 runner
 * via StageOptions: read the previous frame's store (null for the
 * first frame), write the current frame's. Reads and writes index the
 * same deterministic reference grid, and every cell is written by
 * exactly one tile, so parallel tiles never contend. The counters are
 * relaxed atomics accumulated once per tile.
 */
struct TemporalSeed
{
    const SeedStore *previous = nullptr; ///< frame t-1 (read-only)
    SeedStore *current = nullptr;        ///< frame t (written per ref)

    /// Accept the temporal reuse when the descriptor distance between
    /// the frames is below this (seedK * tauMatch1, like MR's K).
    float reuseBound = 0.0f;

    /// Odd re-verification window (<= searchWindow1) scanned around
    /// the reference even on a seed hit, so small motion is re-found.
    int window = 9;

    std::atomic<uint64_t> refs{0}; ///< refs where seeding was tried
    std::atomic<uint64_t> hits{0}; ///< refs served by seeded search
};

} // namespace bm3d
} // namespace ideal

#endif // IDEAL_BM3D_SEEDING_H_
