#ifndef IDEAL_RUNTIME_STREAM_H_
#define IDEAL_RUNTIME_STREAM_H_

/**
 * @file
 * Streaming frame-pipeline runtime (DESIGN §9): a StreamDenoiser owns
 * the use of the global thread pool and pipelines consecutive video
 * frames through BM3D with
 *
 *  - a bounded, in-order submit()/collect() frame queue (submit blocks
 *    when queueDepth frames are waiting: backpressure toward the
 *    producer);
 *  - a DCT1 prepass thread that computes frame t+1's patch field while
 *    the driver thread runs frame t's matching/denoising stages
 *    (cross-frame stage overlap, visible as "stream.prepass" /
 *    "stream.frame" spans in the Chrome trace);
 *  - one BufferArena recycling every large per-frame buffer, so the
 *    steady state performs no heap allocation (proven by the
 *    arena.bytesNew counter staying flat from frame 3 on);
 *  - optional temporal match seeding (StreamConfig::temporalSeed):
 *    frame t's BM1 reuses frame t-1's per-cell match lists behind an
 *    MR-style descriptor check, scanning a small re-verification
 *    window instead of the full Ns x Ns search.
 *
 * With temporalSeed off, a streamed clip is bitwise identical to
 * running Bm3d::denoise() per frame — for every SIMD level and thread
 * count (the per-frame pipeline underneath is unchanged; the arena
 * only changes where buffers live).
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bm3d/bm3d.h"
#include "bm3d/patchfield.h"
#include "bm3d/profile.h"
#include "bm3d/seeding.h"
#include "image/image.h"
#include "runtime/arena.h"
#include "transforms/dct.h"

namespace ideal {
namespace runtime {

/** Configuration of a streaming run. */
struct StreamConfig
{
    /// Per-frame BM3D configuration (threads, stages, MR, ...).
    bm3d::Bm3dConfig frame;

    /// Maximum frames waiting in the input queue before submit()
    /// blocks. (The prepass and driver hold up to one frame each on
    /// top of this.)
    int queueDepth = 3;

    /// Seed frame t's BM1 with frame t-1's match lists. Changes which
    /// candidates BM1 scores (quality-neutral within ~0.05 dB on
    /// static content); off keeps streamed output bitwise equal to
    /// the per-frame batch path.
    bool temporalSeed = false;

    /// Strictness of the temporal reuse check, as a fraction of
    /// tauMatch1 (the MR K factor applied across time).
    double seedK = 0.25;

    /// Odd re-verification window (<= searchWindow1) scanned around
    /// each seeded reference.
    int seedWindow = 9;

    /** Validate invariants; throws std::invalid_argument on error. */
    void validate() const;
};

/** Aggregate statistics of a finished (or running) stream. */
struct StreamStats
{
    uint64_t frames = 0;    ///< frames fully processed
    double wallSeconds = 0; ///< first submit() to last frame done

    /// Per-frame latency (submit() to output ready), in frame order.
    std::vector<double> latenciesMs;

    uint64_t arenaHits = 0;     ///< arena requests served by recycling
    uint64_t arenaMisses = 0;   ///< arena requests that allocated
    uint64_t arenaBytesNew = 0; ///< total fresh heap bytes via arena
    /// Fresh heap bytes allocated via the arena after the 2nd frame
    /// completed — 0 in the malloc-free steady state.
    uint64_t arenaBytesNewSteady = 0;

    uint64_t seedRefs = 0; ///< references where seeding was attempted
    uint64_t seedHits = 0; ///< references served by the seeded search

    bm3d::Profile profile; ///< per-step accounting, frames merged in order
};

/**
 * Pipelined video denoiser over the per-frame Bm3d engine.
 *
 * Threading model: submit()/collect() are called by the user (from one
 * or more threads); internally one prepass thread computes DCT1 fields
 * and one driver thread runs the BM3D stages (the driver is the only
 * thread that dispatches to the global ThreadPool, so nested-run
 * restrictions never trigger). Frames come out of collect() in submit
 * order.
 *
 * Lifecycle: submit each frame, call finish(), collect every output
 * (collect may also be called concurrently with submission — the
 * output queue is unbounded, so a submit-all-then-collect-all pattern
 * cannot deadlock). A further collect() after the last output throws
 * std::logic_error; submit() after finish() throws std::logic_error.
 * Errors raised inside the pipeline re-throw from submit()/collect().
 */
class StreamDenoiser
{
  public:
    /** @throws std::invalid_argument when the config is inconsistent */
    explicit StreamDenoiser(StreamConfig config);

    /** Implies finish(); uncollected outputs are discarded. */
    ~StreamDenoiser();

    StreamDenoiser(const StreamDenoiser &) = delete;
    StreamDenoiser &operator=(const StreamDenoiser &) = delete;

    /**
     * Enqueue a frame (blocks while queueDepth frames are waiting).
     * Every frame must share the first frame's shape.
     */
    void submit(image::ImageF frame);

    /** Dequeue the next output, in submit order (blocks until ready). */
    image::ImageF collect();

    /** Close the input and wait for in-flight frames; idempotent. */
    void finish();

    /**
     * Donate a collected output's storage back to the arena, closing
     * the recycling loop (the next output draws from it).
     */
    void
    recycle(image::ImageF &&frame)
    {
        arena_.release(frame.takeStorage());
    }

    const StreamConfig &config() const { return config_; }
    BufferArena &arena() { return arena_; }

    /** Snapshot of the stream statistics (complete after finish()). */
    StreamStats stats() const;

  private:
    /// A submitted frame plus its enqueue time (latency starts here).
    struct InputItem
    {
        image::ImageF frame;
        std::chrono::steady_clock::time_point enqueued;
    };

    /**
     * Persistent prepass workspace: the matching plane copy and the
     * DCT1 field of one in-flight frame. Two slots ping-pong between
     * the prepass (building t+1) and the driver (matching t), and
     * their arena-backed storage is ensured in place, so from frame 3
     * on the prepass allocates nothing.
     */
    struct FieldSlot
    {
        image::ImageF plane0;
        bm3d::DctPatchField field;
        bm3d::Profile prepassProfile;
    };

    /// A frame whose DCT1 field is ready for the driver.
    struct MidItem
    {
        image::ImageF frame;
        FieldSlot *slot = nullptr;
        std::chrono::steady_clock::time_point enqueued;
    };

    void prepassMain();
    void driverMain();
    void processFrame(MidItem item);
    void fail(std::exception_ptr error);

    StreamConfig config_;
    bm3d::Bm3d bm3d_;
    transforms::Dct2D dct_;
    float tht_; ///< DCT1 hard threshold (lambda2d * sigma)
    BufferArena arena_;

    static constexpr int kSlots = 2; ///< prepass + driver, ping-pong
    std::vector<std::unique_ptr<FieldSlot>> slots_;

    /// One mutex + one cv guard every queue and flag below: state
    /// changes are per-frame, so contention is negligible, and a
    /// single notify_all after each transition keeps the protocol
    /// obviously deadlock-free (every waiter re-checks its predicate).
    mutable std::mutex mutex_;
    std::condition_variable cv_;

    std::deque<InputItem> inputQueue_;       ///< bounded by queueDepth
    std::deque<MidItem> midQueue_;           ///< bounded to 1
    std::vector<FieldSlot *> freeSlots_;
    std::deque<image::ImageF> outputQueue_;  ///< unbounded, see class doc
    bool inputClosed_ = false;
    bool prepassDone_ = false; ///< prepass drained its side of the queue
    bool outputClosed_ = false;
    std::exception_ptr error_;

    // Stream-lifetime state below is written by the driver (and
    // submit() for shape/t0) under mutex_.
    int width_ = 0, height_ = 0, channels_ = 0; ///< 0 until first frame
    bool haveT0_ = false;
    std::chrono::steady_clock::time_point t0_;
    std::chrono::steady_clock::time_point lastDone_;
    uint64_t framesDone_ = 0;
    uint64_t steadyBaseline_ = 0; ///< arena bytesNew after 2nd frame
    std::vector<double> latenciesMs_;
    uint64_t seedRefs_ = 0;
    uint64_t seedHits_ = 0;
    bm3d::Profile profile_;

    // Driver-thread-only seeding state (no locking needed).
    bm3d::SeedStore seedStores_[2]; ///< ping-pong: read t-1, write t
    uint64_t frameIndex_ = 0;

    std::thread prepass_;
    std::thread driver_;
    bool joined_ = false;
};

} // namespace runtime
} // namespace ideal

#endif // IDEAL_RUNTIME_STREAM_H_
