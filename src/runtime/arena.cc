#include "runtime/arena.h"

#include "obs/metrics.h"

namespace ideal {
namespace runtime {

bool
BufferArena::takeFreeLocked(size_t count, std::vector<float> *out)
{
    auto it = free_.lower_bound(count);
    if (it == free_.end() || it->first > count * kSlackFactor)
        return false;
    *out = std::move(it->second);
    free_.erase(it);
    return true;
}

void
BufferArena::ensure(std::vector<float> &buf, size_t count)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    if (buf.capacity() >= count) {
        // Warm path: the component's own storage already fits. resize
        // within capacity never reallocates.
        buf.resize(count);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
        }
        reg.add("arena.hit", 1.0);
        return;
    }

    std::vector<float> recycled;
    bool hit = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hit = takeFreeLocked(count, &recycled);
        if (hit)
            ++stats_.hits;
        else {
            ++stats_.misses;
            stats_.bytesNew += count * sizeof(float);
        }
        if (buf.capacity() > 0) {
            free_.emplace(buf.capacity(), std::move(buf));
            buf = std::vector<float>();
        }
    }
    if (hit) {
        recycled.resize(count);
        buf = std::move(recycled);
        reg.add("arena.hit", 1.0);
        return;
    }
    buf.assign(count, 0.0f);
    reg.add("arena.miss", 1.0);
    reg.add("arena.bytesNew",
            static_cast<double>(count * sizeof(float)));
    // Fresh heap bytes enter the process-wide resident-footprint
    // ledger; recycled buffers were charged when first allocated and
    // stay resident while they sit in the free list, so hits and
    // releases are ledger-neutral.
    obs::chargeResidentBytes(
        static_cast<int64_t>(count * sizeof(float)));
}

void
BufferArena::release(std::vector<float> &&buf)
{
    if (buf.capacity() == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    free_.emplace(buf.capacity(), std::move(buf));
}

BufferArena::Stats
BufferArena::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s = stats_;
    s.freeBuffers = free_.size();
    return s;
}

void
BufferArena::trim()
{
    int64_t freed = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[cap, buf] : free_)
            freed += static_cast<int64_t>(buf.capacity()) *
                     static_cast<int64_t>(sizeof(float));
        free_.clear();
    }
    if (freed > 0)
        obs::chargeResidentBytes(-freed);
}

} // namespace runtime
} // namespace ideal
