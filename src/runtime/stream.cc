#include "runtime/stream.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ideal {
namespace runtime {

namespace {

/** Number of reference positions makeRefPositions() yields. */
int
refCount(int last_valid, int stride)
{
    int n = last_valid / stride + 1;
    if (last_valid % stride != 0)
        ++n;
    return n;
}

} // namespace

void
StreamConfig::validate() const
{
    frame.validate();
    if (queueDepth < 1)
        throw std::invalid_argument("StreamConfig: queueDepth must be >= 1");
    if (temporalSeed) {
        if (seedK <= 0.0 || seedK > 1.0)
            throw std::invalid_argument(
                "StreamConfig: seedK must be in (0, 1]");
        if (seedWindow < 1 || seedWindow % 2 == 0)
            throw std::invalid_argument(
                "StreamConfig: seedWindow must be odd and >= 1");
        if (seedWindow > frame.searchWindow1)
            throw std::invalid_argument(
                "StreamConfig: seedWindow exceeds searchWindow1");
    }
}

StreamDenoiser::StreamDenoiser(StreamConfig config)
    : config_(std::move(config)), bm3d_(config_.frame),
      dct_(config_.frame.patchSize),
      tht_(config_.frame.lambda2d * config_.frame.sigma)
{
    config_.validate();
    for (int i = 0; i < kSlots; ++i) {
        slots_.push_back(std::make_unique<FieldSlot>());
        freeSlots_.push_back(slots_.back().get());
    }
    prepass_ = std::thread(&StreamDenoiser::prepassMain, this);
    driver_ = std::thread(&StreamDenoiser::driverMain, this);
}

StreamDenoiser::~StreamDenoiser()
{
    try {
        finish();
    } catch (...) {
        // Errors already surfaced through submit()/collect(); the
        // destructor only has to reap the threads.
    }
}

void
StreamDenoiser::submit(image::ImageF frame)
{
    if (frame.width() < config_.frame.patchSize ||
        frame.height() < config_.frame.patchSize) {
        throw std::invalid_argument(
            "StreamDenoiser: frame smaller than patch");
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (error_)
        std::rethrow_exception(error_);
    if (inputClosed_)
        throw std::logic_error("StreamDenoiser: submit after finish");
    if (width_ == 0) {
        width_ = frame.width();
        height_ = frame.height();
        channels_ = frame.channels();
    } else if (frame.width() != width_ || frame.height() != height_ ||
               frame.channels() != channels_) {
        throw std::invalid_argument("StreamDenoiser: frame shape mismatch");
    }
    if (!haveT0_) {
        haveT0_ = true;
        t0_ = std::chrono::steady_clock::now();
    }
    cv_.wait(lock, [&] {
        return error_ ||
               inputQueue_.size() <
                   static_cast<size_t>(config_.queueDepth);
    });
    if (error_)
        std::rethrow_exception(error_);
    inputQueue_.push_back(
        InputItem{std::move(frame), std::chrono::steady_clock::now()});
    cv_.notify_all();
}

image::ImageF
StreamDenoiser::collect()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
        return !outputQueue_.empty() || error_ || outputClosed_;
    });
    if (!outputQueue_.empty()) {
        image::ImageF out = std::move(outputQueue_.front());
        outputQueue_.pop_front();
        return out;
    }
    if (error_)
        std::rethrow_exception(error_);
    throw std::logic_error("StreamDenoiser: collect on drained stream");
}

void
StreamDenoiser::finish()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inputClosed_ = true;
        cv_.notify_all();
    }
    if (!joined_) {
        joined_ = true;
        if (prepass_.joinable())
            prepass_.join();
        if (driver_.joinable())
            driver_.join();
    }
}

StreamStats
StreamDenoiser::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StreamStats s;
    s.frames = framesDone_;
    s.latenciesMs = latenciesMs_;
    if (haveT0_ && framesDone_ > 0)
        s.wallSeconds =
            std::chrono::duration<double>(lastDone_ - t0_).count();
    const BufferArena::Stats a = arena_.stats();
    s.arenaHits = a.hits;
    s.arenaMisses = a.misses;
    s.arenaBytesNew = a.bytesNew;
    s.arenaBytesNewSteady =
        framesDone_ >= 2 ? a.bytesNew - steadyBaseline_ : 0;
    s.seedRefs = seedRefs_;
    s.seedHits = seedHits_;
    s.profile = profile_;
    return s;
}

void
StreamDenoiser::fail(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_)
        error_ = error;
    cv_.notify_all();
}

void
StreamDenoiser::prepassMain()
{
    try {
        while (true) {
            InputItem item;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return error_ || !inputQueue_.empty() || inputClosed_;
                });
                if (error_)
                    return;
                if (inputQueue_.empty())
                    break; // input closed and drained
                item = std::move(inputQueue_.front());
                inputQueue_.pop_front();
                cv_.notify_all(); // free a submit() slot
            }
            FieldSlot *slot = nullptr;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [&] { return error_ || !freeSlots_.empty(); });
                if (error_)
                    return;
                slot = freeSlots_.back();
                freeSlots_.pop_back();
            }
            {
                // DCT1 of frame t+1 overlaps the driver's stage work
                // on frame t ("stream.prepass" span next to
                // "stream.frame" in the trace). The plane copy and
                // field storage are ensured in place, so a warm slot
                // allocates nothing.
                obs::Span span("stream.prepass", "stream");
                slot->prepassProfile = bm3d::Profile();
                bm3d::ScopedTimer timer(slot->prepassProfile,
                                        bm3d::Step::Dct1);
                if (slot->plane0.width() != item.frame.width() ||
                    slot->plane0.height() != item.frame.height()) {
                    slot->plane0 = image::ImageF(item.frame.width(),
                                                 item.frame.height(), 1);
                }
                std::copy(item.frame.plane(0),
                          item.frame.plane(0) + item.frame.planeSize(),
                          slot->plane0.plane(0));
                slot->field.prepare(item.frame.width(),
                                    item.frame.height(), dct_, &arena_);
                const uint64_t patches = slot->field.fillRows(
                    slot->plane0, dct_, tht_, config_.frame.fixedPoint, 0,
                    slot->field.positionsY());
                if (config_.frame.precision == bm3d::Precision::Int16) {
                    // Quantized matching planes alongside the float
                    // field, so the stage below can pick the int16 SSD
                    // datapath off the same slot.
                    slot->field.prepareI16();
                    slot->field.fillRowsI16(slot->plane0, dct_, tht_, 0,
                                            slot->field.positionsY());
                }
                bm3d::OpCounters ops;
                bm3d::DctPatchField::countOps(
                    patches, config_.frame.patchSize, tht_ > 0.0f, &ops);
                slot->prepassProfile.addOps(bm3d::Step::Dct1, ops);
            }
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [&] { return error_ || midQueue_.empty(); });
                if (error_) {
                    freeSlots_.push_back(slot);
                    cv_.notify_all();
                    return;
                }
                midQueue_.push_back(MidItem{std::move(item.frame), slot,
                                            item.enqueued});
                cv_.notify_all();
            }
        }
        std::lock_guard<std::mutex> lock(mutex_);
        prepassDone_ = true;
        cv_.notify_all();
    } catch (...) {
        fail(std::current_exception());
    }
}

void
StreamDenoiser::driverMain()
{
    try {
        while (true) {
            MidItem item;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return error_ || !midQueue_.empty() || prepassDone_;
                });
                if (error_)
                    break;
                if (midQueue_.empty())
                    break; // prepass finished and queue drained
                item = std::move(midQueue_.front());
                midQueue_.pop_front();
                cv_.notify_all(); // free the mid slot for the prepass
            }
            processFrame(std::move(item));
        }
    } catch (...) {
        fail(std::current_exception());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    outputClosed_ = true;
    cv_.notify_all();
    // Stream-scope counters for bench records / bench_diff.py gates.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.add("stream.frames", static_cast<double>(framesDone_));
    const uint64_t steady = framesDone_ >= 2
                                ? arena_.stats().bytesNew - steadyBaseline_
                                : 0;
    reg.add("arena.bytesNewSteady", static_cast<double>(steady));
}

void
StreamDenoiser::processFrame(MidItem item)
{
    obs::Span frame_span("stream.frame", "stream", "index",
                         static_cast<double>(frameIndex_));
    bm3d::Profile frame_profile;
    // Merge the prepass accounting before the slot can be recycled.
    frame_profile += item.slot->prepassProfile;

    bm3d::StageOptions s1;
    s1.field = &item.slot->field;
    s1.arena = &arena_;
    bm3d::TemporalSeed seed;
    if (config_.temporalSeed) {
        const bm3d::DctPatchField &f = item.slot->field;
        const int nx =
            refCount(f.positionsX() - 1, config_.frame.refStride);
        const int ny =
            refCount(f.positionsY() - 1, config_.frame.refStride);
        bm3d::SeedStore &cur = seedStores_[frameIndex_ % 2];
        bm3d::SeedStore &prev = seedStores_[(frameIndex_ + 1) % 2];
        cur.reset(nx, ny, f.coefs(), config_.frame.maxMatches);
        seed.current = &cur;
        seed.previous = (frameIndex_ > 0 &&
                         prev.matches(nx, ny, f.coefs(),
                                      config_.frame.maxMatches))
                            ? &prev
                            : nullptr;
        seed.reuseBound = static_cast<float>(config_.seedK) *
                          config_.frame.tauMatch1;
        seed.window =
            std::min(config_.seedWindow, config_.frame.searchWindow1);
        s1.seed = &seed;
    }

    image::ImageF basic = bm3d_.runStage(
        bm3d::Stage::HardThreshold, item.frame, nullptr, frame_profile,
        s1);
    {
        // The field is consumed; hand the slot back so the prepass can
        // start on the frame after next.
        std::lock_guard<std::mutex> lock(mutex_);
        freeSlots_.push_back(item.slot);
        cv_.notify_all();
    }

    image::ImageF output;
    if (config_.frame.enableWiener) {
        bm3d::StageOptions s2;
        s2.arena = &arena_;
        output = bm3d_.runStage(bm3d::Stage::Wiener, item.frame, &basic,
                                frame_profile, s2);
        arena_.release(basic.takeStorage());
    } else {
        output = std::move(basic);
    }
    // The input's storage feeds the next frame's output acquire — the
    // heart of the recycling loop.
    arena_.release(item.frame.takeStorage());

    const auto now = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        profile_ += frame_profile;
        latenciesMs_.push_back(
            std::chrono::duration<double, std::milli>(now - item.enqueued)
                .count());
        if (config_.temporalSeed) {
            seedRefs_ += seed.refs.load(std::memory_order_relaxed);
            seedHits_ += seed.hits.load(std::memory_order_relaxed);
        }
        ++framesDone_;
        // From here on the arena must not allocate: remember the
        // baseline the steady-state counter is measured against.
        if (framesDone_ == 2)
            steadyBaseline_ = arena_.stats().bytesNew;
        lastDone_ = now;
        outputQueue_.push_back(std::move(output));
        cv_.notify_all();
    }
    ++frameIndex_;
}

} // namespace runtime
} // namespace ideal
