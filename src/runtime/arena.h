#ifndef IDEAL_RUNTIME_ARENA_H_
#define IDEAL_RUNTIME_ARENA_H_

/**
 * @file
 * Pooled float-buffer arena for the streaming runtime: every large
 * per-frame allocation of the denoising pipeline (output planes,
 * DctPatchField coefficient planes, TileDctField worker caches, the
 * full-frame aggregator) is routed through one BufferArena so that
 * processing frame t+1 reuses the storage frame t just released and
 * the steady state performs no heap allocation at all.
 *
 * The arena publishes its traffic to obs::MetricsRegistry
 * ("arena.hit" / "arena.miss" / "arena.bytesNew"), which is what lets
 * a bench record — and bench_diff.py --ops-tolerance — *prove* the
 * malloc-free steady state instead of asserting it in prose.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace ideal {
namespace runtime {

/**
 * A mutex-protected recycling pool of float vectors.
 *
 * Two usage patterns, both counted:
 *
 *  - ensure(buf, n): persistent buffers (a component keeps its vector
 *    across frames). When the capacity already fits, the call is a pure
 *    hit and never touches the free list — the deterministic fast path
 *    of every warm stream. Otherwise the old storage is surrendered to
 *    the free list and a recycled (hit) or fresh (miss) buffer replaces
 *    it.
 *  - release(buf) / acquire(n): transient buffers whose owner dies
 *    between frames (output images, the total aggregator). release
 *    donates capacity; acquire takes the smallest free buffer with
 *    capacity in [n, kSlackFactor * n] — the slack cap keeps size
 *    classes segregated, so a small request can never starve a huge
 *    patch-field class — or allocates on miss.
 *
 * Thread-safe; the streaming runtime calls it from the prepass and
 * driver threads concurrently (their buffer size classes are disjoint,
 * which keeps the hit/miss totals deterministic — see DESIGN §9).
 */
class BufferArena
{
  public:
    BufferArena() = default;
    BufferArena(const BufferArena &) = delete;
    BufferArena &operator=(const BufferArena &) = delete;

    /** Cumulative traffic counters (monotonic). */
    struct Stats
    {
        uint64_t hits = 0;     ///< requests served without allocating
        uint64_t misses = 0;   ///< requests that had to allocate
        uint64_t bytesNew = 0; ///< bytes of fresh heap allocation
        uint64_t freeBuffers = 0; ///< buffers currently in the free list
    };

    /**
     * Make @p buf hold exactly @p count elements, recycling capacity:
     * existing capacity > free-list buffer > fresh allocation (miss).
     * Contents are unspecified after the call.
     */
    void ensure(std::vector<float> &buf, size_t count);

    /** A recycled-or-fresh buffer of exactly @p count elements. */
    std::vector<float>
    acquire(size_t count)
    {
        std::vector<float> buf;
        ensure(buf, count);
        return buf;
    }

    /** Donate @p buf's storage to the free list (no-op if empty). */
    void release(std::vector<float> &&buf);

    Stats stats() const;

    /** Drop all free buffers (tests; steady streams never need it). */
    void trim();

  private:
    /// Free buffers larger than kSlackFactor * request are not reused
    /// for it: bounded internal fragmentation, segregated size classes.
    static constexpr size_t kSlackFactor = 4;

    /// Take a free buffer with capacity in [count, kSlackFactor*count];
    /// returns false when none qualifies. Caller holds mutex_.
    bool takeFreeLocked(size_t count, std::vector<float> *out);

    mutable std::mutex mutex_;
    std::multimap<size_t, std::vector<float>> free_; ///< by capacity
    Stats stats_;
};

} // namespace runtime
} // namespace ideal

#endif // IDEAL_RUNTIME_ARENA_H_
