#ifndef IDEAL_SERVICE_SERVICE_H_
#define IDEAL_SERVICE_SERVICE_H_

/**
 * @file
 * Multi-tenant denoise service (DESIGN §13): a DenoiseService
 * multiplexes N independent tenant sessions over the single shared
 * work-stealing pool.
 *
 *  - Each session owns a StreamConfig (per-frame BM3D configuration +
 *    bounded queue depth + temporal seeding knobs), a priority class,
 *    a weighted-fair share, and a *private* BufferArena — tenants
 *    never exchange storage, and each tenant's steady state stays
 *    malloc-free exactly as a solo StreamDenoiser's does.
 *
 *  - Admission control is two-level: a per-session bounded input
 *    queue (StreamConfig::queueDepth) plus a shared queued-frame
 *    budget with priority-tiered thresholds — Low-priority tenants
 *    may fill at most half the shared budget, Normal three quarters,
 *    High all of it. A submit that hits either bound blocks
 *    (AdmissionPolicy::Block) or is rejected and counted
 *    (AdmissionPolicy::Reject), per session. Rejecting low before
 *    high ever misses its queue bound is the service's overload
 *    contract (tested in tests/test_service.cc).
 *
 *  - Scheduling is weighted fair queueing over the ready sessions:
 *    the scheduler always dispatches the session with the smallest
 *    virtual time, advancing it by framePixels / effectiveWeight with
 *    effectiveWeight = weight * 4^priority. Decisions depend only on
 *    queue contents — a pre-filled (paused) workload replays an
 *    identical schedule, which is what makes the admission counters
 *    and dispatch order byte-for-byte reproducible in CI.
 *
 *  - Large frames are sharded across the pool via the existing
 *    deterministic tile grid: a frame of at least
 *    ServiceConfig::shardPixels pixels runs at shardThreads workers
 *    instead of the session's own numThreads. The tile grid depends
 *    only on the image size, never the worker count, so sharding (or
 *    any scheduling decision) can never change a tenant's output.
 *
 * Determinism contract: per-session output is bitwise identical to a
 * solo runtime::StreamDenoiser run of the same StreamConfig over the
 * same admitted frames — for every SIMD level, thread count, and
 * precision. The service layer may reorder *scheduling*, never
 * *arithmetic*: frames of one session are processed sequentially in
 * submit order with the session's own engine, seed stores, and arena.
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "image/image.h"
#include "runtime/stream.h"

namespace ideal {
namespace service {

/**
 * Priority class of a session. Affects the admission tier (share of
 * the global queued-frame budget the class may occupy) and the
 * weighted-fair share (effectiveWeight = weight * 4^priority).
 */
enum class Priority : int {
    Low = 0,
    Normal = 1,
    High = 2,
};

const char *toString(Priority priority);

/** What submit() does when a session hits an admission bound. */
enum class AdmissionPolicy {
    Block,  ///< wait until the frame is admissible (backpressure)
    Reject, ///< return false immediately and count the reject
};

/** Configuration of one tenant session. */
struct SessionConfig
{
    /// Tenant id: the metrics scope ("service.<name>.*") and the
    /// per-tenant row key in bench records. Must be unique and
    /// non-empty.
    std::string name;

    /// The solo-equivalent streaming configuration: per-frame BM3D
    /// config, bounded input queue depth, temporal seeding knobs.
    /// The service's determinism contract is stated against a solo
    /// StreamDenoiser constructed from exactly this value.
    runtime::StreamConfig stream;

    Priority priority = Priority::Normal;

    /// Weighted-fair share within (and across) priority classes;
    /// must be positive and finite.
    double weight = 1.0;

    AdmissionPolicy policy = AdmissionPolicy::Block;

    /** Validate invariants; throws std::invalid_argument on error. */
    void validate() const;
};

/**
 * Test-only fault injection: degrade exactly one tenant and prove the
 * others don't notice (graceful isolation; see tests/test_service.cc).
 */
struct FaultInjection
{
    enum class Kind {
        None,
        /// collect() on the faulted tenant sleeps stallMs (outside the
        /// service lock) before dequeuing — a slow consumer.
        StallCollect,
        /// The faulted tenant's outputs are discarded on completion
        /// (storage returns to its arena) — a dead consumer. collect()
        /// on it throws std::logic_error once the session drains.
        DropOutputs,
    };

    Kind kind = Kind::None;
    std::string tenant; ///< faulted session name (empty = none)
    int stallMs = 0;    ///< StallCollect sleep per collect() call
};

/** Configuration of the service. */
struct ServiceConfig
{
    /**
     * Frames of at least this many pixels (width * height) are
     * sharded across the shared pool at shardThreads workers via the
     * deterministic tile grid; smaller frames run at the session's
     * own numThreads. 0 shards everything.
     */
    size_t shardPixels = 512 * 512;

    /// Worker count for sharded frames; <= 0 selects the hardware
    /// thread count.
    int shardThreads = 0;

    /**
     * Global bound on frames queued across all sessions. Priority
     * tiers apply on top: Low may occupy budget/2, Normal 3*budget/4,
     * High the full budget — so under overload the low classes are
     * throttled (blocked or rejected) first.
     */
    int sharedBudgetFrames = 64;

    /// Start with the scheduler paused (resume() to run). A paused
    /// fill makes admission decisions and the dispatch order exactly
    /// reproducible — the deterministic test/CI harness mode.
    bool startPaused = false;

    /// Test-only fault injection (see FaultInjection).
    FaultInjection fault;

    /** Validate invariants; throws std::invalid_argument on error. */
    void validate() const;
};

/** Per-tenant statistics snapshot. */
struct TenantStats
{
    std::string name;
    uint64_t admitted = 0; ///< frames accepted by admission control
    uint64_t rejects = 0;  ///< frames refused (Reject policy)
    uint64_t frames = 0;   ///< frames fully processed
    uint64_t dropped = 0;  ///< outputs discarded by fault injection
    uint64_t queueHighWater = 0; ///< max input-queue occupancy seen

    /// Per-frame latency (admission to output ready), submit order.
    std::vector<double> latenciesMs;
    double wallSeconds = 0; ///< first admit to last frame done

    uint64_t arenaHits = 0;
    uint64_t arenaMisses = 0;
    uint64_t arenaBytesNew = 0;
    /// Fresh heap bytes via this tenant's arena after its 2nd frame
    /// completed — 0 in the malloc-free steady state.
    uint64_t arenaBytesNewSteady = 0;

    uint64_t seedRefs = 0;
    uint64_t seedHits = 0;

    bm3d::Profile profile; ///< per-step accounting, frames in order
};

/** Service-wide statistics snapshot. */
struct ServiceStats
{
    uint64_t frames = 0;  ///< frames processed across all tenants
    uint64_t rejects = 0; ///< admission rejects across all tenants
    double wallSeconds = 0; ///< first admit to last frame done

    /// Session ids in scheduling order — the observable weighted-fair
    /// decision sequence (deterministic for a pre-filled workload).
    std::vector<int> dispatchOrder;

    std::vector<TenantStats> tenants; ///< indexed by session id
};

/// Handle to an open session (index; stable for the service lifetime).
using SessionId = int;

/**
 * Multi-tenant streaming denoiser over the per-frame Bm3d engine.
 *
 * Threading model mirrors StreamDenoiser (DESIGN §9), generalized to
 * N sessions: submit()/collect() are called by tenants (any threads);
 * internally one *scheduler* thread picks the next admitted frame by
 * weighted fair queueing and computes its DCT1 prepass field, and one
 * *dispatcher* thread runs the BM3D stages — the dispatcher is the
 * only thread that dispatches to the global ThreadPool. Each tenant's
 * outputs come out of collect() in that tenant's submit order.
 *
 * Lifecycle: openSession() any time before finish(); submit frames;
 * closeSession() (optional, per tenant) or finish() (closes every
 * input, waits for in-flight frames, joins the threads; idempotent;
 * implies resume()). Outputs stay collectable after finish(). Errors
 * raised inside the pipeline re-throw from submit()/collect().
 */
class DenoiseService
{
  public:
    /** @throws std::invalid_argument when the config is inconsistent */
    explicit DenoiseService(ServiceConfig config = ServiceConfig());

    /** Implies finish(); uncollected outputs are discarded. */
    ~DenoiseService();

    DenoiseService(const DenoiseService &) = delete;
    DenoiseService &operator=(const DenoiseService &) = delete;

    /**
     * Open a tenant session.
     * @throws std::invalid_argument on bad config or duplicate name
     * @throws std::logic_error after finish()
     */
    SessionId openSession(SessionConfig config);

    /**
     * Enqueue a frame for @p id. Returns true when admitted. Under
     * AdmissionPolicy::Block an inadmissible frame waits (always
     * returns true); under Reject it returns false immediately and
     * the reject is counted. Every frame must share the session's
     * first frame's shape.
     */
    bool submit(SessionId id, image::ImageF frame);

    /**
     * Dequeue @p id's next output, in its submit order (blocks until
     * ready). @throws std::logic_error once the session has drained.
     */
    image::ImageF collect(SessionId id);

    /**
     * Donate a collected output's storage back to @p id's arena,
     * closing that tenant's recycling loop.
     */
    void recycle(SessionId id, image::ImageF &&frame);

    /** Close @p id's input; queued frames are still processed. */
    void closeSession(SessionId id);

    /** Stop dispatching new frames (admission still applies). */
    void pause();

    /** Resume dispatching. */
    void resume();

    /** Close every input and wait for in-flight frames; idempotent. */
    void finish();

    const ServiceConfig &config() const { return config_; }

    /** Snapshot of the service statistics (complete after finish()). */
    ServiceStats stats() const;

  private:
    struct Session;   // defined in service.cc
    struct FieldSlot; // defined in service.cc

    /// A frame whose DCT1 field is ready for the dispatcher.
    struct MidItem
    {
        Session *session = nullptr;
        image::ImageF frame;
        FieldSlot *slot = nullptr;
        std::chrono::steady_clock::time_point enqueued;
    };

    Session &sessionAt(SessionId id) const;
    int pickLocked() const;
    bool drainedLocked(const Session &session) const;
    void schedulerMain();
    void dispatcherMain();
    void prepassBuild(Session &session, FieldSlot &slot,
                      const image::ImageF &frame);
    void processFrame(MidItem item);
    void exportMetricsLocked();
    void fail(std::exception_ptr error);

    ServiceConfig config_;

    /// One mutex + one cv guard every queue, flag, and per-session
    /// counter (the StreamDenoiser protocol, N-session edition): state
    /// changes are per-frame, so contention is negligible, and one
    /// notify_all per transition keeps every wait predicate honest.
    mutable std::mutex mutex_;
    std::condition_variable cv_;

    std::vector<std::unique_ptr<Session>> sessions_;
    std::map<std::string, SessionId> byName_;

    std::deque<MidItem> midQueue_; ///< bounded to 1 (pipeline depth)
    size_t globalQueued_ = 0;      ///< frames admitted, not yet picked
    bool paused_ = false;
    bool closing_ = false;
    bool schedulerDone_ = false;
    bool outputClosed_ = false;
    std::exception_ptr error_;

    double virtualNow_ = 0.0; ///< vtime of the last dispatched frame
    std::vector<int> dispatchOrder_;
    uint64_t framesDone_ = 0;
    uint64_t rejectsTotal_ = 0;
    bool haveT0_ = false;
    std::chrono::steady_clock::time_point t0_;
    std::chrono::steady_clock::time_point lastDone_;

    std::thread scheduler_;
    std::thread dispatcher_;
    bool joined_ = false;
};

} // namespace service
} // namespace ideal

#endif // IDEAL_SERVICE_SERVICE_H_
