#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "bm3d/bm3d.h"
#include "bm3d/patchfield.h"
#include "bm3d/profile.h"
#include "bm3d/seeding.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/arena.h"
#include "transforms/dct.h"

namespace ideal {
namespace service {

namespace {

/** Number of reference positions makeRefPositions() yields. */
int
refCount(int last_valid, int stride)
{
    int n = last_valid / stride + 1;
    if (last_valid % stride != 0)
        ++n;
    return n;
}

/**
 * Frames a class may keep queued across the service: the priority
 * tiers of the shared budget. Low saturates first, then Normal, and
 * only High may fill the whole budget — so overload throttles the low
 * classes strictly before a high-priority queue bound is ever hit.
 */
int
classBudget(Priority priority, int budget)
{
    switch (priority) {
    case Priority::Low:
        return budget / 2;
    case Priority::Normal:
        return (budget * 3) / 4;
    case Priority::High:
        return budget;
    }
    return budget;
}

/** The session's frame config at the shard worker count. */
bm3d::Bm3dConfig
shardConfig(bm3d::Bm3dConfig frame, const ServiceConfig &service)
{
    frame.numThreads = std::max(0, service.shardThreads);
    return frame;
}

} // namespace

const char *
toString(Priority priority)
{
    switch (priority) {
    case Priority::Low:
        return "low";
    case Priority::Normal:
        return "normal";
    case Priority::High:
        return "high";
    }
    return "?";
}

void
SessionConfig::validate() const
{
    if (name.empty())
        throw std::invalid_argument(
            "SessionConfig: name must be non-empty");
    stream.validate();
    if (!(weight > 0.0) || !std::isfinite(weight))
        throw std::invalid_argument(
            "SessionConfig: weight must be positive and finite");
}

void
ServiceConfig::validate() const
{
    if (sharedBudgetFrames < 1)
        throw std::invalid_argument(
            "ServiceConfig: sharedBudgetFrames must be >= 1");
    if (fault.kind != FaultInjection::Kind::None && fault.tenant.empty())
        throw std::invalid_argument(
            "ServiceConfig: fault injection requires a tenant name");
    if (fault.stallMs < 0)
        throw std::invalid_argument(
            "ServiceConfig: fault stallMs must be >= 0");
}

/**
 * Persistent prepass workspace (the StreamDenoiser FieldSlot, one
 * ping-pong pair per session): the matching plane copy and the DCT1
 * field of one in-flight frame, arena-backed and ensured in place so a
 * warm slot allocates nothing.
 */
struct DenoiseService::FieldSlot
{
    image::ImageF plane0;
    bm3d::DctPatchField field;
    bm3d::Profile prepassProfile;
};

/**
 * One tenant: its configs, engines, arena, queues, seeding state, and
 * statistics. Everything mutable is guarded by the service mutex
 * except the engines/arena/seed stores, which are touched only by the
 * scheduler (prepass) and dispatcher (stages) in the strict per-frame
 * order the pipeline enforces.
 */
struct DenoiseService::Session
{
    Session(SessionConfig cfg, const ServiceConfig &service)
        : config(std::move(cfg)), engine(config.stream.frame),
          shardEngine(shardConfig(config.stream.frame, service)),
          dct(config.stream.frame.patchSize),
          tht(config.stream.frame.lambda2d * config.stream.frame.sigma),
          effectiveWeight(config.weight *
                          static_cast<double>(
                              1 << (2 * static_cast<int>(config.priority))))
    {
        for (int i = 0; i < kSlots; ++i) {
            slots.push_back(std::make_unique<FieldSlot>());
            freeSlots.push_back(slots.back().get());
        }
    }

    SessionConfig config;
    bm3d::Bm3d engine;      ///< solo-equivalent engine (session threads)
    bm3d::Bm3d shardEngine; ///< same frame config at shardThreads
    transforms::Dct2D dct;
    float tht; ///< DCT1 hard threshold (lambda2d * sigma)
    runtime::BufferArena arena;
    obs::MetricsRegistry metrics; ///< per-tenant scope, merged at exit

    /// effectiveWeight = weight * 4^priority: the WFQ share.
    double effectiveWeight;

    static constexpr int kSlots = 2; ///< scheduler + dispatcher, ping-pong
    std::vector<std::unique_ptr<FieldSlot>> slots;
    std::vector<FieldSlot *> freeSlots;

    /// A submitted frame plus its admission time (latency starts here).
    struct InputItem
    {
        image::ImageF frame;
        std::chrono::steady_clock::time_point enqueued;
    };

    std::deque<InputItem> inputQueue;       ///< bounded by queueDepth
    std::deque<image::ImageF> outputQueue;  ///< unbounded
    bool inputClosed = false;

    int width = 0, height = 0, channels = 0; ///< 0 until first admit
    double vtime = 0.0; ///< WFQ virtual finish time of this session
    uint64_t inFlight = 0; ///< picked by the scheduler, output pending

    uint64_t admitted = 0;
    uint64_t rejects = 0;
    uint64_t framesDone = 0;
    uint64_t dropped = 0;
    uint64_t queueHighWater = 0;
    std::vector<double> latenciesMs;
    bool haveT0 = false;
    std::chrono::steady_clock::time_point t0;
    std::chrono::steady_clock::time_point lastDone;
    uint64_t steadyBaseline = 0; ///< arena bytesNew after 2nd frame
    uint64_t seedRefs = 0;
    uint64_t seedHits = 0;
    bm3d::Profile profile;

    // Dispatcher-thread-only seeding state (no locking needed).
    bm3d::SeedStore seedStores[2]; ///< ping-pong: read t-1, write t
    uint64_t frameIndex = 0;
};

DenoiseService::DenoiseService(ServiceConfig config)
    : config_(std::move(config))
{
    config_.validate();
    paused_ = config_.startPaused;
    scheduler_ = std::thread(&DenoiseService::schedulerMain, this);
    dispatcher_ = std::thread(&DenoiseService::dispatcherMain, this);
}

DenoiseService::~DenoiseService()
{
    try {
        finish();
    } catch (...) {
        // Errors already surfaced through submit()/collect(); the
        // destructor only has to reap the threads.
    }
}

DenoiseService::Session &
DenoiseService::sessionAt(SessionId id) const
{
    if (id < 0 || static_cast<size_t>(id) >= sessions_.size())
        throw std::invalid_argument("DenoiseService: unknown session id");
    return *sessions_[static_cast<size_t>(id)];
}

SessionId
DenoiseService::openSession(SessionConfig config)
{
    config.validate();
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_)
        std::rethrow_exception(error_);
    if (closing_)
        throw std::logic_error("DenoiseService: openSession after finish");
    if (byName_.count(config.name))
        throw std::invalid_argument(
            "DenoiseService: duplicate tenant name: " + config.name);
    const SessionId id = static_cast<SessionId>(sessions_.size());
    sessions_.push_back(std::make_unique<Session>(std::move(config), config_));
    byName_[sessions_.back()->config.name] = id;
    return id;
}

bool
DenoiseService::submit(SessionId id, image::ImageF frame)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Session &s = sessionAt(id);
    if (error_)
        std::rethrow_exception(error_);
    if (closing_ || s.inputClosed)
        throw std::logic_error("DenoiseService: submit after close");
    if (frame.width() < s.config.stream.frame.patchSize ||
        frame.height() < s.config.stream.frame.patchSize)
        throw std::invalid_argument(
            "DenoiseService: frame smaller than patch");
    if (s.width != 0 &&
        (frame.width() != s.width || frame.height() != s.height ||
         frame.channels() != s.channels))
        throw std::invalid_argument("DenoiseService: frame shape mismatch");

    const int budget =
        classBudget(s.config.priority, config_.sharedBudgetFrames);
    auto admissible = [&] {
        return s.inputQueue.size() <
                   static_cast<size_t>(s.config.stream.queueDepth) &&
               globalQueued_ < static_cast<size_t>(budget);
    };
    if (s.config.policy == AdmissionPolicy::Reject) {
        if (!admissible()) {
            ++s.rejects;
            ++rejectsTotal_;
            return false;
        }
    } else {
        cv_.wait(lock, [&] {
            return error_ || closing_ || s.inputClosed || admissible();
        });
        if (error_)
            std::rethrow_exception(error_);
        if (closing_ || s.inputClosed)
            throw std::logic_error("DenoiseService: submit after close");
    }

    const auto now = std::chrono::steady_clock::now();
    if (!haveT0_) {
        haveT0_ = true;
        t0_ = now;
    }
    if (!s.haveT0) {
        s.haveT0 = true;
        s.t0 = now;
    }
    if (s.width == 0) {
        s.width = frame.width();
        s.height = frame.height();
        s.channels = frame.channels();
    }
    // WFQ catch-up: a session going idle must not bank virtual time —
    // its next frame starts no earlier than the schedule's present.
    if (s.inputQueue.empty() && s.inFlight == 0)
        s.vtime = std::max(s.vtime, virtualNow_);
    s.inputQueue.push_back(Session::InputItem{std::move(frame), now});
    ++globalQueued_;
    ++s.admitted;
    s.queueHighWater = std::max(
        s.queueHighWater, static_cast<uint64_t>(s.inputQueue.size()));
    cv_.notify_all();
    return true;
}

bool
DenoiseService::drainedLocked(const Session &s) const
{
    if (!s.outputQueue.empty())
        return false;
    if (outputClosed_)
        return true;
    return (s.inputClosed || closing_) && s.inputQueue.empty() &&
           s.inFlight == 0;
}

image::ImageF
DenoiseService::collect(SessionId id)
{
    bool stall = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const Session &s = sessionAt(id);
        stall = config_.fault.kind == FaultInjection::Kind::StallCollect &&
                config_.fault.tenant == s.config.name &&
                config_.fault.stallMs > 0;
    }
    if (stall)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.fault.stallMs));
    std::unique_lock<std::mutex> lock(mutex_);
    Session &s = sessionAt(id);
    cv_.wait(lock, [&] {
        return !s.outputQueue.empty() || error_ || drainedLocked(s);
    });
    if (!s.outputQueue.empty()) {
        image::ImageF out = std::move(s.outputQueue.front());
        s.outputQueue.pop_front();
        return out;
    }
    if (error_)
        std::rethrow_exception(error_);
    throw std::logic_error("DenoiseService: collect on drained session");
}

void
DenoiseService::recycle(SessionId id, image::ImageF &&frame)
{
    Session *s;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s = &sessionAt(id);
    }
    s->arena.release(frame.takeStorage());
}

void
DenoiseService::closeSession(SessionId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Session &s = sessionAt(id);
    s.inputClosed = true;
    cv_.notify_all();
}

void
DenoiseService::pause()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
    cv_.notify_all();
}

void
DenoiseService::resume()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    cv_.notify_all();
}

void
DenoiseService::finish()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closing_ = true;
        paused_ = false; // a paused service must still drain
        for (auto &s : sessions_)
            s->inputClosed = true;
        cv_.notify_all();
    }
    if (!joined_) {
        joined_ = true;
        if (scheduler_.joinable())
            scheduler_.join();
        if (dispatcher_.joinable())
            dispatcher_.join();
    }
}

ServiceStats
DenoiseService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServiceStats out;
    out.frames = framesDone_;
    out.rejects = rejectsTotal_;
    if (haveT0_ && framesDone_ > 0)
        out.wallSeconds =
            std::chrono::duration<double>(lastDone_ - t0_).count();
    out.dispatchOrder = dispatchOrder_;
    for (const auto &up : sessions_) {
        const Session &s = *up;
        TenantStats t;
        t.name = s.config.name;
        t.admitted = s.admitted;
        t.rejects = s.rejects;
        t.frames = s.framesDone;
        t.dropped = s.dropped;
        t.queueHighWater = s.queueHighWater;
        t.latenciesMs = s.latenciesMs;
        if (s.haveT0 && s.framesDone > 0)
            t.wallSeconds =
                std::chrono::duration<double>(s.lastDone - s.t0).count();
        const runtime::BufferArena::Stats a = s.arena.stats();
        t.arenaHits = a.hits;
        t.arenaMisses = a.misses;
        t.arenaBytesNew = a.bytesNew;
        t.arenaBytesNewSteady =
            s.framesDone >= 2 ? a.bytesNew - s.steadyBaseline : 0;
        t.seedRefs = s.seedRefs;
        t.seedHits = s.seedHits;
        t.profile = s.profile;
        out.tenants.push_back(std::move(t));
    }
    return out;
}

void
DenoiseService::fail(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_)
        error_ = error;
    cv_.notify_all();
}

int
DenoiseService::pickLocked() const
{
    // Weighted fair queueing: smallest virtual time wins; ties break
    // to the higher priority class, then the lower session id. The
    // decision reads only queue contents and per-session vtimes, so a
    // pre-filled workload replays the identical dispatch order.
    int best = -1;
    for (size_t i = 0; i < sessions_.size(); ++i) {
        const Session &s = *sessions_[i];
        if (s.inputQueue.empty())
            continue;
        if (best < 0) {
            best = static_cast<int>(i);
            continue;
        }
        const Session &b = *sessions_[static_cast<size_t>(best)];
        if (s.vtime < b.vtime ||
            (s.vtime == b.vtime &&
             static_cast<int>(s.config.priority) >
                 static_cast<int>(b.config.priority)))
            best = static_cast<int>(i);
    }
    return best;
}

void
DenoiseService::schedulerMain()
{
    try {
        while (true) {
            Session *sp = nullptr;
            Session::InputItem item;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return error_ || (!paused_ && pickLocked() >= 0) ||
                           (closing_ && globalQueued_ == 0);
                });
                if (error_)
                    break;
                const int pick = paused_ ? -1 : pickLocked();
                if (pick < 0)
                    break; // closing and every input queue drained
                sp = sessions_[static_cast<size_t>(pick)].get();
                Session &s = *sp;
                item = std::move(s.inputQueue.front());
                s.inputQueue.pop_front();
                --globalQueued_;
                ++s.inFlight;
                // Charge the frame to the session's virtual clock and
                // advance the schedule's present to its start time.
                virtualNow_ = s.vtime;
                s.vtime += static_cast<double>(item.frame.width()) *
                           static_cast<double>(item.frame.height()) /
                           s.effectiveWeight;
                dispatchOrder_.push_back(pick);
                cv_.notify_all(); // free an admission slot
            }
            FieldSlot *slot = nullptr;
            {
                // Head-of-line wait for the picked session's slot: the
                // WFQ decision stays final, so the dispatch order never
                // depends on which slot frees first.
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [&] { return error_ || !sp->freeSlots.empty(); });
                if (error_)
                    break;
                slot = sp->freeSlots.back();
                sp->freeSlots.pop_back();
            }
            prepassBuild(*sp, *slot, item.frame);
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [&] { return error_ || midQueue_.empty(); });
                if (error_) {
                    sp->freeSlots.push_back(slot);
                    cv_.notify_all();
                    break;
                }
                midQueue_.push_back(MidItem{sp, std::move(item.frame),
                                            slot, item.enqueued});
                cv_.notify_all();
            }
        }
    } catch (...) {
        fail(std::current_exception());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    schedulerDone_ = true;
    cv_.notify_all();
}

void
DenoiseService::prepassBuild(Session &s, FieldSlot &slot,
                             const image::ImageF &frame)
{
    // DCT1 of the next scheduled frame overlaps the dispatcher's stage
    // work ("service.prepass" next to "service.frame" in the trace).
    // The plane copy and field storage are ensured in place against
    // the session's own arena, so a warm slot allocates nothing.
    obs::Span span("service.prepass", "service");
    slot.prepassProfile = bm3d::Profile();
    bm3d::ScopedTimer timer(slot.prepassProfile, bm3d::Step::Dct1);
    if (slot.plane0.width() != frame.width() ||
        slot.plane0.height() != frame.height()) {
        slot.plane0 = image::ImageF(frame.width(), frame.height(), 1);
    }
    std::copy(frame.plane(0), frame.plane(0) + frame.planeSize(),
              slot.plane0.plane(0));
    slot.field.prepare(frame.width(), frame.height(), s.dct, &s.arena);
    const uint64_t patches = slot.field.fillRows(
        slot.plane0, s.dct, s.tht, s.config.stream.frame.fixedPoint, 0,
        slot.field.positionsY());
    if (s.config.stream.frame.precision == bm3d::Precision::Int16) {
        slot.field.prepareI16();
        slot.field.fillRowsI16(slot.plane0, s.dct, s.tht, 0,
                               slot.field.positionsY());
    }
    bm3d::OpCounters ops;
    bm3d::DctPatchField::countOps(patches, s.config.stream.frame.patchSize,
                                  s.tht > 0.0f, &ops);
    slot.prepassProfile.addOps(bm3d::Step::Dct1, ops);
}

void
DenoiseService::dispatcherMain()
{
    try {
        while (true) {
            MidItem item;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return error_ || !midQueue_.empty() || schedulerDone_;
                });
                if (error_)
                    break;
                if (midQueue_.empty())
                    break; // scheduler finished and queue drained
                item = std::move(midQueue_.front());
                midQueue_.pop_front();
                cv_.notify_all(); // free the mid slot for the scheduler
            }
            processFrame(std::move(item));
        }
    } catch (...) {
        fail(std::current_exception());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    outputClosed_ = true;
    exportMetricsLocked();
    cv_.notify_all();
}

void
DenoiseService::processFrame(MidItem item)
{
    Session &s = *item.session;
    obs::Span frame_span("service.frame", "service", "index",
                         static_cast<double>(s.frameIndex));
    bm3d::Profile frame_profile;
    // Merge the prepass accounting before the slot can be recycled.
    frame_profile += item.slot->prepassProfile;

    // Frame sharding: a large frame fans out at the service-wide shard
    // worker count instead of the session's own. The tile grid depends
    // only on the image size, so this reorders execution, never
    // arithmetic — output stays bitwise solo-identical.
    const size_t pixels = static_cast<size_t>(item.frame.width()) *
                          static_cast<size_t>(item.frame.height());
    bm3d::Bm3d &engine =
        pixels >= config_.shardPixels ? s.shardEngine : s.engine;

    bm3d::StageOptions s1;
    s1.field = &item.slot->field;
    s1.arena = &s.arena;
    bm3d::TemporalSeed seed;
    if (s.config.stream.temporalSeed) {
        const bm3d::DctPatchField &f = item.slot->field;
        const int nx =
            refCount(f.positionsX() - 1, s.config.stream.frame.refStride);
        const int ny =
            refCount(f.positionsY() - 1, s.config.stream.frame.refStride);
        bm3d::SeedStore &cur = s.seedStores[s.frameIndex % 2];
        bm3d::SeedStore &prev = s.seedStores[(s.frameIndex + 1) % 2];
        cur.reset(nx, ny, f.coefs(), s.config.stream.frame.maxMatches);
        seed.current = &cur;
        seed.previous =
            (s.frameIndex > 0 &&
             prev.matches(nx, ny, f.coefs(),
                          s.config.stream.frame.maxMatches))
                ? &prev
                : nullptr;
        seed.reuseBound = static_cast<float>(s.config.stream.seedK) *
                          s.config.stream.frame.tauMatch1;
        seed.window = std::min(s.config.stream.seedWindow,
                               s.config.stream.frame.searchWindow1);
        s1.seed = &seed;
    }

    image::ImageF basic = engine.runStage(
        bm3d::Stage::HardThreshold, item.frame, nullptr, frame_profile, s1);
    {
        // The field is consumed; hand the slot back so the scheduler
        // can prepass this session's next frame.
        std::lock_guard<std::mutex> lock(mutex_);
        s.freeSlots.push_back(item.slot);
        cv_.notify_all();
    }

    image::ImageF output;
    if (s.config.stream.frame.enableWiener) {
        bm3d::StageOptions s2;
        s2.arena = &s.arena;
        output = engine.runStage(bm3d::Stage::Wiener, item.frame, &basic,
                                 frame_profile, s2);
        s.arena.release(basic.takeStorage());
    } else {
        output = std::move(basic);
    }
    // The input's storage feeds the session's next output acquire —
    // the per-tenant recycling loop.
    s.arena.release(item.frame.takeStorage());

    const auto now = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s.profile += frame_profile;
        s.latenciesMs.push_back(
            std::chrono::duration<double, std::milli>(now - item.enqueued)
                .count());
        if (s.config.stream.temporalSeed) {
            s.seedRefs += seed.refs.load(std::memory_order_relaxed);
            s.seedHits += seed.hits.load(std::memory_order_relaxed);
        }
        ++s.framesDone;
        // From here on this tenant's arena must not allocate: remember
        // the baseline its steady-state counter is measured against.
        if (s.framesDone == 2)
            s.steadyBaseline = s.arena.stats().bytesNew;
        s.lastDone = now;
        --s.inFlight;
        ++framesDone_;
        lastDone_ = now;
        if (config_.fault.kind == FaultInjection::Kind::DropOutputs &&
            config_.fault.tenant == s.config.name) {
            // Dead-consumer fault: the output never reaches collect();
            // its storage still feeds this tenant's recycling loop.
            ++s.dropped;
            s.arena.release(output.takeStorage());
        } else {
            s.outputQueue.push_back(std::move(output));
        }
        cv_.notify_all();
    }
    ++s.frameIndex;
}

void
DenoiseService::exportMetricsLocked()
{
    // Service- and tenant-scope counters for bench records and the
    // bench_diff.py gates. Every counter here is deterministic for a
    // deterministic workload (scheduling cannot change admission
    // outcomes of a pre-filled run, and each tenant's arena traffic is
    // the solo traffic); queue high-water is a Max metric, so it lands
    // under "gauges" and stays outside the --ops-tolerance 0 gate.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.add("service.frames", static_cast<double>(framesDone_));
    reg.add("service.rejects", static_cast<double>(rejectsTotal_));
    reg.add("service.tenants", static_cast<double>(sessions_.size()));
    for (auto &up : sessions_) {
        Session &s = *up;
        s.metrics.add("frames", static_cast<double>(s.framesDone));
        s.metrics.add("admitted", static_cast<double>(s.admitted));
        s.metrics.add("rejects", static_cast<double>(s.rejects));
        s.metrics.add("dropped", static_cast<double>(s.dropped));
        const runtime::BufferArena::Stats a = s.arena.stats();
        s.metrics.add("arena.hits", static_cast<double>(a.hits));
        s.metrics.add("arena.misses", static_cast<double>(a.misses));
        s.metrics.add("arena.bytesNew", static_cast<double>(a.bytesNew));
        const uint64_t steady =
            s.framesDone >= 2 ? a.bytesNew - s.steadyBaseline : 0;
        s.metrics.add("arena.bytesNewSteady",
                      static_cast<double>(steady));
        s.metrics.setMax("queueHighWater",
                         static_cast<double>(s.queueHighWater));
        reg.merge(s.metrics.snapshot(),
                  "service." + s.config.name + ".");
    }
}

} // namespace service
} // namespace ideal
