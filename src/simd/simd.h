#ifndef IDEAL_SIMD_SIMD_H_
#define IDEAL_SIMD_SIMD_H_

/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the BM3D hot path.
 *
 * One implementation of every hot kernel exists per instruction-set
 * level (scalar / SSE4.2 / AVX2); the best level the CPU supports is
 * selected once at startup via CPUID and can be overridden with
 * IDEAL_SIMD=scalar|sse|avx2 (requests above what the CPU supports
 * clamp down with a warning). Library code calls through the active
 * KernelTable, so a single baseline-ISA build adapts to the machine
 * it lands on.
 *
 * ## The reduction-order rule
 *
 * Every kernel is bitwise-deterministic across dispatch levels: for
 * the same inputs, the scalar, SSE and AVX2 variants return identical
 * bits. Two mechanisms make that possible:
 *
 * 1. *Vertical* operations (the DCT passes, Haar butterflies,
 *    shrinkage, aggregation) touch each lane independently, so any
 *    vector width computes the exact scalar sequence per element.
 *    The only rule is that no variant may fuse a multiply-add (the
 *    kernel translation units are compiled with -ffp-contract=off
 *    and without -mfma).
 *
 * 2. *Horizontal* reductions (the SSD distance) fix one canonical
 *    adder tree: 8 accumulator lanes, element k accumulating into
 *    lane k%8 in element order, folded as
 *        ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)).
 *    The scalar variant keeps 8 scalar accumulators, SSE emulates the
 *    8 lanes with two __m128, and AVX2 holds them in one __m256 whose
 *    standard extract/add/movehl fold produces exactly that tree.
 *    Trailing elements (len % 8) are always added sequentially after
 *    the fold, in every variant.
 *
 * Because the tree is fixed per kernel *and* per length, output is
 * also invariant under thread count (kernels are pure functions),
 * preserving the tiled runner's determinism guarantee.
 *
 * ## Int16 kernels
 *
 * The *I16 rows operate on pre-quantized int16 raws (see
 * fixed/int16plan.h). Their determinism needs no canonical tree:
 * integer addition mod 2^32 is associative and commutative, so any
 * lane count and any fold order produce identical bits. The contract
 * is instead fixed at the element level — wrapping int16 differences,
 * mod-2^32 accumulation, round-to-nearest right shifts, and
 * saturation only at documented pack points — which every ISA variant
 * reproduces exactly, including out-of-range edge cases (the
 * all-(-32768) _mm256_madd_epi16 wrap, abs(-32768) == -32768).
 */

#include <cstddef>
#include <cstdint>

namespace ideal {
namespace simd {

/** Instruction-set level of a kernel table, in increasing order. */
enum class Level {
    Scalar = 0, ///< portable C++, no intrinsics
    Sse = 1,    ///< SSE4.2 (128-bit)
    Avx2 = 2,   ///< AVX2 (256-bit)
};

/** Lower-case level name ("scalar", "sse", "avx2"). */
const char *toString(Level level);

/**
 * The set of hot kernels. All pointers are always non-null; the
 * scalar table is the reference semantics every other level must
 * reproduce bitwise.
 */
struct KernelTable
{
    /**
     * Squared L2 distance over @p len elements with the canonical
     * 8-lane tree applied once over the whole array (single fold,
     * sequential tail).
     */
    float (*ssd)(const float *a, const float *b, int len);

    /**
     * Squared L2 distance accumulated per 16-element block (one
     * 8-lane tree fold per block, blocks summed sequentially),
     * early-returning a partial sum once it exceeds @p bound. Partial
     * results are only guaranteed to compare > @p bound.
     */
    float (*ssdBounded)(const float *a, const float *b, int len,
                        float bound);

    /**
     * Same block-wise accumulation order as ssdBounded but with no
     * early exit: the exact full distance. For len == 16 this equals
     * both ssd and ssdBounded(bound=inf) bitwise.
     */
    float (*ssdFull)(const float *a, const float *b, int len);

    /**
     * Batched 16-element SSD: out[i] = ssdFull(ref, cands + 16*i, 16)
     * for i in [0, count). @p cands is a contiguous array of @p count
     * 16-float patch descriptors (the patch-field layout). count <= 8.
     */
    void (*ssdBatch16)(const float *ref, const float *cands, int count,
                       float *out);

    /**
     * Squared L2 distance between two patches stored coefficient-major
     * (SoA): coefficient k of patch a is pa[k][off_a], of patch b
     * pb[k][off_b]. Accumulated per 16-coefficient block in the
     * canonical 8-lane tree (lane k%8, fold, blocks summed
     * sequentially, sequential tail) — the exact ssdBounded order —
     * with early exit once the partial sum exceeds @p bound (pass
     * +inf for the exact ssdFull-ordered distance). The two pointer
     * arrays may differ, so cross-field distances (video matching)
     * use the same kernel.
     */
    float (*ssdSoa)(const float *const *pa, size_t off_a,
                    const float *const *pb, size_t off_b, int len,
                    float bound);

    /**
     * Batched SoA SSD: out[i] = exact distance between the gathered
     * reference descriptor @p ref (len contiguous floats) and the
     * candidate at planes[k][off + i], for i in [0, count); @p count
     * is arbitrary (callers pass whole window-row runs — one dispatch
     * per run). Candidates are processed in groups of 8 from i = 0
     * with the partial last group handled per candidate, so results
     * are independent of how a caller chunks a run as long as chunks
     * are multiples of 8. Candidates i are adjacent in every
     * coefficient plane, so each coefficient is one contiguous vector
     * load. Per candidate the accumulation order is exactly ssdSoa
     * with bound = +inf, so batch and single-pair results agree
     * bitwise at every dispatch level.
     */
    void (*ssdSoaBatch)(const float *ref, const float *const *planes,
                        size_t off, int len, int count, float *out);

    /**
     * Full 2-D folded 4x4 DCT forward: row pass, transpose, row pass.
     * @p fwd_even / @p fwd_odd are the 2x2 half matrices packed
     * row-major (Dct2D's fwdEven_/fwdOdd_ for n == 4).
     */
    void (*dct4Forward)(const float *in, float *out,
                        const float *fwd_even, const float *fwd_odd);

    /** Full 2-D folded 4x4 DCT inverse (invEven_/invOdd_ layout). */
    void (*dct4Inverse)(const float *in, float *out,
                        const float *inv_even, const float *inv_odd);

    /**
     * One Haar butterfly over @p width lanes:
     * approx[c] = (even[c] + odd[c]) * factor,
     * detail[c] = (even[c] - odd[c]) * factor.
     * approx may alias even (each lane is read before it is written).
     */
    void (*haarForwardPair)(const float *even, const float *odd,
                            float *approx, float *detail, float factor,
                            int width);

    /**
     * One inverse Haar butterfly over @p width lanes:
     * out_even[c] = (approx[c] + detail[c]) * factor,
     * out_odd[c]  = (approx[c] - detail[c]) * factor.
     * Outputs must not alias the inputs.
     */
    void (*haarInversePair)(const float *approx, const float *detail,
                            float *out_even, float *out_odd, float factor,
                            int width);

    /**
     * Hard threshold in place: v[i] with |v[i]| < threshold becomes
     * +0.0f. Returns the number of surviving (non-zeroed) elements.
     */
    int (*hardThreshold)(float *v, int count, float threshold);

    /**
     * Wiener shrinkage: w[i] = b[i]^2 / (b[i]^2 + sigma2),
     * v[i] *= w[i]; the weights are stored to @p w so the caller can
     * accumulate sum(w^2) in double precision in its own fixed order.
     * Returns the count of w[i] > 0.5 (the hardware-countable
     * "non-zero" analogue).
     */
    int (*wienerApply)(float *v, const float *b, float *w, int count,
                       float sigma2);

    /**
     * Weighted aggregation row: num[i] += weight * pix[i],
     * den[i] += weight.
     */
    void (*aggregateAdd)(float *num, float *den, const float *pix,
                         float weight, int count);

    /**
     * Aggregator tile-merge row: num[i] += onum[i], den[i] += oden[i].
     * Purely vertical, so any vector width reproduces the scalar
     * per-element sequence.
     */
    void (*mergeAdd)(float *num, float *den, const float *onum,
                     const float *oden, int count);

    /**
     * Int16 squared L2 distance: differences wrap in int16, squares
     * accumulate mod 2^32. Exact whenever |a[i]-b[i]| raws fit the
     * fixed::ssdSafeMagnitudeBits bound; otherwise deterministically
     * wrapped, identically at every dispatch level.
     */
    int32_t (*ssdI16)(const int16_t *a, const int16_t *b, int len);

    /**
     * ssdI16 accumulated per 16-element block with early exit once the
     * partial sum exceeds @p bound (same exit points as the scalar
     * reference, so partial results are bitwise identical too).
     * Partial results are only guaranteed to compare > @p bound.
     */
    int32_t (*ssdBoundedI16)(const int16_t *a, const int16_t *b, int len,
                             int32_t bound);

    /**
     * SoA int16 SSD (coefficient-major planes, same layout contract
     * as ssdSoa) with per-16-block early exit. Strided gathers keep
     * this scalar at every level; the batch kernel below carries the
     * vector win.
     */
    int32_t (*ssdSoaI16)(const int16_t *const *pa, size_t off_a,
                         const int16_t *const *pb, size_t off_b, int len,
                         int32_t bound);

    /**
     * Batched SoA int16 SSD: out[i] = ssdI16 of @p ref against the
     * candidate at planes[k][off + i], for i in [0, count); arbitrary
     * @p count. _mm256_madd_epi16 processes 16 candidates per
     * accumulate — the kernel that doubles matching throughput over
     * the float path.
     */
    void (*ssdSoaBatchI16)(const int16_t *ref,
                           const int16_t *const *planes, size_t off,
                           int len, int count, int32_t *out);

    /**
     * Batched pair-interleaved int16 SSD — the block-matching window
     * scan kernel. Pair plane p stores coefficients (2p, 2p+1) of
     * position x adjacent at indices (2x, 2x+1), so eight candidates'
     * pair lanes are one contiguous 256-bit load and one madd against
     * the broadcast reference pair produces eight already-linearized
     * int32 partial sums: no unpack, no cross-lane permute. @p ref is
     * the gathered descriptor in natural coefficient order (pairs
     * adjacent), @p len the coefficient count (must be even), out[i]
     * the SSD of candidate off + i. Same wrap/exactness contract as
     * ssdI16.
     */
    void (*ssdPairBatchI16)(const int16_t *ref,
                            const int16_t *const *pair_planes, size_t off,
                            int len, int count, int32_t *out);

    /**
     * Int16 folded 4x4 DCT forward. @p even_q / @p odd_q are the 2x2
     * half matrices quantized to Q(coefFracBits) raws. Each 1-D pass
     * computes in int32, renormalizes with a round-to-nearest right
     * shift (@p shift1 after pass 1, @p shift2 after pass 2) and
     * saturates to int16 at the two pack points (packs_epi32
     * semantics). See fixed::Int16DctPlan for the shift schedule.
     */
    void (*dct4ForwardI16)(const int16_t *in, int16_t *out,
                           const int16_t *even_q, const int16_t *odd_q,
                           int shift1, int shift2);

    /**
     * Int16 Haar butterfly: saturating add/sub (adds/subs_epi16
     * semantics) followed by a Q15 rounded multiply by
     * @p factor_q15 (_mm_mulhrs_epi16 semantics, including the
     * -32768 * -32768 wrap). approx may alias even.
     */
    void (*haarForwardPairI16)(const int16_t *even, const int16_t *odd,
                               int16_t *approx, int16_t *detail,
                               int16_t factor_q15, int width);

    /** Inverse int16 Haar butterfly; outputs must not alias inputs. */
    void (*haarInversePairI16)(const int16_t *approx,
                               const int16_t *detail, int16_t *out_even,
                               int16_t *out_odd, int16_t factor_q15,
                               int width);

    /**
     * Int16 hard threshold in place: v[i] with abs_epi16(v[i]) <
     * threshold becomes 0. abs(-32768) stays -32768 and compares below
     * any positive threshold, so INT16_MIN is always zeroed — every
     * variant, scalar included, reproduces that. Returns the count of
     * surviving elements.
     */
    int (*hardThresholdI16)(int16_t *v, int count, int16_t threshold);

    // ---- fused group-major denoise kernels (DESIGN §12) ----------
    //
    // All three operate on a contiguous group tile g of
    // stack * width floats, row i holding patch i's coefficients:
    // the patch position is the SIMD lane, the Haar butterflies walk
    // rows. Every operation is lane-vertical with the exact
    // per-element expressions of the discrete kernels above (Haar1D
    // forwardRows/inverseRows schedule, hardThreshold / wienerApply
    // element semantics, dct4Inverse + aggregateAdd arithmetic), so
    // fused output is bitwise equal to the discrete composition at
    // every dispatch level. stack must be a power of two <= 16.

    /**
     * Fused DE1 spectrum pipeline over one group tile: full forward
     * Haar across the stack rows (factor = 1/sqrt(2) butterflies in
     * the forwardRows schedule), hard threshold of every transform-
     * domain element against @p threshold, full inverse Haar — one
     * call, no intermediate spill. Returns the surviving-coefficient
     * count (the aggregation weight's M).
     */
    int (*haarShrinkFused)(float *g, int stack, int width,
                           float threshold);

    /**
     * Fused DE2 spectrum pipeline: forward-Haar both the noisy tile
     * @p g and the basic tile @p bg, apply the empirical Wiener
     * weights w = b^2 / (b^2 + sigma2) to g (storing them to the
     * stack * width tile @p w so the caller can accumulate sum(w^2)
     * in double precision in its fixed i-major order), inverse-Haar
     * g. @p bg is clobbered (left in the transform domain). Returns
     * the count of weights > 0.5.
     */
    int (*wienerShrinkFused)(float *g, float *bg, float *w, int stack,
                             int width, float sigma2);

    /**
     * Fused inverse-DCT + weighted scanline aggregation of one group:
     * for each patch i in [0, stack), inverse-transform the 16
     * coefficients at coefs + 16*i (dct4Inverse arithmetic with the
     * invEven_/invOdd_ half matrices) and accumulate the restored 4x4
     * patch into the num/den planes (row stride @p plane_w) at offset
     * (lx[i], ly[i]) with aggregateAdd element arithmetic, rows
     * blocked 4 wide. Patches are accumulated in ascending i, so
     * overlapping pixels see the same addition order as per-patch
     * aggregateAdd calls.
     */
    void (*aggregateGroup)(float *num, float *den, int plane_w,
                           const float *coefs, const int *lx,
                           const int *ly, int stack, float weight,
                           const float *inv_even, const float *inv_odd);

    /**
     * Int16 fused DE1 spectrum pipeline, same tile contract as
     * haarShrinkFused on Q11.1 raws: saturating-add/mulhrs Haar
     * butterflies (haarForwardPairI16 / haarInversePairI16 element
     * semantics with @p factor_q15), hardThresholdI16 shrinkage.
     * Integer lane arithmetic, so bitwise identical across levels by
     * construction. Returns the surviving-coefficient count.
     */
    int (*haarShrinkFusedI16)(int16_t *g, int stack, int width,
                              int16_t threshold, int16_t factor_q15);
};

/**
 * Read-prefetch hint: request @p p's cache line into all cache levels
 * ahead of a demand load. Semantically a no-op — issuing, reordering
 * or dropping prefetches never changes a single architectural bit, so
 * the bitwise-determinism contract above is preserved trivially. The
 * block matcher issues these one window row ahead of the SSD scan
 * (DESIGN §15), the CPU analog of IDEALMR's sliding-window prefetcher.
 */
inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0 /* read */, 3 /* high temporal locality */);
#else
    (void)p;
#endif
}

/** Best level this CPU supports (probed once). */
Level bestSupported();

/**
 * The active dispatch level. Resolved on first use: bestSupported(),
 * lowered by IDEAL_SIMD if set.
 */
Level activeLevel();

/**
 * Test hook: force the active level (clamped to bestSupported()).
 * Not thread-safe against kernels in flight — call only from tests
 * and benchmarks between runs.
 */
void setLevel(Level level);

/** The kernel table of the active level. */
const KernelTable &kernels();

/**
 * The kernel table of @p level, clamped to bestSupported(). Lets
 * parity tests and microbenchmarks address a specific level without
 * changing the active dispatch.
 */
const KernelTable &kernelsFor(Level level);

} // namespace simd
} // namespace ideal

#endif // IDEAL_SIMD_SIMD_H_
