#ifndef IDEAL_SIMD_KERNELS_H_
#define IDEAL_SIMD_KERNELS_H_

/**
 * @file
 * Internal: the per-level kernel tables, one per translation unit so
 * each can be compiled for its own ISA. The scalar table defines the
 * reference semantics (see simd.h's reduction-order rule); the SSE
 * and AVX2 tables must reproduce it bitwise and are verified to do so
 * by tests/test_simd.cc.
 *
 * On non-x86 builds the SSE/AVX2 translation units compile to empty
 * and the table pointers below alias the scalar table.
 */

#include "simd/simd.h"

namespace ideal {
namespace simd {
namespace detail {

extern const KernelTable kScalarTable;
extern const KernelTable &kSseTable;
extern const KernelTable &kAvx2Table;

} // namespace detail
} // namespace simd
} // namespace ideal

#endif // IDEAL_SIMD_KERNELS_H_
