/**
 * @file
 * SSE4.2 kernels (128-bit). The 8 canonical SSD lanes live in two
 * __m128 accumulators; every vertical kernel processes 4 lanes per
 * step with scalar tails that repeat the reference order. Compiled
 * with -msse4.2 -ffp-contract=off; bitwise parity with the scalar
 * table is enforced by tests/test_simd.cc.
 */

#include "simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <nmmintrin.h>

#include <cmath>

namespace ideal {
namespace simd {
namespace detail {

namespace {

/** Fold [t0..t3] as (t0+t2) + (t1+t3) — the canonical 128-bit fold. */
inline float
fold4(__m128 t)
{
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));
    const __m128 r = _mm_add_ss(
        u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1)));
    return _mm_cvtss_f32(r);
}

/** Fold the two 4-lane halves of the canonical 8-lane tree. */
inline float
fold8(__m128 lo, __m128 hi)
{
    return fold4(_mm_add_ps(lo, hi));
}

inline void
ssdStep8(const float *a, const float *b, __m128 &lo, __m128 &hi)
{
    const __m128 d0 = _mm_sub_ps(_mm_loadu_ps(a), _mm_loadu_ps(b));
    const __m128 d1 = _mm_sub_ps(_mm_loadu_ps(a + 4), _mm_loadu_ps(b + 4));
    lo = _mm_add_ps(lo, _mm_mul_ps(d0, d0));
    hi = _mm_add_ps(hi, _mm_mul_ps(d1, d1));
}

inline float
ssdBlock16(const float *a, const float *b)
{
    const __m128 d0 = _mm_sub_ps(_mm_loadu_ps(a), _mm_loadu_ps(b));
    const __m128 d1 = _mm_sub_ps(_mm_loadu_ps(a + 4), _mm_loadu_ps(b + 4));
    const __m128 d2 = _mm_sub_ps(_mm_loadu_ps(a + 8), _mm_loadu_ps(b + 8));
    const __m128 d3 =
        _mm_sub_ps(_mm_loadu_ps(a + 12), _mm_loadu_ps(b + 12));
    const __m128 lo =
        _mm_add_ps(_mm_mul_ps(d0, d0), _mm_mul_ps(d2, d2));
    const __m128 hi =
        _mm_add_ps(_mm_mul_ps(d1, d1), _mm_mul_ps(d3, d3));
    return fold8(lo, hi);
}

float
ssd(const float *a, const float *b, int len)
{
    __m128 lo = _mm_setzero_ps();
    __m128 hi = _mm_setzero_ps();
    int i = 0;
    for (; i + 8 <= len; i += 8)
        ssdStep8(a + i, b + i, lo, hi);
    float r = fold8(lo, hi);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        r += d * d;
    }
    return r;
}

float
ssdFull(const float *a, const float *b, int len)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16)
        acc += ssdBlock16(a + i, b + i);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

float
ssdBounded(const float *a, const float *b, int len, float bound)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16) {
        acc += ssdBlock16(a + i, b + i);
        if (acc > bound)
            return acc;
    }
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

void
ssdBatch16(const float *ref, const float *cands, int count, float *out)
{
    const __m128 r0 = _mm_loadu_ps(ref);
    const __m128 r1 = _mm_loadu_ps(ref + 4);
    const __m128 r2 = _mm_loadu_ps(ref + 8);
    const __m128 r3 = _mm_loadu_ps(ref + 12);
    for (int i = 0; i < count; ++i) {
        const float *c = cands + 16 * i;
        const __m128 d0 = _mm_sub_ps(_mm_loadu_ps(c), r0);
        const __m128 d1 = _mm_sub_ps(_mm_loadu_ps(c + 4), r1);
        const __m128 d2 = _mm_sub_ps(_mm_loadu_ps(c + 8), r2);
        const __m128 d3 = _mm_sub_ps(_mm_loadu_ps(c + 12), r3);
        const __m128 lo =
            _mm_add_ps(_mm_mul_ps(d0, d0), _mm_mul_ps(d2, d2));
        const __m128 hi =
            _mm_add_ps(_mm_mul_ps(d1, d1), _mm_mul_ps(d3, d3));
        out[i] = fold8(lo, hi);
    }
}

/**
 * Scalar canonical fold of 8 lanes (the SoA pair kernel walks strided
 * per-coefficient values, so there is nothing to vectorize — the
 * scalar sequence IS the reference order and keeps bitwise parity).
 */
inline float
fold8Scalar(const float s[8])
{
    const float t0 = s[0] + s[4];
    const float t1 = s[1] + s[5];
    const float t2 = s[2] + s[6];
    const float t3 = s[3] + s[7];
    const float u0 = t0 + t2;
    const float u1 = t1 + t3;
    return u0 + u1;
}

float
ssdSoa(const float *const *pa, size_t off_a, const float *const *pb,
       size_t off_b, int len, float bound)
{
    float acc = 0.0f;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        float s[8];
        for (int j = 0; j < 8; ++j) {
            const float d = pa[k + j][off_a] - pb[k + j][off_b];
            s[j] = d * d;
        }
        for (int j = 0; j < 8; ++j) {
            const float d = pa[k + 8 + j][off_a] - pb[k + 8 + j][off_b];
            s[j] += d * d;
        }
        acc += fold8Scalar(s);
        if (acc > bound)
            return acc;
    }
    for (; k < len; ++k) {
        const float d = pa[k][off_a] - pb[k][off_b];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

/** One scalar SoA candidate (partial-vector batch tail). */
inline float
ssdSoaOne(const float *ref, const float *const *planes, size_t off,
          int len)
{
    float acc = 0.0f;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        float s[8];
        for (int j = 0; j < 8; ++j) {
            const float d = ref[k + j] - planes[k + j][off];
            s[j] = d * d;
        }
        for (int j = 0; j < 8; ++j) {
            const float d = ref[k + 8 + j] - planes[k + 8 + j][off];
            s[j] += d * d;
        }
        acc += fold8Scalar(s);
    }
    for (; k < len; ++k) {
        const float d = ref[k] - planes[k][off];
        acc += d * d;
    }
    return acc;
}

void
ssdSoaBatch(const float *ref, const float *const *planes, size_t off,
            int len, int count, float *out)
{
    // Four candidates per pass: the 8 canonical accumulator lanes of
    // each candidate live across 8 __m128 registers (candidate =
    // vector lane), so the block fold is purely vertical and the
    // per-lane operation sequence equals the scalar reference exactly.
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        const size_t o = off + static_cast<size_t>(i);
        __m128 acc = _mm_setzero_ps();
        int k = 0;
        for (; k + 16 <= len; k += 16) {
            __m128 s[8];
            for (int j = 0; j < 8; ++j) {
                const __m128 d =
                    _mm_sub_ps(_mm_set1_ps(ref[k + j]),
                               _mm_loadu_ps(planes[k + j] + o));
                s[j] = _mm_mul_ps(d, d);
            }
            for (int j = 0; j < 8; ++j) {
                const __m128 d =
                    _mm_sub_ps(_mm_set1_ps(ref[k + 8 + j]),
                               _mm_loadu_ps(planes[k + 8 + j] + o));
                s[j] = _mm_add_ps(s[j], _mm_mul_ps(d, d));
            }
            const __m128 u0 = _mm_add_ps(_mm_add_ps(s[0], s[4]),
                                         _mm_add_ps(s[2], s[6]));
            const __m128 u1 = _mm_add_ps(_mm_add_ps(s[1], s[5]),
                                         _mm_add_ps(s[3], s[7]));
            acc = _mm_add_ps(acc, _mm_add_ps(u0, u1));
        }
        for (; k < len; ++k) {
            const __m128 d = _mm_sub_ps(_mm_set1_ps(ref[k]),
                                        _mm_loadu_ps(planes[k] + o));
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
        }
        _mm_storeu_ps(out + i, acc);
    }
    for (; i < count; ++i)
        out[i] = ssdSoaOne(ref, planes, off + static_cast<size_t>(i), len);
}

inline void
dct4Pass(const float *in, float *out, const float *even, const float *odd)
{
    const __m128 r0 = _mm_loadu_ps(in);
    const __m128 r1 = _mm_loadu_ps(in + 4);
    const __m128 r2 = _mm_loadu_ps(in + 8);
    const __m128 r3 = _mm_loadu_ps(in + 12);
    const __m128 s0 = _mm_add_ps(r0, r3);
    const __m128 s1 = _mm_add_ps(r1, r2);
    const __m128 d0 = _mm_sub_ps(r0, r3);
    const __m128 d1 = _mm_sub_ps(r1, r2);
    _mm_storeu_ps(out,
                  _mm_add_ps(_mm_mul_ps(_mm_set1_ps(even[0]), s0),
                             _mm_mul_ps(_mm_set1_ps(even[1]), s1)));
    _mm_storeu_ps(out + 4,
                  _mm_add_ps(_mm_mul_ps(_mm_set1_ps(odd[0]), d0),
                             _mm_mul_ps(_mm_set1_ps(odd[1]), d1)));
    _mm_storeu_ps(out + 8,
                  _mm_add_ps(_mm_mul_ps(_mm_set1_ps(even[2]), s0),
                             _mm_mul_ps(_mm_set1_ps(even[3]), s1)));
    _mm_storeu_ps(out + 12,
                  _mm_add_ps(_mm_mul_ps(_mm_set1_ps(odd[2]), d0),
                             _mm_mul_ps(_mm_set1_ps(odd[3]), d1)));
}

inline void
dct4PassInv(const float *in, float *out, const float *even,
            const float *odd)
{
    const __m128 r0 = _mm_loadu_ps(in);
    const __m128 r1 = _mm_loadu_ps(in + 4);
    const __m128 r2 = _mm_loadu_ps(in + 8);
    const __m128 r3 = _mm_loadu_ps(in + 12);
    for (int i = 0; i < 2; ++i) {
        const __m128 e =
            _mm_add_ps(_mm_mul_ps(_mm_set1_ps(even[2 * i]), r0),
                       _mm_mul_ps(_mm_set1_ps(even[2 * i + 1]), r2));
        const __m128 o =
            _mm_add_ps(_mm_mul_ps(_mm_set1_ps(odd[2 * i]), r1),
                       _mm_mul_ps(_mm_set1_ps(odd[2 * i + 1]), r3));
        _mm_storeu_ps(out + 4 * i, _mm_add_ps(e, o));
        _mm_storeu_ps(out + 4 * (3 - i), _mm_sub_ps(e, o));
    }
}

inline void
transpose4(const float *in, float *out)
{
    __m128 r0 = _mm_loadu_ps(in);
    __m128 r1 = _mm_loadu_ps(in + 4);
    __m128 r2 = _mm_loadu_ps(in + 8);
    __m128 r3 = _mm_loadu_ps(in + 12);
    _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
    _mm_storeu_ps(out, r0);
    _mm_storeu_ps(out + 4, r1);
    _mm_storeu_ps(out + 8, r2);
    _mm_storeu_ps(out + 12, r3);
}

void
dct4Forward(const float *in, float *out, const float *fwd_even,
            const float *fwd_odd)
{
    float t1[16], t2[16];
    dct4Pass(in, t1, fwd_even, fwd_odd);
    transpose4(t1, t2);
    dct4Pass(t2, out, fwd_even, fwd_odd);
}

void
dct4Inverse(const float *in, float *out, const float *inv_even,
            const float *inv_odd)
{
    float t1[16], t2[16];
    dct4PassInv(in, t1, inv_even, inv_odd);
    transpose4(t1, t2);
    dct4PassInv(t2, out, inv_even, inv_odd);
}

void
haarForwardPair(const float *even, const float *odd, float *approx,
                float *detail, float factor, int width)
{
    const __m128 f = _mm_set1_ps(factor);
    int c = 0;
    for (; c + 4 <= width; c += 4) {
        const __m128 e = _mm_loadu_ps(even + c);
        const __m128 o = _mm_loadu_ps(odd + c);
        _mm_storeu_ps(approx + c, _mm_mul_ps(_mm_add_ps(e, o), f));
        _mm_storeu_ps(detail + c, _mm_mul_ps(_mm_sub_ps(e, o), f));
    }
    for (; c < width; ++c) {
        const float e = even[c];
        const float o = odd[c];
        approx[c] = (e + o) * factor;
        detail[c] = (e - o) * factor;
    }
}

void
haarInversePair(const float *approx, const float *detail, float *out_even,
                float *out_odd, float factor, int width)
{
    const __m128 f = _mm_set1_ps(factor);
    int c = 0;
    for (; c + 4 <= width; c += 4) {
        const __m128 a = _mm_loadu_ps(approx + c);
        const __m128 d = _mm_loadu_ps(detail + c);
        _mm_storeu_ps(out_even + c, _mm_mul_ps(_mm_add_ps(a, d), f));
        _mm_storeu_ps(out_odd + c, _mm_mul_ps(_mm_sub_ps(a, d), f));
    }
    for (; c < width; ++c) {
        const float a = approx[c];
        const float d = detail[c];
        out_even[c] = (a + d) * factor;
        out_odd[c] = (a - d) * factor;
    }
}

int
hardThreshold(float *v, int count, float threshold)
{
    const __m128 abs_mask =
        _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    const __m128 thr = _mm_set1_ps(threshold);
    int kept = 0;
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128 x = _mm_loadu_ps(v + i);
        // below = |x| < thr (NaN compares false, i.e. NaN is kept —
        // same as the scalar std::abs(x) < thr).
        const __m128 below = _mm_cmplt_ps(_mm_and_ps(x, abs_mask), thr);
        _mm_storeu_ps(v + i, _mm_andnot_ps(below, x));
        kept += 4 - _mm_popcnt_u32(
                        static_cast<unsigned>(_mm_movemask_ps(below)));
    }
    for (; i < count; ++i) {
        if (std::fabs(v[i]) < threshold)
            v[i] = 0.0f;
        else
            ++kept;
    }
    return kept;
}

int
wienerApply(float *v, const float *b, float *w, int count, float sigma2)
{
    const __m128 s2 = _mm_set1_ps(sigma2);
    const __m128 half = _mm_set1_ps(0.5f);
    int strong = 0;
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128 bv = _mm_loadu_ps(b + i);
        const __m128 b2 = _mm_mul_ps(bv, bv);
        const __m128 wv = _mm_div_ps(b2, _mm_add_ps(b2, s2));
        _mm_storeu_ps(w + i, wv);
        _mm_storeu_ps(v + i, _mm_mul_ps(_mm_loadu_ps(v + i), wv));
        strong += _mm_popcnt_u32(static_cast<unsigned>(
            _mm_movemask_ps(_mm_cmpgt_ps(wv, half))));
    }
    for (; i < count; ++i) {
        const float b2 = b[i] * b[i];
        const float wi = b2 / (b2 + sigma2);
        w[i] = wi;
        v[i] *= wi;
        if (wi > 0.5f)
            ++strong;
    }
    return strong;
}

void
aggregateAdd(float *num, float *den, const float *pix, float weight,
             int count)
{
    const __m128 wv = _mm_set1_ps(weight);
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128 n = _mm_loadu_ps(num + i);
        const __m128 p = _mm_loadu_ps(pix + i);
        _mm_storeu_ps(num + i, _mm_add_ps(n, _mm_mul_ps(wv, p)));
        _mm_storeu_ps(den + i,
                      _mm_add_ps(_mm_loadu_ps(den + i), wv));
    }
    for (; i < count; ++i) {
        num[i] += weight * pix[i];
        den[i] += weight;
    }
}

void
mergeAdd(float *num, float *den, const float *onum, const float *oden,
         int count)
{
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        _mm_storeu_ps(num + i, _mm_add_ps(_mm_loadu_ps(num + i),
                                          _mm_loadu_ps(onum + i)));
        _mm_storeu_ps(den + i, _mm_add_ps(_mm_loadu_ps(den + i),
                                          _mm_loadu_ps(oden + i)));
    }
    for (; i < count; ++i) {
        num[i] += onum[i];
        den[i] += oden[i];
    }
}

// ---- int16 kernels -----------------------------------------------
//
// Integer adds commute mod 2^32, so these are free to fold in any
// lane order; only the element-level semantics (wrapping diffs,
// mulhrs rounding, pack-point saturation) must match the scalar
// reference — and the intrinsics ARE that reference.

/** Scalar element helpers for tails (same bodies as the scalar TU). */
inline int16_t
diffI16(int16_t a, int16_t b)
{
    return static_cast<int16_t>(static_cast<uint16_t>(a) -
                                static_cast<uint16_t>(b));
}

inline uint32_t
sqI16(int16_t d)
{
    return static_cast<uint32_t>(static_cast<int32_t>(d) * d);
}

inline int16_t
satAddI16(int16_t a, int16_t b)
{
    const int32_t v = static_cast<int32_t>(a) + b;
    return static_cast<int16_t>(v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
}

inline int16_t
satSubI16(int16_t a, int16_t b)
{
    const int32_t v = static_cast<int32_t>(a) - b;
    return static_cast<int16_t>(v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
}

inline int16_t
mulhrsI16(int16_t a, int16_t b)
{
    return static_cast<int16_t>(
        (static_cast<int32_t>(a) * b + 0x4000) >> 15);
}

/** Wrapping horizontal sum of the 4 int32 lanes. */
inline uint32_t
hsumEpi32(__m128i v)
{
    __m128i t = _mm_add_epi32(v, _mm_srli_si128(v, 8));
    t = _mm_add_epi32(t, _mm_srli_si128(t, 4));
    return static_cast<uint32_t>(_mm_cvtsi128_si32(t));
}

int32_t
ssdI16(const int16_t *a, const int16_t *b, int len)
{
    __m128i acc = _mm_setzero_si128();
    int i = 0;
    for (; i + 8 <= len; i += 8) {
        const __m128i d = _mm_sub_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i)),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + i)));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(d, d));
    }
    uint32_t r = hsumEpi32(acc);
    for (; i < len; ++i)
        r += sqI16(diffI16(a[i], b[i]));
    return static_cast<int32_t>(r);
}

inline uint32_t
ssdBlock16I16(const int16_t *a, const int16_t *b)
{
    const __m128i d0 = _mm_sub_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(a)),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(b)));
    const __m128i d1 = _mm_sub_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + 8)),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + 8)));
    return hsumEpi32(
        _mm_add_epi32(_mm_madd_epi16(d0, d0), _mm_madd_epi16(d1, d1)));
}

int32_t
ssdBoundedI16(const int16_t *a, const int16_t *b, int len, int32_t bound)
{
    uint32_t acc = 0;
    int i = 0;
    for (; i + 16 <= len; i += 16) {
        acc += ssdBlock16I16(a + i, b + i);
        if (static_cast<int32_t>(acc) > bound)
            return static_cast<int32_t>(acc);
    }
    for (; i < len; ++i) {
        acc += sqI16(diffI16(a[i], b[i]));
        if (static_cast<int32_t>(acc) > bound)
            return static_cast<int32_t>(acc);
    }
    return static_cast<int32_t>(acc);
}

/** Strided gathers — scalar at every level (like the float ssdSoa). */
int32_t
ssdSoaI16(const int16_t *const *pa, size_t off_a, const int16_t *const *pb,
          size_t off_b, int len, int32_t bound)
{
    uint32_t acc = 0;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        for (int j = 0; j < 16; ++j)
            acc += sqI16(diffI16(pa[k + j][off_a], pb[k + j][off_b]));
        if (static_cast<int32_t>(acc) > bound)
            return static_cast<int32_t>(acc);
    }
    for (; k < len; ++k) {
        acc += sqI16(diffI16(pa[k][off_a], pb[k][off_b]));
        if (static_cast<int32_t>(acc) > bound)
            return static_cast<int32_t>(acc);
    }
    return static_cast<int32_t>(acc);
}

inline int32_t
ssdSoaOneI16(const int16_t *ref, const int16_t *const *planes, size_t off,
             int len)
{
    uint32_t acc = 0;
    for (int k = 0; k < len; ++k)
        acc += sqI16(diffI16(ref[k], planes[k][off]));
    return static_cast<int32_t>(acc);
}

void
ssdSoaBatchI16(const int16_t *ref, const int16_t *const *planes,
               size_t off, int len, int count, int32_t *out)
{
    // Eight candidates per pass. Coefficient pairs (k, k+1) are
    // interleaved with unpacklo/hi so one madd accumulates both
    // squares per candidate: accA holds candidates 0-3, accB 4-7.
    const auto block8 = [&](size_t o, int32_t *dst) {
        __m128i accA = _mm_setzero_si128();
        __m128i accB = _mm_setzero_si128();
        int k = 0;
        for (; k + 2 <= len; k += 2) {
            const __m128i dk = _mm_sub_epi16(
                _mm_set1_epi16(ref[k]),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(planes[k] + o)));
            const __m128i dk1 = _mm_sub_epi16(
                _mm_set1_epi16(ref[k + 1]),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(planes[k + 1] + o)));
            const __m128i lo = _mm_unpacklo_epi16(dk, dk1);
            const __m128i hi = _mm_unpackhi_epi16(dk, dk1);
            accA = _mm_add_epi32(accA, _mm_madd_epi16(lo, lo));
            accB = _mm_add_epi32(accB, _mm_madd_epi16(hi, hi));
        }
        if (k < len) { // odd trailing coefficient: widen and square
            const __m128i d = _mm_sub_epi16(
                _mm_set1_epi16(ref[k]),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(planes[k] + o)));
            const __m128i wa = _mm_cvtepi16_epi32(d);
            const __m128i wb = _mm_cvtepi16_epi32(_mm_srli_si128(d, 8));
            accA = _mm_add_epi32(accA, _mm_mullo_epi32(wa, wa));
            accB = _mm_add_epi32(accB, _mm_mullo_epi32(wb, wb));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst), accA);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + 4), accB);
    };
    int i = 0;
    for (; i + 8 <= count; i += 8)
        block8(off + static_cast<size_t>(i), out + i);
    if (i < count) {
        if (count >= 8) {
            // Overlapped final pass: recompute the last full window of
            // 8 candidates instead of falling back to strided scalar
            // gathers. SSDs are pure per-candidate functions, so the
            // overlapping lanes just rewrite identical values.
            block8(off + static_cast<size_t>(count - 8),
                   out + (count - 8));
        } else {
            for (; i < count; ++i)
                out[i] = ssdSoaOneI16(ref, planes,
                                      off + static_cast<size_t>(i), len);
        }
    }
}

inline int32_t
ssdPairOneI16(const int16_t *ref, const int16_t *const *pair_planes,
              size_t o2, int len)
{
    uint32_t acc = 0;
    for (int p = 0; p + 2 <= len; p += 2) {
        const int16_t *plane = pair_planes[p / 2];
        acc += sqI16(diffI16(ref[p], plane[o2]));
        acc += sqI16(diffI16(ref[p + 1], plane[o2 + 1]));
    }
    return static_cast<int32_t>(acc);
}

void
ssdPairBatchI16(const int16_t *ref, const int16_t *const *pair_planes,
                size_t off, int len, int count, int32_t *out)
{
    // Pair-interleaved layout: one 128-bit load covers the (2p, 2p+1)
    // lanes of four adjacent candidates; madd against the broadcast
    // reference pair yields four already-linear int32 partial sums.
    // Eight candidates per pass, no shuffles.
    const int pairs = len / 2;
    __m128i rbc[32]; // ref pairs broadcast once; len <= 64 coefs
    for (int p = 0; p < pairs && p < 32; ++p) {
        const uint32_t packed =
            static_cast<uint16_t>(ref[2 * p]) |
            (static_cast<uint32_t>(static_cast<uint16_t>(ref[2 * p + 1]))
             << 16);
        rbc[p] = _mm_set1_epi32(static_cast<int32_t>(packed));
    }
    const auto block8 = [&](size_t o2, int32_t *dst) {
        __m128i acc0 = _mm_setzero_si128();
        __m128i acc1 = _mm_setzero_si128();
        for (int p = 0; p < pairs; ++p) {
            const int16_t *base = pair_planes[p] + o2;
            const __m128i d0 = _mm_sub_epi16(
                rbc[p], _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(base)));
            const __m128i d1 = _mm_sub_epi16(
                rbc[p], _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(base + 8)));
            acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(d0, d0));
            acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(d1, d1));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst), acc0);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + 4), acc1);
    };
    int i = 0;
    for (; i + 8 <= count; i += 8)
        block8(2 * (off + static_cast<size_t>(i)), out + i);
    if (i < count) {
        if (count >= 8) {
            // Overlapped final pass (see ssdSoaBatchI16).
            block8(2 * (off + static_cast<size_t>(count - 8)),
                   out + (count - 8));
        } else {
            for (; i < count; ++i)
                out[i] = ssdPairOneI16(
                    ref, pair_planes,
                    2 * (off + static_cast<size_t>(i)), len);
        }
    }
}

/**
 * Int16 DCT row pass: widen to int32, mirror fold, coefficient
 * products in int32, rounded shift, saturating pack (packs_epi32 is
 * the pack-point semantics of the contract).
 */
inline void
dct4PassI16(const int16_t *in, int16_t *out, const int16_t *even,
            const int16_t *odd, int shift)
{
    const __m128i cnt = _mm_cvtsi32_si128(shift);
    const __m128i rnd = _mm_set1_epi32(1 << (shift - 1));
    const __m128i r0 = _mm_cvtepi16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(in)));
    const __m128i r1 = _mm_cvtepi16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(in + 4)));
    const __m128i r2 = _mm_cvtepi16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(in + 8)));
    const __m128i r3 = _mm_cvtepi16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(in + 12)));
    const __m128i s0 = _mm_add_epi32(r0, r3);
    const __m128i s1 = _mm_add_epi32(r1, r2);
    const __m128i d0 = _mm_sub_epi32(r0, r3);
    const __m128i d1 = _mm_sub_epi32(r1, r2);
    const auto row = [&](int c0, int c1, __m128i x, __m128i y) {
        const __m128i v = _mm_add_epi32(
            _mm_mullo_epi32(_mm_set1_epi32(c0), x),
            _mm_mullo_epi32(_mm_set1_epi32(c1), y));
        return _mm_sra_epi32(_mm_add_epi32(v, rnd), cnt);
    };
    const __m128i o0 = row(even[0], even[1], s0, s1);
    const __m128i o1 = row(odd[0], odd[1], d0, d1);
    const __m128i o2 = row(even[2], even[3], s0, s1);
    const __m128i o3 = row(odd[2], odd[3], d0, d1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                     _mm_packs_epi32(o0, o1));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 8),
                     _mm_packs_epi32(o2, o3));
}

/** Pure permutation — bitwise-neutral, scalar is fine. */
inline void
transpose4I16(const int16_t *in, int16_t *out)
{
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            out[c * 4 + r] = in[r * 4 + c];
}

void
dct4ForwardI16(const int16_t *in, int16_t *out, const int16_t *even_q,
               const int16_t *odd_q, int shift1, int shift2)
{
    int16_t t1[16], t2[16];
    dct4PassI16(in, t1, even_q, odd_q, shift1);
    transpose4I16(t1, t2);
    dct4PassI16(t2, out, even_q, odd_q, shift2);
}

void
haarForwardPairI16(const int16_t *even, const int16_t *odd,
                   int16_t *approx, int16_t *detail, int16_t factor_q15,
                   int width)
{
    const __m128i f = _mm_set1_epi16(factor_q15);
    int c = 0;
    for (; c + 8 <= width; c += 8) {
        const __m128i e = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(even + c));
        const __m128i o = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(odd + c));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(approx + c),
                         _mm_mulhrs_epi16(_mm_adds_epi16(e, o), f));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(detail + c),
                         _mm_mulhrs_epi16(_mm_subs_epi16(e, o), f));
    }
    for (; c < width; ++c) {
        const int16_t e = even[c];
        const int16_t o = odd[c];
        approx[c] = mulhrsI16(satAddI16(e, o), factor_q15);
        detail[c] = mulhrsI16(satSubI16(e, o), factor_q15);
    }
}

void
haarInversePairI16(const int16_t *approx, const int16_t *detail,
                   int16_t *out_even, int16_t *out_odd, int16_t factor_q15,
                   int width)
{
    const __m128i f = _mm_set1_epi16(factor_q15);
    int c = 0;
    for (; c + 8 <= width; c += 8) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(approx + c));
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(detail + c));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out_even + c),
                         _mm_mulhrs_epi16(_mm_adds_epi16(a, d), f));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out_odd + c),
                         _mm_mulhrs_epi16(_mm_subs_epi16(a, d), f));
    }
    for (; c < width; ++c) {
        const int16_t a = approx[c];
        const int16_t d = detail[c];
        out_even[c] = mulhrsI16(satAddI16(a, d), factor_q15);
        out_odd[c] = mulhrsI16(satSubI16(a, d), factor_q15);
    }
}

int
hardThresholdI16(int16_t *v, int count, int16_t threshold)
{
    const __m128i thr = _mm_set1_epi16(threshold);
    int kept = 0;
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        const __m128i below = _mm_cmplt_epi16(_mm_abs_epi16(x), thr);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(v + i),
                         _mm_andnot_si128(below, x));
        kept += 8 - _mm_popcnt_u32(static_cast<unsigned>(
                        _mm_movemask_epi8(below))) /
                        2;
    }
    for (; i < count; ++i) {
        const int16_t av =
            v[i] < 0 ? static_cast<int16_t>(-static_cast<int32_t>(v[i]))
                     : v[i];
        if (av < threshold)
            v[i] = 0;
        else
            ++kept;
    }
    return kept;
}

// ---- fused group-major denoise kernels (DESIGN §12) --------------
//
// 4 coefficient lanes per __m128 step, replaying the exact scalar
// butterfly schedule down the stack rows; every operation is lane-
// vertical with the same per-element expressions as the scalar TU,
// so the results match the scalar fused kernels bitwise. Scalar
// lane tails repeat the reference loops verbatim.

/** Scalar-lane tail of haarShrinkFused (same body as the scalar TU). */
inline int
haarShrinkLaneTail(float *lane, int stack, int stride, float threshold)
{
    const float factor = 1.0f / std::sqrt(2.0f);
    float buf[16];
    float dom[16];
    for (int i = 0; i < stack; ++i)
        buf[i] = lane[static_cast<size_t>(i) * stride];
    int len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const float e = buf[2 * i];
            const float o = buf[2 * i + 1];
            dom[half + i] = (e - o) * factor;
            buf[i] = (e + o) * factor;
        }
        len = half;
    }
    dom[0] = buf[0];
    int kept = 0;
    for (int i = 0; i < stack; ++i) {
        if (std::fabs(dom[i]) < threshold)
            dom[i] = 0.0f;
        else
            ++kept;
    }
    buf[0] = dom[0];
    len = 1;
    while (len < stack) {
        float tmp[16];
        for (int i = 0; i < len; ++i) {
            const float a = buf[i];
            const float d = dom[len + i];
            tmp[2 * i] = (a + d) * factor;
            tmp[2 * i + 1] = (a - d) * factor;
        }
        len *= 2;
        for (int i = 0; i < len; ++i)
            buf[i] = tmp[i];
    }
    for (int i = 0; i < stack; ++i)
        lane[static_cast<size_t>(i) * stride] = buf[i];
    return kept;
}

/** Forward Haar butterfly schedule on stack rows held in registers. */
inline void
haarForwardStack(__m128 *buf, __m128 *dom, int stack, __m128 f)
{
    int len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const __m128 e = buf[2 * i];
            const __m128 o = buf[2 * i + 1];
            dom[half + i] = _mm_mul_ps(_mm_sub_ps(e, o), f);
            buf[i] = _mm_mul_ps(_mm_add_ps(e, o), f);
        }
        len = half;
    }
    dom[0] = buf[0];
}

/** Inverse Haar butterfly schedule; rebuilds rows into @p buf. */
inline void
haarInverseStack(__m128 *buf, const __m128 *dom, int stack, __m128 f)
{
    buf[0] = dom[0];
    int len = 1;
    while (len < stack) {
        __m128 tmp[16];
        for (int i = 0; i < len; ++i) {
            const __m128 a = buf[i];
            const __m128 d = dom[len + i];
            tmp[2 * i] = _mm_mul_ps(_mm_add_ps(a, d), f);
            tmp[2 * i + 1] = _mm_mul_ps(_mm_sub_ps(a, d), f);
        }
        len *= 2;
        for (int i = 0; i < len; ++i)
            buf[i] = tmp[i];
    }
}

int
haarShrinkFused(float *g, int stack, int width, float threshold)
{
    const __m128 f = _mm_set1_ps(1.0f / std::sqrt(2.0f));
    const __m128 abs_mask =
        _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    const __m128 thr = _mm_set1_ps(threshold);
    int kept = 0;
    int c = 0;
    for (; c + 4 <= width; c += 4) {
        __m128 buf[16];
        __m128 dom[16];
        for (int i = 0; i < stack; ++i)
            buf[i] = _mm_loadu_ps(g + static_cast<size_t>(i) * width + c);
        haarForwardStack(buf, dom, stack, f);
        for (int i = 0; i < stack; ++i) {
            const __m128 below =
                _mm_cmplt_ps(_mm_and_ps(dom[i], abs_mask), thr);
            dom[i] = _mm_andnot_ps(below, dom[i]);
            kept += 4 - _mm_popcnt_u32(static_cast<unsigned>(
                            _mm_movemask_ps(below)));
        }
        haarInverseStack(buf, dom, stack, f);
        for (int i = 0; i < stack; ++i)
            _mm_storeu_ps(g + static_cast<size_t>(i) * width + c, buf[i]);
    }
    for (; c < width; ++c)
        kept += haarShrinkLaneTail(g + c, stack, width, threshold);
    return kept;
}

/** Scalar-lane tail of wienerShrinkFused. */
inline int
wienerShrinkLaneTail(float *lane, float *blane, float *wlane, int stack,
                     int stride, float sigma2)
{
    const float factor = 1.0f / std::sqrt(2.0f);
    float buf[16];
    float dom[16];
    float bdom[16];
    for (int i = 0; i < stack; ++i)
        buf[i] = lane[static_cast<size_t>(i) * stride];
    int len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const float e = buf[2 * i];
            const float o = buf[2 * i + 1];
            dom[half + i] = (e - o) * factor;
            buf[i] = (e + o) * factor;
        }
        len = half;
    }
    dom[0] = buf[0];
    for (int i = 0; i < stack; ++i)
        buf[i] = blane[static_cast<size_t>(i) * stride];
    len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const float e = buf[2 * i];
            const float o = buf[2 * i + 1];
            bdom[half + i] = (e - o) * factor;
            buf[i] = (e + o) * factor;
        }
        len = half;
    }
    bdom[0] = buf[0];
    int strong = 0;
    for (int i = 0; i < stack; ++i) {
        const float b2 = bdom[i] * bdom[i];
        const float wi = b2 / (b2 + sigma2);
        wlane[static_cast<size_t>(i) * stride] = wi;
        blane[static_cast<size_t>(i) * stride] = bdom[i];
        dom[i] *= wi;
        if (wi > 0.5f)
            ++strong;
    }
    buf[0] = dom[0];
    len = 1;
    while (len < stack) {
        float tmp[16];
        for (int i = 0; i < len; ++i) {
            const float a = buf[i];
            const float d = dom[len + i];
            tmp[2 * i] = (a + d) * factor;
            tmp[2 * i + 1] = (a - d) * factor;
        }
        len *= 2;
        for (int i = 0; i < len; ++i)
            buf[i] = tmp[i];
    }
    for (int i = 0; i < stack; ++i)
        lane[static_cast<size_t>(i) * stride] = buf[i];
    return strong;
}

int
wienerShrinkFused(float *g, float *bg, float *w, int stack, int width,
                  float sigma2)
{
    const __m128 f = _mm_set1_ps(1.0f / std::sqrt(2.0f));
    const __m128 s2 = _mm_set1_ps(sigma2);
    const __m128 half = _mm_set1_ps(0.5f);
    int strong = 0;
    int c = 0;
    for (; c + 4 <= width; c += 4) {
        __m128 buf[16];
        __m128 dom[16];
        __m128 bdom[16];
        for (int i = 0; i < stack; ++i)
            buf[i] = _mm_loadu_ps(g + static_cast<size_t>(i) * width + c);
        haarForwardStack(buf, dom, stack, f);
        for (int i = 0; i < stack; ++i)
            buf[i] = _mm_loadu_ps(bg + static_cast<size_t>(i) * width + c);
        haarForwardStack(buf, bdom, stack, f);
        for (int i = 0; i < stack; ++i) {
            const __m128 b2 = _mm_mul_ps(bdom[i], bdom[i]);
            const __m128 wv = _mm_div_ps(b2, _mm_add_ps(b2, s2));
            _mm_storeu_ps(w + static_cast<size_t>(i) * width + c, wv);
            _mm_storeu_ps(bg + static_cast<size_t>(i) * width + c,
                          bdom[i]);
            dom[i] = _mm_mul_ps(dom[i], wv);
            strong += _mm_popcnt_u32(static_cast<unsigned>(
                _mm_movemask_ps(_mm_cmpgt_ps(wv, half))));
        }
        haarInverseStack(buf, dom, stack, f);
        for (int i = 0; i < stack; ++i)
            _mm_storeu_ps(g + static_cast<size_t>(i) * width + c, buf[i]);
    }
    for (; c < width; ++c)
        strong += wienerShrinkLaneTail(g + c, bg + c, w + c, stack, width,
                                       sigma2);
    return strong;
}

void
aggregateGroup(float *num, float *den, int plane_w, const float *coefs,
               const int *lx, const int *ly, int stack, float weight,
               const float *inv_even, const float *inv_odd)
{
    const __m128 wv = _mm_set1_ps(weight);
    float px[16];
    for (int i = 0; i < stack; ++i) {
        dct4Inverse(coefs + 16 * i, px, inv_even, inv_odd);
        for (int r = 0; r < 4; ++r) {
            const size_t off =
                static_cast<size_t>(ly[i] + r) * plane_w + lx[i];
            const __m128 p = _mm_loadu_ps(px + 4 * r);
            _mm_storeu_ps(num + off,
                          _mm_add_ps(_mm_loadu_ps(num + off),
                                     _mm_mul_ps(wv, p)));
            _mm_storeu_ps(den + off,
                          _mm_add_ps(_mm_loadu_ps(den + off), wv));
        }
    }
}

/** Scalar-lane tail of haarShrinkFusedI16. */
inline int
haarShrinkLaneTailI16(int16_t *lane, int stack, int stride,
                      int16_t threshold, int16_t factor_q15)
{
    int16_t buf[16];
    int16_t dom[16];
    for (int i = 0; i < stack; ++i)
        buf[i] = lane[static_cast<size_t>(i) * stride];
    int len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const int16_t e = buf[2 * i];
            const int16_t o = buf[2 * i + 1];
            dom[half + i] = mulhrsI16(satSubI16(e, o), factor_q15);
            buf[i] = mulhrsI16(satAddI16(e, o), factor_q15);
        }
        len = half;
    }
    dom[0] = buf[0];
    int kept = 0;
    for (int i = 0; i < stack; ++i) {
        const int16_t av =
            dom[i] < 0
                ? static_cast<int16_t>(-static_cast<int32_t>(dom[i]))
                : dom[i];
        if (av < threshold)
            dom[i] = 0;
        else
            ++kept;
    }
    buf[0] = dom[0];
    len = 1;
    while (len < stack) {
        int16_t tmp[16];
        for (int i = 0; i < len; ++i) {
            const int16_t a = buf[i];
            const int16_t d = dom[len + i];
            tmp[2 * i] = mulhrsI16(satAddI16(a, d), factor_q15);
            tmp[2 * i + 1] = mulhrsI16(satSubI16(a, d), factor_q15);
        }
        len *= 2;
        for (int i = 0; i < len; ++i)
            buf[i] = tmp[i];
    }
    for (int i = 0; i < stack; ++i)
        lane[static_cast<size_t>(i) * stride] = buf[i];
    return kept;
}

int
haarShrinkFusedI16(int16_t *g, int stack, int width, int16_t threshold,
                   int16_t factor_q15)
{
    const __m128i f = _mm_set1_epi16(factor_q15);
    const __m128i thr = _mm_set1_epi16(threshold);
    int kept = 0;
    int c = 0;
    for (; c + 8 <= width; c += 8) {
        __m128i buf[16];
        __m128i dom[16];
        for (int i = 0; i < stack; ++i)
            buf[i] = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                g + static_cast<size_t>(i) * width + c));
        int len = stack;
        while (len > 1) {
            const int half = len / 2;
            for (int i = 0; i < half; ++i) {
                const __m128i e = buf[2 * i];
                const __m128i o = buf[2 * i + 1];
                dom[half + i] =
                    _mm_mulhrs_epi16(_mm_subs_epi16(e, o), f);
                buf[i] = _mm_mulhrs_epi16(_mm_adds_epi16(e, o), f);
            }
            len = half;
        }
        dom[0] = buf[0];
        for (int i = 0; i < stack; ++i) {
            const __m128i below =
                _mm_cmplt_epi16(_mm_abs_epi16(dom[i]), thr);
            dom[i] = _mm_andnot_si128(below, dom[i]);
            kept += 8 - _mm_popcnt_u32(static_cast<unsigned>(
                            _mm_movemask_epi8(below))) /
                            2;
        }
        buf[0] = dom[0];
        len = 1;
        while (len < stack) {
            __m128i tmp[16];
            for (int i = 0; i < len; ++i) {
                const __m128i a = buf[i];
                const __m128i d = dom[len + i];
                tmp[2 * i] = _mm_mulhrs_epi16(_mm_adds_epi16(a, d), f);
                tmp[2 * i + 1] =
                    _mm_mulhrs_epi16(_mm_subs_epi16(a, d), f);
            }
            len *= 2;
            for (int i = 0; i < len; ++i)
                buf[i] = tmp[i];
        }
        for (int i = 0; i < stack; ++i)
            _mm_storeu_si128(reinterpret_cast<__m128i *>(
                                 g + static_cast<size_t>(i) * width + c),
                             buf[i]);
    }
    for (; c < width; ++c)
        kept += haarShrinkLaneTailI16(g + c, stack, width, threshold,
                                      factor_q15);
    return kept;
}

const KernelTable kSseTableStorage = {
    ssd,           ssdBounded,      ssdFull,       ssdBatch16,
    ssdSoa,        ssdSoaBatch,     dct4Forward,   dct4Inverse,
    haarForwardPair, haarInversePair, hardThreshold, wienerApply,
    aggregateAdd,  mergeAdd,
    ssdI16,        ssdBoundedI16,   ssdSoaI16,     ssdSoaBatchI16,
    ssdPairBatchI16,
    dct4ForwardI16, haarForwardPairI16, haarInversePairI16,
    hardThresholdI16,
    haarShrinkFused, wienerShrinkFused, aggregateGroup,
    haarShrinkFusedI16,
};

} // namespace

const KernelTable &kSseTable = kSseTableStorage;

} // namespace detail
} // namespace simd
} // namespace ideal

#else // !x86

namespace ideal {
namespace simd {
namespace detail {

const KernelTable &kSseTable = kScalarTable;

} // namespace detail
} // namespace simd
} // namespace ideal

#endif
