/**
 * @file
 * SSE4.2 kernels (128-bit). The 8 canonical SSD lanes live in two
 * __m128 accumulators; every vertical kernel processes 4 lanes per
 * step with scalar tails that repeat the reference order. Compiled
 * with -msse4.2 -ffp-contract=off; bitwise parity with the scalar
 * table is enforced by tests/test_simd.cc.
 */

#include "simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <nmmintrin.h>

#include <cmath>

namespace ideal {
namespace simd {
namespace detail {

namespace {

/** Fold [t0..t3] as (t0+t2) + (t1+t3) — the canonical 128-bit fold. */
inline float
fold4(__m128 t)
{
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));
    const __m128 r = _mm_add_ss(
        u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1)));
    return _mm_cvtss_f32(r);
}

/** Fold the two 4-lane halves of the canonical 8-lane tree. */
inline float
fold8(__m128 lo, __m128 hi)
{
    return fold4(_mm_add_ps(lo, hi));
}

inline void
ssdStep8(const float *a, const float *b, __m128 &lo, __m128 &hi)
{
    const __m128 d0 = _mm_sub_ps(_mm_loadu_ps(a), _mm_loadu_ps(b));
    const __m128 d1 = _mm_sub_ps(_mm_loadu_ps(a + 4), _mm_loadu_ps(b + 4));
    lo = _mm_add_ps(lo, _mm_mul_ps(d0, d0));
    hi = _mm_add_ps(hi, _mm_mul_ps(d1, d1));
}

inline float
ssdBlock16(const float *a, const float *b)
{
    const __m128 d0 = _mm_sub_ps(_mm_loadu_ps(a), _mm_loadu_ps(b));
    const __m128 d1 = _mm_sub_ps(_mm_loadu_ps(a + 4), _mm_loadu_ps(b + 4));
    const __m128 d2 = _mm_sub_ps(_mm_loadu_ps(a + 8), _mm_loadu_ps(b + 8));
    const __m128 d3 =
        _mm_sub_ps(_mm_loadu_ps(a + 12), _mm_loadu_ps(b + 12));
    const __m128 lo =
        _mm_add_ps(_mm_mul_ps(d0, d0), _mm_mul_ps(d2, d2));
    const __m128 hi =
        _mm_add_ps(_mm_mul_ps(d1, d1), _mm_mul_ps(d3, d3));
    return fold8(lo, hi);
}

float
ssd(const float *a, const float *b, int len)
{
    __m128 lo = _mm_setzero_ps();
    __m128 hi = _mm_setzero_ps();
    int i = 0;
    for (; i + 8 <= len; i += 8)
        ssdStep8(a + i, b + i, lo, hi);
    float r = fold8(lo, hi);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        r += d * d;
    }
    return r;
}

float
ssdFull(const float *a, const float *b, int len)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16)
        acc += ssdBlock16(a + i, b + i);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

float
ssdBounded(const float *a, const float *b, int len, float bound)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16) {
        acc += ssdBlock16(a + i, b + i);
        if (acc > bound)
            return acc;
    }
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

void
ssdBatch16(const float *ref, const float *cands, int count, float *out)
{
    const __m128 r0 = _mm_loadu_ps(ref);
    const __m128 r1 = _mm_loadu_ps(ref + 4);
    const __m128 r2 = _mm_loadu_ps(ref + 8);
    const __m128 r3 = _mm_loadu_ps(ref + 12);
    for (int i = 0; i < count; ++i) {
        const float *c = cands + 16 * i;
        const __m128 d0 = _mm_sub_ps(_mm_loadu_ps(c), r0);
        const __m128 d1 = _mm_sub_ps(_mm_loadu_ps(c + 4), r1);
        const __m128 d2 = _mm_sub_ps(_mm_loadu_ps(c + 8), r2);
        const __m128 d3 = _mm_sub_ps(_mm_loadu_ps(c + 12), r3);
        const __m128 lo =
            _mm_add_ps(_mm_mul_ps(d0, d0), _mm_mul_ps(d2, d2));
        const __m128 hi =
            _mm_add_ps(_mm_mul_ps(d1, d1), _mm_mul_ps(d3, d3));
        out[i] = fold8(lo, hi);
    }
}

/**
 * Scalar canonical fold of 8 lanes (the SoA pair kernel walks strided
 * per-coefficient values, so there is nothing to vectorize — the
 * scalar sequence IS the reference order and keeps bitwise parity).
 */
inline float
fold8Scalar(const float s[8])
{
    const float t0 = s[0] + s[4];
    const float t1 = s[1] + s[5];
    const float t2 = s[2] + s[6];
    const float t3 = s[3] + s[7];
    const float u0 = t0 + t2;
    const float u1 = t1 + t3;
    return u0 + u1;
}

float
ssdSoa(const float *const *pa, size_t off_a, const float *const *pb,
       size_t off_b, int len, float bound)
{
    float acc = 0.0f;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        float s[8];
        for (int j = 0; j < 8; ++j) {
            const float d = pa[k + j][off_a] - pb[k + j][off_b];
            s[j] = d * d;
        }
        for (int j = 0; j < 8; ++j) {
            const float d = pa[k + 8 + j][off_a] - pb[k + 8 + j][off_b];
            s[j] += d * d;
        }
        acc += fold8Scalar(s);
        if (acc > bound)
            return acc;
    }
    for (; k < len; ++k) {
        const float d = pa[k][off_a] - pb[k][off_b];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

/** One scalar SoA candidate (partial-vector batch tail). */
inline float
ssdSoaOne(const float *ref, const float *const *planes, size_t off,
          int len)
{
    float acc = 0.0f;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        float s[8];
        for (int j = 0; j < 8; ++j) {
            const float d = ref[k + j] - planes[k + j][off];
            s[j] = d * d;
        }
        for (int j = 0; j < 8; ++j) {
            const float d = ref[k + 8 + j] - planes[k + 8 + j][off];
            s[j] += d * d;
        }
        acc += fold8Scalar(s);
    }
    for (; k < len; ++k) {
        const float d = ref[k] - planes[k][off];
        acc += d * d;
    }
    return acc;
}

void
ssdSoaBatch(const float *ref, const float *const *planes, size_t off,
            int len, int count, float *out)
{
    // Four candidates per pass: the 8 canonical accumulator lanes of
    // each candidate live across 8 __m128 registers (candidate =
    // vector lane), so the block fold is purely vertical and the
    // per-lane operation sequence equals the scalar reference exactly.
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        const size_t o = off + static_cast<size_t>(i);
        __m128 acc = _mm_setzero_ps();
        int k = 0;
        for (; k + 16 <= len; k += 16) {
            __m128 s[8];
            for (int j = 0; j < 8; ++j) {
                const __m128 d =
                    _mm_sub_ps(_mm_set1_ps(ref[k + j]),
                               _mm_loadu_ps(planes[k + j] + o));
                s[j] = _mm_mul_ps(d, d);
            }
            for (int j = 0; j < 8; ++j) {
                const __m128 d =
                    _mm_sub_ps(_mm_set1_ps(ref[k + 8 + j]),
                               _mm_loadu_ps(planes[k + 8 + j] + o));
                s[j] = _mm_add_ps(s[j], _mm_mul_ps(d, d));
            }
            const __m128 u0 = _mm_add_ps(_mm_add_ps(s[0], s[4]),
                                         _mm_add_ps(s[2], s[6]));
            const __m128 u1 = _mm_add_ps(_mm_add_ps(s[1], s[5]),
                                         _mm_add_ps(s[3], s[7]));
            acc = _mm_add_ps(acc, _mm_add_ps(u0, u1));
        }
        for (; k < len; ++k) {
            const __m128 d = _mm_sub_ps(_mm_set1_ps(ref[k]),
                                        _mm_loadu_ps(planes[k] + o));
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
        }
        _mm_storeu_ps(out + i, acc);
    }
    for (; i < count; ++i)
        out[i] = ssdSoaOne(ref, planes, off + static_cast<size_t>(i), len);
}

inline void
dct4Pass(const float *in, float *out, const float *even, const float *odd)
{
    const __m128 r0 = _mm_loadu_ps(in);
    const __m128 r1 = _mm_loadu_ps(in + 4);
    const __m128 r2 = _mm_loadu_ps(in + 8);
    const __m128 r3 = _mm_loadu_ps(in + 12);
    const __m128 s0 = _mm_add_ps(r0, r3);
    const __m128 s1 = _mm_add_ps(r1, r2);
    const __m128 d0 = _mm_sub_ps(r0, r3);
    const __m128 d1 = _mm_sub_ps(r1, r2);
    _mm_storeu_ps(out,
                  _mm_add_ps(_mm_mul_ps(_mm_set1_ps(even[0]), s0),
                             _mm_mul_ps(_mm_set1_ps(even[1]), s1)));
    _mm_storeu_ps(out + 4,
                  _mm_add_ps(_mm_mul_ps(_mm_set1_ps(odd[0]), d0),
                             _mm_mul_ps(_mm_set1_ps(odd[1]), d1)));
    _mm_storeu_ps(out + 8,
                  _mm_add_ps(_mm_mul_ps(_mm_set1_ps(even[2]), s0),
                             _mm_mul_ps(_mm_set1_ps(even[3]), s1)));
    _mm_storeu_ps(out + 12,
                  _mm_add_ps(_mm_mul_ps(_mm_set1_ps(odd[2]), d0),
                             _mm_mul_ps(_mm_set1_ps(odd[3]), d1)));
}

inline void
dct4PassInv(const float *in, float *out, const float *even,
            const float *odd)
{
    const __m128 r0 = _mm_loadu_ps(in);
    const __m128 r1 = _mm_loadu_ps(in + 4);
    const __m128 r2 = _mm_loadu_ps(in + 8);
    const __m128 r3 = _mm_loadu_ps(in + 12);
    for (int i = 0; i < 2; ++i) {
        const __m128 e =
            _mm_add_ps(_mm_mul_ps(_mm_set1_ps(even[2 * i]), r0),
                       _mm_mul_ps(_mm_set1_ps(even[2 * i + 1]), r2));
        const __m128 o =
            _mm_add_ps(_mm_mul_ps(_mm_set1_ps(odd[2 * i]), r1),
                       _mm_mul_ps(_mm_set1_ps(odd[2 * i + 1]), r3));
        _mm_storeu_ps(out + 4 * i, _mm_add_ps(e, o));
        _mm_storeu_ps(out + 4 * (3 - i), _mm_sub_ps(e, o));
    }
}

inline void
transpose4(const float *in, float *out)
{
    __m128 r0 = _mm_loadu_ps(in);
    __m128 r1 = _mm_loadu_ps(in + 4);
    __m128 r2 = _mm_loadu_ps(in + 8);
    __m128 r3 = _mm_loadu_ps(in + 12);
    _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
    _mm_storeu_ps(out, r0);
    _mm_storeu_ps(out + 4, r1);
    _mm_storeu_ps(out + 8, r2);
    _mm_storeu_ps(out + 12, r3);
}

void
dct4Forward(const float *in, float *out, const float *fwd_even,
            const float *fwd_odd)
{
    float t1[16], t2[16];
    dct4Pass(in, t1, fwd_even, fwd_odd);
    transpose4(t1, t2);
    dct4Pass(t2, out, fwd_even, fwd_odd);
}

void
dct4Inverse(const float *in, float *out, const float *inv_even,
            const float *inv_odd)
{
    float t1[16], t2[16];
    dct4PassInv(in, t1, inv_even, inv_odd);
    transpose4(t1, t2);
    dct4PassInv(t2, out, inv_even, inv_odd);
}

void
haarForwardPair(const float *even, const float *odd, float *approx,
                float *detail, float factor, int width)
{
    const __m128 f = _mm_set1_ps(factor);
    int c = 0;
    for (; c + 4 <= width; c += 4) {
        const __m128 e = _mm_loadu_ps(even + c);
        const __m128 o = _mm_loadu_ps(odd + c);
        _mm_storeu_ps(approx + c, _mm_mul_ps(_mm_add_ps(e, o), f));
        _mm_storeu_ps(detail + c, _mm_mul_ps(_mm_sub_ps(e, o), f));
    }
    for (; c < width; ++c) {
        const float e = even[c];
        const float o = odd[c];
        approx[c] = (e + o) * factor;
        detail[c] = (e - o) * factor;
    }
}

void
haarInversePair(const float *approx, const float *detail, float *out_even,
                float *out_odd, float factor, int width)
{
    const __m128 f = _mm_set1_ps(factor);
    int c = 0;
    for (; c + 4 <= width; c += 4) {
        const __m128 a = _mm_loadu_ps(approx + c);
        const __m128 d = _mm_loadu_ps(detail + c);
        _mm_storeu_ps(out_even + c, _mm_mul_ps(_mm_add_ps(a, d), f));
        _mm_storeu_ps(out_odd + c, _mm_mul_ps(_mm_sub_ps(a, d), f));
    }
    for (; c < width; ++c) {
        const float a = approx[c];
        const float d = detail[c];
        out_even[c] = (a + d) * factor;
        out_odd[c] = (a - d) * factor;
    }
}

int
hardThreshold(float *v, int count, float threshold)
{
    const __m128 abs_mask =
        _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    const __m128 thr = _mm_set1_ps(threshold);
    int kept = 0;
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128 x = _mm_loadu_ps(v + i);
        // below = |x| < thr (NaN compares false, i.e. NaN is kept —
        // same as the scalar std::abs(x) < thr).
        const __m128 below = _mm_cmplt_ps(_mm_and_ps(x, abs_mask), thr);
        _mm_storeu_ps(v + i, _mm_andnot_ps(below, x));
        kept += 4 - _mm_popcnt_u32(
                        static_cast<unsigned>(_mm_movemask_ps(below)));
    }
    for (; i < count; ++i) {
        if (std::fabs(v[i]) < threshold)
            v[i] = 0.0f;
        else
            ++kept;
    }
    return kept;
}

int
wienerApply(float *v, const float *b, float *w, int count, float sigma2)
{
    const __m128 s2 = _mm_set1_ps(sigma2);
    const __m128 half = _mm_set1_ps(0.5f);
    int strong = 0;
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128 bv = _mm_loadu_ps(b + i);
        const __m128 b2 = _mm_mul_ps(bv, bv);
        const __m128 wv = _mm_div_ps(b2, _mm_add_ps(b2, s2));
        _mm_storeu_ps(w + i, wv);
        _mm_storeu_ps(v + i, _mm_mul_ps(_mm_loadu_ps(v + i), wv));
        strong += _mm_popcnt_u32(static_cast<unsigned>(
            _mm_movemask_ps(_mm_cmpgt_ps(wv, half))));
    }
    for (; i < count; ++i) {
        const float b2 = b[i] * b[i];
        const float wi = b2 / (b2 + sigma2);
        w[i] = wi;
        v[i] *= wi;
        if (wi > 0.5f)
            ++strong;
    }
    return strong;
}

void
aggregateAdd(float *num, float *den, const float *pix, float weight,
             int count)
{
    const __m128 wv = _mm_set1_ps(weight);
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128 n = _mm_loadu_ps(num + i);
        const __m128 p = _mm_loadu_ps(pix + i);
        _mm_storeu_ps(num + i, _mm_add_ps(n, _mm_mul_ps(wv, p)));
        _mm_storeu_ps(den + i,
                      _mm_add_ps(_mm_loadu_ps(den + i), wv));
    }
    for (; i < count; ++i) {
        num[i] += weight * pix[i];
        den[i] += weight;
    }
}

void
mergeAdd(float *num, float *den, const float *onum, const float *oden,
         int count)
{
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        _mm_storeu_ps(num + i, _mm_add_ps(_mm_loadu_ps(num + i),
                                          _mm_loadu_ps(onum + i)));
        _mm_storeu_ps(den + i, _mm_add_ps(_mm_loadu_ps(den + i),
                                          _mm_loadu_ps(oden + i)));
    }
    for (; i < count; ++i) {
        num[i] += onum[i];
        den[i] += oden[i];
    }
}

const KernelTable kSseTableStorage = {
    ssd,           ssdBounded,      ssdFull,       ssdBatch16,
    ssdSoa,        ssdSoaBatch,     dct4Forward,   dct4Inverse,
    haarForwardPair, haarInversePair, hardThreshold, wienerApply,
    aggregateAdd,  mergeAdd,
};

} // namespace

const KernelTable &kSseTable = kSseTableStorage;

} // namespace detail
} // namespace simd
} // namespace ideal

#else // !x86

namespace ideal {
namespace simd {
namespace detail {

const KernelTable &kSseTable = kScalarTable;

} // namespace detail
} // namespace simd
} // namespace ideal

#endif
