/**
 * @file
 * Runtime dispatch: probe the CPU once, honor the IDEAL_SIMD override,
 * and hand out the matching kernel table.
 */

#include "simd/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ideal {
namespace simd {

namespace {

const KernelTable &
tableFor(Level level)
{
    switch (level) {
    case Level::Avx2:
        return detail::kAvx2Table;
    case Level::Sse:
        return detail::kSseTable;
    case Level::Scalar:
    default:
        return detail::kScalarTable;
    }
}

Level
probeBest()
{
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
    if (__builtin_cpu_supports("sse4.2"))
        return Level::Sse;
#endif
    return Level::Scalar;
}

/**
 * Parse IDEAL_SIMD. Returns the best supported level when unset;
 * warns and clamps when the request is unknown or above what the CPU
 * supports.
 */
Level
resolveLevel(Level best)
{
    const char *env = std::getenv("IDEAL_SIMD");
    if (env == nullptr || env[0] == '\0')
        return best;

    Level requested = best;
    if (std::strcmp(env, "scalar") == 0) {
        requested = Level::Scalar;
    } else if (std::strcmp(env, "sse") == 0) {
        requested = Level::Sse;
    } else if (std::strcmp(env, "avx2") == 0) {
        requested = Level::Avx2;
    } else {
        std::fprintf(stderr,
                     "ideal: unknown IDEAL_SIMD=\"%s\" "
                     "(expected scalar|sse|avx2), using %s\n",
                     env, toString(best));
        return requested;
    }
    if (requested > best) {
        std::fprintf(stderr,
                     "ideal: IDEAL_SIMD=%s not supported by this CPU, "
                     "using %s\n",
                     env, toString(best));
        return best;
    }
    return requested;
}

std::atomic<int> gActiveLevel{-1};

Level
initLevel()
{
    const Level resolved = resolveLevel(probeBest());
    int expected = -1;
    // First caller wins; concurrent callers all resolve to the same
    // value anyway (env + CPUID are stable).
    gActiveLevel.compare_exchange_strong(expected,
                                         static_cast<int>(resolved));
    return static_cast<Level>(gActiveLevel.load());
}

} // namespace

const char *
toString(Level level)
{
    switch (level) {
    case Level::Avx2:
        return "avx2";
    case Level::Sse:
        return "sse";
    case Level::Scalar:
    default:
        return "scalar";
    }
}

Level
bestSupported()
{
    static const Level best = probeBest();
    return best;
}

Level
activeLevel()
{
    const int level = gActiveLevel.load(std::memory_order_acquire);
    if (level >= 0)
        return static_cast<Level>(level);
    return initLevel();
}

void
setLevel(Level level)
{
    if (level > bestSupported())
        level = bestSupported();
    gActiveLevel.store(static_cast<int>(level),
                       std::memory_order_release);
}

const KernelTable &
kernels()
{
    return tableFor(activeLevel());
}

const KernelTable &
kernelsFor(Level level)
{
    if (level > bestSupported())
        level = bestSupported();
    return tableFor(level);
}

} // namespace simd
} // namespace ideal
