/**
 * @file
 * Scalar reference kernels — the canonical semantics every SIMD level
 * must reproduce bitwise (simd.h's reduction-order rule). Written in
 * the exact operation order the vector variants use: 8 accumulator
 * lanes for the SSD tree, per-lane vertical sequences everywhere
 * else, and never a fused multiply-add (this TU is compiled with
 * -ffp-contract=off and baseline ISA).
 */

#include "simd/kernels.h"

#include <cmath>

namespace ideal {
namespace simd {
namespace detail {

namespace {

/**
 * The canonical horizontal fold of the 8 SSD lanes. Matches the
 * 128-bit reduction sequence: lo+hi vertical add, movehl add,
 * scalar lane add.
 */
inline float
fold8(const float s[8])
{
    const float t0 = s[0] + s[4];
    const float t1 = s[1] + s[5];
    const float t2 = s[2] + s[6];
    const float t3 = s[3] + s[7];
    const float u0 = t0 + t2;
    const float u1 = t1 + t3;
    return u0 + u1;
}

/** One 16-element block: lanes j += d_j^2 then d_{8+j}^2, fold. */
inline float
ssdBlock16(const float *a, const float *b)
{
    float s[8];
    for (int j = 0; j < 8; ++j) {
        const float d = a[j] - b[j];
        s[j] = d * d;
    }
    for (int j = 0; j < 8; ++j) {
        const float d = a[8 + j] - b[8 + j];
        s[j] += d * d;
    }
    return fold8(s);
}

float
ssd(const float *a, const float *b, int len)
{
    float s[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    int i = 0;
    for (; i + 8 <= len; i += 8) {
        for (int j = 0; j < 8; ++j) {
            const float d = a[i + j] - b[i + j];
            s[j] += d * d;
        }
    }
    float r = fold8(s);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        r += d * d;
    }
    return r;
}

float
ssdFull(const float *a, const float *b, int len)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16)
        acc += ssdBlock16(a + i, b + i);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

float
ssdBounded(const float *a, const float *b, int len, float bound)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16) {
        acc += ssdBlock16(a + i, b + i);
        if (acc > bound)
            return acc;
    }
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

void
ssdBatch16(const float *ref, const float *cands, int count, float *out)
{
    for (int i = 0; i < count; ++i)
        out[i] = ssdBlock16(ref, cands + 16 * i);
}

float
ssdSoa(const float *const *pa, size_t off_a, const float *const *pb,
       size_t off_b, int len, float bound)
{
    float acc = 0.0f;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        float s[8];
        for (int j = 0; j < 8; ++j) {
            const float d = pa[k + j][off_a] - pb[k + j][off_b];
            s[j] = d * d;
        }
        for (int j = 0; j < 8; ++j) {
            const float d = pa[k + 8 + j][off_a] - pb[k + 8 + j][off_b];
            s[j] += d * d;
        }
        acc += fold8(s);
        if (acc > bound)
            return acc;
    }
    for (; k < len; ++k) {
        const float d = pa[k][off_a] - pb[k][off_b];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

/**
 * One candidate of the SoA batch; shared by every partial-vector tail.
 * Identical operation sequence to ssdSoa (the bound checks there do
 * not change any arithmetic), so batch results equal single-pair
 * results bitwise.
 */
inline float
ssdSoaOne(const float *ref, const float *const *planes, size_t off,
          int len)
{
    float acc = 0.0f;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        float s[8];
        for (int j = 0; j < 8; ++j) {
            const float d = ref[k + j] - planes[k + j][off];
            s[j] = d * d;
        }
        for (int j = 0; j < 8; ++j) {
            const float d = ref[k + 8 + j] - planes[k + 8 + j][off];
            s[j] += d * d;
        }
        acc += fold8(s);
    }
    for (; k < len; ++k) {
        const float d = ref[k] - planes[k][off];
        acc += d * d;
    }
    return acc;
}

void
ssdSoaBatch(const float *ref, const float *const *planes, size_t off,
            int len, int count, float *out)
{
    for (int i = 0; i < count; ++i)
        out[i] = ssdSoaOne(ref, planes, off + static_cast<size_t>(i), len);
}

/**
 * Folded 4x4 DCT row pass (both halves of the 2-D transform use it):
 * fold rows into mirror sums/differences, then two half-size
 * products with all 4 columns riding along as lanes.
 */
inline void
dct4Pass(const float *in, float *out, const float *even, const float *odd)
{
    float s0[4], s1[4], d0[4], d1[4];
    for (int c = 0; c < 4; ++c) {
        s0[c] = in[c] + in[12 + c];
        s1[c] = in[4 + c] + in[8 + c];
        d0[c] = in[c] - in[12 + c];
        d1[c] = in[4 + c] - in[8 + c];
    }
    for (int c = 0; c < 4; ++c)
        out[c] = even[0] * s0[c] + even[1] * s1[c];
    for (int c = 0; c < 4; ++c)
        out[4 + c] = odd[0] * d0[c] + odd[1] * d1[c];
    for (int c = 0; c < 4; ++c)
        out[8 + c] = even[2] * s0[c] + even[3] * s1[c];
    for (int c = 0; c < 4; ++c)
        out[12 + c] = odd[2] * d0[c] + odd[3] * d1[c];
}

/** Inverse row pass: reconstruct the mirror pair from even/odd rows. */
inline void
dct4PassInv(const float *in, float *out, const float *even,
            const float *odd)
{
    for (int i = 0; i < 2; ++i) {
        float *lo = out + 4 * i;
        float *hi = out + 4 * (3 - i);
        for (int c = 0; c < 4; ++c) {
            const float e = even[2 * i] * in[c] +
                            even[2 * i + 1] * in[8 + c];
            const float o = odd[2 * i] * in[4 + c] +
                            odd[2 * i + 1] * in[12 + c];
            lo[c] = e + o;
            hi[c] = e - o;
        }
    }
}

inline void
transpose4(const float *in, float *out)
{
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            out[c * 4 + r] = in[r * 4 + c];
}

void
dct4Forward(const float *in, float *out, const float *fwd_even,
            const float *fwd_odd)
{
    float t1[16], t2[16];
    dct4Pass(in, t1, fwd_even, fwd_odd);
    transpose4(t1, t2);
    dct4Pass(t2, out, fwd_even, fwd_odd);
}

void
dct4Inverse(const float *in, float *out, const float *inv_even,
            const float *inv_odd)
{
    float t1[16], t2[16];
    dct4PassInv(in, t1, inv_even, inv_odd);
    transpose4(t1, t2);
    dct4PassInv(t2, out, inv_even, inv_odd);
}

void
haarForwardPair(const float *even, const float *odd, float *approx,
                float *detail, float factor, int width)
{
    for (int c = 0; c < width; ++c) {
        const float e = even[c];
        const float o = odd[c];
        approx[c] = (e + o) * factor;
        detail[c] = (e - o) * factor;
    }
}

void
haarInversePair(const float *approx, const float *detail, float *out_even,
                float *out_odd, float factor, int width)
{
    for (int c = 0; c < width; ++c) {
        const float a = approx[c];
        const float d = detail[c];
        out_even[c] = (a + d) * factor;
        out_odd[c] = (a - d) * factor;
    }
}

int
hardThreshold(float *v, int count, float threshold)
{
    int kept = 0;
    for (int i = 0; i < count; ++i) {
        if (std::abs(v[i]) < threshold)
            v[i] = 0.0f;
        else
            ++kept;
    }
    return kept;
}

int
wienerApply(float *v, const float *b, float *w, int count, float sigma2)
{
    int strong = 0;
    for (int i = 0; i < count; ++i) {
        const float b2 = b[i] * b[i];
        const float wi = b2 / (b2 + sigma2);
        w[i] = wi;
        v[i] *= wi;
        if (wi > 0.5f)
            ++strong;
    }
    return strong;
}

void
aggregateAdd(float *num, float *den, const float *pix, float weight,
             int count)
{
    for (int i = 0; i < count; ++i) {
        num[i] += weight * pix[i];
        den[i] += weight;
    }
}

void
mergeAdd(float *num, float *den, const float *onum, const float *oden,
         int count)
{
    for (int i = 0; i < count; ++i) {
        num[i] += onum[i];
        den[i] += oden[i];
    }
}

// ---- int16 kernels (simd.h "Int16 kernels" contract) -------------
//
// Element-level semantics are the spec here: wrapping int16
// difference, square accumulated mod 2^32, round-to-nearest right
// shift, saturation only at pack points. Integer addition commutes,
// so the vector variants may fold in any order and still match these
// loops bitwise.

/** Wrapping int16 difference (sub_epi16 semantics). */
inline int16_t
diffI16(int16_t a, int16_t b)
{
    return static_cast<int16_t>(static_cast<uint16_t>(a) -
                                static_cast<uint16_t>(b));
}

/** Square of a wrapped difference as a mod-2^32 term. */
inline uint32_t
sqI16(int16_t d)
{
    return static_cast<uint32_t>(static_cast<int32_t>(d) * d);
}

/** Saturating int16 add/sub (adds/subs_epi16 semantics). */
inline int16_t
satAddI16(int16_t a, int16_t b)
{
    const int32_t v = static_cast<int32_t>(a) + b;
    return static_cast<int16_t>(v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
}

inline int16_t
satSubI16(int16_t a, int16_t b)
{
    const int32_t v = static_cast<int32_t>(a) - b;
    return static_cast<int16_t>(v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
}

/**
 * Q15 rounded high multiply (_mm_mulhrs_epi16 semantics, including
 * the wrapping -32768 * -32768 edge).
 */
inline int16_t
mulhrsI16(int16_t a, int16_t b)
{
    return static_cast<int16_t>(
        (static_cast<int32_t>(a) * b + 0x4000) >> 15);
}

/** Round-to-nearest arithmetic right shift (shift >= 1). */
inline int32_t
rshiftRound(int32_t v, int shift)
{
    return (v + (int32_t{1} << (shift - 1))) >> shift;
}

/** Saturating int32 -> int16 pack (packs_epi32 semantics). */
inline int16_t
packSat32(int32_t v)
{
    return static_cast<int16_t>(v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
}

int32_t
ssdI16(const int16_t *a, const int16_t *b, int len)
{
    uint32_t acc = 0;
    for (int i = 0; i < len; ++i)
        acc += sqI16(diffI16(a[i], b[i]));
    return static_cast<int32_t>(acc);
}

/** One 16-element block of the bounded int16 SSD. */
inline uint32_t
ssdBlock16I16(const int16_t *a, const int16_t *b)
{
    uint32_t acc = 0;
    for (int j = 0; j < 16; ++j)
        acc += sqI16(diffI16(a[j], b[j]));
    return acc;
}

int32_t
ssdBoundedI16(const int16_t *a, const int16_t *b, int len, int32_t bound)
{
    uint32_t acc = 0;
    int i = 0;
    for (; i + 16 <= len; i += 16) {
        acc += ssdBlock16I16(a + i, b + i);
        if (static_cast<int32_t>(acc) > bound)
            return static_cast<int32_t>(acc);
    }
    for (; i < len; ++i) {
        acc += sqI16(diffI16(a[i], b[i]));
        if (static_cast<int32_t>(acc) > bound)
            return static_cast<int32_t>(acc);
    }
    return static_cast<int32_t>(acc);
}

int32_t
ssdSoaI16(const int16_t *const *pa, size_t off_a, const int16_t *const *pb,
          size_t off_b, int len, int32_t bound)
{
    uint32_t acc = 0;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        for (int j = 0; j < 16; ++j)
            acc += sqI16(diffI16(pa[k + j][off_a], pb[k + j][off_b]));
        if (static_cast<int32_t>(acc) > bound)
            return static_cast<int32_t>(acc);
    }
    for (; k < len; ++k) {
        acc += sqI16(diffI16(pa[k][off_a], pb[k][off_b]));
        if (static_cast<int32_t>(acc) > bound)
            return static_cast<int32_t>(acc);
    }
    return static_cast<int32_t>(acc);
}

void
ssdSoaBatchI16(const int16_t *ref, const int16_t *const *planes,
               size_t off, int len, int count, int32_t *out)
{
    for (int i = 0; i < count; ++i) {
        const size_t o = off + static_cast<size_t>(i);
        uint32_t acc = 0;
        for (int k = 0; k < len; ++k)
            acc += sqI16(diffI16(ref[k], planes[k][o]));
        out[i] = static_cast<int32_t>(acc);
    }
}

void
ssdPairBatchI16(const int16_t *ref, const int16_t *const *pair_planes,
                size_t off, int len, int count, int32_t *out)
{
    for (int i = 0; i < count; ++i) {
        const size_t o = 2 * (off + static_cast<size_t>(i));
        uint32_t acc = 0;
        for (int p = 0; p + 2 <= len; p += 2) {
            const int16_t *plane = pair_planes[p / 2];
            acc += sqI16(diffI16(ref[p], plane[o]));
            acc += sqI16(diffI16(ref[p + 1], plane[o + 1]));
        }
        out[i] = static_cast<int32_t>(acc);
    }
}

/**
 * Int16 folded 4x4 DCT row pass: mirror fold and half-matrix products
 * in int32 (|coef| <= 5352 Q13 raws times |sum| <= 65534 stays far
 * below 2^31), then rounded shift and saturating pack per element.
 */
inline void
dct4PassI16(const int16_t *in, int16_t *out, const int16_t *even,
            const int16_t *odd, int shift)
{
    for (int c = 0; c < 4; ++c) {
        const int32_t s0 = static_cast<int32_t>(in[c]) + in[12 + c];
        const int32_t s1 = static_cast<int32_t>(in[4 + c]) + in[8 + c];
        const int32_t d0 = static_cast<int32_t>(in[c]) - in[12 + c];
        const int32_t d1 = static_cast<int32_t>(in[4 + c]) - in[8 + c];
        out[c] = packSat32(rshiftRound(even[0] * s0 + even[1] * s1, shift));
        out[4 + c] =
            packSat32(rshiftRound(odd[0] * d0 + odd[1] * d1, shift));
        out[8 + c] =
            packSat32(rshiftRound(even[2] * s0 + even[3] * s1, shift));
        out[12 + c] =
            packSat32(rshiftRound(odd[2] * d0 + odd[3] * d1, shift));
    }
}

inline void
transpose4I16(const int16_t *in, int16_t *out)
{
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            out[c * 4 + r] = in[r * 4 + c];
}

void
dct4ForwardI16(const int16_t *in, int16_t *out, const int16_t *even_q,
               const int16_t *odd_q, int shift1, int shift2)
{
    int16_t t1[16], t2[16];
    dct4PassI16(in, t1, even_q, odd_q, shift1);
    transpose4I16(t1, t2);
    dct4PassI16(t2, out, even_q, odd_q, shift2);
}

void
haarForwardPairI16(const int16_t *even, const int16_t *odd,
                   int16_t *approx, int16_t *detail, int16_t factor_q15,
                   int width)
{
    for (int c = 0; c < width; ++c) {
        const int16_t e = even[c];
        const int16_t o = odd[c];
        approx[c] = mulhrsI16(satAddI16(e, o), factor_q15);
        detail[c] = mulhrsI16(satSubI16(e, o), factor_q15);
    }
}

void
haarInversePairI16(const int16_t *approx, const int16_t *detail,
                   int16_t *out_even, int16_t *out_odd, int16_t factor_q15,
                   int width)
{
    for (int c = 0; c < width; ++c) {
        const int16_t a = approx[c];
        const int16_t d = detail[c];
        out_even[c] = mulhrsI16(satAddI16(a, d), factor_q15);
        out_odd[c] = mulhrsI16(satSubI16(a, d), factor_q15);
    }
}

int
hardThresholdI16(int16_t *v, int count, int16_t threshold)
{
    int kept = 0;
    for (int i = 0; i < count; ++i) {
        // abs_epi16 semantics: abs(-32768) stays -32768 and signed-
        // compares below any positive threshold (always zeroed).
        const int16_t av =
            v[i] < 0 ? static_cast<int16_t>(-static_cast<int32_t>(v[i]))
                     : v[i];
        if (av < threshold)
            v[i] = 0;
        else
            ++kept;
    }
    return kept;
}

// ---- fused group-major denoise kernels (DESIGN §12) --------------
//
// One coefficient lane at a time, replaying the Haar1D forwardRows /
// inverseRows butterfly schedule down the stack rows with the shrink
// applied in between — the per-element expressions of the discrete
// kernels above, just without the per-row dispatches and spills. The
// vector variants run 4/8 lanes per step with the same expressions,
// so every level matches these loops bitwise.

/** One lane of haarShrinkFused; @p stride is the tile row stride. */
inline int
haarShrinkLane(float *lane, int stack, int stride, float threshold)
{
    const float factor = 1.0f / std::sqrt(2.0f);
    float buf[16];
    float dom[16];
    for (int i = 0; i < stack; ++i)
        buf[i] = lane[static_cast<size_t>(i) * stride];
    int len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const float e = buf[2 * i];
            const float o = buf[2 * i + 1];
            dom[half + i] = (e - o) * factor;
            buf[i] = (e + o) * factor;
        }
        len = half;
    }
    dom[0] = buf[0];

    int kept = 0;
    for (int i = 0; i < stack; ++i) {
        if (std::abs(dom[i]) < threshold)
            dom[i] = 0.0f;
        else
            ++kept;
    }

    buf[0] = dom[0];
    len = 1;
    while (len < stack) {
        float tmp[16];
        for (int i = 0; i < len; ++i) {
            const float a = buf[i];
            const float d = dom[len + i];
            tmp[2 * i] = (a + d) * factor;
            tmp[2 * i + 1] = (a - d) * factor;
        }
        len *= 2;
        for (int i = 0; i < len; ++i)
            buf[i] = tmp[i];
    }
    for (int i = 0; i < stack; ++i)
        lane[static_cast<size_t>(i) * stride] = buf[i];
    return kept;
}

int
haarShrinkFused(float *g, int stack, int width, float threshold)
{
    int kept = 0;
    for (int c = 0; c < width; ++c)
        kept += haarShrinkLane(g + c, stack, width, threshold);
    return kept;
}

/** One lane of wienerShrinkFused. */
inline int
wienerShrinkLane(float *lane, float *blane, float *wlane, int stack,
                 int stride, float sigma2)
{
    const float factor = 1.0f / std::sqrt(2.0f);
    float buf[16];
    float dom[16];
    float bdom[16];
    for (int i = 0; i < stack; ++i)
        buf[i] = lane[static_cast<size_t>(i) * stride];
    int len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const float e = buf[2 * i];
            const float o = buf[2 * i + 1];
            dom[half + i] = (e - o) * factor;
            buf[i] = (e + o) * factor;
        }
        len = half;
    }
    dom[0] = buf[0];
    for (int i = 0; i < stack; ++i)
        buf[i] = blane[static_cast<size_t>(i) * stride];
    len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const float e = buf[2 * i];
            const float o = buf[2 * i + 1];
            bdom[half + i] = (e - o) * factor;
            buf[i] = (e + o) * factor;
        }
        len = half;
    }
    bdom[0] = buf[0];

    int strong = 0;
    for (int i = 0; i < stack; ++i) {
        const float b2 = bdom[i] * bdom[i];
        const float wi = b2 / (b2 + sigma2);
        wlane[static_cast<size_t>(i) * stride] = wi;
        blane[static_cast<size_t>(i) * stride] = bdom[i];
        dom[i] *= wi;
        if (wi > 0.5f)
            ++strong;
    }

    buf[0] = dom[0];
    len = 1;
    while (len < stack) {
        float tmp[16];
        for (int i = 0; i < len; ++i) {
            const float a = buf[i];
            const float d = dom[len + i];
            tmp[2 * i] = (a + d) * factor;
            tmp[2 * i + 1] = (a - d) * factor;
        }
        len *= 2;
        for (int i = 0; i < len; ++i)
            buf[i] = tmp[i];
    }
    for (int i = 0; i < stack; ++i)
        lane[static_cast<size_t>(i) * stride] = buf[i];
    return strong;
}

int
wienerShrinkFused(float *g, float *bg, float *w, int stack, int width,
                  float sigma2)
{
    int strong = 0;
    for (int c = 0; c < width; ++c)
        strong += wienerShrinkLane(g + c, bg + c, w + c, stack, width,
                                   sigma2);
    return strong;
}

void
aggregateGroup(float *num, float *den, int plane_w, const float *coefs,
               const int *lx, const int *ly, int stack, float weight,
               const float *inv_even, const float *inv_odd)
{
    float px[16];
    for (int i = 0; i < stack; ++i) {
        dct4Inverse(coefs + 16 * i, px, inv_even, inv_odd);
        for (int r = 0; r < 4; ++r) {
            const size_t off =
                static_cast<size_t>(ly[i] + r) * plane_w + lx[i];
            float *nrow = num + off;
            float *drow = den + off;
            const float *p = px + 4 * r;
            for (int c = 0; c < 4; ++c) {
                nrow[c] += weight * p[c];
                drow[c] += weight;
            }
        }
    }
}

/** One lane of haarShrinkFusedI16. */
inline int
haarShrinkLaneI16(int16_t *lane, int stack, int stride, int16_t threshold,
                  int16_t factor_q15)
{
    int16_t buf[16];
    int16_t dom[16];
    for (int i = 0; i < stack; ++i)
        buf[i] = lane[static_cast<size_t>(i) * stride];
    int len = stack;
    while (len > 1) {
        const int half = len / 2;
        for (int i = 0; i < half; ++i) {
            const int16_t e = buf[2 * i];
            const int16_t o = buf[2 * i + 1];
            dom[half + i] = mulhrsI16(satSubI16(e, o), factor_q15);
            buf[i] = mulhrsI16(satAddI16(e, o), factor_q15);
        }
        len = half;
    }
    dom[0] = buf[0];

    int kept = 0;
    for (int i = 0; i < stack; ++i) {
        const int16_t av =
            dom[i] < 0
                ? static_cast<int16_t>(-static_cast<int32_t>(dom[i]))
                : dom[i];
        if (av < threshold)
            dom[i] = 0;
        else
            ++kept;
    }

    buf[0] = dom[0];
    len = 1;
    while (len < stack) {
        int16_t tmp[16];
        for (int i = 0; i < len; ++i) {
            const int16_t a = buf[i];
            const int16_t d = dom[len + i];
            tmp[2 * i] = mulhrsI16(satAddI16(a, d), factor_q15);
            tmp[2 * i + 1] = mulhrsI16(satSubI16(a, d), factor_q15);
        }
        len *= 2;
        for (int i = 0; i < len; ++i)
            buf[i] = tmp[i];
    }
    for (int i = 0; i < stack; ++i)
        lane[static_cast<size_t>(i) * stride] = buf[i];
    return kept;
}

int
haarShrinkFusedI16(int16_t *g, int stack, int width, int16_t threshold,
                   int16_t factor_q15)
{
    int kept = 0;
    for (int c = 0; c < width; ++c)
        kept += haarShrinkLaneI16(g + c, stack, width, threshold,
                                  factor_q15);
    return kept;
}

} // namespace

const KernelTable kScalarTable = {
    ssd,           ssdBounded,      ssdFull,       ssdBatch16,
    ssdSoa,        ssdSoaBatch,     dct4Forward,   dct4Inverse,
    haarForwardPair, haarInversePair, hardThreshold, wienerApply,
    aggregateAdd,  mergeAdd,
    ssdI16,        ssdBoundedI16,   ssdSoaI16,     ssdSoaBatchI16,
    ssdPairBatchI16,
    dct4ForwardI16, haarForwardPairI16, haarInversePairI16,
    hardThresholdI16,
    haarShrinkFused, wienerShrinkFused, aggregateGroup,
    haarShrinkFusedI16,
};

} // namespace detail
} // namespace simd
} // namespace ideal
