/**
 * @file
 * AVX2 kernels (256-bit). The 8 canonical SSD lanes live in a single
 * __m256 whose extract/add/movehl fold is exactly the canonical tree;
 * the 4x4 DCT passes process two rows per register. Compiled with
 * -mavx2 -ffp-contract=off (and no -mfma); bitwise parity with the
 * scalar table is enforced by tests/test_simd.cc.
 */

#include "simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>

namespace ideal {
namespace simd {
namespace detail {

namespace {

/**
 * Canonical fold of the 8 lanes of @p acc:
 * ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)).
 */
inline float
fold8(__m256 acc)
{
    const __m128 t = _mm_add_ps(_mm256_castps256_ps128(acc),
                                _mm256_extractf128_ps(acc, 1));
    const __m128 u = _mm_add_ps(t, _mm_movehl_ps(t, t));
    const __m128 r = _mm_add_ss(
        u, _mm_shuffle_ps(u, u, _MM_SHUFFLE(1, 1, 1, 1)));
    return _mm_cvtss_f32(r);
}

inline float
ssdBlock16(const float *a, const float *b)
{
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a), _mm256_loadu_ps(b));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + 8), _mm256_loadu_ps(b + 8));
    const __m256 acc =
        _mm256_add_ps(_mm256_mul_ps(d0, d0), _mm256_mul_ps(d1, d1));
    return fold8(acc);
}

float
ssd(const float *a, const float *b, int len)
{
    __m256 acc = _mm256_setzero_ps();
    int i = 0;
    for (; i + 8 <= len; i += 8) {
        const __m256 d =
            _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
    }
    float r = fold8(acc);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        r += d * d;
    }
    return r;
}

float
ssdFull(const float *a, const float *b, int len)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16)
        acc += ssdBlock16(a + i, b + i);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

float
ssdBounded(const float *a, const float *b, int len, float bound)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16) {
        acc += ssdBlock16(a + i, b + i);
        if (acc > bound)
            return acc;
    }
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

void
ssdBatch16(const float *ref, const float *cands, int count, float *out)
{
    const __m256 r0 = _mm256_loadu_ps(ref);
    const __m256 r1 = _mm256_loadu_ps(ref + 8);
    for (int i = 0; i < count; ++i) {
        const float *c = cands + 16 * i;
        const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(c), r0);
        const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(c + 8), r1);
        const __m256 acc =
            _mm256_add_ps(_mm256_mul_ps(d0, d0), _mm256_mul_ps(d1, d1));
        out[i] = fold8(acc);
    }
}

/**
 * Scalar canonical fold of 8 lanes (the SoA pair kernel walks strided
 * per-coefficient values, so there is nothing to vectorize — the
 * scalar sequence IS the reference order and keeps bitwise parity).
 */
inline float
fold8Scalar(const float s[8])
{
    const float t0 = s[0] + s[4];
    const float t1 = s[1] + s[5];
    const float t2 = s[2] + s[6];
    const float t3 = s[3] + s[7];
    const float u0 = t0 + t2;
    const float u1 = t1 + t3;
    return u0 + u1;
}

float
ssdSoa(const float *const *pa, size_t off_a, const float *const *pb,
       size_t off_b, int len, float bound)
{
    float acc = 0.0f;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        float s[8];
        for (int j = 0; j < 8; ++j) {
            const float d = pa[k + j][off_a] - pb[k + j][off_b];
            s[j] = d * d;
        }
        for (int j = 0; j < 8; ++j) {
            const float d = pa[k + 8 + j][off_a] - pb[k + 8 + j][off_b];
            s[j] += d * d;
        }
        acc += fold8Scalar(s);
        if (acc > bound)
            return acc;
    }
    for (; k < len; ++k) {
        const float d = pa[k][off_a] - pb[k][off_b];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

/** One scalar SoA candidate (partial-vector batch tail). */
inline float
ssdSoaOne(const float *ref, const float *const *planes, size_t off,
          int len)
{
    float acc = 0.0f;
    int k = 0;
    for (; k + 16 <= len; k += 16) {
        float s[8];
        for (int j = 0; j < 8; ++j) {
            const float d = ref[k + j] - planes[k + j][off];
            s[j] = d * d;
        }
        for (int j = 0; j < 8; ++j) {
            const float d = ref[k + 8 + j] - planes[k + 8 + j][off];
            s[j] += d * d;
        }
        acc += fold8Scalar(s);
    }
    for (; k < len; ++k) {
        const float d = ref[k] - planes[k][off];
        acc += d * d;
    }
    return acc;
}

void
ssdSoaBatch(const float *ref, const float *const *planes, size_t off,
            int len, int count, float *out)
{
    // Eight candidates per pass: the 8 canonical accumulator lanes of
    // each candidate live across 8 __m256 registers (candidate =
    // vector lane); every coefficient plane is one contiguous 8-float
    // load and the block fold is purely vertical, so the per-lane
    // operation sequence equals the scalar reference exactly.
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        const size_t o = off + static_cast<size_t>(i);
        __m256 acc = _mm256_setzero_ps();
        int k = 0;
        for (; k + 16 <= len; k += 16) {
            __m256 s[8];
            for (int j = 0; j < 8; ++j) {
                const __m256 d =
                    _mm256_sub_ps(_mm256_set1_ps(ref[k + j]),
                                  _mm256_loadu_ps(planes[k + j] + o));
                s[j] = _mm256_mul_ps(d, d);
            }
            for (int j = 0; j < 8; ++j) {
                const __m256 d =
                    _mm256_sub_ps(_mm256_set1_ps(ref[k + 8 + j]),
                                  _mm256_loadu_ps(planes[k + 8 + j] + o));
                s[j] = _mm256_add_ps(s[j], _mm256_mul_ps(d, d));
            }
            const __m256 u0 = _mm256_add_ps(_mm256_add_ps(s[0], s[4]),
                                            _mm256_add_ps(s[2], s[6]));
            const __m256 u1 = _mm256_add_ps(_mm256_add_ps(s[1], s[5]),
                                            _mm256_add_ps(s[3], s[7]));
            acc = _mm256_add_ps(acc, _mm256_add_ps(u0, u1));
        }
        for (; k < len; ++k) {
            const __m256 d =
                _mm256_sub_ps(_mm256_set1_ps(ref[k]),
                              _mm256_loadu_ps(planes[k] + o));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
        }
        _mm256_storeu_ps(out + i, acc);
    }
    for (; i < count; ++i)
        out[i] = ssdSoaOne(ref, planes, off + static_cast<size_t>(i), len);
}

/** [coef_lo broadcast | coef_hi broadcast] */
inline __m256
pair(float lo, float hi)
{
    return _mm256_set_m128(_mm_set1_ps(hi), _mm_set1_ps(lo));
}

/** low128(v) + high128(v), per lane. */
inline __m128
halfAdd(__m256 v)
{
    return _mm_add_ps(_mm256_castps256_ps128(v),
                      _mm256_extractf128_ps(v, 1));
}

inline void
dct4Pass(const float *in, float *out, const float *even, const float *odd)
{
    // [row0|row1] and [row3|row2] give S = [s0|s1], D = [d0|d1]
    // with one vertical add/sub each.
    const __m256 r01 = _mm256_loadu_ps(in);
    const __m256 r32 = _mm256_set_m128(_mm_loadu_ps(in + 8),
                                       _mm_loadu_ps(in + 12));
    const __m256 s = _mm256_add_ps(r01, r32);
    const __m256 d = _mm256_sub_ps(r01, r32);
    _mm_storeu_ps(out, halfAdd(_mm256_mul_ps(s, pair(even[0], even[1]))));
    _mm_storeu_ps(out + 4,
                  halfAdd(_mm256_mul_ps(d, pair(odd[0], odd[1]))));
    _mm_storeu_ps(out + 8,
                  halfAdd(_mm256_mul_ps(s, pair(even[2], even[3]))));
    _mm_storeu_ps(out + 12,
                  halfAdd(_mm256_mul_ps(d, pair(odd[2], odd[3]))));
}

inline void
dct4PassInv(const float *in, float *out, const float *even,
            const float *odd)
{
    // E = [e(i=0)|e(i=1)], O likewise; lo rows = E+O = [out0|out1],
    // hi rows = E-O = [out3|out2].
    const __m256 r0 = _mm256_broadcast_ps(
        reinterpret_cast<const __m128 *>(in));
    const __m256 r1 = _mm256_broadcast_ps(
        reinterpret_cast<const __m128 *>(in + 4));
    const __m256 r2 = _mm256_broadcast_ps(
        reinterpret_cast<const __m128 *>(in + 8));
    const __m256 r3 = _mm256_broadcast_ps(
        reinterpret_cast<const __m128 *>(in + 12));
    const __m256 e =
        _mm256_add_ps(_mm256_mul_ps(pair(even[0], even[2]), r0),
                      _mm256_mul_ps(pair(even[1], even[3]), r2));
    const __m256 o =
        _mm256_add_ps(_mm256_mul_ps(pair(odd[0], odd[2]), r1),
                      _mm256_mul_ps(pair(odd[1], odd[3]), r3));
    const __m256 lo = _mm256_add_ps(e, o);
    const __m256 hi = _mm256_sub_ps(e, o);
    _mm256_storeu_ps(out, lo);
    _mm_storeu_ps(out + 12, _mm256_castps256_ps128(hi));
    _mm_storeu_ps(out + 8, _mm256_extractf128_ps(hi, 1));
}

inline void
transpose4(const float *in, float *out)
{
    __m128 r0 = _mm_loadu_ps(in);
    __m128 r1 = _mm_loadu_ps(in + 4);
    __m128 r2 = _mm_loadu_ps(in + 8);
    __m128 r3 = _mm_loadu_ps(in + 12);
    _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
    _mm_storeu_ps(out, r0);
    _mm_storeu_ps(out + 4, r1);
    _mm_storeu_ps(out + 8, r2);
    _mm_storeu_ps(out + 12, r3);
}

void
dct4Forward(const float *in, float *out, const float *fwd_even,
            const float *fwd_odd)
{
    float t1[16], t2[16];
    dct4Pass(in, t1, fwd_even, fwd_odd);
    transpose4(t1, t2);
    dct4Pass(t2, out, fwd_even, fwd_odd);
}

void
dct4Inverse(const float *in, float *out, const float *inv_even,
            const float *inv_odd)
{
    float t1[16], t2[16];
    dct4PassInv(in, t1, inv_even, inv_odd);
    transpose4(t1, t2);
    dct4PassInv(t2, out, inv_even, inv_odd);
}

void
haarForwardPair(const float *even, const float *odd, float *approx,
                float *detail, float factor, int width)
{
    const __m256 f = _mm256_set1_ps(factor);
    int c = 0;
    for (; c + 8 <= width; c += 8) {
        const __m256 e = _mm256_loadu_ps(even + c);
        const __m256 o = _mm256_loadu_ps(odd + c);
        _mm256_storeu_ps(approx + c,
                         _mm256_mul_ps(_mm256_add_ps(e, o), f));
        _mm256_storeu_ps(detail + c,
                         _mm256_mul_ps(_mm256_sub_ps(e, o), f));
    }
    for (; c < width; ++c) {
        const float e = even[c];
        const float o = odd[c];
        approx[c] = (e + o) * factor;
        detail[c] = (e - o) * factor;
    }
}

void
haarInversePair(const float *approx, const float *detail, float *out_even,
                float *out_odd, float factor, int width)
{
    const __m256 f = _mm256_set1_ps(factor);
    int c = 0;
    for (; c + 8 <= width; c += 8) {
        const __m256 a = _mm256_loadu_ps(approx + c);
        const __m256 d = _mm256_loadu_ps(detail + c);
        _mm256_storeu_ps(out_even + c,
                         _mm256_mul_ps(_mm256_add_ps(a, d), f));
        _mm256_storeu_ps(out_odd + c,
                         _mm256_mul_ps(_mm256_sub_ps(a, d), f));
    }
    for (; c < width; ++c) {
        const float a = approx[c];
        const float d = detail[c];
        out_even[c] = (a + d) * factor;
        out_odd[c] = (a - d) * factor;
    }
}

int
hardThreshold(float *v, int count, float threshold)
{
    const __m256 abs_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    const __m256 thr = _mm256_set1_ps(threshold);
    int kept = 0;
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m256 x = _mm256_loadu_ps(v + i);
        // |x| < thr (ordered: NaN compares false, so NaN is kept —
        // same as scalar std::abs(x) < thr).
        const __m256 below = _mm256_cmp_ps(_mm256_and_ps(x, abs_mask),
                                           thr, _CMP_LT_OQ);
        _mm256_storeu_ps(v + i, _mm256_andnot_ps(below, x));
        kept += 8 - _mm_popcnt_u32(static_cast<unsigned>(
                        _mm256_movemask_ps(below)));
    }
    for (; i < count; ++i) {
        if (std::fabs(v[i]) < threshold)
            v[i] = 0.0f;
        else
            ++kept;
    }
    return kept;
}

int
wienerApply(float *v, const float *b, float *w, int count, float sigma2)
{
    const __m256 s2 = _mm256_set1_ps(sigma2);
    const __m256 half = _mm256_set1_ps(0.5f);
    int strong = 0;
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m256 bv = _mm256_loadu_ps(b + i);
        const __m256 b2 = _mm256_mul_ps(bv, bv);
        const __m256 wv = _mm256_div_ps(b2, _mm256_add_ps(b2, s2));
        _mm256_storeu_ps(w + i, wv);
        _mm256_storeu_ps(v + i,
                         _mm256_mul_ps(_mm256_loadu_ps(v + i), wv));
        strong += _mm_popcnt_u32(static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_cmp_ps(wv, half, _CMP_GT_OQ))));
    }
    for (; i < count; ++i) {
        const float b2 = b[i] * b[i];
        const float wi = b2 / (b2 + sigma2);
        w[i] = wi;
        v[i] *= wi;
        if (wi > 0.5f)
            ++strong;
    }
    return strong;
}

void
aggregateAdd(float *num, float *den, const float *pix, float weight,
             int count)
{
    const __m256 wv = _mm256_set1_ps(weight);
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m256 n = _mm256_loadu_ps(num + i);
        const __m256 p = _mm256_loadu_ps(pix + i);
        _mm256_storeu_ps(num + i,
                         _mm256_add_ps(n, _mm256_mul_ps(wv, p)));
        _mm256_storeu_ps(den + i,
                         _mm256_add_ps(_mm256_loadu_ps(den + i), wv));
    }
    for (; i < count; ++i) {
        num[i] += weight * pix[i];
        den[i] += weight;
    }
}

void
mergeAdd(float *num, float *den, const float *onum, const float *oden,
         int count)
{
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        _mm256_storeu_ps(num + i,
                         _mm256_add_ps(_mm256_loadu_ps(num + i),
                                       _mm256_loadu_ps(onum + i)));
        _mm256_storeu_ps(den + i,
                         _mm256_add_ps(_mm256_loadu_ps(den + i),
                                       _mm256_loadu_ps(oden + i)));
    }
    for (; i < count; ++i) {
        num[i] += onum[i];
        den[i] += oden[i];
    }
}

const KernelTable kAvx2TableStorage = {
    ssd,           ssdBounded,      ssdFull,       ssdBatch16,
    ssdSoa,        ssdSoaBatch,     dct4Forward,   dct4Inverse,
    haarForwardPair, haarInversePair, hardThreshold, wienerApply,
    aggregateAdd,  mergeAdd,
};

} // namespace

const KernelTable &kAvx2Table = kAvx2TableStorage;

} // namespace detail
} // namespace simd
} // namespace ideal

#else // !x86

namespace ideal {
namespace simd {
namespace detail {

const KernelTable &kAvx2Table = kScalarTable;

} // namespace detail
} // namespace simd
} // namespace ideal

#endif
