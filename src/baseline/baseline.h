#ifndef IDEAL_BASELINE_BASELINE_H_
#define IDEAL_BASELINE_BASELINE_H_

/**
 * @file
 * Commodity-platform baselines (paper Sec. 3 and Table 6).
 *
 * The CPU baselines are *measured* on the host by running this
 * repository's optimized BM3D on a probe image and extrapolating
 * linearly in megapixels (BM3D's work per pixel is constant for fixed
 * parameters, so runtime is linear in resolution - visible in Figs.
 * 2/3). The GPU (GTX 980) and embedded ARM (Cortex-A15) platforms are
 * not available offline; they are modelled from the paper's measured
 * ratios against the vectorized Xeon implementation (19x faster and
 * 5.2x slower respectively) with the paper's per-step breakdown.
 */

#include <map>
#include <string>

#include "bm3d/bm3d.h"
#include "image/image.h"

namespace ideal {
namespace baseline {

/** The software/hardware implementations of Table 6. */
enum class Platform {
    CpuBasic,   ///< single-thread, no software optimizations ("Basic")
    CpuVect,    ///< optimized single-thread ("AVX Vect" / "Orig")
    CpuThreads, ///< multi-threaded optimized ("Threads")
    CpuMr025,   ///< single-thread + MR, K = 0.25
    CpuMr05,    ///< single-thread + MR, K = 0.5
    ArmVect,    ///< Cortex-A15 vectorized (modelled)
    Gpu,        ///< GTX 980 CUDA (modelled)
};

const char *toString(Platform platform);

/** A measured or modelled execution-rate calibration. */
struct Rate
{
    double secondsPerMp = 0.0;
    /// Fraction of runtime per algorithm step (Fig. 4 ordering).
    std::array<double, bm3d::kNumSteps> stepFraction{};
    bool modelled = false; ///< true when derived from paper ratios
};

/**
 * Measures host-CPU rates once and derives the modelled platforms.
 * Construct with the probe size (pixels per side); larger probes are
 * slower but less noisy.
 */
class BaselineSuite
{
  public:
    /**
     * @param probe_size probe image edge in pixels
     * @param sigma      noise level of the probe workload
     */
    explicit BaselineSuite(int probe_size = 96, float sigma = 25.0f);

    /** Rate for @p platform (measured lazily, then cached). */
    const Rate &rate(Platform platform);

    /** Runtime in seconds to process @p megapixels on @p platform. */
    double seconds(Platform platform, double megapixels);

    /** The BM3D configuration a platform runs. */
    bm3d::Bm3dConfig configFor(Platform platform) const;

  private:
    Rate measureCpu(const bm3d::Bm3dConfig &cfg);

    int probeSize_;
    float sigma_;
    image::ImageF probeNoisy_;
    std::map<Platform, Rate> cache_;
};

/**
 * Constants reported by the paper, used for context lines in the
 * benchmark output (never as our measured results).
 */
namespace paper {

// Fig. 13 speedups over the single-thread CPU implementation.
inline constexpr double kSpeedupThreads = 12.6;
inline constexpr double kSpeedupGpu = 19.0;
inline constexpr double kSpeedupMrCpu = 3.0;
inline constexpr double kSpeedupMl1 = 131.0;
inline constexpr double kSpeedupMl2 = 2243.0;
inline constexpr double kSpeedupIdealB = 363.0;
inline constexpr double kSpeedupIdealMr025 = 9446.0;
inline constexpr double kSpeedupIdealMr05 = 11352.0;

// Table 7 power in watts.
inline constexpr double kPowerCpuTotal = 42.5;
inline constexpr double kPowerThreadsTotal = 130.1;
inline constexpr double kPowerGpuTotal = 144.0;
inline constexpr double kPowerIdealBTotal = 5.51;
inline constexpr double kPowerIdealMrTotal = 18.2;

// Sec. 3: ARM Cortex-A15 is 5.2x slower than the Xeon; Heide et al.:
// 95% of a 184 s 2 MP CIP run is denoising.
inline constexpr double kArmSlowdown = 5.2;
inline constexpr double kGpuBmFraction = 0.87;
inline constexpr double kCpuBmFraction = 0.67;

} // namespace paper

} // namespace baseline
} // namespace ideal

#endif // IDEAL_BASELINE_BASELINE_H_
