#include "baseline/baseline.h"

#include <algorithm>
#include <chrono>

#include "image/noise.h"
#include "image/synthetic.h"
#include "parallel/pool.h"

namespace ideal {
namespace baseline {

const char *
toString(Platform platform)
{
    switch (platform) {
      case Platform::CpuBasic: return "CPU-Basic";
      case Platform::CpuVect: return "CPU-Vect";
      case Platform::CpuThreads: return "Threads";
      case Platform::CpuMr025: return "MR (0.25)";
      case Platform::CpuMr05: return "MR (0.5)";
      case Platform::ArmVect: return "ARM-Vect";
      case Platform::Gpu: return "GPU";
    }
    return "?";
}

BaselineSuite::BaselineSuite(int probe_size, float sigma)
    : probeSize_(probe_size), sigma_(sigma)
{
    image::ImageF clean = image::makeScene(image::SceneKind::Nature,
                                           probe_size, probe_size, 3, 99);
    probeNoisy_ = image::addGaussianNoise(clean, sigma, 100);
}

bm3d::Bm3dConfig
BaselineSuite::configFor(Platform platform) const
{
    bm3d::Bm3dConfig cfg;
    cfg.sigma = sigma_;
    switch (platform) {
      case Platform::CpuBasic:
        cfg.boundedDistance = false;
        break;
      case Platform::CpuVect:
      case Platform::ArmVect:
      case Platform::Gpu:
        break;
      case Platform::CpuThreads:
        // Shared clamped helper: handles hardware_concurrency() == 0
        // and caps runaway values; at least two threads so the
        // platform exercises the multi-threaded path everywhere.
        cfg.numThreads = std::max(2, parallel::hardwareThreads());
        break;
      case Platform::CpuMr025:
        cfg.mr.enabled = true;
        cfg.mr.k = 0.25;
        break;
      case Platform::CpuMr05:
        cfg.mr.enabled = true;
        cfg.mr.k = 0.5;
        break;
    }
    return cfg;
}

Rate
BaselineSuite::measureCpu(const bm3d::Bm3dConfig &cfg)
{
    bm3d::Bm3d denoiser(cfg);
    // Wall-clock time: the profile aggregates per-thread CPU time, so
    // it cannot be used as the runtime of multi-threaded runs.
    auto t0 = std::chrono::steady_clock::now();
    auto result = denoiser.denoise(probeNoisy_);
    auto t1 = std::chrono::steady_clock::now();
    const double mp =
        static_cast<double>(probeSize_) * probeSize_ / 1e6;
    Rate rate;
    rate.secondsPerMp = std::chrono::duration<double>(t1 - t0).count() / mp;
    const double total = result.profile.totalSeconds();
    for (int i = 0; i < bm3d::kNumSteps; ++i)
        rate.stepFraction[i] =
            total > 0
                ? result.profile.seconds(static_cast<bm3d::Step>(i)) / total
                : 0.0;
    return rate;
}

const Rate &
BaselineSuite::rate(Platform platform)
{
    auto it = cache_.find(platform);
    if (it != cache_.end())
        return it->second;

    Rate rate;
    switch (platform) {
      case Platform::CpuBasic:
      case Platform::CpuVect:
      case Platform::CpuThreads:
      case Platform::CpuMr025:
      case Platform::CpuMr05:
        rate = measureCpu(configFor(platform));
        break;
      case Platform::ArmVect: {
        // Paper Sec. 3.1: the Cortex-A15 implementation is 5.2x
        // slower than the vectorized Xeon on average.
        const Rate &vect = this->rate(Platform::CpuVect);
        rate = vect;
        rate.secondsPerMp = vect.secondsPerMp * paper::kArmSlowdown;
        rate.modelled = true;
        break;
      }
      case Platform::Gpu: {
        // Paper Sec. 3.2/6.2: the GTX 980 CUDA implementation is 19x
        // faster than the single-thread CPU, with block matching at
        // 87% of runtime (Fig. 4).
        const Rate &vect = this->rate(Platform::CpuVect);
        rate.secondsPerMp = vect.secondsPerMp / paper::kSpeedupGpu;
        rate.modelled = true;
        const double bm = paper::kGpuBmFraction;
        // Split the BM share between BM1/BM2 in the CPU's measured
        // ratio; the remainder covers the DCT and DE steps.
        const auto &f = vect.stepFraction;
        double cpu_bm = f[static_cast<int>(bm3d::Step::Bm1)] +
                        f[static_cast<int>(bm3d::Step::Bm2)];
        double cpu_rest = 1.0 - cpu_bm;
        for (int i = 0; i < bm3d::kNumSteps; ++i) {
            auto step = static_cast<bm3d::Step>(i);
            if (step == bm3d::Step::Bm1 || step == bm3d::Step::Bm2) {
                rate.stepFraction[i] =
                    cpu_bm > 0 ? bm * f[i] / cpu_bm : bm / 2.0;
            } else {
                rate.stepFraction[i] =
                    cpu_rest > 0 ? (1.0 - bm) * f[i] / cpu_rest : 0.0;
            }
        }
        break;
      }
    }
    return cache_.emplace(platform, rate).first->second;
}

double
BaselineSuite::seconds(Platform platform, double megapixels)
{
    return rate(platform).secondsPerMp * megapixels;
}

} // namespace baseline
} // namespace ideal
