#ifndef IDEAL_IMAGE_METRICS_H_
#define IDEAL_IMAGE_METRICS_H_

/**
 * @file
 * Image quality metrics. The paper reports per-image SNR relative to
 * a reference implementation (Figs. 9, 11); PSNR and SSIM are included
 * because downstream users of a denoiser library expect them.
 */

#include "image/image.h"

namespace ideal {
namespace image {

/** Mean squared error over all samples of two same-shape images. */
double mse(const ImageF &a, const ImageF &b);

/**
 * Signal-to-noise ratio in dB of @p test against the clean
 * @p reference: 10*log10(sum(ref^2) / sum((ref-test)^2)).
 */
double snrDb(const ImageF &reference, const ImageF &test);

/** Peak SNR in dB assuming a 255 peak. */
double psnrDb(const ImageF &reference, const ImageF &test);

/**
 * Mean structural similarity (SSIM) with an 8x8 sliding window and the
 * standard (K1, K2) = (0.01, 0.03) constants, computed on channel 0.
 */
double ssim(const ImageF &reference, const ImageF &test);

/** Largest absolute per-sample difference. */
double maxAbsDiff(const ImageF &a, const ImageF &b);

} // namespace image
} // namespace ideal

#endif // IDEAL_IMAGE_METRICS_H_
