#ifndef IDEAL_IMAGE_IO_H_
#define IDEAL_IMAGE_IO_H_

/**
 * @file
 * Minimal self-contained image I/O: binary PGM (P5) for single-channel
 * and binary PPM (P6) for three-channel 8-bit images, plus a trivial
 * raw float container for intermediate results. No external image
 * libraries are used.
 */

#include <string>

#include "image/image.h"

namespace ideal {
namespace image {

/** Write a 1-channel 8-bit image as binary PGM (P5). */
void writePgm(const std::string &path, const ImageU8 &img);

/** Write a 3-channel 8-bit image as binary PPM (P6). */
void writePpm(const std::string &path, const ImageU8 &img);

/**
 * Write any 8-bit image, picking PGM for 1 channel and PPM for 3.
 * @throws std::invalid_argument for other channel counts.
 */
void writeNetpbm(const std::string &path, const ImageU8 &img);

/** Read a binary PGM (P5) or PPM (P6) file. */
ImageU8 readNetpbm(const std::string &path);

/**
 * Write a float image in the repository's simple IRAW format:
 * magic "IRAWF10\n", width, height, channels as int32 little-endian,
 * then raw plane-major float32 samples.
 */
void writeRawFloat(const std::string &path, const ImageF &img);

/** Read an IRAW float image written by writeRawFloat(). */
ImageF readRawFloat(const std::string &path);

} // namespace image
} // namespace ideal

#endif // IDEAL_IMAGE_IO_H_
