#include "image/synthetic.h"

#include <cmath>
#include <stdexcept>

namespace ideal {
namespace image {

namespace {

/**
 * Lattice value-noise: random values on a coarse grid, bilinearly
 * interpolated with smoothstep. Summed over octaves this produces the
 * band-limited "nature" content.
 */
class ValueNoise
{
  public:
    ValueNoise(int cells_x, int cells_y, SplitMix64 &rng)
        : cellsX_(cells_x), cellsY_(cells_y),
          grid_(static_cast<size_t>(cells_x + 1) * (cells_y + 1))
    {
        for (auto &v : grid_)
            v = rng.uniform();
    }

    /** Sample at normalized coordinates u, v in [0, 1]. */
    float
    sample(float u, float v) const
    {
        float fx = u * cellsX_;
        float fy = v * cellsY_;
        int x0 = std::min(static_cast<int>(fx), cellsX_ - 1);
        int y0 = std::min(static_cast<int>(fy), cellsY_ - 1);
        float tx = smooth(fx - x0);
        float ty = smooth(fy - y0);
        float a = at(x0, y0), b = at(x0 + 1, y0);
        float c = at(x0, y0 + 1), d = at(x0 + 1, y0 + 1);
        float top = a + (b - a) * tx;
        float bot = c + (d - c) * tx;
        return top + (bot - top) * ty;
    }

  private:
    static float smooth(float t) { return t * t * (3.0f - 2.0f * t); }

    float
    at(int x, int y) const
    {
        return grid_[static_cast<size_t>(y) * (cellsX_ + 1) + x];
    }

    int cellsX_;
    int cellsY_;
    std::vector<float> grid_;
};

void
fillNature(ImageF &img, SplitMix64 &rng)
{
    const int w = img.width(), h = img.height();
    // Three octaves of value noise; amplitudes fall off so content is
    // dominated by smooth structure (high local self-similarity).
    // Feature size in pixels follows the mean dimension so a wide
    // strip cropped from a large image keeps that image's feature
    // scale; the lattice is isotropic in pixels.
    const int feature_px = std::max(8, (w + h) / 64);
    const int cx = std::max(1, w / feature_px);
    const int cy = std::max(1, h / feature_px);
    ValueNoise oct1(cx, cy, rng);
    ValueNoise oct2(cx * 3, cy * 3, rng);
    ValueNoise oct3(cx * 9, cy * 9, rng);
    for (int c = 0; c < img.channels(); ++c) {
        float bias = 60.0f + 40.0f * c;
        float gain = 140.0f - 20.0f * c;
        for (int y = 0; y < h; ++y) {
            float v = static_cast<float>(y) / h;
            for (int x = 0; x < w; ++x) {
                float u = static_cast<float>(x) / w;
                float s = 0.62f * oct1.sample(u, v) +
                          0.28f * oct2.sample(u, v) +
                          0.10f * oct3.sample(u, v);
                img.at(x, y, c) = bias + gain * s;
            }
        }
    }
}

void
fillStreet(ImageF &img, SplitMix64 &rng)
{
    const int w = img.width(), h = img.height();
    // Sky gradient background.
    for (int c = 0; c < img.channels(); ++c)
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                img.at(x, y, c) =
                    170.0f - 60.0f * static_cast<float>(y) / h + 5.0f * c;

    // Flat "building" rectangles with window grids: piecewise-constant
    // regions separated by sharp edges.
    const int buildings = 4 + static_cast<int>(rng.below(4));
    for (int b = 0; b < buildings; ++b) {
        int bw = w / 6 + static_cast<int>(rng.below(std::max(1, w / 4)));
        int bh = h / 3 + static_cast<int>(rng.below(std::max(1, h / 2)));
        int bx = static_cast<int>(rng.below(std::max(1, w - bw / 2)));
        int by = h - bh;
        float shade = rng.uniform(40.0f, 150.0f);
        for (int c = 0; c < img.channels(); ++c) {
            float cs = shade + 8.0f * c;
            for (int y = by; y < h; ++y)
                for (int x = bx; x < std::min(w, bx + bw); ++x)
                    img.at(x, y, c) = cs;
        }
        // Window grid.
        int win = std::max(3, bw / 10);
        for (int wy = by + win; wy + win < h; wy += 2 * win)
            for (int wx = bx + win; wx + win < std::min(w, bx + bw);
                 wx += 2 * win)
                for (int c = 0; c < img.channels(); ++c)
                    for (int y = wy; y < wy + win; ++y)
                        for (int x = wx; x < wx + win && x < w; ++x)
                            img.at(x, y, c) = 220.0f - 10.0f * c;
    }

    // A slanted road edge across the lower third.
    for (int y = 2 * h / 3; y < h; ++y) {
        int edge = (y - 2 * h / 3) * w / std::max(1, h / 3);
        for (int x = 0; x < std::min(edge, w); ++x)
            for (int c = 0; c < img.channels(); ++c)
                img.at(x, y, c) = 70.0f + 4.0f * c;
    }
}

void
fillTexture(ImageF &img, SplitMix64 &rng)
{
    const int w = img.width(), h = img.height();
    // Quasi-periodic weave: product of two phase-jittered waves plus a
    // brick offset pattern. Integer-period triangular waves keep the
    // generator fully deterministic across platforms. Feature size
    // scales with resolution, as it does in photographs: a weave
    // photographed at 42 MP spans many pixels per thread.
    const int base_period = std::max(6, (w + h) / 2 / 24);
    const int px = base_period + static_cast<int>(rng.below(6));
    const int py = base_period + static_cast<int>(rng.below(6));
    auto tri = [](int v, int period) {
        int m = v % period;
        int d = std::min(m, period - m);
        return static_cast<float>(d) / (period / 2.0f);
    };
    for (int c = 0; c < img.channels(); ++c) {
        for (int y = 0; y < h; ++y) {
            int brick_shift = ((y / py) % 2) * (px / 2);
            for (int x = 0; x < w; ++x) {
                float a = tri(x + brick_shift, px);
                float b = tri(y, py);
                float val = 70.0f + 120.0f * a * b + 25.0f * (a + b) +
                            6.0f * c;
                img.at(x, y, c) = std::clamp(val, 0.0f, 255.0f);
            }
        }
    }
}

void
fillDetail(ImageF &img, SplitMix64 &rng)
{
    // Broadband random detail with a coarse luminance drift; minimal
    // patch self-similarity, the worst case for Matches Reuse.
    const int w = img.width(), h = img.height();
    ValueNoise drift(4, 4, rng);
    for (int c = 0; c < img.channels(); ++c)
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x) {
                float base = 60.0f + 120.0f *
                    drift.sample(static_cast<float>(x) / w,
                                 static_cast<float>(y) / h);
                img.at(x, y, c) =
                    std::clamp(base + rng.uniform(-55.0f, 55.0f),
                               0.0f, 255.0f);
            }
}

} // namespace

SceneKind
sceneKindFromString(const std::string &name)
{
    if (name == "nature") return SceneKind::Nature;
    if (name == "street") return SceneKind::Street;
    if (name == "texture") return SceneKind::Texture;
    if (name == "uniform") return SceneKind::Uniform;
    if (name == "detail") return SceneKind::Detail;
    throw std::invalid_argument("unknown scene kind: " + name);
}

const char *
toString(SceneKind kind)
{
    switch (kind) {
      case SceneKind::Nature: return "nature";
      case SceneKind::Street: return "street";
      case SceneKind::Texture: return "texture";
      case SceneKind::Uniform: return "uniform";
      case SceneKind::Detail: return "detail";
    }
    return "?";
}

ImageF
makeScene(SceneKind kind, int width, int height, int channels, uint64_t seed)
{
    ImageF img(width, height, channels);
    SplitMix64 rng(seed ^ 0x1dea1c0ffeeULL);
    switch (kind) {
      case SceneKind::Nature:
        fillNature(img, rng);
        break;
      case SceneKind::Street:
        fillStreet(img, rng);
        break;
      case SceneKind::Texture:
        fillTexture(img, rng);
        break;
      case SceneKind::Uniform:
        img.fill(rng.uniform(40.0f, 215.0f));
        break;
      case SceneKind::Detail:
        fillDetail(img, rng);
        break;
    }
    return img;
}

std::vector<ImageF>
makeEvaluationSet(int width, int height, int channels, int images_per_kind)
{
    std::vector<ImageF> set;
    const SceneKind kinds[] = {SceneKind::Nature, SceneKind::Street,
                               SceneKind::Texture, SceneKind::Detail};
    for (SceneKind k : kinds)
        for (int i = 0; i < images_per_kind; ++i)
            set.push_back(makeScene(k, width, height, channels,
                                    1000 + 17 * i + static_cast<int>(k)));
    return set;
}

} // namespace image
} // namespace ideal
