#ifndef IDEAL_IMAGE_IMAGE_H_
#define IDEAL_IMAGE_IMAGE_H_

/**
 * @file
 * Planar multi-channel image container used throughout the IDEAL
 * reproduction. Pixels are stored channel-major (planar) so that the
 * block-matching code, which operates on channel 1 only, touches a
 * contiguous plane.
 */

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ideal {
namespace image {

/**
 * A planar image of `channels` planes, each `width x height` of T.
 *
 * The layout is plane-major: plane c starts at c * width * height.
 * Indexing is (x, y) with x the column (fast-moving) coordinate.
 */
template <typename T>
class Image
{
  public:
    Image() = default;

    /** Construct a zero-initialized image. */
    Image(int width, int height, int channels = 1)
        : width_(width), height_(height), channels_(channels),
          data_(checkedSize(width, height, channels), T{})
    {
    }

    int width() const { return width_; }
    int height() const { return height_; }
    int channels() const { return channels_; }

    /** Number of pixels in one plane. */
    size_t planeSize() const
    {
        return static_cast<size_t>(width_) * height_;
    }

    /** Total number of stored samples across all planes. */
    size_t size() const { return data_.size(); }

    bool empty() const { return data_.empty(); }

    /** Pointer to the first sample of plane @p c. */
    T *plane(int c)
    {
        assert(c >= 0 && c < channels_);
        return data_.data() + planeSize() * c;
    }

    const T *plane(int c) const
    {
        assert(c >= 0 && c < channels_);
        return data_.data() + planeSize() * c;
    }

    T &at(int x, int y, int c = 0)
    {
        assert(inBounds(x, y) && c >= 0 && c < channels_);
        return data_[planeSize() * c + static_cast<size_t>(y) * width_ + x];
    }

    const T &at(int x, int y, int c = 0) const
    {
        assert(inBounds(x, y) && c >= 0 && c < channels_);
        return data_[planeSize() * c + static_cast<size_t>(y) * width_ + x];
    }

    /** Clamped read: coordinates outside the image are clamped to edge. */
    T atClamped(int x, int y, int c = 0) const
    {
        x = std::clamp(x, 0, width_ - 1);
        y = std::clamp(y, 0, height_ - 1);
        return at(x, y, c);
    }

    bool inBounds(int x, int y) const
    {
        return x >= 0 && x < width_ && y >= 0 && y < height_;
    }

    void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

    std::vector<T> &raw() { return data_; }
    const std::vector<T> &raw() const { return data_; }

    /** Extract a single plane as a one-channel image. */
    Image<T>
    extractPlane(int c) const
    {
        Image<T> out(width_, height_, 1);
        std::copy(plane(c), plane(c) + planeSize(), out.plane(0));
        return out;
    }

    /** Replace plane @p c with the single plane of @p src. */
    void
    insertPlane(int c, const Image<T> &src)
    {
        if (src.width() != width_ || src.height() != height_ ||
            src.channels() != 1) {
            throw std::invalid_argument("insertPlane: shape mismatch");
        }
        std::copy(src.plane(0), src.plane(0) + planeSize(), plane(c));
    }

    /** Crop a w x h window whose top-left corner is (x0, y0). */
    Image<T>
    crop(int x0, int y0, int w, int h) const
    {
        if (x0 < 0 || y0 < 0 || w <= 0 || h <= 0 ||
            x0 + w > width_ || y0 + h > height_) {
            throw std::out_of_range("crop: window outside image");
        }
        Image<T> out(w, h, channels_);
        for (int c = 0; c < channels_; ++c)
            for (int y = 0; y < h; ++y)
                for (int x = 0; x < w; ++x)
                    out.at(x, y, c) = at(x0 + x, y0 + y, c);
        return out;
    }

    /** Elementwise conversion to another sample type. */
    template <typename U>
    Image<U>
    cast() const
    {
        Image<U> out(width_, height_, channels_);
        for (size_t i = 0; i < data_.size(); ++i)
            out.raw()[i] = static_cast<U>(data_[i]);
        return out;
    }

    bool
    sameShape(const Image<T> &other) const
    {
        return width_ == other.width_ && height_ == other.height_ &&
               channels_ == other.channels_;
    }

    /**
     * Rebind this image to @p storage, resized to the given shape.
     * Contents are unspecified (callers overwrite every sample); the
     * point is buffer recycling — a pooled vector's capacity survives,
     * so a steady-state adopt never allocates. The previous storage is
     * discarded; takeStorage() it first to keep it.
     */
    void
    adopt(int width, int height, int channels, std::vector<T> &&storage)
    {
        const size_t n = checkedSize(width, height, channels);
        storage.resize(n);
        width_ = width;
        height_ = height;
        channels_ = channels;
        data_ = std::move(storage);
    }

    /** Surrender the backing storage, leaving the image empty. */
    std::vector<T>
    takeStorage()
    {
        width_ = 0;
        height_ = 0;
        channels_ = 0;
        return std::move(data_);
    }

  private:
    static size_t
    checkedSize(int width, int height, int channels)
    {
        if (width <= 0 || height <= 0 || channels <= 0)
            throw std::invalid_argument("Image dimensions must be positive");
        return static_cast<size_t>(width) * height * channels;
    }

    int width_ = 0;
    int height_ = 0;
    int channels_ = 0;
    std::vector<T> data_;
};

using ImageF = Image<float>;
using ImageU8 = Image<uint8_t>;
using ImageU16 = Image<uint16_t>;

/** Convert an 8-bit image to float in [0, 255]. */
ImageF toFloat(const ImageU8 &in);

/** Convert a float image in [0, 255] to 8-bit with clamping + rounding. */
ImageU8 toU8(const ImageF &in);

/**
 * Convert an RGB image to the opponent color space used by BM3D-style
 * denoisers: channel 1 carries the luminance-like component on which
 * block matching runs.
 */
ImageF rgbToOpponent(const ImageF &rgb);

/** Inverse of rgbToOpponent(). */
ImageF opponentToRgb(const ImageF &opp);

} // namespace image
} // namespace ideal

#endif // IDEAL_IMAGE_IMAGE_H_
