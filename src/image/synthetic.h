#ifndef IDEAL_IMAGE_SYNTHETIC_H_
#define IDEAL_IMAGE_SYNTHETIC_H_

/**
 * @file
 * Deterministic synthetic scene generator.
 *
 * The paper evaluates on 30 RAW photographs (8-42 MP) depicting nature,
 * street, and texture scenes, plus a 34-frame HD set. Those images are
 * not redistributable, so this module generates content classes with
 * controlled local self-similarity, the property that drives the
 * Matches-Reuse hit rate and BM3D quality behaviour:
 *
 *  - Nature:  band-limited value noise (smooth gradients, soft blobs),
 *             highly self-similar -> high MR hit rates.
 *  - Street:  axis-aligned and slanted edges, flat facades, windows;
 *             piecewise-constant regions with sharp transitions.
 *  - Texture: quasi-periodic patterns (weave/brick-like), moderate
 *             self-similarity with rapid local change.
 *  - Uniform: constant color; the extreme case discussed in Sec. 5.2.
 *  - Detail:  broadband random detail; worst case for MR.
 *
 * All generation is seeded and platform-independent (no libm-dependent
 * transcendentals in the RNG path), so tests and benches are
 * reproducible.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.h"

namespace ideal {
namespace image {

/** Content classes modelled after the paper's dataset description. */
enum class SceneKind {
    Nature,
    Street,
    Texture,
    Uniform,
    Detail,
};

/** Parse a scene kind name ("nature", "street", ...). */
SceneKind sceneKindFromString(const std::string &name);

/** Human-readable name of a scene kind. */
const char *toString(SceneKind kind);

/**
 * Generate a synthetic scene.
 *
 * @param kind      content class
 * @param width     image width in pixels
 * @param height    image height in pixels
 * @param channels  1 (gray) or 3 (RGB-like)
 * @param seed      deterministic seed; same seed -> same image
 * @return image with samples in [0, 255]
 */
ImageF makeScene(SceneKind kind, int width, int height, int channels,
                 uint64_t seed);

/**
 * The standard evaluation set used by the benchmark harness: one image
 * per (kind, seed) pair covering the homogeneous -> busy content range.
 * All images share the given resolution.
 */
std::vector<ImageF> makeEvaluationSet(int width, int height, int channels,
                                      int images_per_kind = 2);

/**
 * Deterministic xorshift-based pseudo random generator. Exposed so the
 * noise module and tests share one reproducible source.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform float in [0, 1). */
    float
    uniform()
    {
        return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    below(uint64_t n)
    {
        return next() % n;
    }

  private:
    uint64_t state_;
};

} // namespace image
} // namespace ideal

#endif // IDEAL_IMAGE_SYNTHETIC_H_
