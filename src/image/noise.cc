#include "image/noise.h"

#include <cmath>

#include "image/synthetic.h"

namespace ideal {
namespace image {

namespace {

/**
 * Gaussian sampler via Box-Muller on the deterministic SplitMix64
 * stream; keeps noisy inputs reproducible everywhere.
 */
class GaussianSource
{
  public:
    explicit GaussianSource(uint64_t seed) : rng_(seed) {}

    float
    next()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        float u1, u2;
        do {
            u1 = rng_.uniform();
        } while (u1 <= 1e-12f);
        u2 = rng_.uniform();
        float r = std::sqrt(-2.0f * std::log(u1));
        float theta = 2.0f * static_cast<float>(M_PI) * u2;
        spare_ = r * std::sin(theta);
        have_spare_ = true;
        return r * std::cos(theta);
    }

  private:
    SplitMix64 rng_;
    bool have_spare_ = false;
    float spare_ = 0.0f;
};

} // namespace

ImageF
addGaussianNoise(const ImageF &clean, float sigma, uint64_t seed)
{
    ImageF out(clean.width(), clean.height(), clean.channels());
    GaussianSource gauss(seed ^ 0xA5A5A5A5ULL);
    for (size_t i = 0; i < clean.size(); ++i) {
        float v = clean.raw()[i] + sigma * gauss.next();
        out.raw()[i] = std::clamp(v, 0.0f, 255.0f);
    }
    return out;
}

ImageF
addSensorNoise(const ImageF &clean, float gain_a, float read_b, uint64_t seed)
{
    ImageF out(clean.width(), clean.height(), clean.channels());
    GaussianSource gauss(seed ^ 0x5EA50E15ULL);
    for (size_t i = 0; i < clean.size(); ++i) {
        float signal = std::max(0.0f, clean.raw()[i]);
        float stddev = std::sqrt(gain_a * signal + read_b);
        out.raw()[i] =
            std::clamp(signal + stddev * gauss.next(), 0.0f, 255.0f);
    }
    return out;
}

} // namespace image
} // namespace ideal
