#ifndef IDEAL_IMAGE_BAYER_H_
#define IDEAL_IMAGE_BAYER_H_

/**
 * @file
 * Bayer color-filter-array mosaic and demosaic: the front of the
 * Computational Imaging Pipeline the paper targets (Sec. 1 - "the
 * process of converting the raw sensor signal into a typical image
 * representation"). The ML2 network jointly demosaics and denoises;
 * the classical pipeline demosaics first and then runs BM3D.
 *
 * Pattern RGGB:   R G R G ...
 *                 G B G B ...
 */

#include "image/image.h"

namespace ideal {
namespace image {

/** Which of the three color planes a Bayer site samples. */
enum class BayerSite { R, Gr, Gb, B };

/** The Bayer site of pixel (x, y) under the RGGB pattern. */
inline BayerSite
bayerSiteAt(int x, int y)
{
    const bool even_row = (y % 2) == 0;
    const bool even_col = (x % 2) == 0;
    if (even_row)
        return even_col ? BayerSite::R : BayerSite::Gr;
    return even_col ? BayerSite::Gb : BayerSite::B;
}

/**
 * Sample an RGB image through an RGGB Bayer mosaic: the result is a
 * single-channel RAW frame where each pixel holds only the color its
 * site samples.
 */
ImageF mosaic(const ImageF &rgb);

/**
 * Bilinear demosaic of an RGGB RAW frame: each missing color is the
 * average of its nearest sampled neighbors. Fast, and the baseline
 * every ISP implements.
 */
ImageF demosaicBilinear(const ImageF &raw);

/**
 * Gradient-corrected (Malvar-He-Cutler style) demosaic: bilinear plus
 * a Laplacian correction from the sampled channel, recovering much of
 * the luma sharpness bilinear loses.
 */
ImageF demosaicMalvar(const ImageF &raw);

/**
 * Pack an RGGB RAW frame into the half-resolution 4-plane tensor
 * layout ML2 consumes (R, Gr, Gb, B planes of W/2 x H/2), as a
 * 4-channel image. Width and height must be even.
 */
ImageF packBayerPlanes(const ImageF &raw);

} // namespace image
} // namespace ideal

#endif // IDEAL_IMAGE_BAYER_H_
