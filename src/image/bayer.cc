#include "image/bayer.h"

#include <stdexcept>

namespace ideal {
namespace image {

namespace {

/** Average of the in-bounds samples among the given offsets. */
float
neighborAverage(const ImageF &raw, int x, int y,
                std::initializer_list<std::pair<int, int>> offsets)
{
    float acc = 0.0f;
    int n = 0;
    for (const auto &[dx, dy] : offsets) {
        int xx = x + dx, yy = y + dy;
        if (raw.inBounds(xx, yy)) {
            acc += raw.at(xx, yy);
            ++n;
        }
    }
    return n > 0 ? acc / static_cast<float>(n) : raw.at(x, y);
}

} // namespace

ImageF
mosaic(const ImageF &rgb)
{
    if (rgb.channels() != 3)
        throw std::invalid_argument("mosaic: expected 3 channels");
    ImageF raw(rgb.width(), rgb.height(), 1);
    for (int y = 0; y < rgb.height(); ++y)
        for (int x = 0; x < rgb.width(); ++x) {
            switch (bayerSiteAt(x, y)) {
              case BayerSite::R:
                raw.at(x, y) = rgb.at(x, y, 0);
                break;
              case BayerSite::Gr:
              case BayerSite::Gb:
                raw.at(x, y) = rgb.at(x, y, 1);
                break;
              case BayerSite::B:
                raw.at(x, y) = rgb.at(x, y, 2);
                break;
            }
        }
    return raw;
}

ImageF
demosaicBilinear(const ImageF &raw)
{
    if (raw.channels() != 1)
        throw std::invalid_argument("demosaic: expected 1 channel");
    ImageF rgb(raw.width(), raw.height(), 3);
    for (int y = 0; y < raw.height(); ++y) {
        for (int x = 0; x < raw.width(); ++x) {
            float r, g, b;
            const float v = raw.at(x, y);
            switch (bayerSiteAt(x, y)) {
              case BayerSite::R:
                r = v;
                g = neighborAverage(raw, x, y,
                                    {{-1, 0}, {1, 0}, {0, -1}, {0, 1}});
                b = neighborAverage(raw, x, y,
                                    {{-1, -1}, {1, -1}, {-1, 1}, {1, 1}});
                break;
              case BayerSite::Gr:
                g = v;
                r = neighborAverage(raw, x, y, {{-1, 0}, {1, 0}});
                b = neighborAverage(raw, x, y, {{0, -1}, {0, 1}});
                break;
              case BayerSite::Gb:
                g = v;
                r = neighborAverage(raw, x, y, {{0, -1}, {0, 1}});
                b = neighborAverage(raw, x, y, {{-1, 0}, {1, 0}});
                break;
              case BayerSite::B:
              default:
                b = v;
                g = neighborAverage(raw, x, y,
                                    {{-1, 0}, {1, 0}, {0, -1}, {0, 1}});
                r = neighborAverage(raw, x, y,
                                    {{-1, -1}, {1, -1}, {-1, 1}, {1, 1}});
                break;
            }
            rgb.at(x, y, 0) = r;
            rgb.at(x, y, 1) = g;
            rgb.at(x, y, 2) = b;
        }
    }
    return rgb;
}

ImageF
demosaicMalvar(const ImageF &raw)
{
    // Bilinear base plus a gradient correction: the sampled channel's
    // Laplacian carries high-frequency detail the interpolated
    // channels miss. Correction gains follow Malvar-He-Cutler
    // (alpha = 1/2 for G at R/B, beta = 5/8, gamma = 3/4 approximated
    // as 1/2 here with clamped borders).
    ImageF rgb = demosaicBilinear(raw);
    auto lap = [&](int x, int y) {
        float c = 4.0f * raw.atClamped(x, y) - raw.atClamped(x - 2, y) -
                  raw.atClamped(x + 2, y) - raw.atClamped(x, y - 2) -
                  raw.atClamped(x, y + 2);
        return c / 8.0f;
    };
    for (int y = 0; y < raw.height(); ++y) {
        for (int x = 0; x < raw.width(); ++x) {
            const float corr = lap(x, y);
            switch (bayerSiteAt(x, y)) {
              case BayerSite::R:
                rgb.at(x, y, 1) += corr;
                rgb.at(x, y, 2) += corr;
                break;
              case BayerSite::Gr:
              case BayerSite::Gb:
                rgb.at(x, y, 0) += corr;
                rgb.at(x, y, 2) += corr;
                break;
              case BayerSite::B:
                rgb.at(x, y, 0) += corr;
                rgb.at(x, y, 1) += corr;
                break;
            }
        }
    }
    return rgb;
}

ImageF
packBayerPlanes(const ImageF &raw)
{
    if (raw.channels() != 1)
        throw std::invalid_argument("packBayerPlanes: expected 1 channel");
    if (raw.width() % 2 != 0 || raw.height() % 2 != 0)
        throw std::invalid_argument("packBayerPlanes: even dims required");
    const int hw = raw.width() / 2, hh = raw.height() / 2;
    ImageF packed(hw, hh, 4);
    for (int y = 0; y < hh; ++y)
        for (int x = 0; x < hw; ++x) {
            packed.at(x, y, 0) = raw.at(2 * x, 2 * y);         // R
            packed.at(x, y, 1) = raw.at(2 * x + 1, 2 * y);     // Gr
            packed.at(x, y, 2) = raw.at(2 * x, 2 * y + 1);     // Gb
            packed.at(x, y, 3) = raw.at(2 * x + 1, 2 * y + 1); // B
        }
    return packed;
}

} // namespace image
} // namespace ideal
