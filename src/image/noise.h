#ifndef IDEAL_IMAGE_NOISE_H_
#define IDEAL_IMAGE_NOISE_H_

/**
 * @file
 * Noise injection for denoiser evaluation. BM3D is designed for
 * additive white Gaussian noise (AWGN); the paper's quality studies
 * (Figs. 9 and 11) measure SNR of denoised output against the clean
 * image under AWGN of known standard deviation sigma.
 */

#include <cstdint>

#include "image/image.h"

namespace ideal {
namespace image {

/**
 * Add i.i.d. Gaussian noise of standard deviation @p sigma to every
 * sample of @p clean. Output is clamped to [0, 255].
 *
 * @param clean  noiseless input in [0, 255]
 * @param sigma  noise standard deviation (paper studies up to 75)
 * @param seed   deterministic seed
 */
ImageF addGaussianNoise(const ImageF &clean, float sigma, uint64_t seed);

/**
 * Add signal-dependent Poisson-Gaussian sensor noise:
 * variance = a * signal + b, the standard raw-sensor noise model. Used
 * by examples that emulate a RAW capture ahead of the CIP front end.
 */
ImageF addSensorNoise(const ImageF &clean, float gain_a, float read_b,
                      uint64_t seed);

} // namespace image
} // namespace ideal

#endif // IDEAL_IMAGE_NOISE_H_
