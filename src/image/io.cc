#include "image/io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ideal {
namespace image {

namespace {

void
writeBody(std::ofstream &out, const ImageU8 &img)
{
    // Netpbm is pixel-interleaved; our storage is planar.
    const int c = img.channels();
    std::vector<uint8_t> row(static_cast<size_t>(img.width()) * c);
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x)
            for (int ch = 0; ch < c; ++ch)
                row[static_cast<size_t>(x) * c + ch] = img.at(x, y, ch);
        out.write(reinterpret_cast<const char *>(row.data()),
                  static_cast<std::streamsize>(row.size()));
    }
}

int
readPnmInt(std::istream &in)
{
    // Skip whitespace and '#' comments, then parse one integer.
    int ch = in.get();
    while (ch != EOF) {
        if (ch == '#') {
            while (ch != EOF && ch != '\n')
                ch = in.get();
        } else if (!std::isspace(ch)) {
            break;
        }
        ch = in.get();
    }
    if (ch == EOF)
        throw std::runtime_error("Netpbm: truncated header");
    int value = 0;
    while (ch != EOF && std::isdigit(ch)) {
        value = value * 10 + (ch - '0');
        ch = in.get();
    }
    return value;
}

} // namespace

void
writePgm(const std::string &path, const ImageU8 &img)
{
    if (img.channels() != 1)
        throw std::invalid_argument("writePgm: expected 1 channel");
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("writePgm: cannot open " + path);
    out << "P5\n" << img.width() << " " << img.height() << "\n255\n";
    writeBody(out, img);
}

void
writePpm(const std::string &path, const ImageU8 &img)
{
    if (img.channels() != 3)
        throw std::invalid_argument("writePpm: expected 3 channels");
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("writePpm: cannot open " + path);
    out << "P6\n" << img.width() << " " << img.height() << "\n255\n";
    writeBody(out, img);
}

void
writeNetpbm(const std::string &path, const ImageU8 &img)
{
    if (img.channels() == 1)
        writePgm(path, img);
    else if (img.channels() == 3)
        writePpm(path, img);
    else
        throw std::invalid_argument("writeNetpbm: 1 or 3 channels only");
}

ImageU8
readNetpbm(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("readNetpbm: cannot open " + path);
    char magic[2] = {0, 0};
    in.read(magic, 2);
    int channels;
    if (magic[0] == 'P' && magic[1] == '5')
        channels = 1;
    else if (magic[0] == 'P' && magic[1] == '6')
        channels = 3;
    else
        throw std::runtime_error("readNetpbm: unsupported magic in " + path);

    const int width = readPnmInt(in);
    const int height = readPnmInt(in);
    const int maxval = readPnmInt(in);
    if (maxval != 255)
        throw std::runtime_error("readNetpbm: only maxval 255 supported");

    ImageU8 img(width, height, channels);
    std::vector<uint8_t> row(static_cast<size_t>(width) * channels);
    for (int y = 0; y < height; ++y) {
        in.read(reinterpret_cast<char *>(row.data()),
                static_cast<std::streamsize>(row.size()));
        if (!in)
            throw std::runtime_error("readNetpbm: truncated body");
        for (int x = 0; x < width; ++x)
            for (int c = 0; c < channels; ++c)
                img.at(x, y, c) = row[static_cast<size_t>(x) * channels + c];
    }
    return img;
}

void
writeRawFloat(const std::string &path, const ImageF &img)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("writeRawFloat: cannot open " + path);
    const char magic[8] = {'I', 'R', 'A', 'W', 'F', '1', '0', '\n'};
    out.write(magic, sizeof(magic));
    int32_t dims[3] = {img.width(), img.height(), img.channels()};
    out.write(reinterpret_cast<const char *>(dims), sizeof(dims));
    out.write(reinterpret_cast<const char *>(img.raw().data()),
              static_cast<std::streamsize>(img.size() * sizeof(float)));
}

ImageF
readRawFloat(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("readRawFloat: cannot open " + path);
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, "IRAWF10\n", 8) != 0)
        throw std::runtime_error("readRawFloat: bad magic in " + path);
    int32_t dims[3];
    in.read(reinterpret_cast<char *>(dims), sizeof(dims));
    if (!in)
        throw std::runtime_error("readRawFloat: truncated header");
    ImageF img(dims[0], dims[1], dims[2]);
    in.read(reinterpret_cast<char *>(img.raw().data()),
            static_cast<std::streamsize>(img.size() * sizeof(float)));
    if (!in)
        throw std::runtime_error("readRawFloat: truncated body");
    return img;
}

} // namespace image
} // namespace ideal
