#include "image/image.h"

#include <cmath>

namespace ideal {
namespace image {

ImageF
toFloat(const ImageU8 &in)
{
    ImageF out(in.width(), in.height(), in.channels());
    for (size_t i = 0; i < in.size(); ++i)
        out.raw()[i] = static_cast<float>(in.raw()[i]);
    return out;
}

ImageU8
toU8(const ImageF &in)
{
    ImageU8 out(in.width(), in.height(), in.channels());
    for (size_t i = 0; i < in.size(); ++i) {
        float v = std::round(in.raw()[i]);
        out.raw()[i] = static_cast<uint8_t>(std::clamp(v, 0.0f, 255.0f));
    }
    return out;
}

ImageF
rgbToOpponent(const ImageF &rgb)
{
    if (rgb.channels() != 3)
        throw std::invalid_argument("rgbToOpponent: expected 3 channels");
    ImageF out(rgb.width(), rgb.height(), 3);
    const float *r = rgb.plane(0);
    const float *g = rgb.plane(1);
    const float *b = rgb.plane(2);
    float *yo = out.plane(0);
    float *uo = out.plane(1);
    float *vo = out.plane(2);
    for (size_t i = 0; i < rgb.planeSize(); ++i) {
        // Orthonormal-ish opponent transform as in the BM3D reference
        // implementation: Y carries luminance, U/V chrominance.
        yo[i] = (r[i] + g[i] + b[i]) / 3.0f;
        uo[i] = (r[i] - b[i]) / 2.0f + 127.5f;
        vo[i] = (r[i] - 2.0f * g[i] + b[i]) / 4.0f + 127.5f;
    }
    return out;
}

ImageF
opponentToRgb(const ImageF &opp)
{
    if (opp.channels() != 3)
        throw std::invalid_argument("opponentToRgb: expected 3 channels");
    ImageF out(opp.width(), opp.height(), 3);
    const float *y = opp.plane(0);
    const float *u = opp.plane(1);
    const float *v = opp.plane(2);
    float *r = out.plane(0);
    float *g = out.plane(1);
    float *b = out.plane(2);
    for (size_t i = 0; i < opp.planeSize(); ++i) {
        float uu = u[i] - 127.5f;
        float vv = v[i] - 127.5f;
        r[i] = y[i] + uu + vv * 2.0f / 3.0f;
        g[i] = y[i] - vv * 4.0f / 3.0f;
        b[i] = y[i] - uu + vv * 2.0f / 3.0f;
    }
    return out;
}

} // namespace image
} // namespace ideal
