#include "image/metrics.h"

#include <cmath>
#include <stdexcept>

namespace ideal {
namespace image {

namespace {

void
requireSameShape(const ImageF &a, const ImageF &b)
{
    if (!a.sameShape(b))
        throw std::invalid_argument("metric: image shape mismatch");
}

} // namespace

double
mse(const ImageF &a, const ImageF &b)
{
    requireSameShape(a, b);
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a.raw()[i]) - b.raw()[i];
        acc += d * d;
    }
    return acc / static_cast<double>(a.size());
}

double
snrDb(const ImageF &reference, const ImageF &test)
{
    requireSameShape(reference, test);
    double signal = 0.0, noise = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        double r = reference.raw()[i];
        double d = r - test.raw()[i];
        signal += r * r;
        noise += d * d;
    }
    if (noise == 0.0)
        return 300.0; // identical images; report a large finite SNR
    return 10.0 * std::log10(signal / noise);
}

double
psnrDb(const ImageF &reference, const ImageF &test)
{
    double m = mse(reference, test);
    if (m == 0.0)
        return 300.0;
    return 10.0 * std::log10(255.0 * 255.0 / m);
}

double
ssim(const ImageF &reference, const ImageF &test)
{
    requireSameShape(reference, test);
    constexpr int kWin = 8;
    constexpr double kC1 = (0.01 * 255) * (0.01 * 255);
    constexpr double kC2 = (0.03 * 255) * (0.03 * 255);
    const int w = reference.width(), h = reference.height();
    if (w < kWin || h < kWin)
        throw std::invalid_argument("ssim: image smaller than window");

    double total = 0.0;
    long windows = 0;
    for (int y0 = 0; y0 + kWin <= h; y0 += kWin / 2) {
        for (int x0 = 0; x0 + kWin <= w; x0 += kWin / 2) {
            double mu_a = 0, mu_b = 0;
            for (int y = 0; y < kWin; ++y)
                for (int x = 0; x < kWin; ++x) {
                    mu_a += reference.at(x0 + x, y0 + y, 0);
                    mu_b += test.at(x0 + x, y0 + y, 0);
                }
            const double n = kWin * kWin;
            mu_a /= n;
            mu_b /= n;
            double var_a = 0, var_b = 0, cov = 0;
            for (int y = 0; y < kWin; ++y)
                for (int x = 0; x < kWin; ++x) {
                    double da = reference.at(x0 + x, y0 + y, 0) - mu_a;
                    double db = test.at(x0 + x, y0 + y, 0) - mu_b;
                    var_a += da * da;
                    var_b += db * db;
                    cov += da * db;
                }
            var_a /= n - 1;
            var_b /= n - 1;
            cov /= n - 1;
            double s = ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
                       ((mu_a * mu_a + mu_b * mu_b + kC1) *
                        (var_a + var_b + kC2));
            total += s;
            ++windows;
        }
    }
    return total / windows;
}

double
maxAbsDiff(const ImageF &a, const ImageF &b)
{
    requireSameShape(a, b);
    double best = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        best = std::max(best,
                        std::abs(static_cast<double>(a.raw()[i]) -
                                 b.raw()[i]));
    return best;
}

} // namespace image
} // namespace ideal
