#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

namespace ideal {
namespace obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_trace_steps{false};
} // namespace detail

/** Per-thread event buffer. */
struct Tracer::Buffer
{
    /// Locked by the owning thread per append (uncontended) and by
    /// flush; contention only at stop().
    std::mutex mutex;
    uint32_t tid = 0; ///< assigned in buffer-creation order
    std::vector<TraceEvent> events;
};

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

/// Per-thread buffer cache, keyed by process-unique tracer id (ids are
/// never reused, so stale entries of destroyed tracers cannot alias).
thread_local std::unordered_map<uint64_t, Tracer::Buffer *> t_buffers;

} // namespace

Tracer::Tracer() : id_(g_next_tracer_id.fetch_add(1)), isGlobal_(false) {}

Tracer::Tracer(GlobalTag) : id_(g_next_tracer_id.fetch_add(1)), isGlobal_(true)
{
    const char *env = std::getenv("IDEAL_TRACE");
    if (env != nullptr && env[0] != '\0')
        start(env);
}

Tracer::~Tracer()
{
    stop();
}

Tracer &
Tracer::global()
{
    static Tracer tracer{GlobalTag{}};
    return tracer;
}

namespace {

/// Force the global tracer (and its IDEAL_TRACE probe) to initialize
/// at program start, so globalEnabled() is accurate from the first
/// span and the flush-at-exit destructor is registered.
const struct TracerInit
{
    TracerInit() { Tracer::global(); }
} g_tracer_init;

} // namespace

Tracer::Buffer &
Tracer::localBuffer()
{
    auto it = t_buffers.find(id_);
    if (it != t_buffers.end())
        return *it->second;
    auto buffer = std::make_unique<Buffer>();
    Buffer *raw = buffer.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        raw->tid = static_cast<uint32_t>(buffers_.size());
        buffers_.push_back(std::move(buffer));
    }
    t_buffers.emplace(id_, raw);
    return *raw;
}

void
Tracer::start(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!sink_.empty())
        flushLocked();
    sink_ = path;
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_relaxed);
    if (isGlobal_) {
        const char *steps = std::getenv("IDEAL_TRACE_STEPS");
        detail::g_trace_steps.store(
            steps != nullptr && steps[0] != '\0' &&
                std::string(steps) != "0",
            std::memory_order_relaxed);
        detail::g_trace_enabled.store(true, std::memory_order_relaxed);
    }
}

void
Tracer::stop()
{
    // Disable before flushing so concurrent spans stop appending; a
    // span straddling stop() loses its E event (documented: quiesce
    // instrumented work before stopping).
    enabled_.store(false, std::memory_order_relaxed);
    if (isGlobal_)
        detail::g_trace_enabled.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!sink_.empty())
        flushLocked();
    sink_.clear();
}

void
Tracer::setStepTracing(bool on)
{
    detail::g_trace_steps.store(on, std::memory_order_relaxed);
}

std::string
Tracer::path() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sink_;
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = 0;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        n += buffer->events.size();
    }
    return n;
}

void
Tracer::record(const TraceEvent &event)
{
    Buffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(event);
}

void
Tracer::begin(const char *name, const char *cat, const char *argKey,
              double argValue)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = 'B';
    e.tsUs = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count();
    e.argKey = argKey;
    e.argValue = argValue;
    record(e);
}

void
Tracer::end(const char *name, const char *cat)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = 'E';
    e.tsUs = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count();
    record(e);
}

void
Tracer::counter(const char *name, double value)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.cat = "counter";
    e.phase = 'C';
    e.tsUs = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count();
    e.argKey = "value";
    e.argValue = value;
    record(e);
}

void
Tracer::instant(const char *name, const char *cat)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = 'I';
    e.tsUs = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count();
    record(e);
}

void
Tracer::flushLocked()
{
    std::FILE *f = std::fopen(sink_.c_str(), "w");
    if (f == nullptr)
        return; // tracing must never take the process down
    std::fprintf(f, "{\"traceEvents\":[");
    bool first = true;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        for (const TraceEvent &e : buffer->events) {
            std::fprintf(f, "%s\n{\"name\":\"%s\",\"cat\":\"%s\","
                            "\"ph\":\"%c\",\"pid\":1,\"tid\":%u,"
                            "\"ts\":%.3f",
                         first ? "" : ",", e.name, e.cat, e.phase,
                         buffer->tid, e.tsUs);
            if (e.argKey != nullptr)
                std::fprintf(f, ",\"args\":{\"%s\":%.17g}", e.argKey,
                             e.argValue);
            std::fprintf(f, "}");
            first = false;
        }
        buffer->events.clear();
    }
    std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\"}\n");
    std::fclose(f);
}

Span::Span(Tracer &tracer, const char *name, const char *cat)
{
    if (name == nullptr || !tracer.enabled())
        return;
    tracer_ = &tracer;
    name_ = name;
    cat_ = cat;
    tracer_->begin(name_, cat_);
}

void
Span::open(const char *name, const char *cat, const char *argKey,
           double argValue)
{
    tracer_ = &Tracer::global();
    name_ = name;
    cat_ = cat;
    tracer_->begin(name_, cat_, argKey, argValue);
}

void
Span::close()
{
    tracer_->end(name_, cat_);
}

} // namespace obs
} // namespace ideal
