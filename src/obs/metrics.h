#ifndef IDEAL_OBS_METRICS_H_
#define IDEAL_OBS_METRICS_H_

/**
 * @file
 * Thread-safe hierarchical metrics: the unified accounting substrate
 * for the software BM3D pipeline, the parallel runner, and the cycle
 * simulators (DESIGN.md §8).
 *
 * Two layers:
 *
 *  - MetricsSnapshot: a plain (not thread-safe) map of dotted names to
 *    typed values. This is the interchange format: registries produce
 *    snapshots, snapshots merge kind-correctly, the bench harness
 *    serializes them into BENCH_*.json.
 *
 *  - MetricsRegistry: a concurrent accumulator. Each writing thread
 *    gets its own shard, so workers (pool executors, simulator
 *    drivers) never contend on a shared map; snapshot() folds all
 *    shards into one MetricsSnapshot under the registry lock.
 *
 * Metric kinds make merge semantics explicit — the previous
 * sim::StatsRegistry summed everything on merge, silently doubling
 * values that had been written with set() (e.g. dram.avgLatency when
 * two SimResults were combined):
 *
 *  - Counter (add): merge sums. Event counts, op counts, seconds.
 *  - Gauge (set): merge overwrites with the incoming value. Level
 *    samples, derived averages.
 *  - Max (setMax): merge takes the maximum. Peaks such as queue
 *    occupancy high-water marks.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace ideal {
namespace obs {

/** Merge semantics of one named metric. */
enum class MetricKind : uint8_t {
    Counter, ///< add(): deltas accumulate; merge sums
    Gauge,   ///< set(): last write wins; merge overwrites
    Max,     ///< setMax(): merge keeps the maximum
};

/** Printable kind name ("counter" / "gauge" / "max"). */
const char *toString(MetricKind kind);

/** One named value with its merge rule. */
struct Metric
{
    MetricKind kind = MetricKind::Counter;
    double value = 0.0;
};

/**
 * A point-in-time set of named metrics. Not thread-safe: use a
 * MetricsRegistry for concurrent accumulation and snapshot() it.
 */
class MetricsSnapshot
{
  public:
    /** Add @p delta to counter @p name (creating it at 0). */
    void add(const std::string &name, double delta);

    /** Set gauge @p name to @p value. */
    void set(const std::string &name, double value);

    /** Raise max-metric @p name to at least @p value. */
    void setMax(const std::string &name, double value);

    /** Value of @p name, or 0 if never written. */
    double value(const std::string &name) const;

    /** Kind of @p name (Counter if never written). */
    MetricKind kind(const std::string &name) const;

    bool has(const std::string &name) const;
    bool empty() const { return metrics_.empty(); }
    const std::map<std::string, Metric> &all() const { return metrics_; }

    /**
     * Fold @p other into this snapshot, each entry under its own kind:
     * counters sum, gauges overwrite, max entries keep the maximum.
     * @p prefix is prepended to every incoming name (hierarchical
     * nesting, e.g. merge(simStats, "sim.")).
     */
    void merge(const MetricsSnapshot &other, const std::string &prefix = "");

    void clear() { metrics_.clear(); }

    /** Print "name value kind" lines, sorted by name. */
    void dump(std::ostream &os) const;

  private:
    /** Find-or-create @p name; a pre-existing entry keeps its kind. */
    Metric &slot(const std::string &name, MetricKind kind);

    std::map<std::string, Metric> metrics_;
};

/**
 * Concurrent metrics accumulator with shard-per-thread storage.
 *
 * The first write from a thread allocates that thread's shard (one
 * uncontended mutex + one MetricsSnapshot); subsequent writes from the
 * same thread hit a thread-local pointer, so steady-state accumulation
 * never touches a shared lock. snapshot() folds the shards in creation
 * order — deterministic for counters and max metrics; a gauge written
 * by several threads resolves to the latest-created shard's value, so
 * keep gauges single-writer or use setMax.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * The process-wide registry every instrumentation site reports
     * to. Dumped at exit to the file named by IDEAL_METRICS, when set.
     */
    static MetricsRegistry &global();

    /** Add @p delta to counter @p name in this thread's shard. */
    void add(const std::string &name, double delta);

    /** Set gauge @p name in this thread's shard. */
    void set(const std::string &name, double value);

    /** Raise max-metric @p name in this thread's shard. */
    void setMax(const std::string &name, double value);

    /** Fold a whole snapshot (kind-correctly) into this thread's shard. */
    void merge(const MetricsSnapshot &snapshot,
               const std::string &prefix = "");

    /** Merged view over every shard. */
    MetricsSnapshot snapshot() const;

    /** Clear every shard (snapshot afterwards is empty). */
    void reset();

    /// Per-thread accumulation shard; defined in metrics.cc (public
    /// only so the file-scope thread-local cache can name it).
    struct Shard;

  private:
    Shard &localShard();

    const uint64_t id_; ///< process-unique, keys the thread-local cache
    mutable std::mutex mutex_; ///< guards shards_ (list, not contents)
    std::vector<std::unique_ptr<Shard>> shards_;
};

/**
 * Process-wide resident-footprint ledger (DESIGN §15). Allocation
 * sites that hold large long-lived buffers — BufferArena's fresh
 * acquisitions, DctPatchField's whole-image and ring storage — charge
 * their byte deltas here; the ledger tracks the live total in one
 * atomic and records its high-water mark as the `mem.peakResidentBytes`
 * Max gauge in the global registry. Positive deltas may raise the
 * peak; negative deltas (release/trim) only lower the live level, so
 * the gauge is monotone within a process and merges kind-correctly
 * across records. Returns the live total after applying @p delta.
 */
int64_t chargeResidentBytes(int64_t delta);

/** Current live total of the resident-footprint ledger, in bytes. */
int64_t residentBytes();

} // namespace obs
} // namespace ideal

#endif // IDEAL_OBS_METRICS_H_
