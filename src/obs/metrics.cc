#include "obs/metrics.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace ideal {
namespace obs {

const char *
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Max: return "max";
    }
    return "?";
}

// ---------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------

Metric &
MetricsSnapshot::slot(const std::string &name, MetricKind kind)
{
    auto [it, inserted] = metrics_.try_emplace(name);
    if (inserted)
        it->second.kind = kind;
    return it->second;
}

void
MetricsSnapshot::add(const std::string &name, double delta)
{
    slot(name, MetricKind::Counter).value += delta;
}

void
MetricsSnapshot::set(const std::string &name, double value)
{
    slot(name, MetricKind::Gauge).value = value;
}

void
MetricsSnapshot::setMax(const std::string &name, double value)
{
    Metric &m = slot(name, MetricKind::Max);
    if (value > m.value)
        m.value = value;
}

double
MetricsSnapshot::value(const std::string &name) const
{
    auto it = metrics_.find(name);
    return it == metrics_.end() ? 0.0 : it->second.value;
}

MetricKind
MetricsSnapshot::kind(const std::string &name) const
{
    auto it = metrics_.find(name);
    return it == metrics_.end() ? MetricKind::Counter : it->second.kind;
}

bool
MetricsSnapshot::has(const std::string &name) const
{
    return metrics_.count(name) > 0;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other,
                       const std::string &prefix)
{
    for (const auto &[name, metric] : other.metrics_) {
        const std::string key = prefix.empty() ? name : prefix + name;
        // The incoming entry's kind decides the merge rule; a
        // pre-existing entry keeps its declared kind.
        switch (metric.kind) {
          case MetricKind::Counter:
            slot(key, MetricKind::Counter).value += metric.value;
            break;
          case MetricKind::Gauge:
            slot(key, MetricKind::Gauge).value = metric.value;
            break;
          case MetricKind::Max: {
            Metric &m = slot(key, MetricKind::Max);
            if (metric.value > m.value)
                m.value = metric.value;
            break;
          }
        }
    }
}

void
MetricsSnapshot::dump(std::ostream &os) const
{
    for (const auto &[name, metric] : metrics_)
        os << name << " " << metric.value << " " << toString(metric.kind)
           << "\n";
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

struct MetricsRegistry::Shard
{
    /// Locked by the owning thread per write (uncontended) and by
    /// snapshot()/reset() readers; never by other writers.
    std::mutex mutex;
    MetricsSnapshot snap;
};

namespace {

std::atomic<uint64_t> g_next_registry_id{1};

/**
 * Per-thread shard cache, keyed by process-unique registry id (never
 * by address: an id is never reused, so a destroyed registry's stale
 * entries can never alias a new one).
 */
thread_local std::unordered_map<uint64_t, MetricsRegistry::Shard *>
    t_shards;

} // namespace

MetricsRegistry::MetricsRegistry() : id_(g_next_registry_id.fetch_add(1)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    auto it = t_shards.find(id_);
    if (it != t_shards.end())
        return *it->second;
    auto shard = std::make_unique<Shard>();
    Shard *raw = shard.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::move(shard));
    }
    t_shards.emplace(id_, raw);
    return *raw;
}

void
MetricsRegistry::add(const std::string &name, double delta)
{
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.snap.add(name, delta);
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.snap.set(name, value);
}

void
MetricsRegistry::setMax(const std::string &name, double value)
{
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.snap.setMax(name, value);
}

void
MetricsRegistry::merge(const MetricsSnapshot &snapshot,
                       const std::string &prefix)
{
    Shard &shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.snap.merge(snapshot, prefix);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot result;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        result.merge(shard->snap);
    }
    return result;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mutex);
        shard->snap.clear();
    }
}

namespace {

/**
 * IDEAL_METRICS=<path>: dump the global registry at process exit.
 * Constructing the registry *inside* this object's constructor orders
 * it earlier in static-initialization order, so it is destroyed later
 * than (and is still alive in) our destructor.
 */
struct MetricsDumpAtExit
{
    std::string path;

    MetricsDumpAtExit()
    {
        MetricsRegistry::global();
        const char *env = std::getenv("IDEAL_METRICS");
        if (env != nullptr && env[0] != '\0')
            path = env;
    }

    ~MetricsDumpAtExit()
    {
        if (path.empty())
            return;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return;
        const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
        for (const auto &[name, metric] : snap.all())
            std::fprintf(f, "%s %.17g %s\n", name.c_str(), metric.value,
                         toString(metric.kind));
        std::fclose(f);
    }
};

const MetricsDumpAtExit g_metrics_dump;

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

namespace {

/// Live bytes of the resident-footprint ledger. A plain atomic (not a
/// registry metric) so concurrent charge/release pairs from arena
/// recycling stay exact; only the high-water mark is published.
std::atomic<int64_t> g_resident_bytes{0};

} // namespace

int64_t
chargeResidentBytes(int64_t delta)
{
    const int64_t now =
        g_resident_bytes.fetch_add(delta, std::memory_order_relaxed) +
        delta;
    if (delta > 0)
        MetricsRegistry::global().setMax("mem.peakResidentBytes",
                                         static_cast<double>(now));
    return now;
}

int64_t
residentBytes()
{
    return g_resident_bytes.load(std::memory_order_relaxed);
}

} // namespace obs
} // namespace ideal
