#ifndef IDEAL_OBS_TRACE_H_
#define IDEAL_OBS_TRACE_H_

/**
 * @file
 * RAII span tracer emitting Chrome trace-event JSON (the format
 * chrome://tracing and Perfetto load directly): "B"/"E" duration
 * pairs per thread, "C" counter samples, "I" instants.
 *
 * Activation: IDEAL_TRACE=<path> writes the trace to <path> when the
 * process exits (or when Tracer::stop() is called). Without the
 * variable every Span compiles down to one relaxed atomic load and a
 * predictable branch — cheap enough to leave instrumentation in hot
 * paths permanently (<2% of fig02 wall time; see DESIGN.md §8).
 *
 * Span taxonomy (DESIGN.md §8): coarse spans — pipeline stages,
 * pool tiles, simulator stages — are always emitted when tracing is
 * on. The per-reference-patch *step* category (DCT1..DE2 via
 * bm3d::ScopedTimer) multiplies event counts by the reference-patch
 * count, so it additionally requires IDEAL_TRACE_STEPS=1; use it on
 * small images.
 *
 * Threading: events append to per-thread buffers (one uncontended
 * mutex each), merged at flush. name/cat/argKey must be string
 * literals (stored by pointer, never copied).
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ideal {
namespace obs {

namespace detail {
/// Mirrors the *global* tracer's enabled state so Span's fast path is
/// one relaxed load without touching the singleton.
extern std::atomic<bool> g_trace_enabled;
/// Set when the per-step fine-grained category is requested too.
extern std::atomic<bool> g_trace_steps;
} // namespace detail

/** One buffered trace event. Pointers must outlive the tracer. */
struct TraceEvent
{
    const char *name = nullptr;
    const char *cat = nullptr;
    char phase = 'B';           ///< 'B', 'E', 'C' or 'I'
    double tsUs = 0.0;          ///< microseconds since tracer start
    const char *argKey = nullptr; ///< optional single numeric arg
    double argValue = 0.0;
};

/**
 * Collects events and writes them as Chrome trace JSON. One global
 * instance serves the instrumentation macros/spans; tests may create
 * private tracers with their own sink files.
 */
class Tracer
{
  public:
    Tracer();
    ~Tracer(); ///< stop()s, flushing any active sink

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * The process-wide tracer. Initialized at program start (so the
     * enabled flag is accurate from the first span); starts recording
     * immediately when IDEAL_TRACE names a sink path.
     */
    static Tracer &global();

    /** True when the *global* tracer is recording (Span fast path). */
    static bool
    globalEnabled()
    {
        return detail::g_trace_enabled.load(std::memory_order_relaxed);
    }

    /** True when per-step spans (ScopedTimer) should be emitted. */
    static bool
    stepTracingEnabled()
    {
        return detail::g_trace_enabled.load(std::memory_order_relaxed) &&
               detail::g_trace_steps.load(std::memory_order_relaxed);
    }

    /** True when this tracer is recording. */
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /**
     * Begin recording into @p path (flushes and replaces any previous
     * sink). Time zero is reset to now.
     */
    void start(const std::string &path);

    /** Flush buffered events to the sink and disable recording. */
    void stop();

    /** Toggle the fine-grained per-step category (global tracer only). */
    void setStepTracing(bool on);

    /** Current sink path (empty when disabled). */
    std::string path() const;

    /** Number of buffered events (test introspection). */
    size_t eventCount() const;

    // Event emission. No-ops when not enabled.
    void begin(const char *name, const char *cat,
               const char *argKey = nullptr, double argValue = 0.0);
    void end(const char *name, const char *cat);
    void counter(const char *name, double value);
    void instant(const char *name, const char *cat);

    /// Per-thread event buffer; defined in trace.cc (public only so
    /// the file-scope thread-local cache can name it).
    struct Buffer;

  private:
    Buffer &localBuffer();
    void record(const TraceEvent &event);
    void flushLocked(); ///< caller holds mutex_

    const uint64_t id_; ///< process-unique, keys the thread-local cache
    const bool isGlobal_;
    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_; ///< guards sink_ + buffers_ (the list)
    std::string sink_;
    std::vector<std::unique_ptr<Buffer>> buffers_;

    struct GlobalTag
    {
    };
    explicit Tracer(GlobalTag);
};

/**
 * RAII duration span against the global tracer. When tracing is off
 * the constructor is a relaxed load + branch and the destructor a
 * null check.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = "ideal")
    {
        if (Tracer::globalEnabled())
            open(name, cat, nullptr, 0.0);
    }

    /** Span with one numeric arg (e.g. {"index": 42}). */
    Span(const char *name, const char *cat, const char *argKey,
         double argValue)
    {
        if (Tracer::globalEnabled())
            open(name, cat, argKey, argValue);
    }

    /**
     * Span against an explicit tracer (tests). @p name may be nullptr
     * for an inert span.
     */
    Span(Tracer &tracer, const char *name, const char *cat = "ideal");

    ~Span()
    {
        if (tracer_ != nullptr)
            close();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void open(const char *name, const char *cat, const char *argKey,
              double argValue);
    void close();

    Tracer *tracer_ = nullptr;
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
};

/**
 * Span for the fine-grained per-step category: inert unless both
 * IDEAL_TRACE and IDEAL_TRACE_STEPS are active.
 */
class StepSpan
{
  public:
    explicit StepSpan(const char *name)
    {
        if (Tracer::stepTracingEnabled()) {
            name_ = name;
            Tracer::global().begin(name, "step");
        }
    }

    ~StepSpan()
    {
        if (name_ != nullptr)
            Tracer::global().end(name_, "step");
    }

    StepSpan(const StepSpan &) = delete;
    StepSpan &operator=(const StepSpan &) = delete;

  private:
    const char *name_ = nullptr;
};

} // namespace obs
} // namespace ideal

#endif // IDEAL_OBS_TRACE_H_
