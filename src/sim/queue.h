#ifndef IDEAL_SIM_QUEUE_H_
#define IDEAL_SIM_QUEUE_H_

/**
 * @file
 * Bounded FIFO queue used to model the hardware job queues (QBMP, QD,
 * QiD, QDJ of Fig. 5) and memory-controller request queues. Tracks
 * occupancy statistics so stall sources can be attributed.
 */

#include <cassert>
#include <cstdint>
#include <deque>

namespace ideal {
namespace sim {

/** A bounded FIFO with occupancy accounting. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity)
    {
        assert(capacity >= 1);
    }

    size_t capacity() const { return capacity_; }
    size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= capacity_; }

    /** Push when not full. Returns false (and counts a stall) if full. */
    bool
    push(const T &item)
    {
        if (full()) {
            ++pushStalls_;
            return false;
        }
        items_.push_back(item);
        ++pushes_;
        return true;
    }

    const T &
    front() const
    {
        assert(!items_.empty());
        return items_.front();
    }

    T
    pop()
    {
        assert(!items_.empty());
        T item = items_.front();
        items_.pop_front();
        return item;
    }

    /** Number of successful pushes over the queue's lifetime. */
    uint64_t pushes() const { return pushes_; }

    /** Number of rejected pushes (back-pressure events). */
    uint64_t pushStalls() const { return pushStalls_; }

    void
    clear()
    {
        items_.clear();
    }

  private:
    size_t capacity_;
    std::deque<T> items_;
    uint64_t pushes_ = 0;
    uint64_t pushStalls_ = 0;
};

} // namespace sim
} // namespace ideal

#endif // IDEAL_SIM_QUEUE_H_
