#ifndef IDEAL_SIM_STATS_H_
#define IDEAL_SIM_STATS_H_

/**
 * @file
 * Named statistics registry for the cycle-level simulators, in the
 * spirit of gem5's stats package: modules register counters under
 * hierarchical dotted names; harnesses read or print them after a run.
 *
 * Since the unified observability layer landed (DESIGN.md §8) this is
 * a thin adapter over obs::MetricsSnapshot, which makes the merge
 * semantics kind-correct: values accumulated with add() are counters
 * and sum on merge, while values written with set() are gauges and are
 * overwritten (the historical merge() summed everything, silently
 * doubling gauges like dram.avgLatency when two results were
 * combined). setMax() values keep the maximum, for peaks such as
 * queue occupancy high-water marks.
 */

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "obs/metrics.h"

namespace ideal {
namespace sim {

/** A registry of named scalar statistics. */
class StatsRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at 0). */
    void
    add(const std::string &name, double delta)
    {
        snap_.add(name, delta);
    }

    /** Set gauge @p name to @p value (merge overwrites, never sums). */
    void
    set(const std::string &name, double value)
    {
        snap_.set(name, value);
    }

    /** Raise max-stat @p name to at least @p value (merge keeps max). */
    void
    setMax(const std::string &name, double value)
    {
        snap_.setMax(name, value);
    }

    /** Value of @p name, or 0 if never touched. */
    double
    get(const std::string &name) const
    {
        return snap_.value(name);
    }

    bool
    has(const std::string &name) const
    {
        return snap_.has(name);
    }

    /** Flattened name -> value view (kinds dropped). */
    std::map<std::string, double>
    all() const
    {
        std::map<std::string, double> values;
        for (const auto &[name, metric] : snap_.all())
            values.emplace(name, metric.value);
        return values;
    }

    /** Print "name value" lines, sorted by name. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, metric] : snap_.all())
            os << name << " " << metric.value << "\n";
    }

    /**
     * Fold @p other into this registry, per metric kind: counters
     * sum, gauges take the incoming value, max-stats keep the larger.
     */
    void
    merge(const StatsRegistry &other)
    {
        snap_.merge(other.snap_);
    }

    void clear() { snap_.clear(); }

    /** The typed snapshot (for bench embedding / obs export). */
    const obs::MetricsSnapshot &snapshot() const { return snap_; }

  private:
    obs::MetricsSnapshot snap_;
};

} // namespace sim
} // namespace ideal

#endif // IDEAL_SIM_STATS_H_
