#ifndef IDEAL_SIM_STATS_H_
#define IDEAL_SIM_STATS_H_

/**
 * @file
 * Named statistics registry for the cycle-level simulators, in the
 * spirit of gem5's stats package: modules register counters under
 * hierarchical dotted names; harnesses read or print them after a run.
 */

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace ideal {
namespace sim {

/** A registry of named scalar statistics. */
class StatsRegistry
{
  public:
    /** Add @p delta to counter @p name (creating it at 0). */
    void
    add(const std::string &name, double delta)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, double value)
    {
        counters_[name] = value;
    }

    /** Value of @p name, or 0 if never touched. */
    double
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0.0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return counters_.count(name) > 0;
    }

    const std::map<std::string, double> &all() const { return counters_; }

    /** Print "name value" lines, sorted by name. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, value] : counters_)
            os << name << " " << value << "\n";
    }

    void
    merge(const StatsRegistry &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    void clear() { counters_.clear(); }

  private:
    std::map<std::string, double> counters_;
};

} // namespace sim
} // namespace ideal

#endif // IDEAL_SIM_STATS_H_
