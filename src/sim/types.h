#ifndef IDEAL_SIM_TYPES_H_
#define IDEAL_SIM_TYPES_H_

/**
 * @file
 * Basic types shared by the cycle-level simulators: cycle counts,
 * addresses, and simple conversion helpers between time and cycles.
 */

#include <cstdint>

namespace ideal {
namespace sim {

/** Simulation time in core clock cycles. */
using Cycle = uint64_t;

/** Byte address in the accelerator's physical address space. */
using Addr = uint64_t;

/** Convert cycles at @p freq_ghz to seconds. */
inline double
cyclesToSeconds(Cycle cycles, double freq_ghz)
{
    return static_cast<double>(cycles) / (freq_ghz * 1e9);
}

/** Convert a latency in nanoseconds to cycles at @p freq_ghz (ceil). */
inline Cycle
nsToCycles(double ns, double freq_ghz)
{
    double c = ns * freq_ghz;
    Cycle whole = static_cast<Cycle>(c);
    return whole + ((c > static_cast<double>(whole)) ? 1 : 0);
}

} // namespace sim
} // namespace ideal

#endif // IDEAL_SIM_TYPES_H_
