#ifndef IDEAL_FIXED_QUANTIZE_H_
#define IDEAL_FIXED_QUANTIZE_H_

/**
 * @file
 * Bulk quantization helpers: round-trip arrays and images through a
 * fixed-point format. The precision-sweep experiments (Fig. 9 and
 * Table 9) re-run BM3D with every intermediate stage quantized to the
 * candidate format, which these helpers implement.
 */

#include <span>

#include "fixed/format.h"
#include "image/image.h"

namespace ideal {
namespace fixed {

/** Round-trip every element of @p values through @p format, in place. */
void quantizeInPlace(std::span<float> values, const Format &format);

/** Round-trip a copy of @p img through @p format. */
image::ImageF quantizeImage(const image::ImageF &img, const Format &format);

/** Mean squared quantization error of @p values under @p format. */
double quantizationMse(std::span<const float> values, const Format &format);

} // namespace fixed
} // namespace ideal

#endif // IDEAL_FIXED_QUANTIZE_H_
