#include "fixed/quantize.h"

namespace ideal {
namespace fixed {

void
quantizeInPlace(std::span<float> values, const Format &format)
{
    for (float &v : values)
        v = static_cast<float>(format.roundTrip(v));
}

image::ImageF
quantizeImage(const image::ImageF &img, const Format &format)
{
    image::ImageF out = img;
    quantizeInPlace(std::span<float>(out.raw()), format);
    return out;
}

double
quantizationMse(std::span<const float> values, const Format &format)
{
    double acc = 0.0;
    for (float v : values) {
        double d = v - format.roundTrip(v);
        acc += d * d;
    }
    return values.empty() ? 0.0 : acc / static_cast<double>(values.size());
}

} // namespace fixed
} // namespace ideal
