#include "fixed/int16plan.h"

#include <cassert>
#include <cmath>

namespace ideal {
namespace fixed {

Format
colorMatchFormat()
{
    return Format(8, 4);
}

int
ssdSafeMagnitudeBits(int pp)
{
    assert(pp >= 1);
    int log2pp = 0;
    while ((1 << log2pp) < pp)
        ++log2pp;
    // Worst-case |a - b| < 2^(m+1), so each square < 2^(2m+2) and the
    // pp-term sum < 2^(2m+2+log2pp); exact while that stays < 2^31.
    return (31 - 2 - log2pp) / 2;
}

void
quantizeToI16(const float *src, size_t n, const Format &f, int16_t *dst)
{
    assert(f.magnitudeBits() <= 15);
    for (size_t i = 0; i < n; ++i)
        dst[i] = static_cast<int16_t>(f.quantize(src[i]));
}

void
quantizeBasisQ(const float *values, int n, int frac_bits, int16_t *out)
{
    const Format f(15 - frac_bits, frac_bits);
    for (int i = 0; i < n; ++i)
        out[i] = static_cast<int16_t>(f.quantize(values[i]));
}

double
ssdFactor(const Format &f, int pp)
{
    const double s = f.scale();
    return 1.0 / (s * s * static_cast<double>(pp));
}

int16_t
haarFactorQ15()
{
    return static_cast<int16_t>(
        std::lround((1.0 / std::sqrt(2.0)) * 32768.0));
}

float
invScale(const Format &f)
{
    return static_cast<float>(1.0 / f.scale());
}

} // namespace fixed
} // namespace ideal
