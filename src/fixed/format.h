#ifndef IDEAL_FIXED_FORMAT_H_
#define IDEAL_FIXED_FORMAT_H_

/**
 * @file
 * Q-format descriptor for the fixed-point datapath (paper Sec. 4.2).
 *
 * IDEAL replaces BM3D's floating point with fixed point: a 12-bit
 * fractional part (tunable 7-12 bits, Fig. 9 / Table 9) and an integer
 * part sized per pipeline stage to cover the dynamic range: 11 bits
 * after DCT, 13 after the Haar transform, and 15 after the inverse
 * Haar, for 8-bit input channels.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ideal {
namespace fixed {

/**
 * Signed fixed-point format Q(int_bits).(frac_bits): values are stored
 * as raw integers of value * 2^frac_bits, saturated to the representable
 * range [-2^(int_bits+frac_bits), 2^(int_bits+frac_bits) - 1].
 */
struct Format
{
    int intBits;
    int fracBits;

    constexpr Format(int int_bits, int frac_bits)
        : intBits(int_bits), fracBits(frac_bits)
    {
    }

    /** Total stored bits excluding the sign bit. */
    constexpr int magnitudeBits() const { return intBits + fracBits; }

    /** Scale factor 2^fracBits. */
    double scale() const { return std::ldexp(1.0, fracBits); }

    /** Largest representable raw value. */
    int64_t maxRaw() const { return (int64_t{1} << magnitudeBits()) - 1; }

    /** Smallest representable raw value. */
    int64_t minRaw() const { return -(int64_t{1} << magnitudeBits()); }

    /** Saturate a raw integer into this format's range. */
    int64_t
    saturate(int64_t raw) const
    {
        return std::clamp(raw, minRaw(), maxRaw());
    }

    /** Quantize a real value: round to nearest raw grid point, saturate. */
    int64_t
    quantize(double value) const
    {
        double scaled = value * scale();
        // Clamp before rounding: llround on a value outside int64's
        // range (huge inputs, infinities) is undefined — on x86 it
        // returns LLONG_MIN regardless of sign, which saturate() would
        // then clamp to minRaw() even for +inf. The double bounds are
        // exact (raw limits are far below 2^53), and values already at
        // the positive clamp boundary can no longer round past it.
        scaled = std::clamp(scaled, static_cast<double>(minRaw()),
                            static_cast<double>(maxRaw()));
        // llround rounds half away from zero, matching the behaviour of
        // a hardware round-to-nearest stage.
        return saturate(std::llround(scaled));
    }

    /** Reconstruct the real value of a raw integer. */
    double toDouble(int64_t raw) const { return raw / scale(); }

    /** Round-trip a real value through this format. */
    double
    roundTrip(double value) const
    {
        return toDouble(quantize(value));
    }

    std::string
    str() const
    {
        return "Q" + std::to_string(intBits) + "." +
               std::to_string(fracBits);
    }

    bool operator==(const Format &other) const = default;
};

/**
 * Per-stage formats of the IDEAL datapath for a given fractional
 * precision (paper Sec. 4.2). The integer widths are fixed by the
 * dynamic range of each stage; only fracBits is the design knob.
 */
struct PipelineFormats
{
    Format input;   ///< 8-bit input channel samples
    Format dct;     ///< after 2-D DCT
    Format haar;    ///< after forward Haar
    Format invHaar; ///< after inverse Haar

    /** Formats for the paper's datapath at @p frac_bits of fraction. */
    static PipelineFormats
    forFraction(int frac_bits)
    {
        if (frac_bits < 1 || frac_bits > 20)
            throw std::invalid_argument("fraction bits out of range");
        return PipelineFormats{Format(8, frac_bits), Format(11, frac_bits),
                               Format(13, frac_bits), Format(15, frac_bits)};
    }
};

} // namespace fixed
} // namespace ideal

#endif // IDEAL_FIXED_FORMAT_H_
