#ifndef IDEAL_FIXED_FIXED_H_
#define IDEAL_FIXED_FIXED_H_

/**
 * @file
 * Scalar fixed-point value type. Arithmetic is carried out on 64-bit
 * raw integers with explicit round-and-saturate steps, mirroring what
 * a synthesized datapath does between pipeline stages. This type is
 * used by the fixed-point transform paths and by the accelerator's
 * functional simulation mode; the float path is the reference.
 */

#include <cstdint>

#include "fixed/format.h"

namespace ideal {
namespace fixed {

/** A fixed-point scalar carrying its format. */
class Fixed
{
  public:
    Fixed() : raw_(0), format_(0, 0) {}

    Fixed(int64_t raw, Format format) : raw_(raw), format_(format) {}

    /** Quantize a real value into @p format. */
    static Fixed
    fromDouble(double value, Format format)
    {
        return Fixed(format.quantize(value), format);
    }

    int64_t raw() const { return raw_; }
    Format format() const { return format_; }
    double toDouble() const { return format_.toDouble(raw_); }

    /**
     * Add another value with the same fractional precision; the result
     * is saturated into @p out. Mixed fracBits is a programming error.
     */
    Fixed
    add(const Fixed &other, Format out) const
    {
        requireSameFrac(format_, other.format_);
        requireSameFrac(other.format_, out);
        return Fixed(out.saturate(raw_ + other.raw_), out);
    }

    Fixed
    sub(const Fixed &other, Format out) const
    {
        requireSameFrac(format_, other.format_);
        requireSameFrac(other.format_, out);
        return Fixed(out.saturate(raw_ - other.raw_), out);
    }

    /**
     * Multiply: the double-width product has 2*fracBits of fraction;
     * it is rounded back to out.fracBits and saturated, as a hardware
     * multiplier followed by a rounding stage would.
     */
    Fixed
    mul(const Fixed &other, Format out) const
    {
        requireSameFrac(format_, other.format_);
        requireSameFrac(other.format_, out);
        __int128 wide = static_cast<__int128>(raw_) * other.raw_;
        int shift = format_.fracBits;
        __int128 rounded;
        if (shift == 0) {
            rounded = wide;
        } else {
            // Round to nearest (add half ulp before shifting).
            __int128 half = __int128{1} << (shift - 1);
            rounded = (wide >= 0 ? wide + half : wide - half) >> shift;
        }
        return Fixed(out.saturate(static_cast<int64_t>(rounded)), out);
    }

    /** Reinterpret into a format with the same fracBits (re-saturate). */
    Fixed
    convert(Format out) const
    {
        requireSameFrac(format_, out);
        return Fixed(out.saturate(raw_), out);
    }

    bool operator==(const Fixed &other) const
    {
        return raw_ == other.raw_ && format_ == other.format_;
    }

  private:
    static void
    requireSameFrac(const Format &a, const Format &b)
    {
        if (a.fracBits != b.fracBits)
            throw std::invalid_argument(
                "Fixed: fractional precision mismatch (" + a.str() +
                " vs " + b.str() + ")");
    }

    int64_t raw_;
    Format format_;
};

} // namespace fixed
} // namespace ideal

#endif // IDEAL_FIXED_FIXED_H_
