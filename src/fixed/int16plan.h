#ifndef IDEAL_FIXED_INT16PLAN_H_
#define IDEAL_FIXED_INT16PLAN_H_

/**
 * @file
 * Q-format plan for the CPU int16 matching datapath (DESIGN §10).
 *
 * The paper's accelerator formats (Q11.12 after DCT etc.,
 * PipelineFormats) need more than 16 bits of storage, so the CPU
 * int16 kernels use narrower per-stage formats chosen such that
 *  - every stored value fits int16, and
 *  - a 16-coefficient SSD of stored values fits int32 exactly
 *    (2*m + 2 + ceil(log2(pp)) <= 31 for m magnitude bits).
 *
 * DCT-domain match coefficients are stored as Q11.1 (2-D DCT of 8-bit
 * pixels is bounded by 4*255 ~ 1020, raw <= 2048, m = 12) and
 * color-domain samples as Q8.4 (raw <= 4096, m = 12); both satisfy
 * the m <= 12 exactness bound for pp = 16.
 */

#include <cstddef>
#include <cstdint>

#include "fixed/format.h"

namespace ideal {
namespace fixed {

/**
 * Formats and shift schedule for the int16 folded 4x4 DCT used to
 * build quantized match planes.
 *
 * Pixels are quantized to Q8.6; the DCT basis to Q2.13 raws (max
 * entry 0.6533 -> raw 5352). Each 1-D pass runs in int32 (products
 * stay below 2^31) and renormalizes with a round-to-nearest right
 * shift, saturating to int16 only when packing pass outputs:
 *   pass 1: Q8.6 x Q13 >> 14 -> Q10.5
 *   pass 2: Q10.5 x Q13 >> 17 -> Q11.1 (match storage)
 */
struct Int16DctPlan
{
    Format pixel{8, 6};    ///< quantized plane samples
    Format match{11, 1};   ///< thresholded 2-D DCT coefficients
    int coefFracBits = 13; ///< Q-format of the quantized DCT basis
    int shift1 = 14;       ///< pass-1 renormalization (6+13-14 = 5 frac)
    int shift2 = 17;       ///< pass-2 renormalization (5+13-17 = 1 frac)

    /**
     * Stage-3 extension (DESIGN §12): the z-axis Haar/shrink pipeline
     * of DE1 also runs on the match format. Q11.1 holds the whole
     * transform headroom-free: each forward butterfly scales by
     * 1/sqrt(2), so the largest magnitude — the DC of a 16-deep stack
     * of equal patches — grows by at most 4x, and 4 * 2048 raws stays
     * well inside int16, so the saturating adds never clip on 8-bit
     * image content.
     */
    Format haar3d{11, 1};
};

/**
 * The 1/sqrt(2) Haar butterfly factor as a Q15 raw, the operand of the
 * int16 haar kernels' mulhrs step (round(0.7071... * 2^15) = 23170).
 */
int16_t haarFactorQ15();

/**
 * Dequantization factor of @p f: real value = raw * invScale(f). The
 * fused DE1 int16 path multiplies this back out before the float
 * inverse DCT / aggregation.
 */
float invScale(const Format &f);

/** Storage format of the quantized BM2 color-domain plane. */
Format colorMatchFormat();

/**
 * Largest magnitude-bit count m such that a pp-coefficient SSD of
 * int16 values with |raw| < 2^m is exact in int32.
 */
int ssdSafeMagnitudeBits(int pp);

/** Quantize a float span into int16 raws of @p f (round + saturate). */
void quantizeToI16(const float *src, size_t n, const Format &f, int16_t *dst);

/** Quantize DCT basis entries to Q(frac_bits) int16 raws. */
void quantizeBasisQ(const float *values, int n, int frac_bits, int16_t *out);

/**
 * Factor converting an int32 raw SSD over @p pp coefficients stored
 * in format @p f into the float matcher's normalized distance
 * (mean squared real-value difference): 1 / (scale^2 * pp).
 */
double ssdFactor(const Format &f, int pp);

} // namespace fixed
} // namespace ideal

#endif // IDEAL_FIXED_INT16PLAN_H_
