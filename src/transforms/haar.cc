#include "transforms/haar.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "fixed/fixed.h"
#include "simd/simd.h"

namespace ideal {
namespace transforms {

namespace {

constexpr int kMaxLen = 64;

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

Haar1D::Haar1D(int n)
    : n_(n), levels_(0), matrix_(static_cast<size_t>(n) * n, 0.0f)
{
    if (!isPowerOfTwo(n) || n < 2 || n > kMaxLen)
        throw std::invalid_argument("Haar1D: length must be 2..64 pow2");
    for (int v = n; v > 1; v >>= 1)
        ++levels_;

    // Build H recursively: start from H_1 = [1]; at each doubling,
    //   H_2m = (1/sqrt 2) [ H_m kron (1  1) ; I_m kron (1 -1) ].
    std::vector<double> h(1, 1.0);
    int m = 1;
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    while (m < n) {
        std::vector<double> next(static_cast<size_t>(2 * m) * (2 * m), 0.0);
        // Top half: averages.
        for (int r = 0; r < m; ++r)
            for (int c = 0; c < m; ++c) {
                double v = h[static_cast<size_t>(r) * m + c] * inv_sqrt2;
                next[static_cast<size_t>(r) * 2 * m + 2 * c] = v;
                next[static_cast<size_t>(r) * 2 * m + 2 * c + 1] = v;
            }
        // Bottom half: details.
        for (int r = 0; r < m; ++r) {
            next[static_cast<size_t>(m + r) * 2 * m + 2 * r] = inv_sqrt2;
            next[static_cast<size_t>(m + r) * 2 * m + 2 * r + 1] =
                -inv_sqrt2;
        }
        h.swap(next);
        m *= 2;
    }
    for (size_t i = 0; i < h.size(); ++i)
        matrix_[i] = static_cast<float>(h[i]);
}

void
Haar1D::forwardMatrix(const float *in, float *out) const
{
    for (int r = 0; r < n_; ++r) {
        float acc = 0.0f;
        const float *row = matrix_.data() + static_cast<size_t>(r) * n_;
        for (int c = 0; c < n_; ++c)
            acc += row[c] * in[c];
        out[r] = acc;
    }
}

void
Haar1D::inverseMatrix(const float *in, float *out) const
{
    for (int c = 0; c < n_; ++c)
        out[c] = 0.0f;
    for (int r = 0; r < n_; ++r) {
        const float *row = matrix_.data() + static_cast<size_t>(r) * n_;
        for (int c = 0; c < n_; ++c)
            out[c] += row[c] * in[r];
    }
}

void
Haar1D::forward(const float *in, float *out) const
{
    // Multi-level averaging/differencing with the ordering that matches
    // the recursive matrix: approximations first, then details of each
    // level from coarsest to finest.
    float buf[kMaxLen];
    std::memcpy(buf, in, sizeof(float) * n_);
    const float inv_sqrt2 = 1.0f / std::sqrt(2.0f);
    int len = n_;
    // Details of level l (len/2 entries) land at out[len/2 .. len).
    while (len > 1) {
        int half = len / 2;
        float tmp[kMaxLen];
        for (int i = 0; i < half; ++i) {
            tmp[i] = (buf[2 * i] + buf[2 * i + 1]) * inv_sqrt2;
            out[half + i] = (buf[2 * i] - buf[2 * i + 1]) * inv_sqrt2;
        }
        std::memcpy(buf, tmp, sizeof(float) * half);
        len = half;
    }
    out[0] = buf[0];
}

void
Haar1D::inverse(const float *in, float *out) const
{
    float buf[kMaxLen];
    buf[0] = in[0];
    const float inv_sqrt2 = 1.0f / std::sqrt(2.0f);
    int len = 1;
    while (len < n_) {
        float tmp[kMaxLen];
        for (int i = 0; i < len; ++i) {
            float a = buf[i];
            float d = in[len + i];
            tmp[2 * i] = (a + d) * inv_sqrt2;
            tmp[2 * i + 1] = (a - d) * inv_sqrt2;
        }
        len *= 2;
        std::memcpy(buf, tmp, sizeof(float) * len);
    }
    std::memcpy(out, buf, sizeof(float) * n_);
}

void
Haar1D::forwardRows(const float *in, float *out, int stride,
                    int width) const
{
    // Same butterfly schedule as forward(), with each scalar replaced
    // by a row of `width` contiguous lanes; every lane therefore sees
    // exactly the per-column operation sequence and rounds identically.
    if (width < 1 || width > kMaxLen)
        throw std::invalid_argument("Haar1D: row width must be 1..64");
    float buf[kMaxLen][kMaxLen];
    for (int i = 0; i < n_; ++i)
        std::memcpy(buf[i], in + static_cast<size_t>(i) * stride,
                    sizeof(float) * width);
    const float inv_sqrt2 = 1.0f / std::sqrt(2.0f);
    const simd::KernelTable &k = simd::kernels();
    int len = n_;
    while (len > 1) {
        const int half = len / 2;
        // Writing the approximations in place into buf[i] is safe:
        // butterfly i reads rows 2i and 2i+1 and writes row i, and
        // every later butterfly reads rows >= 2i + 2.
        for (int i = 0; i < half; ++i)
            k.haarForwardPair(buf[2 * i], buf[2 * i + 1], buf[i],
                              out + static_cast<size_t>(half + i) * stride,
                              inv_sqrt2, width);
        len = half;
    }
    std::memcpy(out, buf[0], sizeof(float) * width);
}

void
Haar1D::inverseRows(const float *in, float *out, int stride,
                    int width) const
{
    if (width < 1 || width > kMaxLen)
        throw std::invalid_argument("Haar1D: row width must be 1..64");
    float buf[kMaxLen][kMaxLen];
    std::memcpy(buf[0], in, sizeof(float) * width);
    const float inv_sqrt2 = 1.0f / std::sqrt(2.0f);
    const simd::KernelTable &k = simd::kernels();
    int len = 1;
    while (len < n_) {
        float tmp[kMaxLen][kMaxLen];
        for (int i = 0; i < len; ++i)
            k.haarInversePair(buf[i],
                              in + static_cast<size_t>(len + i) * stride,
                              tmp[2 * i], tmp[2 * i + 1], inv_sqrt2,
                              width);
        len *= 2;
        for (int i = 0; i < len; ++i)
            std::memcpy(buf[i], tmp[i], sizeof(float) * width);
    }
    for (int i = 0; i < n_; ++i)
        std::memcpy(out + static_cast<size_t>(i) * stride, buf[i],
                    sizeof(float) * width);
}

namespace {

/**
 * One fixed-point MAC step, bit-identical to
 * fixed::Fixed::mul followed by Fixed::add at the same format:
 * double-width product, round to nearest, saturate, accumulate,
 * saturate.
 */
int64_t
fixedMacStep(int64_t acc, int64_t a_raw, int64_t b_raw,
             const fixed::Format &fmt)
{
    const int shift = fmt.fracBits;
    __int128 wide = static_cast<__int128>(a_raw) * b_raw;
    __int128 rounded;
    if (shift == 0) {
        rounded = wide;
    } else {
        __int128 half = __int128{1} << (shift - 1);
        rounded = (wide >= 0 ? wide + half : wide - half) >> shift;
    }
    return fmt.saturate(
        acc + fmt.saturate(static_cast<int64_t>(rounded)));
}

} // namespace

void
Haar1D::forwardFixed(const float *in, float *out,
                     const fixed::PipelineFormats &formats) const
{
    const fixed::Format &fmt = formats.haar;
    int64_t in_raw[kMaxLen];
    for (int c = 0; c < n_; ++c)
        in_raw[c] = fmt.quantize(in[c]);
    for (int r = 0; r < n_; ++r) {
        const float *row = matrix_.data() + static_cast<size_t>(r) * n_;
        int64_t acc = 0;
        for (int c = 0; c < n_; ++c)
            acc = fixedMacStep(acc, fmt.quantize(row[c]), in_raw[c], fmt);
        out[r] = static_cast<float>(fmt.toDouble(acc));
    }
}

void
Haar1D::inverseFixed(const float *in, float *out,
                     const fixed::PipelineFormats &formats) const
{
    const fixed::Format &fmt = formats.invHaar;
    int64_t in_raw[kMaxLen];
    for (int r = 0; r < n_; ++r)
        in_raw[r] = fmt.quantize(in[r]);
    for (int c = 0; c < n_; ++c) {
        int64_t acc = 0;
        for (int r = 0; r < n_; ++r)
            acc = fixedMacStep(acc, fmt.quantize(coefficient(r, c)),
                               in_raw[r], fmt);
        out[c] = static_cast<float>(fmt.toDouble(acc));
    }
}

} // namespace transforms
} // namespace ideal
