#ifndef IDEAL_TRANSFORMS_DISTANCE_H_
#define IDEAL_TRANSFORMS_DISTANCE_H_

/**
 * @file
 * The l2-Norm computational block (paper Eq. 2): squared Euclidean
 * distance between two M x M patches, M^2 subtractions + M^2
 * multiplications + M^2 additions. The BM engine hardware computes a
 * full 4x4 patch distance per cycle with 16 subtractors, 16
 * multipliers and a 16-input adder tree.
 *
 * The software kernels mirror that adder tree through the runtime-
 * dispatched SIMD layer (src/simd): 8 accumulator lanes folded in one
 * canonical order, identical bitwise at every dispatch level (see
 * simd.h's reduction-order rule). These wrappers exist so callers
 * keep a plain-function API and so the dispatch indirection is paid
 * once per call, not once per 16 elements.
 */

#include <cstddef>
#include <limits>

#include "simd/simd.h"

namespace ideal {
namespace transforms {

/**
 * Squared L2 distance between two length-@p len arrays, summed in the
 * canonical 8-lane tree order (deterministic for a given @p len).
 */
inline float
squaredDistance(const float *a, const float *b, int len)
{
    return simd::kernels().ssd(a, b, len);
}

/**
 * Squared L2 distance with early termination: returns a partial sum
 * (> @p bound) once the accumulated distance exceeds @p bound. The
 * check runs every 16 elements — one hardware adder-tree's worth — so
 * the common small-patch case (4x4 = 16 coefficients) is a single
 * branchless vectorizable block, not 16 data-dependent branches.
 *
 * Callers may only rely on the exact value when it is <= @p bound;
 * any early-terminated result compares > @p bound just like the full
 * sum would (partial sums of squares only grow), so match selection
 * is identical to evaluating the full distance.
 */
inline float
squaredDistanceBounded(const float *a, const float *b, int len, float bound)
{
    return simd::kernels().ssdBounded(a, b, len, bound);
}

/**
 * Exact squared L2 distance in the same per-16-block accumulation
 * order as squaredDistanceBounded (no early exit). For len == 16 all
 * three kernels agree bitwise, which is what lets the batched
 * block-matching path and the bounded path select identical matches.
 */
inline float
squaredDistanceFull(const float *a, const float *b, int len)
{
    return simd::kernels().ssdFull(a, b, len);
}

/**
 * Batched 16-element SSD against one reference descriptor:
 * out[i] = squaredDistanceFull(ref, cands + 16*i, 16) for
 * i in [0, count), count <= 8. @p cands must be contiguous
 * 16-float descriptors (the patch-field layout).
 */
inline void
squaredDistanceBatch16(const float *ref, const float *cands, int count,
                       float *out)
{
    simd::kernels().ssdBatch16(ref, cands, count, out);
}

/**
 * Exact squared L2 distance between two coefficient-major (SoA)
 * patches: coefficient k of patch a is pa[k][off_a], of b
 * pb[k][off_b]. Accumulated in the squaredDistanceFull per-16-block
 * order. The two plane sets may belong to different fields (video
 * matching across frames).
 */
inline float
squaredDistanceSoa(const float *const *pa, size_t off_a,
                   const float *const *pb, size_t off_b, int len)
{
    return simd::kernels().ssdSoa(pa, off_a, pb, off_b, len,
                                  std::numeric_limits<float>::infinity());
}

/**
 * SoA distance with early termination past @p bound; same contract as
 * squaredDistanceBounded (partial results only compare > bound).
 */
inline float
squaredDistanceSoaBounded(const float *const *pa, size_t off_a,
                          const float *const *pb, size_t off_b, int len,
                          float bound)
{
    return simd::kernels().ssdSoa(pa, off_a, pb, off_b, len, bound);
}

/**
 * Batched SoA SSD against a gathered reference descriptor:
 * out[i] = squaredDistanceSoa of the candidate at planes[k][off + i],
 * i in [0, count) for arbitrary count (pass whole window-row runs —
 * one dispatch per run). Adjacent candidates are adjacent in every
 * coefficient plane (one contiguous vector lane per coefficient),
 * which is what makes this the block-matching hot kernel.
 */
inline void
squaredDistanceSoaBatch(const float *ref, const float *const *planes,
                        size_t off, int len, int count, float *out)
{
    simd::kernels().ssdSoaBatch(ref, planes, off, len, count, out);
}

} // namespace transforms
} // namespace ideal

#endif // IDEAL_TRANSFORMS_DISTANCE_H_
