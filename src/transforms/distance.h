#ifndef IDEAL_TRANSFORMS_DISTANCE_H_
#define IDEAL_TRANSFORMS_DISTANCE_H_

/**
 * @file
 * The l2-Norm computational block (paper Eq. 2): squared Euclidean
 * distance between two M x M patches, M^2 subtractions + M^2
 * multiplications + M^2 additions. The BM engine hardware computes a
 * full 4x4 patch distance per cycle with 16 subtractors, 16
 * multipliers and a 16-input adder tree.
 *
 * The software kernels mirror that adder tree: they accumulate into
 * four independent lanes in a fixed tree order. The explicit order
 * keeps results deterministic (no reassociation is left to the
 * compiler) while making the reduction vectorizable without
 * -ffast-math — an FP-sum reduction in a plain loop cannot be
 * vectorized under strict IEEE ordering, which is why the seed's
 * scalar loop dominated the block-matching profile.
 */

#include <cstddef>

namespace ideal {
namespace transforms {

namespace detail {

/** 4-lane SSD over one run of 4 elements; lanes passed by reference. */
inline void
ssdStep4(const float *a, const float *b, float &s0, float &s1, float &s2,
         float &s3)
{
    const float d0 = a[0] - b[0];
    const float d1 = a[1] - b[1];
    const float d2 = a[2] - b[2];
    const float d3 = a[3] - b[3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
}

/**
 * SSD over one 16-element block — one hardware adder-tree's worth —
 * in the fixed lane order s0: {0,4,8,12}, s1: {1,5,9,13}, ..., reduced
 * as (s0+s1)+(s2+s3).
 *
 * noinline is load-bearing: inlined into a caller, GCC fully unrolls
 * the lane loop and its SLP pass no longer recognises the reduction,
 * emitting ~48 scalar ops; as a standalone function the loop compiles
 * to packed subps/mulps/addps. The call per 16 elements is noise next
 * to that difference.
 */
__attribute__((noinline)) inline float
ssdBlock16(const float *a, const float *b)
{
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    for (int k = 0; k < 16; k += 4)
        ssdStep4(a + k, b + k, s0, s1, s2, s3);
    return (s0 + s1) + (s2 + s3);
}

} // namespace detail

/**
 * Squared L2 distance between two length-@p len arrays, summed in a
 * fixed 4-lane tree order (deterministic for a given @p len).
 */
inline float
squaredDistance(const float *a, const float *b, int len)
{
    float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
    int i = 0;
    for (; i + 4 <= len; i += 4)
        detail::ssdStep4(a + i, b + i, s0, s1, s2, s3);
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        s0 += d * d;
    }
    return (s0 + s1) + (s2 + s3);
}

/**
 * Squared L2 distance with early termination: returns a partial sum
 * (> @p bound) once the accumulated distance exceeds @p bound. The
 * check runs every 16 elements — one hardware adder-tree's worth — so
 * the common small-patch case (4x4 = 16 coefficients) is a single
 * branchless vectorizable block, not 16 data-dependent branches.
 *
 * Callers may only rely on the exact value when it is <= @p bound;
 * any early-terminated result compares > @p bound just like the full
 * sum would (partial sums of squares only grow), so match selection
 * is identical to evaluating the full distance.
 */
inline float
squaredDistanceBounded(const float *a, const float *b, int len, float bound)
{
    float acc = 0.0f;
    int i = 0;
    for (; i + 16 <= len; i += 16) {
        acc += detail::ssdBlock16(a + i, b + i);
        if (acc > bound)
            return acc;
    }
    for (; i < len; ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

} // namespace transforms
} // namespace ideal

#endif // IDEAL_TRANSFORMS_DISTANCE_H_
