#ifndef IDEAL_TRANSFORMS_DISTANCE_H_
#define IDEAL_TRANSFORMS_DISTANCE_H_

/**
 * @file
 * The l2-Norm computational block (paper Eq. 2): squared Euclidean
 * distance between two M x M patches, M^2 subtractions + M^2
 * multiplications + M^2 additions. The BM engine hardware computes a
 * full 4x4 patch distance per cycle with 16 subtractors, 16
 * multipliers and a 16-input adder tree.
 */

#include <cstddef>

namespace ideal {
namespace transforms {

/** Squared L2 distance between two length-@p len arrays. */
inline float
squaredDistance(const float *a, const float *b, int len)
{
    float acc = 0.0f;
    for (int i = 0; i < len; ++i) {
        float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

/**
 * Squared L2 distance with early termination: stops (and returns a
 * value > @p bound) as soon as the partial sum exceeds @p bound.
 * A common software block-matching optimization; the hardware engine
 * does not need it because the full tree evaluates in one cycle.
 */
inline float
squaredDistanceBounded(const float *a, const float *b, int len, float bound)
{
    float acc = 0.0f;
    for (int i = 0; i < len; ++i) {
        float d = a[i] - b[i];
        acc += d * d;
        if (acc > bound)
            return acc;
    }
    return acc;
}

} // namespace transforms
} // namespace ideal

#endif // IDEAL_TRANSFORMS_DISTANCE_H_
