#ifndef IDEAL_TRANSFORMS_DCT1D_H_
#define IDEAL_TRANSFORMS_DCT1D_H_

/**
 * @file
 * Arbitrary-length orthonormal DCT-II for whole-image transforms
 * (used by the deconvolution path of the BM3D restoration family -
 * a symmetric blur with reflective boundaries is near-diagonal in
 * this basis). Matrix form: O(n^2) per vector, fine for the image
 * sizes the restoration examples use.
 */

#include <vector>

namespace ideal {
namespace transforms {

/** Orthonormal DCT-II of length n (n >= 2). */
class Dct1D
{
  public:
    explicit Dct1D(int n);

    int size() const { return n_; }

    /** out = C * in; in/out must not alias. */
    void forward(const float *in, float *out) const;

    /** out = C^T * in; in/out must not alias. */
    void inverse(const float *in, float *out) const;

    /**
     * Eigenvalue of a symmetric FIR kernel in this basis:
     * lambda_k = w[0] + 2 * sum_j w[j] cos(pi k j / n) for a kernel
     * (w[r], ..., w[1], w[0], w[1], ..., w[r]).
     */
    std::vector<float> kernelEigenvalues(
        const std::vector<float> &half_kernel) const;

  private:
    int n_;
    std::vector<float> coeff_; ///< C, row-major
};

/**
 * Separable 2-D DCT-II over a single plane: out(kx, ky). Plane and
 * spectrum are row-major width x height arrays.
 */
class Dct2DPlane
{
  public:
    Dct2DPlane(int width, int height);

    void forward(const float *plane, float *spectrum) const;
    void inverse(const float *spectrum, float *plane) const;

    const Dct1D &rowTransform() const { return row_; }
    const Dct1D &colTransform() const { return col_; }

  private:
    int width_;
    int height_;
    Dct1D row_;
    Dct1D col_;
};

} // namespace transforms
} // namespace ideal

#endif // IDEAL_TRANSFORMS_DCT1D_H_
