#ifndef IDEAL_TRANSFORMS_DCT_H_
#define IDEAL_TRANSFORMS_DCT_H_

/**
 * @file
 * 2-D DCT-II and its inverse on square patches, computed exactly as
 * the paper describes (Sec. 2.1): PDCT = C (C P)^T where C is the
 * orthonormal DCT coefficient matrix, i.e. a 1-D DCT along rows, a
 * transpose, and another 1-D DCT along rows. For a 4x4 patch this is
 * 64 multiplications and 48 additions per 1-D pass, matching the
 * EDCT hardware cost model.
 */

#include <vector>

#include "fixed/format.h"

namespace ideal {
namespace transforms {

/**
 * Orthonormal DCT-II transform for N x N patches.
 *
 * Instances precompute the coefficient matrix; forward() and
 * inverse() are then pure matrix products. A fixed-point evaluation
 * path quantizes coefficients and every intermediate to a Q format,
 * reproducing the accelerator datapath.
 */
class Dct2D
{
  public:
    /** Build the transform for @p n x @p n patches (n >= 2). */
    explicit Dct2D(int n);

    int size() const { return n_; }

    /**
     * Forward 2-D DCT. @p in and @p out are row-major n*n arrays and
     * may alias.
     */
    void forward(const float *in, float *out) const;

    /** Inverse 2-D DCT; in/out may alias. */
    void inverse(const float *in, float *out) const;

    /**
     * Forward DCT with a fixed-point datapath: the input is assumed
     * quantized to @p formats.input and every product/sum is kept in
     * formats.dct precision. The result is written in real units (the
     * caller sees quantized floats).
     */
    void forwardFixed(const float *in, float *out,
                      const fixed::PipelineFormats &formats) const;

    /** Inverse DCT with the fixed-point datapath. */
    void inverseFixed(const float *in, float *out,
                      const fixed::PipelineFormats &formats) const;

    /** Coefficient matrix entry C[row][col]. */
    float coefficient(int row, int col) const
    {
        return coeff_[static_cast<size_t>(row) * n_ + col];
    }

    /**
     * Half-size inverse factor matrices of the even/odd split (the
     * invEven_/invOdd_ layout the simd dct4Inverse kernel consumes).
     * Non-empty only for even n; the fused group-aggregation path
     * passes these straight into simd aggregateGroup so its per-patch
     * inverse transform is the very same arithmetic as inverse().
     */
    const float *invEvenHalf() const { return invEven_.data(); }
    const float *invOddHalf() const { return invOdd_.data(); }

  private:
    /** One pass: out = M * in (n x n matrices, row-major). */
    /// @p m, @p in, and @p out may not alias (restrict-qualified so
    /// the row-accumulation inner loop vectorizes).
    void matmul(const float *__restrict m, const float *__restrict in,
                float *__restrict out) const;

    /** out = M * in with per-element quantization to @p fmt. */
    void matmulFixed(const float *m, const float *in, float *out,
                     const fixed::Format &fmt) const;

    /**
     * One forward 1-D pass (out = C * in) using the even/odd
     * symmetry of the DCT rows: fold the input into sums and
     * differences, then apply two half-size matrices. Halves the
     * multiplication count versus matmul(); even n only.
     */
    void passForward(const float *__restrict in,
                     float *__restrict out) const;

    /** One inverse 1-D pass (out = C^T * in), same folding. */
    void passInverse(const float *__restrict in,
                     float *__restrict out) const;

    int n_;
    std::vector<float> coeff_;  ///< C, row-major
    std::vector<float> coeffT_; ///< C^T, row-major
    /// Half-size factor matrices for the even/odd split (empty when
    /// n is odd): fwdEven_[m][i] = C[2m][i], fwdOdd_[m][i] =
    /// C[2m+1][i]; inv* are their transposes, indexed [i][m].
    std::vector<float> fwdEven_, fwdOdd_, invEven_, invOdd_;
};

} // namespace transforms
} // namespace ideal

#endif // IDEAL_TRANSFORMS_DCT_H_
